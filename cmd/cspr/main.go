// Command cspr is the cluster router: a stateless HTTP front for a replica
// set of cspd nodes. It routes each POSTed instance by its canonical
// (order-insensitive) hash on a consistent-hash ring, so repeated instances
// always land on the replica whose result cache already holds their answer —
// the cluster-wide cache hit rate matches the single-node hit rate at any
// replica count. A background poller tracks replica liveness and load
// (queue depth + in-flight solves); saturated primaries are offloaded to the
// least-loaded live node, connection failures and 5xx are retried once on
// the key's next ring position, and when the whole set sheds, the replica's
// own 429 and derived Retry-After are propagated unchanged.
//
// POST /solve/batch fans a JSON batch of instances out with bounded
// intra-batch parallelism, each item individually routed for affinity.
//
// Usage:
//
//	cspr -replicas http://h1:8344,http://h2:8344 [-addr :8345]
//	     [-vnodes 64] [-poll-interval 1s] [-shed-depth 16]
//	     [-batch-workers N] [-max-batch 256]
//	     [-read-timeout 1m] [-write-timeout 5m] [-idle-timeout 2m]
//	     [-drain-timeout 10s]
//
// Examples:
//
//	cspr -replicas http://10.0.0.1:8344,http://10.0.0.2:8344 &
//	curl -s -X POST --data-binary @instance.csp \
//	    'localhost:8345/solve?strategy=portfolio&timeout=5s' | jq .
//	curl -s -X POST -d '{"items":[{"instance":"vars 2\ndom 2\ncon 0 1 : 0 1\n"}]}' \
//	    localhost:8345/solve/batch | jq .
//	curl -s localhost:8345/replicas | jq .
//	curl -s localhost:8345/events           # one JSON line per routed request
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"csdb/internal/cluster"
	"csdb/internal/obs"
)

// routerConfig is everything cspr is parameterized by; flags populate it in
// main and the lifecycle tests construct it directly.
type routerConfig struct {
	addr         string
	replicas     string
	vnodes       int
	pollInterval time.Duration
	shedDepth    int64
	batchWorkers int
	maxBatch     int
	drainTimeout time.Duration
	readTimeout  time.Duration
	writeTimeout time.Duration
	idleTimeout  time.Duration
}

// clusterConfig translates the flag surface into the library Config.
func (c routerConfig) clusterConfig() (cluster.Config, error) {
	urls, err := splitReplicas(c.replicas)
	if err != nil {
		return cluster.Config{}, err
	}
	return cluster.Config{
		Replicas:      urls,
		VNodes:        c.vnodes,
		PollInterval:  c.pollInterval,
		ShedDepth:     c.shedDepth,
		BatchWorkers:  c.batchWorkers,
		MaxBatchItems: c.maxBatch,
	}, nil
}

// splitReplicas parses the -replicas flag: a comma-separated URL list,
// whitespace tolerated, at least one entry required.
func splitReplicas(s string) ([]string, error) {
	var urls []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			urls = append(urls, part)
		}
	}
	if len(urls) == 0 {
		return nil, fmt.Errorf("cspr: -replicas needs at least one URL (got %q)", s)
	}
	return urls, nil
}

func main() {
	var cfg routerConfig
	flag.StringVar(&cfg.addr, "addr", ":8345", "listen address")
	flag.StringVar(&cfg.replicas, "replicas", "", "comma-separated cspd base URLs (required)")
	flag.IntVar(&cfg.vnodes, "vnodes", 64, "virtual nodes per replica on the hash ring")
	flag.DurationVar(&cfg.pollInterval, "poll-interval", time.Second, "replica health/load poll cadence")
	flag.Int64Var(&cfg.shedDepth, "shed-depth", 16, "replica backlog (queue+inflight) at which new keys are offloaded to the least-loaded node")
	flag.IntVar(&cfg.batchWorkers, "batch-workers", 0, "max concurrent items per /solve/batch request (0 = GOMAXPROCS, capped at 8)")
	flag.IntVar(&cfg.maxBatch, "max-batch", 256, "max items in one /solve/batch request")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 10*time.Second, "grace period for in-flight proxied requests on shutdown")
	flag.DurationVar(&cfg.readTimeout, "read-timeout", time.Minute, "cap on reading one whole request incl. body; reaps slow-client connections (0 = no limit)")
	flag.DurationVar(&cfg.writeTimeout, "write-timeout", 5*time.Minute, "cap on handling+writing one response; must exceed the replicas' solve timeouts (0 = no limit)")
	flag.DurationVar(&cfg.idleTimeout, "idle-timeout", 2*time.Minute, "cap on idle keep-alive connections between requests (0 = no limit)")
	flag.Parse()

	ccfg, err := cfg.clusterConfig()
	if err != nil {
		log.Fatal(err)
	}
	rt, err := cluster.New(ccfg)
	if err != nil {
		log.Fatal(fmt.Errorf("cspr: %w", err))
	}

	// The router is an observability consumer like the daemon: metrics and
	// wide events on for its lifetime (tracing stays off — spans belong to
	// the replicas actually running solves).
	obs.SetEnabled(true)
	obs.SetEvents(true)

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		log.Fatal(fmt.Errorf("cspr: %w", err))
	}
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	log.Printf("cspr: routing /solve /solve/batch for %d replicas on %s "+
		"(vnodes %d, shed-depth %d, poll %s)",
		len(ccfg.Replicas), ln.Addr(), ccfg.VNodes, cfg.shedDepth, cfg.pollInterval)
	if err := runRouter(rt, cfg, ln, sigCh, log.Printf); err != nil {
		log.Fatal(fmt.Errorf("cspr: %w", err))
	}
}
