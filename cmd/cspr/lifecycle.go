package main

import (
	"context"
	"errors"
	"net"
	"net/http"
	"os"
	"time"

	"csdb/internal/cluster"
)

// Router lifecycle, mirroring cspd's: serve until a signal arrives, then
// drain gracefully. The same slow-client discipline applies — without
// ReadTimeout a trickling client would hold a connection open and block
// Shutdown forever (ReadHeaderTimeout stops covering a request once its
// headers are in), and WriteTimeout bounds slow readers of proxied
// responses. The health poller's context is cancelled with the drain, so the
// background goroutine exits before the process does.

// runRouter serves rt on ln until the listener fails or sigCh delivers a
// signal, then drains in-flight proxied requests for cfg.drainTimeout. It
// returns nil on a clean shutdown and the serve error otherwise.
func runRouter(rt *cluster.Router, cfg routerConfig, ln net.Listener, sigCh <-chan os.Signal, logf func(string, ...any)) error {
	pollCtx, stopPoller := context.WithCancel(context.Background())
	defer stopPoller()
	rt.Start(pollCtx)

	httpSrv := &http.Server{
		Handler:           rt.Mux(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       cfg.readTimeout,
		WriteTimeout:      cfg.writeTimeout,
		IdleTimeout:       cfg.idleTimeout,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		rt.CloseIdleConnections()
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case sig := <-sigCh:
		logf("cspr: caught %v; draining in-flight requests (grace %s)", sig, cfg.drainTimeout)
	}

	// Stop the poller first: no point probing replicas while shutting down,
	// and the goroutine must not outlive the process's useful life.
	stopPoller()
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		// The grace period expired with requests still in flight; close them.
		logf("cspr: drain deadline passed (%v); closing remaining connections", err)
		_ = httpSrv.Close()
	}
	rt.CloseIdleConnections()
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logf("cspr: drained cleanly")
	return nil
}
