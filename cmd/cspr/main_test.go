package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"csdb/internal/cluster"
)

func TestSplitReplicas(t *testing.T) {
	got, err := splitReplicas(" http://a:1 , http://b:2,,")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "http://a:1" || got[1] != "http://b:2" {
		t.Fatalf("splitReplicas = %v", got)
	}
	if _, err := splitReplicas(" , "); err == nil {
		t.Fatal("empty replica list must fail")
	}
}

func TestClusterConfigTranslation(t *testing.T) {
	cfg := routerConfig{
		replicas:     "http://a:1,http://b:2",
		vnodes:       32,
		shedDepth:    5,
		batchWorkers: 3,
		maxBatch:     10,
		pollInterval: 250 * time.Millisecond,
	}
	ccfg, err := cfg.clusterConfig()
	if err != nil {
		t.Fatal(err)
	}
	if len(ccfg.Replicas) != 2 || ccfg.VNodes != 32 || ccfg.ShedDepth != 5 ||
		ccfg.BatchWorkers != 3 || ccfg.MaxBatchItems != 10 ||
		ccfg.PollInterval != 250*time.Millisecond {
		t.Fatalf("clusterConfig = %+v", ccfg)
	}
	if _, err := (routerConfig{}).clusterConfig(); err == nil {
		t.Fatal("missing -replicas must fail")
	}
}

// fakeNode is a minimal cspd look-alike for the lifecycle test.
func fakeNode(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"cspd.admit.queue_depth":0,"cspd.solve.inflight":0}`)
	})
	mux.HandleFunc("POST /solve", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"trace_id":"node-req-1","found":true,"cached":false,"aborted":false}`)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestRouterLifecycle boots the full cspr surface on a real listener,
// proxies one request through it, then SIGTERMs and expects a clean drain
// with the poller goroutine gone.
func TestRouterLifecycle(t *testing.T) {
	node := fakeNode(t)
	cfg := routerConfig{
		replicas:     node.URL,
		pollInterval: 20 * time.Millisecond,
		drainTimeout: 2 * time.Second,
		readTimeout:  time.Minute,
		writeTimeout: time.Minute,
		idleTimeout:  time.Minute,
	}
	ccfg, err := cfg.clusterConfig()
	if err != nil {
		t.Fatal(err)
	}
	rt, err := cluster.New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	runtime.GC()
	goroutinesBefore := runtime.NumGoroutine()

	sigCh := make(chan os.Signal, 1)
	exit := make(chan error, 1)
	go func() { exit <- runRouter(rt, cfg, ln, sigCh, t.Logf) }()

	url := "http://" + ln.Addr().String()
	var resp *http.Response
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err = http.Post(url+"/solve", "text/plain",
			strings.NewReader("vars 2\ndom 2\ncon 0 1 : 0 1\n"))
		if err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s)", resp.StatusCode, body)
	}
	var nr struct {
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal(body, &nr); err != nil || nr.TraceID != "node-req-1" {
		t.Fatalf("unexpected proxied body %s (err %v)", body, err)
	}

	sigCh <- syscall.SIGTERM
	select {
	case err := <-exit:
		if err != nil {
			t.Fatalf("runRouter returned %v, want clean drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("runRouter did not exit after SIGTERM")
	}

	// The poller and serve goroutines must be gone after the drain.
	leakDeadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= goroutinesBefore {
			break
		}
		if time.Now().After(leakDeadline) {
			t.Fatalf("goroutines leaked: %d before, %d after drain",
				goroutinesBefore, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
