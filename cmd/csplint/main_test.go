package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// TestViolationExitsNonZero pins the CI contract: csplint over a package
// with a deliberate violation (the analysis fixtures) prints positioned
// diagnostics and exits 1.
func TestViolationExitsNonZero(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{
		"-dir", "../..",
		"-analyzers", "ctxloop",
		"./internal/analysis/testdata/src/ctxloop",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "ctxloop.go:") || !strings.Contains(stdout.String(), "ctxloop:") {
		t.Errorf("diagnostics missing file position or analyzer name:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("stderr missing findings summary: %s", stderr.String())
	}
}

// TestCleanExitsZero: a package with no findings exits 0 and prints nothing.
func TestCleanExitsZero(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-dir", "../..", "./internal/cq"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run produced output:\n%s", stdout.String())
	}
}

// TestJSONGolden pins the -json wire format over the suppress fixture, which
// mixes surviving and suppressed findings: one JSON object per line, paths
// relative to -dir, suppressed findings included but excluded from the exit
// decision. Regenerate with `go test -run JSON -update`.
func TestJSONGolden(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{
		"-dir", "../..",
		"-json",
		"./internal/analysis/testdata/src/suppress",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (fixture has unsuppressed findings)\nstderr: %s", code, stderr.String())
	}

	goldenPath := filepath.Join("testdata", "json.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(stdout.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if stdout.String() != string(want) {
		t.Errorf("-json output mismatch\n-- got --\n%s-- want --\n%s", stdout.String(), want)
	}

	// Every line must round-trip as a finding with the full field set.
	sawSuppressed, sawSurvivor := false, false
	for _, line := range strings.Split(strings.TrimSpace(stdout.String()), "\n") {
		var f finding
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("line is not a JSON finding: %q: %v", line, err)
		}
		if f.File == "" || f.Line == 0 || f.Analyzer == "" || f.Message == "" {
			t.Errorf("finding with missing fields: %+v", f)
		}
		if filepath.IsAbs(f.File) {
			t.Errorf("file not relativized to -dir: %s", f.File)
		}
		if f.Suppressed {
			sawSuppressed = true
		} else {
			sawSurvivor = true
		}
	}
	if !sawSuppressed || !sawSurvivor {
		t.Errorf("fixture should yield both suppressed and surviving findings (suppressed=%v survivor=%v)", sawSuppressed, sawSurvivor)
	}
}

// TestUsageErrorsExitTwo: unknown analyzers, unloadable patterns and bad
// flags are usage/load failures, distinct from findings.
func TestUsageErrorsExitTwo(t *testing.T) {
	cases := [][]string{
		{"-analyzers", "nosuch", "./..."},
		{"-dir", "../..", "./no/such/package"},
		{"-nosuchflag"},
	}
	for _, args := range cases {
		var stdout, stderr strings.Builder
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr: %s)", args, code, stderr.String())
		}
	}
}

// TestListAnalyzers: -list names every analyzer in the suite.
func TestListAnalyzers(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"ctxloop", "obsboundary", "obslabel", "arenaretain", "atomicmix"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}
