package main

import (
	"strings"
	"testing"
)

// TestViolationExitsNonZero pins the CI contract: csplint over a package
// with a deliberate violation (the analysis fixtures) prints positioned
// diagnostics and exits 1.
func TestViolationExitsNonZero(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{
		"-dir", "../..",
		"-analyzers", "ctxloop",
		"./internal/analysis/testdata/src/ctxloop",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "ctxloop.go:") || !strings.Contains(stdout.String(), "ctxloop:") {
		t.Errorf("diagnostics missing file position or analyzer name:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("stderr missing findings summary: %s", stderr.String())
	}
}

// TestCleanExitsZero: a package with no findings exits 0 and prints nothing.
func TestCleanExitsZero(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-dir", "../..", "./internal/cq"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run produced output:\n%s", stdout.String())
	}
}

// TestUsageErrorsExitTwo: unknown analyzers, unloadable patterns and bad
// flags are usage/load failures, distinct from findings.
func TestUsageErrorsExitTwo(t *testing.T) {
	cases := [][]string{
		{"-analyzers", "nosuch", "./..."},
		{"-dir", "../..", "./no/such/package"},
		{"-nosuchflag"},
	}
	for _, args := range cases {
		var stdout, stderr strings.Builder
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr: %s)", args, code, stderr.String())
		}
	}
}

// TestListAnalyzers: -list names every analyzer in the suite.
func TestListAnalyzers(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"ctxloop", "obsboundary", "obslabel", "arenaretain", "atomicmix"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}
