// Command csplint runs the repo's invariant analyzers (internal/analysis)
// over the module and prints file:line:col diagnostics.
//
// Usage:
//
//	csplint [-analyzers ctxloop,obsboundary,...] [-dir DIR] [packages]
//
// Packages default to ./... resolved in -dir (default: the current
// directory). Exit status: 0 clean, 1 diagnostics found, 2 usage or load
// failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"csdb/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("csplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	names := fs.String("analyzers", "", "comma-separated analyzer names (default: all)")
	dir := fs.String("dir", ".", "directory to resolve package patterns in")
	list := fs.Bool("list", false, "list available analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := analysis.ByName(*names)
	if err != nil {
		fmt.Fprintln(stderr, "csplint:", err)
		return 2
	}
	loaded, err := analysis.Load(*dir, fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, "csplint:", err)
		return 2
	}
	diags := analysis.Run(loaded, analyzers)
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "csplint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
