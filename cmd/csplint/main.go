// Command csplint runs the repo's invariant analyzers (internal/analysis)
// over the module and prints file:line:col diagnostics.
//
// Usage:
//
//	csplint [-analyzers ctxloop,obsboundary,...] [-dir DIR] [-json] [packages]
//
// Packages default to ./... resolved in -dir (default: the current
// directory). With -json, every finding — including suppressed ones — is
// printed as one JSON object per line, with the file path relative to -dir;
// the exit status still counts only unsuppressed findings. Exit status:
// 0 clean, 1 diagnostics found, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"csdb/internal/analysis"
)

// finding is the -json wire format, one object per line.
type finding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("csplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	names := fs.String("analyzers", "", "comma-separated analyzer names (default: all)")
	dir := fs.String("dir", ".", "directory to resolve package patterns in")
	list := fs.Bool("list", false, "list available analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit one JSON finding per line (includes suppressed findings)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := analysis.ByName(*names)
	if err != nil {
		fmt.Fprintln(stderr, "csplint:", err)
		return 2
	}
	loaded, err := analysis.Load(*dir, fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, "csplint:", err)
		return 2
	}
	if *jsonOut {
		return runJSON(loaded, analyzers, *dir, stdout, stderr)
	}
	diags := analysis.Run(loaded, analyzers)
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "csplint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// runJSON prints every finding (suppressed included) as one JSON object per
// line. Paths are relativized to dir so the output is stable across checkouts.
func runJSON(loaded *analysis.Loaded, analyzers []*analysis.Analyzer, dir string, stdout, stderr io.Writer) int {
	absDir, err := filepath.Abs(dir)
	if err != nil {
		fmt.Fprintln(stderr, "csplint:", err)
		return 2
	}
	enc := json.NewEncoder(stdout)
	unsuppressed := 0
	for _, f := range analysis.RunDetailed(loaded, analyzers) {
		file := f.Pos.Filename
		if rel, err := filepath.Rel(absDir, file); err == nil {
			file = filepath.ToSlash(rel)
		}
		if err := enc.Encode(finding{
			File:       file,
			Line:       f.Pos.Line,
			Col:        f.Pos.Column,
			Analyzer:   f.Analyzer,
			Message:    f.Message,
			Suppressed: f.Suppressed,
		}); err != nil {
			fmt.Fprintln(stderr, "csplint:", err)
			return 2
		}
		if !f.Suppressed {
			unsuppressed++
		}
	}
	if unsuppressed > 0 {
		fmt.Fprintf(stderr, "csplint: %d finding(s)\n", unsuppressed)
		return 1
	}
	return 0
}
