package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"csdb/internal/obs"
)

// fakeDaemon serves canned /metrics and /events bodies in the daemon's
// formats.
func fakeDaemon(t *testing.T, metrics, events string) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") != "json" {
			t.Errorf("csptop fetched /metrics without format=json")
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, metrics)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprint(w, events)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

const sampleMetrics = `{
  "cspd.solve.requests": 120,
  "cspd.admit.queue_depth": 3,
  "cspd.solve.inflight": 2,
  "cspd.admit.shed": 1,
  "cspd.cache.outcome{outcome=\"hit\"}": 30,
  "cspd.cache.outcome{outcome=\"miss\"}": 10,
  "cspd.http.request_ns{route=\"engine\",strategy=\"mac\",status=\"200\"}": {
    "count": 4, "sum": 4000,
    "bounds": [{"le": 1023, "count": 3}, {"le": 2047, "count": 1}]
  },
  "cspd.http.request_ns{route=\"tree\",strategy=\"auto\",status=\"200\"}": {
    "count": 2, "sum": 100,
    "bounds": [{"le": 63, "count": 2}]
  }
}`

const sampleEvents = `{"ts_ns":1754600000000000000,"trace_id":"req-7","source":"cspd","strategy":"mac","verdict":"shed","cause":"admission_queue_full"}
{"ts_ns":1754600001000000000,"trace_id":"req-8","source":"cspd","strategy":"mac","cache":"miss","verdict":"sat"}
`

// TestOnceFrame renders one frame against a fake daemon and checks the
// operator-facing numbers: cache hit rate, per-route latency rows, and the
// shed event line.
func TestOnceFrame(t *testing.T) {
	ts := fakeDaemon(t, sampleMetrics, sampleEvents)
	var buf strings.Builder
	if err := run(ts.URL, 1, true, &buf); err != nil {
		t.Fatalf("run -once: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"cache hit  75.0%",
		"queue depth 3",
		"engine",          // route row
		"tree",            // route row
		"shed",            // event verdict
		"req-7",           // shed event trace id
		"admission_queue", // cause
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "\x1b[2J") {
		t.Error("-once frame contains ANSI clear")
	}
}

func TestSeriesLabels(t *testing.T) {
	name, labels := seriesLabels(`cspd.http.request_ns{route="engine",status="200"}`)
	if name != "cspd.http.request_ns" || labels["route"] != "engine" || labels["status"] != "200" {
		t.Fatalf("seriesLabels = %q %v", name, labels)
	}
	name, labels = seriesLabels("cspd.solve.requests")
	if name != "cspd.solve.requests" || labels != nil {
		t.Fatalf("plain key parsed as %q %v", name, labels)
	}
}

func TestQuantile(t *testing.T) {
	bounds := []obs.BucketBound{{Le: 1, Count: 50}, {Le: 3, Count: 45}, {Le: 7, Count: 5}}
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0.50, 1}, {0.95, 3}, {0.99, 7}, {1.0, 7}} {
		if got := quantile(bounds, tc.q); got != tc.want {
			t.Errorf("quantile(%.2f) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %d, want 0", got)
	}
}

// TestEventLogCapAndTallies pins the scrollback: verdict tallies keep
// counting while the shed/error scrollback stays bounded.
func TestEventLogCapAndTallies(t *testing.T) {
	l := newEventLog(2)
	var evs []obs.SolveEvent
	for i := 0; i < 5; i++ {
		evs = append(evs, obs.SolveEvent{TraceID: fmt.Sprintf("req-%d", i), Verdict: obs.VerdictError})
	}
	evs = append(evs, obs.SolveEvent{Verdict: obs.VerdictSat}, obs.SolveEvent{Verdict: obs.VerdictShed})
	l.add(evs)
	if l.bad != 5 || l.sat != 1 || l.shed != 1 {
		t.Fatalf("tallies bad=%d sat=%d shed=%d", l.bad, l.sat, l.shed)
	}
	if len(l.evs) != 2 {
		t.Fatalf("scrollback len %d, want cap 2", len(l.evs))
	}
	if l.evs[0].TraceID != "req-4" {
		t.Fatalf("scrollback kept %q, want newest-but-one req-4", l.evs[0].TraceID)
	}
}
