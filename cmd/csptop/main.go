// Command csptop is a terminal dashboard for a running cspd: it polls the
// daemon's /metrics (JSON snapshot) and /events (wide-event ring) endpoints
// and renders the serving picture a production operator watches — live
// request rate, latency quantiles by route, cache hit rate, queue depth,
// and the most recent shed/error events.
//
// Usage:
//
//	csptop [-url http://localhost:8344] [-interval 2s] [-once]
//
// -once renders a single frame without clearing the screen and exits; it is
// the scriptable/smoke-test mode. The continuous mode redraws every
// interval using ANSI clear, and rates are deltas between consecutive
// polls.
//
// Note /events is drain-or-lose: csptop consumes the ring it polls, so run
// one csptop (or let it own -events consumption) per daemon.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"csdb/internal/obs"
)

func main() {
	url := flag.String("url", "http://localhost:8344", "cspd base URL")
	interval := flag.Duration("interval", 2*time.Second, "poll/redraw interval")
	once := flag.Bool("once", false, "render one frame and exit")
	flag.Parse()
	if err := run(*url, *interval, *once, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "csptop:", err)
		os.Exit(1)
	}
}

// run is the poll/render loop; -once does one fetch+render and returns.
func run(url string, interval time.Duration, once bool, w io.Writer) error {
	if interval <= 0 {
		return fmt.Errorf("-interval must be positive, got %v", interval)
	}
	var prev *snapshot
	events := newEventLog(8)
	for {
		cur, err := fetchSnapshot(url)
		if err != nil {
			return err
		}
		evs, err := fetchEvents(url)
		if err != nil {
			return err
		}
		events.add(evs)
		if !once {
			fmt.Fprint(w, "\x1b[2J\x1b[H") // clear screen, home cursor
		}
		render(w, url, cur, prev, events)
		if once {
			return nil
		}
		prev = cur
		time.Sleep(interval)
	}
}

// snapshot is one /metrics?format=json poll, split into scalars and
// histogram series, taken at a wall-clock instant (for rate deltas).
type snapshot struct {
	at      time.Time
	scalars map[string]float64
	hists   map[string]obs.HistogramSnapshot
}

func fetchSnapshot(url string) (*snapshot, error) {
	resp, err := http.Get(url + "/metrics?format=json")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		return nil, fmt.Errorf("decoding /metrics: %w", err)
	}
	snap := &snapshot{
		at:      time.Now(),
		scalars: make(map[string]float64, len(raw)),
		hists:   make(map[string]obs.HistogramSnapshot),
	}
	for k, v := range raw {
		var f float64
		if err := json.Unmarshal(v, &f); err == nil {
			snap.scalars[k] = f
			continue
		}
		var h obs.HistogramSnapshot
		if err := json.Unmarshal(v, &h); err == nil && h.Count > 0 {
			snap.hists[k] = h
		}
	}
	return snap, nil
}

func fetchEvents(url string) ([]obs.SolveEvent, error) {
	resp, err := http.Get(url + "/events")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /events: %s", resp.Status)
	}
	var events []obs.SolveEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var ev obs.SolveEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("decoding /events line: %w", err)
		}
		events = append(events, ev)
	}
	return events, sc.Err()
}

// eventLog keeps the most recent shed/error events across polls (the ring
// is drained every poll, so csptop must remember what it saw).
type eventLog struct {
	cap  int
	evs  []obs.SolveEvent
	sat  int64
	bad  int64
	shed int64
}

func newEventLog(capacity int) *eventLog { return &eventLog{cap: capacity} }

func (l *eventLog) add(events []obs.SolveEvent) {
	for _, ev := range events {
		switch ev.Verdict {
		case obs.VerdictShed:
			l.shed++
		case obs.VerdictError:
			l.bad++
		default:
			l.sat++
			continue
		}
		l.evs = append(l.evs, ev)
	}
	if n := len(l.evs); n > l.cap {
		l.evs = append(l.evs[:0:0], l.evs[n-l.cap:]...)
	}
}

// seriesLabels parses a flat-snapshot series key like
// `name{route="engine",strategy="mac"}` into (name, labels). Plain keys
// return (key, nil).
func seriesLabels(key string) (string, map[string]string) {
	open := strings.IndexByte(key, '{')
	if open < 0 || !strings.HasSuffix(key, "}") {
		return key, nil
	}
	labels := make(map[string]string)
	for _, part := range strings.Split(key[open+1:len(key)-1], ",") {
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			continue
		}
		labels[part[:eq]] = strings.Trim(part[eq+1:], `"`)
	}
	return key[:open], labels
}

// quantile returns the inclusive upper bound of the bucket where the q-th
// fraction of observations lands, from per-bucket (non-cumulative) bounds.
func quantile(bounds []obs.BucketBound, q float64) int64 {
	var total int64
	for _, b := range bounds {
		total += b.Count
	}
	if total == 0 {
		return 0
	}
	target := int64(q*float64(total) + 0.5)
	if target < 1 {
		target = 1
	}
	var cum int64
	for _, b := range bounds {
		cum += b.Count
		if cum >= target {
			return b.Le
		}
	}
	return bounds[len(bounds)-1].Le
}

// mergeBounds sums per-bucket counts keyed by upper bound.
func mergeBounds(dst map[int64]int64, bounds []obs.BucketBound) {
	for _, b := range bounds {
		dst[b.Le] += b.Count
	}
}

func sortedBounds(m map[int64]int64) []obs.BucketBound {
	out := make([]obs.BucketBound, 0, len(m))
	for le, n := range m {
		out = append(out, obs.BucketBound{Le: le, Count: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Le < out[j].Le })
	return out
}

// routeQuantiles aggregates the labeled request histogram by route label.
func routeQuantiles(snap *snapshot) ([]string, map[string][]obs.BucketBound, map[string]int64) {
	byRoute := make(map[string]map[int64]int64)
	counts := make(map[string]int64)
	for key, h := range snap.hists {
		name, labels := seriesLabels(key)
		if name != "cspd.http.request_ns" || labels["route"] == "" {
			continue
		}
		r := labels["route"]
		if byRoute[r] == nil {
			byRoute[r] = make(map[int64]int64)
		}
		mergeBounds(byRoute[r], h.Bounds)
		counts[r] += h.Count
	}
	routes := make([]string, 0, len(byRoute))
	merged := make(map[string][]obs.BucketBound, len(byRoute))
	for r, m := range byRoute {
		routes = append(routes, r)
		merged[r] = sortedBounds(m)
	}
	sort.Strings(routes)
	return routes, merged, counts
}

// render draws one frame.
func render(w io.Writer, url string, cur, prev *snapshot, events *eventLog) {
	fmt.Fprintf(w, "csptop — %s — %s\n\n", url, cur.at.Format("15:04:05"))

	requests := cur.scalars["cspd.solve.requests"]
	qps := 0.0
	if prev != nil {
		if dt := cur.at.Sub(prev.at).Seconds(); dt > 0 {
			qps = (requests - prev.scalars["cspd.solve.requests"]) / dt
		}
	}
	hits := cur.scalars[`cspd.cache.outcome{outcome="hit"}`]
	misses := cur.scalars[`cspd.cache.outcome{outcome="miss"}`]
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = 100 * hits / (hits + misses)
	}
	fmt.Fprintf(w, "requests %-8.0f qps %-8.1f cache hit %5.1f%%   queue depth %-4.0f inflight %-4.0f shed %.0f\n\n",
		requests, qps, hitRate,
		cur.scalars["cspd.admit.queue_depth"], cur.scalars["cspd.solve.inflight"],
		cur.scalars["cspd.admit.shed"])

	routes, merged, counts := routeQuantiles(cur)
	fmt.Fprintf(w, "%-10s %8s %10s %10s %10s\n", "route", "count", "p50", "p95", "p99")
	if len(routes) == 0 {
		fmt.Fprintln(w, "(no requests yet)")
	}
	for _, r := range routes {
		b := merged[r]
		fmt.Fprintf(w, "%-10s %8d %10v %10v %10v\n", r, counts[r],
			time.Duration(quantile(b, 0.50)).Round(time.Microsecond),
			time.Duration(quantile(b, 0.95)).Round(time.Microsecond),
			time.Duration(quantile(b, 0.99)).Round(time.Microsecond))
	}

	fmt.Fprintf(w, "\nevents seen: ok %d, shed %d, error %d\n", events.sat, events.shed, events.bad)
	if len(events.evs) > 0 {
		fmt.Fprintln(w, "last shed/error events:")
		for _, ev := range events.evs {
			fmt.Fprintf(w, "  %s %-9s %-6s cause=%s strategy=%s\n",
				time.Unix(0, ev.TsNs).Format("15:04:05"), ev.TraceID, ev.Verdict, ev.Cause, ev.Strategy)
		}
	}
}
