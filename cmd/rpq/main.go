// Command rpq works with regular-path queries over edge-labeled graph
// databases (Section 7 of the paper).
//
// Usage:
//
//	rpq eval    -db db.txt -query 'a(b|c)*'
//	rpq cert    -views views.txt -query 'ab' [-pair x,y]
//	rpq rewrite -query 'ab' -view 'v=a' -view 'w=b'
//
// Database file: one edge per line, "source label target" (labels are
// single characters). Views file: "name=regex" definition lines followed by
// "name source target" extension lines; '#' starts a comment.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"csdb/internal/automata"
	"csdb/internal/rpq"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: rpq <eval|cert|rewrite> [flags]")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "eval":
		err = runEval(os.Args[2:])
	case "cert":
		err = runCert(os.Args[2:])
	case "rewrite":
		err = runRewrite(os.Args[2:])
	default:
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpq:", err)
		os.Exit(2)
	}
}

func runEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	dbPath := fs.String("db", "", "database file (source label target per line)")
	query := fs.String("query", "", "regular-path query")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dbPath == "" || *query == "" {
		return fmt.Errorf("eval needs -db and -query")
	}
	db, err := loadDB(*dbPath)
	if err != nil {
		return err
	}
	pairs, err := db.EvalRegex(*query)
	if err != nil {
		return err
	}
	for _, p := range pairs {
		fmt.Printf("%s %s\n", p.X, p.Y)
	}
	fmt.Printf("%d pair(s)\n", len(pairs))
	return nil
}

func runCert(args []string) error {
	fs := flag.NewFlagSet("cert", flag.ExitOnError)
	viewsPath := fs.String("views", "", "views file (definitions then extension pairs)")
	query := fs.String("query", "", "regular-path query")
	pair := fs.String("pair", "", "specific pair c,d to test (default: all pairs)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *viewsPath == "" || *query == "" {
		return fmt.Errorf("cert needs -views and -query")
	}
	views, ext, err := loadViews(*viewsPath)
	if err != nil {
		return err
	}
	q, err := automata.ParseRegex(*query)
	if err != nil {
		return err
	}
	tpl, err := rpq.ConstraintTemplate(q, views)
	if err != nil {
		return err
	}
	if *pair != "" {
		parts := strings.SplitN(*pair, ",", 2)
		if len(parts) != 2 {
			return fmt.Errorf("bad -pair %q", *pair)
		}
		cert, err := rpq.CertainAnswer(tpl, ext, parts[0], parts[1])
		if err != nil {
			return err
		}
		fmt.Printf("(%s,%s) certain: %v\n", parts[0], parts[1], cert)
		return nil
	}
	answers, err := rpq.CertainAnswers(tpl, ext)
	if err != nil {
		return err
	}
	for _, p := range answers {
		fmt.Printf("%s %s\n", p.X, p.Y)
	}
	fmt.Printf("%d certain answer(s)\n", len(answers))
	return nil
}

func runRewrite(args []string) error {
	fs := flag.NewFlagSet("rewrite", flag.ExitOnError)
	query := fs.String("query", "", "regular-path query")
	var viewDefs multiFlag
	fs.Var(&viewDefs, "view", "view definition name=regex (repeatable)")
	maxLen := fs.Int("words", 3, "list accepted view words up to this length")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *query == "" || len(viewDefs) == 0 {
		return fmt.Errorf("rewrite needs -query and at least one -view")
	}
	var views []rpq.View
	for _, def := range viewDefs {
		parts := strings.SplitN(def, "=", 2)
		if len(parts) != 2 || len(parts[0]) != 1 {
			return fmt.Errorf("bad -view %q (want single-char name=regex)", def)
		}
		views = append(views, rpq.View{Name: parts[0][0], Def: parts[1]})
	}
	rw, err := rpq.MaximalRewriting(*query, views)
	if err != nil {
		return err
	}
	empty, witness := rw.IsEmpty()
	if empty {
		fmt.Println("maximal rewriting: empty (the views cannot answer the query)")
		return nil
	}
	fmt.Printf("maximal rewriting: nonempty; shortest view word %q\n", witness)
	var alpha []byte
	for _, v := range views {
		alpha = append(alpha, v.Name)
	}
	fmt.Printf("accepted view words up to length %d:\n", *maxLen)
	for _, w := range automata.WordsUpTo(alpha, *maxLen) {
		if rw.Accepts(w) {
			fmt.Printf("  %q\n", w)
		}
	}
	return nil
}

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func loadDB(path string) (*rpq.DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	db := rpq.NewDB()
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 || len(fields[1]) != 1 {
			return nil, fmt.Errorf("%s:%d: want 'source label target' with a one-char label", path, line)
		}
		db.AddEdge(fields[0], fields[1][0], fields[2])
	}
	return db, sc.Err()
}

func loadViews(path string) ([]rpq.View, rpq.Extension, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	var views []rpq.View
	ext := rpq.Extension{}
	known := map[byte]bool{}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if strings.Contains(text, "=") {
			parts := strings.SplitN(text, "=", 2)
			name := strings.TrimSpace(parts[0])
			if len(name) != 1 {
				return nil, nil, fmt.Errorf("%s:%d: view names are single characters", path, line)
			}
			views = append(views, rpq.View{Name: name[0], Def: strings.TrimSpace(parts[1])})
			known[name[0]] = true
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 || len(fields[0]) != 1 {
			return nil, nil, fmt.Errorf("%s:%d: want 'view source target'", path, line)
		}
		name := fields[0][0]
		if !known[name] {
			return nil, nil, fmt.Errorf("%s:%d: extension for undefined view %q", path, line, name)
		}
		ext[name] = append(ext[name], rpq.Pair{X: fields[1], Y: fields[2]})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return views, ext, nil
}
