package main

import "testing"

func TestRunEval(t *testing.T) {
	if err := runEval([]string{"-db", "../../testdata/citations.db", "-query", "cc*"}); err != nil {
		t.Fatalf("eval: %v", err)
	}
	if err := runEval([]string{"-query", "c"}); err == nil {
		t.Fatal("missing -db accepted")
	}
	if err := runEval([]string{"-db", "../../testdata/citations.db", "-query", "c)("}); err == nil {
		t.Fatal("bad regex accepted")
	}
}

func TestRunCert(t *testing.T) {
	if err := runCert([]string{"-views", "../../testdata/views.txt", "-query", "cc*"}); err != nil {
		t.Fatalf("cert: %v", err)
	}
	if err := runCert([]string{"-views", "../../testdata/views.txt", "-query", "cc*", "-pair", "p1,p3"}); err != nil {
		t.Fatalf("cert -pair: %v", err)
	}
	if err := runCert([]string{"-views", "../../testdata/views.txt", "-query", "cc*", "-pair", "nocomma"}); err == nil {
		t.Fatal("bad -pair accepted")
	}
	if err := runCert([]string{"-query", "c"}); err == nil {
		t.Fatal("missing -views accepted")
	}
}

func TestRunRewrite(t *testing.T) {
	if err := runRewrite([]string{"-query", "ab", "-view", "v=a", "-view", "w=b"}); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	// Empty rewriting path.
	if err := runRewrite([]string{"-query", "a", "-view", "v=a|b"}); err != nil {
		t.Fatalf("rewrite empty: %v", err)
	}
	if err := runRewrite([]string{"-query", "ab"}); err == nil {
		t.Fatal("missing views accepted")
	}
	if err := runRewrite([]string{"-query", "ab", "-view", "toolong=a"}); err == nil {
		t.Fatal("multi-char view name accepted")
	}
}

func TestLoadViews(t *testing.T) {
	views, ext, err := loadViews("../../testdata/views.txt")
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 2 || len(ext['v']) != 2 || len(ext['w']) != 1 {
		t.Fatalf("views parsed wrong: %d views, ext v=%d w=%d", len(views), len(ext['v']), len(ext['w']))
	}
}
