package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"csdb/internal/csp"
	"csdb/internal/gen"
)

// searchReps is how many times each (instance, engine) cell is timed; the
// JSON records every run plus the median, mirroring `go test -bench -count`.
const searchReps = 3

// searchCase is one hard instance in the search benchmark suite. Every
// generator is seeded, so the suite is the same set of instances on every
// machine and the trajectory file stays comparable across captures.
type searchCase struct {
	name string
	inst *csp.Instance
}

func searchCases() []searchCase {
	return []searchCase{
		// Fully symmetric UNSAT: the classic worst case for learning
		// (restarts redo interchangeable subtrees) and the best case for
		// raw per-node propagation speed.
		{"SearchPigeonhole9x8", gen.Pigeonhole(9, 8)},
		// Quasigroup completion: structured SAT where conflict-weighted
		// branching collapses the search tree.
		{"SearchQuasigroup18h130", gen.Quasigroup(rand.New(rand.NewSource(1)), 18, 130)},
		// Model B at the phase transition, one UNSAT seed and one SAT seed.
		{"SearchPhase35x20d25s1", gen.PhaseTransition(rand.New(rand.NewSource(1)), 35, 20, 0.25)},
		{"SearchPhase35x20d25s2", gen.PhaseTransition(rand.New(rand.NewSource(2)), 35, 20, 0.25)},
	}
}

// searchEngines are the three engines the rewrite is measured across: the
// retained seed solver (the "before"), the bitset MAC engine, and the
// restart/nogood learning engine.
var searchEngines = []struct {
	name  string
	solve func(*csp.Instance) csp.Result
}{
	{"seed", func(p *csp.Instance) csp.Result {
		return csp.SolveSeed(p, csp.Options{Algorithm: csp.MAC, VarOrder: csp.MRV})
	}},
	{"bitset", func(p *csp.Instance) csp.Result {
		return csp.Solve(p, csp.Options{Algorithm: csp.MAC, VarOrder: csp.MRV})
	}},
	{"learn", func(p *csp.Instance) csp.Result {
		return csp.Solve(p, csp.Options{Learn: true})
	}},
}

// runSearchBench times every engine on every case in-process and returns
// benchjson-shaped results: one Bench per "Case/engine" name, plus a summary
// snapshot (node counts, verdicts, seed-relative speedups) for the label's
// obs field. Engines must agree on every verdict — a mismatch is a
// correctness bug, and the tool exits nonzero rather than record it.
func runSearchBench() (map[string]Bench, map[string]any) {
	benches := map[string]Bench{}
	snap := map[string]any{
		"suite": fmt.Sprintf("%d instances x %d engines x %d reps", len(searchCases()), len(searchEngines), searchReps),
	}
	for _, c := range searchCases() {
		verdicts := make([]bool, len(searchEngines))
		medians := make([]float64, len(searchEngines))
		for ei, eng := range searchEngines {
			var runs []Run
			var res csp.Result
			for r := 0; r < searchReps; r++ {
				t0 := time.Now()
				res = eng.solve(c.inst)
				runs = append(runs, Run{NsOp: float64(time.Since(t0).Nanoseconds())})
			}
			if res.Aborted {
				fmt.Fprintf(os.Stderr, "benchjson: %s/%s aborted\n", c.name, eng.name)
				os.Exit(1)
			}
			verdicts[ei] = res.Found
			b := Bench{
				Runs:       runs,
				MedianNsOp: median(runs, func(r Run) float64 { return r.NsOp }),
			}
			medians[ei] = b.MedianNsOp
			benches[c.name+"/"+eng.name] = b
			snap[c.name+".nodes."+eng.name] = res.Stats.Nodes
			if eng.name == "learn" {
				snap[c.name+".restarts"] = res.Stats.Restarts
				snap[c.name+".nogoods"] = res.Stats.NogoodsRecorded
			}
			fmt.Fprintf(os.Stderr, "benchjson: %-24s %-7s median %12v nodes %d found=%v\n",
				c.name, eng.name, time.Duration(b.MedianNsOp).Round(time.Millisecond), res.Stats.Nodes, res.Found)
		}
		for ei := 1; ei < len(searchEngines); ei++ {
			if verdicts[ei] != verdicts[0] {
				fmt.Fprintf(os.Stderr, "benchjson: VERDICT MISMATCH on %s: %s=%v %s=%v\n",
					c.name, searchEngines[0].name, verdicts[0], searchEngines[ei].name, verdicts[ei])
				os.Exit(1)
			}
			snap[c.name+".speedup."+searchEngines[ei].name] = round2(medians[0] / medians[ei])
		}
		snap[c.name+".found"] = verdicts[0]
	}
	return benches, snap
}

func round2(x float64) float64 { return float64(int64(x*100+0.5)) / 100 }
