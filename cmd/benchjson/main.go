// Command benchjson converts `go test -bench` text output (read from stdin)
// into a labeled JSON trajectory file, merging into an existing file so that
// multiple labeled runs (e.g. the pre-rewrite "before" numbers and the
// current "after" numbers) live side by side and speedups stay auditable.
//
// Usage:
//
//	go test -bench 'Join|Semijoin|Yannakakis|Engine' -benchmem -count 5 ./... |
//	    go run ./cmd/benchjson -o BENCH_relation.json -label after
//
// With -obs the tool additionally runs a canonical chain-join workload
// in-process with the observability registry enabled and embeds the
// resulting metrics snapshot (join/planner counters, the planner's
// estimate-vs-actual error histogram, workload allocation bytes) under the
// label, so planner quality is versioned alongside the timing trajectory.
//
// With -search the tool ignores stdin and instead times the search-core
// engines (seed, bitset MAC, restart/nogood learning) in-process on a fixed
// suite of hard instances — pigeonhole, quasigroup completion, and Model B
// at the phase transition — recording wall-clock runs, medians, node counts,
// and seed-relative speedups. The default output switches to
// BENCH_search.json:
//
//	go run ./cmd/benchjson -search -label after
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"csdb/internal/obs"
	"csdb/internal/relation"
)

// Run is one benchmark measurement line.
type Run struct {
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op,omitempty"`
	AllocsOp float64 `json:"allocs_op,omitempty"`
}

// Bench aggregates the -count repetitions of one benchmark.
type Bench struct {
	Runs           []Run   `json:"runs"`
	MedianNsOp     float64 `json:"median_ns_op"`
	MedianBOp      float64 `json:"median_b_op"`
	MedianAllocsOp float64 `json:"median_allocs_op"`
}

// Label is one labeled capture: a full benchmark sweep at a point in time,
// optionally with an observability snapshot of the canonical workload.
type Label struct {
	GeneratedAt string           `json:"generated_at"`
	GoVersion   string           `json:"go_version"`
	Benchmarks  map[string]Bench `json:"benchmarks"`
	Obs         map[string]any   `json:"obs,omitempty"`
}

// File is the on-disk trajectory format.
type File struct {
	Note   string           `json:"note"`
	Labels map[string]Label `json:"labels"`
}

func main() {
	out := flag.String("o", "BENCH_relation.json", "output JSON file (merged in place)")
	label := flag.String("label", "current", "label for this capture (e.g. before, after)")
	withObs := flag.Bool("obs", false, "embed a metrics snapshot of the canonical chain-join workload")
	search := flag.Bool("search", false, "time the search-core engine suite in-process instead of reading stdin")
	note := flag.String("note", "", "override the file's note line (kept from the existing file when empty)")
	flag.Parse()

	var runs map[string][]Run
	var searchBenches map[string]Bench
	var searchSnap map[string]any
	if *search {
		// The search suite produces its own timings; -o keeps its flag
		// default only if the user did not set it explicitly.
		explicitOut := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "o" {
				explicitOut = true
			}
		})
		if !explicitOut {
			*out = "BENCH_search.json"
		}
		searchBenches, searchSnap = runSearchBench()
	} else {
		runs = parseBench(os.Stdin)
		if len(runs) == 0 {
			fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
			os.Exit(1)
		}
	}

	f := File{Labels: map[string]Label{}}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: cannot parse existing %s: %v\n", *out, err)
			os.Exit(1)
		}
		if f.Labels == nil {
			f.Labels = map[string]Label{}
		}
	}
	switch {
	case *note != "":
		f.Note = *note
	case f.Note == "" && *search:
		f.Note = "search-core wall-clock per (instance, engine): seed vs bitset MAC vs restart/nogood learning; medians plus node counts and seed-relative speedups"
	case f.Note == "":
		f.Note = "per-benchmark ns/op, B/op, allocs/op across -count repetitions; medians for comparison"
	}

	// Merge into the label if it already exists: a capture of a subset of
	// benchmarks (e.g. a backfilled baseline for one new benchmark) updates
	// those entries and leaves the rest of the label intact.
	benches := map[string]Bench{}
	if prev, ok := f.Labels[*label]; ok {
		for name, b := range prev.Benchmarks {
			benches[name] = b
		}
	}
	for name, rs := range runs {
		benches[name] = Bench{
			Runs:           rs,
			MedianNsOp:     median(rs, func(r Run) float64 { return r.NsOp }),
			MedianBOp:      median(rs, func(r Run) float64 { return r.BOp }),
			MedianAllocsOp: median(rs, func(r Run) float64 { return r.AllocsOp }),
		}
	}
	for name, b := range searchBenches {
		benches[name] = b
	}
	obsSnap := f.Labels[*label].Obs // keep an earlier snapshot unless replaced
	if *withObs {
		obsSnap = captureObsSnapshot()
	}
	if searchSnap != nil {
		obsSnap = searchSnap
	}
	f.Labels[*label] = Label{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		Benchmarks:  benches,
		Obs:         obsSnap,
	}

	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks under label %q to %s\n", len(benches), *label, *out)
}

// captureObsSnapshot runs the canonical chain-join workload (the shape
// behind BenchmarkJoinAllChain) with metrics on and returns the relation.*
// slice of the registry snapshot plus the workload's allocation bytes.
func captureObsSnapshot() map[string]any {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)

	const k, rows, dom = 8, 20000, 20000
	rels := make([]*relation.Relation, k)
	for i := range rels {
		a, b := fmt.Sprintf("c%d", i), fmt.Sprintf("c%d", i+1)
		r := relation.MustNew(a, b)
		for j := 0; j < rows; j++ {
			// The multiplicative stride makes join keys well spread without
			// pulling in a PRNG, matching the benchmark's density profile.
			r.MustAdd(relation.Tuple{(j*2654435761 + i) % dom, (j*40503 + 7*i) % dom})
		}
		rels[i] = r
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	out := relation.JoinAll(rels)
	runtime.ReadMemStats(&after)

	snap := map[string]any{
		"workload":             fmt.Sprintf("chain k=%d rows=%d dom=%d", k, rows, dom),
		"workload.out_rows":    out.Len(),
		"workload.alloc_bytes": after.TotalAlloc - before.TotalAlloc,
	}
	for name, v := range obs.DefaultRegistry().Snapshot() {
		if strings.HasPrefix(name, "relation.") {
			snap[name] = v
		}
	}
	return snap
}

// parseBench extracts benchmark result lines of the form
//
//	BenchmarkName-8   100   11118273 ns/op   5118342 B/op   120034 allocs/op
func parseBench(src *os.File) map[string][]Run {
	runs := make(map[string][]Run)
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		var r Run
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsOp = v
				ok = true
			case "B/op":
				r.BOp = v
			case "allocs/op":
				r.AllocsOp = v
			}
		}
		if ok {
			runs[name] = append(runs[name], r)
		}
	}
	return runs
}

func median(rs []Run, get func(Run) float64) float64 {
	vals := make([]float64, len(rs))
	for i, r := range rs {
		vals[i] = get(r)
	}
	sort.Float64s(vals)
	n := len(vals)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}
