package main

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"csdb/internal/csp"
	"csdb/internal/cspio"
	"csdb/internal/obs"
)

// The HTTP surface of the solver daemon:
//
//	GET  /metrics          registry snapshot as expvar-style JSON, plus a
//	                       few runtime gauges (goroutines, heap)
//	GET  /trace            drain the span ring buffer as JSON lines;
//	                       ?trace_id=X keeps only one request's spans
//	POST /solve            run a solver on the POSTed instance text
//	GET  /debug/pprof/*    the standard pprof handlers
//	GET  /debug/vars       the stock expvar handler
//	GET  /healthz          liveness probe
//
// Solve requests are parameterized by query string:
//
//	strategy  mac|fc|bt|cbj|join|portfolio|parallel  (default portfolio)
//	timeout   Go duration, capped by -max-timeout    (default 30s)
//	workers   worker bound for strategy=parallel
//
// Every request gets a trace ID (req-N); the solve runs under a root span
// carrying it, so /trace output can be attributed per request even when
// solves overlap.

// Daemon-level metrics.
var (
	obsRequests  = obs.NewCounter("cspd.solve.requests")
	obsErrors    = obs.NewCounter("cspd.solve.errors")
	obsSolveNs   = obs.NewHistogram("cspd.solve.ns")
	obsInFlight  = obs.NewGauge("cspd.solve.inflight")
	reqIDCounter atomic.Uint64
)

// maxBodyBytes bounds POSTed instances; the text format is compact, so 16MB
// is generous.
const maxBodyBytes = 16 << 20

// server carries daemon configuration shared by handlers.
type server struct {
	maxTimeout time.Duration
	start      time.Time
}

func newServer(maxTimeout time.Duration) *server {
	return &server{maxTimeout: maxTimeout, start: time.Now()}
}

// mux builds the daemon's routing table.
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /trace", s.handleTrace)
	mux.HandleFunc("POST /solve", s.handleSolve)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// handleMetrics serves the registry snapshot plus runtime basics as one
// flat JSON object.
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := obs.DefaultRegistry().Snapshot()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	snap["runtime.goroutines"] = runtime.NumGoroutine()
	snap["runtime.heap_alloc_bytes"] = ms.HeapAlloc
	snap["runtime.total_alloc_bytes"] = ms.TotalAlloc
	snap["runtime.num_gc"] = ms.NumGC
	snap["cspd.uptime_seconds"] = int64(time.Since(s.start).Seconds())
	snap["cspd.trace.dropped"] = obs.DefaultTracer().Dropped()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(snap)
}

// handleTrace drains the ring buffer as JSON lines. With ?trace_id=X only
// the matching spans are written (the rest are discarded with the drain, in
// keeping with the ring's drain-or-lose contract).
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	spans := obs.DefaultTracer().Drain()
	if id := r.URL.Query().Get("trace_id"); id != "" {
		kept := spans[:0]
		for _, sp := range spans {
			if sp.TraceID == id {
				kept = append(kept, sp)
			}
		}
		spans = kept
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = obs.WriteJSONL(w, spans)
}

// solveResponse is the JSON reply of POST /solve.
type solveResponse struct {
	TraceID  string    `json:"trace_id"`
	Strategy string    `json:"strategy"`
	Found    bool      `json:"found"`
	Aborted  bool      `json:"aborted"`
	Solution []int     `json:"solution,omitempty"`
	Winner   string    `json:"winner,omitempty"`
	Subtrees int       `json:"subtrees,omitempty"`
	Stats    csp.Stats `json:"stats"`
	WallNs   int64     `json:"wall_ns"`
}

func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) {
	obsRequests.Inc()
	obsInFlight.Add(1)
	defer obsInFlight.Add(-1)

	inst, err := cspio.Parse(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		obsErrors.Inc()
		http.Error(w, "parse: "+err.Error(), http.StatusBadRequest)
		return
	}

	q := r.URL.Query()
	strategy := q.Get("strategy")
	if strategy == "" {
		strategy = "portfolio"
	}
	timeout := 30 * time.Second
	if t := q.Get("timeout"); t != "" {
		d, err := time.ParseDuration(t)
		if err != nil || d <= 0 {
			obsErrors.Inc()
			http.Error(w, "bad timeout "+strconv.Quote(t), http.StatusBadRequest)
			return
		}
		timeout = d
	}
	if s.maxTimeout > 0 && timeout > s.maxTimeout {
		timeout = s.maxTimeout
	}
	workers := 0
	if ws := q.Get("workers"); ws != "" {
		n, err := strconv.Atoi(ws)
		if err != nil || n < 0 {
			obsErrors.Inc()
			http.Error(w, "bad workers "+strconv.Quote(ws), http.StatusBadRequest)
			return
		}
		workers = n
	}

	traceID := fmt.Sprintf("req-%d", reqIDCounter.Add(1))
	root := obs.StartRoot("cspd.solve", traceID)
	root.SetStr("strategy", strategy)
	ctx, cancel := context.WithTimeout(obs.WithSpan(r.Context(), root), timeout)
	defer cancel()

	resp := solveResponse{TraceID: traceID, Strategy: strategy}
	start := time.Now()
	switch strategy {
	case "portfolio":
		res := csp.Portfolio(ctx, inst, csp.PortfolioOptions{})
		resp.Found, resp.Aborted = res.Found, res.Aborted
		resp.Solution, resp.Winner, resp.Stats = res.Solution, res.Winner, res.Result.Stats
	case "parallel":
		res := csp.SolveParallel(ctx, inst, csp.ParallelOptions{Workers: workers})
		resp.Found, resp.Aborted = res.Found, res.Aborted
		resp.Solution, resp.Subtrees, resp.Stats = res.Solution, res.Subtrees, res.Stats
	case "cbj":
		res := csp.SolveCBJCtx(ctx, inst, csp.Options{})
		resp.Found, resp.Aborted = res.Found, res.Aborted
		resp.Solution, resp.Stats = res.Solution, res.Stats
	case "join":
		res := csp.JoinSolveCtx(ctx, inst)
		resp.Found, resp.Aborted = res.Found, res.Aborted
		resp.Solution, resp.Stats = res.Solution, res.Stats
	case "mac", "fc", "bt":
		opts := csp.Options{}
		switch strategy {
		case "fc":
			opts.Algorithm = csp.FC
		case "bt":
			opts.Algorithm = csp.BT
		}
		res := csp.SolveCtx(ctx, inst, opts)
		resp.Found, resp.Aborted = res.Found, res.Aborted
		resp.Solution, resp.Stats = res.Solution, res.Stats
	default:
		obsErrors.Inc()
		root.End()
		http.Error(w, "unknown strategy "+strconv.Quote(strategy), http.StatusBadRequest)
		return
	}
	resp.WallNs = time.Since(start).Nanoseconds()
	obsSolveNs.Observe(resp.WallNs)
	if resp.Found {
		root.SetInt("found", 1)
	}
	if resp.Aborted {
		root.SetInt("aborted", 1)
	}
	root.End()

	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(&resp)
}
