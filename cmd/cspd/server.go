package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"net/url"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"csdb/internal/csp"
	"csdb/internal/cspio"
	"csdb/internal/dispatch"
	"csdb/internal/obs"
	"csdb/internal/serve"
)

// The HTTP surface of the solver daemon:
//
//	GET  /metrics          registry snapshot as expvar-style JSON, plus a
//	                       few runtime gauges (goroutines, heap)
//	GET  /trace            drain the span ring buffer as JSON lines;
//	                       ?trace_id=X keeps only one request's spans
//	POST /solve            run a solver on the POSTed instance text
//	GET  /debug/pprof/*    the standard pprof handlers
//	GET  /debug/vars       the stock expvar handler
//	GET  /healthz          liveness probe
//
// Solve requests are parameterized by query string:
//
//	strategy  mac|fc|bt|cbj|join|learn|portfolio|parallel|auto
//	          (default portfolio); learn is the restart/nogood engine
//	timeout   Go duration, capped by -max-timeout         (default 30s)
//	workers   worker bound for strategy=parallel; rejected with strategy=learn
//	          (the learning engine is single-threaded)
//	route     auto|portfolio — alias for strategy, the dispatcher surface:
//	          route=auto classifies the instance's structure and runs the
//	          matching polynomial solver (internal/dispatch); the response
//	          then carries the chosen route in "route". route and strategy
//	          are distinct cache keys, so an auto-routed result is never
//	          replayed to a portfolio caller or vice versa.
//
// Every request gets a trace ID (req-N); the solve runs under a root span
// carrying it, so /trace output can be attributed per request even when
// solves overlap.
//
// Since CSP solving is worst-case intractable, /solve does not run the
// engine once per request. Requests flow through three serving layers
// (internal/serve):
//
//  1. a canonical result cache — instances are hashed order-insensitively
//     (cspio.CanonicalHash), and a completed non-aborted result for the same
//     (instance, strategy, workers) is replayed without touching the engine;
//  2. singleflight collapsing — concurrent identical requests share one
//     engine solve (and one admission slot);
//  3. admission control — at most -max-inflight engine solves run at once,
//     the next -queue callers wait FIFO, and everyone beyond that is shed
//     with 429 + Retry-After.
//
// Responses carry "cached": true when the body was served from the cache or
// a shared flight rather than a dedicated engine run. Engine work is
// deliberately detached from per-connection cancellation: a disconnecting
// client does not abort a solve that collapsed followers may share (and
// whose result warms the cache). Solves are bounded by their timeout and by
// daemon shutdown (the drain deadline cancels s.baseCtx).

// Daemon-level metrics. cspd.solve.requests counts POSTs that reach the
// handler; cspd.solve.executed counts actual engine runs, so the difference
// is work saved by the cache and collapsing layers.
var (
	obsRequests  = obs.NewCounter("cspd.solve.requests")
	obsErrors    = obs.NewCounter("cspd.solve.errors")
	obsTooLarge  = obs.NewCounter("cspd.solve.too_large")
	obsExecuted  = obs.NewCounter("cspd.solve.executed")
	obsCollapsed = obs.NewCounter("cspd.solve.collapsed")
	obsSolveNs   = obs.NewHistogram("cspd.solve.ns")
	obsInFlight  = obs.NewGauge("cspd.solve.inflight")
	reqIDCounter atomic.Uint64
)

// maxBodyBytes bounds POSTed instances; the text format is compact, so 16MB
// is generous.
const maxBodyBytes = 16 << 20

// solveParams are the validated query parameters of one /solve request.
type solveParams struct {
	strategy string
	timeout  time.Duration
	workers  int
}

// strategies is the accepted strategy set; validation happens at the HTTP
// boundary so the dispatch switch never sees an unknown name.
var strategies = map[string]bool{
	"mac": true, "fc": true, "bt": true, "cbj": true, "learn": true,
	"join": true, "portfolio": true, "parallel": true, "auto": true,
}

// server carries daemon configuration and the serving layers shared by
// handlers.
type server struct {
	cfg   daemonConfig
	start time.Time

	admit   *serve.Admission
	cache   *serve.Cache
	flights serve.Group

	// analyzer backs strategy=auto: it classifies instances and routes them
	// to polynomial solvers, keeping its own classification LRU so repeat
	// structure skips straight to the routed solver.
	analyzer *dispatch.Analyzer

	// baseCtx parents every engine solve; cancelSolves aborts them all (the
	// drain deadline's hard stop).
	baseCtx      context.Context
	cancelSolves context.CancelFunc

	// dispatch runs one engine solve. Tests substitute a controllable fake;
	// production uses realDispatch.
	dispatch func(ctx context.Context, inst *csp.Instance, p solveParams) solveResponse
}

func newServer(cfg daemonConfig) *server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &server{
		cfg:          cfg,
		start:        time.Now(),
		admit:        serve.NewAdmission(cfg.maxInflight, cfg.maxQueue),
		cache:        serve.NewCache(cfg.cacheSize),
		analyzer:     dispatch.NewAnalyzer(0, cfg.cacheSize),
		baseCtx:      ctx,
		cancelSolves: cancel,
	}
	s.dispatch = s.realDispatch
	return s
}

// mux builds the daemon's routing table. /solve is registered without a
// method pattern: the handler rejects non-POSTs itself with an explicit 405
// and Allow header before touching the body.
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /trace", s.handleTrace)
	mux.HandleFunc("/solve", s.handleSolve)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// handleMetrics serves the registry snapshot plus runtime basics as one
// flat JSON object.
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := obs.DefaultRegistry().Snapshot()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	snap["runtime.goroutines"] = runtime.NumGoroutine()
	snap["runtime.heap_alloc_bytes"] = ms.HeapAlloc
	snap["runtime.total_alloc_bytes"] = ms.TotalAlloc
	snap["runtime.num_gc"] = ms.NumGC
	snap["cspd.uptime_seconds"] = int64(time.Since(s.start).Seconds())
	snap["cspd.trace.dropped"] = obs.DefaultTracer().Dropped()
	snap["cspd.cache.len"] = s.cache.Len()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(snap)
}

// handleTrace drains the ring buffer as JSON lines. With ?trace_id=X only
// the matching spans are written (the rest are discarded with the drain, in
// keeping with the ring's drain-or-lose contract).
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	spans := obs.DefaultTracer().Drain()
	if id := r.URL.Query().Get("trace_id"); id != "" {
		kept := spans[:0]
		for _, sp := range spans {
			if sp.TraceID == id {
				kept = append(kept, sp)
			}
		}
		spans = kept
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = obs.WriteJSONL(w, spans)
}

// solveResponse is the JSON reply of POST /solve. Cached reports whether the
// body was replayed from the result cache or a collapsed flight instead of a
// dedicated engine run; for such responses WallNs (and Stats) describe the
// original engine solve, not this request.
type solveResponse struct {
	TraceID  string `json:"trace_id"`
	Strategy string `json:"strategy"`
	Cached   bool   `json:"cached"`
	Found    bool   `json:"found"`
	Aborted  bool   `json:"aborted"`
	Solution []int  `json:"solution,omitempty"`
	Winner   string `json:"winner,omitempty"`
	Subtrees int    `json:"subtrees,omitempty"`
	// Route is set for strategy=auto: the structural class the dispatcher
	// routed the instance to (tree, schaefer, acyclic, width, hard).
	Route  string    `json:"route,omitempty"`
	Stats  csp.Stats `json:"stats"`
	WallNs int64     `json:"wall_ns"`
}

// flightKey identifies collapsible requests: the cache key plus the
// effective timeout, so a short-deadline request never hands its (possibly
// aborted) outcome to a caller that asked for more time.
type flightKey struct {
	serve.CacheKey
	timeout time.Duration
}

// flightResult is what one singleflight execution yields: either a response
// (possibly replayed from the cache) or an admission error.
type flightResult struct {
	resp      solveResponse
	fromCache bool
	err       error
}

func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "method not allowed: POST an instance to /solve", http.StatusMethodNotAllowed)
		return
	}
	obsRequests.Inc()
	obsInFlight.Add(1)
	defer obsInFlight.Add(-1)

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			obsTooLarge.Inc()
			http.Error(w, fmt.Sprintf("body too large: limit is %d bytes", tooBig.Limit),
				http.StatusRequestEntityTooLarge)
			return
		}
		obsErrors.Inc()
		http.Error(w, "read: "+err.Error(), http.StatusBadRequest)
		return
	}
	inst, err := cspio.Parse(bytes.NewReader(body))
	if err != nil {
		obsErrors.Inc()
		http.Error(w, "parse: "+err.Error(), http.StatusBadRequest)
		return
	}

	traceID := fmt.Sprintf("req-%d", reqIDCounter.Add(1))
	root := obs.StartRoot("cspd.solve", traceID)
	// All paths below, including parameter rejections, end the root span
	// exactly once (TestUnknownStrategySpanAndCache pins this).
	defer root.End()

	params, err := s.parseParams(r.URL.Query())
	if err != nil {
		obsErrors.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	root.SetStr("strategy", params.strategy)

	key := serve.CacheKey{
		Hash:     cspio.CanonicalHash(inst),
		Strategy: params.strategy,
		Workers:  params.workers,
	}
	// The cache lookup lives inside the flight so a result committed by an
	// overlapping request is found even when this caller raced past its own
	// pre-flight check — an engine run after a completed identical solve is
	// impossible, not just unlikely.
	v, ranFlight := s.flights.Do(flightKey{key, params.timeout}, func() any {
		if cached, ok := s.cache.Get(key); ok {
			return flightResult{resp: cached.(solveResponse), fromCache: true}
		}
		release, err := s.admit.Acquire(s.baseCtx)
		if err != nil {
			return flightResult{err: err}
		}
		defer release()
		ctx, cancel := context.WithTimeout(obs.WithSpan(s.baseCtx, root), params.timeout)
		defer cancel()
		obsExecuted.Inc()
		resp := s.dispatch(ctx, inst, params)
		obsSolveNs.Observe(resp.WallNs)
		if !resp.Aborted {
			s.cache.Add(key, resp)
		}
		return flightResult{resp: resp}
	})
	res := v.(flightResult)
	switch {
	case errors.Is(res.err, serve.ErrShed):
		root.SetInt("shed", 1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "solver at capacity: admission queue full, retry later",
			http.StatusTooManyRequests)
		return
	case res.err != nil:
		// The base context died while queued: the daemon is draining.
		obsErrors.Inc()
		http.Error(w, "shutting down: "+res.err.Error(), http.StatusServiceUnavailable)
		return
	}

	resp := res.resp
	resp.TraceID = traceID
	resp.Cached = res.fromCache || !ranFlight
	if !ranFlight {
		obsCollapsed.Inc()
	}
	if resp.Cached {
		root.SetInt("cached", 1)
	}
	if resp.Found {
		root.SetInt("found", 1)
	}
	if resp.Aborted {
		root.SetInt("aborted", 1)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(&resp)
}

// parseParams validates the query string. The strategy is checked here, at
// the boundary, so neither the flight nor the dispatch switch can see an
// unknown name.
func (s *server) parseParams(q url.Values) (solveParams, error) {
	p := solveParams{strategy: "portfolio", timeout: 30 * time.Second}
	if st := q.Get("strategy"); st != "" {
		if !strategies[st] {
			return p, fmt.Errorf("unknown strategy %s", strconv.Quote(st))
		}
		p.strategy = st
	}
	if rt := q.Get("route"); rt != "" {
		// The dispatcher surface: route=auto turns structural routing on,
		// route=portfolio pins the generic engine. A conflicting strategy=
		// in the same query is rejected rather than silently overridden.
		if rt != "auto" && rt != "portfolio" {
			return p, fmt.Errorf("bad route %s (want auto or portfolio)", strconv.Quote(rt))
		}
		if st := q.Get("strategy"); st != "" && st != rt {
			return p, fmt.Errorf("conflicting strategy=%s and route=%s", st, rt)
		}
		p.strategy = rt
	}
	if t := q.Get("timeout"); t != "" {
		d, err := time.ParseDuration(t)
		if err != nil || d <= 0 {
			return p, fmt.Errorf("bad timeout %s", strconv.Quote(t))
		}
		p.timeout = d
	}
	if s.cfg.maxTimeout > 0 && p.timeout > s.cfg.maxTimeout {
		p.timeout = s.cfg.maxTimeout
	}
	if ws := q.Get("workers"); ws != "" {
		n, err := strconv.Atoi(ws)
		if err != nil || n < 0 {
			return p, fmt.Errorf("bad workers %s", strconv.Quote(ws))
		}
		p.workers = n
	}
	if p.workers > 0 && p.strategy == "learn" {
		// The learning engine is single-threaded; a worker bound is a
		// request for a different engine, not a tunable, so reject it.
		return p, fmt.Errorf("conflicting workers=%d with strategy=learn", p.workers)
	}
	return p, nil
}

// realDispatch runs one engine solve. The strategy has been validated at
// the HTTP boundary; ctx carries the request's root span and is bounded by
// the solve timeout and daemon shutdown.
func (s *server) realDispatch(ctx context.Context, inst *csp.Instance, p solveParams) solveResponse {
	resp := solveResponse{Strategy: p.strategy}
	start := time.Now()
	switch p.strategy {
	case "auto":
		out := s.analyzer.Solve(ctx, inst)
		resp.Found, resp.Aborted = out.Found, out.Aborted
		resp.Solution, resp.Stats = out.Solution, out.Stats
		resp.Route, resp.Winner = out.Route.String(), out.Winner
	case "portfolio":
		res := csp.Portfolio(ctx, inst, csp.PortfolioOptions{})
		resp.Found, resp.Aborted = res.Found, res.Aborted
		resp.Solution, resp.Winner, resp.Stats = res.Solution, res.Winner, res.Result.Stats
	case "parallel":
		res := csp.SolveParallel(ctx, inst, csp.ParallelOptions{Workers: p.workers})
		resp.Found, resp.Aborted = res.Found, res.Aborted
		resp.Solution, resp.Subtrees, resp.Stats = res.Solution, res.Subtrees, res.Stats
	case "cbj":
		res := csp.SolveCBJCtx(ctx, inst, csp.Options{})
		resp.Found, resp.Aborted = res.Found, res.Aborted
		resp.Solution, resp.Stats = res.Solution, res.Stats
	case "learn":
		res := csp.SolveCtx(ctx, inst, csp.Options{Learn: true})
		resp.Found, resp.Aborted = res.Found, res.Aborted
		resp.Solution, resp.Stats = res.Solution, res.Stats
	case "join":
		res := csp.JoinSolveCtx(ctx, inst)
		resp.Found, resp.Aborted = res.Found, res.Aborted
		resp.Solution, resp.Stats = res.Solution, res.Stats
	case "mac", "fc", "bt":
		opts := csp.Options{}
		switch p.strategy {
		case "fc":
			opts.Algorithm = csp.FC
		case "bt":
			opts.Algorithm = csp.BT
		}
		res := csp.SolveCtx(ctx, inst, opts)
		resp.Found, resp.Aborted = res.Found, res.Aborted
		resp.Solution, resp.Stats = res.Solution, res.Stats
	default:
		panic("cspd: unvalidated strategy " + p.strategy)
	}
	resp.WallNs = time.Since(start).Nanoseconds()
	return resp
}
