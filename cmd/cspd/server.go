package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"net/url"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"csdb/internal/csp"
	"csdb/internal/cspio"
	"csdb/internal/dispatch"
	"csdb/internal/obs"
	"csdb/internal/serve"
)

// The HTTP surface of the solver daemon:
//
//	GET  /metrics          registry snapshot in Prometheus text exposition
//	                       format; ?format=json keeps the expvar-style flat
//	                       JSON object (plus runtime gauges)
//	GET  /events           drain the wide-event ring as JSON lines;
//	                       ?trace_id=X keeps only one request's event
//	GET  /trace            drain the span ring buffer as JSON lines;
//	                       ?trace_id=X keeps only one request's spans
//	POST /solve            run a solver on the POSTed instance text
//	GET  /debug/pprof/*    the standard pprof handlers
//	GET  /debug/vars       the stock expvar handler
//	GET  /healthz          liveness probe
//
// Solve requests are parameterized by query string:
//
//	strategy  mac|fc|bt|cbj|join|learn|portfolio|parallel|auto
//	          (default portfolio); learn is the restart/nogood engine
//	timeout   Go duration, capped by -max-timeout         (default 30s)
//	workers   worker bound for strategy=parallel; rejected with strategy=learn
//	          (the learning engine is single-threaded)
//	route     auto|portfolio — alias for strategy, the dispatcher surface:
//	          route=auto classifies the instance's structure and runs the
//	          matching polynomial solver (internal/dispatch); the response
//	          then carries the chosen route in "route". route and strategy
//	          are distinct cache keys, so an auto-routed result is never
//	          replayed to a portfolio caller or vice versa.
//
// Every request gets a trace ID (req-N); the solve runs under a root span
// carrying it, so /trace output can be attributed per request even when
// solves overlap.
//
// Since CSP solving is worst-case intractable, /solve does not run the
// engine once per request. Requests flow through three serving layers
// (internal/serve):
//
//  1. a canonical result cache — instances are hashed order-insensitively
//     (cspio.CanonicalHash), and a completed non-aborted result for the same
//     (instance, strategy, workers) is replayed without touching the engine;
//  2. singleflight collapsing — concurrent identical requests share one
//     engine solve (and one admission slot);
//  3. admission control — at most -max-inflight engine solves run at once,
//     the next -queue callers wait FIFO, and everyone beyond that is shed
//     with 429 + Retry-After.
//
// Responses carry "cached": true when the body was served from the cache or
// a shared flight rather than a dedicated engine run. Engine work is
// deliberately detached from per-connection cancellation: a disconnecting
// client does not abort a solve that collapsed followers may share (and
// whose result warms the cache). Solves are bounded by their timeout and by
// daemon shutdown (the drain deadline cancels s.baseCtx).

// Daemon-level metrics. cspd.solve.requests counts POSTs that reach the
// handler; cspd.solve.executed counts actual engine runs, so the difference
// is work saved by the cache and collapsing layers.
var (
	obsRequests  = obs.NewCounter("cspd.solve.requests")
	obsErrors    = obs.NewCounter("cspd.solve.errors")
	obsTooLarge  = obs.NewCounter("cspd.solve.too_large")
	obsExecuted  = obs.NewCounter("cspd.solve.executed")
	obsCollapsed = obs.NewCounter("cspd.solve.collapsed")
	obsSolveNs   = obs.NewHistogram("cspd.solve.ns")
	obsInFlight  = obs.NewGauge("cspd.solve.inflight")
	// obsRequestNs is the labeled RED latency surface: whole-request wall
	// time by (route, strategy, status). Labels pass through the literal
	// switches below, so the series space is the product of three closed sets.
	obsRequestNs = obs.NewHistogramVec("cspd.http.request_ns", "route", "strategy", "status")
	reqIDCounter atomic.Uint64
)

// statusLabel maps an HTTP status onto the closed status label set: the
// codes /solve can actually produce, with "other" as the safety net.
func statusLabel(code int) string {
	switch code {
	case http.StatusOK:
		return "200"
	case http.StatusBadRequest:
		return "400"
	case http.StatusMethodNotAllowed:
		return "405"
	case http.StatusRequestEntityTooLarge:
		return "413"
	case http.StatusTooManyRequests:
		return "429"
	case http.StatusServiceUnavailable:
		return "503"
	}
	return "other"
}

// strategyLabel maps the requested strategy onto its closed label set. The
// strategy has been validated against the strategies map on every 200 path,
// but error paths can carry an empty ("none") or unknown ("other") value.
// Every case returns its own literal (rather than echoing the input) so the
// obslabel analyzer can prove the label set is closed.
func strategyLabel(s string) string {
	switch s {
	case "mac":
		return "mac"
	case "fc":
		return "fc"
	case "bt":
		return "bt"
	case "cbj":
		return "cbj"
	case "learn":
		return "learn"
	case "join":
		return "join"
	case "portfolio":
		return "portfolio"
	case "parallel":
		return "parallel"
	case "auto":
		return "auto"
	case "":
		return "none"
	}
	return "other"
}

// routeLabel maps the dispatcher's routing outcome onto its closed label
// set: a structural class for auto-routed solves, "engine" when the generic
// engine ran without structural routing. Literal returns per case, for the
// same obslabel reason as strategyLabel.
func routeLabel(r string) string {
	switch r {
	case "tree":
		return "tree"
	case "schaefer":
		return "schaefer"
	case "acyclic":
		return "acyclic"
	case "width":
		return "width"
	case "hard":
		return "hard"
	case "":
		return "engine"
	}
	return "other"
}

// maxBodyBytes bounds POSTed instances; the text format is compact, so 16MB
// is generous.
const maxBodyBytes = 16 << 20

// solveParams are the validated query parameters of one /solve request.
type solveParams struct {
	strategy string
	timeout  time.Duration
	workers  int
}

// strategies is the accepted strategy set; validation happens at the HTTP
// boundary so the dispatch switch never sees an unknown name.
var strategies = map[string]bool{
	"mac": true, "fc": true, "bt": true, "cbj": true, "learn": true,
	"join": true, "portfolio": true, "parallel": true, "auto": true,
}

// server carries daemon configuration and the serving layers shared by
// handlers.
type server struct {
	cfg   daemonConfig
	start time.Time

	admit   *serve.Admission
	cache   *serve.Cache
	flights serve.Group

	// analyzer backs strategy=auto: it classifies instances and routes them
	// to polynomial solvers, keeping its own classification LRU so repeat
	// structure skips straight to the routed solver.
	analyzer *dispatch.Analyzer

	// baseCtx parents every engine solve; cancelSolves aborts them all (the
	// drain deadline's hard stop).
	baseCtx      context.Context
	cancelSolves context.CancelFunc

	// dispatch runs one engine solve. Tests substitute a controllable fake;
	// production uses realDispatch.
	dispatch func(ctx context.Context, inst *csp.Instance, p solveParams) solveResponse
}

func newServer(cfg daemonConfig) *server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &server{
		cfg:          cfg,
		start:        time.Now(),
		admit:        serve.NewAdmission(cfg.maxInflight, cfg.maxQueue),
		cache:        serve.NewCache(cfg.cacheSize),
		analyzer:     dispatch.NewAnalyzer(0, cfg.cacheSize),
		baseCtx:      ctx,
		cancelSolves: cancel,
	}
	s.dispatch = s.realDispatch
	return s
}

// mux builds the daemon's routing table. /solve is registered without a
// method pattern: the handler rejects non-POSTs itself with an explicit 405
// and Allow header before touching the body.
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /events", s.handleEvents)
	mux.HandleFunc("GET /trace", s.handleTrace)
	mux.HandleFunc("/solve", s.handleSolve)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// handleMetrics serves the registry in Prometheus text exposition format by
// default; ?format=json preserves the original flat JSON object (plus
// runtime basics) for the JSON consumers that predate the text format.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") != "json" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = obs.DefaultRegistry().WritePrometheus(w)
		return
	}
	snap := obs.DefaultRegistry().Snapshot()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	snap["runtime.goroutines"] = runtime.NumGoroutine()
	snap["runtime.heap_alloc_bytes"] = ms.HeapAlloc
	snap["runtime.total_alloc_bytes"] = ms.TotalAlloc
	snap["runtime.num_gc"] = ms.NumGC
	snap["cspd.uptime_seconds"] = int64(time.Since(s.start).Seconds())
	snap["cspd.trace.dropped"] = obs.DefaultTracer().Dropped()
	snap["cspd.cache.len"] = s.cache.Len()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(snap)
}

// handleEvents drains the wide-event ring as JSON lines. With ?trace_id=X
// only the matching events are written (the rest are discarded with the
// drain, matching /trace's drain-or-lose contract).
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	events := obs.DefaultEvents().Drain()
	if id := r.URL.Query().Get("trace_id"); id != "" {
		kept := events[:0]
		for _, ev := range events {
			if ev.TraceID == id {
				kept = append(kept, ev)
			}
		}
		events = kept
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = obs.WriteEventsJSONL(w, events)
}

// handleTrace drains the ring buffer as JSON lines. With ?trace_id=X only
// the matching spans are written (the rest are discarded with the drain, in
// keeping with the ring's drain-or-lose contract).
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	spans := obs.DefaultTracer().Drain()
	if id := r.URL.Query().Get("trace_id"); id != "" {
		kept := spans[:0]
		for _, sp := range spans {
			if sp.TraceID == id {
				kept = append(kept, sp)
			}
		}
		spans = kept
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = obs.WriteJSONL(w, spans)
}

// solveResponse is the JSON reply of POST /solve. Cached reports whether the
// body was replayed from the result cache or a collapsed flight instead of a
// dedicated engine run; for such responses WallNs (and Stats) describe the
// original engine solve, not this request.
type solveResponse struct {
	TraceID  string `json:"trace_id"`
	Strategy string `json:"strategy"`
	Cached   bool   `json:"cached"`
	Found    bool   `json:"found"`
	Aborted  bool   `json:"aborted"`
	Solution []int  `json:"solution,omitempty"`
	Winner   string `json:"winner,omitempty"`
	Subtrees int    `json:"subtrees,omitempty"`
	// Route is set for strategy=auto: the structural class the dispatcher
	// routed the instance to (tree, schaefer, acyclic, width, hard).
	Route  string    `json:"route,omitempty"`
	Stats  csp.Stats `json:"stats"`
	WallNs int64     `json:"wall_ns"`
}

// flightKey identifies collapsible requests: the cache key plus the
// effective timeout, so a short-deadline request never hands its (possibly
// aborted) outcome to a caller that asked for more time.
type flightKey struct {
	serve.CacheKey
	timeout time.Duration
}

// flightResult is what one singleflight execution yields: either a response
// (possibly replayed from the cache) or an admission error. queueWaitNs is
// the leader's time in the admission queue; followers share the response
// but not the wait.
type flightResult struct {
	resp        solveResponse
	fromCache   bool
	queueWaitNs int64
	err         error
}

func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) {
	obsRequests.Inc()
	obsInFlight.Add(1)
	defer obsInFlight.Add(-1)

	// Every request gets a trace ID and a root span up front — before the
	// body is read — so error paths (unreadable body, parse failure, bad
	// parameters) are attributable in /trace and /events too. The deferred
	// funnel below emits exactly one wide event per request, whatever path
	// is taken; root.End() is registered after it so the span commits to the
	// ring before the event does.
	traceID := fmt.Sprintf("req-%d", reqIDCounter.Add(1))
	root := obs.StartRoot("cspd.solve", traceID)
	start := time.Now()
	ev := obs.SolveEvent{TraceID: traceID, Source: "cspd"}
	status := http.StatusOK
	defer func() {
		ev.TsNs = time.Now().UnixNano()
		obs.Emit(ev)
		obsRequestNs.Observe(time.Since(start).Nanoseconds(),
			routeLabel(ev.Route), strategyLabel(ev.Strategy), statusLabel(status))
	}()
	defer root.End()

	// fail terminates the request on an error path, recording the outcome
	// once for the event funnel and the status label.
	fail := func(code int, cause, msg string) {
		status = code
		ev.Verdict, ev.Cause = obs.VerdictError, cause
		root.SetStr("error", cause)
		http.Error(w, msg, code)
	}

	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		fail(http.StatusMethodNotAllowed, "method",
			"method not allowed: POST an instance to /solve")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			obsTooLarge.Inc()
			fail(http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Sprintf("body too large: limit is %d bytes", tooBig.Limit))
			return
		}
		obsErrors.Inc()
		fail(http.StatusBadRequest, "read", "read: "+err.Error())
		return
	}
	inst, err := cspio.Parse(bytes.NewReader(body))
	if err != nil {
		obsErrors.Inc()
		fail(http.StatusBadRequest, "parse", "parse: "+err.Error())
		return
	}

	params, err := s.parseParams(r.URL.Query())
	if err != nil {
		obsErrors.Inc()
		fail(http.StatusBadRequest, "params", err.Error())
		return
	}
	root.SetStr("strategy", params.strategy)
	ev.Strategy = params.strategy

	key := serve.CacheKey{
		Hash:     cspio.CanonicalHash(inst),
		Strategy: params.strategy,
		Workers:  params.workers,
	}
	// The cache lookup lives inside the flight so a result committed by an
	// overlapping request is found even when this caller raced past its own
	// pre-flight check — an engine run after a completed identical solve is
	// impossible, not just unlikely.
	v, ranFlight := s.flights.Do(flightKey{key, params.timeout}, func() any {
		if cached, ok := s.cache.Get(key); ok {
			return flightResult{resp: cached.(solveResponse), fromCache: true}
		}
		admitStart := time.Now()
		release, err := s.admit.Acquire(s.baseCtx)
		wait := time.Since(admitStart).Nanoseconds()
		if err != nil {
			return flightResult{queueWaitNs: wait, err: err}
		}
		defer release()
		ctx, cancel := context.WithTimeout(obs.WithSpan(s.baseCtx, root), params.timeout)
		defer cancel()
		obsExecuted.Inc()
		resp := s.dispatch(ctx, inst, params)
		obsSolveNs.Observe(resp.WallNs)
		if !resp.Aborted {
			s.cache.Add(key, resp)
		}
		return flightResult{resp: resp, queueWaitNs: wait}
	})
	res := v.(flightResult)
	switch {
	case errors.Is(res.err, serve.ErrShed):
		root.SetInt("shed", 1)
		status = http.StatusTooManyRequests
		ev.Verdict, ev.Cause = obs.VerdictShed, "admission_queue_full"
		ev.QueueWaitNs = res.queueWaitNs
		// An honest backoff hint: how long the line the caller was shed from
		// is actually moving, not a constant. Routers (cmd/cspr) rely on this
		// to back off proportionally when the whole replica set is saturated.
		w.Header().Set("Retry-After",
			strconv.Itoa(retryAfterSeconds(s.admit.EstimateWait(), s.cfg.drainTimeout)))
		http.Error(w, "solver at capacity: admission queue full, retry later",
			http.StatusTooManyRequests)
		return
	case res.err != nil:
		// The base context died while queued: the daemon is draining.
		obsErrors.Inc()
		fail(http.StatusServiceUnavailable, "draining", "shutting down: "+res.err.Error())
		return
	}

	resp := res.resp
	resp.TraceID = traceID
	resp.Cached = res.fromCache || !ranFlight
	if !ranFlight {
		obsCollapsed.Inc()
	}
	switch {
	case res.fromCache:
		ev.Cache = obs.CacheHit
	case !ranFlight:
		ev.Cache = obs.CacheFollower
	default:
		// This request's flight ran the engine: charge it the queue wait and
		// the engine wall clock. Replayed responses keep WallNs in the body
		// (it describes the original solve) but not in the event.
		ev.Cache = obs.CacheMiss
		ev.QueueWaitNs = res.queueWaitNs
		ev.WallNs = resp.WallNs
	}
	ev.Route = resp.Route
	ev.Winner = resp.Winner
	ev.Nodes = resp.Stats.Nodes
	ev.Backtracks = resp.Stats.Backtracks
	ev.Restarts = resp.Stats.Restarts
	ev.Nogoods = resp.Stats.NogoodsRecorded
	switch {
	case resp.Aborted:
		ev.Verdict = obs.VerdictUnknown
	case resp.Found:
		ev.Verdict = obs.VerdictSat
	default:
		ev.Verdict = obs.VerdictUnsat
	}
	if resp.Cached {
		root.SetInt("cached", 1)
	}
	if resp.Found {
		root.SetInt("found", 1)
	}
	if resp.Aborted {
		root.SetInt("aborted", 1)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(&resp)
}

// retryAfterSeconds turns a predicted queue wait (serve.Admission's recent
// queue-wait EWMA times the current queue depth) into a Retry-After value:
// whole seconds rounded up, at least 1 (the header is integer seconds and 0
// invites an instant retry against a saturated gate), and at most the drain
// budget — a client told to wait longer than the daemon's own shutdown grace
// would outlive a restart. A non-positive drain budget caps at the 1s floor.
func retryAfterSeconds(estimate, drainBudget time.Duration) int {
	secs := int((estimate + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	maxSecs := int(drainBudget / time.Second)
	if maxSecs < 1 {
		maxSecs = 1
	}
	if secs > maxSecs {
		secs = maxSecs
	}
	return secs
}

// parseParams validates the query string. The strategy is checked here, at
// the boundary, so neither the flight nor the dispatch switch can see an
// unknown name.
func (s *server) parseParams(q url.Values) (solveParams, error) {
	p := solveParams{strategy: "portfolio", timeout: 30 * time.Second}
	if st := q.Get("strategy"); st != "" {
		if !strategies[st] {
			return p, fmt.Errorf("unknown strategy %s", strconv.Quote(st))
		}
		p.strategy = st
	}
	if rt := q.Get("route"); rt != "" {
		// The dispatcher surface: route=auto turns structural routing on,
		// route=portfolio pins the generic engine. A conflicting strategy=
		// in the same query is rejected rather than silently overridden.
		if rt != "auto" && rt != "portfolio" {
			return p, fmt.Errorf("bad route %s (want auto or portfolio)", strconv.Quote(rt))
		}
		if st := q.Get("strategy"); st != "" && st != rt {
			return p, fmt.Errorf("conflicting strategy=%s and route=%s", st, rt)
		}
		p.strategy = rt
	}
	if t := q.Get("timeout"); t != "" {
		d, err := time.ParseDuration(t)
		if err != nil || d <= 0 {
			return p, fmt.Errorf("bad timeout %s", strconv.Quote(t))
		}
		p.timeout = d
	}
	if s.cfg.maxTimeout > 0 && p.timeout > s.cfg.maxTimeout {
		p.timeout = s.cfg.maxTimeout
	}
	if ws := q.Get("workers"); ws != "" {
		n, err := strconv.Atoi(ws)
		if err != nil || n < 0 {
			return p, fmt.Errorf("bad workers %s", strconv.Quote(ws))
		}
		p.workers = n
	}
	if p.workers > 0 && p.strategy == "learn" {
		// The learning engine is single-threaded; a worker bound is a
		// request for a different engine, not a tunable, so reject it.
		return p, fmt.Errorf("conflicting workers=%d with strategy=learn", p.workers)
	}
	return p, nil
}

// realDispatch runs one engine solve. The strategy has been validated at
// the HTTP boundary; ctx carries the request's root span and is bounded by
// the solve timeout and daemon shutdown.
func (s *server) realDispatch(ctx context.Context, inst *csp.Instance, p solveParams) solveResponse {
	resp := solveResponse{Strategy: p.strategy}
	start := time.Now()
	switch p.strategy {
	case "auto":
		out := s.analyzer.Solve(ctx, inst)
		resp.Found, resp.Aborted = out.Found, out.Aborted
		resp.Solution, resp.Stats = out.Solution, out.Stats
		resp.Route, resp.Winner = out.Route.String(), out.Winner
	case "portfolio":
		res := csp.Portfolio(ctx, inst, csp.PortfolioOptions{})
		resp.Found, resp.Aborted = res.Found, res.Aborted
		resp.Solution, resp.Winner, resp.Stats = res.Solution, res.Winner, res.Result.Stats
	case "parallel":
		res := csp.SolveParallel(ctx, inst, csp.ParallelOptions{Workers: p.workers})
		resp.Found, resp.Aborted = res.Found, res.Aborted
		resp.Solution, resp.Subtrees, resp.Stats = res.Solution, res.Subtrees, res.Stats
	case "cbj":
		res := csp.SolveCBJCtx(ctx, inst, csp.Options{})
		resp.Found, resp.Aborted = res.Found, res.Aborted
		resp.Solution, resp.Stats = res.Solution, res.Stats
	case "learn":
		res := csp.SolveCtx(ctx, inst, csp.Options{Learn: true})
		resp.Found, resp.Aborted = res.Found, res.Aborted
		resp.Solution, resp.Stats = res.Solution, res.Stats
	case "join":
		res := csp.JoinSolveCtx(ctx, inst)
		resp.Found, resp.Aborted = res.Found, res.Aborted
		resp.Solution, resp.Stats = res.Solution, res.Stats
	case "mac", "fc", "bt":
		opts := csp.Options{}
		switch p.strategy {
		case "fc":
			opts.Algorithm = csp.FC
		case "bt":
			opts.Algorithm = csp.BT
		}
		res := csp.SolveCtx(ctx, inst, opts)
		resp.Found, resp.Aborted = res.Found, res.Aborted
		resp.Solution, resp.Stats = res.Solution, res.Stats
	default:
		panic("cspd: unvalidated strategy " + p.strategy)
	}
	resp.WallNs = time.Since(start).Nanoseconds()
	return resp
}
