// Command cspd is the solver daemon: it serves the portfolio/parallel CSP
// engine over HTTP with first-class observability — a /metrics endpoint
// exposing the shared atomic registry, a /trace endpoint draining the
// structured span ring, the standard pprof handlers, and a /solve endpoint
// that runs a POSTed instance under a per-request trace ID.
//
// Usage:
//
//	cspd [-addr :8344] [-max-timeout 2m] [-trace-cap 16384]
//
// Examples:
//
//	cspd -addr :8344 &
//	curl -s localhost:8344/metrics | jq .
//	curl -s -X POST --data-binary @instance.csp \
//	    'localhost:8344/solve?strategy=portfolio&timeout=5s' | jq .
//	curl -s 'localhost:8344/trace?trace_id=req-1' > trace.jsonl
//	go tool pprof 'localhost:8344/debug/pprof/heap'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"csdb/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8344", "listen address")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "cap on per-request solve timeouts (0 = uncapped)")
	flag.Parse()

	// The daemon is the observability consumer: metrics and tracing are on
	// for its whole lifetime (library default is off).
	obs.SetEnabled(true)
	obs.SetTracing(true)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServer(*maxTimeout).mux(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("cspd: serving /solve /metrics /trace /debug/pprof on %s", *addr)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatal(fmt.Errorf("cspd: %w", err))
	}
}
