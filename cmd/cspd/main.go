// Command cspd is the solver daemon: it serves the portfolio/parallel CSP
// engine over HTTP with first-class observability — a /metrics endpoint
// exposing the shared atomic registry, a /trace endpoint draining the
// structured span ring, the standard pprof handlers, and a /solve endpoint
// that runs a POSTed instance under a per-request trace ID.
//
// Because CSP solving is worst-case intractable, the daemon is built to
// survive heavy repeated traffic rather than to merely multiplex the
// engine: solves pass through admission control (a bounded solve semaphore
// with a bounded FIFO wait queue; overflow is shed with 429), a canonical
// result cache (order-insensitive instance hashing, LRU over completed
// responses), and singleflight collapsing (concurrent identical requests
// share one engine run). SIGINT/SIGTERM trigger a graceful drain: the
// listener closes, in-flight solves get -drain-timeout to finish before
// their contexts are cancelled, the trace ring is flushed, and the process
// exits 0.
//
// Usage:
//
//	cspd [-addr :8344] [-max-timeout 2m] [-max-inflight N] [-queue N]
//	     [-cache N] [-drain-timeout 10s] [-read-timeout 1m]
//	     [-write-timeout 5m] [-idle-timeout 2m]
//	     [-trace-flush file.jsonl] [-events events.jsonl]
//
// Examples:
//
//	cspd -addr :8344 &
//	curl -s localhost:8344/metrics | jq .
//	curl -s -X POST --data-binary @instance.csp \
//	    'localhost:8344/solve?strategy=portfolio&timeout=5s' | jq .
//	curl -s 'localhost:8344/trace?trace_id=req-1' > trace.jsonl
//	go tool pprof 'localhost:8344/debug/pprof/heap'
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"csdb/internal/obs"
)

// daemonConfig is everything the daemon is parameterized by; flags populate
// it in main and the lifecycle tests construct it directly.
type daemonConfig struct {
	addr         string
	maxTimeout   time.Duration
	drainTimeout time.Duration
	readTimeout  time.Duration
	writeTimeout time.Duration
	idleTimeout  time.Duration
	maxInflight  int
	maxQueue     int
	cacheSize    int
	traceFlush   string
	eventsFile   string
}

func main() {
	var cfg daemonConfig
	flag.StringVar(&cfg.addr, "addr", ":8344", "listen address")
	flag.DurationVar(&cfg.maxTimeout, "max-timeout", 2*time.Minute, "cap on per-request solve timeouts (0 = uncapped)")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 10*time.Second, "grace period for in-flight solves on shutdown before their contexts are cancelled")
	flag.DurationVar(&cfg.readTimeout, "read-timeout", time.Minute, "cap on reading one whole request incl. body; reaps slow-client connections (0 = no limit)")
	flag.DurationVar(&cfg.writeTimeout, "write-timeout", 5*time.Minute, "cap on handling+writing one response; must exceed -max-timeout (0 = no limit)")
	flag.DurationVar(&cfg.idleTimeout, "idle-timeout", 2*time.Minute, "cap on idle keep-alive connections between requests (0 = no limit)")
	flag.IntVar(&cfg.maxInflight, "max-inflight", runtime.GOMAXPROCS(0), "max concurrent engine solves (0 = unlimited, disables the queue)")
	flag.IntVar(&cfg.maxQueue, "queue", 64, "solve requests allowed to wait for a slot before overflow is shed with 429")
	flag.IntVar(&cfg.cacheSize, "cache", 256, "result-cache entries (0 = caching off)")
	flag.StringVar(&cfg.traceFlush, "trace-flush", "", "file to flush the span ring to on shutdown (empty = discard)")
	flag.StringVar(&cfg.eventsFile, "events", "", "file to stream wide events to as JSON lines (empty = ring only, drained by /events)")
	flag.Parse()
	if cfg.writeTimeout > 0 && cfg.maxTimeout > 0 && cfg.writeTimeout <= cfg.maxTimeout {
		log.Fatalf("cspd: -write-timeout %v must exceed -max-timeout %v, or long solves lose their response mid-write", cfg.writeTimeout, cfg.maxTimeout)
	}

	// The daemon is the observability consumer: metrics, tracing and wide
	// events are on for its whole lifetime (library default is off).
	obs.SetEnabled(true)
	obs.SetTracing(true)
	obs.SetEvents(true)

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		log.Fatal(fmt.Errorf("cspd: %w", err))
	}
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	log.Printf("cspd: serving /solve /metrics /trace /debug/pprof on %s "+
		"(max-inflight %d, queue %d, cache %d)",
		ln.Addr(), cfg.maxInflight, cfg.maxQueue, cfg.cacheSize)
	// A clean drain (including http.ErrServerClosed from the closed
	// listener) exits 0; only real listen/serve errors are fatal.
	if err := runDaemon(newServer(cfg), ln, sigCh, log.Printf); err != nil {
		log.Fatal(fmt.Errorf("cspd: %w", err))
	}
}
