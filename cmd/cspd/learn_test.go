package main

import (
	"testing"
)

// strategy=learn is a first-class engine on /solve: it solves, it is cached
// under its own key (never sharing a mac entry for the same instance), and a
// replay skips the engine.
func TestSolveLearnStrategy(t *testing.T) {
	ts, _ := startDaemon(t)
	executedBefore := obsExecuted.Load()

	mac := postSolve(t, ts, "strategy=mac&timeout=10s", sampleInstance)
	learn := postSolve(t, ts, "strategy=learn&timeout=10s", sampleInstance)
	if d := obsExecuted.Load() - executedBefore; d != 2 {
		t.Fatalf("mac and learn shared a cache entry: %d engine runs, want 2", d)
	}
	if mac.Cached || learn.Cached {
		t.Fatalf("fresh solves reported cached: mac=%v learn=%v", mac.Cached, learn.Cached)
	}
	if !learn.Found || learn.Aborted {
		t.Fatalf("learn on satisfiable sample: found=%v aborted=%v", learn.Found, learn.Aborted)
	}
	if learn.Stats.Strategy != "Learn+DomWdeg" {
		t.Fatalf("learn response strategy label %q", learn.Stats.Strategy)
	}

	learn2 := postSolve(t, ts, "strategy=learn&timeout=10s", sampleInstance)
	if !learn2.Cached {
		t.Fatal("learn replay not served from cache")
	}
	if d := obsExecuted.Load() - executedBefore; d != 2 {
		t.Fatalf("cached learn replay ran the engine: %d runs, want 2", d)
	}

	if res := postSolve(t, ts, "strategy=learn&timeout=10s", unsatInstance); res.Found || res.Aborted {
		t.Fatalf("learn on unsat instance: found=%v aborted=%v", res.Found, res.Aborted)
	}
}
