package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"csdb/internal/obs"
)

// sampleInstance is a small satisfiable 3-variable instance in the cspio
// text format: a chain x!=y, y!=z over a 3-value domain. MAC solves it with
// root propagation plus a short search, which is exactly the span shape the
// trace test asserts on.
const sampleInstance = `
vars 3
dom 3
names x y z
con 0 1 : 0 1 | 0 2 | 1 0 | 1 2 | 2 0 | 2 1
con 1 2 : 0 1 | 0 2 | 1 0 | 1 2 | 2 0 | 2 1
`

// unsatInstance has no solution: x=y and x!=y simultaneously.
const unsatInstance = `
vars 2
dom 2
con 0 1 : 0 0 | 1 1
con 0 1 : 0 1 | 1 0
`

// testConfig is the daemon configuration used by the httptest harness:
// admission and caching on, bounds small but comfortable.
func testConfig() daemonConfig {
	return daemonConfig{
		maxTimeout:   time.Minute,
		drainTimeout: 5 * time.Second,
		readTimeout:  time.Minute,
		writeTimeout: 2 * time.Minute,
		idleTimeout:  time.Minute,
		maxInflight:  4,
		maxQueue:     16,
		cacheSize:    64,
	}
}

// withDaemonObs turns metrics, tracing and wide events on for one test (the
// daemon does this at startup), restoring global state afterwards.
func withDaemonObs(t *testing.T) {
	t.Helper()
	prevEnabled, prevTracing, prevEvents := obs.Enabled(), obs.Tracing(), obs.EventsActive()
	obs.SetEnabled(true)
	obs.SetTracing(true)
	obs.SetEvents(true)
	obs.DefaultTracer().Drain() // start from an empty ring
	obs.DefaultEvents().Drain()
	t.Cleanup(func() {
		obs.DefaultTracer().Drain()
		obs.DefaultEvents().Drain()
		obs.SetEnabled(prevEnabled)
		obs.SetTracing(prevTracing)
		obs.SetEvents(prevEvents)
	})
}

// startDaemon spins up the full daemon surface on an httptest server with
// observability on.
func startDaemon(t *testing.T) (*httptest.Server, *server) {
	t.Helper()
	return startDaemonCfg(t, testConfig())
}

func startDaemonCfg(t *testing.T, cfg daemonConfig) (*httptest.Server, *server) {
	t.Helper()
	withDaemonObs(t)
	srv := newServer(cfg)
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)
	return ts, srv
}

func postSolve(t *testing.T, ts *httptest.Server, query, body string) solveResponse {
	t.Helper()
	resp, err := http.Post(ts.URL+"/solve?"+query, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/solve?%s: status %d", query, resp.StatusCode)
	}
	var out solveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func drainSpans(t *testing.T, ts *httptest.Server, query string) []obs.SpanRecord {
	t.Helper()
	resp, err := http.Get(ts.URL + "/trace" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/trace: status %d", resp.StatusCode)
	}
	var spans []obs.SpanRecord
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var rec obs.SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		spans = append(spans, rec)
	}
	return spans
}

// TestSolveEndToEnd drives /solve across strategies and checks verdicts.
func TestSolveEndToEnd(t *testing.T) {
	ts, _ := startDaemon(t)
	for _, strategy := range []string{"mac", "fc", "bt", "cbj", "join", "learn", "portfolio", "parallel"} {
		res := postSolve(t, ts, "strategy="+strategy+"&timeout=10s", sampleInstance)
		if !res.Found || res.Aborted {
			t.Fatalf("strategy %s: found=%v aborted=%v", strategy, res.Found, res.Aborted)
		}
		if len(res.Solution) != 3 || res.Solution[0] == res.Solution[1] || res.Solution[1] == res.Solution[2] {
			t.Fatalf("strategy %s: bad solution %v", strategy, res.Solution)
		}
		if res.TraceID == "" {
			t.Fatalf("strategy %s: no trace id", strategy)
		}
	}
	if res := postSolve(t, ts, "strategy=mac", unsatInstance); res.Found || res.Aborted {
		t.Fatalf("unsat instance: found=%v aborted=%v", res.Found, res.Aborted)
	}
	if res := postSolve(t, ts, "strategy=portfolio", unsatInstance); res.Found || res.Winner == "" {
		t.Fatalf("unsat portfolio: found=%v winner=%q", res.Found, res.Winner)
	}
}

func TestSolveRejectsBadInput(t *testing.T) {
	ts, _ := startDaemon(t)
	for _, tc := range []struct{ query, body string }{
		{"strategy=warp", sampleInstance},
		{"timeout=yesterday", sampleInstance},
		{"workers=-1", sampleInstance},
		{"", "vars banana"},
	} {
		resp, err := http.Post(ts.URL+"/solve?"+tc.query, "text/plain", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("query %q body %q: status %d, want 400", tc.query, tc.body, resp.StatusCode)
		}
	}
}

// TestTraceNesting is the acceptance test for structured tracing: a MAC
// solve's trace must contain the request root, the solve span under it, and
// search/propagation spans nested under the solve with correct parent IDs.
func TestTraceNesting(t *testing.T) {
	ts, _ := startDaemon(t)
	res := postSolve(t, ts, "strategy=mac", sampleInstance)
	spans := drainSpans(t, ts, "?trace_id="+res.TraceID)
	if len(spans) == 0 {
		t.Fatal("no spans for the request's trace id")
	}
	byID := map[uint64]obs.SpanRecord{}
	var root, solve, search obs.SpanRecord
	for _, sp := range spans {
		byID[sp.ID] = sp
		switch sp.Name {
		case "cspd.solve":
			root = sp
		case "csp.solve":
			solve = sp
		case "csp.search":
			search = sp
		}
		if sp.TraceID != res.TraceID {
			t.Fatalf("span %q has trace %q, want %q", sp.Name, sp.TraceID, res.TraceID)
		}
		if sp.EndNs < sp.StartNs {
			t.Fatalf("span %q ends before it starts", sp.Name)
		}
	}
	if root.ID == 0 || solve.ID == 0 || search.ID == 0 {
		t.Fatalf("missing expected spans (root=%d solve=%d search=%d) in %d spans",
			root.ID, solve.ID, search.ID, len(spans))
	}
	if root.Parent != 0 {
		t.Fatalf("request span has a parent: %+v", root)
	}
	if solve.Parent != root.ID {
		t.Fatalf("csp.solve parent = %d, want request span %d", solve.Parent, root.ID)
	}
	if search.Parent != solve.ID {
		t.Fatalf("csp.search parent = %d, want csp.solve %d", search.Parent, solve.ID)
	}
	rootPropagate, searchPropagate := 0, 0
	for _, sp := range spans {
		if sp.Name != "csp.propagate" {
			continue
		}
		switch sp.Parent {
		case solve.ID:
			rootPropagate++
		case search.ID:
			searchPropagate++
		default:
			t.Fatalf("propagate span parented to %d, not solve/search: %+v", sp.Parent, sp)
		}
	}
	if rootPropagate != 1 {
		t.Fatalf("got %d root propagation spans, want 1", rootPropagate)
	}
	if searchPropagate == 0 {
		t.Fatal("no per-assignment propagation spans under the search span")
	}
	// The ring was drained by the read above.
	if leftover := drainSpans(t, ts, ""); len(leftover) != 0 {
		t.Fatalf("/trace did not drain the ring: %d spans left", len(leftover))
	}
}

// TestMetricsEndpoint checks that solver work shows up in /metrics.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := startDaemon(t)
	postSolve(t, ts, "strategy=portfolio", sampleInstance)

	resp, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	var snap map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"cspd.solve.requests", "csp.solve.calls", "csp.search.nodes",
		"csp.portfolio.races", "runtime.goroutines", "cspd.uptime_seconds",
	} {
		if _, ok := snap[key]; !ok {
			t.Fatalf("/metrics missing %q (keys: %d)", key, len(snap))
		}
	}
	if v, ok := snap["cspd.solve.requests"].(float64); !ok || v < 1 {
		t.Fatalf("cspd.solve.requests = %v, want >= 1", snap["cspd.solve.requests"])
	}
	if hist, ok := snap["cspd.solve.ns"].(map[string]any); !ok || hist["count"].(float64) < 1 {
		t.Fatalf("cspd.solve.ns histogram missing or empty: %v", snap["cspd.solve.ns"])
	}
}

// TestPprofAndHealth checks the operational endpoints end to end.
func TestPprofAndHealth(t *testing.T) {
	ts, _ := startDaemon(t)
	for _, path := range []string{"/debug/pprof/heap?debug=1", "/debug/pprof/", "/debug/vars", "/healthz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
	}
}
