package main

import (
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// Lifecycle harness: run the real daemon loop (runDaemon) on a loopback
// listener, deliver signals through the channel main would wire to
// SIGINT/SIGTERM, and observe the drain from the outside.

// startLifecycle launches runDaemon on a fresh loopback listener and
// returns the base URL, the signal channel, and the daemon's exit channel.
func startLifecycle(t *testing.T, srv *server) (url string, sigCh chan os.Signal, exit chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sigCh = make(chan os.Signal, 1)
	exit = make(chan error, 1)
	go func() { exit <- runDaemon(srv, ln, sigCh, t.Logf) }()
	return "http://" + ln.Addr().String(), sigCh, exit
}

func waitExit(t *testing.T, exit chan error) error {
	t.Helper()
	select {
	case err := <-exit:
		return err
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit within 10s")
		return nil
	}
}

// TestLifecycleDrainsInFlightSolve is the acceptance test for graceful
// shutdown: a SIGTERM-equivalent must stop the listener, let an in-flight
// solve finish inside the grace period, flush the trace ring, and exit
// cleanly (http.ErrServerClosed is not an error).
func TestLifecycleDrainsInFlightSolve(t *testing.T) {
	withDaemonObs(t)
	cfg := testConfig()
	cfg.traceFlush = filepath.Join(t.TempDir(), "final-trace.jsonl")
	srv := newServer(cfg)
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	srv.dispatch = blockingDispatch(started, release)
	url, sigCh, exit := startLifecycle(t, srv)

	// Park one solve in flight.
	solveDone := make(chan solveResponse, 1)
	go func() {
		resp, err := http.Post(url+"/solve", "text/plain", strings.NewReader(sampleInstance))
		if err != nil {
			t.Errorf("in-flight solve: %v", err)
			solveDone <- solveResponse{}
			return
		}
		defer resp.Body.Close()
		var out solveResponse
		if resp.StatusCode != http.StatusOK {
			t.Errorf("in-flight solve: status %d", resp.StatusCode)
		} else if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Errorf("in-flight solve: %v", err)
		}
		solveDone <- out
	}()
	<-started

	sigCh <- syscall.SIGTERM

	// New connections must be refused once the drain begins (the listener
	// is closed before in-flight work completes).
	waitForState(t, "listener to close", func() bool {
		conn, err := net.DialTimeout("tcp", strings.TrimPrefix(url, "http://"), 50*time.Millisecond)
		if err == nil {
			conn.Close()
			return false
		}
		return true
	})
	select {
	case err := <-exit:
		t.Fatalf("daemon exited (%v) before the in-flight solve finished", err)
	default:
	}

	// Let the solve finish inside the grace period: the client must get a
	// complete, non-aborted response, and only then may the daemon exit 0.
	close(release)
	res := <-solveDone
	if !res.Found || res.Aborted {
		t.Fatalf("drained solve: found=%v aborted=%v, want a completed result", res.Found, res.Aborted)
	}
	if err := waitExit(t, exit); err != nil {
		t.Fatalf("clean drain returned error: %v", err)
	}

	// The span ring was flushed on the way out.
	data, err := os.ReadFile(cfg.traceFlush)
	if err != nil {
		t.Fatalf("trace flush file: %v", err)
	}
	if !strings.Contains(string(data), `"cspd.solve"`) {
		t.Fatalf("flushed trace misses the request root span:\n%s", data)
	}
}

// TestLifecycleCancelsSolvesAfterGrace: when the grace period expires, the
// daemon cancels in-flight solve contexts instead of hanging; the handler
// replies with an aborted result and the exit is still clean.
func TestLifecycleCancelsSolvesAfterGrace(t *testing.T) {
	withDaemonObs(t)
	cfg := testConfig()
	cfg.drainTimeout = 50 * time.Millisecond
	srv := newServer(cfg)
	started := make(chan struct{}, 1)
	// Never released: the solve can only end via context cancellation.
	srv.dispatch = blockingDispatch(started, nil)
	url, sigCh, exit := startLifecycle(t, srv)

	solveDone := make(chan solveResponse, 1)
	go func() {
		resp, err := http.Post(url+"/solve", "text/plain", strings.NewReader(sampleInstance))
		if err != nil {
			t.Errorf("in-flight solve: %v", err)
			solveDone <- solveResponse{}
			return
		}
		defer resp.Body.Close()
		var out solveResponse
		_ = json.NewDecoder(resp.Body).Decode(&out)
		solveDone <- out
	}()
	<-started

	sigCh <- syscall.SIGTERM
	if res := <-solveDone; !res.Aborted {
		t.Fatalf("solve past the drain deadline: %+v, want aborted", res)
	}
	if err := waitExit(t, exit); err != nil {
		t.Fatalf("post-deadline drain returned error: %v", err)
	}
}

// TestLifecycleServeErrorIsFatal: a listener failure (as opposed to a
// drain's ErrServerClosed) must surface as a non-nil error — the log.Fatal
// path in main.
func TestLifecycleServeErrorIsFatal(t *testing.T) {
	withDaemonObs(t)
	srv := newServer(testConfig())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln.Close() // Serve will fail on Accept immediately
	sigCh := make(chan os.Signal, 1)
	exit := make(chan error, 1)
	go func() { exit <- runDaemon(srv, ln, sigCh, t.Logf) }()
	if err := waitExit(t, exit); err == nil || errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("broken listener exit = %v, want a real serve error", err)
	}
}

// TestLifecycleIdleShutdownIsClean: with nothing in flight, a signal must
// produce an immediate clean exit.
func TestLifecycleIdleShutdownIsClean(t *testing.T) {
	withDaemonObs(t)
	srv := newServer(testConfig())
	url, sigCh, exit := startLifecycle(t, srv)
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	sigCh <- syscall.SIGTERM
	if err := waitExit(t, exit); err != nil {
		t.Fatalf("idle shutdown returned error: %v", err)
	}
}
