package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"csdb/internal/obs"
)

// End-to-end tests for the wide-event surface: every /solve request — engine
// run, cache hit, shed, error — must leave exactly one event in the /events
// ring whose trace_id matches a root span in the /trace ring, so the three
// telemetry signals (metrics, events, spans) join on one key.

// getEvents drains /events (optionally filtered by ?trace_id=) and decodes
// the JSONL body.
func getEvents(t *testing.T, ts *httptest.Server, query string) []obs.SolveEvent {
	t.Helper()
	resp, err := http.Get(ts.URL + "/events" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("/events content type %q", ct)
	}
	var events []obs.SolveEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var ev obs.SolveEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	return events
}

// getSpans drains /trace (optionally filtered by ?trace_id=) and decodes the
// JSONL body.
func getSpans(t *testing.T, ts *httptest.Server, query string) []obs.SpanRecord {
	t.Helper()
	resp, err := http.Get(ts.URL + "/trace" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var spans []obs.SpanRecord
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var rec obs.SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad span line %q: %v", sc.Text(), err)
		}
		spans = append(spans, rec)
	}
	return spans
}

// requireRootSpan asserts the span set contains the cspd.solve root for the
// given trace id.
func requireRootSpan(t *testing.T, spans []obs.SpanRecord, traceID string) {
	t.Helper()
	for _, sp := range spans {
		if sp.Name == "cspd.solve" && sp.TraceID == traceID {
			return
		}
	}
	t.Fatalf("no cspd.solve root span with trace %q among %d spans", traceID, len(spans))
}

// TestWideEventEngineAndCachePaths runs the same instance twice: the first
// request's event must record an engine run (cache=miss), the second a cache
// replay (cache=hit), and both events must cross-link to their own root
// spans in the /trace ring.
func TestWideEventEngineAndCachePaths(t *testing.T) {
	ts, _ := startDaemon(t)

	fresh := postSolve(t, ts, "strategy=mac", sampleInstance)
	events := getEvents(t, ts, "?trace_id="+fresh.TraceID)
	if len(events) != 1 {
		t.Fatalf("engine run left %d events, want exactly 1", len(events))
	}
	ev := events[0]
	if ev.Cache != obs.CacheMiss || ev.Verdict != obs.VerdictSat {
		t.Fatalf("engine-run event: cache=%q verdict=%q, want miss/sat", ev.Cache, ev.Verdict)
	}
	if ev.Strategy != "mac" || ev.Source != "cspd" {
		t.Fatalf("engine-run event identity: strategy=%q source=%q", ev.Strategy, ev.Source)
	}
	if ev.WallNs <= 0 {
		t.Fatalf("engine-run event has no wall clock: %+v", ev)
	}
	requireRootSpan(t, getSpans(t, ts, "?trace_id="+fresh.TraceID), fresh.TraceID)

	replayed := postSolve(t, ts, "strategy=mac", sampleInstance)
	if !replayed.Cached {
		t.Fatalf("second request not cached: %+v", replayed)
	}
	events = getEvents(t, ts, "?trace_id="+replayed.TraceID)
	if len(events) != 1 {
		t.Fatalf("cache hit left %d events, want exactly 1", len(events))
	}
	ev = events[0]
	if ev.Cache != obs.CacheHit || ev.Verdict != obs.VerdictSat {
		t.Fatalf("cache-hit event: cache=%q verdict=%q, want hit/sat", ev.Cache, ev.Verdict)
	}
	if ev.WallNs != 0 || ev.QueueWaitNs != 0 {
		t.Fatalf("cache-hit event charges engine time: %+v", ev)
	}
	requireRootSpan(t, getSpans(t, ts, "?trace_id="+replayed.TraceID), replayed.TraceID)
}

// TestWideEventShedPath fills the one solve slot and the zero-length queue,
// then asserts the shed request's event: verdict=shed with a cause, and a
// matching root span in the trace ring.
func TestWideEventShedPath(t *testing.T) {
	cfg := testConfig()
	cfg.maxInflight = 1
	cfg.maxQueue = 0
	cfg.cacheSize = 0
	ts, srv := startDaemonCfg(t, cfg)
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	srv.dispatch = blockingDispatch(started, release)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postSolve(t, ts, "", distinctInstance(0))
	}()
	<-started

	resp, err := http.Post(ts.URL+"/solve", "text/plain", strings.NewReader(distinctInstance(1)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status %d, want 429", resp.StatusCode)
	}

	var shed *obs.SolveEvent
	for _, ev := range getEvents(t, ts, "") {
		if ev.Verdict == obs.VerdictShed {
			if shed != nil {
				t.Fatal("more than one shed event")
			}
			ev := ev
			shed = &ev
		}
	}
	if shed == nil {
		t.Fatal("shed request left no wide event")
	}
	if shed.Cause == "" {
		t.Fatalf("shed event has no cause: %+v", shed)
	}
	requireRootSpan(t, getSpans(t, ts, "?trace_id="+shed.TraceID), shed.TraceID)

	close(release)
	wg.Wait()
}

// TestWideEventErrorPath asserts an unparsable body still produces exactly
// one event (verdict=error, cause=parse) with a cross-linked root span.
func TestWideEventErrorPath(t *testing.T) {
	ts, _ := startDaemon(t)

	resp, err := http.Post(ts.URL+"/solve", "text/plain", strings.NewReader("not an instance"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}

	events := getEvents(t, ts, "")
	if len(events) != 1 {
		t.Fatalf("parse error left %d events, want exactly 1", len(events))
	}
	ev := events[0]
	if ev.Verdict != obs.VerdictError || ev.Cause != "parse" {
		t.Fatalf("error event: verdict=%q cause=%q, want error/parse", ev.Verdict, ev.Cause)
	}
	requireRootSpan(t, getSpans(t, ts, "?trace_id="+ev.TraceID), ev.TraceID)
}

// TestMetricsPrometheusText pins the default /metrics representation: text
// exposition format with HELP/TYPE comments and the labeled request series,
// while ?format=json keeps the flat JSON object.
func TestMetricsPrometheusText(t *testing.T) {
	ts, _ := startDaemon(t)
	postSolve(t, ts, "strategy=mac", sampleInstance)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q, want text/plain", ct)
	}
	text := string(body)
	if !strings.HasPrefix(text, "# HELP ") {
		t.Fatalf("text exposition does not open with # HELP: %.80q", text)
	}
	for _, want := range []string{
		"# TYPE cspd_solve_requests_total counter",
		"cspd_solve_requests_total ",
		`cspd_http_request_ns_bucket{route="engine",strategy="mac",status="200",le="`,
		`cspd_http_request_ns_count{route="engine",strategy="mac",status="200"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("text exposition missing %q", want)
		}
	}

	jresp, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	var snap map[string]any
	if err := json.NewDecoder(jresp.Body).Decode(&snap); err != nil {
		t.Fatalf("?format=json is not a JSON object: %v", err)
	}
	if _, ok := snap["cspd.solve.requests"]; !ok {
		t.Fatal("JSON snapshot missing cspd.solve.requests")
	}
}
