package main

import (
	"context"
	"errors"
	"net"
	"net/http"
	"os"
	"time"

	"csdb/internal/obs"
)

// Daemon lifecycle: serve until a signal arrives, then drain gracefully.
//
// On SIGINT/SIGTERM the listener closes (new connections are refused) and
// in-flight requests get cfg.drainTimeout to finish. If the grace period
// expires, the base solve context is cancelled, which aborts every running
// engine solve (the engines poll their contexts — enforced by the ctxloop
// analyzer) and lets the handlers reply with aborted results instead of
// being killed mid-write. After the drain the span ring is flushed to
// cfg.traceFlush, and the daemon reports a clean (nil) exit —
// http.ErrServerClosed is the expected outcome of a shutdown, not an error.

// runDaemon serves s on ln until the listener fails or sigCh delivers a
// signal, then drains. It returns nil on a clean shutdown and the serve
// error otherwise.
//
// The connection timeouts are load-shedding, not politeness: without
// ReadTimeout a client that trickles its request body holds a connection —
// and blocks Shutdown, hence the whole drain — forever, because
// ReadHeaderTimeout stops covering the request once the headers are in.
// WriteTimeout bounds slow readers of the response the same way; it must
// exceed -max-timeout or long solves lose their response mid-write (main
// enforces that). IdleTimeout reaps keep-alive connections between requests.
func runDaemon(s *server, ln net.Listener, sigCh <-chan os.Signal, logf func(string, ...any)) error {
	closeEvents := openEventsSink(s.cfg.eventsFile, logf)
	defer closeEvents()
	httpSrv := &http.Server{
		Handler:           s.mux(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       s.cfg.readTimeout,
		WriteTimeout:      s.cfg.writeTimeout,
		IdleTimeout:       s.cfg.idleTimeout,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		// Serve failed on its own (bad listener, accept error). Abort any
		// stragglers and report; ErrServerClosed here still means "closed",
		// never a fatal condition.
		s.cancelSolves()
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case sig := <-sigCh:
		logf("cspd: caught %v; draining in-flight solves (grace %s)", sig, s.cfg.drainTimeout)
	}

	// Hard-stop timer: when the grace period expires, cancel the base solve
	// context so running solves abort promptly and Shutdown can finish
	// waiting on their handlers.
	hardStop := time.AfterFunc(s.cfg.drainTimeout, func() {
		logf("cspd: drain deadline passed; cancelling in-flight solves")
		s.cancelSolves()
	})
	_ = httpSrv.Shutdown(context.Background())
	hardStop.Stop()
	s.cancelSolves()
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	flushTrace(s.cfg.traceFlush, logf)
	logf("cspd: drained cleanly")
	return nil
}

// openEventsSink attaches a live wide-event stream to the default ring:
// every emitted event is additionally appended to path as one JSON line, so
// a crash loses at most the last unflushed line. The returned func detaches
// the sink (flushing it) and closes the file; with an empty path both are
// no-ops and events stay ring-only.
func openEventsSink(path string, logf func(string, ...any)) func() {
	if path == "" {
		return func() {}
	}
	f, err := os.Create(path)
	if err != nil {
		logf("cspd: events sink: %v", err)
		return func() {}
	}
	obs.DefaultEvents().SetSink(f)
	logf("cspd: streaming wide events to %s", path)
	return func() {
		obs.DefaultEvents().SetSink(nil)
		if err := f.Close(); err != nil {
			logf("cspd: events sink: %v", err)
		}
	}
}

// flushTrace drains the span ring and, if a path is configured, persists
// the spans as JSON lines so the final moments of the daemon stay
// inspectable after exit.
func flushTrace(path string, logf func(string, ...any)) {
	spans := obs.DefaultTracer().Drain()
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		logf("cspd: trace flush: %v", err)
		return
	}
	if err := obs.WriteJSONL(f, spans); err != nil {
		logf("cspd: trace flush: %v", err)
	}
	if err := f.Close(); err != nil {
		logf("cspd: trace flush: %v", err)
		return
	}
	logf("cspd: flushed %d spans to %s", len(spans), path)
}
