package main

import (
	"net/http"
	"strings"
	"testing"
)

// The dispatcher surface of /solve: route=auto and route=portfolio for the
// same instance are distinct cache keys (the route is the Strategy
// component of the key), agree on the verdict, and only the auto response
// carries the structural route.
func TestSolveRouteDistinctCacheKeys(t *testing.T) {
	ts, _ := startDaemon(t)
	executedBefore := obsExecuted.Load()

	auto := postSolve(t, ts, "route=auto&timeout=30s", sampleInstance)
	port := postSolve(t, ts, "route=portfolio&timeout=30s", sampleInstance)
	if d := obsExecuted.Load() - executedBefore; d != 2 {
		t.Fatalf("distinct routes shared a cache entry: %d engine runs, want 2", d)
	}
	if auto.Cached || port.Cached {
		t.Fatalf("fresh solves reported cached: auto=%v portfolio=%v", auto.Cached, port.Cached)
	}
	if auto.Found != port.Found || !auto.Found {
		t.Fatalf("verdicts disagree: auto=%v portfolio=%v (sample is satisfiable)",
			auto.Found, port.Found)
	}
	// sampleInstance is a binary not-equal chain: the dispatcher must have
	// classified it tree and said so; the portfolio route reports none.
	if auto.Route != "tree" {
		t.Fatalf("auto route = %q, want \"tree\"", auto.Route)
	}
	if port.Route != "" {
		t.Fatalf("portfolio response carries route %q", port.Route)
	}

	// Replays hit their own entries: no new engine runs, routes preserved.
	auto2 := postSolve(t, ts, "route=auto&timeout=30s", sampleInstance)
	port2 := postSolve(t, ts, "route=portfolio&timeout=30s", sampleInstance)
	if !auto2.Cached || !port2.Cached {
		t.Fatalf("replays not cached: auto=%v portfolio=%v", auto2.Cached, port2.Cached)
	}
	if d := obsExecuted.Load() - executedBefore; d != 2 {
		t.Fatalf("cached replays ran the engine: %d runs, want 2", d)
	}
	if auto2.Route != auto.Route {
		t.Fatalf("cached replay changed the route: %q vs %q", auto2.Route, auto.Route)
	}
}

func TestSolveRouteParamValidation(t *testing.T) {
	ts, _ := startDaemon(t)
	for _, q := range []string{"route=bogus", "strategy=mac&route=auto", "strategy=portfolio&route=auto"} {
		resp, err := http.Post(ts.URL+"/solve?"+q, "text/plain", strings.NewReader(sampleInstance))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("/solve?%s: status %d, want 400", q, resp.StatusCode)
		}
	}
	// An agreeing strategy=auto&route=auto is not a conflict.
	if res := postSolve(t, ts, "strategy=auto&route=auto&timeout=30s", sampleInstance); !res.Found {
		t.Fatal("strategy=auto&route=auto rejected or wrong verdict")
	}
	// route=auto on an unsatisfiable instance still reports its route.
	res := postSolve(t, ts, "route=auto&timeout=30s", unsatInstance)
	if res.Found {
		t.Fatal("unsat instance reported SAT")
	}
	if res.Route == "" {
		t.Fatal("auto response missing route on UNSAT")
	}
}
