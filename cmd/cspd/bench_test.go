package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"csdb/internal/csp"
	"csdb/internal/cspio"
	"csdb/internal/gen"
	"csdb/internal/obs"
)

// Serving-stack benchmarks: the request latency of a cold engine solve vs a
// canonical-cache hit on the same instance. The workload is the pigeonhole
// instance PHP(8) — 9 pairwise-distinct variables over 8 values — which is
// unsatisfiable and forces MAC through an exponential refutation, the
// worst-case-intractable shape the cache exists to absorb. `make
// bench-serve` captures both medians into BENCH_serve.json.

// benchPH is the pigeonhole size; PHP(8) refutes in hundreds of
// milliseconds, so the cold/hit gap dwarfs HTTP and scheduling noise.
const benchPH = 8

// pigeonholeText renders PHP(n) in the instance text format.
func pigeonholeText(n int) string {
	inst := csp.NewInstance(n+1, n)
	ne := gen.NotEqualTable(n)
	for i := 0; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			inst.MustAddConstraint([]int{i, j}, ne)
		}
	}
	var buf bytes.Buffer
	if err := cspio.Format(&buf, inst); err != nil {
		panic(err)
	}
	return buf.String()
}

// benchDaemon starts the daemon surface as deployed: metrics and tracing
// on, admission bounds at their defaults, cache size as given.
func benchDaemon(b *testing.B, cacheSize int) *httptest.Server {
	b.Helper()
	prevEnabled, prevTracing := obs.Enabled(), obs.Tracing()
	obs.SetEnabled(true)
	obs.SetTracing(true)
	cfg := daemonConfig{
		maxTimeout:   time.Minute,
		drainTimeout: time.Second,
		maxInflight:  4,
		maxQueue:     64,
		cacheSize:    cacheSize,
	}
	ts := httptest.NewServer(newServer(cfg).mux())
	b.Cleanup(func() {
		ts.Close()
		obs.DefaultTracer().Drain()
		obs.SetEnabled(prevEnabled)
		obs.SetTracing(prevTracing)
	})
	return ts
}

func postSolveBench(b *testing.B, ts *httptest.Server, body string) {
	b.Helper()
	resp, err := http.Post(ts.URL+"/solve?strategy=mac", "text/plain", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("/solve: status %d", resp.StatusCode)
	}
}

// BenchmarkServeSolveCold measures the full request latency when every
// request must run the engine (cache disabled).
func BenchmarkServeSolveCold(b *testing.B) {
	ts := benchDaemon(b, 0)
	body := pigeonholeText(benchPH)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postSolveBench(b, ts, body)
	}
}

// BenchmarkServeSolveCacheHit measures the same request replayed from the
// canonical result cache.
func BenchmarkServeSolveCacheHit(b *testing.B) {
	ts := benchDaemon(b, 16)
	body := pigeonholeText(benchPH)
	postSolveBench(b, ts, body) // warm the cache with the one engine run
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postSolveBench(b, ts, body)
	}
}

// BenchmarkServeCanonicalHash isolates the cache-key cost: parse plus
// canonical encoding and FNV hash of the benchmark instance.
func BenchmarkServeCanonicalHash(b *testing.B) {
	body := pigeonholeText(benchPH)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst, err := cspio.Parse(strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if cspio.CanonicalHash(inst) == 0 {
			fmt.Fprintln(io.Discard) // keep the result live
		}
	}
}
