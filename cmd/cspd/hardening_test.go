package main

import (
	"io"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"csdb/internal/obs"
)

// Hardening tests: the slow-client connection timeouts, the load-derived
// Retry-After, and drain-under-load (SIGTERM with a non-empty wait queue).

// TestLifecycleDrainsPastSlowClient is the regression test for the
// trickling-client hang: a client that sends its request headers and then
// stalls mid-body holds a connection open. With only ReadHeaderTimeout set
// (the pre-fix server), Shutdown waits on that connection forever and the
// drain never completes; ReadTimeout must reap it so SIGTERM still produces
// a clean exit within the grace period.
func TestLifecycleDrainsPastSlowClient(t *testing.T) {
	cfg := testConfig()
	cfg.readTimeout = 300 * time.Millisecond
	cfg.drainTimeout = 2 * time.Second
	srv := newServer(cfg)
	url, sigCh, exit := startLifecycle(t, srv)

	// A hand-rolled trickling client: complete headers, Content-Length far
	// beyond what is ever sent, then silence. The handler blocks reading the
	// body until the read deadline fires.
	conn, err := net.Dial("tcp", strings.TrimPrefix(url, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_, err = io.WriteString(conn,
		"POST /solve HTTP/1.1\r\nHost: cspd\r\nContent-Length: 4096\r\n\r\nvars 2\n")
	if err != nil {
		t.Fatal(err)
	}

	sigCh <- syscall.SIGTERM
	start := time.Now()
	if err := waitExit(t, exit); err != nil {
		t.Fatalf("drain with a stalled client returned error: %v", err)
	}
	// The exit must come from the read deadline (sub-second), not from
	// waitExit's last-resort 10s bound.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("drain took %v with a stalled client, want the read deadline to reap it", elapsed)
	}
	// The stalled client's connection was closed on it: the next read fails.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 256)
	for {
		if _, err := conn.Read(buf); err != nil {
			break
		}
	}
}

// TestRetryAfterSeconds pins the Retry-After derivation: ceil to whole
// seconds, floor 1s, capped by the drain budget.
func TestRetryAfterSeconds(t *testing.T) {
	for _, tc := range []struct {
		estimate, drain time.Duration
		want            int
	}{
		{0, 10 * time.Second, 1},                       // no queue history: floor
		{300 * time.Millisecond, 10 * time.Second, 1},  // sub-second: floor
		{1001 * time.Millisecond, 10 * time.Second, 2}, // ceil, not truncate
		{2500 * time.Millisecond, 10 * time.Second, 3},
		{30 * time.Second, 10 * time.Second, 10}, // capped by drain budget
		{30 * time.Second, 0, 1},                 // degenerate budget: floor wins
		{5 * time.Second, 5 * time.Second, 5},
	} {
		if got := retryAfterSeconds(tc.estimate, tc.drain); got != tc.want {
			t.Errorf("retryAfterSeconds(%v, %v) = %d, want %d", tc.estimate, tc.drain, got, tc.want)
		}
	}
}

// TestShedRetryAfterIsDerived checks the wiring: the 429 path's Retry-After
// is the estimator's output — an integer in [1s, drain budget] — not a
// hardcoded constant the router cannot trust.
func TestShedRetryAfterIsDerived(t *testing.T) {
	cfg := testConfig()
	cfg.maxInflight = 1
	cfg.maxQueue = 0 // every concurrent request beyond the slot is shed
	cfg.cacheSize = 0
	ts, srv := startDaemonCfg(t, cfg)
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	srv.dispatch = blockingDispatch(started, release)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postSolve(t, ts, "", distinctInstance(0))
	}()
	<-started

	resp, err := http.Post(ts.URL+"/solve", "text/plain", strings.NewReader(distinctInstance(1)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer: %v", resp.Header.Get("Retry-After"), err)
	}
	want := retryAfterSeconds(srv.admit.EstimateWait(), cfg.drainTimeout)
	if ra != want {
		t.Fatalf("Retry-After = %d, want estimator output %d", ra, want)
	}
	if ra < 1 || time.Duration(ra)*time.Second > cfg.drainTimeout {
		t.Fatalf("Retry-After = %d outside [1s, drain budget %v]", ra, cfg.drainTimeout)
	}
	close(release)
	wg.Wait()
}

// TestLifecycleDrainUnderLoad is the acceptance test for draining with a
// non-empty wait queue: SIGTERM arrives while one solve runs, several wait
// for the slot, and more have already been shed. Every queued request must
// complete (the drain lets the queue empty), every shed request must have
// gotten its 429, exactly one wide event exists per request, and no
// goroutines leak.
func TestLifecycleDrainUnderLoad(t *testing.T) {
	withDaemonObs(t)
	cfg := testConfig()
	cfg.maxInflight = 1
	cfg.maxQueue = 3 // exactly the waiters below, so the overflow posts shed
	cfg.cacheSize = 0
	srv := newServer(cfg)
	started := make(chan struct{}, 16)
	release := make(chan struct{})
	srv.dispatch = blockingDispatch(started, release)
	url, sigCh, exit := startLifecycle(t, srv)

	runtime.GC()
	goroutinesBefore := runtime.NumGoroutine()

	const queued = 4 // 1 running + 3 waiting
	statuses := make(chan int, queued)
	var wg sync.WaitGroup
	for i := 0; i < queued; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(url+"/solve", "text/plain",
				strings.NewReader(distinctInstance(i)))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				statuses <- 0
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses <- resp.StatusCode
		}()
	}
	<-started // request 0 holds the solve slot
	waitForState(t, "three requests in the wait queue", func() bool {
		return srv.admit.Queued() == queued-1
	})

	// Overflow the queue before the signal: these two are shed with 429.
	const shed = 2
	for i := 0; i < shed; i++ {
		resp, err := http.Post(url+"/solve", "text/plain",
			strings.NewReader(distinctInstance(4+i)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("overflow request %d: status %d, want 429", i, resp.StatusCode)
		}
	}

	// SIGTERM with the queue still full, then let solves proceed: the drain
	// must serve every queued request to completion before exiting.
	sigCh <- syscall.SIGTERM
	close(release)
	wg.Wait()
	for i := 0; i < queued; i++ {
		if got := <-statuses; got != http.StatusOK {
			t.Fatalf("queued request finished with status %d, want 200 (complete) during drain", got)
		}
	}
	if err := waitExit(t, exit); err != nil {
		t.Fatalf("drain under load returned error: %v", err)
	}

	// Exactly one wide event per request: queued completions plus sheds.
	events := obs.DefaultEvents().Drain()
	if len(events) != queued+shed {
		t.Fatalf("wide events = %d, want %d (one per request)", len(events), queued+shed)
	}
	seen := map[string]bool{}
	verdicts := map[string]int{}
	for _, ev := range events {
		if seen[ev.TraceID] {
			t.Fatalf("trace %s emitted more than one event", ev.TraceID)
		}
		seen[ev.TraceID] = true
		verdicts[ev.Verdict]++
	}
	if verdicts[obs.VerdictSat] != queued || verdicts[obs.VerdictShed] != shed {
		t.Fatalf("verdict counts %v, want %d sat and %d shed", verdicts, queued, shed)
	}

	// No goroutine leaks once the daemon has exited (cancel_test.go style:
	// allow the runtime a moment to reap finished goroutines).
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= goroutinesBefore {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before load, %d after drain", goroutinesBefore, after)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
