package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"csdb/internal/csp"
)

// Tests for the serving layers wired into /solve: result caching with
// request collapsing, admission control with load shedding, and the
// method/body-size rejection paths.

// distinctInstance returns the i-th of a family of small, mutually
// non-equivalent instances (the lone constraint pins a different value).
func distinctInstance(i int) string {
	return fmt.Sprintf("vars 2\ndom 8\ncon 0 1 : %d %d\n", i%8, (i+1)%8)
}

// blockingDispatch is a controllable fake engine: each call signals
// `started`, then waits for `release` to be closed or its context to die.
func blockingDispatch(started chan<- struct{}, release <-chan struct{}) func(context.Context, *csp.Instance, solveParams) solveResponse {
	return func(ctx context.Context, _ *csp.Instance, p solveParams) solveResponse {
		started <- struct{}{}
		select {
		case <-release:
			return solveResponse{Strategy: p.strategy, Found: true, Solution: []int{0}, WallNs: 1}
		case <-ctx.Done():
			return solveResponse{Strategy: p.strategy, Aborted: true, WallNs: 1}
		}
	}
}

// TestSolveCollapsesIdenticalRequests is the acceptance test for the cache
// and collapsing layers: N identical concurrent POSTs must perform exactly
// one engine solve, and every caller must receive the same verdict — one
// response computed fresh (cached=false), the rest replayed (cached=true).
func TestSolveCollapsesIdenticalRequests(t *testing.T) {
	ts, _ := startDaemon(t)
	executedBefore := obsExecuted.Load()

	const callers = 8
	var wg, ready sync.WaitGroup
	results := make([]solveResponse, callers)
	for i := 0; i < callers; i++ {
		i := i
		ready.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			ready.Done()
			ready.Wait() // fire together
			results[i] = postSolve(t, ts, "strategy=mac&timeout=30s", sampleInstance)
		}()
	}
	wg.Wait()

	if d := obsExecuted.Load() - executedBefore; d != 1 {
		t.Fatalf("engine solves for %d identical requests = %d, want exactly 1", callers, d)
	}
	fresh := 0
	for i, res := range results {
		if !res.Found || res.Aborted {
			t.Fatalf("caller %d: found=%v aborted=%v", i, res.Found, res.Aborted)
		}
		if got, want := fmt.Sprint(res.Solution), fmt.Sprint(results[0].Solution); got != want {
			t.Fatalf("caller %d: solution %s != %s", i, got, want)
		}
		if res.WallNs != results[0].WallNs || res.Stats != results[0].Stats {
			t.Fatalf("caller %d: response not shared (wall %d vs %d)", i, res.WallNs, results[0].WallNs)
		}
		if !res.Cached {
			fresh++
		}
	}
	if fresh != 1 {
		t.Fatalf("%d responses claim cached=false, want exactly 1 (the engine run)", fresh)
	}
}

// TestSolveCacheReplaysSequentialRequests checks the cache across
// non-overlapping requests, and that changing a strategy knob misses.
func TestSolveCacheReplaysSequentialRequests(t *testing.T) {
	ts, _ := startDaemon(t)
	executedBefore := obsExecuted.Load()

	first := postSolve(t, ts, "strategy=mac", sampleInstance)
	second := postSolve(t, ts, "strategy=mac", sampleInstance)
	if first.Cached || !second.Cached {
		t.Fatalf("cached flags: first=%v second=%v, want false/true", first.Cached, second.Cached)
	}
	if second.Stats != first.Stats || !second.Found {
		t.Fatalf("replayed response differs: %+v vs %+v", second, first)
	}
	if first.TraceID == second.TraceID {
		t.Fatalf("replayed response reused trace id %q", first.TraceID)
	}
	// Same instance under another strategy is a different cache entry.
	third := postSolve(t, ts, "strategy=fc", sampleInstance)
	if third.Cached {
		t.Fatal("different strategy served from cache")
	}
	// An equivalent instance with permuted constraints and tuples hits.
	permuted := `
vars 3
dom 3
con 1 2 : 2 1 | 2 0 | 1 2 | 1 0 | 0 2 | 0 1
con 0 1 : 0 1 | 0 2 | 1 0 | 1 2 | 2 0 | 2 1
`
	fourth := postSolve(t, ts, "strategy=mac", permuted)
	if !fourth.Cached {
		t.Fatal("canonically equivalent instance missed the cache")
	}
	if d := obsExecuted.Load() - executedBefore; d != 2 {
		t.Fatalf("engine solves = %d, want 2 (mac once, fc once)", d)
	}
}

// TestSolveAbortedResultsAreNotCached pins the cacheability rule: a solve
// that aborts (timeout/shutdown) must not poison the cache.
func TestSolveAbortedResultsAreNotCached(t *testing.T) {
	ts, srv := startDaemon(t)
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	srv.dispatch = blockingDispatch(started, release)

	// 1ns timeout: the fake engine sees ctx die immediately and aborts.
	res := postSolve(t, ts, "strategy=mac&timeout=1ns", sampleInstance)
	<-started
	if !res.Aborted || res.Cached {
		t.Fatalf("aborted=%v cached=%v, want true/false", res.Aborted, res.Cached)
	}
	if n := srv.cache.Len(); n != 0 {
		t.Fatalf("aborted result cached: cache has %d entries", n)
	}

	// The same request again must run the engine again (no poisoned entry);
	// released this time, it completes and does get cached.
	go func() { <-started; close(release) }()
	res = postSolve(t, ts, "strategy=mac&timeout=30s", sampleInstance)
	if res.Aborted || res.Cached || !res.Found {
		t.Fatalf("fresh solve after aborted one: %+v", res)
	}
	if n := srv.cache.Len(); n != 1 {
		t.Fatalf("completed result not cached: cache has %d entries", n)
	}
}

// TestSolveQueueOverflowSheds is the acceptance test for admission control:
// with one solve slot and a one-deep queue, a third concurrent distinct
// request must be rejected with 429 and a Retry-After header.
func TestSolveQueueOverflowSheds(t *testing.T) {
	cfg := testConfig()
	cfg.maxInflight = 1
	cfg.maxQueue = 1
	cfg.cacheSize = 0 // keep the engine path hot for every request
	ts, srv := startDaemonCfg(t, cfg)
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	srv.dispatch = blockingDispatch(started, release)

	var wg sync.WaitGroup
	solve := func(i int) {
		defer wg.Done()
		res := postSolve(t, ts, "", distinctInstance(i))
		if !res.Found {
			t.Errorf("request %d: %+v", i, res)
		}
	}
	// Request 0 occupies the slot; request 1 queues.
	wg.Add(1)
	go solve(0)
	<-started
	wg.Add(1)
	go solve(1)
	waitForState(t, "waiter in queue", func() bool { return srv.admit.Queued() == 1 })

	// Request 2 overflows the queue: 429, Retry-After, no engine run.
	resp, err := http.Post(ts.URL+"/solve", "text/plain", strings.NewReader(distinctInstance(2)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d (body %s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}

	close(release)
	wg.Wait()
}

// TestUnknownStrategySpanAndCache guards the early-return interaction of
// the root span and the cache: a rejected strategy must leave exactly one
// (ended-once) root span in the ring, no cache entry, and no engine run.
func TestUnknownStrategySpanAndCache(t *testing.T) {
	ts, srv := startDaemon(t)
	executedBefore := obsExecuted.Load()

	resp, err := http.Post(ts.URL+"/solve?strategy=oracle", "text/plain", strings.NewReader(sampleInstance))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "unknown strategy") {
		t.Fatalf("status %d body %q, want 400 unknown strategy", resp.StatusCode, body)
	}

	roots := 0
	for _, sp := range drainSpans(t, ts, "") {
		if sp.Name == "cspd.solve" {
			roots++
			if sp.EndNs < sp.StartNs {
				t.Fatalf("root span not properly ended: %+v", sp)
			}
		}
	}
	if roots != 1 {
		t.Fatalf("root span recorded %d times, want exactly 1 (End called once)", roots)
	}
	if n := srv.cache.Len(); n != 0 {
		t.Fatalf("rejected request created %d cache entries", n)
	}
	if d := obsExecuted.Load() - executedBefore; d != 0 {
		t.Fatalf("rejected request ran the engine %d times", d)
	}
}

// TestSolveRejectsNonPOST pins the 405 path: every non-POST method gets
// 405 with an Allow header, before the body is read.
func TestSolveRejectsNonPOST(t *testing.T) {
	ts, _ := startDaemon(t)
	for _, method := range []string{http.MethodGet, http.MethodPut, http.MethodDelete, http.MethodHead} {
		req, err := http.NewRequest(method, ts.URL+"/solve", strings.NewReader(sampleInstance))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s /solve: status %d, want 405", method, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
			t.Fatalf("%s /solve: Allow header %q, want POST", method, allow)
		}
	}
}

// TestSolveRejectsOversizedBody pins the 413 path: a body over the POST
// limit gets a distinct status, error body, and counter — not a 400 parse
// error.
func TestSolveRejectsOversizedBody(t *testing.T) {
	ts, _ := startDaemon(t)
	tooBigBefore := obsTooLarge.Load()

	huge := strings.Repeat("#", maxBodyBytes+2)
	resp, err := http.Post(ts.URL+"/solve", "text/plain", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d (%s), want 413", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "body too large") {
		t.Fatalf("413 body %q does not name the problem", body)
	}
	if d := obsTooLarge.Load() - tooBigBefore; d != 1 {
		t.Fatalf("too_large counter delta = %d, want 1", d)
	}
}

// TestMetricsServeLayer checks that the new serving-layer metrics are
// published and move.
func TestMetricsServeLayer(t *testing.T) {
	ts, _ := startDaemon(t)
	postSolve(t, ts, "strategy=mac", sampleInstance)
	postSolve(t, ts, "strategy=mac", sampleInstance) // cache hit

	resp, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"cspd.solve.executed", "cspd.solve.collapsed", "cspd.solve.too_large",
		"cspd.cache.hits", "cspd.cache.misses", "cspd.cache.evictions",
		"cspd.cache.len", "cspd.admit.shed", "cspd.admit.queue_depth",
		"cspd.admit.queue_wait_ns",
	} {
		if _, ok := snap[key]; !ok {
			t.Fatalf("/metrics missing %q", key)
		}
	}
	if v, ok := snap["cspd.cache.hits"].(float64); !ok || v < 1 {
		t.Fatalf("cspd.cache.hits = %v, want >= 1", snap["cspd.cache.hits"])
	}
}

// waitForState polls cond until it holds or a deadline passes.
func waitForState(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
