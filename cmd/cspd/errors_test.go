package main

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestSolveRejectsHostileParams extends the bad-input coverage with the
// boundary cases: zero and negative timeouts, non-numeric workers, an
// empty body, and a body that parses structurally but truncates a tuple.
// Each must produce 400 with a diagnostic body, never 500 or a hang.
func TestSolveRejectsHostileParams(t *testing.T) {
	ts, _ := startDaemon(t)
	for _, tc := range []struct {
		name, query, body, wantIn string
	}{
		{"negative timeout", "timeout=-5s", sampleInstance, "bad timeout"},
		{"zero timeout", "timeout=0s", sampleInstance, "bad timeout"},
		{"non-duration timeout", "timeout=5", sampleInstance, "bad timeout"},
		{"non-numeric workers", "workers=banana", sampleInstance, "bad workers"},
		{"unknown strategy", "strategy=oracle", sampleInstance, "unknown strategy"},
		{"workers with learn", "strategy=learn&workers=2", sampleInstance, "conflicting workers"},
		{"empty body", "", "", "parse"},
		{"truncated tuple", "", "vars 2\ndom 2\ncon 0 1 : 0\n", "parse"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/solve?"+tc.query, "text/plain", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			msg, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (body: %s)", resp.StatusCode, msg)
			}
			if !strings.Contains(string(msg), tc.wantIn) {
				t.Errorf("error body %q does not mention %q", msg, tc.wantIn)
			}
		})
	}
}
