package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"csdb/internal/core"
	"csdb/internal/obs"
)

func TestParseStrategy(t *testing.T) {
	for name, want := range map[string]core.Strategy{
		"auto": core.Auto, "search": core.Search, "join": core.Join,
		"treewidth": core.TreewidthDP, "schaefer": core.SchaeferSolver, "tree": core.Tree,
	} {
		got, err := parseStrategy(name)
		if err != nil || got != want {
			t.Fatalf("parseStrategy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseStrategy("quantum"); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestRunOnInstanceFile(t *testing.T) {
	sample := []string{"../../testdata/sample.csp"}
	if err := run(config{strategy: "auto", explain: true, args: sample}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run(config{strategy: "search", all: 3, args: sample}); err != nil {
		t.Fatalf("run -all: %v", err)
	}
	if err := run(config{strategy: "auto", count: true, args: sample}); err != nil {
		t.Fatalf("run -count: %v", err)
	}
}

func TestRunEngineFlags(t *testing.T) {
	sample := []string{"../../testdata/sample.csp"}
	if err := run(config{strategy: "auto", portfolio: true, timeout: 5 * time.Second, args: sample}); err != nil {
		t.Fatalf("run -portfolio: %v", err)
	}
	if err := run(config{strategy: "auto", parallel: true, workers: 2, args: sample}); err != nil {
		t.Fatalf("run -parallel: %v", err)
	}
	if err := run(config{strategy: "auto", timeout: 5 * time.Second, args: sample}); err != nil {
		t.Fatalf("run -timeout: %v", err)
	}
	if err := run(config{strategy: "auto", learn: true, timeout: 5 * time.Second, args: sample}); err != nil {
		t.Fatalf("run -learn: %v", err)
	}
	if err := run(config{strategy: "auto", portfolio: true, parallel: true, args: sample}); err == nil {
		t.Fatal("-portfolio with -parallel accepted")
	}
	if err := run(config{strategy: "auto", learn: true, parallel: true, args: sample}); err == nil {
		t.Fatal("-learn with -parallel accepted")
	}
}

// TestRunTraceFlag solves with -trace and checks the written JSONL: at
// least the csolve root and a csp.solve span parented under it, all on the
// csolve trace id.
func TestRunTraceFlag(t *testing.T) {
	prevEnabled, prevTracing := obs.Enabled(), obs.Tracing()
	defer func() {
		obs.DefaultTracer().Drain()
		obs.SetEnabled(prevEnabled)
		obs.SetTracing(prevTracing)
	}()

	out := filepath.Join(t.TempDir(), "trace.jsonl")
	cfg := config{
		strategy: "auto", timeout: 5 * time.Second, trace: out,
		args: []string{"../../testdata/sample.csp"},
	}
	if err := run(cfg); err != nil {
		t.Fatalf("run -trace: %v", err)
	}

	f, err := os.Open(out)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	defer f.Close()
	var rootID uint64
	var spans []obs.SpanRecord
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var rec obs.SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		if rec.TraceID != "csolve-1" {
			t.Fatalf("span %q has trace %q, want csolve-1", rec.Name, rec.TraceID)
		}
		if rec.Name == "csolve" {
			rootID = rec.ID
		}
		spans = append(spans, rec)
	}
	if rootID == 0 {
		t.Fatalf("no csolve root span among %d spans", len(spans))
	}
	foundSolve := false
	for _, rec := range spans {
		if rec.Name == "csp.solve" && rec.Parent == rootID {
			foundSolve = true
		}
	}
	if !foundSolve {
		t.Fatalf("no csp.solve span parented under the csolve root (%d spans)", len(spans))
	}
}

func TestRunOnDIMACS(t *testing.T) {
	triangle := []string{"../../testdata/triangle.col"}
	if err := run(config{strategy: "auto", coloring: 3, args: triangle}); err != nil {
		t.Fatalf("3-coloring: %v", err)
	}
	if err := run(config{strategy: "search", coloring: 2, args: triangle}); err != nil {
		t.Fatalf("2-coloring (UNSAT path): %v", err)
	}
	if err := run(config{strategy: "auto", coloring: 3, portfolio: true, args: triangle}); err != nil {
		t.Fatalf("3-coloring -portfolio: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(config{strategy: "auto", args: []string{"/nonexistent/file"}}); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run(config{strategy: "auto", args: []string{"a", "b"}}); err == nil {
		t.Fatal("two files accepted")
	}
	if err := run(config{strategy: "bogus", args: []string{"../../testdata/sample.csp"}}); err == nil {
		t.Fatal("bad strategy accepted")
	}
}

// TestRunEventsFlag solves with -events and checks the written JSONL: one
// wide event on the csolve trace id, carrying the verdict and the engine's
// effort accounting. Combined with -trace, the event's trace_id matches the
// root span's, so the two files cross-link.
func TestRunEventsFlag(t *testing.T) {
	prevEnabled, prevTracing, prevEvents := obs.Enabled(), obs.Tracing(), obs.EventsActive()
	defer func() {
		obs.DefaultTracer().Drain()
		obs.DefaultEvents().Drain()
		obs.SetEnabled(prevEnabled)
		obs.SetTracing(prevTracing)
		obs.SetEvents(prevEvents)
	}()

	dir := t.TempDir()
	evOut := filepath.Join(dir, "events.jsonl")
	trOut := filepath.Join(dir, "trace.jsonl")
	cfg := config{
		strategy: "auto", auto: true, events: evOut, trace: trOut,
		args: []string{"../../testdata/sample.csp"},
	}
	if err := run(cfg); err != nil {
		t.Fatalf("run -events: %v", err)
	}

	data, err := os.ReadFile(evOut)
	if err != nil {
		t.Fatalf("events file not written: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d events, want exactly 1", len(lines))
	}
	var ev obs.SolveEvent
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("bad event line %q: %v", lines[0], err)
	}
	if ev.TraceID != "csolve-1" || ev.Source != "csolve" {
		t.Fatalf("event identity = (%q, %q), want (csolve-1, csolve)", ev.TraceID, ev.Source)
	}
	if ev.Strategy != "auto" || ev.Route == "" {
		t.Fatalf("event routing = (strategy %q, route %q), want auto with a route", ev.Strategy, ev.Route)
	}
	if ev.Verdict != obs.VerdictSat {
		t.Fatalf("verdict = %q, want sat for the satisfiable sample", ev.Verdict)
	}
	if ev.TsNs == 0 {
		t.Fatal("event has no timestamp")
	}

	// Cross-link: the -trace file's root span carries the same trace id.
	tr, err := os.ReadFile(trOut)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	var rec obs.SpanRecord
	if err := json.Unmarshal([]byte(strings.SplitN(strings.TrimSpace(string(tr)), "\n", 2)[0]), &rec); err != nil {
		t.Fatalf("bad trace line: %v", err)
	}
	if rec.TraceID != ev.TraceID {
		t.Fatalf("trace id mismatch: span %q vs event %q", rec.TraceID, ev.TraceID)
	}
}
