package main

import (
	"testing"

	"csdb/internal/core"
)

func TestParseStrategy(t *testing.T) {
	for name, want := range map[string]core.Strategy{
		"auto": core.Auto, "search": core.Search, "join": core.Join,
		"treewidth": core.TreewidthDP, "schaefer": core.SchaeferSolver, "tree": core.Tree,
	} {
		got, err := parseStrategy(name)
		if err != nil || got != want {
			t.Fatalf("parseStrategy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseStrategy("quantum"); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestRunOnInstanceFile(t *testing.T) {
	if err := run("auto", 0, true, 0, false, []string{"../../testdata/sample.csp"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run("search", 0, false, 3, false, []string{"../../testdata/sample.csp"}); err != nil {
		t.Fatalf("run -all: %v", err)
	}
	if err := run("auto", 0, false, 0, true, []string{"../../testdata/sample.csp"}); err != nil {
		t.Fatalf("run -count: %v", err)
	}
}

func TestRunOnDIMACS(t *testing.T) {
	if err := run("auto", 3, false, 0, false, []string{"../../testdata/triangle.col"}); err != nil {
		t.Fatalf("3-coloring: %v", err)
	}
	if err := run("search", 2, false, 0, false, []string{"../../testdata/triangle.col"}); err != nil {
		t.Fatalf("2-coloring (UNSAT path): %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("auto", 0, false, 0, false, []string{"/nonexistent/file"}); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run("auto", 0, false, 0, false, []string{"a", "b"}); err == nil {
		t.Fatal("two files accepted")
	}
	if err := run("bogus", 0, false, 0, false, []string{"../../testdata/sample.csp"}); err == nil {
		t.Fatal("bad strategy accepted")
	}
}
