package main

import (
	"testing"
	"time"

	"csdb/internal/core"
)

func TestParseStrategy(t *testing.T) {
	for name, want := range map[string]core.Strategy{
		"auto": core.Auto, "search": core.Search, "join": core.Join,
		"treewidth": core.TreewidthDP, "schaefer": core.SchaeferSolver, "tree": core.Tree,
	} {
		got, err := parseStrategy(name)
		if err != nil || got != want {
			t.Fatalf("parseStrategy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseStrategy("quantum"); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestRunOnInstanceFile(t *testing.T) {
	sample := []string{"../../testdata/sample.csp"}
	if err := run(config{strategy: "auto", explain: true, args: sample}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run(config{strategy: "search", all: 3, args: sample}); err != nil {
		t.Fatalf("run -all: %v", err)
	}
	if err := run(config{strategy: "auto", count: true, args: sample}); err != nil {
		t.Fatalf("run -count: %v", err)
	}
}

func TestRunEngineFlags(t *testing.T) {
	sample := []string{"../../testdata/sample.csp"}
	if err := run(config{strategy: "auto", portfolio: true, timeout: 5 * time.Second, args: sample}); err != nil {
		t.Fatalf("run -portfolio: %v", err)
	}
	if err := run(config{strategy: "auto", parallel: true, workers: 2, args: sample}); err != nil {
		t.Fatalf("run -parallel: %v", err)
	}
	if err := run(config{strategy: "auto", timeout: 5 * time.Second, args: sample}); err != nil {
		t.Fatalf("run -timeout: %v", err)
	}
	if err := run(config{strategy: "auto", portfolio: true, parallel: true, args: sample}); err == nil {
		t.Fatal("-portfolio with -parallel accepted")
	}
}

func TestRunOnDIMACS(t *testing.T) {
	triangle := []string{"../../testdata/triangle.col"}
	if err := run(config{strategy: "auto", coloring: 3, args: triangle}); err != nil {
		t.Fatalf("3-coloring: %v", err)
	}
	if err := run(config{strategy: "search", coloring: 2, args: triangle}); err != nil {
		t.Fatalf("2-coloring (UNSAT path): %v", err)
	}
	if err := run(config{strategy: "auto", coloring: 3, portfolio: true, args: triangle}); err != nil {
		t.Fatalf("3-coloring -portfolio: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(config{strategy: "auto", args: []string{"/nonexistent/file"}}); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run(config{strategy: "auto", args: []string{"a", "b"}}); err == nil {
		t.Fatal("two files accepted")
	}
	if err := run(config{strategy: "bogus", args: []string{"../../testdata/sample.csp"}}); err == nil {
		t.Fatal("bad strategy accepted")
	}
}
