package main

import (
	"strings"
	"testing"
	"time"

	"csdb/internal/dispatch"
)

func TestRunAutoFlag(t *testing.T) {
	sample := []string{"../../testdata/sample.csp"}
	if err := run(config{strategy: "auto", auto: true, args: sample}); err != nil {
		t.Fatalf("run -auto: %v", err)
	}
	if err := run(config{strategy: "auto", auto: true, width: 2, args: sample}); err != nil {
		t.Fatalf("run -auto -width 2: %v", err)
	}
	if err := run(config{strategy: "auto", auto: true, portfolio: true, args: sample}); err == nil {
		t.Fatal("-auto with -portfolio accepted")
	}
	if err := run(config{strategy: "auto", auto: true, parallel: true, args: sample}); err == nil {
		t.Fatal("-auto with -parallel accepted")
	}
}

// The -auto summary line must always report the route and the
// classification time, and name the portfolio winner only on fallback.
func TestAutoDetail(t *testing.T) {
	out := dispatch.Outcome{Route: dispatch.Acyclic, ClassifyTime: 1500 * time.Microsecond}
	got := autoDetail(out)
	if !strings.Contains(got, "route=acyclic") || !strings.Contains(got, "classify 1.5ms") {
		t.Fatalf("detail %q missing route or classify time", got)
	}
	if strings.Contains(got, "portfolio winner") {
		t.Fatalf("detail %q names a winner without fallback", got)
	}
	out = dispatch.Outcome{Route: dispatch.Hard, Fallback: true, Winner: "mac"}
	if got := autoDetail(out); !strings.Contains(got, "route=hard") ||
		!strings.Contains(got, "portfolio winner mac") {
		t.Fatalf("fallback detail %q missing route or winner", got)
	}
}
