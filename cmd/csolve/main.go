// Command csolve solves constraint-satisfaction problems from the command
// line. It reads either the library's instance text format or a DIMACS
// coloring graph, picks a strategy (or is told one), and prints a solution
// or UNSAT.
//
// Usage:
//
//	csolve [-strategy auto|search|join|treewidth|schaefer] [-explain]
//	       [-all max] instance.csp
//	csolve -coloring k graph.col
//
// With no file argument the instance is read from standard input.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"csdb/internal/core"
	"csdb/internal/csp"
	"csdb/internal/cspio"
	"csdb/internal/gen"
)

func main() {
	strategy := flag.String("strategy", "auto", "solving strategy: auto, search, join, treewidth, schaefer, tree")
	coloring := flag.Int("coloring", 0, "treat the input as a DIMACS graph and solve k-coloring")
	explain := flag.Bool("explain", false, "print the auto-strategy rationale before solving")
	all := flag.Int64("all", 0, "enumerate up to this many solutions (search strategy)")
	count := flag.Bool("count", false, "count solutions exactly via decomposition DP")
	flag.Parse()

	if err := run(*strategy, *coloring, *explain, *all, *count, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "csolve:", err)
		os.Exit(2)
	}
}

func run(strategyName string, coloring int, explain bool, all int64, count bool, args []string) error {
	in := os.Stdin
	if len(args) > 1 {
		return fmt.Errorf("at most one input file expected")
	}
	if len(args) == 1 {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	var inst *csp.Instance
	if coloring > 0 {
		g, err := cspio.ParseDIMACS(in)
		if err != nil {
			return err
		}
		inst = gen.Coloring(g, coloring)
	} else {
		var err error
		inst, err = cspio.Parse(in)
		if err != nil {
			return err
		}
	}

	strategy, err := parseStrategy(strategyName)
	if err != nil {
		return err
	}
	problem := core.FromCSP(inst)
	if explain {
		fmt.Println("strategy:", problem.Explain(core.Options{}))
	}

	if count {
		n, err := problem.Count()
		if err != nil {
			return err
		}
		fmt.Printf("%v solution(s)\n", n)
		return nil
	}

	if all > 0 {
		count, _ := csp.SolveAll(inst, csp.Options{}, all, func(sol []int) bool {
			fmt.Println(formatSolution(inst, sol))
			return true
		})
		fmt.Printf("%d solution(s)\n", count)
		return nil
	}

	res, err := problem.Solve(core.Options{Strategy: strategy})
	if err != nil {
		return err
	}
	if !res.Satisfiable {
		fmt.Println("UNSAT")
		return nil
	}
	fmt.Printf("SAT (%v", res.Used)
	if res.SchaeferClass != nil {
		fmt.Printf(": %v", *res.SchaeferClass)
	}
	fmt.Println(")")
	fmt.Println(formatSolution(inst, res.Assignment))
	return nil
}

func parseStrategy(name string) (core.Strategy, error) {
	switch name {
	case "auto":
		return core.Auto, nil
	case "search":
		return core.Search, nil
	case "join":
		return core.Join, nil
	case "treewidth":
		return core.TreewidthDP, nil
	case "schaefer":
		return core.SchaeferSolver, nil
	case "tree":
		return core.Tree, nil
	}
	return core.Auto, fmt.Errorf("unknown strategy %q", name)
}

func formatSolution(inst *csp.Instance, sol []int) string {
	parts := make([]string, len(sol))
	for v, val := range sol {
		parts[v] = fmt.Sprintf("%s=%d", inst.VarName(v), val)
	}
	return strings.Join(parts, " ")
}
