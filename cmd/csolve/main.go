// Command csolve solves constraint-satisfaction problems from the command
// line. It reads either the library's instance text format or a DIMACS
// coloring graph, picks a strategy (or is told one), and prints a solution
// or UNSAT.
//
// Usage:
//
//	csolve [-strategy auto|search|join|treewidth|schaefer] [-explain]
//	       [-all max] [-timeout d] [-trace out.jsonl] [-events out.jsonl]
//	       instance.csp
//	csolve -coloring k graph.col
//	csolve -auto [-width k] instance.csp
//	csolve -portfolio [-timeout 2s] instance.csp
//	csolve -parallel [-workers n] instance.csp
//	csolve -learn [-timeout 2s] instance.csp
//
// With no file argument the instance is read from standard input.
// -auto classifies the instance's structure (tree / schaefer / acyclic /
// bounded width) and routes it to the matching polynomial solver, falling
// back to the portfolio only for hard instances; the summary line reports
// the chosen route and the classification time. -portfolio races the MAC,
// FC, CBJ and join solvers and reports the first verdict; -parallel splits
// the root domain across a worker pool; -timeout bounds the solve
// wall-clock (the search reports UNKNOWN when it expires). -learn runs the
// restart/nogood learning engine and extends the summary line with its
// restart and nogood counters. -trace turns on
// structured span tracing for the solve and writes the drained spans as
// JSON lines (the same schema cspd's /trace endpoint serves) to the given
// file. -events writes the solve's canonical wide event — route, verdict,
// effort counters, wall clock — as one JSON line in the schema cspd's
// /events endpoint serves; its trace_id matches the -trace root span.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"csdb/internal/core"
	"csdb/internal/csp"
	"csdb/internal/cspio"
	"csdb/internal/dispatch"
	"csdb/internal/gen"
	"csdb/internal/obs"
)

// config carries the parsed command-line options.
type config struct {
	strategy  string
	coloring  int
	explain   bool
	all       int64
	count     bool
	timeout   time.Duration
	auto      bool
	width     int
	portfolio bool
	parallel  bool
	workers   int
	learn     bool
	trace     string
	events    string
	args      []string
}

func main() {
	strategy := flag.String("strategy", "auto", "solving strategy: auto, search, join, treewidth, schaefer, tree")
	coloring := flag.Int("coloring", 0, "treat the input as a DIMACS graph and solve k-coloring")
	explain := flag.Bool("explain", false, "print the auto-strategy rationale before solving")
	all := flag.Int64("all", 0, "enumerate up to this many solutions (search strategy)")
	count := flag.Bool("count", false, "count solutions exactly via decomposition DP")
	timeout := flag.Duration("timeout", 0, "wall-clock limit for solving (0 = none)")
	auto := flag.Bool("auto", false, "classify the instance's structure and route it to a matching polynomial solver")
	width := flag.Int("width", 0, "width budget for -auto's bounded-treewidth route (0 = default)")
	portfolio := flag.Bool("portfolio", false, "race MAC, FC, CBJ and join solvers; first verdict wins")
	parallel := flag.Bool("parallel", false, "split the root variable's domain across a parallel worker pool")
	workers := flag.Int("workers", 0, "worker-pool size for -parallel (0 = GOMAXPROCS)")
	learn := flag.Bool("learn", false, "solve with the restart/nogood learning engine")
	trace := flag.String("trace", "", "write the solve's span trace to this file as JSON lines")
	events := flag.String("events", "", "write the solve's wide event to this file as a JSON line")
	flag.Parse()

	cfg := config{
		strategy: *strategy, coloring: *coloring, explain: *explain,
		all: *all, count: *count, timeout: *timeout,
		auto: *auto, width: *width,
		portfolio: *portfolio, parallel: *parallel, workers: *workers,
		learn: *learn, trace: *trace, events: *events, args: flag.Args(),
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "csolve:", err)
		os.Exit(2)
	}
}

func run(cfg config) (err error) {
	in := os.Stdin
	if len(cfg.args) > 1 {
		return fmt.Errorf("at most one input file expected")
	}
	if cfg.timeout < 0 {
		return fmt.Errorf("-timeout must be non-negative, got %v", cfg.timeout)
	}
	if len(cfg.args) == 1 {
		f, err := os.Open(cfg.args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	var inst *csp.Instance
	if cfg.coloring > 0 {
		g, err := cspio.ParseDIMACS(in)
		if err != nil {
			return err
		}
		inst = gen.Coloring(g, cfg.coloring)
	} else {
		var err error
		inst, err = cspio.Parse(in)
		if err != nil {
			return err
		}
	}

	strategy, err := parseStrategy(cfg.strategy)
	if err != nil {
		return err
	}
	exclusive := 0
	for _, on := range []bool{cfg.auto, cfg.portfolio, cfg.parallel, cfg.learn} {
		if on {
			exclusive++
		}
	}
	if exclusive > 1 {
		return fmt.Errorf("-auto, -portfolio, -parallel and -learn are mutually exclusive")
	}
	ctx := context.Background()
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	// The wide event summarizes this solve in one JSONL record, in the same
	// schema cspd's /events endpoint serves. Its trace ID matches the root
	// span -trace writes, so the two files cross-link.
	ev := &obs.SolveEvent{TraceID: "csolve-1", Source: "csolve"}
	if cfg.events != "" {
		obs.SetEvents(true)
		obs.DefaultEvents().Drain()
		defer func() {
			ev.TsNs = time.Now().UnixNano()
			if err != nil && ev.Verdict == "" {
				ev.Verdict, ev.Cause = obs.VerdictError, err.Error()
			}
			obs.Emit(*ev)
			if werr := writeEvents(cfg.events); werr != nil && err == nil {
				err = fmt.Errorf("writing events: %w", werr)
			}
		}()
	}
	if cfg.trace != "" {
		// The trace flag turns the library's observability on for this
		// process and parents the whole solve under one root span, so the
		// written JSONL nests exactly like cspd's /trace output.
		obs.SetEnabled(true)
		obs.SetTracing(true)
		obs.DefaultTracer().Drain()
		root := obs.StartRoot("csolve", "csolve-1")
		ctx = obs.WithSpan(ctx, root)
		defer func() {
			root.End()
			if werr := writeTrace(cfg.trace); werr != nil && err == nil {
				err = fmt.Errorf("writing trace: %w", werr)
			}
		}()
	}

	if cfg.auto {
		return runAuto(ctx, inst, cfg.width, ev)
	}
	if cfg.portfolio {
		return runPortfolio(ctx, inst, ev)
	}
	if cfg.parallel {
		return runParallel(ctx, inst, cfg.workers, ev)
	}
	if cfg.learn {
		return runLearn(ctx, inst, ev)
	}

	problem := core.FromCSP(inst)
	if cfg.explain {
		fmt.Println("strategy:", problem.Explain(core.Options{}))
	}

	if cfg.count {
		n, err := problem.Count()
		if err != nil {
			return err
		}
		ev.Strategy = "count"
		ev.Verdict = obs.VerdictUnsat
		if n.Sign() > 0 {
			ev.Verdict = obs.VerdictSat
		}
		fmt.Printf("%v solution(s)\n", n)
		return nil
	}

	if cfg.all > 0 {
		count, _ := csp.SolveAllCtx(ctx, inst, csp.Options{}, cfg.all, func(sol []int) bool {
			fmt.Println(formatSolution(inst, sol))
			return true
		})
		ev.Strategy = "enumerate"
		ev.Verdict = eventVerdict(count > 0, false)
		fmt.Printf("%d solution(s)\n", count)
		return nil
	}

	if cfg.timeout > 0 {
		// A wall-clock limit routes the solve through the context-aware
		// search engine (the decomposition strategies are not cancellable).
		res := csp.SolveCtx(ctx, inst, csp.Options{})
		ev.Strategy = "search"
		ev.Verdict = eventVerdict(res.Found, res.Aborted)
		fillEventStats(ev, res.Stats)
		printSearchResult(inst, res)
		return nil
	}

	res, err := problem.Solve(core.Options{Strategy: strategy})
	if err != nil {
		return err
	}
	ev.Strategy = cfg.strategy
	ev.Verdict = eventVerdict(res.Satisfiable, false)
	if !res.Satisfiable {
		fmt.Println("UNSAT")
		return nil
	}
	fmt.Printf("SAT (%v", res.Used)
	if res.SchaeferClass != nil {
		fmt.Printf(": %v", *res.SchaeferClass)
	}
	fmt.Println(")")
	fmt.Println(formatSolution(inst, res.Assignment))
	return nil
}

func parseStrategy(name string) (core.Strategy, error) {
	switch name {
	case "auto":
		return core.Auto, nil
	case "search":
		return core.Search, nil
	case "join":
		return core.Join, nil
	case "treewidth":
		return core.TreewidthDP, nil
	case "schaefer":
		return core.SchaeferSolver, nil
	case "tree":
		return core.Tree, nil
	}
	return core.Auto, fmt.Errorf("unknown strategy %q", name)
}

func formatSolution(inst *csp.Instance, sol []int) string {
	parts := make([]string, len(sol))
	for v, val := range sol {
		parts[v] = fmt.Sprintf("%s=%d", inst.VarName(v), val)
	}
	return strings.Join(parts, " ")
}

// eventVerdict maps a solver outcome onto the wide-event verdict set.
func eventVerdict(found, aborted bool) string {
	switch {
	case aborted:
		return obs.VerdictUnknown
	case found:
		return obs.VerdictSat
	}
	return obs.VerdictUnsat
}

// fillEventStats copies the engine effort counters into the wide event.
func fillEventStats(ev *obs.SolveEvent, st csp.Stats) {
	ev.WallNs = st.Duration.Nanoseconds()
	ev.Nodes = st.Nodes
	ev.Backtracks = st.Backtracks
	ev.Restarts = st.Restarts
	ev.Nogoods = st.NogoodsRecorded
}

// writeEvents drains the default event ring into a JSONL file (one line:
// this process's solve).
func writeEvents(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteEventsJSONL(f, obs.DefaultEvents().Drain()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTrace drains the default tracer's ring into a JSONL file.
func writeTrace(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteJSONL(f, obs.DefaultTracer().Drain()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printSearchResult renders a context-aware search outcome: SAT with the
// assignment, UNSAT, or UNKNOWN when the search was cancelled or limited.
// The summary line carries the strategy that ran, the search effort, the
// deepest point the search reached, and the wall clock.
func printSearchResult(inst *csp.Instance, res csp.Result) {
	switch {
	case res.Found:
		fmt.Printf("SAT (%s, %d nodes, depth %d, %v)\n", res.Stats.Strategy, res.Stats.Nodes,
			res.Stats.MaxDepth, res.Stats.Duration.Round(time.Microsecond))
		fmt.Println(formatSolution(inst, res.Solution))
	case res.Aborted:
		fmt.Printf("UNKNOWN (%s aborted after %d nodes, depth %d, %v)\n", res.Stats.Strategy,
			res.Stats.Nodes, res.Stats.MaxDepth, res.Stats.Duration.Round(time.Microsecond))
	default:
		fmt.Printf("UNSAT (%s, %d nodes, depth %d, %v)\n", res.Stats.Strategy, res.Stats.Nodes,
			res.Stats.MaxDepth, res.Stats.Duration.Round(time.Microsecond))
	}
}

// runAuto routes the instance through the tractability dispatcher. The
// summary line always names the route the verdict came from and the time
// classification took, so an auto-routed run is distinguishable from a
// plain portfolio run (whose Stats.Strategy it would otherwise echo).
func runAuto(ctx context.Context, inst *csp.Instance, width int, ev *obs.SolveEvent) error {
	an := dispatch.NewAnalyzer(width, 0)
	out := an.Solve(ctx, inst)
	ev.Strategy = "auto"
	ev.Route = out.Route.String()
	ev.Winner = out.Winner
	ev.Verdict = eventVerdict(out.Found, out.Aborted)
	fillEventStats(ev, out.Stats)
	detail := autoDetail(out)
	switch {
	case out.Found:
		fmt.Printf("SAT (%s, %v)\n", detail, out.Stats.Duration.Round(time.Microsecond))
		fmt.Println(formatSolution(inst, out.Solution))
	case out.Aborted:
		fmt.Printf("UNKNOWN (%s)\n", detail)
	default:
		fmt.Printf("UNSAT (%s, %v)\n", detail, out.Stats.Duration.Round(time.Microsecond))
	}
	return nil
}

// autoDetail renders the dispatcher part of the summary line: the route the
// verdict came from, the classification wall clock, and — when the
// portfolio fallback produced the verdict — its winning strategy.
func autoDetail(out dispatch.Outcome) string {
	detail := fmt.Sprintf("route=%v, classify %v", out.Route,
		out.ClassifyTime.Round(time.Microsecond))
	if out.Fallback && out.Winner != "" {
		detail += ", portfolio winner " + out.Winner
	}
	return detail
}

func runPortfolio(ctx context.Context, inst *csp.Instance, ev *obs.SolveEvent) error {
	res := csp.Portfolio(ctx, inst, csp.PortfolioOptions{})
	ev.Strategy = "portfolio"
	ev.Winner = res.Winner
	ev.Verdict = eventVerdict(res.Found, res.Aborted)
	fillEventStats(ev, res.Result.Stats)
	switch {
	case res.Found:
		fmt.Printf("SAT (portfolio winner %s [%s], depth %d, %v)\n", res.Winner,
			res.Result.Stats.Strategy, res.Result.Stats.MaxDepth,
			res.Total.Duration.Round(time.Microsecond))
		fmt.Println(formatSolution(inst, res.Solution))
	case res.Aborted:
		fmt.Printf("UNKNOWN (portfolio aborted, %v)\n", res.Total.Duration.Round(time.Microsecond))
	default:
		fmt.Printf("UNSAT (portfolio winner %s [%s], depth %d, %v)\n", res.Winner,
			res.Result.Stats.Strategy, res.Result.Stats.MaxDepth,
			res.Total.Duration.Round(time.Microsecond))
	}
	for _, rep := range res.Reports {
		status := "completed"
		if rep.Cancelled {
			status = "cancelled"
		} else if rep.Aborted {
			status = "aborted"
		}
		fmt.Printf("  %-8s %-9s nodes=%-8d depth=%-3d %v\n", rep.Name, status,
			rep.Stats.Nodes, rep.Stats.MaxDepth, rep.Stats.Duration.Round(time.Microsecond))
	}
	return nil
}

func runParallel(ctx context.Context, inst *csp.Instance, workers int, ev *obs.SolveEvent) error {
	res := csp.SolveParallel(ctx, inst, csp.ParallelOptions{Workers: workers})
	ev.Strategy = "parallel"
	ev.Verdict = eventVerdict(res.Found, res.Aborted)
	fillEventStats(ev, res.Stats)
	fmt.Printf("split into %d subtrees on %d workers\n", res.Subtrees, res.Workers)
	printSearchResult(inst, res.Result)
	return nil
}

// runLearn solves with the restart/nogood learning engine. The summary line
// extends the search format with the engine's own effort counters: restarts
// taken, nogoods recorded, and nogood propagation hits.
func runLearn(ctx context.Context, inst *csp.Instance, ev *obs.SolveEvent) error {
	res := csp.SolveCtx(ctx, inst, csp.Options{Learn: true})
	ev.Strategy = "learn"
	ev.Verdict = eventVerdict(res.Found, res.Aborted)
	fillEventStats(ev, res.Stats)
	st := res.Stats
	detail := fmt.Sprintf("%s, %d nodes, depth %d, %d restarts, %d nogoods (%d hits), %v",
		st.Strategy, st.Nodes, st.MaxDepth, st.Restarts, st.NogoodsRecorded, st.NogoodHits,
		st.Duration.Round(time.Microsecond))
	switch {
	case res.Found:
		fmt.Printf("SAT (%s)\n", detail)
		fmt.Println(formatSolution(inst, res.Solution))
	case res.Aborted:
		fmt.Printf("UNKNOWN (%s)\n", detail)
	default:
		fmt.Printf("UNSAT (%s)\n", detail)
	}
	return nil
}
