package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// writeTempInstance drops body into a temp file and returns its path.
func writeTempInstance(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "in.csp")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunErrorPaths walks the CLI's failure modes: each must surface as an
// error from run (so main exits 2), not a panic or a silent success.
func TestRunErrorPaths(t *testing.T) {
	sample := []string{"../../testdata/sample.csp"}

	t.Run("malformed instance", func(t *testing.T) {
		bad := writeTempInstance(t, "vars banana\ndom 2\n")
		err := run(config{strategy: "auto", args: []string{bad}})
		if err == nil {
			t.Fatal("malformed instance accepted")
		}
	})

	t.Run("truncated constraint", func(t *testing.T) {
		bad := writeTempInstance(t, "vars 2\ndom 2\ncon 0 1 : 0\n")
		if err := run(config{strategy: "auto", args: []string{bad}}); err == nil {
			t.Fatal("constraint with wrong tuple arity accepted")
		}
	})

	t.Run("unknown strategy", func(t *testing.T) {
		err := run(config{strategy: "quantum", args: sample})
		if err == nil || !strings.Contains(err.Error(), "strategy") {
			t.Fatalf("unknown strategy: err = %v", err)
		}
	})

	t.Run("negative timeout", func(t *testing.T) {
		err := run(config{strategy: "auto", timeout: -time.Second, args: sample})
		if err == nil || !strings.Contains(err.Error(), "timeout") {
			t.Fatalf("negative timeout: err = %v", err)
		}
	})

	t.Run("missing input file", func(t *testing.T) {
		if err := run(config{strategy: "auto", args: []string{filepath.Join(t.TempDir(), "absent.csp")}}); err == nil {
			t.Fatal("missing input file accepted")
		}
	})

	t.Run("too many args", func(t *testing.T) {
		if err := run(config{strategy: "auto", args: []string{"a.csp", "b.csp"}}); err == nil {
			t.Fatal("two positional args accepted")
		}
	})

	t.Run("trace file open failure", func(t *testing.T) {
		// The solve itself succeeds; writing the trace to a path inside a
		// nonexistent directory must turn the run into an error.
		badPath := filepath.Join(t.TempDir(), "no", "such", "dir", "trace.jsonl")
		err := run(config{strategy: "auto", trace: badPath, args: sample})
		if err == nil {
			t.Fatal("unwritable trace path accepted")
		}
		if !os.IsNotExist(err) && !strings.Contains(err.Error(), "no such file") {
			t.Fatalf("want file-open error, got %v", err)
		}
	})
}
