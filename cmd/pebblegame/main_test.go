package main

import "testing"

func TestRunOnSampleGraphs(t *testing.T) {
	// C5 vs K2 with 3 pebbles: Spoiler wins (odd cycle).
	if err := run(3, []string{"../../testdata/c5.graph", "../../testdata/k2.graph"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	// With 2 pebbles: Duplicator wins.
	if err := run(2, []string{"../../testdata/c5.graph", "../../testdata/k2.graph"}); err != nil {
		t.Fatalf("run k=2: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(3, []string{"../../testdata/c5.graph"}); err == nil {
		t.Fatal("single file accepted")
	}
	if err := run(3, []string{"../../testdata/c5.graph", "/nonexistent"}); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run(0, []string{"../../testdata/c5.graph", "../../testdata/k2.graph"}); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestLoadGraph(t *testing.T) {
	g, err := loadGraph("../../testdata/c5.graph")
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 5 || g.Rel("E").Len() != 10 {
		t.Fatalf("C5 parsed wrong: n=%d edges=%d", g.Size(), g.Rel("E").Len())
	}
}
