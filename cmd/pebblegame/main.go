// Command pebblegame decides existential k-pebble games between two graphs
// (Section 4 of the paper) and reports consistency facts derived from them.
//
// Usage:
//
//	pebblegame -k 3 left.graph right.graph
//
// Graph file: first line "n <vertices>", then one "u v" edge line per
// (directed) edge; add both directions for undirected graphs, or use
// "u -- v" for an undirected edge.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"csdb/internal/consistency"
	"csdb/internal/csp"
	"csdb/internal/pebble"
	"csdb/internal/structure"
)

func main() {
	k := flag.Int("k", 3, "number of pebbles")
	flag.Parse()
	if err := run(*k, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "pebblegame:", err)
		os.Exit(2)
	}
}

func run(k int, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: pebblegame -k K left.graph right.graph")
	}
	a, err := loadGraph(args[0])
	if err != nil {
		return err
	}
	b, err := loadGraph(args[1])
	if err != nil {
		return err
	}

	strat, err := pebble.LargestStrategy(a, b, k)
	if err != nil {
		return err
	}
	if strat.NonEmpty() {
		fmt.Printf("Duplicator wins the existential %d-pebble game (largest winning strategy: %d partial homomorphisms)\n", k, strat.Size())
		fmt.Printf("strong %d-consistency can be established (Theorem 5.6)\n", k)
	} else {
		fmt.Printf("Spoiler wins the existential %d-pebble game\n", k)
		fmt.Printf("strong %d-consistency cannot be established; no homomorphism exists\n", k)
	}

	if hom, ok := csp.FindHomomorphism(a, b); ok {
		fmt.Printf("homomorphism exists: %v\n", hom)
	} else {
		fmt.Println("no homomorphism exists")
	}

	for i := 1; i <= k; i++ {
		ok, err := consistency.IsIConsistent(a, b, i)
		if err != nil {
			return err
		}
		fmt.Printf("%d-consistent: %v\n", i, ok)
	}
	return nil
}

func loadGraph(path string) (*structure.Structure, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	var g *structure.Structure
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch {
		case fields[0] == "n":
			if len(fields) != 2 {
				return nil, fmt.Errorf("%s:%d: want 'n <count>'", path, line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("%s:%d: bad count %q", path, line, fields[1])
			}
			g = structure.NewGraph(n)
		case len(fields) == 3 && fields[1] == "--":
			if g == nil {
				return nil, fmt.Errorf("%s:%d: edge before 'n' line", path, line)
			}
			u, err1 := strconv.Atoi(fields[0])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("%s:%d: bad edge", path, line)
			}
			if err := g.AddTuple("E", u, v); err != nil {
				return nil, fmt.Errorf("%s:%d: %v", path, line, err)
			}
			if err := g.AddTuple("E", v, u); err != nil {
				return nil, fmt.Errorf("%s:%d: %v", path, line, err)
			}
		case len(fields) == 2:
			if g == nil {
				return nil, fmt.Errorf("%s:%d: edge before 'n' line", path, line)
			}
			u, err1 := strconv.Atoi(fields[0])
			v, err2 := strconv.Atoi(fields[1])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("%s:%d: bad edge", path, line)
			}
			if err := g.AddTuple("E", u, v); err != nil {
				return nil, fmt.Errorf("%s:%d: %v", path, line, err)
			}
		default:
			return nil, fmt.Errorf("%s:%d: unrecognized line %q", path, line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("%s: missing 'n' line", path)
	}
	return g, nil
}
