// Command experiments runs the reproduction experiments E1–E13 (one per
// theorem/proposition of the paper; see DESIGN.md) and prints their tables
// as markdown — the source of EXPERIMENTS.md.
//
// Usage:
//
//	experiments               # run everything
//	experiments -only E9,E11  # run a subset
//	experiments -seed 7       # change the workload seed
//	experiments -list         # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"csdb/internal/experiments"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment ids to run (default all)")
	seed := flag.Int64("seed", 1, "workload seed")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return
	}

	selected := experiments.Registry
	if *only != "" {
		selected = nil
		for _, id := range strings.Split(*only, ",") {
			e, ok := experiments.Find(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		fmt.Fprintf(os.Stderr, "running %s (%s)...\n", e.ID, e.Name)
		table := e.Run(*seed)
		fmt.Println(table.Markdown())
	}
}
