package main

import "testing"

func TestRunContainment(t *testing.T) {
	if err := run([]string{
		"Q(X) :- E(X,Y), E(Y,Z), E(Z,X)",
		"Q(X) :- E(X,Y)",
	}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"only one"}); err == nil {
		t.Fatal("single argument accepted")
	}
	if err := run([]string{"Q(X) :- E(X,Y)", "garbage"}); err == nil {
		t.Fatal("bad query accepted")
	}
	if err := run([]string{"Q(X) :- E(X,Y)", "Q(X,Y) :- E(X,Y)"}); err == nil {
		t.Fatal("head arity mismatch accepted")
	}
}

func TestRunMinimize(t *testing.T) {
	if err := runMinimize([]string{"Q(X,Y) :- E(X,Z), E(Z,Y), E(X,W)"}); err != nil {
		t.Fatalf("runMinimize: %v", err)
	}
	if err := runMinimize([]string{"bad("}); err == nil {
		t.Fatal("bad query accepted")
	}
	if err := runMinimize(nil); err == nil {
		t.Fatal("no arguments accepted")
	}
}
