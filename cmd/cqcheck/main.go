// Command cqcheck decides conjunctive-query containment and equivalence by
// the Chandra–Merlin theorem (Proposition 2.2 of the paper).
//
// Usage:
//
//	cqcheck 'Q1(X,Y) :- E(X,Z), E(Z,Y)' 'Q2(X,Y) :- E(X,Z), E(Z,W), E(W,Y)'
//	cqcheck -minimize 'Q(X,Y) :- E(X,Z), E(Z,Y), E(X,W)'
//
// It prints whether Q1 ⊆ Q2, Q2 ⊆ Q1, both (equivalent), or neither, and
// cross-checks the evaluation-based and homomorphism-based procedures. With
// -minimize it prints the core of a single query instead.
package main

import (
	"flag"
	"fmt"
	"os"

	"csdb/internal/cq"
)

func main() {
	minimize := flag.Bool("minimize", false, "minimize one query (print its core)")
	flag.Parse()
	var err error
	if *minimize {
		err = runMinimize(flag.Args())
	} else {
		err = run(flag.Args())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cqcheck:", err)
		os.Exit(2)
	}
}

func runMinimize(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: cqcheck -minimize <query>")
	}
	q, err := cq.Parse(args[0])
	if err != nil {
		return err
	}
	m, err := cq.Minimize(q)
	if err != nil {
		return err
	}
	fmt.Printf("input: %s\ncore:  %s\n", q, m)
	if len(m.Body) < len(q.Body) {
		fmt.Printf("removed %d redundant subgoal(s)\n", len(q.Body)-len(m.Body))
	} else {
		fmt.Println("the query is already minimal")
	}
	return nil
}

func run(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: cqcheck <query1> <query2>")
	}
	q1, err := cq.Parse(args[0])
	if err != nil {
		return fmt.Errorf("query 1: %w", err)
	}
	q2, err := cq.Parse(args[1])
	if err != nil {
		return fmt.Errorf("query 2: %w", err)
	}

	c12, err := cq.Contains(q1, q2)
	if err != nil {
		return err
	}
	c21, err := cq.Contains(q2, q1)
	if err != nil {
		return err
	}
	// Cross-check via the homomorphism criterion.
	h12, err := cq.ContainsViaHomomorphism(q1, q2)
	if err != nil {
		return err
	}
	h21, err := cq.ContainsViaHomomorphism(q2, q1)
	if err != nil {
		return err
	}
	if c12 != h12 || c21 != h21 {
		return fmt.Errorf("internal inconsistency: evaluation and homomorphism checks disagree")
	}

	fmt.Printf("Q1: %s\nQ2: %s\n", q1, q2)
	fmt.Printf("Q1 ⊆ Q2: %v\n", c12)
	fmt.Printf("Q2 ⊆ Q1: %v\n", c21)
	switch {
	case c12 && c21:
		fmt.Println("verdict: equivalent")
	case c12:
		fmt.Println("verdict: Q1 strictly contained in Q2")
	case c21:
		fmt.Println("verdict: Q2 strictly contained in Q1")
	default:
		fmt.Println("verdict: incomparable")
	}
	return nil
}
