# Build/verify entry points. `make check` is the default gate: vet (with the
# gofmt gate), tier-1 verify (ROADMAP.md), the repo's own static analyzers
# (`make lint`, see README "Static analysis"), the race-gated kernel packages
# and the observability layer + daemon. `make bench` captures the
# relational-kernel benchmark suite into BENCH_relation.json; `make
# obs-overhead` measures the disabled cost of the observability
# instrumentation; `make fuzz-smoke` gives each native fuzz target a short
# shake.

GO ?= go
BENCH_LABEL ?= after
FUZZTIME ?= 10s

.PHONY: check build test verify vet lint fuzz-smoke race race-engine race-kernel race-obs race-serve race-dispatch race-search race-cluster bench bench-serve bench-search bench-cluster obs-overhead expofmt csptop-smoke

# Default target: everything a PR must pass locally. expofmt is the
# exposition-format gate (Prometheus text writer + /metrics content tests).
check: vet verify lint expofmt race-kernel race-obs race-serve race-dispatch race-search race-cluster

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# go vet plus the formatting gate: gofmt -l prints offending files, and any
# output fails the target.
vet:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Run the repo-specific invariant analyzers (cmd/csplint) over the module:
# ctxloop, obsboundary, obslabel, arenaretain, atomicmix. Exit 1 on any
# finding.
lint:
	$(GO) build ./...
	$(GO) run ./cmd/csplint ./...

# Briefly run every native fuzz target (differential join oracle, instance
# parser, tractability dispatcher). FUZZTIME=2m fuzz-smoke for a longer shake.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzParseInstance -fuzztime $(FUZZTIME) ./internal/cspio/
	$(GO) test -run '^$$' -fuzz FuzzJoinDifferential -fuzztime $(FUZZTIME) ./internal/relation/
	$(GO) test -run '^$$' -fuzz FuzzDispatch -fuzztime $(FUZZTIME) ./internal/dispatch/
	$(GO) test -run '^$$' -fuzz FuzzSearchDifferential -fuzztime $(FUZZTIME) ./internal/csp/

# Tier-1 verification (ROADMAP.md): the module builds and all tests pass.
verify: build test

# Race-check the whole module. The concurrent solver paths (portfolio,
# parallel search, cancellation) live in internal/csp, but the full module
# runs under the detector so future concurrency is covered automatically.
race:
	$(GO) test -race -count=1 ./...

# The fast subset: just the packages with goroutines on the hot path.
race-engine:
	$(GO) test -race -count=1 ./internal/csp/ ./internal/consistency/ ./internal/relation/

# The relational kernel and its main consumer, with the parallel hash join
# enabled — the acceptance gate for the integer-coded kernel.
race-kernel:
	$(GO) test -race -count=1 ./internal/relation/ ./internal/hypergraph/

# The observability layer and every binary that records or consumes it: the
# registry, tracer and event ring are written to by every solver goroutine,
# the daemon serves them, csolve streams events, and csptop drains both
# endpoints — all run under the detector.
race-obs:
	$(GO) test -race -count=1 ./internal/obs/ ./cmd/cspd/ ./cmd/csolve/ ./cmd/csptop/

# The serving layers (admission gate, result cache, singleflight) and the
# daemon they are wired into: collapsing and shedding are inherently
# concurrent, so both packages always run under the detector.
race-serve:
	$(GO) test -race -count=1 ./internal/serve/ ./cmd/cspd/

# The tractability dispatcher and its differential gate: the classification
# cache is shared across goroutines (cspd routes through one analyzer) and
# the gate's hard-class trials race the portfolio, so the whole suite runs
# under the detector.
race-dispatch:
	$(GO) test -race -count=1 ./internal/dispatch/

# The search core (bitset domains, watched supports, nogood learning) and
# the hard-instance generators behind its differential gate: the portfolio
# races learning against MAC, so the whole suite runs under the detector.
race-search:
	$(GO) test -race -count=1 ./internal/csp/ ./internal/gen/

# The cluster router and its binary: the health poller writes liveness/load
# that every request reads, batch fan-out runs a worker pool, and the
# lifecycle test drains under SIGTERM — all under the detector.
race-cluster:
	$(GO) test -race -count=1 ./internal/cluster/ ./cmd/cspr/

# Benchmark the join/semijoin/Yannakakis/engine hot paths and merge the
# medians into BENCH_relation.json under $(BENCH_LABEL). Run with
# BENCH_LABEL=before on a pre-change tree to record a baseline.
bench:
	$(GO) test -bench 'Join|Semijoin|Yannakakis|Engine' -benchmem -count 5 \
		-benchtime=0.3s -run '^$$' -timeout 60m \
		. ./internal/relation/ ./internal/hypergraph/ \
		| $(GO) run ./cmd/benchjson -o BENCH_relation.json -label $(BENCH_LABEL) -obs

# Benchmark the daemon's serving stack — cold engine solve vs canonical
# cache hit on the same request — into BENCH_serve.json. The recorded gap is
# the acceptance bar for the result cache (hit median >= 50x faster).
bench-serve:
	$(GO) test -bench 'ServeSolve|ServeCanonicalHash' -benchmem -count 5 \
		-benchtime=0.3s -run '^$$' -timeout 30m ./cmd/cspd/ \
		| $(GO) run ./cmd/benchjson -o BENCH_serve.json -label $(BENCH_LABEL) \
		-note "cspd request latency: cold engine solve vs canonical result-cache hit on PHP(8), plus the cache-key (parse+hash) cost"

# Benchmark the cluster router into BENCH_serve.json: aggregate throughput
# as replicas are added (sleep-bound backends expose per-node capacity), and
# consistent-hash affinity vs round-robin spraying on bounded backend caches
# (the miss/op gap is what the ring buys).
bench-cluster:
	$(GO) test -bench 'ClusterQPS|ClusterAffinity|ClusterRandom' -benchmem \
		-count 5 -benchtime=0.3s -run '^$$' -timeout 30m ./internal/cluster/ \
		| $(GO) run ./cmd/benchjson -o BENCH_serve.json -label $(BENCH_LABEL) \
		-note "cspr cluster router: aggregate QPS vs replica count, and consistent-hash affinity vs round-robin on bounded caches (miss/op)"

# Time the search-core engines (seed vs bitset MAC vs restart/nogood
# learning) in-process on the fixed hard-instance suite — pigeonhole,
# quasigroup completion, phase-transition Model B — into BENCH_search.json.
# The recorded speedups are the acceptance bar for the search-core rewrite
# (learning >= 5x over the seed engine on a hard family).
bench-search:
	$(GO) run ./cmd/benchjson -search -label $(BENCH_LABEL)

# The exposition-format gate, fast enough for every `make check`: the
# Prometheus text writer pinned against a stdlib-parser round trip, and the
# daemon's /metrics serving both formats (text default, ?format=json legacy).
expofmt:
	$(GO) test -count=1 -run 'Prom|Prometheus' ./internal/obs/ ./cmd/cspd/

# Smoke-test the dashboard end to end: build cspd and csptop, start the
# daemon on a loopback port, render one -once frame against it, shut down.
csptop-smoke:
	@set -e; tmp=$$(mktemp -d); \
	trap 'kill $$pid 2>/dev/null || true; rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/cspd ./cmd/cspd; \
	$(GO) build -o $$tmp/csptop ./cmd/csptop; \
	$$tmp/cspd -addr 127.0.0.1:8399 >$$tmp/cspd.log 2>&1 & pid=$$!; \
	for i in $$(seq 1 50); do \
		if $$tmp/csptop -url http://127.0.0.1:8399 -once >/dev/null 2>&1; then break; fi; \
		sleep 0.1; \
	done; \
	$$tmp/csptop -url http://127.0.0.1:8399 -once

# Measure what the observability instrumentation costs when it is off (the
# library default; the acceptance bar is <2% vs the pre-instrumentation
# baseline) and what turning the registry on costs on the same workloads.
obs-overhead:
	$(GO) test -bench 'ObsOverhead' -benchmem -count 5 -benchtime=0.3s \
		-run '^$$' -timeout 30m .
