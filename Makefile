# Build/verify entry points. `make verify` is the tier-1 gate from
# ROADMAP.md; `make race` is the concurrency gate added with the parallel
# portfolio engine — it must run on every change that touches
# internal/csp, internal/consistency or internal/relation.

GO ?= go

.PHONY: build test verify race race-engine bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 verification (ROADMAP.md): the module builds and all tests pass.
verify: build test

# Race-check the whole module. The concurrent solver paths (portfolio,
# parallel search, cancellation) live in internal/csp, but the full module
# runs under the detector so future concurrency is covered automatically.
race:
	$(GO) test -race -count=1 ./...

# The fast subset: just the packages with goroutines on the hot path.
race-engine:
	$(GO) test -race -count=1 ./internal/csp/ ./internal/consistency/ ./internal/relation/

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .
