// Package csdb_bench holds the benchmark harness: one benchmark per
// reproduction experiment E1–E12 (see DESIGN.md and EXPERIMENTS.md), each
// exercising the measured kernel of the corresponding table. Run with
//
//	go test -bench=. -benchmem
package csdb_bench

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"csdb/internal/automata"
	"csdb/internal/consistency"
	"csdb/internal/cq"
	"csdb/internal/csp"
	"csdb/internal/datalog"
	"csdb/internal/digraph"
	"csdb/internal/gen"
	"csdb/internal/graph"
	"csdb/internal/hcolor"
	"csdb/internal/hypergraph"
	"csdb/internal/logic"
	"csdb/internal/pebble"
	"csdb/internal/rpq"
	"csdb/internal/schaefer"
	"csdb/internal/structure"
	"csdb/internal/treewidth"
)

// E1 — Proposition 2.1: join evaluation vs MAC search on model-B instances.

func BenchmarkE1_JoinSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	inst := gen.ModelB(rng, 10, 3, 0.5, 0.35)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		csp.JoinSolve(inst)
	}
}

func BenchmarkE1_MACSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	inst := gen.ModelB(rng, 10, 3, 0.5, 0.35)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		csp.Solve(inst, csp.Options{})
	}
}

// E2 — Proposition 2.2: the two containment procedures.

func BenchmarkE2_ContainmentViaEvaluation(b *testing.B) {
	q1 := cq.MustParse(gen.ChainQuery(8))
	q2 := cq.MustParse(gen.ChainQuery(8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, err := cq.Contains(q1, q2); err != nil || !ok {
			b.Fatal("containment failed")
		}
	}
}

func BenchmarkE2_ContainmentViaHomomorphism(b *testing.B) {
	q1 := cq.MustParse(gen.ChainQuery(8))
	q2 := cq.MustParse(gen.ChainQuery(8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, err := cq.ContainsViaHomomorphism(q1, q2); err != nil || !ok {
			b.Fatal("containment failed")
		}
	}
}

// E3 — Schaefer classes: dedicated solver vs generic search on a Horn
// template, and generic search on the NP-side 1-in-3 template.

func schaeferHornInstance(n int) *schaefer.Instance {
	rng := rand.New(rand.NewSource(3))
	tpl := &schaefer.Template{Rels: []*schaefer.BoolRel{
		schaefer.RelClause(false, false, true),
		schaefer.RelClause(true),
		schaefer.RelClause(false),
	}}
	inst := &schaefer.Instance{Template: tpl, NumVars: n}
	for c := 0; c < 2*n; c++ {
		ri := rng.Intn(len(tpl.Rels))
		scope := make([]int, tpl.Rels[ri].Arity())
		for i := range scope {
			scope[i] = rng.Intn(n)
		}
		inst.Cons = append(inst.Cons, schaefer.Application{Rel: ri, Scope: scope})
	}
	return inst
}

func BenchmarkE3_HornSolver(b *testing.B) {
	inst := schaeferHornInstance(60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := schaefer.SolveHorn(inst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3_GenericSearchOnHorn(b *testing.B) {
	inst := schaeferHornInstance(60)
	q, err := inst.ToCSP()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		csp.Solve(q, csp.Options{})
	}
}

func BenchmarkE3_GenericSearchOneInThree(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	tpl := &schaefer.Template{Rels: []*schaefer.BoolRel{schaefer.RelOneInThree()}}
	inst := &schaefer.Instance{Template: tpl, NumVars: 24}
	for c := 0; c < 52; c++ {
		inst.Cons = append(inst.Cons, schaefer.Application{
			Rel: 0, Scope: []int{rng.Intn(24), rng.Intn(24), rng.Intn(24)},
		})
	}
	q, err := inst.ToCSP()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		csp.Solve(q, csp.Options{})
	}
}

// E4 — Hell–Nešetřil: bipartite template vs K3 on the same inputs.

func BenchmarkE4_BipartiteTemplate(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g := gen.RandomGraph(rng, 60, 4.5/60)
	h := graph.Cycle(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hcolor.Solve(g, h); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4_K3Template(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g := gen.RandomGraph(rng, 60, 4.5/60)
	h := graph.Clique(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hcolor.Solve(g, h); err != nil {
			b.Fatal(err)
		}
	}
}

// E5 — Theorem 4.5: k-pebble game decision, polynomial in n for fixed k.

func BenchmarkE5_PebbleGame(b *testing.B) {
	for _, n := range []int{6, 10, 14} {
		b.Run(fmt.Sprintf("C%d_vs_K2_k3", n), func(b *testing.B) {
			a := structure.Cycle(n)
			k2 := structure.Clique(2)
			for i := 0; i < b.N; i++ {
				if _, err := pebble.LargestStrategy(a, k2, 3); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E6 — the three non-2-colorability deciders.

func e6Graph() (*graph.Graph, *structure.Structure) {
	rng := rand.New(rand.NewSource(6))
	g := gen.RandomGraph(rng, 10, 0.25)
	s := structure.NewGraph(10)
	for _, e := range g.Edges() {
		structure.AddUndirectedEdge(s, e[0], e[1])
	}
	return g, s
}

func BenchmarkE6_DatalogNon2Col(b *testing.B) {
	_, s := e6Graph()
	prog := datalog.NonTwoColorability()
	edb := datalog.GraphEDB(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := datalog.GoalTrue(prog, edb); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6_PebbleNon2Col(b *testing.B) {
	_, s := e6Graph()
	k2 := structure.Clique(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pebble.SpoilerWins(s, k2, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6_BFSNon2Col(b *testing.B) {
	g, _ := e6Graph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.IsBipartite()
	}
}

// E7 — establishing strong k-consistency, and propagation levels in search.

func BenchmarkE7_EstablishStrongK(b *testing.B) {
	a := structure.Cycle(6)
	k3 := structure.Clique(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := consistency.EstablishStrongK(a, k3, 2); err != nil || !ok {
			b.Fatal("establishment failed")
		}
	}
}

func BenchmarkE7_SearchBT(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	inst := gen.ModelB(rng, 14, 4, 0.5, 0.45)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		csp.Solve(inst, csp.Options{Algorithm: csp.BT})
	}
}

func BenchmarkE7_SearchMAC(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	inst := gen.ModelB(rng, 14, 4, 0.5, 0.45)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		csp.Solve(inst, csp.Options{Algorithm: csp.MAC})
	}
}

// E8 — Proposition 6.1: building and evaluating the (k+1)-variable formula.

func BenchmarkE8_BuildFormula(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	g, order := gen.PartialKTree(rng, 30, 2, 0.1)
	a := structure.NewGraph(g.N())
	for _, e := range g.Edges() {
		structure.AddUndirectedEdge(a, e[0], e[1])
	}
	dec := treewidth.FromOrdering(g, order)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := treewidth.BuildFormula(a, dec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8_EvaluateFormula(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	g, order := gen.PartialKTree(rng, 30, 2, 0.1)
	a := structure.NewGraph(g.N())
	for _, e := range g.Edges() {
		structure.AddUndirectedEdge(a, e[0], e[1])
	}
	dec := treewidth.FromOrdering(g, order)
	f, err := treewidth.BuildFormula(a, dec)
	if err != nil {
		b.Fatal(err)
	}
	k3 := structure.Clique(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := logic.Holds(f, k3); err != nil {
			b.Fatal(err)
		}
	}
}

// E9 — Theorem 6.2: DP over the decomposition vs MAC search, by n.

func BenchmarkE9(b *testing.B) {
	for _, n := range []int{40, 80, 160} {
		rng := rand.New(rand.NewSource(9))
		g, order := gen.PartialKTree(rng, n, 2, 0.1)
		inst := gen.CSPOnGraph(rng, g, 3, 0.45)
		dec := treewidth.FromOrdering(g, order)
		b.Run(fmt.Sprintf("DP_n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := treewidth.SolveDecomposed(inst, dec); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("BT_n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				csp.Solve(inst, csp.Options{Algorithm: csp.BT})
			}
		})
		b.Run(fmt.Sprintf("MAC_n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				csp.Solve(inst, csp.Options{})
			}
		})
	}
}

// E10 — Yannakakis vs naive evaluation on an acyclic chain query.

func e10DB() *structure.Structure {
	rng := rand.New(rand.NewSource(10))
	voc := structure.MustVocabulary(structure.Symbol{Name: "R", Arity: 2})
	db := structure.MustNew(voc, 60)
	for i := 0; i < 150; i++ {
		db.MustAddTuple("R", rng.Intn(60), rng.Intn(60))
	}
	return db
}

func BenchmarkE10_Yannakakis(b *testing.B) {
	q := cq.MustParse(gen.ChainQuery(5))
	db := e10DB()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hypergraph.Yannakakis(q, db); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10_NaiveJoin(b *testing.B) {
	q := cq.MustParse(gen.ChainQuery(5))
	db := e10DB()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Evaluate(db); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10_GYO(b *testing.B) {
	q := cq.MustParse(gen.ChainQuery(12))
	h, _, err := hypergraph.FromQuery(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.GYO()
	}
}

// E11 — certain answers: template construction (expression complexity) and
// answering (data complexity) separately.

func BenchmarkE11_TemplateConstruction(b *testing.B) {
	q := automata.MustParseRegex("(ab)*")
	views := []rpq.View{{Name: 'v', Def: "a"}, {Name: 'w', Def: "b"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rpq.ConstraintTemplate(q, views); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11_CertainAnswer(b *testing.B) {
	q := automata.MustParseRegex("(ab)*")
	views := []rpq.View{{Name: 'v', Def: "a"}, {Name: 'w', Def: "b"}}
	tpl, err := rpq.ConstraintTemplate(q, views)
	if err != nil {
		b.Fatal(err)
	}
	ext := rpq.Extension{
		'v': {{X: "x", Y: "y"}, {X: "z", Y: "w"}},
		'w': {{X: "y", Y: "z"}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rpq.CertainAnswer(tpl, ext, "x", "w"); err != nil {
			b.Fatal(err)
		}
	}
}

// E12 — reduction round trip and maximal rewriting construction.

func BenchmarkE12_SolveViaViews(b *testing.B) {
	a := structure.Cycle(4)
	k2 := structure.Clique(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rpq.SolveViaViews(a, k2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE12_MaximalRewriting(b *testing.B) {
	views := []rpq.View{{Name: 'v', Def: "ab"}, {Name: 'w', Def: "a"}, {Name: 'u', Def: "b"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rpq.MaximalRewriting("(ab)*", views); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations: the design choices DESIGN.md calls out, benchmarked ---

// Backjumping vs chronological backtracking on the same static order.
func BenchmarkAblation_BTvsCBJ(b *testing.B) {
	p := csp.NewInstance(12, 3)
	u := csp.TableOf(1, []int{1}, []int{2})
	p.MustAddConstraint([]int{0}, u)
	last := csp.TableOf(2, []int{0, 0})
	p.MustAddConstraint([]int{0, 11}, last)
	b.Run("BT", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			csp.Solve(p, csp.Options{Algorithm: csp.BT, VarOrder: csp.Lex})
		}
	})
	b.Run("CBJ", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			csp.SolveCBJ(p, csp.Options{VarOrder: csp.Lex})
		}
	})
}

// Freuder's backtrack-free tree algorithm vs MAC on tree instances.
func BenchmarkAblation_TreeSolver(b *testing.B) {
	rng := rand.New(rand.NewSource(20))
	g := graph.Path(200)
	inst := gen.CSPOnGraph(rng, g, 4, 0.3)
	b.Run("Freuder", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := consistency.SolveTree(inst); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("MAC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			csp.Solve(inst, csp.Options{})
		}
	})
}

// Exact counting by decomposition DP (vs exhaustive enumeration at a size
// where enumeration is still feasible).
func BenchmarkAblation_Counting(b *testing.B) {
	p := csp.MustFromStructures(structure.Path(16), structure.Clique(3))
	b.Run("DecompositionDP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := treewidth.Count(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Enumeration", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			csp.CountSolutions(p, 0)
		}
	})
}

// The canonical 2-Datalog program vs the direct game algorithm.
func BenchmarkAblation_CanonicalProgram(b *testing.B) {
	a := structure.Cycle(6)
	k2 := structure.Clique(2)
	prog, err := datalog.CanonicalProgram(k2)
	if err != nil {
		b.Fatal(err)
	}
	edb := datalog.GraphEDB(a)
	b.Run("CanonicalDatalog", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := datalog.GoalTrue(prog, edb); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("DirectGame", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pebble.SpoilerWins(a, k2, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Query minimization cost on a chain with redundant atoms.
func BenchmarkAblation_QueryMinimization(b *testing.B) {
	q := cq.MustParse("Q(X,Y) :- E(X,Z), E(Z,Y), E(X,W), E(W2,Y), E(X,Z), E(U,V)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cq.Minimize(q); err != nil {
			b.Fatal(err)
		}
	}
}

// DFA minimization on rewriting automata.
func BenchmarkAblation_DFAMinimize(b *testing.B) {
	views := []rpq.View{{Name: 'v', Def: "ab"}, {Name: 'w', Def: "a"}, {Name: 'u', Def: "b"}}
	rw, err := rpq.MaximalRewriting("(ab)*", views)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rw.Minimize()
	}
}

// The Feder–Vardi digraph encoding: construction cost and solving the
// reduced instance vs the direct one.
func BenchmarkAblation_DigraphReduction(b *testing.B) {
	a := structure.Cycle(5)
	k3 := structure.Clique(3)
	b.Run("Encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := digraph.EncodePair(a, k3); err != nil {
				b.Fatal(err)
			}
		}
	})
	encA, encB, err := digraph.EncodePair(a, k3)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("SolveReduced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			csp.HomomorphismExists(encA.Graph, encB.Graph)
		}
	})
	b.Run("SolveDirect", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			csp.HomomorphismExists(a, k3)
		}
	})
}

// --- Engine: the parallel portfolio solver (README "Parallel solving") ---
//
// Three workload families compare the sequential deciders against the
// work-splitting parallel search and the portfolio race. The E1-E12
// baselines above stay sequential; these benchmarks are the concurrency
// story only.

func engineSolvers(p *csp.Instance) map[string]func() csp.Result {
	return map[string]func() csp.Result{
		"MAC": func() csp.Result { return csp.Solve(p, csp.Options{}) },
		"FC":  func() csp.Result { return csp.Solve(p, csp.Options{Algorithm: csp.FC, VarOrder: csp.Lex}) },
		"CBJ": func() csp.Result { return csp.SolveCBJ(p, csp.Options{}) },
		"Parallel": func() csp.Result {
			return csp.SolveParallel(context.Background(), p, csp.ParallelOptions{Workers: 4}).Result
		},
		"Portfolio": func() csp.Result {
			return csp.Portfolio(context.Background(), p, csp.PortfolioOptions{}).Result
		},
	}
}

func benchEngine(b *testing.B, p *csp.Instance) {
	for _, name := range []string{"MAC", "FC", "CBJ", "Parallel", "Portfolio"} {
		run := engineSolvers(p)[name]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if res := run(); res.Aborted {
					b.Fatal("solver aborted without limits")
				}
			}
		})
	}
}

func BenchmarkEngineQueens8(b *testing.B) {
	benchEngine(b, gen.NQueens(8))
}

func BenchmarkEnginePhaseTransition(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	benchEngine(b, gen.ModelB(rng, 14, 4, 0.5, 0.45))
}

func BenchmarkEngineOddCycleColoring(b *testing.B) {
	benchEngine(b, gen.Coloring(graph.Cycle(21), 2))
}

// BenchmarkEngineMixedFamily is the portfolio acceptance benchmark: a
// three-instance family on which every fixed strategy is beaten badly on at
// least one member, so the portfolio's per-instance adaptivity wins the
// family even on a single core.
//
//   - 16-queens: MAC ~3.5ms, but FC ~65ms and CBJ ~220ms.
//   - big-domain loose model B (n=150, d=50): CBJ ~2ms, but FC ~39ms and
//     MAC ~290ms (per-node propagation scans 2500-pair tables for nothing).
//   - loose model B (n=60, d=10, p=0.3, q=0.1): MAC 51ms, CBJ ~0.7ms, and
//     FC+Lex thrashes for >18s without finishing (heavy-tailed behavior past
//     the phase transition) — its sub-benchmark runs under a 500k-node budget
//     and still fails to decide the member, so its time is a lower bound.
//
// The portfolio races the three searchers (SearchStrategies; join evaluation
// is kept out of the pool because its allocations throttle the race through
// the garbage collector) and decides the whole family roughly an order of
// magnitude faster than the best fixed strategy.
func engineMixedFamily() []*csp.Instance {
	big := gen.ModelB(rand.New(rand.NewSource(1)), 150, 50, 0.12, 0.01)
	loose := gen.ModelB(rand.New(rand.NewSource(1)), 60, 10, 0.3, 0.1)
	return []*csp.Instance{gen.NQueens(16), big, loose}
}

func BenchmarkEngineMixedFamily(b *testing.B) {
	family := engineMixedFamily()
	fixed := map[string]func(p *csp.Instance) csp.Result{
		"MAC": func(p *csp.Instance) csp.Result { return csp.Solve(p, csp.Options{}) },
		"FC_500kNodes": func(p *csp.Instance) csp.Result {
			return csp.Solve(p, csp.Options{Algorithm: csp.FC, VarOrder: csp.Lex, NodeLimit: 500_000})
		},
		"CBJ": func(p *csp.Instance) csp.Result { return csp.SolveCBJ(p, csp.Options{}) },
	}
	for _, name := range []string{"MAC", "FC_500kNodes", "CBJ"} {
		run := fixed[name]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, p := range family {
					run(p)
				}
			}
		})
	}
	b.Run("Portfolio", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range family {
				res := csp.Portfolio(context.Background(), p, csp.PortfolioOptions{
					Strategies: csp.SearchStrategies(),
				})
				if res.Aborted {
					b.Fatal("portfolio aborted without limits")
				}
			}
		}
	})
}
