// Overhead benchmarks for the observability layer: the same MAC solve and
// large natural join measured with the obs registry off (the library
// default — this is the path every non-daemon user pays) and on. The
// acceptance bar for this repo is that disabling observability costs under
// 2% on these workloads; `make obs-overhead` runs exactly these. The
// off/on split lives in one binary so the comparison isolates the
// instrumentation's execution cost (the disabled path is a handful of
// atomic bool loads per solve/join call) from binary-layout shifts, which
// on the benchmark machines swing hot loops by more than the
// instrumentation itself — the inner join loop disassembles to identical
// instructions before and after this layer was added.
//
// Tracing stays off in both modes: span recording is a consumer feature
// (cspd, csolve -trace) whose cost is paid only when a ring drain is
// wanted, while the metric counters are the always-compiled-in part whose
// disabled cost has to be provably negligible.
package csdb_bench

import (
	"math/rand"
	"testing"

	"csdb/internal/csp"
	"csdb/internal/gen"
	"csdb/internal/obs"
	"csdb/internal/relation"
)

// withObsState runs the sub-benchmark with the registry switched to
// enabled, restoring the prior global state afterwards.
func withObsState(b *testing.B, enabled bool, f func(b *testing.B)) {
	b.Helper()
	prev := obs.Enabled()
	obs.SetEnabled(enabled)
	defer obs.SetEnabled(prev)
	f(b)
}

// BenchmarkObsOverheadEngine is the search-side overhead probe: the E7
// phase-transition MAC solve, instrumented at solve/propagation boundaries.
func BenchmarkObsOverheadEngine(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	inst := gen.ModelB(rng, 14, 4, 0.5, 0.45)
	for _, mode := range []struct {
		name    string
		enabled bool
	}{{"off", false}, {"on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			withObsState(b, mode.enabled, func(b *testing.B) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					csp.Solve(inst, csp.Options{Algorithm: csp.MAC})
				}
			})
		})
	}
}

// overheadJoinPair mirrors the relation package's 10k-row natural-join
// benchmark workload (benchPair(10000, 1000)): R(a,b) with 10000 rows
// joining S(b,c) with 1000 rows on the shared b column.
func overheadJoinPair() (*relation.Relation, *relation.Relation) {
	rng := rand.New(rand.NewSource(11))
	r := relation.MustNew("a", "b")
	for i := 0; i < 10000; i++ {
		r.MustAdd(relation.Tuple{i, rng.Intn(1000)})
	}
	s := relation.MustNew("b", "c")
	for i := 0; i < 1000; i++ {
		s.MustAdd(relation.Tuple{rng.Intn(1000), i})
	}
	return r, s
}

// BenchmarkObsOverheadJoin is the kernel-side overhead probe: one large
// hash join, instrumented with per-call row/byte counters.
func BenchmarkObsOverheadJoin(b *testing.B) {
	r, s := overheadJoinPair()
	for _, mode := range []struct {
		name    string
		enabled bool
	}{{"off", false}, {"on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			withObsState(b, mode.enabled, func(b *testing.B) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if out := r.Join(s); out.Len() == 0 {
						b.Fatal("empty join")
					}
				}
			})
		})
	}
}

// BenchmarkObsOverheadVec is the labeled-metric overhead probe: one
// CounterVec increment and one HistogramVec observation per iteration, with
// the registry off (one atomic bool load each — the cost every solve pays
// after PR 8) and on (series lookup under RLock plus an atomic add).
func BenchmarkObsOverheadVec(b *testing.B) {
	vec := obs.NewCounterVec("bench.vec.outcome", "outcome")
	hist := obs.NewHistogramVec("bench.vec.ns", "route")
	for _, mode := range []struct {
		name    string
		enabled bool
	}{{"off", false}, {"on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			withObsState(b, mode.enabled, func(b *testing.B) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					vec.Inc("hit")
					hist.Observe(int64(i), "engine")
				}
			})
		})
	}
}

// BenchmarkObsOverheadEvents is the wide-event probe: emitting one
// fully-populated SolveEvent per iteration with the ring inactive (one
// atomic bool load — the library default) and active (one ring slot write
// under the mutex). Events are per solve, so this is the whole per-request
// cost cspd adds in PR 8.
func BenchmarkObsOverheadEvents(b *testing.B) {
	ring := obs.NewEventRing(4096)
	ev := obs.SolveEvent{
		TraceID: "req-1", Source: "cspd", Route: "hard", Strategy: "portfolio",
		Cache: obs.CacheMiss, QueueWaitNs: 1200, WallNs: 48_000_000,
		Nodes: 10_000, Backtracks: 4_000, Restarts: 3, Nogoods: 120,
		Winner: "Learn", Verdict: obs.VerdictSat,
	}
	for _, mode := range []struct {
		name   string
		active bool
	}{{"inactive", false}, {"active", true}} {
		b.Run(mode.name, func(b *testing.B) {
			ring.SetActive(mode.active)
			defer ring.SetActive(false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ring.Emit(ev)
			}
		})
	}
}
