// A miniature query planner: containment-based rewriting plus structural
// join planning.
//
// The database-theory side of the paper: conjunctive-query containment
// (Section 2) lets an optimizer drop redundant subgoals; GYO acyclicity and
// Yannakakis evaluation (Section 6) let it pick a semijoin plan for acyclic
// queries instead of a naive join pipeline.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"csdb/internal/cq"
	"csdb/internal/hypergraph"
	"csdb/internal/structure"
)

func main() {
	// A query with a redundant subgoal: the second R(X,Z2) adds nothing.
	verbose := cq.MustParse("Q(X,Y) :- R(X,Z), S(Z,Y), R(X,Z2)")
	minimal := cq.MustParse("Q(X,Y) :- R(X,Z), S(Z,Y)")
	eq, err := cq.Equivalent(verbose, minimal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("containment check: %q ≡ %q : %v\n", verbose, minimal, eq)

	// Structural analysis of the minimal query.
	h, _, err := hypergraph.FromQuery(minimal)
	if err != nil {
		log.Fatal(err)
	}
	acyclic, _ := h.GYO()
	fmt.Printf("query hypergraph acyclic: %v -> plan: Yannakakis semijoin program\n", acyclic)

	// A cyclic query cannot use that plan.
	cyclic := cq.MustParse("Q(X) :- R(X,Y), S(Y,Z), T(Z,X)")
	hc, _, err := hypergraph.FromQuery(cyclic)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cyclic query %q acyclic: %v -> plan: generic join\n", cyclic, hc.IsAcyclic())

	// Execute both plans on a synthetic database and compare. The database
	// is layered with wide fanout but almost all paths dead-end before the
	// last hop — the situation where the semijoin full reducer shines.
	longChain := cq.MustParse("Q(A,E) :- R(A,B), S(B,C), R(C,D), S(D,E)")
	db := syntheticDB(50, 6)
	t0 := time.Now()
	fast, err := hypergraph.Yannakakis(longChain, db)
	if err != nil {
		log.Fatal(err)
	}
	yTime := time.Since(t0)
	t0 = time.Now()
	slow, err := longChain.Evaluate(db)
	if err != nil {
		log.Fatal(err)
	}
	nTime := time.Since(t0)
	fmt.Printf("yannakakis: %d result tuples in %v\n", fast.Len(), yTime.Round(time.Microsecond))
	fmt.Printf("naive join: %d result tuples in %v\n", slow.Len(), nTime.Round(time.Microsecond))
	fmt.Printf("plans agree: %v\n", fast.Equal(slow))

	// The semijoin pass alone shows how many dangling tuples existed.
	reduced, err := hypergraph.SemijoinReduce(longChain, db)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range reduced {
		full, err := cq.AtomRelation(longChain.Body[i], db)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("atom %v: %d tuples, %d after full reduction\n",
			longChain.Body[i], full.Len(), r.Len())
	}
}

// syntheticDB builds a layered database: R edges fan out from layer 0 to 1
// and from layer 2 to 3; S edges connect layer 1 to 2 and layer 3 to 4 —
// but only one S edge survives at the last hop, so almost every partial
// path is dangling. Semijoin reduction prunes them before joining.
func syntheticDB(width, fanout int) *structure.Structure {
	rng := rand.New(rand.NewSource(42))
	voc := structure.MustVocabulary(
		structure.Symbol{Name: "R", Arity: 2},
		structure.Symbol{Name: "S", Arity: 2},
	)
	db := structure.MustNew(voc, 5*width)
	id := func(layer, i int) int { return layer*width + i }
	for i := 0; i < width; i++ {
		for f := 0; f < fanout; f++ {
			db.MustAddTuple("R", id(0, i), id(1, rng.Intn(width)))
			db.MustAddTuple("S", id(1, i), id(2, rng.Intn(width)))
			db.MustAddTuple("R", id(2, i), id(3, rng.Intn(width)))
		}
	}
	db.MustAddTuple("S", id(3, 0), id(4, 0)) // the single surviving last hop
	return db
}
