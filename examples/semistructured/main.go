// Semistructured data: answering regular-path queries through views.
//
// Section 7 of the paper: a web-like edge-labeled graph is visible only
// through materialized views. We compute certain answers via the
// constraint-template reduction (Theorem 7.5) and compare them with what
// the maximal RPQ rewriting (PODS'99) recovers — the rewriting is sound but
// in general weaker than the perfect (certain-answer) rewriting.
package main

import (
	"fmt"
	"log"

	"csdb/internal/automata"
	"csdb/internal/rpq"
)

func main() {
	// Labels: 'c' = cites, 'a' = authored-by (conceptually; single bytes).
	// The query asks for citation chains: c+ (one or more cites edges).
	query := "cc*"

	// Views the mediator exposes: direct citations, and two-hop citations.
	views := []rpq.View{
		{Name: 'd', Def: "c"},  // direct citation
		{Name: 't', Def: "cc"}, // two-step citation
	}

	// What the mediator has materialized (sound views: these pairs are
	// guaranteed, the underlying database may contain more).
	ext := rpq.Extension{
		'd': {{X: "p1", Y: "p2"}, {X: "p2", Y: "p3"}},
		't': {{X: "p3", Y: "p5"}},
	}

	// Certain answers: pairs (x,y) in ans(query, DB) for EVERY database
	// consistent with the views.
	q := automata.MustParseRegex(query)
	tpl, err := rpq.ConstraintTemplate(q, views)
	if err != nil {
		log.Fatal(err)
	}
	answers, err := rpq.CertainAnswers(tpl, ext)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("certain answers of %q through the views:\n", query)
	for _, p := range answers {
		fmt.Printf("  %s -> %s\n", p.X, p.Y)
	}

	// The maximal RPQ rewriting over the view alphabet {d, t}.
	rw, err := rpq.MaximalRewriting(query, views)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmaximal rewriting over {d,t} accepts (up to length 3):\n")
	for _, w := range automata.WordsUpTo([]byte("dt"), 3) {
		if rw.Accepts(w) {
			fmt.Printf("  %q\n", w)
		}
	}

	// Evaluate the rewriting over the extensions; soundness guarantees the
	// result is contained in the certain answers.
	viaRewriting := rpq.EvaluateRewriting(rw, views, ext)
	fmt.Printf("\nanswers recovered by the rewriting:\n")
	certSet := map[rpq.Pair]bool{}
	for _, p := range answers {
		certSet[p] = true
	}
	for _, p := range viaRewriting {
		marker := ""
		if !certSet[p] {
			marker = "  (NOT CERTAIN — soundness violated!)"
		}
		fmt.Printf("  %s -> %s%s\n", p.X, p.Y, marker)
	}
	fmt.Printf("\nrewriting recovered %d of %d certain answers (rewritings are sound, not always perfect — Thm 7.2)\n",
		len(viaRewriting), len(answers))
}
