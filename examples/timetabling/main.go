// Timetabling with bounded treewidth.
//
// Scheduling is one of the paper's motivating CSP applications (Section 1);
// Section 6 shows that instances whose constraint graph has bounded
// treewidth are solvable in polynomial time. Course-conflict graphs are
// often tree-like (departments form sparse clusters), so the decomposition
// DP of Theorem 6.2 is the right solver — this example builds such an
// instance, inspects its width, and compares the DP against plain search.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"csdb/internal/csp"
	"csdb/internal/gen"
	"csdb/internal/treewidth"
)

const slots = 4 // timeslots per day

func main() {
	rng := rand.New(rand.NewSource(7))

	// Conflict graph: clustered departments bridged by a few shared courses
	// — generated as a partial 2-tree so the width bound is known.
	conflicts, order := gen.PartialKTree(rng, 60, 2, 0.15)
	inst := gen.Coloring(conflicts, slots) // conflicting courses need different slots

	// Some courses must be in the morning (slots 0-1): unary restrictions.
	inst.Domains = make([][]int, inst.Vars)
	for v := 0; v < inst.Vars; v += 7 {
		inst.Domains[v] = []int{0, 1}
	}

	dec := treewidth.FromOrdering(conflicts, order)
	fmt.Printf("%d courses, %d conflicts, decomposition width %d (so DP cost ~ n·%d^%d)\n",
		conflicts.N(), conflicts.NumEdges(), dec.Width(), slots, dec.Width()+1)

	t0 := time.Now()
	res, err := treewidth.SolveDecomposed(inst, dec)
	if err != nil {
		log.Fatal(err)
	}
	dpTime := time.Since(t0)
	if !res.Found {
		fmt.Println("no feasible timetable")
		return
	}
	fmt.Printf("decomposition DP: feasible timetable in %v (%d DP nodes)\n",
		dpTime.Round(time.Microsecond), res.Stats.Nodes)

	t0 = time.Now()
	search := csp.Solve(inst, csp.Options{})
	fmt.Printf("MAC search:       feasible=%v in %v (%d search nodes)\n",
		search.Found, time.Since(t0).Round(time.Microsecond), search.Stats.Nodes)

	if !inst.Satisfies(res.Solution) {
		log.Fatal("DP produced an invalid timetable")
	}

	// Print the first few assignments.
	fmt.Println("\nslot assignments (first 14 courses):")
	for v := 0; v < 14; v++ {
		fmt.Printf("  course %2d -> slot %d\n", v, res.Solution[v])
	}

	// Verify no conflict is violated.
	violations := 0
	for _, e := range conflicts.Edges() {
		if res.Solution[e[0]] == res.Solution[e[1]] {
			violations++
		}
	}
	fmt.Printf("\nconflict violations: %d\n", violations)
}
