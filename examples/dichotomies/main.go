// A guided tour of the paper's dichotomies.
//
// Section 3 of the paper presents the two landmark classifications of
// non-uniform CSP(B): Schaefer's theorem for Boolean templates and the
// Hell–Nešetřil theorem for undirected graphs. This example classifies a
// zoo of templates on both sides, runs the matching solver, and finishes
// with Section 4's unifying Datalog view: the canonical 2-Datalog program
// for a template, built mechanically, agreeing with the pebble game.
package main

import (
	"fmt"
	"log"

	"csdb/internal/datalog"
	"csdb/internal/graph"
	"csdb/internal/hcolor"
	"csdb/internal/pebble"
	"csdb/internal/schaefer"
	"csdb/internal/structure"
)

func main() {
	fmt.Println("=== Schaefer's dichotomy (Boolean templates) ===")
	zoo := []struct {
		name string
		tpl  *schaefer.Template
	}{
		{"2-SAT clauses", &schaefer.Template{Rels: []*schaefer.BoolRel{
			schaefer.RelClause(true, true), schaefer.RelClause(true, false), schaefer.RelClause(false, false),
		}}},
		{"Horn clauses", &schaefer.Template{Rels: []*schaefer.BoolRel{
			schaefer.RelClause(false, false, true), schaefer.RelClause(true), schaefer.RelClause(false),
		}}},
		{"linear equations mod 2", &schaefer.Template{Rels: []*schaefer.BoolRel{
			schaefer.RelXor(), schaefer.RelEq(),
		}}},
		{"positive 1-in-3-SAT", &schaefer.Template{Rels: []*schaefer.BoolRel{
			schaefer.RelOneInThree(),
		}}},
		{"not-all-equal 3-SAT", &schaefer.Template{Rels: []*schaefer.BoolRel{
			schaefer.RelNAE3(),
		}}},
	}
	for _, z := range zoo {
		classes := z.tpl.Classify()
		if len(classes) > 0 {
			fmt.Printf("%-24s -> tractable %v\n", z.name, classes)
		} else {
			fmt.Printf("%-24s -> NP-complete (no Schaefer class)\n", z.name)
		}
	}

	// Solve a small instance over the hardest tractable template.
	affine := &schaefer.Template{Rels: []*schaefer.BoolRel{schaefer.RelXor(), schaefer.RelEq()}}
	inst := &schaefer.Instance{Template: affine, NumVars: 4, Cons: []schaefer.Application{
		{Rel: 0, Scope: []int{0, 1}}, // x0 ⊕ x1 = 1
		{Rel: 0, Scope: []int{1, 2}}, // x1 ⊕ x2 = 1
		{Rel: 1, Scope: []int{2, 3}}, // x2 = x3
	}}
	assign, ok, class, err := schaefer.Solve(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("affine system solved by the %v solver: sat=%v assignment=%v\n\n", *class, ok, assign)

	fmt.Println("=== Hell–Nešetřil dichotomy (graph templates) ===")
	loop := graph.New(1)
	loop.AddEdge(0, 0)
	graphs := []struct {
		name string
		h    *graph.Graph
	}{
		{"K2 (2-coloring)", graph.Clique(2)},
		{"C6", graph.Cycle(6)},
		{"K3 (3-coloring)", graph.Clique(3)},
		{"C5", graph.Cycle(5)},
		{"Petersen", graph.Petersen()},
		{"reflexive vertex", loop},
	}
	for _, g := range graphs {
		fmt.Printf("%-20s -> %v\n", g.name, hcolor.Classify(g.h))
	}
	res, err := hcolor.Solve(graph.Petersen(), graph.Clique(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Petersen -> K3 (NP side, by search): exists=%v\n\n", res.Exists)

	fmt.Println("=== Section 4: the canonical Datalog view ===")
	k2 := structure.Clique(2)
	prog, err := datalog.CanonicalProgram(k2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("canonical 2-Datalog program for B = K2: %d rules, width %d\n",
		len(prog.Rules), prog.Width())
	for _, a := range []struct {
		name string
		g    *structure.Structure
	}{
		{"C4", structure.Cycle(4)},
		{"C5", structure.Cycle(5)},
		{"K3", structure.Clique(3)},
	} {
		byProg, err := datalog.GoalTrue(prog, datalog.GraphEDB(a.g))
		if err != nil {
			log.Fatal(err)
		}
		byGame, err := pebble.SpoilerWins(a.g, k2, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s vs K2: canonical program says Spoiler wins = %v, game algorithm agrees = %v\n",
			a.name, byProg, byProg == byGame)
	}
	fmt.Println("\n(with only 2 pebbles the Spoiler cannot catch odd cycles — that needs k=3,")
	fmt.Println(" which is why the paper's non-2-colorability program of Section 4 uses 4 variables)")
}
