// Sudoku as constraint satisfaction.
//
// A classic AI workload from the paper's motivating list (scheduling,
// satisfiability, vision, ...): 81 variables with domain {0..8}, pairwise
// disequality constraints along rows, columns, and boxes, plus unary
// constraints for the given clues. Solved with MAC search; the example also
// shows how much work GAC propagation does before search even starts.
package main

import (
	"fmt"
	"log"
	"strings"

	"csdb/internal/consistency"
	"csdb/internal/csp"
)

// A well-known hard-ish puzzle ('.' = blank).
const puzzle = `
..53.....
8......2.
.7..1.5..
4....53..
.1..7...6
..32...8.
.6.5....9
..4....3.
.....97..
`

func main() {
	inst, err := buildInstance(puzzle)
	if err != nil {
		log.Fatal(err)
	}

	// How far does pure propagation get? (Section 5: consistency makes
	// implied constraints explicit.)
	domains, ok := consistency.GAC(inst)
	if !ok {
		log.Fatal("puzzle is inconsistent")
	}
	fixed := 0
	for _, d := range domains {
		if len(d) == 1 {
			fixed++
		}
	}
	fmt.Printf("after GAC propagation: %d/81 cells decided\n", fixed)

	res := csp.Solve(inst, csp.Options{})
	if !res.Found {
		log.Fatal("no solution")
	}
	fmt.Printf("solved with %d search nodes, %d backtracks, %d prunings\n",
		res.Stats.Nodes, res.Stats.Backtracks, res.Stats.Prunings)
	printGrid(res.Solution)

	// Uniqueness check: a proper sudoku has exactly one solution.
	count := csp.CountSolutions(inst, 2)
	fmt.Printf("solutions: %d (unique = %v)\n", count, count == 1)
}

func buildInstance(p string) (*csp.Instance, error) {
	lines := []string{}
	for _, line := range strings.Split(strings.TrimSpace(p), "\n") {
		line = strings.TrimSpace(line)
		if line != "" {
			lines = append(lines, line)
		}
	}
	if len(lines) != 9 {
		return nil, fmt.Errorf("want 9 rows, got %d", len(lines))
	}
	inst := csp.NewInstance(81, 9)
	neq := csp.NewTable(2)
	for a := 0; a < 9; a++ {
		for b := 0; b < 9; b++ {
			if a != b {
				neq.Add([]int{a, b})
			}
		}
	}
	cell := func(r, c int) int { return r*9 + c }
	addNeq := func(v, w int) {
		inst.MustAddConstraint([]int{v, w}, neq)
	}
	for r := 0; r < 9; r++ {
		for c1 := 0; c1 < 9; c1++ {
			for c2 := c1 + 1; c2 < 9; c2++ {
				addNeq(cell(r, c1), cell(r, c2)) // rows
				addNeq(cell(c1, r), cell(c2, r)) // columns (r as column index)
			}
		}
	}
	for br := 0; br < 3; br++ {
		for bc := 0; bc < 3; bc++ {
			var cells []int
			for r := 0; r < 3; r++ {
				for c := 0; c < 3; c++ {
					cells = append(cells, cell(br*3+r, bc*3+c))
				}
			}
			for i := 0; i < len(cells); i++ {
				for j := i + 1; j < len(cells); j++ {
					addNeq(cells[i], cells[j])
				}
			}
		}
	}
	// Clues as unary constraints.
	for r, line := range lines {
		if len(line) != 9 {
			return nil, fmt.Errorf("row %d has %d cells", r, len(line))
		}
		for c, ch := range line {
			if ch == '.' {
				continue
			}
			if ch < '1' || ch > '9' {
				return nil, fmt.Errorf("bad cell %q", ch)
			}
			t := csp.NewTable(1)
			t.Add([]int{int(ch - '1')})
			inst.MustAddConstraint([]int{cell(r, c)}, t)
		}
	}
	return inst, nil
}

func printGrid(sol []int) {
	for r := 0; r < 9; r++ {
		var b strings.Builder
		for c := 0; c < 9; c++ {
			fmt.Fprintf(&b, "%d", sol[r*9+c]+1)
			if c == 2 || c == 5 {
				b.WriteByte('|')
			}
		}
		fmt.Println(b.String())
		if r == 2 || r == 5 {
			fmt.Println("---+---+---")
		}
	}
}
