// Quickstart: one problem, four views.
//
// The paper's central observation (Section 2) is that a constraint-
// satisfaction problem, a homomorphism problem, a conjunctive-query
// evaluation, and a conjunctive-query containment check are the same thing.
// This example builds a single problem — 3-coloring the Petersen graph —
// and decides it through each view.
package main

import (
	"fmt"
	"log"

	"csdb/internal/core"
	"csdb/internal/cq"
	"csdb/internal/csp"
	"csdb/internal/graph"
	"csdb/internal/hcolor"
	"csdb/internal/structure"
)

func main() {
	petersen := graph.Petersen()

	// View 1: H-coloring / homomorphism. G is 3-colorable iff G -> K3.
	g := hcolor.ToStructure(petersen)
	k3 := structure.Clique(3)
	problem, err := core.FromStructures(g, k3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("strategy:", problem.Explain(core.Options{}))
	res, err := problem.Solve(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("homomorphism view: 3-colorable = %v, coloring = %v\n",
		res.Satisfiable, res.Assignment)

	// View 2: the classic CSP formulation (V, D, C) — variables are
	// vertices, values are colors, constraints are disequalities on edges.
	inst := problem.CSP()
	fmt.Printf("CSP view: %d variables, %d values, %d constraints\n",
		inst.Vars, inst.Dom, len(inst.Constraints))
	direct := csp.Solve(inst, csp.Options{})
	fmt.Printf("CSP view: MAC search found a solution in %d nodes\n", direct.Stats.Nodes)

	// View 3: join evaluation (Proposition 2.1) — the instance is solvable
	// iff the natural join of its constraint relations is nonempty.
	join := csp.JoinSolve(inst)
	fmt.Printf("join view: join nonempty = %v (Prop 2.1 agrees: %v)\n",
		join.Found, join.Found == res.Satisfiable)

	// View 4: Boolean conjunctive query (Proposition 2.3) — φ_G is true in
	// K3 iff G -> K3.
	q, db, err := problem.Query()
	if err != nil {
		log.Fatal(err)
	}
	truth, err := q.True(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query view: φ_G has %d subgoals; φ_G true in K3 = %v\n",
		len(q.Body), truth)

	// And 2-colorability fails, through the containment view: φ_{K2} ⊆ φ_G
	// would mean G -> K2 (Prop 2.3); the Chandra-Merlin check denies it.
	phiG, err := cq.StructureQuery(g)
	if err != nil {
		log.Fatal(err)
	}
	phiK2, err := cq.StructureQuery(structure.Clique(2))
	if err != nil {
		log.Fatal(err)
	}
	contained, err := cq.Contains(phiK2, phiG)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("containment view: φ_K2 ⊆ φ_G = %v, so Petersen is 2-colorable = %v\n",
		contained, contained)
}
