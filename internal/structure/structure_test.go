package structure

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVocabularyValidation(t *testing.T) {
	if _, err := NewVocabulary(Symbol{Name: "", Arity: 1}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := NewVocabulary(Symbol{Name: "R", Arity: 0}); err == nil {
		t.Fatal("zero arity accepted")
	}
	if _, err := NewVocabulary(Symbol{Name: "R", Arity: 2}, Symbol{Name: "R", Arity: 2}); err == nil {
		t.Fatal("duplicate symbol accepted")
	}
	v := MustVocabulary(Symbol{Name: "R", Arity: 2}, Symbol{Name: "S", Arity: 3})
	if a, ok := v.Arity("S"); !ok || a != 3 {
		t.Fatalf("Arity(S) = %d,%v", a, ok)
	}
	if v.Has("T") {
		t.Fatal("phantom symbol")
	}
	if !v.Equal(v.Clone()) {
		t.Fatal("clone not equal")
	}
}

func TestStructureAddTupleValidation(t *testing.T) {
	s := MustNew(GraphVoc(), 3)
	if err := s.AddTuple("F", 0, 1); err == nil {
		t.Fatal("unknown symbol accepted")
	}
	if err := s.AddTuple("E", 0); err == nil {
		t.Fatal("bad arity accepted")
	}
	if err := s.AddTuple("E", 0, 3); err == nil {
		t.Fatal("out-of-domain element accepted")
	}
	if err := s.AddTuple("E", 0, 1); err != nil {
		t.Fatalf("AddTuple: %v", err)
	}
	s.MustAddTuple("E", 0, 1) // duplicate is fine
	if s.Rel("E").Len() != 1 {
		t.Fatalf("dedup failed: %d tuples", s.Rel("E").Len())
	}
	if !s.HasTuple("E", 0, 1) || s.HasTuple("E", 1, 0) {
		t.Fatal("membership wrong")
	}
}

func TestNames(t *testing.T) {
	s := NewGraph(2)
	if err := s.SetNames([]string{"only-one"}); err == nil {
		t.Fatal("wrong-length names accepted")
	}
	if err := s.SetNames([]string{"a", "b"}); err != nil {
		t.Fatalf("SetNames: %v", err)
	}
	if s.Name(1) != "b" {
		t.Fatalf("Name(1) = %q", s.Name(1))
	}
}

func TestIsHomomorphismOnCycles(t *testing.T) {
	// C4 maps onto K2 (it is 2-colorable); C3 does not.
	c4, c3, k2 := Cycle(4), Cycle(3), Clique(2)
	if !IsHomomorphism(c4, k2, []int{0, 1, 0, 1}) {
		t.Fatal("C4 -> K2 alternating map rejected")
	}
	if IsHomomorphism(c4, k2, []int{0, 1, 1, 0}) {
		t.Fatal("non-homomorphism accepted")
	}
	// Exhaustive: no map C3 -> K2 is a homomorphism.
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			for c := 0; c < 2; c++ {
				if IsHomomorphism(c3, k2, []int{a, b, c}) {
					t.Fatalf("C3 -> K2 via %v accepted", []int{a, b, c})
				}
			}
		}
	}
}

func TestIsHomomorphismRejectsBadShapes(t *testing.T) {
	g, k2 := Cycle(4), Clique(2)
	if IsHomomorphism(g, k2, []int{0, 1, 0}) {
		t.Fatal("short map accepted")
	}
	if IsHomomorphism(g, k2, []int{0, 1, 0, 5}) {
		t.Fatal("out-of-range image accepted")
	}
	other := MustNew(MustVocabulary(Symbol{Name: "F", Arity: 2}), 2)
	if IsHomomorphism(g, other, []int{0, 1, 0, 1}) {
		t.Fatal("vocabulary mismatch accepted")
	}
}

func TestIsPartialHomomorphism(t *testing.T) {
	c4, k2 := Cycle(4), Clique(2)
	// Only vertices 0,1 assigned; the edge (0,1) must map to an edge.
	if !IsPartialHomomorphism(c4, k2, []int{0, 1, -1, -1}) {
		t.Fatal("valid partial map rejected")
	}
	if IsPartialHomomorphism(c4, k2, []int{0, 0, -1, -1}) {
		t.Fatal("edge collapsed to loop accepted")
	}
	// Non-adjacent pair may collide.
	if !IsPartialHomomorphism(c4, k2, []int{0, -1, 0, -1}) {
		t.Fatal("valid partial map on non-adjacent pair rejected")
	}
}

func TestSumEncoding(t *testing.T) {
	a, b := Cycle(3), Clique(2)
	sum, err := Sum(a, b)
	if err != nil {
		t.Fatalf("Sum: %v", err)
	}
	if sum.Size() != 5 {
		t.Fatalf("sum domain = %d, want 5", sum.Size())
	}
	if !sum.HasTuple("E_1", 0, 1) {
		t.Fatal("A-edge missing from E_1")
	}
	if !sum.HasTuple("E_2", 3, 4) || sum.HasTuple("E_2", 0, 1) {
		t.Fatal("B-edges not shifted correctly")
	}
	if !sum.HasTuple("D1", 2) || sum.HasTuple("D1", 3) {
		t.Fatal("D1 marker wrong")
	}
	if !sum.HasTuple("D2", 3) || sum.HasTuple("D2", 2) {
		t.Fatal("D2 marker wrong")
	}
	// Mismatched vocabularies are rejected.
	other := MustNew(MustVocabulary(Symbol{Name: "F", Arity: 1}), 1)
	if _, err := Sum(a, other); err == nil {
		t.Fatal("Sum across vocabularies accepted")
	}
}

func TestGaifmanEdges(t *testing.T) {
	voc := MustVocabulary(Symbol{Name: "R", Arity: 3})
	s := MustNew(voc, 5)
	s.MustAddTuple("R", 0, 1, 2)
	s.MustAddTuple("R", 2, 3, 3)
	edges := s.GaifmanEdges()
	want := [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}}
	if len(edges) != len(want) {
		t.Fatalf("edges = %v, want %v", edges, want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("edges[%d] = %v, want %v", i, edges[i], want[i])
		}
	}
}

func TestTuplesContaining(t *testing.T) {
	s := Cycle(3)
	per := s.TuplesContaining()
	// Each vertex of C3 appears in 4 directed edge tuples.
	for v, lst := range per {
		if len(lst) != 4 {
			t.Fatalf("vertex %d appears in %d tuples, want 4", v, len(lst))
		}
	}
}

func TestCliqueAndCycleShapes(t *testing.T) {
	k4 := Clique(4)
	if k4.Rel("E").Len() != 12 {
		t.Fatalf("K4 has %d directed edges, want 12", k4.Rel("E").Len())
	}
	if k4.HasTuple("E", 2, 2) {
		t.Fatal("clique has a loop")
	}
	c5 := Cycle(5)
	if c5.Rel("E").Len() != 10 {
		t.Fatalf("C5 has %d directed edges, want 10", c5.Rel("E").Len())
	}
	p4 := Path(4)
	if p4.Rel("E").Len() != 6 {
		t.Fatalf("P4 has %d directed edges, want 6", p4.Rel("E").Len())
	}
}

// Property: the identity is always a homomorphism from a structure to itself,
// and homomorphisms compose.
func TestHomomorphismCompositionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomGraph(rng, 4, 0.4)
		id := []int{0, 1, 2, 3}
		if !IsHomomorphism(a, a, id) {
			return false
		}
		// A random homomorphic image: collapse under a random map, then the
		// map into the image structure is a homomorphism by construction.
		h := make([]int, a.Size())
		for i := range h {
			h[i] = rng.Intn(3)
		}
		img := NewGraph(3)
		for _, tp := range a.Rel("E").Tuples() {
			img.MustAddTuple("E", h[tp[0]], h[tp[1]])
		}
		return IsHomomorphism(a, img, h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := Cycle(3)
	c := a.Clone()
	c.MustAddTuple("E", 0, 0)
	if a.HasTuple("E", 0, 0) {
		t.Fatal("clone shares relation storage")
	}
}

func randomGraph(rng *rand.Rand, n int, p float64) *Structure {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < p {
				g.MustAddTuple("E", i, j)
			}
		}
	}
	return g
}
