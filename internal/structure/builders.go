package structure

// Builders for the structures that recur throughout the paper's examples:
// graphs as structures with a single binary edge relation, cliques (whose
// CSP is k-colorability, Section 3), cycles, and paths.

// GraphVoc is the vocabulary of digraph structures: one binary symbol E.
func GraphVoc() *Vocabulary {
	return MustVocabulary(Symbol{Name: "E", Arity: 2})
}

// NewGraph creates a structure over GraphVoc with n elements and no edges.
func NewGraph(n int) *Structure {
	return MustNew(GraphVoc(), n)
}

// AddEdge adds the directed edge (u,v) to a graph structure.
func AddEdge(g *Structure, u, v int) {
	g.MustAddTuple("E", u, v)
}

// AddUndirectedEdge adds both (u,v) and (v,u).
func AddUndirectedEdge(g *Structure, u, v int) {
	g.MustAddTuple("E", u, v)
	g.MustAddTuple("E", v, u)
}

// Clique returns K_k as a symmetric loop-free graph structure. CSP(K_k) is
// the k-colorability problem.
func Clique(k int) *Structure {
	g := NewGraph(k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if i != j {
				g.MustAddTuple("E", i, j)
			}
		}
	}
	return g
}

// Cycle returns the undirected n-cycle as a symmetric graph structure.
// Odd cycles are the canonical non-2-colorable inputs of Section 4.
func Cycle(n int) *Structure {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		AddUndirectedEdge(g, i, (i+1)%n)
	}
	return g
}

// Path returns the undirected path with n vertices (n-1 edges).
func Path(n int) *Structure {
	g := NewGraph(n)
	for i := 0; i+1 < n; i++ {
		AddUndirectedEdge(g, i, i+1)
	}
	return g
}
