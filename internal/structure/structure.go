// Package structure implements finite relational vocabularies and finite
// relational structures, the common currency of the paper: a CSP instance, a
// conjunctive query's canonical database, and a graph are all finite
// structures, and constraint satisfaction is exactly the homomorphism
// problem between two of them (Section 2).
//
// Domain elements are the integers 0..N-1; an optional name table maps them
// to human-readable labels. Relations are sets of integer tuples indexed for
// fast membership tests.
package structure

import (
	"fmt"
	"sort"
	"strings"
)

// Symbol is a relation symbol of a relational vocabulary: a name and an arity.
type Symbol struct {
	Name  string
	Arity int
}

// Vocabulary is a finite set of relation symbols with distinct names.
type Vocabulary struct {
	syms []Symbol
	pos  map[string]int
}

// NewVocabulary creates a vocabulary from the given symbols.
func NewVocabulary(syms ...Symbol) (*Vocabulary, error) {
	v := &Vocabulary{pos: make(map[string]int, len(syms))}
	for _, s := range syms {
		if err := v.Add(s); err != nil {
			return nil, err
		}
	}
	return v, nil
}

// MustVocabulary is NewVocabulary but panics on error.
func MustVocabulary(syms ...Symbol) *Vocabulary {
	v, err := NewVocabulary(syms...)
	if err != nil {
		panic(err)
	}
	return v
}

// Add appends a symbol. Names must be unique and arities positive.
func (v *Vocabulary) Add(s Symbol) error {
	if s.Name == "" {
		return fmt.Errorf("structure: empty relation symbol name")
	}
	if s.Arity < 1 {
		return fmt.Errorf("structure: relation symbol %q has arity %d; must be >= 1", s.Name, s.Arity)
	}
	if _, dup := v.pos[s.Name]; dup {
		return fmt.Errorf("structure: duplicate relation symbol %q", s.Name)
	}
	v.pos[s.Name] = len(v.syms)
	v.syms = append(v.syms, s)
	return nil
}

// Symbols returns the symbols in insertion order. Do not modify.
func (v *Vocabulary) Symbols() []Symbol { return v.syms }

// Arity returns the arity of the named symbol and whether it exists.
func (v *Vocabulary) Arity(name string) (int, bool) {
	if i, ok := v.pos[name]; ok {
		return v.syms[i].Arity, true
	}
	return 0, false
}

// Has reports whether the vocabulary contains a symbol with the given name.
func (v *Vocabulary) Has(name string) bool {
	_, ok := v.pos[name]
	return ok
}

// Len returns the number of symbols.
func (v *Vocabulary) Len() int { return len(v.syms) }

// Equal reports whether two vocabularies contain the same symbol set.
func (v *Vocabulary) Equal(w *Vocabulary) bool {
	if v.Len() != w.Len() {
		return false
	}
	for _, s := range v.syms {
		a, ok := w.Arity(s.Name)
		if !ok || a != s.Arity {
			return false
		}
	}
	return true
}

// Clone returns a copy of the vocabulary.
func (v *Vocabulary) Clone() *Vocabulary {
	return MustVocabulary(v.syms...)
}

// Interp is the interpretation of one relation symbol in a structure: a set
// of tuples over the structure's domain. Membership uses an integer-hash
// index (FNV-1a over the values, collisions chained through next and
// verified against stored tuples) so homomorphism checks — which call Has
// once per tuple per candidate map — allocate nothing per lookup.
type Interp struct {
	arity  int
	tuples [][]int
	index  map[uint64]int32 // tuple hash -> most recent tuple id
	next   []int32          // chains earlier same-hash tuples; -1 ends
}

func newInterp(arity int) *Interp {
	return &Interp{arity: arity, index: make(map[uint64]int32)}
}

const (
	interpFNVOffset = 14695981039346656037
	interpFNVPrime  = 1099511628211
)

func interpHash(t []int) uint64 {
	h := uint64(interpFNVOffset)
	for _, v := range t {
		h ^= uint64(v)
		h *= interpFNVPrime
	}
	return h
}

// find returns the id of the stored tuple equal to t, or -1.
func (in *Interp) find(t []int, h uint64) int32 {
	id, ok := in.index[h]
	if !ok {
		return -1
	}
	for id >= 0 {
		stored := in.tuples[id]
		eq := true
		for i, v := range t {
			if stored[i] != v {
				eq = false
				break
			}
		}
		if eq {
			return id
		}
		id = in.next[id]
	}
	return -1
}

// Arity returns the arity of the interpreted symbol.
func (in *Interp) Arity() int { return in.arity }

// Tuples returns the tuple list. Do not modify the returned slices.
func (in *Interp) Tuples() [][]int { return in.tuples }

// Len returns the number of tuples.
func (in *Interp) Len() int { return len(in.tuples) }

// Has reports whether the tuple is in the interpretation.
func (in *Interp) Has(t []int) bool {
	if len(t) != in.arity {
		return false
	}
	return in.find(t, interpHash(t)) >= 0
}

func (in *Interp) add(t []int) bool {
	h := interpHash(t)
	if in.find(t, h) >= 0 {
		return false
	}
	c := make([]int, len(t))
	copy(c, t)
	prev, ok := in.index[h]
	if !ok {
		prev = -1
	}
	in.next = append(in.next, prev)
	in.index[h] = int32(len(in.tuples))
	in.tuples = append(in.tuples, c)
	return true
}

// Structure is a finite relational structure: a domain {0..N-1}, a
// vocabulary, and an interpretation for each relation symbol.
type Structure struct {
	voc   *Vocabulary
	n     int
	names []string // optional element labels; nil means "use indices"
	rels  map[string]*Interp
}

// New creates a structure with domain size n over the given vocabulary, with
// all relations empty.
func New(voc *Vocabulary, n int) (*Structure, error) {
	if n < 0 {
		return nil, fmt.Errorf("structure: negative domain size %d", n)
	}
	s := &Structure{voc: voc.Clone(), n: n, rels: make(map[string]*Interp, voc.Len())}
	for _, sym := range voc.Symbols() {
		s.rels[sym.Name] = newInterp(sym.Arity)
	}
	return s, nil
}

// MustNew is New but panics on error.
func MustNew(voc *Vocabulary, n int) *Structure {
	s, err := New(voc, n)
	if err != nil {
		panic(err)
	}
	return s
}

// Voc returns the structure's vocabulary. Do not modify.
func (s *Structure) Voc() *Vocabulary { return s.voc }

// Size returns the domain size.
func (s *Structure) Size() int { return s.n }

// SetNames attaches human-readable element labels; len(names) must equal the
// domain size.
func (s *Structure) SetNames(names []string) error {
	if len(names) != s.n {
		return fmt.Errorf("structure: %d names for domain of size %d", len(names), s.n)
	}
	s.names = append([]string(nil), names...)
	return nil
}

// Name returns the label of element i (its index rendered as text if no
// names were set).
func (s *Structure) Name(i int) string {
	if s.names != nil && i >= 0 && i < len(s.names) {
		return s.names[i]
	}
	return fmt.Sprintf("%d", i)
}

// AddTuple inserts a tuple into the named relation. It validates the symbol,
// arity, and that every component is in the domain.
func (s *Structure) AddTuple(rel string, t ...int) error {
	in, ok := s.rels[rel]
	if !ok {
		return fmt.Errorf("structure: unknown relation symbol %q", rel)
	}
	if len(t) != in.arity {
		return fmt.Errorf("structure: tuple arity %d for symbol %q of arity %d", len(t), rel, in.arity)
	}
	for _, v := range t {
		if v < 0 || v >= s.n {
			return fmt.Errorf("structure: element %d outside domain [0,%d)", v, s.n)
		}
	}
	in.add(t)
	return nil
}

// MustAddTuple is AddTuple but panics on error.
func (s *Structure) MustAddTuple(rel string, t ...int) {
	if err := s.AddTuple(rel, t...); err != nil {
		panic(err)
	}
}

// HasTuple reports whether the named relation contains the tuple.
func (s *Structure) HasTuple(rel string, t ...int) bool {
	in, ok := s.rels[rel]
	return ok && in.Has(t)
}

// Rel returns the interpretation of the named symbol, or nil if absent.
func (s *Structure) Rel(name string) *Interp { return s.rels[name] }

// NumTuples returns the total number of tuples across all relations.
func (s *Structure) NumTuples() int {
	total := 0
	for _, in := range s.rels {
		total += in.Len()
	}
	return total
}

// Clone returns a deep copy of the structure.
func (s *Structure) Clone() *Structure {
	c := MustNew(s.voc, s.n)
	if s.names != nil {
		c.names = append([]string(nil), s.names...)
	}
	for name, in := range s.rels {
		for _, t := range in.tuples {
			c.rels[name].add(t)
		}
	}
	return c
}

// MaxArity returns the largest arity in the vocabulary (0 if empty).
func (s *Structure) MaxArity() int {
	m := 0
	for _, sym := range s.voc.Symbols() {
		if sym.Arity > m {
			m = sym.Arity
		}
	}
	return m
}

// String renders the structure compactly for debugging.
func (s *Structure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "structure(n=%d)", s.n)
	names := make([]string, 0, len(s.rels))
	for name := range s.rels {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		in := s.rels[name]
		fmt.Fprintf(&b, " %s=%d", name, in.Len())
	}
	return b.String()
}

// IsHomomorphism reports whether h (a total map given as a slice indexed by
// A's elements) is a homomorphism from a to b: every tuple of every relation
// of a maps into the corresponding relation of b. The structures must share
// a vocabulary and len(h) must equal a.Size().
func IsHomomorphism(a, b *Structure, h []int) bool {
	if len(h) != a.n || !a.voc.Equal(b.voc) {
		return false
	}
	for _, v := range h {
		if v < 0 || v >= b.n {
			return false
		}
	}
	img := make([]int, a.MaxArity())
	for name, in := range a.rels {
		bin := b.rels[name]
		for _, t := range in.tuples {
			it := img[:len(t)]
			for i, v := range t {
				it[i] = h[v]
			}
			if !bin.Has(it) {
				return false
			}
		}
	}
	return true
}

// IsPartialHomomorphism reports whether the partial map h (entries of -1
// mean "undefined") violates no tuple of a that is fully inside its domain.
func IsPartialHomomorphism(a, b *Structure, h []int) bool {
	if len(h) != a.n || !a.voc.Equal(b.voc) {
		return false
	}
	img := make([]int, a.MaxArity())
	for name, in := range a.rels {
		bin := b.rels[name]
	tuples:
		for _, t := range in.tuples {
			it := img[:len(t)]
			for i, v := range t {
				if h[v] < 0 {
					continue tuples
				}
				it[i] = h[v]
			}
			if !bin.Has(it) {
				return false
			}
		}
	}
	return true
}

// Sum computes the disjoint-sum encoding A+B of Section 4: a single
// structure over the vocabulary σ1+σ2 whose domain is the disjoint union of
// the two domains, with R1/R2 copies of each relation and unary domain
// markers D1/D2. Elements of a keep their indices; elements of b are shifted
// by a.Size().
func Sum(a, b *Structure) (*Structure, error) {
	if !a.voc.Equal(b.voc) {
		return nil, fmt.Errorf("structure: Sum requires a common vocabulary")
	}
	voc := &Vocabulary{pos: make(map[string]int)}
	for _, sym := range a.voc.Symbols() {
		if err := voc.Add(Symbol{Name: sym.Name + "_1", Arity: sym.Arity}); err != nil {
			return nil, err
		}
		if err := voc.Add(Symbol{Name: sym.Name + "_2", Arity: sym.Arity}); err != nil {
			return nil, err
		}
	}
	if err := voc.Add(Symbol{Name: "D1", Arity: 1}); err != nil {
		return nil, err
	}
	if err := voc.Add(Symbol{Name: "D2", Arity: 1}); err != nil {
		return nil, err
	}
	sum, err := New(voc, a.n+b.n)
	if err != nil {
		return nil, err
	}
	for name, in := range a.rels {
		for _, t := range in.tuples {
			if err := sum.AddTuple(name+"_1", t...); err != nil {
				return nil, err
			}
		}
	}
	shift := a.n
	buf := make([]int, b.MaxArity())
	for name, in := range b.rels {
		for _, t := range in.tuples {
			st := buf[:len(t)]
			for i, v := range t {
				st[i] = v + shift
			}
			if err := sum.AddTuple(name+"_2", st...); err != nil {
				return nil, err
			}
		}
	}
	for i := 0; i < a.n; i++ {
		if err := sum.AddTuple("D1", i); err != nil {
			return nil, err
		}
	}
	for i := 0; i < b.n; i++ {
		if err := sum.AddTuple("D2", i+shift); err != nil {
			return nil, err
		}
	}
	return sum, nil
}

// GaifmanEdges returns the edge set of the Gaifman (primal) graph of the
// structure: {u,v} is an edge iff u != v co-occur in some tuple. Edges are
// returned with u < v, sorted.
func (s *Structure) GaifmanEdges() [][2]int {
	seen := make(map[[2]int]struct{})
	for _, in := range s.rels {
		for _, t := range in.tuples {
			for i := 0; i < len(t); i++ {
				for j := i + 1; j < len(t); j++ {
					u, v := t[i], t[j]
					if u == v {
						continue
					}
					if u > v {
						u, v = v, u
					}
					seen[[2]int{u, v}] = struct{}{}
				}
			}
		}
	}
	edges := make([][2]int, 0, len(seen))
	for e := range seen {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	return edges
}

// TuplesContaining returns, for each element of the domain, the list of
// (relation name, tuple) pairs whose tuple mentions that element. Useful for
// incremental homomorphism checking.
func (s *Structure) TuplesContaining() [][]RelTuple {
	out := make([][]RelTuple, s.n)
	for name, in := range s.rels {
		for _, t := range in.tuples {
			mentioned := make(map[int]struct{}, len(t))
			for _, v := range t {
				mentioned[v] = struct{}{}
			}
			for v := range mentioned {
				out[v] = append(out[v], RelTuple{Rel: name, Tuple: t})
			}
		}
	}
	return out
}

// RelTuple pairs a relation name with one of its tuples.
type RelTuple struct {
	Rel   string
	Tuple []int
}
