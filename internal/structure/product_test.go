package structure

import (
	"math/rand"
	"testing"
)

func TestProductShape(t *testing.T) {
	p, err := Product(Cycle(3), Clique(2))
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 6 {
		t.Fatalf("product size = %d, want 6", p.Size())
	}
	// Edge counts multiply: |E(C3)| * |E(K2)| = 6 * 2 = 12 directed tuples.
	if p.Rel("E").Len() != 12 {
		t.Fatalf("product edges = %d, want 12", p.Rel("E").Len())
	}
	other := MustNew(MustVocabulary(Symbol{Name: "F", Arity: 2}), 2)
	if _, err := Product(Cycle(3), other); err == nil {
		t.Fatal("vocabulary mismatch accepted")
	}
}

func TestProjectionsAreHomomorphisms(t *testing.T) {
	a, b := Cycle(4), Clique(3)
	p, err := Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	toA, toB := Projections(a.Size(), b.Size())
	if !IsHomomorphism(p, a, toA) {
		t.Fatal("projection to A is not a homomorphism")
	}
	if !IsHomomorphism(p, b, toB) {
		t.Fatal("projection to B is not a homomorphism")
	}
}

// The universal property on the homomorphism-existence level:
// hom(C, A×B) iff hom(C, A) and hom(C, B), checked by brute force on small
// random graphs.
func TestProductUniversalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	homExists := func(c, d *Structure) bool {
		if c.Size() == 0 {
			return true
		}
		if d.Size() == 0 {
			return false
		}
		h := make([]int, c.Size())
		var rec func(i int) bool
		rec = func(i int) bool {
			if i == c.Size() {
				return IsHomomorphism(c, d, h)
			}
			for v := 0; v < d.Size(); v++ {
				h[i] = v
				if rec(i + 1) {
					return true
				}
			}
			return false
		}
		return rec(0)
	}
	rand2Graph := func(n int) *Structure {
		g := NewGraph(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Float64() < 0.5 {
					g.MustAddTuple("E", i, j)
				}
			}
		}
		return g
	}
	for trial := 0; trial < 25; trial++ {
		a, b, c := rand2Graph(2+rng.Intn(2)), rand2Graph(2+rng.Intn(2)), rand2Graph(2+rng.Intn(2))
		p, err := Product(a, b)
		if err != nil {
			t.Fatal(err)
		}
		both := homExists(c, a) && homExists(c, b)
		viaProduct := homExists(c, p)
		if both != viaProduct {
			t.Fatalf("trial %d: universal property violated: both=%v product=%v", trial, both, viaProduct)
		}
	}
}
