package structure

import "fmt"

// Product computes the categorical (direct) product A × B of two structures
// over the same vocabulary: the domain is the set of pairs, and a tuple of
// pairs is in a relation iff both projections are. The product is the
// meet in the homomorphism order — hom(C, A×B) iff hom(C, A) and hom(C, B)
// — a basic tool of the homomorphism-based CSP theory the paper builds on.
func Product(a, b *Structure) (*Structure, error) {
	if !a.Voc().Equal(b.Voc()) {
		return nil, fmt.Errorf("structure: Product requires a common vocabulary")
	}
	n := a.Size() * b.Size()
	p, err := New(a.Voc(), n)
	if err != nil {
		return nil, err
	}
	pair := func(x, y int) int { return x*b.Size() + y }
	names := make([]string, n)
	for x := 0; x < a.Size(); x++ {
		for y := 0; y < b.Size(); y++ {
			names[pair(x, y)] = fmt.Sprintf("(%s,%s)", a.Name(x), b.Name(y))
		}
	}
	if err := p.SetNames(names); err != nil {
		return nil, err
	}
	for _, sym := range a.Voc().Symbols() {
		at := a.Rel(sym.Name).Tuples()
		bt := b.Rel(sym.Name).Tuples()
		buf := make([]int, sym.Arity)
		for _, ta := range at {
			for _, tb := range bt {
				for i := range buf {
					buf[i] = pair(ta[i], tb[i])
				}
				if err := p.AddTuple(sym.Name, buf...); err != nil {
					return nil, err
				}
			}
		}
	}
	return p, nil
}

// Projections returns the two projection homomorphisms of a product built
// by Product (domain sizes must match a.Size()*b.Size()).
func Projections(aSize, bSize int) (toA, toB []int) {
	n := aSize * bSize
	toA = make([]int, n)
	toB = make([]int, n)
	for x := 0; x < aSize; x++ {
		for y := 0; y < bSize; y++ {
			toA[x*bSize+y] = x
			toB[x*bSize+y] = y
		}
	}
	return toA, toB
}
