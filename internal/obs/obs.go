// Package obs is the zero-dependency observability layer shared by every hot
// package in the tree: an atomic metrics registry (counters, gauges and
// fixed-bucket log-scale histograms) and a span-style structured tracer with
// a ring-buffered JSON-lines exporter.
//
// The design constraint is that instrumentation must be effectively free
// when observability is off — the solver engine and relational kernel are
// benchmarked hot paths. Two global switches gate everything:
//
//   - SetEnabled governs metrics. Counter/Gauge/Histogram writes no-op
//     behind one atomic bool load when disabled, and every instrumentation
//     site records at call boundaries (per solve, per join, per propagation
//     fixpoint) rather than per node or per row, so the disabled-mode cost
//     is a handful of atomic loads per operator call.
//   - SetTracing governs spans. Span creation returns nil when tracing is
//     off and every Span method is nil-safe, so call sites pay a single
//     atomic load and no allocation.
//
// Both default to off; cmd/cspd turns them on at startup and csolve's
// -trace flag turns tracing on for one solve. The registry and tracer are
// process-global on purpose: metrics are monotonic totals in the expvar
// tradition, and attribution of concurrent work is done by trace IDs, not
// by registry partitioning.
package obs

import "sync/atomic"

var enabled atomic.Bool

// Enabled reports whether metric recording is on. Instrumentation sites with
// non-trivial argument computation should guard on it; the metric types also
// check it internally so a bare Counter.Add is safe either way.
func Enabled() bool { return enabled.Load() }

// SetEnabled turns metric recording on or off. Safe for concurrent use.
func SetEnabled(v bool) { enabled.Store(v) }
