package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCounterVecBasics(t *testing.T) {
	withEnabled(t, func() {
		r := NewRegistry()
		v := r.CounterVec("req.total", "route", "status")
		v.Inc("tree", "ok")
		v.Add(2, "tree", "ok")
		v.Inc("hard", "error")
		if got := v.Load("tree", "ok"); got != 3 {
			t.Fatalf(`Load("tree","ok") = %d, want 3`, got)
		}
		if got := v.Load("hard", "error"); got != 1 {
			t.Fatalf(`Load("hard","error") = %d, want 1`, got)
		}
		if got := v.Load("absent", "series"); got != 0 {
			t.Fatalf("absent series = %d, want 0", got)
		}
		if r.CounterVec("req.total", "route", "status") != v {
			t.Fatal("CounterVec not idempotent per name")
		}
	})
}

func TestVecDisabledNoops(t *testing.T) {
	SetEnabled(false)
	r := NewRegistry()
	v := r.CounterVec("c", "l")
	v.Inc("x")
	v.Add(5, "x")
	if got := v.Load("x"); got != 0 {
		t.Fatalf("disabled counter vec recorded %d", got)
	}
	if len(v.series) != 0 {
		t.Fatalf("disabled counter vec created %d series", len(v.series))
	}
	h := r.HistogramVec("h", "l")
	h.Observe(10, "x")
	if h.Series("x") != nil {
		t.Fatal("disabled histogram vec created a series")
	}
	var nilC *CounterVec
	nilC.Inc("x") // must not panic
	var nilH *HistogramVec
	nilH.Observe(1, "x") // must not panic
}

func TestHistogramVecObserve(t *testing.T) {
	withEnabled(t, func() {
		r := NewRegistry()
		v := r.HistogramVec("lat.ns", "route")
		for _, n := range []int64{1, 2, 1000} {
			v.Observe(n, "tree")
		}
		v.Observe(7, "hard")
		h := v.Series("tree")
		if h == nil || h.Count() != 3 || h.Sum() != 1003 {
			t.Fatalf("tree series = %+v", h)
		}
		if h := v.Series("hard"); h == nil || h.Count() != 1 {
			t.Fatalf("hard series = %+v", h)
		}
	})
}

// TestVecCardinalityCap pins the overflow behavior: past maxSeries distinct
// label combinations, new combinations collapse onto the _overflow series
// instead of growing the map.
func TestVecCardinalityCap(t *testing.T) {
	withEnabled(t, func() {
		r := NewRegistry()
		v := r.CounterVec("runaway", "id")
		for i := 0; i < maxSeries+50; i++ {
			v.Inc(fmt.Sprintf("id-%d", i))
		}
		v.mu.RLock()
		n := len(v.series)
		v.mu.RUnlock()
		// maxSeries legitimate series plus the single overflow series.
		if n != maxSeries+1 {
			t.Fatalf("series count = %d, want %d", n, maxSeries+1)
		}
		if got := v.Load(overflowValue); got != 50 {
			t.Fatalf("overflow series = %d, want 50", got)
		}
		// Existing series keep recording normally at the cap.
		v.Inc("id-0")
		if got := v.Load("id-0"); got != 2 {
			t.Fatalf("pre-cap series after cap = %d, want 2", got)
		}
	})
}

func TestSnapshotIncludesLabeledSeries(t *testing.T) {
	withEnabled(t, func() {
		r := NewRegistry()
		r.CounterVec("req", "route", "status").Inc("tree", "ok")
		r.HistogramVec("lat", "route").Observe(100, "tree")
		snap := r.Snapshot()
		if got, ok := snap[`req{route="tree",status="ok"}`].(int64); !ok || got != 1 {
			t.Fatalf(`snapshot labeled counter = %v (keys %v)`, snap[`req{route="tree",status="ok"}`], keys(snap))
		}
		hs, ok := snap[`lat{route="tree"}`].(HistogramSnapshot)
		if !ok || hs.Count != 1 {
			t.Fatalf("snapshot labeled histogram = %#v", snap[`lat{route="tree"}`])
		}
	})
}

func keys(m map[string]any) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestVecConcurrent exercises vector recording under the race detector.
func TestVecConcurrent(t *testing.T) {
	withEnabled(t, func() {
		r := NewRegistry()
		v := r.CounterVec("c", "worker")
		h := r.HistogramVec("h", "worker")
		labels := []string{"a", "b", "c", "d"}
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				l := labels[w%len(labels)]
				for i := 0; i < 1000; i++ {
					v.Inc(l)
					h.Observe(int64(i), l)
				}
			}(w)
		}
		wg.Wait()
		var total int64
		for _, l := range labels {
			total += v.Load(l)
		}
		if total != 8000 {
			t.Fatalf("counter vec total = %d, want 8000", total)
		}
	})
}

func TestSeriesID(t *testing.T) {
	got := SeriesID("m", []string{"a", "b"}, []string{"x", "y"})
	if got != `m{a="x",b="y"}` {
		t.Fatalf("SeriesID = %q", got)
	}
	if got := SeriesID("m", nil, nil); got != "m{}" {
		t.Fatalf("SeriesID no labels = %q", got)
	}
	// Short value slices render missing values as empty strings rather than
	// panicking — a call-site bug stays visible in the exposition.
	if got := SeriesID("m", []string{"a", "b"}, []string{"x"}); !strings.Contains(got, `b=""`) {
		t.Fatalf("SeriesID short values = %q", got)
	}
}
