package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// Wide events: one canonical record per solve, in the
// everything-about-this-request-in-one-row discipline of production serving
// stacks. Where the span ring answers "what happened inside this solve" and
// the metrics registry answers "how is the fleet doing", the wide event is
// the join key between them — a single JSONL line carrying the request's
// trace ID (shared with the span ring), how it was routed, what the serving
// layers did with it (cache outcome, queue wait, shed), what the engine
// spent, and the verdict.
//
// Events follow the tracer's cost model: emission is gated by one atomic
// bool load when the ring is inactive, and active emission is one ring slot
// write under a mutex — events are per solve, never per node. Completed
// events land in a fixed-size ring drained by cspd's /events endpoint (and
// csolve's -events flag); an optional sink additionally streams every event
// as it is emitted, which is what cspd's -events flag uses so a crash loses
// at most the last unflushed line.

// Verdict values of a SolveEvent.
const (
	VerdictSat     = "sat"
	VerdictUnsat   = "unsat"
	VerdictUnknown = "unknown" // aborted: timeout, cancellation, node limit
	VerdictShed    = "shed"    // rejected by admission control
	VerdictError   = "error"   // request never reached a solver verdict
)

// Cache outcomes of a SolveEvent.
const (
	CacheHit      = "hit"      // replayed from the canonical result cache
	CacheMiss     = "miss"     // this request ran the engine
	CacheFollower = "follower" // collapsed onto another request's flight
	CacheNone     = ""         // no caching layer in front (csolve)
)

// SolveEvent is the canonical wide event: everything the serving stack and
// the engine know about one solve, in one record.
type SolveEvent struct {
	// TsNs is the event's completion timestamp (UnixNano).
	TsNs int64 `json:"ts_ns"`
	// TraceID cross-links the event to the span ring: the root span of the
	// same request carries the identical trace_id.
	TraceID string `json:"trace_id"`
	// Source is the emitting binary: "cspd" or "csolve".
	Source string `json:"source"`
	// Route is how the solve was routed: a dispatch class (tree, schaefer,
	// acyclic, width, hard) for auto-routed solves, otherwise the engine
	// lane that ran ("portfolio", "parallel", "mac", ...).
	Route string `json:"route,omitempty"`
	// Strategy is the requested strategy parameter (cspd) or engine mode
	// (csolve); unlike Route it names what was asked for, not what ran.
	Strategy string `json:"strategy,omitempty"`
	// Cache is the serving-layer outcome: hit, miss, follower, or empty when
	// no cache fronted the solve.
	Cache string `json:"cache,omitempty"`
	// QueueWaitNs is the time spent waiting for an admission slot (leaders
	// only; cache hits and followers never queue).
	QueueWaitNs int64 `json:"queue_wait_ns,omitempty"`
	// WallNs is the engine wall clock (0 for cache hits and shed requests).
	WallNs int64 `json:"wall_ns,omitempty"`
	// Engine effort counters, from csp.Stats.
	Nodes      int64 `json:"nodes,omitempty"`
	Backtracks int64 `json:"backtracks,omitempty"`
	Restarts   int64 `json:"restarts,omitempty"`
	Nogoods    int64 `json:"nogoods,omitempty"`
	// Winner is the portfolio's winning lane, when a portfolio ran.
	Winner string `json:"winner,omitempty"`
	// Verdict is the outcome class: sat, unsat, unknown, shed, error.
	Verdict string `json:"verdict"`
	// Cause carries the shed/error detail (admission queue full, parse
	// failure, bad parameter, ...); empty on the happy paths.
	Cause string `json:"cause,omitempty"`
}

// EventRing owns the completed-event ring buffer and the optional streaming
// sink. Same shape as the span Tracer on purpose: one atomic activity bit,
// drain-or-lose ring, dropped counter.
type EventRing struct {
	active  atomic.Bool
	dropped atomic.Int64

	mu   sync.Mutex
	buf  []SolveEvent
	next int
	full bool
	sink *bufio.Writer
}

// NewEventRing returns a ring holding up to capacity events; older events
// are overwritten once it is full (and counted in Dropped).
func NewEventRing(capacity int) *EventRing {
	if capacity < 1 {
		capacity = 1
	}
	return &EventRing{buf: make([]SolveEvent, capacity)}
}

// defaultEventCap bounds the default ring: wide events are per solve (not
// per span), so 4096 covers minutes of heavy traffic between drains.
const defaultEventCap = 4096

var defaultEvents = NewEventRing(defaultEventCap)

// DefaultEvents returns the process-wide event ring.
func DefaultEvents() *EventRing { return defaultEvents }

// SetEvents turns wide-event recording on the default ring on or off.
func SetEvents(v bool) { defaultEvents.SetActive(v) }

// EventsActive reports whether the default ring is recording.
func EventsActive() bool { return defaultEvents.Active() }

// Emit records ev on the default ring.
func Emit(ev SolveEvent) { defaultEvents.Emit(ev) }

// SetActive turns event recording on or off.
func (r *EventRing) SetActive(v bool) { r.active.Store(v) }

// Active reports whether the ring is recording.
func (r *EventRing) Active() bool { return r.active.Load() }

// Dropped returns the number of events overwritten before being drained.
func (r *EventRing) Dropped() int64 { return r.dropped.Load() }

// SetSink attaches a writer that additionally receives every emitted event
// as one compact JSON line, independent of ring drains. A nil writer
// detaches the sink (flushing first). The ring serializes sink writes under
// its mutex.
func (r *EventRing) SetSink(w io.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sink != nil {
		r.sink.Flush()
	}
	if w == nil {
		r.sink = nil
		return
	}
	r.sink = bufio.NewWriter(w)
}

// FlushSink flushes any buffered sink bytes (a no-op without a sink).
func (r *EventRing) FlushSink() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sink != nil {
		r.sink.Flush()
	}
}

// Emit commits one event to the ring (and the sink, when attached). No-op
// while inactive, at the cost of one atomic load: Emit itself is small
// enough to inline, and the commit slow path is a separate method so the
// sink encoder's &ev escape cannot force a heap copy of the argument on the
// inactive path.
func (r *EventRing) Emit(ev SolveEvent) {
	if r == nil || !r.active.Load() {
		return
	}
	r.commit(ev)
}

func (r *EventRing) commit(ev SolveEvent) {
	r.mu.Lock()
	if r.full {
		r.dropped.Add(1)
	}
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	if r.sink != nil {
		enc := json.NewEncoder(r.sink)
		_ = enc.Encode(&ev)
	}
	r.mu.Unlock()
}

// Drain returns the buffered events in emission order and clears the ring.
func (r *EventRing) Drain() []SolveEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []SolveEvent
	if r.full {
		out = make([]SolveEvent, 0, len(r.buf))
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf[:r.next]...)
	}
	for i := range r.buf {
		r.buf[i] = SolveEvent{}
	}
	r.next = 0
	r.full = false
	return out
}

// WriteEventsJSONL writes one event per line as compact JSON.
func WriteEventsJSONL(w io.Writer, events []SolveEvent) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}
