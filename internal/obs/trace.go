package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Structured tracing: spans with a name, start/end timestamps, attributes,
// a process-unique ID and a parent ID. Completed spans land in a fixed-size
// ring buffer; the exporter drains the ring as JSON lines (one span per
// line), which is what cmd/cspd's /trace endpoint and csolve's -trace flag
// serve.
//
// Spans deliberately do not try to be OpenTelemetry: there is no sampling,
// no propagation format, and attribute values are int64 or string only. The
// point is to record solver search trees, join-plan decisions, GAC revision
// waves and Yannakakis passes with parent-correct nesting at near-zero cost.

// Attr is one span attribute. Exactly one of Int/Str is meaningful; Str
// wins when nonempty.
type Attr struct {
	Key string `json:"k"`
	Int int64  `json:"v,omitempty"`
	Str string `json:"s,omitempty"`
}

// SpanRecord is the exported (completed) form of a span.
type SpanRecord struct {
	TraceID string `json:"trace_id,omitempty"`
	ID      uint64 `json:"id"`
	Parent  uint64 `json:"parent,omitempty"`
	Name    string `json:"name"`
	StartNs int64  `json:"start_ns"`
	EndNs   int64  `json:"end_ns"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// Span is an in-flight span. A nil *Span is a valid no-op span: every method
// checks the receiver, so instrumentation sites never branch on tracing
// state beyond the Start call that produced the span.
type Span struct {
	tr  *Tracer
	rec SpanRecord
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.rec.Attrs = append(s.rec.Attrs, Attr{Key: key, Int: v})
}

// SetStr attaches a string attribute.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.rec.Attrs = append(s.rec.Attrs, Attr{Key: key, Str: v})
}

// ID returns the span's process-unique id (0 for a nil span).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.rec.ID
}

// TraceID returns the trace the span belongs to ("" for a nil span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.rec.TraceID
}

// End stamps the span's end time and commits it to the tracer's ring.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.rec.EndNs = time.Now().UnixNano()
	s.tr.push(s.rec)
}

// Tracer owns the span id allocator and the completed-span ring buffer.
type Tracer struct {
	active  atomic.Bool
	ids     atomic.Uint64
	dropped atomic.Int64

	mu   sync.Mutex
	buf  []SpanRecord
	next int  // ring write position
	full bool // the ring has wrapped at least once
}

// NewTracer returns a tracer whose ring holds up to capacity completed
// spans; older spans are overwritten once the ring is full (and counted in
// Dropped).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{buf: make([]SpanRecord, capacity)}
}

// defaultTracerCap bounds the default ring: 16384 spans ≈ a few MB, enough
// for a full MAC solve trace of a mid-size instance.
const defaultTracerCap = 16384

var defaultTracer = NewTracer(defaultTracerCap)

// DefaultTracer returns the process-wide tracer.
func DefaultTracer() *Tracer { return defaultTracer }

// SetTracing turns span recording on the default tracer on or off.
func SetTracing(v bool) { defaultTracer.SetActive(v) }

// Tracing reports whether the default tracer is recording.
func Tracing() bool { return defaultTracer.Active() }

// SetActive turns span recording on or off.
func (t *Tracer) SetActive(v bool) { t.active.Store(v) }

// Active reports whether the tracer is recording.
func (t *Tracer) Active() bool { return t.active.Load() }

// Dropped returns the number of spans overwritten before being drained.
func (t *Tracer) Dropped() int64 { return t.dropped.Load() }

// StartRoot begins a new root span under the given trace id. Returns nil
// (the no-op span) when the tracer is inactive.
func (t *Tracer) StartRoot(name, traceID string) *Span {
	if t == nil || !t.active.Load() {
		return nil
	}
	return &Span{tr: t, rec: SpanRecord{
		TraceID: traceID,
		ID:      t.ids.Add(1),
		Name:    name,
		StartNs: time.Now().UnixNano(),
	}}
}

// StartChild begins a span under parent, inheriting its trace id. A nil
// parent yields a root span with no trace id. Returns nil when inactive.
func (t *Tracer) StartChild(parent *Span, name string) *Span {
	if t == nil || !t.active.Load() {
		return nil
	}
	sp := &Span{tr: t, rec: SpanRecord{
		ID:      t.ids.Add(1),
		Name:    name,
		StartNs: time.Now().UnixNano(),
	}}
	if parent != nil {
		sp.rec.TraceID = parent.rec.TraceID
		sp.rec.Parent = parent.rec.ID
	}
	return sp
}

// push commits a completed span to the ring.
func (t *Tracer) push(rec SpanRecord) {
	t.mu.Lock()
	if t.full {
		t.dropped.Add(1)
	}
	t.buf[t.next] = rec
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Drain returns the buffered spans in completion order and clears the ring.
func (t *Tracer) Drain() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []SpanRecord
	if t.full {
		out = make([]SpanRecord, 0, len(t.buf))
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf[:t.next]...)
	}
	// Clear so drained spans are not retained by the ring.
	for i := range t.buf {
		t.buf[i] = SpanRecord{}
	}
	t.next = 0
	t.full = false
	return out
}

// StartRoot begins a root span on the default tracer.
func StartRoot(name, traceID string) *Span { return defaultTracer.StartRoot(name, traceID) }

// StartChild begins a child span on the default tracer.
func StartChild(parent *Span, name string) *Span { return defaultTracer.StartChild(parent, name) }

// spanKey carries the current span through a context.
type spanKey struct{}

// WithSpan returns a context carrying s as the current span. A nil span
// returns ctx unchanged.
func WithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFrom returns the current span of the context, or nil. A nil context
// is accepted (some kernel paths pass nil for "no cancellation").
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan begins a child of ctx's current span on the default tracer and
// returns a context carrying the new span. When tracing is off it returns
// ctx unchanged and a nil span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	sp := defaultTracer.StartChild(SpanFrom(ctx), name)
	return WithSpan(ctx, sp), sp
}

// WriteJSONL writes one span per line as compact JSON.
func WriteJSONL(w io.Writer, spans []SpanRecord) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range spans {
		if err := enc.Encode(&spans[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}
