package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format exposition (version 0.0.4) for the registry. The
// mapping from the repo's metric model:
//
//   - Metric names are sanitized to the Prometheus charset: every character
//     outside [a-zA-Z0-9_:] becomes '_', so "cspd.solve.requests" exports as
//     cspd_solve_requests. Counters additionally get the conventional
//     _total suffix.
//   - Counters and gauges export one sample each; labeled vectors export one
//     sample per series with the label set rendered in {}.
//   - Histograms export the classic trio: cumulative <name>_bucket samples
//     with le boundaries (the log₂ buckets' inclusive upper bounds, plus
//     +Inf), <name>_sum and <name>_count.
//   - Output is deterministic: families sort by exported name, series sort
//     by label values, HELP/TYPE precede each family exactly once.
//
// Label values are escaped per the format (backslash, double-quote and
// newline); HELP text likewise (backslash and newline).

// promName sanitizes a dotted registry name into the Prometheus charset.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscapeLabel escapes a label value for the text format.
func promEscapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// promEscapeHelp escapes HELP text for the text format.
func promEscapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// promLabels renders {k1="v1",k2="v2"} (empty string for no labels). extra
// appends one more pair (used for le).
func promLabels(names, values []string, extraKey, extraVal string) string {
	if len(names) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		b.WriteString(promName(n))
		b.WriteString(`="`)
		b.WriteString(promEscapeLabel(v))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(extraVal)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// promFamily is one metric family prepared for deterministic rendering.
type promFamily struct {
	name   string // exported (sanitized, suffixed) name
	help   string
	typ    string // counter | gauge | histogram
	render func(w *bufio.Writer)
}

// writeHistogramSamples renders one histogram series as cumulative buckets
// plus sum and count.
func writeHistogramSamples(w *bufio.Writer, name string, labelNames, labelValues []string, h *Histogram) {
	snap := h.snapshot()
	var cum int64
	for _, b := range snap.Bounds {
		cum += b.Count
		w.WriteString(name)
		w.WriteString("_bucket")
		w.WriteString(promLabels(labelNames, labelValues, "le", strconv.FormatInt(b.Le, 10)))
		w.WriteByte(' ')
		w.WriteString(strconv.FormatInt(cum, 10))
		w.WriteByte('\n')
	}
	w.WriteString(name)
	w.WriteString("_bucket")
	w.WriteString(promLabels(labelNames, labelValues, "le", "+Inf"))
	w.WriteByte(' ')
	w.WriteString(strconv.FormatInt(snap.Count, 10))
	w.WriteByte('\n')
	w.WriteString(name)
	w.WriteString("_sum")
	w.WriteString(promLabels(labelNames, labelValues, "", ""))
	w.WriteByte(' ')
	w.WriteString(strconv.FormatInt(snap.Sum, 10))
	w.WriteByte('\n')
	w.WriteString(name)
	w.WriteString("_count")
	w.WriteString(promLabels(labelNames, labelValues, "", ""))
	w.WriteByte(' ')
	w.WriteString(strconv.FormatInt(snap.Count, 10))
	w.WriteByte('\n')
}

// WritePrometheus writes every metric in the registry in the Prometheus
// text exposition format, deterministically ordered.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	var fams []promFamily
	for name, c := range r.counters {
		name, c := name, c
		fams = append(fams, promFamily{
			name: promName(name) + "_total",
			help: "csdb counter " + name,
			typ:  "counter",
			render: func(bw *bufio.Writer) {
				bw.WriteString(promName(name) + "_total ")
				bw.WriteString(strconv.FormatInt(c.Load(), 10))
				bw.WriteByte('\n')
			},
		})
	}
	for name, g := range r.gauges {
		name, g := name, g
		fams = append(fams, promFamily{
			name: promName(name),
			help: "csdb gauge " + name,
			typ:  "gauge",
			render: func(bw *bufio.Writer) {
				bw.WriteString(promName(name) + " ")
				bw.WriteString(strconv.FormatInt(g.Load(), 10))
				bw.WriteByte('\n')
			},
		})
	}
	for name, h := range r.hists {
		name, h := name, h
		fams = append(fams, promFamily{
			name: promName(name),
			help: "csdb histogram " + name,
			typ:  "histogram",
			render: func(bw *bufio.Writer) {
				writeHistogramSamples(bw, promName(name), nil, nil, h)
			},
		})
	}
	for _, v := range r.counterVecs {
		v := v
		fams = append(fams, promFamily{
			name: promName(v.name) + "_total",
			help: "csdb counter " + v.name,
			typ:  "counter",
			render: func(bw *bufio.Writer) {
				v.mu.RLock()
				defer v.mu.RUnlock()
				for _, k := range v.sortedKeys() {
					bw.WriteString(promName(v.name) + "_total")
					bw.WriteString(promLabels(v.labels, v.series[k], "", ""))
					bw.WriteByte(' ')
					bw.WriteString(strconv.FormatInt(v.counters[k].Load(), 10))
					bw.WriteByte('\n')
				}
			},
		})
	}
	for _, v := range r.histVecs {
		v := v
		fams = append(fams, promFamily{
			name: promName(v.name),
			help: "csdb histogram " + v.name,
			typ:  "histogram",
			render: func(bw *bufio.Writer) {
				v.mu.RLock()
				defer v.mu.RUnlock()
				for _, k := range v.sortedKeys() {
					writeHistogramSamples(bw, promName(v.name), v.labels, v.series[k], v.hists[k])
				}
			},
		})
	}
	r.mu.Unlock()

	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(promEscapeHelp(f.help))
		bw.WriteByte('\n')
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.typ)
		bw.WriteByte('\n')
		f.render(bw)
	}
	return bw.Flush()
}
