package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestSpanParenting(t *testing.T) {
	tr := NewTracer(64)
	tr.SetActive(true)

	root := tr.StartRoot("solve", "req-1")
	child := tr.StartChild(root, "search")
	grand := tr.StartChild(child, "propagate")
	grand.SetInt("revisions", 7)
	grand.SetStr("phase", "root")
	grand.End()
	child.End()
	root.End()

	spans := tr.Drain()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	// Completion order: grand, child, root.
	g, c, r := spans[0], spans[1], spans[2]
	if g.Parent != c.ID || c.Parent != r.ID || r.Parent != 0 {
		t.Fatalf("parent chain wrong: %+v", spans)
	}
	for _, s := range spans {
		if s.TraceID != "req-1" {
			t.Fatalf("trace id not inherited: %+v", s)
		}
		if s.EndNs < s.StartNs {
			t.Fatalf("span ends before it starts: %+v", s)
		}
	}
	if len(g.Attrs) != 2 || g.Attrs[0].Key != "revisions" || g.Attrs[0].Int != 7 ||
		g.Attrs[1].Str != "root" {
		t.Fatalf("attrs wrong: %+v", g.Attrs)
	}
	// Drain cleared the ring.
	if got := tr.Drain(); len(got) != 0 {
		t.Fatalf("ring not cleared: %d spans", len(got))
	}
}

func TestInactiveTracerIsFree(t *testing.T) {
	tr := NewTracer(4)
	sp := tr.StartRoot("x", "t")
	if sp != nil {
		t.Fatal("inactive tracer returned a live span")
	}
	// All methods must be nil-safe.
	sp.SetInt("a", 1)
	sp.SetStr("b", "c")
	sp.End()
	if sp.ID() != 0 || sp.TraceID() != "" {
		t.Fatal("nil span has identity")
	}
	if n := testing.AllocsPerRun(100, func() {
		s := tr.StartChild(nil, "y")
		s.End()
	}); n != 0 {
		t.Fatalf("inactive span path allocates %v per op", n)
	}
}

func TestRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	tr.SetActive(true)
	for i := 0; i < 10; i++ {
		sp := tr.StartRoot("s", "t")
		sp.SetInt("i", int64(i))
		sp.End()
	}
	spans := tr.Drain()
	if len(spans) != 4 {
		t.Fatalf("ring kept %d spans, want 4", len(spans))
	}
	// The survivors are the newest four, oldest first.
	for j, s := range spans {
		if want := int64(6 + j); s.Attrs[0].Int != want {
			t.Fatalf("span %d has i=%d, want %d", j, s.Attrs[0].Int, want)
		}
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
}

func TestContextPropagation(t *testing.T) {
	prev := Tracing()
	SetTracing(true)
	defer SetTracing(prev)
	defer defaultTracer.Drain()

	ctx := context.Background()
	if SpanFrom(ctx) != nil {
		t.Fatal("fresh context has a span")
	}
	var nilCtx context.Context
	if SpanFrom(nilCtx) != nil {
		t.Fatal("nil context has a span")
	}

	root := StartRoot("outer", "trace-9")
	ctx = WithSpan(ctx, root)
	ctx2, child := StartSpan(ctx, "inner")
	if child == nil || child.TraceID() != "trace-9" {
		t.Fatalf("child did not inherit trace: %+v", child)
	}
	if SpanFrom(ctx2) != child {
		t.Fatal("StartSpan did not install the child span")
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewTracer(8)
	tr.SetActive(true)
	root := tr.StartRoot("a", "tid")
	tr.StartChild(root, "b").End()
	root.End()

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr.Drain()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	for _, line := range lines {
		var rec SpanRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line not valid JSON: %v: %s", err, line)
		}
		if rec.TraceID != "tid" {
			t.Fatalf("trace id lost in export: %s", line)
		}
	}
}
