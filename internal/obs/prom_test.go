package obs

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// promSample is one parsed exposition sample.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parsePromText is a strict stdlib parser for the subset of the Prometheus
// text format the writer emits. It validates structural invariants as it
// goes: every sample belongs to a family announced by HELP+TYPE (in that
// order), names match the charset, label syntax is exact, histogram
// cumulative buckets are non-decreasing and end at +Inf == _count.
func parsePromText(t *testing.T, text string) (families map[string]string, samples []promSample) {
	t.Helper()
	families = make(map[string]string) // family name -> type
	helpSeen := make(map[string]bool)
	validName := func(s string) bool {
		for i := 0; i < len(s); i++ {
			c := s[i]
			ok := c == '_' || c == ':' ||
				(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
				(c >= '0' && c <= '9' && i > 0)
			if !ok {
				return false
			}
		}
		return len(s) > 0
	}
	lines := strings.Split(text, "\n")
	for ln, line := range lines {
		if line == "" {
			if ln != len(lines)-1 {
				t.Fatalf("line %d: unexpected blank line", ln+1)
			}
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !validName(name) {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			if helpSeen[name] {
				t.Fatalf("line %d: duplicate HELP for %s", ln+1, name)
			}
			helpSeen[name] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || !validName(name) {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("line %d: unknown type %q", ln+1, typ)
			}
			if !helpSeen[name] {
				t.Fatalf("line %d: TYPE %s before its HELP", ln+1, name)
			}
			if _, dup := families[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			families[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment %q", ln+1, line)
		}
		// Sample line: name[{labels}] value
		s := promSample{labels: make(map[string]string)}
		rest := line
		brace := strings.IndexByte(rest, '{')
		if brace >= 0 {
			s.name = rest[:brace]
			end := strings.LastIndexByte(rest, '}')
			if end < brace {
				t.Fatalf("line %d: unbalanced braces: %q", ln+1, line)
			}
			labelText := rest[brace+1 : end]
			rest = strings.TrimSpace(rest[end+1:])
			for labelText != "" {
				eq := strings.IndexByte(labelText, '=')
				if eq < 0 || len(labelText) < eq+2 || labelText[eq+1] != '"' {
					t.Fatalf("line %d: malformed label in %q", ln+1, line)
				}
				key := labelText[:eq]
				if !validName(key) {
					t.Fatalf("line %d: bad label name %q", ln+1, key)
				}
				// Scan the quoted value honoring escapes.
				var val strings.Builder
				i := eq + 2
				for ; i < len(labelText); i++ {
					c := labelText[i]
					if c == '\\' {
						i++
						if i >= len(labelText) {
							t.Fatalf("line %d: dangling escape", ln+1)
						}
						switch labelText[i] {
						case '\\':
							val.WriteByte('\\')
						case '"':
							val.WriteByte('"')
						case 'n':
							val.WriteByte('\n')
						default:
							t.Fatalf("line %d: bad escape \\%c", ln+1, labelText[i])
						}
						continue
					}
					if c == '"' {
						break
					}
					val.WriteByte(c)
				}
				if i >= len(labelText) || labelText[i] != '"' {
					t.Fatalf("line %d: unterminated label value in %q", ln+1, line)
				}
				s.labels[key] = val.String()
				labelText = labelText[i+1:]
				labelText = strings.TrimPrefix(labelText, ",")
			}
		} else {
			name, v, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: malformed sample %q", ln+1, line)
			}
			s.name, rest = name, v
		}
		if !validName(s.name) {
			t.Fatalf("line %d: bad metric name %q", ln+1, s.name)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("line %d: bad value in %q: %v", ln+1, line, err)
		}
		s.value = v
		// Every sample must belong to an announced family (histogram samples
		// via their _bucket/_sum/_count suffixes).
		base := s.name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(s.name, suf) && families[strings.TrimSuffix(s.name, suf)] == "histogram" {
				base = strings.TrimSuffix(s.name, suf)
			}
		}
		if _, ok := families[base]; !ok {
			t.Fatalf("line %d: sample %s outside any announced family", ln+1, s.name)
		}
		samples = append(samples, s)
	}
	return families, samples
}

func TestPrometheusExposition(t *testing.T) {
	withEnabled(t, func() {
		r := NewRegistry()
		r.Counter("cspd.solve.requests").Add(7)
		r.Gauge("cspd.solve.inflight").Set(2)
		h := r.Histogram("cspd.solve.ns")
		for _, v := range []int64{1, 2, 3, 1000} {
			h.Observe(v)
		}
		r.CounterVec("cspd.cache.outcome", "outcome").Add(5, "hit")
		r.CounterVec("cspd.cache.outcome", "outcome").Add(3, "miss")
		hv := r.HistogramVec("cspd.http.request_ns", "route", "status")
		hv.Observe(100, "tree", "ok")
		hv.Observe(200, "tree", "ok")
		hv.Observe(50, "hard", "error")

		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		text := buf.String()
		families, samples := parsePromText(t, text)

		wantTypes := map[string]string{
			"cspd_solve_requests_total": "counter",
			"cspd_solve_inflight":       "gauge",
			"cspd_solve_ns":             "histogram",
			"cspd_cache_outcome_total":  "counter",
			"cspd_http_request_ns":      "histogram",
		}
		for name, typ := range wantTypes {
			if families[name] != typ {
				t.Fatalf("family %s = %q, want %q (families: %v)", name, families[name], typ, families)
			}
		}

		find := func(name string, labels map[string]string) *promSample {
			for i := range samples {
				s := &samples[i]
				if s.name != name {
					continue
				}
				match := true
				for k, v := range labels {
					if s.labels[k] != v {
						match = false
						break
					}
				}
				if match && len(s.labels) == len(labels) {
					return s
				}
			}
			return nil
		}
		if s := find("cspd_solve_requests_total", map[string]string{}); s == nil || s.value != 7 {
			t.Fatalf("requests_total sample = %+v", s)
		}
		if s := find("cspd_cache_outcome_total", map[string]string{"outcome": "hit"}); s == nil || s.value != 5 {
			t.Fatalf("cache outcome hit sample = %+v", s)
		}
		// Histogram trio for the labeled series: cumulative buckets ending at
		// +Inf == count, and sum/count samples.
		if s := find("cspd_http_request_ns_count", map[string]string{"route": "tree", "status": "ok"}); s == nil || s.value != 2 {
			t.Fatalf("labeled histogram count = %+v", s)
		}
		if s := find("cspd_http_request_ns_sum", map[string]string{"route": "tree", "status": "ok"}); s == nil || s.value != 300 {
			t.Fatalf("labeled histogram sum = %+v", s)
		}
		var inf *promSample
		var cum []float64
		for i := range samples {
			s := &samples[i]
			if s.name != "cspd_solve_ns_bucket" {
				continue
			}
			if s.labels["le"] == "+Inf" {
				inf = s
				continue
			}
			cum = append(cum, s.value)
		}
		if inf == nil || inf.value != 4 {
			t.Fatalf("+Inf bucket = %+v", inf)
		}
		if !sort.Float64sAreSorted(cum) {
			t.Fatalf("cumulative buckets not non-decreasing: %v", cum)
		}
		if len(cum) == 0 || cum[len(cum)-1] > inf.value {
			t.Fatalf("last bucket %v exceeds +Inf %v", cum, inf.value)
		}

		// Deterministic ordering: two renders are byte-identical, and family
		// names appear sorted.
		var buf2 bytes.Buffer
		if err := r.WritePrometheus(&buf2); err != nil {
			t.Fatal(err)
		}
		if text != buf2.String() {
			t.Fatal("two renders of the same registry differ")
		}
		var famOrder []string
		for _, line := range strings.Split(text, "\n") {
			if strings.HasPrefix(line, "# TYPE ") {
				famOrder = append(famOrder, strings.Fields(line)[2])
			}
		}
		if !sort.StringsAreSorted(famOrder) {
			t.Fatalf("families not sorted: %v", famOrder)
		}
	})
}

// TestPrometheusEscaping pins label-value escaping: backslash, quote and
// newline survive a write/parse round trip.
func TestPrometheusEscaping(t *testing.T) {
	withEnabled(t, func() {
		r := NewRegistry()
		hostile := "a\\b\"c\nd"
		r.CounterVec("esc", "v").Inc(hostile)
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		_, samples := parsePromText(t, buf.String())
		for _, s := range samples {
			if s.name == "esc_total" {
				if s.labels["v"] != hostile {
					t.Fatalf("escaped label round trip = %q, want %q", s.labels["v"], hostile)
				}
				return
			}
		}
		t.Fatal("esc_total sample not found")
	})
}

// TestPromName pins the name sanitizer.
func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"cspd.solve.ns":        "cspd_solve_ns",
		"csp.portfolio.win.FC": "csp_portfolio_win_FC",
		"9lives":               "_9lives",
		"a-b c":                "a_b_c",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestPromHistogramBoundaries pins the le boundaries against the log₂
// bucketing rule: a value v lands in the bucket whose le is the smallest
// inclusive bound >= v.
func TestPromHistogramBoundaries(t *testing.T) {
	withEnabled(t, func() {
		r := NewRegistry()
		h := r.Histogram("b")
		h.Observe(0)    // le 0
		h.Observe(1)    // le 1
		h.Observe(2)    // le 3
		h.Observe(3)    // le 3
		h.Observe(4)    // le 7
		h.Observe(1023) // le 1023
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		_, samples := parsePromText(t, buf.String())
		got := make(map[string]float64)
		for _, s := range samples {
			if s.name == "b_bucket" {
				got[s.labels["le"]] = s.value
			}
		}
		want := map[string]float64{"0": 1, "1": 2, "3": 4, "7": 5, "1023": 6, "+Inf": 6}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("cumulative buckets = %v, want %v", got, want)
		}
	})
}
