package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// withEnabled runs f with metrics recording on, restoring the prior state.
func withEnabled(t *testing.T, f func()) {
	t.Helper()
	prev := Enabled()
	SetEnabled(true)
	defer SetEnabled(prev)
	f()
}

func TestCounterDisabledNoops(t *testing.T) {
	SetEnabled(false)
	c := NewRegistry().Counter("x")
	c.Add(5)
	c.Inc()
	if got := c.Load(); got != 0 {
		t.Fatalf("disabled counter recorded %d", got)
	}
	var nilC *Counter
	nilC.Add(1) // must not panic
	if nilC.Load() != 0 {
		t.Fatal("nil counter load")
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	withEnabled(t, func() {
		r := NewRegistry()
		c := r.Counter("c")
		c.Add(3)
		c.Inc()
		if got := c.Load(); got != 4 {
			t.Fatalf("counter = %d, want 4", got)
		}
		if r.Counter("c") != c {
			t.Fatal("Counter not idempotent per name")
		}

		g := r.Gauge("g")
		g.Set(10)
		g.Add(-3)
		if got := g.Load(); got != 7 {
			t.Fatalf("gauge = %d, want 7", got)
		}

		h := r.Histogram("h")
		for _, v := range []int64{0, 1, 2, 3, 1000, -5} {
			h.Observe(v)
		}
		if h.Count() != 6 {
			t.Fatalf("hist count = %d, want 6", h.Count())
		}
		if h.Sum() != 1006 {
			t.Fatalf("hist sum = %d, want 1006", h.Sum())
		}
		if h.Max() != 1000 {
			t.Fatalf("hist max = %d, want 1000", h.Max())
		}
		snap := h.snapshot()
		// 0 and -5 land in bucket "0"; 1 in "2"; 2 and 3 in "4"; 1000 in "1024".
		want := map[string]int64{"0": 2, "2": 1, "4": 2, "1024": 1}
		for k, n := range want {
			if snap.Buckets[k] != n {
				t.Fatalf("bucket %q = %d, want %d (all: %v)", k, snap.Buckets[k], n, snap.Buckets)
			}
		}
	})
}

func TestRegistrySnapshotJSON(t *testing.T) {
	withEnabled(t, func() {
		r := NewRegistry()
		r.Counter("a.calls").Add(2)
		r.Gauge("a.inflight").Set(1)
		r.Histogram("a.ns").Observe(100)

		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		var decoded map[string]any
		if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
			t.Fatalf("snapshot not valid JSON: %v\n%s", err, buf.String())
		}
		if decoded["a.calls"].(float64) != 2 {
			t.Fatalf("a.calls = %v", decoded["a.calls"])
		}
		hist := decoded["a.ns"].(map[string]any)
		if hist["count"].(float64) != 1 {
			t.Fatalf("a.ns count = %v", hist["count"])
		}

		cv := r.CounterValues()
		if len(cv) != 1 || cv["a.calls"] != 2 {
			t.Fatalf("CounterValues = %v", cv)
		}
	})
}

// TestHistogramSnapshotBounds is the regression test for the PR-8 bugfix:
// the JSON snapshot must carry the bucket boundaries explicitly, ordered and
// inclusive, not only as lexicographically-sorted map keys one past the
// largest counted value.
func TestHistogramSnapshotBounds(t *testing.T) {
	withEnabled(t, func() {
		h := NewRegistry().Histogram("h")
		for _, v := range []int64{0, 1, 2, 3, 900, 1023} {
			h.Observe(v)
		}
		snap := h.snapshot()
		wantBounds := []BucketBound{{Le: 0, Count: 1}, {Le: 1, Count: 1}, {Le: 3, Count: 2}, {Le: 1023, Count: 2}}
		if len(snap.Bounds) != len(wantBounds) {
			t.Fatalf("bounds = %+v, want %+v", snap.Bounds, wantBounds)
		}
		for i, b := range snap.Bounds {
			if b != wantBounds[i] {
				t.Fatalf("bounds[%d] = %+v, want %+v", i, b, wantBounds[i])
			}
			if i > 0 && b.Le <= snap.Bounds[i-1].Le {
				t.Fatalf("bounds not strictly ascending: %+v", snap.Bounds)
			}
		}
		// The legacy map and the bounds array describe the same buckets: each
		// inclusive bound le corresponds to the exclusive key le+1.
		for _, b := range snap.Bounds {
			key := uitoa(uint64(b.Le) + 1)
			if b.Le == 0 {
				key = "0"
			}
			if snap.Buckets[key] != b.Count {
				t.Fatalf("bucket key %q = %d, want %d (legacy/bounds mismatch)", key, snap.Buckets[key], b.Count)
			}
		}
		// The wire form serializes the bounds in order.
		data, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Contains(data, []byte(`"bounds":[{"le":0,"count":1},{"le":1,"count":1}`)) {
			t.Fatalf("serialized snapshot missing ordered bounds: %s", data)
		}
	})
}

// TestConcurrentRecording exercises the registry and metric types under the
// race detector (make check runs this package with -race).
func TestConcurrentRecording(t *testing.T) {
	withEnabled(t, func() {
		r := NewRegistry()
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 1000; i++ {
					r.Counter("shared").Inc()
					r.Histogram("lat").Observe(int64(i))
					r.Gauge("g").Set(int64(i))
				}
			}()
		}
		wg.Wait()
		if got := r.Counter("shared").Load(); got != 8000 {
			t.Fatalf("shared counter = %d, want 8000", got)
		}
		if got := r.Histogram("lat").Count(); got != 8000 {
			t.Fatalf("lat count = %d, want 8000", got)
		}
	})
}
