package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestEventRingInactiveNoops(t *testing.T) {
	r := NewEventRing(4)
	r.Emit(SolveEvent{TraceID: "x"})
	if got := r.Drain(); len(got) != 0 {
		t.Fatalf("inactive ring recorded %d events", len(got))
	}
	var nilRing *EventRing
	nilRing.Emit(SolveEvent{}) // must not panic
}

func TestEventRingEmitDrain(t *testing.T) {
	r := NewEventRing(8)
	r.SetActive(true)
	for i := 0; i < 3; i++ {
		r.Emit(SolveEvent{TraceID: fmt.Sprintf("req-%d", i), Verdict: VerdictSat})
	}
	evs := r.Drain()
	if len(evs) != 3 {
		t.Fatalf("drained %d events, want 3", len(evs))
	}
	for i, ev := range evs {
		if want := fmt.Sprintf("req-%d", i); ev.TraceID != want {
			t.Fatalf("event %d trace id = %q, want %q (order)", i, ev.TraceID, want)
		}
	}
	if got := r.Drain(); len(got) != 0 {
		t.Fatalf("second drain returned %d events", len(got))
	}
}

func TestEventRingWrapsAndCountsDropped(t *testing.T) {
	r := NewEventRing(4)
	r.SetActive(true)
	for i := 0; i < 6; i++ {
		r.Emit(SolveEvent{TraceID: fmt.Sprintf("req-%d", i)})
	}
	if got := r.Dropped(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
	evs := r.Drain()
	if len(evs) != 4 || evs[0].TraceID != "req-2" || evs[3].TraceID != "req-5" {
		t.Fatalf("wrapped drain = %+v", evs)
	}
}

func TestEventSinkStreamsJSONL(t *testing.T) {
	var buf bytes.Buffer
	r := NewEventRing(8)
	r.SetActive(true)
	r.SetSink(&buf)
	r.Emit(SolveEvent{TraceID: "req-1", Verdict: VerdictUnsat, Nodes: 42})
	r.Emit(SolveEvent{TraceID: "req-2", Verdict: VerdictShed, Cause: "queue full"})
	r.FlushSink()

	sc := bufio.NewScanner(&buf)
	var got []SolveEvent
	for sc.Scan() {
		var ev SolveEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("sink line not JSON: %v: %s", err, sc.Text())
		}
		got = append(got, ev)
	}
	if len(got) != 2 || got[0].TraceID != "req-1" || got[0].Nodes != 42 ||
		got[1].Verdict != VerdictShed || got[1].Cause != "queue full" {
		t.Fatalf("sink events = %+v", got)
	}
	// The ring still holds the events: the sink is a tee, not a drain.
	if evs := r.Drain(); len(evs) != 2 {
		t.Fatalf("ring drained %d events after sink writes, want 2", len(evs))
	}
}

func TestWriteEventsJSONL(t *testing.T) {
	var buf bytes.Buffer
	events := []SolveEvent{
		{TraceID: "a", Verdict: VerdictSat, WallNs: 100},
		{TraceID: "b", Verdict: VerdictError, Cause: "parse"},
	}
	if err := WriteEventsJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2", len(lines))
	}
	var ev SolveEvent
	if err := json.Unmarshal(lines[1], &ev); err != nil || ev.Cause != "parse" {
		t.Fatalf("line 2 = %s (err %v)", lines[1], err)
	}
}

// TestEventRingConcurrent exercises Emit under the race detector.
func TestEventRingConcurrent(t *testing.T) {
	r := NewEventRing(64)
	r.SetActive(true)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Emit(SolveEvent{TraceID: "t", Verdict: VerdictSat})
			}
		}()
	}
	wg.Wait()
	if got := len(r.Drain()) + int(r.Dropped()); got != 800 {
		t.Fatalf("drained+dropped = %d, want 800", got)
	}
}
