package obs

import (
	"encoding/json"
	"io"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is usable but
// unregistered; use NewCounter (or Registry.Counter) so it shows up in
// snapshots. All methods are safe for concurrent use and nil-safe.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n when observability is enabled.
func (c *Counter) Add(n int64) {
	if c == nil || !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Inc is Add(1).
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (readable even while disabled).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down (e.g. in-flight requests).
type Gauge struct {
	v atomic.Int64
}

// Set stores v when observability is enabled.
func (g *Gauge) Set(v int64) {
	if g == nil || !enabled.Load() {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by n when observability is enabled.
func (g *Gauge) Add(n int64) {
	if g == nil || !enabled.Load() {
		return
	}
	g.v.Add(n)
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count: bucket i holds observations v with
// bits.Len64(v) == i, i.e. power-of-two ranges [2^(i-1), 2^i). Bucket 0 holds
// v <= 0. 65 buckets cover the whole non-negative int64 range, so recording
// never needs a bounds decision at runtime.
const histBuckets = 65

// Histogram is a log-scale (power-of-two bucketed) histogram. Observing is
// one bits.Len64 plus two atomic adds and one atomic max — allocation-free.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value when observability is enabled. Negative values
// are clamped to 0.
func (h *Histogram) Observe(v int64) {
	if h == nil || !enabled.Load() {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest observed value (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Mean returns the arithmetic mean of observed values (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// BucketBound is one histogram bucket with its explicit boundary: Le is the
// inclusive upper bound (2^i - 1 for the log₂ buckets; 0 for the v <= 0
// bucket) and Count the observations that landed in [previous Le + 1, Le].
type BucketBound struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the JSON form of a histogram: count/sum/max/mean plus
// the nonzero buckets, twice over. Buckets is the legacy map keyed by the
// bucket's *exclusive* upper bound (2^i as a decimal string) — kept verbatim
// for consumers of the PR-5 schema. Bounds is the bugfix: the same buckets
// as an ordered array with explicit *inclusive* upper bounds, because the
// map alone under-specified the boundaries (JSON map keys sort
// lexicographically — "1024" < "16" — and the keys were one past the largest
// value actually counted). Quantile estimation (cmd/csptop) and the
// Prometheus le boundaries both read Bounds.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
	Max     int64            `json:"max"`
	Mean    float64          `json:"mean"`
	Buckets map[string]int64 `json:"buckets,omitempty"`
	Bounds  []BucketBound    `json:"bounds,omitempty"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
		Mean:  h.Mean(),
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if s.Buckets == nil {
			s.Buckets = make(map[string]int64)
		}
		s.Buckets[bucketLabel(i)] = n
		s.Bounds = append(s.Bounds, BucketBound{Le: bucketUpper(i), Count: n})
	}
	return s
}

// bucketUpper returns bucket i's inclusive upper bound: the largest value v
// with bits.Len64(v) == i, i.e. 2^i - 1 (0 for bucket 0, which absorbs
// v <= 0).
func bucketUpper(i int) int64 {
	if i == 0 {
		return 0
	}
	if i >= 63 {
		return 1<<63 - 1
	}
	return int64(1)<<uint(i) - 1
}

// bucketLabel renders bucket i's upper bound. Bucket 0 is "0"; bucket i>0
// covers values up to 2^i - 1, labeled "le_2^i" style as a plain decimal.
func bucketLabel(i int) string {
	if i == 0 {
		return "0"
	}
	// 2^i as decimal; i <= 64 so compute in big-enough float-free form.
	if i == 64 {
		return "9223372036854775807" // int64 max, the last bucket
	}
	v := uint64(1) << uint(i)
	return uitoa(v)
}

func uitoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// Registry names and owns metrics. Registration takes a mutex; the recording
// hot path never touches the registry again (metric handles are plain
// pointers held by the instrumented packages).
type Registry struct {
	mu          sync.Mutex
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	hists       map[string]*Histogram
	counterVecs map[string]*CounterVec
	histVecs    map[string]*HistogramVec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:    make(map[string]*Counter),
		gauges:      make(map[string]*Gauge),
		hists:       make(map[string]*Histogram),
		counterVecs: make(map[string]*CounterVec),
		histVecs:    make(map[string]*HistogramVec),
	}
}

// defaultRegistry backs the package-level constructors; cmd/cspd serves it.
var defaultRegistry = NewRegistry()

// DefaultRegistry returns the process-wide registry.
func DefaultRegistry() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// NewCounter registers (or fetches) a counter in the default registry.
func NewCounter(name string) *Counter { return defaultRegistry.Counter(name) }

// NewGauge registers (or fetches) a gauge in the default registry.
func NewGauge(name string) *Gauge { return defaultRegistry.Gauge(name) }

// NewHistogram registers (or fetches) a histogram in the default registry.
func NewHistogram(name string) *Histogram { return defaultRegistry.Histogram(name) }

// Snapshot returns a point-in-time copy of every metric, keyed by name:
// counters and gauges as int64, histograms as HistogramSnapshot. Labeled
// metrics appear as one entry per series under the SeriesID key format —
// name{label="value",...} — so the snapshot stays one flat JSON object (the
// PR-5 schema) with labeled series as additional keys. The map is freshly
// allocated and safe to serialize or mutate.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out[name] = c.Load()
	}
	for name, g := range r.gauges {
		out[name] = g.Load()
	}
	for name, h := range r.hists {
		out[name] = h.snapshot()
	}
	for _, v := range r.counterVecs {
		v.mu.RLock()
		for k, values := range v.series {
			out[SeriesID(v.name, v.labels, values)] = v.counters[k].Load()
		}
		v.mu.RUnlock()
	}
	for _, v := range r.histVecs {
		v.mu.RLock()
		for k, values := range v.series {
			out[SeriesID(v.name, v.labels, values)] = v.hists[k].snapshot()
		}
		v.mu.RUnlock()
	}
	return out
}

// CounterValues returns only the counter metrics, for compact capture (e.g.
// cmd/benchjson's metrics sidecar in BENCH_relation.json).
func (r *Registry) CounterValues() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Load()
	}
	return out
}

// WriteJSON writes the snapshot as sorted-key indented JSON (expvar-style:
// one flat object, metric names as keys; encoding/json sorts map keys, so
// the rendering is deterministic).
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
