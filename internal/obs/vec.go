package obs

import (
	"sort"
	"strings"
	"sync"
)

// Label vectors: families of counters/histograms keyed by a small fixed set
// of label names, in the Prometheus style but with this repo's discipline
// baked in:
//
//   - The label *names* are fixed at construction and the label *values*
//     must come from small enumerable sets (const strings, or switches over
//     known inputs) — csplint's obslabel analyzer machine-checks every call
//     site, so series cardinality cannot explode from user input.
//   - As defense in depth, each vector also enforces a hard runtime series
//     cap (maxSeries): once reached, new label combinations collapse onto a
//     single overflow series whose every label value is "_overflow", so a
//     bug degrades one metric's resolution instead of the process's memory.
//   - Recording checks the global enabled switch before anything else, so
//     the disabled-mode cost is the same single atomic load as an unlabeled
//     Counter — no map lookup, no lock.
//
// When enabled, a record takes one RLock'd map hit on the steady state (the
// series exists after its first record); vectors are meant for call-boundary
// recording (once per request, per classification, per race), never for the
// per-node/per-row hot paths, and the obsboundary analyzer enforces that
// lexically just as it does for the unlabeled types.

// maxSeries is the per-vector series cap. Labeled metrics in this repo are
// crossings of sets with ≤ ~10 values each; 256 series is far above any
// legitimate crossing while still bounding a runaway call site.
const maxSeries = 256

// overflowValue replaces every label value of a series created past the cap.
const overflowValue = "_overflow"

// labelSep joins label values into a series key. 0x1f (ASCII unit
// separator) cannot appear in the enumerable label sets the lint enforces.
const labelSep = "\x1f"

// vecCore is the shared series table of CounterVec and HistogramVec.
type vecCore struct {
	name   string
	labels []string

	mu     sync.RWMutex
	series map[string][]string // key -> label values (for exposition)
}

// SeriesID renders the flat-snapshot key of one series:
// name{l1="v1",l2="v2"} with label names in construction order. It is the
// key format Registry.Snapshot uses for labeled metrics, shared with
// cmd/csptop's parser.
func SeriesID(name string, labels, values []string) string {
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		v := ""
		if i < len(values) {
			v = values[i]
		}
		b.WriteString(v)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// key joins values, clamping the combination onto the overflow series when
// the vector is at capacity and the combination is new. The returned slice
// is the (possibly replaced) value set to remember for exposition.
func (v *vecCore) key(values []string) (string, []string, bool) {
	k := strings.Join(values, labelSep)
	v.mu.RLock()
	_, ok := v.series[k]
	n := len(v.series)
	v.mu.RUnlock()
	if ok {
		return k, values, false
	}
	if n >= maxSeries {
		ov := make([]string, len(v.labels))
		for i := range ov {
			ov[i] = overflowValue
		}
		return strings.Join(ov, labelSep), ov, true
	}
	return k, values, true
}

// sortedKeys returns the series keys in deterministic (label-value) order.
func (v *vecCore) sortedKeys() []string {
	keys := make([]string, 0, len(v.series))
	for k := range v.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct {
	vecCore
	counters map[string]*Counter
}

// newCounterVec is Registry.CounterVec's constructor.
func newCounterVec(name string, labels []string) *CounterVec {
	return &CounterVec{
		vecCore:  vecCore{name: name, labels: labels, series: make(map[string][]string)},
		counters: make(map[string]*Counter),
	}
}

// with returns the series counter, creating it under the write lock on
// first use.
func (v *CounterVec) with(values []string) *Counter {
	k, vals, maybeNew := v.key(values)
	if !maybeNew {
		v.mu.RLock()
		c := v.counters[k]
		v.mu.RUnlock()
		if c != nil {
			return c
		}
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.counters[k]; ok {
		return c
	}
	stored := make([]string, len(vals))
	copy(stored, vals)
	v.series[k] = stored
	c := &Counter{}
	v.counters[k] = c
	return c
}

// Add increments the series selected by the label values. Missing values
// render as ""; extra values are ignored beyond the label count (both are
// call-site bugs the obslabel fixtures pin). No-op while disabled.
func (v *CounterVec) Add(n int64, labelValues ...string) {
	if v == nil || !enabled.Load() {
		return
	}
	v.with(labelValues).v.Add(n)
}

// Inc is Add(1, labelValues...).
func (v *CounterVec) Inc(labelValues ...string) { v.Add(1, labelValues...) }

// Load returns the series value (0 when the series does not exist), readable
// while disabled — tests and csptop deltas use it.
func (v *CounterVec) Load(labelValues ...string) int64 {
	if v == nil {
		return 0
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	c := v.counters[strings.Join(labelValues, labelSep)]
	return c.Load()
}

// HistogramVec is a family of histograms distinguished by label values.
type HistogramVec struct {
	vecCore
	hists map[string]*Histogram
}

func newHistogramVec(name string, labels []string) *HistogramVec {
	return &HistogramVec{
		vecCore: vecCore{name: name, labels: labels, series: make(map[string][]string)},
		hists:   make(map[string]*Histogram),
	}
}

func (v *HistogramVec) with(values []string) *Histogram {
	k, vals, maybeNew := v.key(values)
	if !maybeNew {
		v.mu.RLock()
		h := v.hists[k]
		v.mu.RUnlock()
		if h != nil {
			return h
		}
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.hists[k]; ok {
		return h
	}
	stored := make([]string, len(vals))
	copy(stored, vals)
	v.series[k] = stored
	h := &Histogram{}
	v.hists[k] = h
	return h
}

// Observe records one value into the series selected by the label values.
// No-op while disabled.
func (v *HistogramVec) Observe(val int64, labelValues ...string) {
	if v == nil || !enabled.Load() {
		return
	}
	h := v.with(labelValues)
	// Inline Histogram.Observe's body via the exported method: the per-series
	// histogram rechecks the enabled bit, which is one redundant atomic load
	// on the (rare, per-call-boundary) enabled path and keeps the bucketing
	// logic in exactly one place.
	h.Observe(val)
}

// Series returns the histogram backing one series (nil when absent), for
// tests and exposition.
func (v *HistogramVec) Series(labelValues ...string) *Histogram {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.hists[strings.Join(labelValues, labelSep)]
}

// CounterVec returns the named counter vector, creating it with the given
// label names on first use. Label names are fixed by the first caller; a
// later caller with different names gets the original vector (same-name
// registration is a programming error the exposition makes visible, not a
// runtime branch).
func (r *Registry) CounterVec(name string, labelNames ...string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.counterVecs[name]
	if !ok {
		v = newCounterVec(name, labelNames)
		r.counterVecs[name] = v
	}
	return v
}

// HistogramVec returns the named histogram vector, creating it with the
// given label names on first use.
func (r *Registry) HistogramVec(name string, labelNames ...string) *HistogramVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.histVecs[name]
	if !ok {
		v = newHistogramVec(name, labelNames)
		r.histVecs[name] = v
	}
	return v
}

// NewCounterVec registers (or fetches) a counter vector in the default
// registry.
func NewCounterVec(name string, labelNames ...string) *CounterVec {
	return defaultRegistry.CounterVec(name, labelNames...)
}

// NewHistogramVec registers (or fetches) a histogram vector in the default
// registry.
func NewHistogramVec(name string, labelNames ...string) *HistogramVec {
	return defaultRegistry.HistogramVec(name, labelNames...)
}
