package cq

import (
	"math/rand"
	"strings"
	"testing"

	"csdb/internal/structure"
)

// The parser must never panic: on arbitrary input it either succeeds or
// returns an error, and successful parses round-trip through String.
func TestParseNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	alphabet := []byte("QXYZabc(),:-. _|123")
	for trial := 0; trial < 3000; trial++ {
		n := rng.Intn(40)
		b := make([]byte, n)
		for i := range b {
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
		input := string(b)
		q, err := Parse(input)
		if err != nil {
			continue
		}
		// Successful parses re-parse to the same rendering.
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("round trip of %q (from %q) failed: %v", q.String(), input, err)
		}
		if q2.String() != q.String() {
			t.Fatalf("unstable rendering: %q vs %q", q.String(), q2.String())
		}
	}
}

// Mutations of valid queries must never panic either.
func TestParseMutatedValidQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := "Q(X,Y) :- E(X,Z), F(Z,Y), G(X,Y,Z)."
	for trial := 0; trial < 3000; trial++ {
		b := []byte(base)
		for k := 0; k < 1+rng.Intn(3); k++ {
			switch rng.Intn(3) {
			case 0: // delete
				if len(b) > 1 {
					i := rng.Intn(len(b))
					b = append(b[:i], b[i+1:]...)
				}
			case 1: // duplicate
				i := rng.Intn(len(b))
				b = append(b[:i], append([]byte{b[i]}, b[i:]...)...)
			default: // replace
				i := rng.Intn(len(b))
				b[i] = byte(" (),:-.|XYZ"[rng.Intn(11)])
			}
		}
		_, _ = Parse(string(b)) // must not panic
	}
}

// Evaluate must not panic even for adversarial (but valid) queries against
// mismatched databases.
func TestEvaluateOnWeirdQueries(t *testing.T) {
	queries := []string{
		"Q(X) :- E(X,X)",
		"Q :- E(X,Y), E(Y,X), E(X,X)",
		"Q(A) :- Longpredicatename(A,A)",
		"Q(X) :- E(X,Y), E(Y,Z), E(Z,W), E(W,V), E(V,X)",
	}
	db := structure.NewGraph(3)
	db.MustAddTuple("E", 0, 1)
	db.MustAddTuple("E", 1, 2)
	for _, s := range queries {
		q, err := Parse(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if _, err := q.Evaluate(db); err != nil {
			// Arity errors are fine; panics are not (reaching here is ok).
			if !strings.Contains(err.Error(), "arity") {
				t.Fatalf("%q: unexpected error %v", s, err)
			}
		}
	}
}
