package cq

// Query minimization — the classical application of the Chandra–Merlin
// theorem that the paper's Section 2 machinery enables: every conjunctive
// query is equivalent to a unique minimal query (its *core*), and the core
// is a subquery: repeatedly deleting subgoals while equivalence (checked by
// the homomorphism criterion) is preserved terminates in it. Deleting one
// atom at a time suffices: any retraction of the canonical database onto a
// proper substructure witnesses the removability of each atom outside its
// image, so a locally minimal subquery is globally minimal.

// Minimize returns a minimal conjunctive query equivalent to q — the core
// of q, unique up to variable renaming.
func Minimize(q *Query) (*Query, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	cur := &Query{Name: q.Name, Head: append([]string(nil), q.Head...), Body: append([]Atom(nil), q.Body...)}
	for {
		removed := false
		for i := 0; i < len(cur.Body) && len(cur.Body) > 1; i++ {
			cand := &Query{Name: cur.Name, Head: cur.Head}
			cand.Body = append(cand.Body, cur.Body[:i]...)
			cand.Body = append(cand.Body, cur.Body[i+1:]...)
			if cand.Validate() != nil {
				continue // removal would strand a head variable
			}
			// Dropping a conjunct only weakens the query, so cur ⊆ cand
			// always holds; equivalence needs the converse.
			ok, err := Contains(cand, cur)
			if err != nil {
				return nil, err
			}
			if ok {
				cur = cand
				removed = true
				break
			}
		}
		if !removed {
			return cur, nil
		}
	}
}

// IsMinimal reports whether no single subgoal of q can be dropped while
// preserving equivalence — i.e. whether q is its own core.
func IsMinimal(q *Query) (bool, error) {
	m, err := Minimize(q)
	if err != nil {
		return false, err
	}
	return len(m.Body) == len(q.Body), nil
}
