package cq

import (
	"math/rand"
	"testing"
)

func TestMinimizeDropsRedundantSubgoals(t *testing.T) {
	cases := []struct {
		in       string
		wantSize int
	}{
		// The extra E(X,Z2) folds into E(X,Z).
		{"Q(X,Y) :- E(X,Z), F(Z,Y), E(X,Z2)", 2},
		// A chain of length 2 with a redundant parallel copy.
		{"Q(X,Y) :- E(X,Z), E(Z,Y), E(X,W), E(W,Y)", 2},
		// Nothing redundant.
		{"Q(X,Y) :- E(X,Z), E(Z,Y)", 2},
		{"Q(X) :- E(X,X)", 1},
		// Folding: Z can be identified with X, so one atom suffices.
		{"Q :- E(X,Y), E(Z,Y)", 1},
		// The directed 4-cycle and triangle are cores: every endomorphism
		// of a directed cycle is an automorphism, so nothing is removable.
		{"Q :- E(X,Y), E(Y,Z), E(Z,W), E(W,X)", 4},
		{"Q :- E(X,Y), E(Y,Z), E(Z,X)", 3},
		// Two parallel length-2 paths fold onto one (U identifies with Y).
		{"Q(X,Z) :- E(X,Y), E(Y,Z), E(X,U), E(U,Z)", 2},
	}
	for _, c := range cases {
		q := MustParse(c.in)
		m, err := Minimize(q)
		if err != nil {
			t.Fatalf("%s: %v", c.in, err)
		}
		if len(m.Body) != c.wantSize {
			t.Fatalf("%s: minimized to %d subgoals (%s), want %d", c.in, len(m.Body), m, c.wantSize)
		}
		eq, err := Equivalent(q, m)
		if err != nil || !eq {
			t.Fatalf("%s: minimized query not equivalent: %v %v", c.in, eq, err)
		}
		minimal, err := IsMinimal(m)
		if err != nil || !minimal {
			t.Fatalf("%s: result not minimal", c.in)
		}
	}
}

func TestIsMinimal(t *testing.T) {
	minimal, err := IsMinimal(MustParse("Q(X,Y) :- E(X,Z), E(Z,Y)"))
	if err != nil || !minimal {
		t.Fatalf("chain reported non-minimal: %v %v", minimal, err)
	}
	minimal, err = IsMinimal(MustParse("Q(X,Y) :- E(X,Y), E(X,Z)"))
	if err != nil || minimal {
		t.Fatalf("redundant query reported minimal: %v %v", minimal, err)
	}
}

// Property: minimization preserves equivalence and is idempotent on random
// queries.
func TestMinimizeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		q := randomQuery(rng)
		m, err := Minimize(q)
		if err != nil {
			t.Fatalf("trial %d: %v (%s)", trial, err, q)
		}
		eq, err := Equivalent(q, m)
		if err != nil || !eq {
			t.Fatalf("trial %d: not equivalent after minimization (%s -> %s)", trial, q, m)
		}
		m2, err := Minimize(m)
		if err != nil {
			t.Fatal(err)
		}
		if len(m2.Body) != len(m.Body) {
			t.Fatalf("trial %d: minimization not idempotent", trial)
		}
	}
}

func TestMinimizeRejectsInvalid(t *testing.T) {
	bad := &Query{Name: "Q", Head: []string{"X"}, Body: nil}
	if _, err := Minimize(bad); err == nil {
		t.Fatal("invalid query accepted")
	}
}
