// Package cq implements conjunctive queries — positive existential
// first-order formulas with conjunction only, written as rules — together
// with the classical machinery of Section 2 of the paper:
//
//   - the canonical database D^Q of a query (with distinguished-variable
//     markers P_i);
//   - query evaluation over relational structures via join plans;
//   - conjunctive-query containment via the Chandra–Merlin theorem
//     (Proposition 2.2), decided both by evaluating Q2 on D^{Q1} and by
//     searching for a homomorphism D^{Q2} → D^{Q1};
//   - the Boolean query φ_A of a structure A and the equivalence of
//     Proposition 2.3 (homomorphism ⇔ φ_A true in B ⇔ φ_B ⊆ φ_A).
package cq

import (
	"fmt"
	"sort"
	"strings"

	"csdb/internal/csp"
	"csdb/internal/relation"
	"csdb/internal/structure"
)

// Atom is one subgoal R(X1,...,Xn); arguments are variable names.
type Atom struct {
	Pred string
	Args []string
}

func (a Atom) String() string {
	return a.Pred + "(" + strings.Join(a.Args, ",") + ")"
}

// Query is a conjunctive query in rule form. Head lists the distinguished
// variables (empty for a Boolean query); Body lists the subgoals.
type Query struct {
	Name string
	Head []string
	Body []Atom
}

// String renders the query back in rule syntax.
func (q *Query) String() string {
	head := q.Name
	if len(q.Head) > 0 {
		head += "(" + strings.Join(q.Head, ",") + ")"
	}
	subgoals := make([]string, len(q.Body))
	for i, a := range q.Body {
		subgoals[i] = a.String()
	}
	return head + " :- " + strings.Join(subgoals, ", ") + "."
}

// Vars returns the distinct variables of the query in first-occurrence order
// (head first, then body).
func (q *Query) Vars() []string {
	var out []string
	seen := make(map[string]bool)
	add := func(v string) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, v := range q.Head {
		add(v)
	}
	for _, a := range q.Body {
		for _, v := range a.Args {
			add(v)
		}
	}
	return out
}

// Validate checks that the query is safe (every head variable occurs in the
// body), that it has at least one subgoal, and that predicates are used with
// consistent arities.
func (q *Query) Validate() error {
	if len(q.Body) == 0 {
		return fmt.Errorf("cq: query %s has an empty body", q.Name)
	}
	arity := make(map[string]int)
	bodyVars := make(map[string]bool)
	for _, a := range q.Body {
		if a.Pred == "" || len(a.Args) == 0 {
			return fmt.Errorf("cq: malformed subgoal %v", a)
		}
		if prev, ok := arity[a.Pred]; ok && prev != len(a.Args) {
			return fmt.Errorf("cq: predicate %s used with arities %d and %d", a.Pred, prev, len(a.Args))
		}
		arity[a.Pred] = len(a.Args)
		for _, v := range a.Args {
			bodyVars[v] = true
		}
	}
	for _, v := range q.Head {
		if !bodyVars[v] {
			return fmt.Errorf("cq: head variable %s does not occur in the body (unsafe query)", v)
		}
	}
	seen := make(map[string]bool)
	for _, v := range q.Head {
		if seen[v] {
			return fmt.Errorf("cq: repeated head variable %s", v)
		}
		seen[v] = true
	}
	return nil
}

// Predicates returns the query's predicate symbols with their arities,
// sorted by name.
func (q *Query) Predicates() []structure.Symbol {
	arity := make(map[string]int)
	for _, a := range q.Body {
		arity[a.Pred] = len(a.Args)
	}
	names := make([]string, 0, len(arity))
	for n := range arity {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]structure.Symbol, len(names))
	for i, n := range names {
		out[i] = structure.Symbol{Name: n, Arity: arity[n]}
	}
	return out
}

// Parse parses rule syntax such as
//
//	Q(X1,X2) :- P(X1,Z1,Z2), R(Z2,Z3), R(Z3,X2).
//
// The head argument list may be omitted for Boolean queries ("Q :- ...").
// A trailing period is optional.
func Parse(s string) (*Query, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimSuffix(s, ".")
	parts := strings.SplitN(s, ":-", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("cq: missing ':-' in %q", s)
	}
	name, headVars, err := parseAtomText(strings.TrimSpace(parts[0]), true)
	if err != nil {
		return nil, fmt.Errorf("cq: bad head: %w", err)
	}
	body, err := parseAtomList(parts[1])
	if err != nil {
		return nil, err
	}
	q := &Query{Name: name, Head: headVars, Body: body}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse but panics on error.
func MustParse(s string) *Query {
	q, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return q
}

// parseAtomList splits "P(X,Y), R(Y,Z)" into atoms, respecting parentheses.
func parseAtomList(s string) ([]Atom, error) {
	var atoms []Atom
	depth, start := 0, 0
	flush := func(end int) error {
		txt := strings.TrimSpace(s[start:end])
		if txt == "" {
			return fmt.Errorf("cq: empty subgoal in %q", s)
		}
		name, args, err := parseAtomText(txt, false)
		if err != nil {
			return err
		}
		atoms = append(atoms, Atom{Pred: name, Args: args})
		return nil
	}
	for i, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("cq: unbalanced parentheses in %q", s)
			}
		case ',':
			if depth == 0 {
				if err := flush(i); err != nil {
					return nil, err
				}
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("cq: unbalanced parentheses in %q", s)
	}
	if err := flush(len(s)); err != nil {
		return nil, err
	}
	return atoms, nil
}

// parseAtomText parses "R(X,Y)" into name and args. When allowNoArgs is true
// a bare identifier (Boolean head) is accepted.
func parseAtomText(s string, allowNoArgs bool) (string, []string, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 {
		if allowNoArgs && isIdent(s) {
			return s, nil, nil
		}
		return "", nil, fmt.Errorf("missing '(' in %q", s)
	}
	if !strings.HasSuffix(s, ")") {
		return "", nil, fmt.Errorf("missing ')' in %q", s)
	}
	name := strings.TrimSpace(s[:open])
	if !isIdent(name) {
		return "", nil, fmt.Errorf("bad predicate name %q", name)
	}
	inner := s[open+1 : len(s)-1]
	var args []string
	for _, part := range strings.Split(inner, ",") {
		v := strings.TrimSpace(part)
		if !isIdent(v) {
			return "", nil, fmt.Errorf("bad argument %q in %q", v, s)
		}
		args = append(args, v)
	}
	if len(args) == 0 {
		return "", nil, fmt.Errorf("empty argument list in %q", s)
	}
	return name, args, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// CanonicalDB builds the canonical database D^Q of the query: one domain
// element per variable, a tuple per subgoal, and — when markDistinguished is
// true — a unary marker predicate Pi holding the i-th distinguished
// variable, as in Section 2. It returns the structure and the element index
// of each variable.
//
// The structure's vocabulary is voc when non-nil (it must cover the query's
// predicates and, if markDistinguished, the markers); otherwise a minimal
// vocabulary is synthesized.
func (q *Query) CanonicalDB(voc *structure.Vocabulary, markDistinguished bool) (*structure.Structure, map[string]int, error) {
	if err := q.Validate(); err != nil {
		return nil, nil, err
	}
	if voc == nil {
		voc = structure.MustVocabulary()
		for _, sym := range q.Predicates() {
			if err := voc.Add(sym); err != nil {
				return nil, nil, err
			}
		}
		if markDistinguished {
			for i := range q.Head {
				if err := voc.Add(structure.Symbol{Name: markerName(i), Arity: 1}); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	vars := q.Vars()
	idx := make(map[string]int, len(vars))
	names := make([]string, len(vars))
	for i, v := range vars {
		idx[v] = i
		names[i] = v
	}
	db, err := structure.New(voc, len(vars))
	if err != nil {
		return nil, nil, err
	}
	if err := db.SetNames(names); err != nil {
		return nil, nil, err
	}
	for _, a := range q.Body {
		t := make([]int, len(a.Args))
		for i, v := range a.Args {
			t[i] = idx[v]
		}
		if err := db.AddTuple(a.Pred, t...); err != nil {
			return nil, nil, err
		}
	}
	if markDistinguished {
		for i, v := range q.Head {
			if err := db.AddTuple(markerName(i), idx[v]); err != nil {
				return nil, nil, err
			}
		}
	}
	return db, idx, nil
}

func markerName(i int) string { return fmt.Sprintf("Pdist%d", i) }

// Evaluate computes Q(db): the relation of head-variable bindings (attribute
// names are the head variables) for which the body is satisfied in db.
// Predicates of the query absent from db's vocabulary are treated as empty.
// For a Boolean query the result is a 0-ary relation that is nonempty iff
// the query is true.
func (q *Query) Evaluate(db *structure.Structure) (*relation.Relation, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	rels := make([]*relation.Relation, 0, len(q.Body))
	for _, a := range q.Body {
		r, err := atomRelation(a, db)
		if err != nil {
			return nil, err
		}
		rels = append(rels, r)
	}
	joined := relation.JoinAll(rels)
	if len(q.Head) == 0 {
		// Boolean query: project to arity 0.
		out := relation.MustNew()
		if !joined.Empty() {
			out.MustAdd(relation.Tuple{})
		}
		return out, nil
	}
	return joined.Project(q.Head...)
}

// True reports whether a Boolean query holds in db.
func (q *Query) True(db *structure.Structure) (bool, error) {
	res, err := q.Evaluate(db)
	if err != nil {
		return false, err
	}
	return !res.Empty(), nil
}

// AtomRelation converts one subgoal into a relation over its variable names;
// exported for join algorithms built on top of query hypergraphs (package
// hypergraph).
func AtomRelation(a Atom, db *structure.Structure) (*relation.Relation, error) {
	return atomRelation(a, db)
}

// atomRelation converts one subgoal into a relation over its variable names:
// the db relation with columns renamed to the argument variables, with
// equality selections applied for repeated variables.
func atomRelation(a Atom, db *structure.Structure) (*relation.Relation, error) {
	arity, ok := db.Voc().Arity(a.Pred)
	if ok && arity != len(a.Args) {
		return nil, fmt.Errorf("cq: predicate %s has arity %d in the database, used with %d arguments", a.Pred, arity, len(a.Args))
	}
	// Distinct variable list in first-occurrence order.
	var attrs []string
	firstPos := make(map[string]int)
	for i, v := range a.Args {
		if _, seen := firstPos[v]; !seen {
			firstPos[v] = i
			attrs = append(attrs, v)
		}
	}
	out := relation.MustNew(attrs...)
	if !ok {
		return out, nil // predicate absent: empty relation
	}
	out.Grow(db.Rel(a.Pred).Len())
	t := make(relation.Tuple, len(attrs)) // Add copies, so one scratch row suffices
rows:
	for _, row := range db.Rel(a.Pred).Tuples() {
		for i, v := range a.Args {
			if row[i] != row[firstPos[v]] {
				continue rows // repeated variable with disagreeing values
			}
		}
		for j, v := range attrs {
			t[j] = row[firstPos[v]]
		}
		out.MustAdd(t)
	}
	return out, nil
}

// Contains decides Q1 ⊆ Q2 (same head arity required) by the Chandra–Merlin
// criterion: the head tuple of Q1 belongs to Q2(D^{Q1}).
func Contains(q1, q2 *Query) (bool, error) {
	if len(q1.Head) != len(q2.Head) {
		return false, fmt.Errorf("cq: containment between queries of different head arities %d and %d", len(q1.Head), len(q2.Head))
	}
	db, idx, err := q1.CanonicalDB(nil, false)
	if err != nil {
		return false, err
	}
	res, err := q2.Evaluate(db)
	if err != nil {
		return false, err
	}
	if len(q1.Head) == 0 {
		return !res.Empty(), nil
	}
	want := make(relation.Tuple, len(q1.Head))
	for i, v := range q1.Head {
		want[i] = idx[v]
	}
	return res.Contains(want), nil
}

// ContainsViaHomomorphism decides Q1 ⊆ Q2 by the second Chandra–Merlin
// criterion: a homomorphism D^{Q2} → D^{Q1} mapping distinguished variables
// to distinguished variables (enforced by the Pi marker predicates).
func ContainsViaHomomorphism(q1, q2 *Query) (bool, error) {
	if len(q1.Head) != len(q2.Head) {
		return false, fmt.Errorf("cq: containment between queries of different head arities %d and %d", len(q1.Head), len(q2.Head))
	}
	voc, err := jointVocabulary(q1, q2, len(q1.Head))
	if err != nil {
		return false, err
	}
	d1, _, err := q1.CanonicalDB(voc, true)
	if err != nil {
		return false, err
	}
	d2, _, err := q2.CanonicalDB(voc, true)
	if err != nil {
		return false, err
	}
	return csp.HomomorphismExists(d2, d1), nil
}

// jointVocabulary builds the union vocabulary of two queries plus nHead
// distinguished markers, checking arity agreement.
func jointVocabulary(q1, q2 *Query, nHead int) (*structure.Vocabulary, error) {
	voc := structure.MustVocabulary()
	arity := make(map[string]int)
	for _, q := range []*Query{q1, q2} {
		for _, sym := range q.Predicates() {
			if prev, ok := arity[sym.Name]; ok {
				if prev != sym.Arity {
					return nil, fmt.Errorf("cq: predicate %s used with arities %d and %d across queries", sym.Name, prev, sym.Arity)
				}
				continue
			}
			arity[sym.Name] = sym.Arity
			if err := voc.Add(sym); err != nil {
				return nil, err
			}
		}
	}
	for i := 0; i < nHead; i++ {
		if err := voc.Add(structure.Symbol{Name: markerName(i), Arity: 1}); err != nil {
			return nil, err
		}
	}
	return voc, nil
}

// Equivalent reports whether Q1 and Q2 are equivalent (mutual containment).
func Equivalent(q1, q2 *Query) (bool, error) {
	a, err := Contains(q1, q2)
	if err != nil || !a {
		return false, err
	}
	return Contains(q2, q1)
}

// StructureQuery builds the Boolean canonical query φ_A of Proposition 2.3:
// one variable per element of a, one subgoal per fact. By the proposition,
// φ_A is true in B iff there is a homomorphism A → B.
func StructureQuery(a *structure.Structure) (*Query, error) {
	q := &Query{Name: "PhiA"}
	varName := func(i int) string { return fmt.Sprintf("x%d", i) }
	for _, sym := range a.Voc().Symbols() {
		for _, t := range a.Rel(sym.Name).Tuples() {
			args := make([]string, len(t))
			for i, v := range t {
				args[i] = varName(v)
			}
			q.Body = append(q.Body, Atom{Pred: sym.Name, Args: args})
		}
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}
