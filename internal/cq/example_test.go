package cq_test

import (
	"fmt"

	"csdb/internal/cq"
)

// Conjunctive-query containment by the Chandra–Merlin theorem.
func ExampleContains() {
	// Every triangle vertex has an outgoing edge.
	triangle := cq.MustParse("Q(X) :- E(X,Y), E(Y,Z), E(Z,X)")
	edge := cq.MustParse("Q(X) :- E(X,Y)")
	c, err := cq.Contains(triangle, edge)
	if err != nil {
		panic(err)
	}
	fmt.Println("triangle ⊆ edge:", c)
	c, err = cq.Contains(edge, triangle)
	if err != nil {
		panic(err)
	}
	fmt.Println("edge ⊆ triangle:", c)
	// Output:
	// triangle ⊆ edge: true
	// edge ⊆ triangle: false
}

// Query minimization removes redundant joins.
func ExampleMinimize() {
	q := cq.MustParse("Q(X,Y) :- E(X,Z), E(Z,Y), E(X,W)")
	m, err := cq.Minimize(q)
	if err != nil {
		panic(err)
	}
	fmt.Println(m)
	// Output:
	// Q(X,Y) :- E(X,Z), E(Z,Y).
}
