package cq

import (
	"math/rand"
	"strings"
	"testing"

	"csdb/internal/csp"
	"csdb/internal/relation"
	"csdb/internal/structure"
)

func TestParseRoundTrip(t *testing.T) {
	q := MustParse("Q(X1,X2) :- P(X1,Z1,Z2), R(Z2,Z3), R(Z3,X2).")
	if q.Name != "Q" || len(q.Head) != 2 || len(q.Body) != 3 {
		t.Fatalf("parse shape wrong: %+v", q)
	}
	if q.Body[0].Pred != "P" || len(q.Body[0].Args) != 3 {
		t.Fatalf("first subgoal wrong: %+v", q.Body[0])
	}
	q2 := MustParse(q.String())
	if q2.String() != q.String() {
		t.Fatalf("round trip changed query: %q vs %q", q.String(), q2.String())
	}
}

func TestParseBooleanQuery(t *testing.T) {
	q := MustParse("Q :- E(X,Y), E(Y,X)")
	if len(q.Head) != 0 || len(q.Body) != 2 {
		t.Fatalf("boolean query wrong: %+v", q)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"Q(X)",                      // no body
		"Q(X) :- ",                  // empty body
		"Q(X) :- R(X,",              // unbalanced
		"Q(X) :- R()",               // empty args
		"Q(X) :- R(X), R(X,Y)",      // inconsistent arity
		"Q(X,Y) :- R(X,X)",          // unsafe head var Y
		"Q(X,X) :- R(X,X)",          // repeated head var
		"Q(1X) :- R(1X)",            // bad identifier
		"Q(X) :- R(X) extra stuff(", // junk
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Fatalf("accepted %q", s)
		}
	}
}

func TestVars(t *testing.T) {
	q := MustParse("Q(Y) :- R(X,Y), S(Y,Z)")
	got := q.Vars()
	want := []string{"Y", "X", "Z"}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", got, want)
		}
	}
}

func TestCanonicalDB(t *testing.T) {
	q := MustParse("Q(X1,X2) :- P(X1,Z1,Z2), R(Z2,Z3), R(Z3,X2)")
	db, idx, err := q.CanonicalDB(nil, true)
	if err != nil {
		t.Fatalf("CanonicalDB: %v", err)
	}
	if db.Size() != 5 {
		t.Fatalf("canonical db domain = %d, want 5", db.Size())
	}
	if !db.HasTuple("P", idx["X1"], idx["Z1"], idx["Z2"]) {
		t.Fatal("P fact missing")
	}
	if !db.HasTuple("R", idx["Z2"], idx["Z3"]) || !db.HasTuple("R", idx["Z3"], idx["X2"]) {
		t.Fatal("R facts missing")
	}
	if !db.HasTuple("Pdist0", idx["X1"]) || !db.HasTuple("Pdist1", idx["X2"]) {
		t.Fatal("distinguished markers missing")
	}
	// Without markers, the vocabulary has only P and R.
	db2, _, err := q.CanonicalDB(nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Voc().Has("Pdist0") {
		t.Fatal("unexpected marker predicate")
	}
}

func TestEvaluatePathQuery(t *testing.T) {
	// Q(X,Y) :- E(X,Z), E(Z,Y): pairs connected by a path of length 2.
	q := MustParse("Q(X,Y) :- E(X,Z), E(Z,Y)")
	g := structure.NewGraph(4)
	g.MustAddTuple("E", 0, 1)
	g.MustAddTuple("E", 1, 2)
	g.MustAddTuple("E", 2, 3)
	res, err := q.Evaluate(g)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	want := relation.MustFromTuples([]string{"X", "Y"}, []relation.Tuple{{0, 2}, {1, 3}})
	if !res.Equal(want) {
		t.Fatalf("Q(g) = %v, want %v", res, want)
	}
}

func TestEvaluateRepeatedVariableInAtom(t *testing.T) {
	// Q(X) :- E(X,X): loops only.
	q := MustParse("Q(X) :- E(X,X)")
	g := structure.NewGraph(3)
	g.MustAddTuple("E", 0, 1)
	g.MustAddTuple("E", 2, 2)
	res, err := q.Evaluate(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || !res.Contains(relation.Tuple{2}) {
		t.Fatalf("loops = %v", res)
	}
}

func TestEvaluateBooleanAndMissingPredicate(t *testing.T) {
	q := MustParse("Q :- E(X,Y), F(Y)")
	g := structure.NewGraph(2)
	g.MustAddTuple("E", 0, 1)
	ok, err := q.True(g) // F absent -> empty -> false
	if err != nil || ok {
		t.Fatalf("True = %v, %v", ok, err)
	}
	q2 := MustParse("Q :- E(X,Y)")
	ok2, err := q2.True(g)
	if err != nil || !ok2 {
		t.Fatalf("True = %v, %v", ok2, err)
	}
}

func TestEvaluateArityMismatch(t *testing.T) {
	q := MustParse("Q(X) :- E(X,X,X)")
	if _, err := q.Evaluate(structure.NewGraph(2)); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestContainmentClassicExamples(t *testing.T) {
	// Path-of-length-3 query is contained in path-of-length-1-free... use
	// standard examples:
	// Q1(X,Y) :- E(X,Z), E(Z,Y)            (paths of length 2)
	// Q2(X,Y) :- E(X,Z), E(Z,W), E(W,Y)    (paths of length 3)
	// Neither contains the other in general.
	q1 := MustParse("Q(X,Y) :- E(X,Z), E(Z,Y)")
	q2 := MustParse("Q(X,Y) :- E(X,Z), E(Z,W), E(W,Y)")
	for name, f := range map[string]func(a, b *Query) (bool, error){
		"eval": Contains, "hom": ContainsViaHomomorphism,
	} {
		c12, err := f(q1, q2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		c21, err := f(q2, q1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c12 || c21 {
			t.Fatalf("%s: unexpected containment c12=%v c21=%v", name, c12, c21)
		}
	}

	// A query is contained in a more general one: triangle ⊆ edge.
	tri := MustParse("Q(X) :- E(X,Y), E(Y,Z), E(Z,X)")
	edge := MustParse("Q(X) :- E(X,Y)")
	got, err := Contains(tri, edge)
	if err != nil || !got {
		t.Fatalf("triangle ⊆ edge: %v %v", got, err)
	}
	rev, err := Contains(edge, tri)
	if err != nil || rev {
		t.Fatalf("edge ⊆ triangle: %v %v", rev, err)
	}

	// Equivalence up to a redundant subgoal.
	qa := MustParse("Q(X,Y) :- E(X,Y)")
	qb := MustParse("Q(X,Y) :- E(X,Y), E(X,Z)")
	eq, err := Equivalent(qa, qb)
	if err != nil || !eq {
		t.Fatalf("redundant-subgoal equivalence: %v %v", eq, err)
	}
}

func TestContainmentHeadArityMismatch(t *testing.T) {
	q1 := MustParse("Q(X) :- E(X,Y)")
	q2 := MustParse("Q(X,Y) :- E(X,Y)")
	if _, err := Contains(q1, q2); err == nil {
		t.Fatal("head arity mismatch accepted")
	}
	if _, err := ContainsViaHomomorphism(q1, q2); err == nil {
		t.Fatal("head arity mismatch accepted (hom)")
	}
}

// Proposition 2.2: both decision procedures agree on random queries.
func TestChandraMerlinAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 120; trial++ {
		q1 := randomQuery(rng)
		q2 := randomQuery(rng)
		a, err := Contains(q1, q2)
		if err != nil {
			t.Fatalf("trial %d: %v\nq1=%s\nq2=%s", trial, err, q1, q2)
		}
		b, err := ContainsViaHomomorphism(q1, q2)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if a != b {
			t.Fatalf("trial %d: eval=%v hom=%v\nq1=%s\nq2=%s", trial, a, b, q1, q2)
		}
	}
}

// Containment is sound: if Q1 ⊆ Q2 then Q1(D) ⊆ Q2(D) on sampled databases.
func TestContainmentSoundOnRandomDatabases(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 60; trial++ {
		q1, q2 := randomQuery(rng), randomQuery(rng)
		contained, err := Contains(q1, q2)
		if err != nil || !contained {
			continue
		}
		for d := 0; d < 5; d++ {
			db := randomGraphStructure(rng, 2+rng.Intn(3), 0.5)
			r1, err := q1.Evaluate(db)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := q2.Evaluate(db)
			if err != nil {
				t.Fatal(err)
			}
			for _, tup := range r1.Tuples() {
				row := make(relation.Tuple, len(tup))
				for i, v := range q1.Head {
					row[r2.Pos(q2.Head[i])] = tup[r1.Pos(v)]
				}
				if !r2.Contains(row) {
					t.Fatalf("trial %d: containment violated on db: %v in Q1 but not Q2\nq1=%s\nq2=%s", trial, tup, q1, q2)
				}
			}
		}
	}
}

// Proposition 2.3: hom(A,B) ⇔ φ_A true in B ⇔ φ_B ⊆ φ_A.
func TestProposition23(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	checked := 0
	for trial := 0; trial < 60; trial++ {
		a := randomGraphStructure(rng, 3+rng.Intn(2), 0.5)
		b := randomGraphStructure(rng, 2+rng.Intn(2), 0.5)
		if a.NumTuples() == 0 || b.NumTuples() == 0 {
			continue
		}
		checked++
		hom := csp.HomomorphismExists(a, b)
		phiA, err := StructureQuery(a)
		if err != nil {
			t.Fatal(err)
		}
		phiB, err := StructureQuery(b)
		if err != nil {
			t.Fatal(err)
		}
		trueInB, err := phiA.True(b)
		if err != nil {
			t.Fatal(err)
		}
		contained, err := Contains(phiB, phiA)
		if err != nil {
			t.Fatal(err)
		}
		if trueInB != hom || contained != hom {
			t.Fatalf("trial %d: hom=%v phiA(B)=%v phiB⊆phiA=%v", trial, hom, trueInB, contained)
		}
	}
	if checked < 20 {
		t.Fatalf("too few nontrivial trials: %d", checked)
	}
}

// randomQuery builds a random connected-ish binary query over E with a
// random head.
func randomQuery(rng *rand.Rand) *Query {
	nVars := 2 + rng.Intn(3)
	vars := make([]string, nVars)
	for i := range vars {
		vars[i] = string(rune('X'+i%3)) + strings.Repeat("v", i/3)
	}
	nAtoms := 1 + rng.Intn(3)
	q := &Query{Name: "Q"}
	for i := 0; i < nAtoms; i++ {
		q.Body = append(q.Body, Atom{Pred: "E", Args: []string{
			vars[rng.Intn(nVars)], vars[rng.Intn(nVars)],
		}})
	}
	// Head: one variable that occurs in the body.
	q.Head = []string{q.Body[0].Args[rng.Intn(2)]}
	return q
}

func randomGraphStructure(rng *rand.Rand, n int, p float64) *structure.Structure {
	g := structure.NewGraph(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < p {
				g.MustAddTuple("E", i, j)
			}
		}
	}
	return g
}
