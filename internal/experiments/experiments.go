// Package experiments implements the reproduction experiments E1–E13 of
// DESIGN.md: one per theorem/proposition of the paper with algorithmic
// content (E13 exercises the tractability dispatcher built on top of
// them). Each experiment returns a table; cmd/experiments renders them
// and EXPERIMENTS.md records the results.
//
// The tutorial paper contains no empirical tables of its own, so these
// experiments are the substituted evaluation: each one (a) cross-validates
// the claimed equivalence on generated workloads and (b) measures the
// tractable algorithm against the baseline the theorem says it beats.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Table is one experiment's output.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper result being exercised
	Header  []string
	Rows    [][]string
	Notes   []string
	Elapsed time.Duration
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&b, "*Claim (%s).*\n\n", t.Claim)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, r := range t.Rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	b.WriteString("\n")
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "%s\n", n)
	}
	fmt.Fprintf(&b, "\n_Total runtime: %v._\n", t.Elapsed.Round(time.Millisecond))
	return b.String()
}

// Entry registers an experiment.
type Entry struct {
	ID   string
	Name string
	Run  func(seed int64) *Table
}

// Registry lists all experiments in order.
var Registry = []Entry{
	{"E1", "join evaluation decides CSP (Prop 2.1)", E1},
	{"E2", "Chandra-Merlin containment (Prop 2.2/2.3)", E2},
	{"E3", "Schaefer dichotomy solvers (Section 3)", E3},
	{"E4", "Hell-Nesetril dichotomy (Section 3)", E4},
	{"E5", "existential k-pebble games in P (Thm 4.5)", E5},
	{"E6", "k-Datalog vs games vs 2-colorability (Thm 4.6/4.7)", E6},
	{"E7", "establishing strong k-consistency (Thm 5.6/5.7)", E7},
	{"E8", "bounded-variable formulas from decompositions (Prop 6.1)", E8},
	{"E9", "bounded-treewidth CSP in P (Thm 6.2)", E9},
	{"E10", "acyclic joins and width notions (Section 6)", E10},
	{"E11", "certain answers via constraint templates (Thm 7.1/7.5)", E11},
	{"E12", "CSP-to-views reduction and maximal rewritings (Thm 7.3, PODS'99)", E12},
	{"E13", "tractability dispatcher vs portfolio (Sections 3/6)", E13},
}

// Find returns the registered experiment with the given id (case-insensitive).
func Find(id string) (Entry, bool) {
	for _, e := range Registry {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Entry{}, false
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000.0)
}

func timed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

func itoa(v int) string     { return fmt.Sprintf("%d", v) }
func i64toa(v int64) string { return fmt.Sprintf("%d", v) }
func btoa(v bool) string {
	if v {
		return "yes"
	}
	return "no"
}
