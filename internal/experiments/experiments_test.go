package experiments

import (
	"strings"
	"testing"
)

func TestRegistryIntegrity(t *testing.T) {
	if len(Registry) != 13 {
		t.Fatalf("registry has %d experiments, want 13", len(Registry))
	}
	seen := map[string]bool{}
	for i, e := range Registry {
		want := "E" + itoa(i+1)
		if e.ID != want {
			t.Fatalf("registry[%d].ID = %q, want %q", i, e.ID, want)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Name == "" {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	if _, ok := Find("e5"); !ok {
		t.Fatal("case-insensitive Find broken")
	}
	if _, ok := Find("E99"); ok {
		t.Fatal("phantom experiment found")
	}
}

// Each experiment must produce a well-formed table whose agreement columns
// are full. Running all of them keeps this test meaningful but slow-ish
// (~10s); the cheap shape checks run on every experiment.
func TestExperimentsProduceFullAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; run without -short")
	}
	for _, e := range Registry {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			table := e.Run(7) // a seed different from the published one
			if table.ID != e.ID || len(table.Header) == 0 || len(table.Rows) == 0 {
				t.Fatalf("malformed table: %+v", table)
			}
			for _, row := range table.Rows {
				if len(row) != len(table.Header) {
					t.Fatalf("row width %d != header width %d: %v", len(row), len(table.Header), row)
				}
			}
			md := table.Markdown()
			if !strings.Contains(md, "| ") || !strings.Contains(md, e.ID) {
				t.Fatal("markdown rendering broken")
			}
			// Agreement cells of the form "a/b" must have a == b; the
			// experiments are designed so disagreement means a bug.
			for _, row := range table.Rows {
				for _, cell := range row {
					parts := strings.Split(cell, "/")
					if len(parts) != 2 {
						continue
					}
					if strings.ContainsAny(parts[0], "0123456789") &&
						strings.ContainsAny(parts[1], "0123456789") &&
						!strings.Contains(cell, " ") {
						if parts[0] != parts[1] {
							t.Errorf("%s: agreement cell %q not full", e.ID, cell)
						}
					}
				}
			}
			if strings.Contains(md, "UNEXPECTED") {
				t.Errorf("%s: unexpected game outcome flagged", e.ID)
			}
		})
	}
}

// canonicalMarkdown renders a table with its wall-clock measurements masked:
// cells under a header mentioning "ms" and the total-runtime footer vary
// between runs by nature, everything else (verdicts, counts, node totals)
// must not.
func canonicalMarkdown(t *Table) string {
	c := &Table{ID: t.ID, Title: t.Title, Claim: t.Claim,
		Header: t.Header, Notes: t.Notes}
	timeCol := make([]bool, len(t.Header))
	for i, h := range t.Header {
		timeCol[i] = strings.Contains(h, "ms")
	}
	for _, row := range t.Rows {
		masked := make([]string, len(row))
		for i, cell := range row {
			if i < len(timeCol) && timeCol[i] {
				cell = "<time>"
			}
			masked[i] = cell
		}
		c.Rows = append(c.Rows, masked)
	}
	return c.Markdown()
}

// TestE1E7Deterministic is the golden determinism guard for cmd/experiments:
// the sequential baselines E1 (join vs search) and E7 (consistency and
// propagation levels) must produce byte-identical tables on repeated runs
// with the same seed, so the parallel engine cannot silently leak
// nondeterminism into the published experiment results.
func TestE1E7Deterministic(t *testing.T) {
	for _, id := range []string{"E1", "E7"} {
		e, ok := Find(id)
		if !ok {
			t.Fatalf("experiment %s missing", id)
		}
		first := canonicalMarkdown(e.Run(1))
		second := canonicalMarkdown(e.Run(1))
		if first != second {
			t.Errorf("%s with -seed 1 is nondeterministic:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
				id, first, second)
		}
	}
}
