package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"csdb/internal/csp"
	"csdb/internal/dispatch"
	"csdb/internal/gen"
)

// E13 — the tractability dispatcher (internal/dispatch) against the
// generic portfolio on structurally tractable families: every instance
// must get the same verdict from both, no PTIME-classified instance may
// fall back to the portfolio, and the structure-routed solve should win
// the wall clock — the operational content of "consult the structure
// first" (Sections 3 and 6).
func E13(seed int64) *Table {
	t := &Table{
		ID:     "E13",
		Title:  "tractability dispatcher vs portfolio",
		Claim:  "Sections 3/6: classify structure, route to the matching PTIME solver; the generic engine is only for instances with no polynomial witness",
		Header: []string{"family", "instances", "agree", "fallbacks", "dispatch ms", "portfolio ms", "speedup"},
	}
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))
	an := dispatch.NewAnalyzer(0, 0)

	families := []struct {
		name string
		gen  func() *csp.Instance
	}{
		{"α-acyclic (ear-grown, ≤3-ary, d=3)", func() *csp.Instance {
			return gen.AcyclicCSP(rng, 8+rng.Intn(6), 3, 3, 0.25+0.2*rng.Float64())
		}},
		{"full 3-trees (binary, d=3)", func() *csp.Instance {
			n := 10 + rng.Intn(8)
			g, _ := gen.PartialKTree(rng, n, 3, 0)
			return gen.CSPOnGraph(rng, g, 3, 0.15+0.2*rng.Float64())
		}},
		{"random trees (binary, d=3)", func() *csp.Instance {
			n := 12 + rng.Intn(10)
			return gen.CSPOnGraph(rng, gen.RandomTree(rng, n), 3, 0.2+0.2*rng.Float64())
		}},
	}

	const trials = 12
	ctx := context.Background()
	for _, fam := range families {
		var dispDur, portDur time.Duration
		agree, fallbacks := 0, 0
		for i := 0; i < trials; i++ {
			p := fam.gen()
			var out dispatch.Outcome
			dispDur += timed(func() { out = an.Solve(ctx, p) })
			var res csp.PortfolioResult
			portDur += timed(func() { res = csp.Portfolio(ctx, p, csp.PortfolioOptions{}) })
			if out.Found == res.Found {
				agree++
			}
			if out.Fallback {
				fallbacks++
			}
		}
		t.Rows = append(t.Rows, []string{
			fam.name, itoa(trials),
			fmt.Sprintf("%d/%d", agree, trials), itoa(fallbacks),
			ms(dispDur), ms(portDur),
			fmt.Sprintf("%.1fx", float64(portDur)/float64(dispDur)),
		})
	}
	t.Notes = append(t.Notes,
		"Dispatch time includes classification (tree / Schaefer / GYO / width probe) and the routed PTIME solve; the portfolio races MAC, FC, CBJ and join to a first verdict.",
		"`fallbacks` counts dispatcher solves answered by the portfolio — 0 means every instance was classified into a PTIME class, the differential gate's invariant.")
	t.Elapsed = time.Since(start)
	return t
}
