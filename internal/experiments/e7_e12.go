package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"csdb/internal/automata"
	"csdb/internal/consistency"
	"csdb/internal/cq"
	"csdb/internal/csp"
	"csdb/internal/gen"
	"csdb/internal/hypergraph"
	"csdb/internal/logic"
	"csdb/internal/relation"
	"csdb/internal/rpq"
	"csdb/internal/structure"
	"csdb/internal/treewidth"
)

// E7 — Theorems 5.6/5.7: strong k-consistency can be established exactly
// when the Duplicator wins the k-pebble game, and the produced instance has
// the four properties of Definition 5.4; constraint propagation (GAC) cuts
// search effort.
func E7(seed int64) *Table {
	t := &Table{
		ID:     "E7",
		Title:  "establishing strong k-consistency",
		Claim:  "Thm 5.6: establishable iff W^k nonempty; the construction is strongly k-consistent, coherent, and solution-preserving",
		Header: []string{"workload", "instances", "establishable", "properties hold", "note"},
	}
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))

	const trials = 25
	establishable, propertiesHold := 0, 0
	for i := 0; i < trials; i++ {
		a := gen.RandomSymmetricGraph(rng, 3+rng.Intn(3), 0.5)
		b := structure.Clique(2 + rng.Intn(2))
		est, ok, err := consistency.EstablishStrongK(a, b, 2)
		if err != nil {
			panic(err)
		}
		if !ok {
			continue
		}
		establishable++
		sc, err := consistency.IsStronglyKConsistent(est.APrime, est.BPrime, 2)
		if err != nil {
			panic(err)
		}
		coh, err := consistency.IsCoherent(est.APrime, est.BPrime)
		if err != nil {
			panic(err)
		}
		samePre := csp.HomomorphismExists(a, b) == csp.HomomorphismExists(est.APrime, est.BPrime)
		if sc && coh && samePre {
			propertiesHold++
		}
	}
	t.Rows = append(t.Rows, []string{
		"random graphs vs cliques, k=2", itoa(trials), itoa(establishable),
		fmt.Sprintf("%d/%d", propertiesHold, establishable),
		"Def 5.4 (2)+(4) + coherence checked",
	})

	// Propagation effect: BT vs BT+GAC preprocessing vs MAC on critical
	// model-B instances, measured in search nodes.
	const ptrials = 15
	var btNodes, cbjNodes, gacNodes, macNodes int64
	for i := 0; i < ptrials; i++ {
		inst := gen.ModelB(rng, 14, 4, 0.5, 0.38)
		btNodes += csp.Solve(inst, csp.Options{Algorithm: csp.BT}).Stats.Nodes
		cbjNodes += csp.SolveCBJ(inst, csp.Options{}).Stats.Nodes
		gacNodes += csp.Solve(inst, csp.Options{Algorithm: csp.BT, RootConsistency: true}).Stats.Nodes
		macNodes += csp.Solve(inst, csp.Options{Algorithm: csp.MAC}).Stats.Nodes
	}
	t.Rows = append(t.Rows, []string{
		"model-B n=14 d=4 (near threshold)", itoa(ptrials), "-", "-",
		fmt.Sprintf("search nodes: BT=%d, CBJ=%d, BT+GAC=%d, MAC=%d", btNodes, cbjNodes, gacNodes, macNodes),
	})
	t.Notes = append(t.Notes,
		"Every establishable instance satisfies the Theorem 5.6 properties; maintaining consistency during search (MAC) dominates both plain backtracking and one-shot propagation, the operational content of Section 5.")
	t.Elapsed = time.Since(start)
	return t
}

// E8 — Proposition 6.1: from a width-k tree decomposition of A, the
// canonical query φ_A is expressible with k+1 variables; the formula
// evaluates correctly against the CSP solver.
func E8(seed int64) *Table {
	t := &Table{
		ID:     "E8",
		Title:  "k+1-variable formulas from width-k decompositions",
		Claim:  "Prop 6.1: tw(A)=k iff φ_A is in ∃FO^{k+1}",
		Header: []string{"k", "structures", "vars ≤ k+1", "agree with solver", "formula size (max)"},
	}
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))
	targets := []*structure.Structure{structure.Clique(2), structure.Clique(3)}
	for _, k := range []int{1, 2, 3} {
		const trials = 12
		boundOK, agreeAll := 0, 0
		maxSize := 0
		for i := 0; i < trials; i++ {
			g, order := gen.PartialKTree(rng, 6+rng.Intn(6), k, 0.15)
			a := structure.NewGraph(g.N())
			for _, e := range g.Edges() {
				structure.AddUndirectedEdge(a, e[0], e[1])
			}
			dec := treewidth.FromOrdering(g, order)
			f, err := treewidth.BuildFormula(a, dec)
			if err != nil {
				panic(err)
			}
			if logic.NumVariables(f) <= k+1 {
				boundOK++
			}
			if s := logic.Size(f); s > maxSize {
				maxSize = s
			}
			agree := true
			for _, b := range targets {
				truth, err := logic.Holds(f, b)
				if err != nil {
					panic(err)
				}
				if truth != csp.HomomorphismExists(a, b) {
					agree = false
				}
			}
			if agree {
				agreeAll++
			}
		}
		t.Rows = append(t.Rows, []string{
			itoa(k), itoa(trials),
			fmt.Sprintf("%d/%d", boundOK, trials),
			fmt.Sprintf("%d/%d", agreeAll, trials),
			itoa(maxSize),
		})
	}
	t.Notes = append(t.Notes,
		"Every generated width-k structure yields a formula within the k+1 variable bound whose truth value matches homomorphism existence.")
	t.Elapsed = time.Since(start)
	return t
}

// E9 — Theorem 6.2: CSP over structures of bounded treewidth is solvable in
// polynomial time. DP over the decomposition scales near-linearly in n at
// fixed k; generic search is the baseline.
func E9(seed int64) *Table {
	t := &Table{
		ID:     "E9",
		Title:  "bounded-treewidth CSP: decomposition DP vs search",
		Claim:  "Thm 6.2: CSP(A(k), F) is in P; DP cost ~ n · d^{k+1}",
		Header: []string{"k", "n", "DP ms", "DP nodes", "MAC ms", "MAC nodes", "agree"},
	}
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))
	const d = 3
	for _, k := range []int{2, 3} {
		for _, n := range []int{20, 40, 80, 160} {
			// Average over a few instances at moderate tightness so the
			// workload mixes satisfiable and unsatisfiable cases instead of
			// being refuted by propagation alone.
			const trials = 5
			var dpTime, btTime, macTime time.Duration
			var dpNodes, btNodes int64
			agree := true
			for i := 0; i < trials; i++ {
				g, order := gen.PartialKTree(rng, n, k, 0.1)
				inst := gen.CSPOnGraph(rng, g, d, 0.30)
				dec := treewidth.FromOrdering(g, order)
				var dpRes, btRes, macRes csp.Result
				dpTime += timed(func() {
					var err error
					dpRes, err = treewidth.SolveDecomposed(inst, dec)
					if err != nil {
						panic(err)
					}
				})
				btTime += timed(func() {
					btRes = csp.Solve(inst, csp.Options{Algorithm: csp.BT, NodeLimit: 2_000_000})
				})
				macTime += timed(func() { macRes = csp.Solve(inst, csp.Options{}) })
				dpNodes += dpRes.Stats.Nodes
				btNodes += btRes.Stats.Nodes
				if dpRes.Found != macRes.Found || (dpRes.Found != btRes.Found && !btRes.Aborted) {
					agree = false
				}
			}
			t.Rows = append(t.Rows, []string{
				itoa(k), itoa(n), ms(dpTime), i64toa(dpNodes),
				ms(btTime), i64toa(btNodes), ms(macTime), btoa(agree),
			})
		}
	}
	t.Header = []string{"k", "n", "DP ms", "DP nodes", "BT ms", "BT nodes", "MAC ms", "agree"}
	t.Notes = append(t.Notes,
		"DP cost grows linearly in n at fixed k (the d^{k+1} factor is constant per bag), realizing the Theorem 6.2 bound, and is immune to the thrashing that hits chronological backtracking; MAC's propagation also handles these binary instances well, which is why Section 5's consistency machinery matters in practice.")
	t.Elapsed = time.Since(start)
	return t
}

// E10 — Section 6 discussion: acyclic joins (GYO, Yannakakis) and the
// comparison of width notions (treewidth vs generalized hypertree width).
func E10(seed int64) *Table {
	t := &Table{
		ID:     "E10",
		Title:  "acyclic joins and width notions",
		Claim:  "Section 6: acyclic queries evaluate in polynomial time via semijoins; hypertree width refines treewidth",
		Header: []string{"query", "db tuples", "yannakakis ms", "naive ms", "equal results", "output size"},
	}
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))

	voc := structure.MustVocabulary(structure.Symbol{Name: "R", Arity: 2})
	makeDB := func(n int, edges int) *structure.Structure {
		db := structure.MustNew(voc, n)
		for i := 0; i < edges; i++ {
			db.MustAddTuple("R", rng.Intn(n), rng.Intn(n))
		}
		return db
	}
	// deadEndDB builds a layered database where every path fans out widely
	// but almost none survive to the last layer — the classical case where
	// the semijoin full reducer avoids the naive join's intermediate
	// blowup.
	deadEndDB := func(levels, width, fanout int) *structure.Structure {
		n := (levels + 1) * width
		db := structure.MustNew(voc, n)
		id := func(level, i int) int { return level*width + i }
		for l := 0; l < levels; l++ {
			for i := 0; i < width; i++ {
				if l == levels-1 {
					if i == 0 {
						db.MustAddTuple("R", id(l, 0), id(l+1, 0))
					}
					continue // all other last-layer edges are dead ends
				}
				for f := 0; f < fanout; f++ {
					db.MustAddTuple("R", id(l, i), id(l+1, rng.Intn(width)))
				}
			}
		}
		return db
	}
	type e10cfg struct {
		name  string
		query string
		db    *structure.Structure
	}
	for _, cfg := range []e10cfg{
		{"chain-3", gen.ChainQuery(3), makeDB(60, 150)},
		{"chain-5", gen.ChainQuery(5), makeDB(60, 150)},
		{"star-5", gen.StarQuery(5), makeDB(60, 150)},
		{"chain-4 dead-ends", gen.ChainQuery(4), deadEndDB(4, 40, 6)},
		{"chain-5 dead-ends", gen.ChainQuery(5), deadEndDB(5, 40, 5)},
	} {
		q := cq.MustParse(cfg.query)
		db := cfg.db
		var yr, nr *relation.Relation
		yTime := timed(func() {
			var err error
			yr, err = hypergraph.Yannakakis(q, db)
			if err != nil {
				panic(err)
			}
		})
		nTime := timed(func() {
			var err error
			nr, err = q.Evaluate(db)
			if err != nil {
				panic(err)
			}
		})
		t.Rows = append(t.Rows, []string{
			cfg.name, itoa(db.NumTuples()), ms(yTime), ms(nTime), btoa(yr.Equal(nr)), itoa(yr.Len()),
		})
	}

	// Width notions on the canonical examples.
	tri, _, err := hypergraph.FromQuery(cq.MustParse(gen.CycleQuery(3)))
	if err != nil {
		panic(err)
	}
	chain, _, err := hypergraph.FromQuery(cq.MustParse(gen.ChainQuery(4)))
	if err != nil {
		panic(err)
	}
	widthRow := func(name string, h *hypergraph.Hypergraph) {
		tw := treewidth.BestHeuristic(hypergraph.PrimalGraph(h)).Width()
		ghw, err := h.GHWUpperBound()
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{
			name + " [widths]", itoa(len(h.Edges)),
			fmt.Sprintf("tw=%d", tw), fmt.Sprintf("ghw≤%d", ghw.Width()),
			btoa(h.IsAcyclic()), "-",
		})
	}
	widthRow("triangle query", tri)
	widthRow("chain query", chain)

	t.Notes = append(t.Notes,
		"Yannakakis matches the naive join's results on every acyclic query; acyclic hypergraphs have generalized hypertree width 1 while the triangle needs 2 (and treewidth 2), illustrating the width hierarchy the paper surveys.")
	t.Elapsed = time.Since(start)
	return t
}

// E11 — Theorems 7.1/7.5: certain answers via the constraint template. The
// construction is exponential in the query (PSPACE expression complexity)
// but the experiment measures the data-complexity side: growing view
// extensions with a fixed query.
func E11(seed int64) *Table {
	t := &Table{
		ID:     "E11",
		Title:  "certain answers via the constraint template",
		Claim:  "Thm 7.5: (c,d) ∉ cert(Q,V) iff the extension structure maps into the constraint template",
		Header: []string{"query", "views", "ext pairs", "certain", "template ms", "answer ms"},
	}
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))
	views := []rpq.View{{Name: 'v', Def: "a"}, {Name: 'w', Def: "b"}}
	for _, cfg := range []struct {
		query string
		pairs int
	}{
		{"ab", 8}, {"ab", 16}, {"ab", 32},
		{"(ab)*", 8}, {"(ab)*", 16},
		{"a*b", 16},
	} {
		q := automata.MustParseRegex(cfg.query)
		var tpl *rpq.Template
		tplTime := timed(func() {
			var err error
			tpl, err = rpq.ConstraintTemplate(q, views)
			if err != nil {
				panic(err)
			}
		})
		// Random chain-ish extensions over a small object pool.
		ext := rpq.Extension{}
		for i := 0; i < cfg.pairs; i++ {
			x := fmt.Sprintf("o%d", rng.Intn(cfg.pairs))
			y := fmt.Sprintf("o%d", rng.Intn(cfg.pairs))
			name := views[rng.Intn(len(views))].Name
			ext[name] = append(ext[name], rpq.Pair{X: x, Y: y})
		}
		certain := 0
		ansTime := timed(func() {
			answers, err := rpq.CertainAnswers(tpl, ext)
			if err != nil {
				panic(err)
			}
			certain = len(answers)
		})
		t.Rows = append(t.Rows, []string{
			cfg.query, "v=a, w=b", itoa(cfg.pairs), itoa(certain), ms(tplTime), ms(ansTime),
		})
	}
	t.Notes = append(t.Notes,
		"The template is built once per (query, views) pair — the expression-complexity cost — after which answering scales polynomially with the extension size (data complexity), as Theorem 7.1 prescribes.")
	t.Elapsed = time.Since(start)
	return t
}

// E12 — Theorem 7.3 and PODS'99 rewritings: CSP reduces to view-based
// answering (round-trip against the direct solver), and the maximal
// rewriting matches the expansion characterization on exhaustive short
// words.
func E12(seed int64) *Table {
	t := &Table{
		ID:     "E12",
		Title:  "CSP → views reduction and maximal rewritings",
		Claim:  "Thm 7.3: CSP(A,B) reduces to view-based answering; PODS'99: the maximal rewriting accepts exactly the always-contained view words",
		Header: []string{"experiment", "cases", "agree", "detail"},
	}
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))

	// Round-trip: random digraphs vs 2-node templates.
	const trials = 8
	agree := 0
	for i := 0; i < trials; i++ {
		a := gen.RandomDigraph(rng, 2+rng.Intn(3), 0.5)
		b := gen.RandomDigraph(rng, 2, 0.6)
		direct := csp.HomomorphismExists(a, b)
		via, err := rpq.SolveViaViews(a, b)
		if err != nil {
			panic(err)
		}
		if direct == via {
			agree++
		}
	}
	t.Rows = append(t.Rows, []string{
		"Thm 7.3 ∘ Thm 7.5 round trip", itoa(trials),
		fmt.Sprintf("%d/%d", agree, trials),
		"cert(c,d) false iff A→B",
	})

	// Rewriting characterization, exhaustive on short view words.
	configs := []struct {
		query string
		views []rpq.View
	}{
		{"ab", []rpq.View{{Name: 'v', Def: "a"}, {Name: 'w', Def: "b"}}},
		{"a*", []rpq.View{{Name: 'v', Def: "a"}, {Name: 'w', Def: "aa"}}},
		{"(ab)*", []rpq.View{{Name: 'v', Def: "ab"}, {Name: 'w', Def: "a"}, {Name: 'u', Def: "b"}}},
	}
	for _, cfg := range configs {
		rw, err := rpq.MaximalRewriting(cfg.query, cfg.views)
		if err != nil {
			panic(err)
		}
		var alpha []byte
		for _, v := range cfg.views {
			alpha = append(alpha, v.Name)
		}
		words := automata.WordsUpTo(alpha, 4)
		ok := 0
		accepted := 0
		for _, w := range words {
			want, err := rpq.ExpansionsContained(w, cfg.views, cfg.query)
			if err != nil {
				panic(err)
			}
			if rw.Accepts(w) == want {
				ok++
			}
			if rw.Accepts(w) {
				accepted++
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("rewriting of %q", cfg.query), itoa(len(words)),
			fmt.Sprintf("%d/%d", ok, len(words)),
			fmt.Sprintf("%d view words accepted", accepted),
		})
	}
	t.Notes = append(t.Notes,
		"The reduction agrees with the direct CSP solver on every instance, and each rewriting accepts exactly the view words all of whose expansions lie in the query language.")
	t.Elapsed = time.Since(start)
	return t
}
