package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"csdb/internal/csp"
	"csdb/internal/datalog"
	"csdb/internal/gen"
	"csdb/internal/graph"
	"csdb/internal/hcolor"
	"csdb/internal/pebble"
	"csdb/internal/schaefer"
	"csdb/internal/structure"
)

// E1 — Proposition 2.1: a CSP instance is solvable iff the natural join of
// its constraint relations is nonempty. We check agreement between the
// join-evaluation solver and MAC search on random model-B instances across
// the solubility phase, and compare their costs on n-queens.
func E1(seed int64) *Table {
	t := &Table{
		ID:     "E1",
		Title:  "join evaluation vs backtracking search",
		Claim:  "Prop 2.1: solvable iff the join of the constraint relations is nonempty",
		Header: []string{"workload", "instances", "agree", "sat", "join ms (total)", "MAC ms (total)"},
	}
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))
	for _, cfg := range []struct {
		name               string
		n, d               int
		density, tightness float64
		trials             int
	}{
		{"model-B n=8 loose", 8, 3, 0.4, 0.25, 40},
		{"model-B n=8 critical", 8, 3, 0.6, 0.45, 40},
		{"model-B n=8 tight", 8, 3, 0.8, 0.6, 40},
		{"model-B n=12 critical", 12, 3, 0.4, 0.4, 20},
	} {
		agree, sat := 0, 0
		var joinTime, macTime time.Duration
		for i := 0; i < cfg.trials; i++ {
			inst := gen.ModelB(rng, cfg.n, cfg.d, cfg.density, cfg.tightness)
			var jr, mr csp.Result
			joinTime += timed(func() { jr = csp.JoinSolve(inst) })
			macTime += timed(func() { mr = csp.Solve(inst, csp.Options{}) })
			if jr.Found == mr.Found {
				agree++
			}
			if mr.Found {
				sat++
			}
		}
		t.Rows = append(t.Rows, []string{
			cfg.name, itoa(cfg.trials), fmt.Sprintf("%d/%d", agree, cfg.trials),
			itoa(sat), ms(joinTime), ms(macTime),
		})
	}
	// n-queens: the join explodes combinatorially while search stays cheap —
	// the reason Prop 2.1 is a correspondence, not an algorithm of choice.
	for _, n := range []int{6, 7, 8} {
		inst := gen.NQueens(n)
		var jr, mr csp.Result
		joinTime := timed(func() { jr = csp.JoinSolve(inst) })
		macTime := timed(func() { mr = csp.Solve(inst, csp.Options{}) })
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d-queens", n), "1", btoa(jr.Found == mr.Found), btoa(mr.Found),
			ms(joinTime), ms(macTime),
		})
	}
	t.Notes = append(t.Notes,
		"The two deciders agree on every instance; the join is competitive on loose instances and far slower on n-queens, matching the expectation that Prop 2.1 is an equivalence of problems, not of algorithms.")
	t.Elapsed = time.Since(start)
	return t
}

// E2 — Propositions 2.2/2.3: containment ⇔ evaluation on the canonical
// database ⇔ homomorphism between canonical databases.
func E2(seed int64) *Table {
	t := &Table{
		ID:     "E2",
		Title:  "three routes to conjunctive-query containment",
		Claim:  "Prop 2.2/2.3 (Chandra-Merlin): Q1 ⊆ Q2 iff head ∈ Q2(D^Q1) iff D^Q2 → D^Q1",
		Header: []string{"workload", "pairs", "eval=hom", "contained", "eval ms", "hom ms"},
	}
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))

	// Random query pairs.
	randomQuery := func() *cqQuery {
		return randomCQ(rng, 2+rng.Intn(3), 1+rng.Intn(3))
	}
	agree, contained := 0, 0
	var evalTime, homTime time.Duration
	const pairs = 200
	for i := 0; i < pairs; i++ {
		q1, q2 := randomQuery(), randomQuery()
		var a, b bool
		evalTime += timed(func() { a = mustContains(q1, q2) })
		homTime += timed(func() { b = mustContainsHom(q1, q2) })
		if a == b {
			agree++
		}
		if a {
			contained++
		}
	}
	t.Rows = append(t.Rows, []string{
		"random binary queries", itoa(pairs), fmt.Sprintf("%d/%d", agree, pairs),
		itoa(contained), ms(evalTime), ms(homTime),
	})

	// Chains: chain_m ⊆ chain_n iff ... chains are incomparable for
	// different lengths with distinguished endpoints; equal lengths are
	// equivalent. Verify and time on growing sizes.
	for _, n := range []int{4, 8, 12} {
		q1 := mustParseCQ(gen.ChainQuery(n))
		q2 := mustParseCQ(gen.ChainQuery(n))
		var a bool
		evalT := timed(func() { a = mustContains(q1, q2) })
		homT := timed(func() { _ = mustContainsHom(q1, q2) })
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("chain length %d (self)", n), "1", "yes", btoa(a), ms(evalT), ms(homT),
		})
	}
	t.Notes = append(t.Notes,
		"Both decision procedures agree on every pair, as Chandra-Merlin requires.")
	t.Elapsed = time.Since(start)
	return t
}

// E3 — Schaefer's dichotomy: instances over templates inside the six
// classes are solved by the dedicated polynomial solvers and verified
// against search; the 1-in-3 template (outside all classes) shows search
// cost growing with instance size.
func E3(seed int64) *Table {
	t := &Table{
		ID:     "E3",
		Title:  "Schaefer class solvers vs generic search",
		Claim:  "Section 3 (Schaefer): CSP(B) is in P for the six closure classes, NP-complete otherwise",
		Header: []string{"template", "class", "vars", "instances", "agree", "class ms", "search ms", "search nodes"},
	}
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))

	classCases := []struct {
		name  string
		class schaefer.Class
	}{
		{"planted 0-valid", schaefer.ZeroValid},
		{"planted 1-valid", schaefer.OneValid},
		{"planted Horn", schaefer.Horn},
		{"planted dual-Horn", schaefer.DualHorn},
		{"planted bijunctive", schaefer.Bijunctive},
		{"planted affine", schaefer.Affine},
	}
	const vars, consCount, trials = 30, 60, 20
	for _, cc := range classCases {
		tpl := &schaefer.Template{Rels: []*schaefer.BoolRel{
			gen.ClosedBoolRel(rng, 3, cc.class, 2),
			gen.ClosedBoolRel(rng, 2, cc.class, 2),
		}}
		var classTime, searchTime time.Duration
		var nodes int64
		agree := 0
		for i := 0; i < trials; i++ {
			inst := randomSchaeferInstance(rng, tpl, vars, consCount)
			var ok1, ok2 bool
			classTime += timed(func() {
				_, ok, cls, err := schaefer.Solve(inst)
				if err != nil {
					panic(err)
				}
				if cls == nil {
					panic("planted template not classified")
				}
				ok1 = ok
			})
			searchTime += timed(func() {
				q, err := inst.ToCSP()
				if err != nil {
					panic(err)
				}
				res := csp.Solve(q, csp.Options{})
				ok2 = res.Found
				nodes += res.Stats.Nodes
			})
			if ok1 == ok2 {
				agree++
			}
		}
		t.Rows = append(t.Rows, []string{
			cc.name, cc.class.String(), itoa(vars), itoa(trials),
			fmt.Sprintf("%d/%d", agree, trials), ms(classTime), ms(searchTime), i64toa(nodes),
		})
	}

	// 1-in-3 SAT: NP-complete side. Clause ratio m/n ≈ 0.62 sits near the
	// satisfiability threshold of random positive 1-in-3-SAT, where search
	// cost peaks.
	oneInThree := &schaefer.Template{Rels: []*schaefer.BoolRel{schaefer.RelOneInThree()}}
	for _, n := range []int{30, 60, 90} {
		var nodes int64
		var searchTime time.Duration
		sat := 0
		for i := 0; i < 10; i++ {
			inst := randomSchaeferInstance(rng, oneInThree, n, int(float64(n)*0.62))
			q, err := inst.ToCSP()
			if err != nil {
				panic(err)
			}
			searchTime += timed(func() {
				res := csp.Solve(q, csp.Options{})
				nodes += res.Stats.Nodes
				if res.Found {
					sat++
				}
			})
		}
		t.Rows = append(t.Rows, []string{
			"1-in-3 (NP side)", "none", itoa(n), "10", fmt.Sprintf("sat=%d", sat),
			"-", ms(searchTime), i64toa(nodes),
		})
	}
	t.Notes = append(t.Notes,
		"Every planted-class instance is solved by the dedicated polynomial solver in agreement with search; the 1-in-3 template is in no Schaefer class and its search cost grows with instance size.")
	t.Elapsed = time.Since(start)
	return t
}

// E4 — Hell–Nešetřil: H-coloring with a bipartite template is polynomial
// (2-coloring), while K3 (NP-complete side) costs search nodes that grow
// with n near the coloring threshold.
func E4(seed int64) *Table {
	t := &Table{
		ID:     "E4",
		Title:  "H-coloring across the dichotomy",
		Claim:  "Section 3 (Hell-Nesetril): CSP(H) in P iff H bipartite (or has a loop); NP-complete otherwise",
		Header: []string{"template", "side", "n", "instances", "mappable", "total ms"},
	}
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))
	templates := []struct {
		name string
		h    *graph.Graph
	}{
		{"C6 (bipartite)", graph.Cycle(6)},
		{"K3 (non-bipartite)", graph.Clique(3)},
	}
	for _, tc := range templates {
		side := hcolor.Classify(tc.h)
		for _, n := range []int{20, 40, 80} {
			const trials = 10
			mappable := 0
			var total time.Duration
			for i := 0; i < trials; i++ {
				g := gen.RandomGraph(rng, n, 4.5/float64(n))
				total += timed(func() {
					res, err := hcolor.Solve(g, tc.h)
					if err != nil {
						panic(err)
					}
					if res.Exists {
						mappable++
					}
				})
			}
			t.Rows = append(t.Rows, []string{
				tc.name, side.String(), itoa(n), itoa(trials), itoa(mappable), ms(total),
			})
		}
	}
	t.Notes = append(t.Notes,
		"The bipartite template is decided by 2-coloring in microseconds at every size; the K3 side runs a search whose cost grows with n.")
	t.Elapsed = time.Since(start)
	return t
}

// E5 — Theorem 4.5: whether the Spoiler wins the existential k-pebble game
// is decidable in polynomial time for fixed k. We time the largest-strategy
// computation on cycles vs K2 and confirm the winner matches parity.
func E5(seed int64) *Table {
	t := &Table{
		ID:     "E5",
		Title:  "deciding existential k-pebble games",
		Claim:  "Thm 4.5: for fixed k, the winner is computable in polynomial time",
		Header: []string{"A", "B", "k", "winner", "strategy size", "ms"},
	}
	start := time.Now()
	_ = seed
	for _, k := range []int{2, 3} {
		for _, n := range []int{4, 5, 6, 7, 8, 9, 10, 11, 12} {
			a := structure.Cycle(n)
			b := structure.Clique(2)
			var strat *pebble.Strategy
			d := timed(func() {
				var err error
				strat, err = pebble.LargestStrategy(a, b, k)
				if err != nil {
					panic(err)
				}
			})
			winner := "Duplicator"
			if !strat.NonEmpty() {
				winner = "Spoiler"
			}
			expect := "Duplicator"
			if n%2 == 1 && k >= 3 {
				expect = "Spoiler"
			}
			if winner != expect {
				winner += " (UNEXPECTED)"
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("C%d", n), "K2", itoa(k), winner, itoa(strat.Size()), ms(d),
			})
		}
	}
	t.Notes = append(t.Notes,
		"With k=2 the Duplicator survives on every cycle; with k=3 the Spoiler wins exactly on odd cycles (which are not 2-colorable). Runtime grows polynomially with n at fixed k.")
	t.Elapsed = time.Since(start)
	return t
}

// E6 — Theorems 4.6/4.7 instantiated at B = K2: the paper's 4-Datalog
// non-2-colorability program, the 3-pebble game, and the direct
// bipartiteness algorithm agree on random graphs.
func E6(seed int64) *Table {
	t := &Table{
		ID:     "E6",
		Title:  "k-Datalog = pebble games = 2-colorability",
		Claim:  "Thm 4.6: ¬CSP(B) in k-Datalog iff the Spoiler-wins set; the Section 4 program is the K2 witness",
		Header: []string{"n", "graphs", "datalog=bfs", "game=bfs", "non-2-col", "datalog ms", "game ms", "bfs ms"},
	}
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))
	prog := datalog.NonTwoColorability()
	for _, n := range []int{6, 8, 10} {
		const trials = 15
		agreeDatalog, agreeGame, non2col := 0, 0, 0
		var dlTime, gameTime, bfsTime time.Duration
		for i := 0; i < trials; i++ {
			g := gen.RandomGraph(rng, n, 2.2/float64(n))
			s := structure.NewGraph(n)
			for _, e := range g.Edges() {
				structure.AddUndirectedEdge(s, e[0], e[1])
			}
			var byDatalog, byGame, byBFS bool
			dlTime += timed(func() {
				v, err := datalog.GoalTrue(prog, datalog.GraphEDB(s))
				if err != nil {
					panic(err)
				}
				byDatalog = v
			})
			gameTime += timed(func() {
				v, err := pebble.SpoilerWins(s, structure.Clique(2), 3)
				if err != nil {
					panic(err)
				}
				byGame = v
			})
			bfsTime += timed(func() { byBFS = !g.IsBipartite() })
			if byDatalog == byBFS {
				agreeDatalog++
			}
			if byGame == byBFS {
				agreeGame++
			}
			if byBFS {
				non2col++
			}
		}
		t.Rows = append(t.Rows, []string{
			itoa(n), itoa(trials),
			fmt.Sprintf("%d/%d", agreeDatalog, trials),
			fmt.Sprintf("%d/%d", agreeGame, trials),
			itoa(non2col), ms(dlTime), ms(gameTime), ms(bfsTime),
		})
	}
	// The canonical 2-Datalog program of Theorem 4.5(3): agreement with the
	// direct 2-pebble game algorithm across random graphs vs K2.
	canon, err := datalog.CanonicalProgram(structure.Clique(2))
	if err != nil {
		panic(err)
	}
	agreeCanon, trialsCanon := 0, 20
	for i := 0; i < trialsCanon; i++ {
		n := 4 + rng.Intn(5)
		s := gen.RandomSymmetricGraph(rng, n, 0.35)
		byProg, err := datalog.GoalTrue(canon, datalog.GraphEDB(s))
		if err != nil {
			panic(err)
		}
		byGame, err := pebble.SpoilerWins(s, structure.Clique(2), 2)
		if err != nil {
			panic(err)
		}
		if byProg == byGame {
			agreeCanon++
		}
	}
	t.Rows = append(t.Rows, []string{
		"canonical ρ_K2 (k=2)", itoa(trialsCanon),
		fmt.Sprintf("%d/%d", agreeCanon, trialsCanon), "vs 2-pebble game", "-", "-", "-", "-",
	})
	t.Notes = append(t.Notes,
		"All three deciders agree on every graph: the 4-Datalog program of Section 4 and the 3-pebble Spoiler-wins test both characterize non-2-colorability, the concrete instance of Theorem 4.6. The last row runs the *canonical* 2-Datalog program ρ_B of Theorem 4.5(3) (built mechanically from B = K2) against the direct 2-pebble game decision.")
	t.Elapsed = time.Since(start)
	return t
}

func randomSchaeferInstance(rng *rand.Rand, tpl *schaefer.Template, vars, cons int) *schaefer.Instance {
	p := &schaefer.Instance{Template: tpl, NumVars: vars}
	for c := 0; c < cons; c++ {
		ri := rng.Intn(len(tpl.Rels))
		scope := make([]int, tpl.Rels[ri].Arity())
		for i := range scope {
			scope[i] = rng.Intn(vars)
		}
		p.Cons = append(p.Cons, schaefer.Application{Rel: ri, Scope: scope})
	}
	return p
}
