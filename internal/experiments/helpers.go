package experiments

import (
	"math/rand"

	"csdb/internal/cq"
)

// cqQuery aliases the conjunctive-query type for brevity in this package.
type cqQuery = cq.Query

func mustParseCQ(s string) *cqQuery { return cq.MustParse(s) }

func mustContains(q1, q2 *cqQuery) bool {
	ok, err := cq.Contains(q1, q2)
	if err != nil {
		panic(err)
	}
	return ok
}

func mustContainsHom(q1, q2 *cqQuery) bool {
	ok, err := cq.ContainsViaHomomorphism(q1, q2)
	if err != nil {
		panic(err)
	}
	return ok
}

// randomCQ builds a random conjunctive query over a binary predicate E with
// nVars variables and nAtoms subgoals, one distinguished variable.
func randomCQ(rng *rand.Rand, nVars, nAtoms int) *cqQuery {
	names := []string{"X", "Y", "Z", "W", "V"}
	vars := names[:nVars]
	q := &cq.Query{Name: "Q"}
	for i := 0; i < nAtoms; i++ {
		q.Body = append(q.Body, cq.Atom{Pred: "E", Args: []string{
			vars[rng.Intn(nVars)], vars[rng.Intn(nVars)],
		}})
	}
	q.Head = []string{q.Body[0].Args[rng.Intn(2)]}
	return q
}
