// Package logic implements the existential positive fragment ∃FO_{∧,+} of
// first-order logic — formulas built from atoms with conjunction and
// existential quantification only — and in particular its bounded-variable
// fragments ∃FO^k_{∧,+} that Section 6 of the paper connects to treewidth:
// a structure A has treewidth k iff its canonical query φ_A is expressible
// with k+1 variables (Proposition 6.1), and evaluating a bounded-variable
// formula has polynomial combined complexity, which yields the tractability
// of CSP(A(k), F) (Theorem 6.2).
//
// Formulas are evaluated bottom-up by translating each subformula into the
// relation of its satisfying assignments (over its free variables), using
// natural join for conjunction and projection for quantification — the
// standard poly-time evaluation that the paper's complexity claims rest on.
package logic

import (
	"fmt"
	"sort"
	"strings"

	"csdb/internal/relation"
	"csdb/internal/structure"
)

// Formula is a node of an ∃FO_{∧,+} formula.
type Formula interface {
	// FreeVars returns the free variables, sorted.
	FreeVars() []string
	// String renders the formula.
	String() string
}

// Atom is an atomic formula R(x1,...,xn).
type Atom struct {
	Pred string
	Args []string
}

// FreeVars implements Formula.
func (a *Atom) FreeVars() []string {
	seen := make(map[string]bool)
	var out []string
	for _, v := range a.Args {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

func (a *Atom) String() string {
	return a.Pred + "(" + strings.Join(a.Args, ",") + ")"
}

// And is a conjunction of formulas. An empty conjunction is "true".
type And struct {
	Conjuncts []Formula
}

// FreeVars implements Formula.
func (c *And) FreeVars() []string {
	seen := make(map[string]bool)
	var out []string
	for _, f := range c.Conjuncts {
		for _, v := range f.FreeVars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Strings(out)
	return out
}

func (c *And) String() string {
	if len(c.Conjuncts) == 0 {
		return "true"
	}
	parts := make([]string, len(c.Conjuncts))
	for i, f := range c.Conjuncts {
		parts[i] = f.String()
	}
	return "(" + strings.Join(parts, " & ") + ")"
}

// Exists is existential quantification over one variable.
type Exists struct {
	Var  string
	Body Formula
}

// FreeVars implements Formula.
func (e *Exists) FreeVars() []string {
	var out []string
	for _, v := range e.Body.FreeVars() {
		if v != e.Var {
			out = append(out, v)
		}
	}
	return out
}

func (e *Exists) String() string {
	return "E" + e.Var + "." + e.Body.String()
}

// NumVariables returns the number of distinct variable names (free or
// bound) occurring in the formula — the resource measured by the
// bounded-variable fragments ∃FO^k.
func NumVariables(f Formula) int {
	seen := make(map[string]bool)
	collectVars(f, seen)
	return len(seen)
}

func collectVars(f Formula, seen map[string]bool) {
	switch t := f.(type) {
	case *Atom:
		for _, v := range t.Args {
			seen[v] = true
		}
	case *And:
		for _, c := range t.Conjuncts {
			collectVars(c, seen)
		}
	case *Exists:
		seen[t.Var] = true
		collectVars(t.Body, seen)
	default:
		panic(fmt.Sprintf("logic: unknown formula node %T", f))
	}
}

// Size returns the number of nodes of the formula tree.
func Size(f Formula) int {
	switch t := f.(type) {
	case *Atom:
		return 1
	case *And:
		n := 1
		for _, c := range t.Conjuncts {
			n += Size(c)
		}
		return n
	case *Exists:
		return 1 + Size(t.Body)
	default:
		panic(fmt.Sprintf("logic: unknown formula node %T", f))
	}
}

// SatRelation computes the relation of satisfying assignments of f over db:
// a relation whose attributes are f's free variables, containing exactly
// the assignments making f true. Atoms of predicates missing from db's
// vocabulary denote empty relations; arity mismatches are errors.
func SatRelation(f Formula, db *structure.Structure) (*relation.Relation, error) {
	switch t := f.(type) {
	case *Atom:
		return atomRelation(t, db)
	case *And:
		rels := make([]*relation.Relation, 0, len(t.Conjuncts))
		for _, c := range t.Conjuncts {
			r, err := SatRelation(c, db)
			if err != nil {
				return nil, err
			}
			rels = append(rels, r)
		}
		if len(rels) == 0 {
			// Empty conjunction: true, the 0-ary relation with one tuple.
			r := relation.MustNew()
			r.MustAdd(relation.Tuple{})
			return r, nil
		}
		return relation.JoinAll(rels), nil
	case *Exists:
		body, err := SatRelation(t.Body, db)
		if err != nil {
			return nil, err
		}
		free := t.FreeVars()
		if body.Pos(t.Var) < 0 {
			// The quantified variable does not occur: ∃x φ ≡ φ when the
			// domain is nonempty, false otherwise (empty-domain semantics:
			// a quantifier over an empty domain yields false).
			if db.Size() == 0 {
				return relation.New(free...)
			}
			return body, nil
		}
		return body.Project(free...)
	default:
		return nil, fmt.Errorf("logic: unknown formula node %T", f)
	}
}

// Holds reports whether a sentence (no free variables) is true in db.
func Holds(f Formula, db *structure.Structure) (bool, error) {
	if fv := f.FreeVars(); len(fv) != 0 {
		return false, fmt.Errorf("logic: Holds on a formula with free variables %v", fv)
	}
	r, err := SatRelation(f, db)
	if err != nil {
		return false, err
	}
	return !r.Empty(), nil
}

// atomRelation renders one atom as a relation over its distinct variables,
// with equality selection for repeated variables.
func atomRelation(a *Atom, db *structure.Structure) (*relation.Relation, error) {
	var attrs []string
	firstPos := make(map[string]int)
	for i, v := range a.Args {
		if _, seen := firstPos[v]; !seen {
			firstPos[v] = i
			attrs = append(attrs, v)
		}
	}
	out := relation.MustNew(attrs...)
	arity, ok := db.Voc().Arity(a.Pred)
	if !ok {
		return out, nil
	}
	if arity != len(a.Args) {
		return nil, fmt.Errorf("logic: predicate %s has arity %d, used with %d arguments", a.Pred, arity, len(a.Args))
	}
rows:
	for _, row := range db.Rel(a.Pred).Tuples() {
		for i, v := range a.Args {
			if row[i] != row[firstPos[v]] {
				continue rows
			}
		}
		t := make(relation.Tuple, len(attrs))
		for j, v := range attrs {
			t[j] = row[firstPos[v]]
		}
		out.MustAdd(t)
	}
	return out, nil
}

// StructureSentence builds the canonical sentence φ_A of a structure
// (Proposition 2.3): the existential closure of the conjunction of A's
// facts, with one variable per domain element. It is true in B iff there is
// a homomorphism A → B. Note: this naive form uses |A| variables; use
// treewidth.BuildFormula for the (k+1)-variable form of Proposition 6.1.
func StructureSentence(a *structure.Structure) Formula {
	varName := func(i int) string { return fmt.Sprintf("x%d", i) }
	var conj []Formula
	for _, sym := range a.Voc().Symbols() {
		for _, t := range a.Rel(sym.Name).Tuples() {
			args := make([]string, len(t))
			for i, v := range t {
				args[i] = varName(v)
			}
			conj = append(conj, &Atom{Pred: sym.Name, Args: args})
		}
	}
	var f Formula = &And{Conjuncts: conj}
	// Close over the variables that actually occur.
	seen := make(map[string]bool)
	collectVars(f, seen)
	for i := a.Size() - 1; i >= 0; i-- {
		if seen[varName(i)] {
			f = &Exists{Var: varName(i), Body: f}
		}
	}
	return f
}
