package logic

import (
	"math/rand"
	"testing"

	"csdb/internal/csp"
	"csdb/internal/relation"
	"csdb/internal/structure"
)

func TestFreeVarsAndString(t *testing.T) {
	// Ex.(E(x,y) & E(y,x))
	f := &Exists{Var: "x", Body: &And{Conjuncts: []Formula{
		&Atom{Pred: "E", Args: []string{"x", "y"}},
		&Atom{Pred: "E", Args: []string{"y", "x"}},
	}}}
	fv := f.FreeVars()
	if len(fv) != 1 || fv[0] != "y" {
		t.Fatalf("FreeVars = %v", fv)
	}
	if NumVariables(f) != 2 {
		t.Fatalf("NumVariables = %d", NumVariables(f))
	}
	if Size(f) != 4 {
		t.Fatalf("Size = %d", Size(f))
	}
	if f.String() != "Ex.(E(x,y) & E(y,x))" {
		t.Fatalf("String = %q", f.String())
	}
}

func TestSatRelationAtom(t *testing.T) {
	g := structure.NewGraph(3)
	g.MustAddTuple("E", 0, 1)
	g.MustAddTuple("E", 2, 2)
	r, err := SatRelation(&Atom{Pred: "E", Args: []string{"x", "y"}}, g)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("atom relation = %v", r)
	}
	// Repeated variable: loops only.
	loops, err := SatRelation(&Atom{Pred: "E", Args: []string{"x", "x"}}, g)
	if err != nil {
		t.Fatal(err)
	}
	if loops.Len() != 1 || !loops.Contains(relation.Tuple{2}) {
		t.Fatalf("loops = %v", loops)
	}
	// Missing predicate: empty.
	miss, err := SatRelation(&Atom{Pred: "F", Args: []string{"x"}}, g)
	if err != nil || !miss.Empty() {
		t.Fatalf("missing predicate: %v %v", miss, err)
	}
	// Arity mismatch: error.
	if _, err := SatRelation(&Atom{Pred: "E", Args: []string{"x", "y", "z"}}, g); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestEmptyConjunctionIsTrue(t *testing.T) {
	ok, err := Holds(&And{}, structure.NewGraph(2))
	if err != nil || !ok {
		t.Fatalf("empty conjunction: %v %v", ok, err)
	}
}

func TestHoldsRejectsFreeVariables(t *testing.T) {
	if _, err := Holds(&Atom{Pred: "E", Args: []string{"x", "y"}}, structure.NewGraph(2)); err == nil {
		t.Fatal("free variables accepted")
	}
}

func TestVacuousQuantifier(t *testing.T) {
	// Ez.E(x,y) with z not occurring: equivalent to E(x,y) on nonempty
	// domains.
	g := structure.NewGraph(2)
	g.MustAddTuple("E", 0, 1)
	f := &Exists{Var: "z", Body: &Atom{Pred: "E", Args: []string{"x", "y"}}}
	r, err := SatRelation(f, g)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 || !r.Contains(relation.Tuple{0, 1}) {
		t.Fatalf("vacuous quantifier result = %v", r)
	}
}

func TestStructureSentenceMatchesHomomorphism(t *testing.T) {
	// Proposition 2.3 in formula form: φ_A true in B iff hom(A,B).
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 50; trial++ {
		a := randomGraph(rng, 3+rng.Intn(2), 0.5)
		b := randomGraph(rng, 2+rng.Intn(2), 0.5)
		f := StructureSentence(a)
		got, err := Holds(f, b)
		if err != nil {
			t.Fatal(err)
		}
		want := csp.HomomorphismExists(a, b)
		if got != want {
			t.Fatalf("trial %d: Holds=%v hom=%v", trial, got, want)
		}
	}
}

func TestStructureSentenceVariableCount(t *testing.T) {
	c4 := structure.Cycle(4)
	f := StructureSentence(c4)
	if NumVariables(f) != 4 {
		t.Fatalf("NumVariables = %d, want 4", NumVariables(f))
	}
	if len(f.FreeVars()) != 0 {
		t.Fatal("sentence has free variables")
	}
}

// A hand-built 3-variable sentence expressing "there is a homomorphic image
// of C4" — reusing variables: Ex Ey (E(x,y) & Ez(E(y,z) & Ex'(...))) —
// evaluated against cycles.
func TestVariableReuse(t *testing.T) {
	// Ex.Ey.( E(x,y) & Ez.( E(y,z) & Ey.( E(z,y) & ... ) ) ) expressing a
	// walk of length 3; any graph with an edge and no dead ends satisfies it.
	walk3 := &Exists{Var: "x", Body: &Exists{Var: "y", Body: &And{Conjuncts: []Formula{
		&Atom{Pred: "E", Args: []string{"x", "y"}},
		&Exists{Var: "x", Body: &And{Conjuncts: []Formula{
			&Atom{Pred: "E", Args: []string{"y", "x"}},
			&Exists{Var: "y", Body: &Atom{Pred: "E", Args: []string{"x", "y"}}},
		}}},
	}}}}
	if NumVariables(walk3) != 2 {
		t.Fatalf("reused variables counted wrong: %d", NumVariables(walk3))
	}
	ok, err := Holds(walk3, structure.Cycle(5))
	if err != nil || !ok {
		t.Fatalf("walk of length 3 in C5: %v %v", ok, err)
	}
	ok, err = Holds(walk3, structure.NewGraph(3))
	if err != nil || ok {
		t.Fatalf("walk of length 3 in empty graph: %v %v", ok, err)
	}
}

func randomGraph(rng *rand.Rand, n int, p float64) *structure.Structure {
	g := structure.NewGraph(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < p {
				g.MustAddTuple("E", i, j)
			}
		}
	}
	return g
}
