// Package cspio reads and writes CSP instances in the library's simple text
// format and reads DIMACS coloring graphs, for the command-line tools.
//
// Instance format (one directive per line; '#' starts a comment):
//
//	vars 4
//	dom 3
//	names x y z w            # optional variable labels
//	con 0 1 : 0 1 | 1 0      # scope ':' tuples separated by '|'
//	dom_of 2 : 0 2           # optional per-variable domain restriction
//
// DIMACS format: the classic "p edge N M" header with "e u v" lines
// (1-based vertices).
package cspio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"csdb/internal/csp"
	"csdb/internal/graph"
)

// Parse reads an instance in the text format.
func Parse(r io.Reader) (*csp.Instance, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var inst *csp.Instance
	vars, dom := -1, -1
	var names []string
	domains := map[int][]int{}
	type rawCon struct {
		scope []int
		rows  [][]int
	}
	var cons []rawCon
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "vars":
			if len(fields) != 2 {
				return nil, fmt.Errorf("cspio: line %d: vars needs one argument", lineNo)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 0 {
				return nil, fmt.Errorf("cspio: line %d: bad vars %q", lineNo, fields[1])
			}
			vars = v
		case "dom":
			if len(fields) != 2 {
				return nil, fmt.Errorf("cspio: line %d: dom needs one argument", lineNo)
			}
			d, err := strconv.Atoi(fields[1])
			if err != nil || d < 1 {
				return nil, fmt.Errorf("cspio: line %d: bad dom %q", lineNo, fields[1])
			}
			dom = d
		case "names":
			names = fields[1:]
		case "con":
			rest := strings.TrimPrefix(line, "con")
			parts := strings.SplitN(rest, ":", 2)
			if len(parts) != 2 {
				return nil, fmt.Errorf("cspio: line %d: con needs 'scope : tuples'", lineNo)
			}
			scope, err := parseInts(parts[0])
			if err != nil {
				return nil, fmt.Errorf("cspio: line %d: %v", lineNo, err)
			}
			var rows [][]int
			for _, tup := range strings.Split(parts[1], "|") {
				tup = strings.TrimSpace(tup)
				if tup == "" {
					continue
				}
				row, err := parseInts(tup)
				if err != nil {
					return nil, fmt.Errorf("cspio: line %d: %v", lineNo, err)
				}
				if len(row) != len(scope) {
					return nil, fmt.Errorf("cspio: line %d: tuple arity %d for scope of %d", lineNo, len(row), len(scope))
				}
				rows = append(rows, row)
			}
			cons = append(cons, rawCon{scope, rows})
		case "dom_of":
			rest := strings.TrimPrefix(line, "dom_of")
			parts := strings.SplitN(rest, ":", 2)
			if len(parts) != 2 {
				return nil, fmt.Errorf("cspio: line %d: dom_of needs 'var : values'", lineNo)
			}
			vs, err := parseInts(parts[0])
			if err != nil || len(vs) != 1 {
				return nil, fmt.Errorf("cspio: line %d: dom_of needs one variable", lineNo)
			}
			vals, err := parseInts(parts[1])
			if err != nil {
				return nil, fmt.Errorf("cspio: line %d: %v", lineNo, err)
			}
			domains[vs[0]] = vals
		default:
			return nil, fmt.Errorf("cspio: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if vars < 0 || dom < 0 {
		return nil, fmt.Errorf("cspio: missing vars/dom directives")
	}
	inst = csp.NewInstance(vars, dom)
	if names != nil {
		if len(names) != vars {
			return nil, fmt.Errorf("cspio: %d names for %d variables", len(names), vars)
		}
		inst.Names = names
	}
	if len(domains) > 0 {
		inst.Domains = make([][]int, vars)
		for v, d := range domains {
			if v < 0 || v >= vars {
				return nil, fmt.Errorf("cspio: dom_of variable %d out of range", v)
			}
			inst.Domains[v] = d
		}
	}
	for _, c := range cons {
		tab := csp.NewTable(len(c.scope))
		for _, row := range c.rows {
			tab.Add(row)
		}
		if err := inst.AddConstraint(c.scope, tab); err != nil {
			return nil, fmt.Errorf("cspio: %v", err)
		}
	}
	return inst, nil
}

// Format writes an instance in the text format.
func Format(w io.Writer, p *csp.Instance) error {
	if _, err := fmt.Fprintf(w, "vars %d\ndom %d\n", p.Vars, p.Dom); err != nil {
		return err
	}
	if p.Names != nil {
		if _, err := fmt.Fprintf(w, "names %s\n", strings.Join(p.Names, " ")); err != nil {
			return err
		}
	}
	if p.Domains != nil {
		for v, d := range p.Domains {
			if d == nil {
				continue
			}
			if _, err := fmt.Fprintf(w, "dom_of %d : %s\n", v, intsToString(d)); err != nil {
				return err
			}
		}
	}
	for _, con := range p.Constraints {
		rows := make([]string, 0, con.Table.Len())
		for _, row := range con.Table.Tuples() {
			rows = append(rows, intsToString(row))
		}
		if _, err := fmt.Fprintf(w, "con %s : %s\n", intsToString(con.Scope), strings.Join(rows, " | ")); err != nil {
			return err
		}
	}
	return nil
}

// ParseDIMACS reads a DIMACS "edge" graph.
func ParseDIMACS(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var g *graph.Graph
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "p":
			if len(fields) < 3 || fields[1] != "edge" {
				return nil, fmt.Errorf("cspio: bad DIMACS header %q", line)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("cspio: bad vertex count %q", fields[2])
			}
			g = graph.New(n)
		case "e":
			if g == nil {
				return nil, fmt.Errorf("cspio: edge before header")
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("cspio: bad edge line %q", line)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || u < 1 || v < 1 || u > g.N() || v > g.N() {
				return nil, fmt.Errorf("cspio: bad edge %q", line)
			}
			g.AddEdge(u-1, v-1)
		default:
			return nil, fmt.Errorf("cspio: unknown DIMACS line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("cspio: missing DIMACS header")
	}
	return g, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Fields(s) {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty integer list")
	}
	return out, nil
}

func intsToString(s []int) string {
	parts := make([]string, len(s))
	for i, v := range s {
		parts[i] = strconv.Itoa(v)
	}
	return strings.Join(parts, " ")
}
