package cspio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"csdb/internal/csp"
	"csdb/internal/gen"
)

func TestParseBasic(t *testing.T) {
	text := `
# a 2-coloring of a triangle (unsatisfiable)
vars 3
dom 2
names a b c
con 0 1 : 0 1 | 1 0
con 1 2 : 0 1 | 1 0
con 2 0 : 0 1 | 1 0
`
	p, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if p.Vars != 3 || p.Dom != 2 || len(p.Constraints) != 3 {
		t.Fatalf("shape wrong: %+v", p)
	}
	if p.VarName(2) != "c" {
		t.Fatalf("names not read: %q", p.VarName(2))
	}
	if csp.Solve(p, csp.Options{}).Found {
		t.Fatal("triangle 2-colored")
	}
}

func TestParseDomOf(t *testing.T) {
	text := "vars 2\ndom 3\ndom_of 0 : 2\ncon 0 1 : 2 0 | 1 1\n"
	p, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	res := csp.Solve(p, csp.Options{})
	if !res.Found || res.Solution[0] != 2 || res.Solution[1] != 0 {
		t.Fatalf("dom_of ignored: %+v", res)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                             // missing directives
		"vars 2",                       // missing dom
		"vars x\ndom 2",                // bad integer
		"vars 2\ndom 2\ncon 0 1",       // missing tuples
		"vars 2\ndom 2\ncon 0 1 : 0",   // arity mismatch
		"vars 2\ndom 2\nfrob 1",        // unknown directive
		"vars 1\ndom 2\nnames a b",     // wrong name count
		"vars 1\ndom 2\ncon 0 3 : 0 0", // scope out of range... con 0 3 means scope [0,3]
	}
	for _, text := range bad {
		if _, err := Parse(strings.NewReader(text)); err == nil {
			t.Fatalf("accepted %q", text)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		p := gen.ModelB(rng, 3+rng.Intn(3), 2+rng.Intn(3), 0.7, 0.4)
		var buf bytes.Buffer
		if err := Format(&buf, p); err != nil {
			t.Fatal(err)
		}
		q, err := Parse(&buf)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, buf.String())
		}
		if q.Vars != p.Vars || q.Dom != p.Dom || len(q.Constraints) != len(p.Constraints) {
			t.Fatalf("trial %d: round trip changed shape", trial)
		}
		if csp.Solve(p, csp.Options{}).Found != csp.Solve(q, csp.Options{}).Found {
			t.Fatalf("trial %d: round trip changed satisfiability", trial)
		}
	}
}

func TestParseDIMACS(t *testing.T) {
	text := `c sample
p edge 4 3
e 1 2
e 2 3
e 3 4
`
	g, err := ParseDIMACS(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.NumEdges() != 3 || !g.HasEdge(0, 1) {
		t.Fatalf("DIMACS parse wrong: n=%d m=%d", g.N(), g.NumEdges())
	}
	bad := []string{
		"e 1 2",             // edge before header
		"p edge x 3",        // bad count
		"p edge 2 1\ne 1 5", // out of range
		"p edge 2 1\nq 1 2", // unknown line
		"",                  // empty
	}
	for _, b := range bad {
		if _, err := ParseDIMACS(strings.NewReader(b)); err == nil {
			t.Fatalf("accepted %q", b)
		}
	}
}
