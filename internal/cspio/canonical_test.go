package cspio

import (
	"strings"
	"testing"

	"csdb/internal/csp"
)

func parseT(t *testing.T, text string) *csp.Instance {
	t.Helper()
	inst, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return inst
}

// TestCanonicalOrderInsensitive checks that every incidental ordering in the
// text format — constraint order, tuple order, scope column order, dom_of
// value order, duplicate constraints, names — leaves the hash unchanged.
func TestCanonicalOrderInsensitive(t *testing.T) {
	base := parseT(t, `
vars 3
dom 3
dom_of 2 : 0 2
con 0 1 : 0 1 | 1 0 | 2 1
con 1 2 : 0 2 | 2 0
`)
	for name, variant := range map[string]string{
		"constraint order": `
vars 3
dom 3
dom_of 2 : 0 2
con 1 2 : 0 2 | 2 0
con 0 1 : 0 1 | 1 0 | 2 1
`,
		"tuple order": `
vars 3
dom 3
dom_of 2 : 0 2
con 0 1 : 2 1 | 0 1 | 1 0
con 1 2 : 2 0 | 0 2
`,
		"scope column order": `
vars 3
dom 3
dom_of 2 : 0 2
con 1 0 : 1 0 | 0 1 | 1 2
con 2 1 : 2 0 | 0 2
`,
		"dom_of value order and dups": `
vars 3
dom 3
dom_of 2 : 2 0 2
con 0 1 : 0 1 | 1 0 | 2 1
con 1 2 : 0 2 | 2 0
`,
		"duplicate constraint": `
vars 3
dom 3
dom_of 2 : 0 2
con 0 1 : 0 1 | 1 0 | 2 1
con 0 1 : 0 1 | 1 0 | 2 1
con 1 2 : 0 2 | 2 0
`,
		"names ignored": `
vars 3
dom 3
names a b c
dom_of 2 : 0 2
con 0 1 : 0 1 | 1 0 | 2 1
con 1 2 : 0 2 | 2 0
`,
	} {
		inst := parseT(t, variant)
		if got, want := CanonicalHash(inst), CanonicalHash(base); got != want {
			t.Errorf("%s: hash %#x != base %#x\nbase: %q\nvariant: %q",
				name, got, want, Canonical(base), Canonical(inst))
		}
	}
}

// TestCanonicalDiscriminates checks that semantically different instances
// get different encodings (hash collisions aside, the encodings themselves
// must differ).
func TestCanonicalDiscriminates(t *testing.T) {
	base := parseT(t, "vars 2\ndom 2\ncon 0 1 : 0 1 | 1 0\n")
	for name, variant := range map[string]string{
		"extra tuple":      "vars 2\ndom 2\ncon 0 1 : 0 1 | 1 0 | 0 0\n",
		"different scope":  "vars 3\ndom 2\ncon 0 2 : 0 1 | 1 0\n",
		"more vars":        "vars 3\ndom 2\ncon 0 1 : 0 1 | 1 0\n",
		"bigger domain":    "vars 2\ndom 3\ncon 0 1 : 0 1 | 1 0\n",
		"restricted dom":   "vars 2\ndom 2\ndom_of 0 : 0\ncon 0 1 : 0 1 | 1 0\n",
		"extra constraint": "vars 2\ndom 2\ncon 0 1 : 0 1 | 1 0\ncon 0 1 : 0 1\n",
	} {
		inst := parseT(t, variant)
		if string(Canonical(inst)) == string(Canonical(base)) {
			t.Errorf("%s: encoding identical to base: %q", name, Canonical(base))
		}
	}
}

// TestCanonicalScopePermutationKeepsColumns pins the column permutation: a
// non-symmetric table under a reversed scope must canonicalize to the same
// bytes only when the tuples are permuted consistently.
func TestCanonicalScopePermutationKeepsColumns(t *testing.T) {
	// x<y as scope (0,1) with tuples (0,1),(0,2),(1,2).
	a := parseT(t, "vars 2\ndom 3\ncon 0 1 : 0 1 | 0 2 | 1 2\n")
	// Same relation written with scope (1,0): tuples are (y,x).
	b := parseT(t, "vars 2\ndom 3\ncon 1 0 : 1 0 | 2 0 | 2 1\n")
	// A genuinely different relation (x>y) with the same tuple multiset
	// under scope (0,1): must NOT collide.
	c := parseT(t, "vars 2\ndom 3\ncon 0 1 : 1 0 | 2 0 | 2 1\n")
	if CanonicalHash(a) != CanonicalHash(b) {
		t.Errorf("permuted scope changed the hash: %q vs %q", Canonical(a), Canonical(b))
	}
	if string(Canonical(a)) == string(Canonical(c)) {
		t.Errorf("transposed relation collided: %q", Canonical(a))
	}
}

// TestCanonicalHashStable guards the encoding against accidental format
// drift: the bytes are a cache key, so changing them silently invalidates
// warm caches across daemon restarts within one build only — but a change
// should at least be deliberate.
func TestCanonicalHashStable(t *testing.T) {
	inst := parseT(t, "vars 2\ndom 2\ncon 0 1 : 0 1 | 1 0\n")
	want := "2 2 C0 1 :0 1 |1 0 |;"
	if got := string(Canonical(inst)); got != want {
		t.Errorf("canonical encoding drifted: got %q want %q", got, want)
	}
}
