package cspio

import (
	"hash/fnv"
	"sort"
	"strconv"

	"csdb/internal/csp"
)

// Canonical instance encoding: a byte string that identifies a CSP instance
// up to the orderings that do not change its meaning, so that syntactically
// different but semantically identical submissions hash to the same cache
// key. Two instances get the same encoding when they differ only in
//
//   - the order constraints are listed,
//   - the order of tuples within a constraint's table,
//   - the column order of a constraint's scope (tuples are permuted along
//     with the scope),
//   - the order (and multiplicity) of values in a dom_of restriction,
//   - duplicate constraints, and
//   - variable labels (names are presentation, not semantics).
//
// The encoding is conservative: it never identifies two instances with
// different solution sets, but it does not try to detect deeper equivalences
// (variable renamings, symmetric tables under duplicate scope variables).

// Canonical returns the canonical byte encoding of p.
func Canonical(p *csp.Instance) []byte {
	out := make([]byte, 0, 256)
	out = appendInt(out, p.Vars)
	out = appendInt(out, p.Dom)

	// Per-variable domain restrictions, in variable-index order with values
	// sorted and deduplicated. A nil entry (full domain) is skipped, so an
	// instance with no Domains slice matches one with all-nil entries.
	if p.Domains != nil {
		for v := 0; v < len(p.Domains); v++ {
			d := p.Domains[v]
			if d == nil {
				continue
			}
			vals := append([]int(nil), d...)
			sort.Ints(vals)
			vals = dedupSortedInts(vals)
			out = append(out, 'D')
			out = appendInt(out, v)
			for _, val := range vals {
				out = appendInt(out, val)
			}
			out = append(out, ';')
		}
	}

	// Constraints: canonicalize each one independently, then sort the
	// encodings and drop exact duplicates (a repeated constraint is a no-op).
	encs := make([]string, 0, len(p.Constraints))
	for _, c := range p.Constraints {
		encs = append(encs, string(canonicalConstraint(c)))
	}
	sort.Strings(encs)
	prev := ""
	for i, e := range encs {
		if i > 0 && e == prev {
			continue
		}
		prev = e
		out = append(out, e...)
	}
	return out
}

// CanonicalHash returns the 64-bit FNV-1a hash of Canonical(p).
func CanonicalHash(p *csp.Instance) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(Canonical(p))
	return h.Sum64()
}

// canonicalConstraint encodes one constraint with its scope columns in
// ascending variable order (a stable sort, so duplicate scope variables keep
// their relative column order) and its tuples permuted accordingly, sorted,
// and deduplicated.
func canonicalConstraint(c *csp.Constraint) []byte {
	k := len(c.Scope)
	perm := make([]int, k)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return c.Scope[perm[a]] < c.Scope[perm[b]] })

	rows := make([]string, 0, c.Table.Len())
	var buf []byte
	for _, row := range c.Table.Tuples() {
		buf = buf[:0]
		for _, col := range perm {
			buf = appendInt(buf, row[col])
		}
		rows = append(rows, string(buf))
	}
	sort.Strings(rows)

	enc := make([]byte, 0, 16+8*len(rows))
	enc = append(enc, 'C')
	for _, col := range perm {
		enc = appendInt(enc, c.Scope[col])
	}
	enc = append(enc, ':')
	prev := ""
	for i, r := range rows {
		if i > 0 && r == prev {
			continue
		}
		prev = r
		enc = append(enc, r...)
		enc = append(enc, '|')
	}
	enc = append(enc, ';')
	return enc
}

func appendInt(b []byte, v int) []byte {
	b = strconv.AppendInt(b, int64(v), 10)
	return append(b, ' ')
}

func dedupSortedInts(s []int) []int {
	out := s[:0]
	for i, v := range s {
		if i > 0 && v == s[i-1] {
			continue
		}
		out = append(out, v)
	}
	return out
}
