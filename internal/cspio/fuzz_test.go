package cspio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseInstance drives the text-format parser with arbitrary bytes. The
// properties: Parse never panics; and whenever it accepts the input, the
// instance survives a Format/Parse round trip — Format's output parses, and
// reformatting that parse reproduces it byte for byte (Format is
// deterministic, so format∘parse is idempotent).
func FuzzParseInstance(f *testing.F) {
	f.Add("vars 2\ndom 2\ncon 0 1 : 0 1 | 1 0\n")
	f.Add("vars 4\ndom 3\nnames x y z w\ncon 0 1 : 0 1 | 1 0\ndom_of 2 : 0 2\n")
	f.Add("# comment\nvars 1\ndom 1\n")
	f.Add("vars 0\ndom 0\n")
	f.Add("vars 2\ndom 2\ncon 0 1 :\n")
	f.Add("con 0 1 : 0 1\nvars 2\ndom 2\n")
	f.Add("vars -1\ndom 2\n")
	f.Add("vars 2\ndom 2\ncon 0 0 : 0 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		p, err := Parse(strings.NewReader(input))
		if err != nil {
			return // rejected input: the only requirement is no panic
		}
		var out1 bytes.Buffer
		if err := Format(&out1, p); err != nil {
			t.Fatalf("Format failed on accepted instance: %v\ninput: %q", err, input)
		}
		q, err := Parse(bytes.NewReader(out1.Bytes()))
		if err != nil {
			t.Fatalf("Format output does not re-parse: %v\nformatted: %q", err, out1.String())
		}
		if q.Vars != p.Vars || q.Dom != p.Dom || len(q.Constraints) != len(p.Constraints) {
			t.Fatalf("round trip changed shape: vars %d->%d dom %d->%d cons %d->%d\ninput: %q",
				p.Vars, q.Vars, p.Dom, q.Dom, len(p.Constraints), len(q.Constraints), input)
		}
		var out2 bytes.Buffer
		if err := Format(&out2, q); err != nil {
			t.Fatalf("reformat failed: %v", err)
		}
		if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
			t.Fatalf("format not idempotent:\nfirst:  %q\nsecond: %q", out1.String(), out2.String())
		}
	})
}
