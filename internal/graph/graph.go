// Package graph implements simple undirected graphs with the handful of
// polynomial-time algorithms the paper's dichotomy results lean on:
// bipartiteness / 2-coloring (the tractable side of the Hell–Nešetřil
// theorem, Section 3), odd-cycle detection (the 4-Datalog example of
// Section 4), and connected components.
package graph

import "fmt"

// Graph is a simple undirected graph on vertices 0..N-1. Self-loops are
// permitted (a loop makes every H-coloring problem trivial) but parallel
// edges are not.
type Graph struct {
	n   int
	adj []map[int]struct{}
}

// New returns an empty graph with n vertices.
func New(n int) *Graph {
	g := &Graph{n: n, adj: make([]map[int]struct{}, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int]struct{})
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// AddEdge inserts the undirected edge {u,v}. It panics if a vertex is out of
// range, since that is a programming error rather than an input condition.
func (g *Graph) AddEdge(u, v int) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) outside [0,%d)", u, v, g.n))
	}
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
}

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	_, ok := g.adj[u][v]
	return ok
}

// HasLoop reports whether any vertex has a self-loop.
func (g *Graph) HasLoop() bool {
	for v := 0; v < g.n; v++ {
		if g.HasEdge(v, v) {
			return true
		}
	}
	return false
}

// Degree returns the degree of v (loops count once).
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the neighbors of v in unspecified order.
func (g *Graph) Neighbors(v int) []int {
	out := make([]int, 0, len(g.adj[v]))
	for u := range g.adj[v] {
		out = append(out, u)
	}
	return out
}

// NumEdges returns the number of undirected edges (loops count once).
func (g *Graph) NumEdges() int {
	total := 0
	for v := 0; v < g.n; v++ {
		for u := range g.adj[v] {
			if u >= v {
				total++
			}
		}
	}
	return total
}

// Edges returns all undirected edges as (u,v) pairs with u <= v.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.NumEdges())
	for v := 0; v < g.n; v++ {
		for u := range g.adj[v] {
			if u >= v {
				out = append(out, [2]int{v, u})
			}
		}
	}
	return out
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for v := 0; v < g.n; v++ {
		for u := range g.adj[v] {
			c.adj[v][u] = struct{}{}
		}
	}
	return c
}

// TwoColor attempts to 2-color the graph by breadth-first search. It returns
// the coloring (values 0/1) and true on success, or nil and false when the
// graph has an odd cycle (or a loop).
func (g *Graph) TwoColor() ([]int, bool) {
	color := make([]int, g.n)
	for i := range color {
		color[i] = -1
	}
	queue := make([]int, 0, g.n)
	for start := 0; start < g.n; start++ {
		if color[start] >= 0 {
			continue
		}
		color[start] = 0
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for u := range g.adj[v] {
				if u == v {
					return nil, false // loop
				}
				if color[u] < 0 {
					color[u] = 1 - color[v]
					queue = append(queue, u)
				} else if color[u] == color[v] {
					return nil, false
				}
			}
		}
	}
	return color, true
}

// IsBipartite reports whether the graph is 2-colorable.
func (g *Graph) IsBipartite() bool {
	_, ok := g.TwoColor()
	return ok
}

// HasOddCycle reports whether the graph contains an odd cycle; by König's
// characterization this is exactly non-bipartiteness.
func (g *Graph) HasOddCycle() bool { return !g.IsBipartite() }

// Components returns the connected components as vertex lists.
func (g *Graph) Components() [][]int {
	comp := make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	var out [][]int
	for start := 0; start < g.n; start++ {
		if comp[start] >= 0 {
			continue
		}
		id := len(out)
		comp[start] = id
		stack := []int{start}
		var members []int
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, v)
			for u := range g.adj[v] {
				if comp[u] < 0 {
					comp[u] = id
					stack = append(stack, u)
				}
			}
		}
		out = append(out, members)
	}
	return out
}

// --- Generators ---

// Cycle returns the n-cycle (n >= 3).
func Cycle(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

// Path returns the path with n vertices.
func Path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Clique returns K_n.
func Clique(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// Grid returns the rows x cols grid graph.
func Grid(rows, cols int) *Graph {
	g := New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// CompleteBipartite returns K_{m,n}.
func CompleteBipartite(m, n int) *Graph {
	g := New(m + n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			g.AddEdge(i, m+j)
		}
	}
	return g
}

// Petersen returns the Petersen graph: 3-chromatic, girth 5 — a classic
// 3-coloring example.
func Petersen() *Graph {
	g := New(10)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, (i+1)%5)     // outer 5-cycle
		g.AddEdge(i, i+5)         // spokes
		g.AddEdge(i+5, (i+2)%5+5) // inner pentagram
	}
	return g
}
