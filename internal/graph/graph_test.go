package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge not symmetric")
	}
	if g.HasEdge(0, 2) || g.HasEdge(0, 9) || g.HasEdge(-1, 0) {
		t.Fatal("phantom edge")
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	g.AddEdge(0, 1) // parallel edge ignored
	if g.NumEdges() != 2 {
		t.Fatal("parallel edge counted")
	}
	if g.Degree(1) != 2 {
		t.Fatalf("Degree(1) = %d", g.Degree(1))
	}
}

func TestLoops(t *testing.T) {
	g := New(2)
	if g.HasLoop() {
		t.Fatal("loop in empty graph")
	}
	g.AddEdge(1, 1)
	if !g.HasLoop() {
		t.Fatal("loop not detected")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("loop edge count = %d, want 1", g.NumEdges())
	}
	if g.IsBipartite() {
		t.Fatal("graph with loop reported bipartite")
	}
}

func TestAddEdgePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range edge")
		}
	}()
	New(2).AddEdge(0, 2)
}

func TestTwoColorOnKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want bool
	}{
		{"even cycle", Cycle(8), true},
		{"odd cycle", Cycle(7), false},
		{"path", Path(9), true},
		{"K2", Clique(2), true},
		{"K3", Clique(3), false},
		{"grid", Grid(4, 5), true},
		{"complete bipartite", CompleteBipartite(3, 4), true},
		{"petersen", Petersen(), false},
		{"empty", New(5), true},
	}
	for _, c := range cases {
		col, ok := c.g.TwoColor()
		if ok != c.want {
			t.Fatalf("%s: bipartite = %v, want %v", c.name, ok, c.want)
		}
		if ok {
			for _, e := range c.g.Edges() {
				if col[e[0]] == col[e[1]] {
					t.Fatalf("%s: invalid 2-coloring at edge %v", c.name, e)
				}
			}
		}
		if c.g.HasOddCycle() == c.want {
			t.Fatalf("%s: HasOddCycle inconsistent with bipartiteness", c.name)
		}
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	sizes := map[int]int{}
	for _, c := range comps {
		sizes[len(c)]++
	}
	if sizes[2] != 1 || sizes[3] != 1 || sizes[1] != 1 {
		t.Fatalf("component sizes wrong: %v", sizes)
	}
}

func TestGeneratorShapes(t *testing.T) {
	if Clique(5).NumEdges() != 10 {
		t.Fatal("K5 edge count")
	}
	if Cycle(6).NumEdges() != 6 {
		t.Fatal("C6 edge count")
	}
	if Grid(3, 4).NumEdges() != 3*3+2*4 {
		t.Fatal("grid edge count")
	}
	p := Petersen()
	if p.NumEdges() != 15 {
		t.Fatalf("petersen edges = %d, want 15", p.NumEdges())
	}
	for v := 0; v < 10; v++ {
		if p.Degree(v) != 3 {
			t.Fatalf("petersen degree(%d) = %d, want 3", v, p.Degree(v))
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := Cycle(4)
	c := g.Clone()
	c.AddEdge(0, 2)
	if g.HasEdge(0, 2) {
		t.Fatal("clone shares adjacency")
	}
}

// Property: a random bipartite-by-construction graph is always 2-colorable,
// and adding an edge inside one part of an odd structure breaks it exactly
// when it creates an odd cycle (checked against brute force).
func TestBipartiteByConstructionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 2+rng.Intn(4), 2+rng.Intn(4)
		g := New(m + n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.5 {
					g.AddEdge(i, m+j)
				}
			}
		}
		return g.IsBipartite()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: TwoColor agrees with brute-force 2-colorability on small graphs.
func TestTwoColorAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		g := New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.35 {
					g.AddEdge(i, j)
				}
			}
		}
		want := false
	assign:
		for mask := 0; mask < 1<<n; mask++ {
			for _, e := range g.Edges() {
				if (mask>>e[0])&1 == (mask>>e[1])&1 {
					continue assign
				}
			}
			want = true
			break
		}
		if g.IsBipartite() != want {
			t.Fatalf("trial %d (n=%d): IsBipartite = %v, brute force = %v", trial, n, g.IsBipartite(), want)
		}
	}
}
