package digraph

import (
	"math/rand"
	"testing"

	"csdb/internal/csp"
	"csdb/internal/structure"
)

func TestEncodeShape(t *testing.T) {
	// One binary symbol: L = 2, gadgets have L+3 = 5 interior vertices.
	a := structure.NewGraph(2)
	a.MustAddTuple("E", 0, 1)
	enc, err := Encode(a)
	if err != nil {
		t.Fatal(err)
	}
	// 2 elements + 1 tuple + 2 gadgets * 5 interiors = 13 vertices.
	if enc.Graph.Size() != 13 {
		t.Fatalf("encoding size = %d, want 13", enc.Graph.Size())
	}
	// Balanced: every edge raises the level by one.
	for _, e := range enc.Graph.Rel("E").Tuples() {
		if enc.Levels[e[1]] != enc.Levels[e[0]]+1 {
			t.Fatalf("edge (%d,%d) levels %d -> %d", e[0], e[1], enc.Levels[e[0]], enc.Levels[e[1]])
		}
	}
	// Element vertices at the top level L+2 = 4.
	for _, v := range enc.Element {
		if enc.Levels[v] != 4 {
			t.Fatalf("element vertex at level %d", enc.Levels[v])
		}
	}
	if _, err := Encode(structure.MustNew(structure.MustVocabulary(), 1)); err == nil {
		t.Fatal("empty vocabulary accepted")
	}
}

func TestExtendHomomorphism(t *testing.T) {
	a, b := structure.Cycle(4), structure.Clique(2)
	h := []int{0, 1, 0, 1}
	phi, err := ExtendHomomorphism(a, b, h)
	if err != nil {
		t.Fatal(err)
	}
	encA, encB, err := EncodePair(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !structure.IsHomomorphism(encA.Graph, encB.Graph, phi) {
		t.Fatal("lifted map is not a homomorphism")
	}
	// Restricting recovers h on elements.
	back, err := RestrictHomomorphism(a, encA, encB, phi)
	if err != nil {
		t.Fatal(err)
	}
	for i := range h {
		if back[i] != h[i] {
			t.Fatalf("restriction differs at %d: %d vs %d", i, back[i], h[i])
		}
	}
	// Non-homomorphisms are rejected.
	if _, err := ExtendHomomorphism(a, b, []int{0, 0, 0, 0}); err == nil {
		t.Fatal("non-homomorphism lifted")
	}
}

// The reduction's defining property: hom(A,B) iff hom(D(A), D(B)), checked
// against the direct solver on graphs (the paper's own template class).
func TestReductionOnGraphs(t *testing.T) {
	cases := []struct {
		name string
		a, b *structure.Structure
	}{
		{"C4 vs K2", structure.Cycle(4), structure.Clique(2)},
		{"C3 vs K2", structure.Cycle(3), structure.Clique(2)},
		{"C5 vs K3", structure.Cycle(5), structure.Clique(3)},
		{"K3 vs C3", structure.Clique(3), structure.Cycle(3)},
		{"P3 vs P2", structure.Path(3), structure.Path(2)},
	}
	for _, c := range cases {
		direct := csp.HomomorphismExists(c.a, c.b)
		encA, encB, err := EncodePair(c.a, c.b)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		viaDigraph := csp.HomomorphismExists(encA.Graph, encB.Graph)
		if direct != viaDigraph {
			t.Fatalf("%s: direct=%v digraph=%v", c.name, direct, viaDigraph)
		}
	}
}

// The same equivalence over a mixed vocabulary (unary + binary + ternary):
// the reduction carries arbitrary structures, and a digraph homomorphism
// restricts to a structure homomorphism.
func TestReductionOnRandomStructures(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	voc := structure.MustVocabulary(
		structure.Symbol{Name: "R", Arity: 2},
		structure.Symbol{Name: "U", Arity: 1},
		structure.Symbol{Name: "T", Arity: 3},
	)
	randomStructure := func(n int, p float64) *structure.Structure {
		s := structure.MustNew(voc, n)
		for i := 0; i < n; i++ {
			if rng.Float64() < p {
				s.MustAddTuple("U", i)
			}
			for j := 0; j < n; j++ {
				if rng.Float64() < p {
					s.MustAddTuple("R", i, j)
				}
				if rng.Float64() < p/2 {
					s.MustAddTuple("T", i, j, rng.Intn(n))
				}
			}
		}
		return s
	}
	for trial := 0; trial < 15; trial++ {
		a := randomStructure(2+rng.Intn(2), 0.4)
		b := randomStructure(2+rng.Intn(2), 0.5)
		direct := csp.HomomorphismExists(a, b)
		encA, encB, err := EncodePair(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		phi, viaDigraph := csp.FindHomomorphism(encA.Graph, encB.Graph)
		if direct != viaDigraph {
			t.Fatalf("trial %d: direct=%v digraph=%v (|D(A)|=%d |D(B)|=%d)",
				trial, direct, viaDigraph, encA.Graph.Size(), encB.Graph.Size())
		}
		if viaDigraph {
			h, err := RestrictHomomorphism(a, encA, encB, phi)
			if err != nil {
				t.Fatal(err)
			}
			if !structure.IsHomomorphism(a, b, h) {
				t.Fatalf("trial %d: restricted map is not a homomorphism", trial)
			}
		}
	}
}

func TestEncodePairVocabularyMismatch(t *testing.T) {
	a := structure.Cycle(3)
	b := structure.MustNew(structure.MustVocabulary(structure.Symbol{Name: "F", Arity: 2}), 2)
	if _, _, err := EncodePair(a, b); err == nil {
		t.Fatal("vocabulary mismatch accepted")
	}
}

// Isolated elements are unconstrained on both sides: encoding preserves the
// equivalence.
func TestReductionWithIsolatedElements(t *testing.T) {
	a := structure.NewGraph(3)
	a.MustAddTuple("E", 0, 1) // element 2 isolated
	b := structure.NewGraph(2)
	b.MustAddTuple("E", 0, 1)
	direct := csp.HomomorphismExists(a, b)
	encA, encB, err := EncodePair(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if via := csp.HomomorphismExists(encA.Graph, encB.Graph); via != direct {
		t.Fatalf("direct=%v digraph=%v", direct, via)
	}
}
