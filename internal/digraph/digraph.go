// Package digraph implements a reduction from the homomorphism problem over
// arbitrary relational structures to the homomorphism problem over directed
// graphs — the fact, due to Feder and Vardi and noted after Corollary 7.4
// of the paper, that "constraint-satisfaction problems over directed graphs
// are just as hard as general constraint-satisfaction problems". It
// justifies Section 7's restriction of constraint templates to digraphs.
//
// # Construction
//
// Fix a vocabulary σ and enumerate its positions: position p = 1..L ranges
// over all (symbol, argument-index) pairs, in sorted symbol order. The
// encoding D(X) of a σ-structure X is a digraph with
//
//   - an element vertex for every element of X, at level L+2;
//   - a tuple vertex for every tuple of every relation, at level 0;
//   - for the i-th position of a tuple t (with global position index p), an
//     oriented path from the tuple vertex to the element vertex of t[i]
//     with the shape  forward^(1+p) backward forward^(L+2-p):  it ascends
//     to a peak at level 1+p, dips one level, then ascends to L+2.
//
// Every edge increases the level by exactly one, so D(X) is a *balanced*
// digraph: any homomorphism between encodings shifts levels by a constant
// per component, and components containing a tuple span the full level
// range, forcing the shift to zero. Level preservation pins element
// vertices to element vertices and tuple vertices to tuple vertices, and
// the peak/dip shape — peaks have out-degree zero — forces each gadget path
// onto a gadget path of the *same* position index. Unwinding definitions,
// homomorphisms D(A) → D(B) restricted to element vertices are exactly the
// homomorphisms A → B (plus arbitrary images for isolated elements, which
// are unconstrained on both sides).
package digraph

import (
	"fmt"
	"sort"
	"strconv"

	"csdb/internal/structure"
)

// Encoding is the digraph encoding of a structure, with the bookkeeping
// needed to read homomorphisms back.
type Encoding struct {
	// Graph is the encoding digraph, over the vocabulary {E/2}.
	Graph *structure.Structure
	// Element[i] is the vertex of element i of the source structure.
	Element []int
	// Levels[v] is the level of vertex v (element vertices sit at the top).
	Levels []int
}

// positions enumerates the (symbol, index) pairs of a vocabulary in sorted
// symbol order, returning the per-symbol starting offsets and the total L.
func positions(voc *structure.Vocabulary) (offset map[string]int, total int) {
	syms := append([]structure.Symbol(nil), voc.Symbols()...)
	sort.Slice(syms, func(i, j int) bool { return syms[i].Name < syms[j].Name })
	offset = make(map[string]int, len(syms))
	p := 0
	for _, s := range syms {
		offset[s.Name] = p
		p += s.Arity
	}
	return offset, p
}

// Encode builds the digraph encoding of x. Structures to be compared must
// share a vocabulary; the position enumeration is canonical (sorted by
// symbol name), so encodings of like-vocabulary structures are compatible.
func Encode(x *structure.Structure) (*Encoding, error) {
	if x.Voc().Len() == 0 {
		return nil, fmt.Errorf("digraph: empty vocabulary")
	}
	offset, L := positions(x.Voc())

	// Count vertices: elements, tuples, and (L+3) interior vertices per
	// gadget path (a path of L+4 edges has L+3 interior vertices).
	nElems := x.Size()
	nTuples := 0
	nGadgets := 0
	for _, sym := range x.Voc().Symbols() {
		cnt := x.Rel(sym.Name).Len()
		nTuples += cnt
		nGadgets += cnt * sym.Arity
	}
	interiorPer := L + 3
	n := nElems + nTuples + nGadgets*interiorPer

	g, err := structure.New(structure.GraphVoc(), n)
	if err != nil {
		return nil, err
	}
	enc := &Encoding{Graph: g, Element: make([]int, nElems), Levels: make([]int, n)}
	topLevel := L + 2

	next := 0
	alloc := func() int {
		v := next
		next++
		return v
	}
	for i := 0; i < nElems; i++ {
		v := alloc()
		enc.Element[i] = v
		enc.Levels[v] = topLevel
	}

	addGadget := func(tupleVertex, elemVertex, p int) error {
		// Vertex sequence z0..z_{L+4} with z0 = tuple vertex and
		// z_{L+4} = element vertex; edge s is forward except step 2+p,
		// which is backward (an edge from z_{s} to z_{s-1}).
		prev := tupleVertex
		level := 0
		for s := 1; s <= L+4; s++ {
			var cur int
			if s == L+4 {
				cur = elemVertex
			} else {
				cur = alloc()
			}
			if s == 2+p {
				// Backward edge: cur sits one level below prev.
				level--
				enc.Levels[cur] = level
				if err := g.AddTuple("E", cur, prev); err != nil {
					return err
				}
			} else {
				level++
				enc.Levels[cur] = level
				if err := g.AddTuple("E", prev, cur); err != nil {
					return err
				}
			}
			prev = cur
		}
		if level != topLevel {
			return fmt.Errorf("digraph: internal error: gadget ends at level %d, want %d", level, topLevel)
		}
		return nil
	}

	for _, sym := range x.Voc().Symbols() {
		base := offset[sym.Name]
		for _, t := range x.Rel(sym.Name).Tuples() {
			w := alloc()
			enc.Levels[w] = 0
			for i, a := range t {
				p := base + i + 1 // positions are 1-based
				if err := addGadget(w, enc.Element[a], p); err != nil {
					return nil, err
				}
			}
		}
	}
	if next != n {
		return nil, fmt.Errorf("digraph: internal error: allocated %d of %d vertices", next, n)
	}
	return enc, nil
}

// EncodePair encodes two like-vocabulary structures; by the reduction,
// hom(A, B) holds iff hom(EncodePair.A.Graph, EncodePair.B.Graph) holds.
func EncodePair(a, b *structure.Structure) (encA, encB *Encoding, err error) {
	if !a.Voc().Equal(b.Voc()) {
		return nil, nil, fmt.Errorf("digraph: structures have different vocabularies")
	}
	encA, err = Encode(a)
	if err != nil {
		return nil, nil, err
	}
	encB, err = Encode(b)
	if err != nil {
		return nil, nil, err
	}
	return encA, encB, nil
}

// ExtendHomomorphism lifts a homomorphism h: A → B to the encodings,
// mapping element vertices via h, each tuple vertex to the vertex of the
// image tuple, and gadget interiors along the corresponding image gadget.
// It returns the vertex map, or an error if h is not a homomorphism.
func ExtendHomomorphism(a, b *structure.Structure, h []int) ([]int, error) {
	if !structure.IsHomomorphism(a, b, h) {
		return nil, fmt.Errorf("digraph: not a homomorphism")
	}
	encA, err := Encode(a)
	if err != nil {
		return nil, err
	}
	encB, err := Encode(b)
	if err != nil {
		return nil, err
	}
	// Rebuild the deterministic allocation order of both encodings in
	// lockstep: the vertex layout of Encode is element vertices first, then
	// per symbol (insertion order), per tuple, one tuple vertex followed by
	// arity gadget paths of L+2 interior vertices each.
	_, L := positions(a.Voc())
	interiorPer := L + 3

	// Index the tuple layout of B: for symbol s, map tuple key to its
	// vertex block start.
	type block struct{ tupleVertex int }
	bBlocks := make(map[string]map[string]block)
	cursor := b.Size()
	for _, sym := range b.Voc().Symbols() {
		m := make(map[string]block)
		for _, t := range b.Rel(sym.Name).Tuples() {
			m[key(t)] = block{tupleVertex: cursor}
			cursor += 1 + sym.Arity*interiorPer
		}
		bBlocks[sym.Name] = m
	}

	out := make([]int, encA.Graph.Size())
	for i := range out {
		out[i] = -1
	}
	for i, v := range encA.Element {
		out[v] = encB.Element[h[i]]
	}
	cursorA := a.Size()
	img := make([]int, 8)
	for _, sym := range a.Voc().Symbols() {
		for _, t := range a.Rel(sym.Name).Tuples() {
			it := img[:len(t)]
			for i, v := range t {
				it[i] = h[v]
			}
			bb, ok := bBlocks[sym.Name][key(it)]
			if !ok {
				return nil, fmt.Errorf("digraph: image tuple missing (internal error)")
			}
			// Tuple vertex.
			out[cursorA] = bb.tupleVertex
			cursorA++
			// Gadget interiors, position by position, in lockstep.
			for i := 0; i < len(t); i++ {
				for s := 0; s < interiorPer; s++ {
					out[cursorA] = bb.tupleVertex + 1 + i*interiorPer + s
					cursorA++
				}
			}
		}
	}
	if !structure.IsHomomorphism(encA.Graph, encB.Graph, out) {
		return nil, fmt.Errorf("digraph: lifted map is not a homomorphism (internal error)")
	}
	return out, nil
}

func key(t []int) string {
	b := make([]byte, 0, len(t)*4)
	for _, v := range t {
		b = strconv.AppendInt(b, int64(v), 10)
		b = append(b, ',')
	}
	return string(b)
}

// RestrictHomomorphism reads a structure-level map off a digraph
// homomorphism between encodings: element i of A maps to the element of B
// whose vertex is the image of A's element vertex. Isolated elements of A
// (whose vertices are unconstrained and may land anywhere) are mapped to
// element 0 of B when their image is not an element vertex.
func RestrictHomomorphism(a *structure.Structure, encA, encB *Encoding, phi []int) ([]int, error) {
	if len(phi) != encA.Graph.Size() {
		return nil, fmt.Errorf("digraph: map has wrong size")
	}
	// Invert B's element vertex table.
	elemOf := make(map[int]int, len(encB.Element))
	for i, v := range encB.Element {
		elemOf[v] = i
	}
	h := make([]int, a.Size())
	for i, v := range encA.Element {
		if e, ok := elemOf[phi[v]]; ok {
			h[i] = e
		} else {
			h[i] = 0 // isolated element: unconstrained
		}
	}
	return h, nil
}
