// Package dispatch routes CSP instances to provably polynomial-time solvers
// by consulting their structure first — the paper's central advice. An
// Analyzer classifies each instance along the tractability lines the
// library implements:
//
//	tree      tree-shaped binary CSP        → directional arc consistency
//	                                           (Freuder; width-1 of Thm 6.2)
//	schaefer  Boolean template in a Schaefer
//	          class                          → dedicated dichotomy solver
//	acyclic   α-acyclic constraint
//	          hypergraph (GYO)               → Yannakakis full reducer
//	width     primal-graph tree decomposition
//	          of width ≤ budget              → decomposition DP (Thm 6.2)
//	hard      none of the above              → csp.Portfolio
//
// Classification verdicts and their computed witnesses (join trees, tree
// decompositions) are cached in an LRU keyed on cspio.CanonicalHash, so
// repeat structure is classified for free. The canonical hash is
// insensitive to constraint order while the cached witnesses are indexed by
// constraint position, so a cached witness is always revalidated against
// the live instance and recomputed when it does not fit — a cache hit can
// therefore change the route's cost, never its correctness. Every SAT
// answer from a routed solver is verified against the instance, and any
// routed-solver error falls back to the portfolio, so misclassification
// cannot corrupt a verdict.
package dispatch

import (
	"context"
	"fmt"
	"time"

	"csdb/internal/consistency"
	"csdb/internal/csp"
	"csdb/internal/cspio"
	"csdb/internal/hypergraph"
	"csdb/internal/obs"
	"csdb/internal/schaefer"
	"csdb/internal/serve"
	"csdb/internal/treewidth"
)

// Per-class routing counters, the fallback counter the differential gate
// asserts on (every portfolio invocation, hard-class or defensive), and the
// cache effectiveness counters.
var (
	obsClassTree     = obs.NewCounter("dispatch.class.tree")
	obsClassSchaefer = obs.NewCounter("dispatch.class.schaefer")
	obsClassAcyclic  = obs.NewCounter("dispatch.class.acyclic")
	obsClassWidth    = obs.NewCounter("dispatch.class.width")
	obsClassHard     = obs.NewCounter("dispatch.class.hard")
	obsFallback      = obs.NewCounter("dispatch.fallback")
	obsReroute       = obs.NewCounter("dispatch.reroute")
	obsCacheHits     = obs.NewCounter("dispatch.cache.hits")
	obsCacheStale    = obs.NewCounter("dispatch.cache.stale")
	// PR-8 labeled telemetry: the same routing verdicts as one vector (so a
	// scrape sees the class mix without string-prefix games), classification
	// wall clock per class (routing cost is the dispatcher's overhead story),
	// and the reroute counter labeled by the class that mis-promised.
	obsClassVec   = obs.NewCounterVec("dispatch.class", "class")
	obsClassifyNs = obs.NewHistogramVec("dispatch.classify_ns", "class")
	obsRerouteVec = obs.NewCounterVec("dispatch.reroute.class", "class")
)

// Class is the structural class the analyzer assigns to an instance.
type Class int

const (
	// Tree: binary constraints whose primal graph is a forest.
	Tree Class = iota
	// Schaefer: Boolean template inside one of Schaefer's six classes.
	Schaefer
	// Acyclic: α-acyclic constraint hypergraph (GYO reduces it away).
	Acyclic
	// BoundedWidth: a heuristic tree decomposition of the primal graph
	// within the analyzer's width budget was found.
	BoundedWidth
	// Hard: no polynomial witness found; only this class may reach the
	// portfolio.
	Hard
)

func (c Class) String() string {
	switch c {
	case Tree:
		return "tree"
	case Schaefer:
		return "schaefer"
	case Acyclic:
		return "acyclic"
	case BoundedWidth:
		return "width"
	case Hard:
		return "hard"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// label returns the class's metric label value. Unlike String it never
// formats: every return is a literal, which is what lets csplint's obslabel
// analyzer prove the label set is closed.
func (c Class) label() string {
	switch c {
	case Tree:
		return "tree"
	case Schaefer:
		return "schaefer"
	case Acyclic:
		return "acyclic"
	case BoundedWidth:
		return "width"
	}
	return "hard"
}

func (c Class) counter() *obs.Counter {
	switch c {
	case Tree:
		return obsClassTree
	case Schaefer:
		return obsClassSchaefer
	case Acyclic:
		return obsClassAcyclic
	case BoundedWidth:
		return obsClassWidth
	}
	return obsClassHard
}

// Classification is a class verdict plus the witness that makes the routed
// solver applicable: a join tree for Acyclic, a tree decomposition (and its
// width) for BoundedWidth. Tree, Schaefer and Hard carry no witness — their
// routes re-derive everything they need from the instance.
type Classification struct {
	Class    Class
	Width    int
	JoinTree *hypergraph.JoinTree
	Decomp   *treewidth.Decomposition
}

// Default analyzer knobs.
const (
	// DefaultWidthBudget is the largest witnessed primal-graph width routed
	// to the decomposition DP. The DP enumerates up to d^(w+1) assignments
	// per bag, so the budget keeps the "polynomial" honest.
	DefaultWidthBudget = 3
	// DefaultCacheSize is the classification LRU capacity.
	DefaultCacheSize = 256
)

// Analyzer classifies instances and routes them to matching solvers. It is
// safe for concurrent use (the cache is mutex-guarded; classification
// itself is stateless).
type Analyzer struct {
	// WidthBudget bounds the BoundedWidth class (see DefaultWidthBudget).
	WidthBudget int
	cache       *serve.Cache
}

// NewAnalyzer returns an analyzer with the given width budget and
// classification-cache capacity; zero or negative values select the
// defaults.
func NewAnalyzer(widthBudget, cacheSize int) *Analyzer {
	if widthBudget <= 0 {
		widthBudget = DefaultWidthBudget
	}
	if cacheSize <= 0 {
		cacheSize = DefaultCacheSize
	}
	// Quiet: the classification cache reports through dispatch.cache.*;
	// counting its lookups as cspd.cache.* would corrupt the daemon's
	// result-cache hit rate (one auto-routed miss would count twice).
	return &Analyzer{WidthBudget: widthBudget, cache: serve.NewQuietCache(cacheSize)}
}

// Classify determines the instance's structural class, consulting the cache
// first. The second result reports whether a (revalidated) cached verdict
// was used.
func (a *Analyzer) Classify(p *csp.Instance) (Classification, bool) {
	key := serve.CacheKey{
		Hash:     cspio.CanonicalHash(p),
		Strategy: "dispatch",
		Workers:  a.WidthBudget,
	}
	if v, ok := a.cache.Get(key); ok {
		cls := v.(Classification)
		if a.revalidate(p, cls) {
			obsCacheHits.Inc()
			return cls, true
		}
		// The canonical hash is order-insensitive but witnesses are indexed
		// by constraint position: a permuted twin (or a hash collision) can
		// hit the cache with a witness that does not fit this instance.
		obsCacheStale.Inc()
	}
	cls := a.classify(p)
	a.cache.Add(key, cls)
	return cls, false
}

// classify runs the decision tree. Order matters: trees are the cheapest
// check and the cheapest solve; acyclicity is tested before width because a
// single wide hyperedge turns the primal graph into a clique that no width
// budget admits, while GYO handles it in one ear removal.
func (a *Analyzer) classify(p *csp.Instance) Classification {
	if consistency.IsTreeStructured(p) {
		return Classification{Class: Tree}
	}
	if p.Dom == 2 {
		if sp, err := schaefer.FromCSP(p); err == nil && sp.Template.IsTractable() {
			return Classification{Class: Schaefer}
		}
	}
	if acyclic, jt := hypergraph.FromInstance(p).GYO(); acyclic {
		return Classification{Class: Acyclic, JoinTree: jt}
	}
	if d, ok := treewidth.DecomposeWithin(treewidth.PrimalGraph(p), a.WidthBudget); ok {
		return Classification{Class: BoundedWidth, Width: d.Width(), Decomp: d}
	}
	return Classification{Class: Hard}
}

// revalidate checks a cached classification against the live instance:
// witness-free classes are recheckable from scratch at near-witness cost,
// and witnessed classes must fit this instance's constraint ordering. A
// Hard verdict is accepted as-is — routing a tractable twin to the
// portfolio would cost time, never correctness, and canonical-hash equality
// preserves every property the classifier tests.
func (a *Analyzer) revalidate(p *csp.Instance, cls Classification) bool {
	switch cls.Class {
	case Tree:
		return consistency.IsTreeStructured(p)
	case Schaefer:
		if p.Dom != 2 {
			return false
		}
		sp, err := schaefer.FromCSP(p)
		return err == nil && sp.Template.IsTractable()
	case Acyclic:
		return cls.JoinTree != nil &&
			hypergraph.FromInstance(p).ValidateJoinTree(cls.JoinTree) == nil
	case BoundedWidth:
		return cls.Decomp != nil && cls.Decomp.Width() <= a.WidthBudget &&
			cls.Decomp.Validate(treewidth.PrimalGraph(p)) == nil
	}
	return true
}

// Outcome is the result of a dispatched solve: the verdict plus how it was
// reached.
type Outcome struct {
	csp.Result
	// Route is the class whose solver produced the verdict. It is Hard
	// whenever the portfolio ran — including a defensive reroute after a
	// routed solver failed.
	Route Class
	// Fallback reports that the portfolio produced the verdict.
	Fallback bool
	// Winner is the portfolio's winning strategy when Fallback is set.
	Winner string
	// ClassifyTime is the wall clock spent classifying (including the cache
	// lookup and any witness revalidation).
	ClassifyTime time.Duration
	// CacheHit reports that a cached classification was reused.
	CacheHit bool
}

// Solve classifies the instance and runs the matching solver; only
// Hard-classified instances (or a routed solver failing, which the reroute
// counter records and the test suite pins to zero) reach the portfolio.
func (a *Analyzer) Solve(ctx context.Context, p *csp.Instance) Outcome {
	t0 := time.Now()
	cls, hit := a.Classify(p)
	out := Outcome{Route: cls.Class, CacheHit: hit, ClassifyTime: time.Since(t0)}
	cls.Class.counter().Inc()
	obsClassVec.Inc(cls.Class.label())
	obsClassifyNs.Observe(out.ClassifyTime.Nanoseconds(), cls.Class.label())

	if cls.Class != Hard {
		solveStart := time.Now()
		res, err := a.solveClass(p, cls)
		if err == nil {
			out.Result = res
			if out.Result.Stats.Strategy == "" {
				out.Result.Stats.Strategy = cls.Class.String()
			}
			if out.Result.Stats.Duration == 0 {
				out.Result.Stats.Duration = time.Since(solveStart)
			}
			return out
		}
		// A routed solver refusing an instance it was classified for is a
		// bug; stay correct by rerouting to the portfolio.
		obsReroute.Inc()
		obsRerouteVec.Inc(cls.Class.label())
	}

	obsFallback.Inc()
	pres := csp.Portfolio(ctx, p, csp.PortfolioOptions{})
	out.Result = pres.Result
	out.Winner = pres.Winner
	out.Route = Hard
	out.Fallback = true
	return out
}

// solveClass runs the class's dedicated solver. Every SAT verdict is
// checked against the original instance before it is returned.
func (a *Analyzer) solveClass(p *csp.Instance, cls Classification) (csp.Result, error) {
	var res csp.Result
	var err error
	switch cls.Class {
	case Tree:
		res, err = consistency.SolveTree(p)
	case Schaefer:
		var sp *schaefer.Instance
		sp, err = schaefer.FromCSP(p)
		if err == nil {
			var assign []int
			var ok bool
			assign, ok, _, err = schaefer.Solve(sp)
			res = csp.Result{Found: ok, Solution: assign}
		}
	case Acyclic:
		res, err = hypergraph.SolveAcyclicCSP(p, cls.JoinTree)
	case BoundedWidth:
		d := cls.Decomp
		if d == nil {
			d = treewidth.BestHeuristic(treewidth.PrimalGraph(p))
		}
		res, err = treewidth.SolveDecomposed(p, d)
	default:
		err = fmt.Errorf("dispatch: class %v has no routed solver", cls.Class)
	}
	if err != nil {
		return csp.Result{}, err
	}
	if res.Found && !p.Satisfies(res.Solution) {
		return csp.Result{}, fmt.Errorf("dispatch: %v solver returned a non-solution", cls.Class)
	}
	return res, nil
}

// FallbackCount exposes the portfolio-invocation counter for tests and
// front ends that assert "no PTIME instance reached the portfolio".
func FallbackCount() int64 { return obsFallback.Load() }

// RerouteCount exposes the defensive-reroute counter.
func RerouteCount() int64 { return obsReroute.Load() }
