package dispatch

import (
	"context"
	"math/rand"
	"testing"

	"csdb/internal/consistency"
	"csdb/internal/csp"
	"csdb/internal/gen"
	"csdb/internal/hypergraph"
	"csdb/internal/schaefer"
	"csdb/internal/treewidth"
)

// The differential gate. Each generator family comes with the set of
// structural classes its instances are allowed to land in; most are exact by
// construction (a tree-shaped binary instance IS Tree, a full 3-tree IS
// within the width budget because chordal graphs give the MCS heuristic a
// perfect elimination ordering). For every instance the harness checks:
//
//   - the verdict agrees with csp.Portfolio run directly;
//   - the classification's witness is valid for the live instance;
//   - the route equals the class and Fallback fires only for Hard;
//   - globally, the fallback counter moved exactly once per Hard-routed
//     instance (zero portfolio invocations on PTIME-classified instances)
//     and the defensive-reroute counter did not move at all.

type family struct {
	name string
	gen  func(rng *rand.Rand) *csp.Instance
	// allowed, when non-nil, is the exact set of admissible classes.
	allowed map[Class]bool
	// forbidden lists classes the instance must NOT land in (used when the
	// family only guarantees what it is not, e.g. "cyclic by construction").
	forbidden map[Class]bool
}

var schaeferClasses = []schaefer.Class{
	schaefer.ZeroValid, schaefer.OneValid, schaefer.Horn,
	schaefer.DualHorn, schaefer.Bijunctive, schaefer.Affine,
}

// schaeferCSP builds a CSP from a random template closed under one
// Schaefer class's polymorphism: ternary scopes of distinct variables, so
// the instance can never be classified Tree.
func schaeferCSP(rng *rand.Rand, class schaefer.Class) *csp.Instance {
	rel := gen.ClosedBoolRel(rng, 3, class, 1+rng.Intn(3))
	n := 3 + rng.Intn(5)
	sp := &schaefer.Instance{
		Template: &schaefer.Template{Rels: []*schaefer.BoolRel{rel}},
		NumVars:  n,
	}
	for c := 2 + rng.Intn(4); c > 0; c-- {
		sp.Cons = append(sp.Cons, schaefer.Application{Rel: 0, Scope: rng.Perm(n)[:3]})
	}
	p, err := sp.ToCSP()
	if err != nil {
		panic(err)
	}
	return p
}

// oneInThreeCSP applies the 1-in-3 relation — which is in none of
// Schaefer's classes — over random ternary scopes.
func oneInThreeCSP(rng *rand.Rand) *csp.Instance {
	n := 3 + rng.Intn(4)
	sp := &schaefer.Instance{
		Template: &schaefer.Template{Rels: []*schaefer.BoolRel{schaefer.RelOneInThree()}},
		NumVars:  n,
	}
	for c := 2 + rng.Intn(3); c > 0; c-- {
		sp.Cons = append(sp.Cons, schaefer.Application{Rel: 0, Scope: rng.Perm(n)[:3]})
	}
	p, err := sp.ToCSP()
	if err != nil {
		panic(err)
	}
	return p
}

// barelyCyclic takes an α-acyclic instance and closes one cycle: it adds a
// binary constraint between two variables at primal distance ≥ 2, which
// provably destroys α-acyclicity (the new edge creates either an uncovered
// triangle or a chordless cycle in the primal graph). Returns nil when the
// instance is too dense to have such a pair; the harness retries.
func barelyCyclic(rng *rand.Rand) *csp.Instance {
	for attempt := 0; attempt < 20; attempt++ {
		p := gen.AcyclicCSP(rng, 4+rng.Intn(5), 3, 3, 0.3)
		u, v := distantPair(p)
		if u < 0 {
			continue
		}
		p.MustAddConstraint([]int{u, v}, gen.RandomBinaryTable(rng, p.Dom, 0.3))
		return p
	}
	return nil
}

// distantPair finds two variables connected in the primal graph that never
// co-occur in a scope (primal distance ≥ 2), or (-1, -1).
func distantPair(p *csp.Instance) (int, int) {
	adj := make([][]int, p.Vars)
	seen := make([]map[int]bool, p.Vars)
	for i := range seen {
		seen[i] = make(map[int]bool)
	}
	addEdge := func(a, b int) {
		if a != b && !seen[a][b] {
			seen[a][b], seen[b][a] = true, true
			adj[a] = append(adj[a], b)
			adj[b] = append(adj[b], a)
		}
	}
	for _, con := range p.Constraints {
		for i := 0; i < len(con.Scope); i++ {
			for j := i + 1; j < len(con.Scope); j++ {
				addEdge(con.Scope[i], con.Scope[j])
			}
		}
	}
	for u := 0; u < p.Vars; u++ {
		dist := make([]int, p.Vars)
		for i := range dist {
			dist[i] = -1
		}
		dist[u] = 0
		queue := []int{u}
		for len(queue) > 0 {
			a := queue[0]
			queue = queue[1:]
			for _, b := range adj[a] {
				if dist[b] < 0 {
					dist[b] = dist[a] + 1
					queue = append(queue, b)
				}
			}
		}
		for v := 0; v < p.Vars; v++ {
			if dist[v] >= 2 {
				return u, v
			}
		}
	}
	return -1, -1
}

func diffFamilies() []family {
	set := func(cs ...Class) map[Class]bool {
		m := make(map[Class]bool, len(cs))
		for _, c := range cs {
			m[c] = true
		}
		return m
	}
	return []family{
		{
			name: "tree",
			gen: func(rng *rand.Rand) *csp.Instance {
				n := 2 + rng.Intn(10)
				d := 2 + rng.Intn(3)
				return gen.CSPOnGraph(rng, gen.RandomTree(rng, n), d, 0.2+0.4*rng.Float64())
			},
			allowed: set(Tree),
		},
		{
			name: "acyclic",
			gen: func(rng *rand.Rand) *csp.Instance {
				// d=3 keeps the Schaefer branch out of play; low-arity draws
				// can come out as binary forests, hence Tree is admissible.
				return gen.AcyclicCSP(rng, 2+rng.Intn(7), 3, 3, 0.15+0.5*rng.Float64())
			},
			allowed: set(Tree, Acyclic),
		},
		{
			name: "full-3-tree",
			gen: func(rng *rand.Rand) *csp.Instance {
				n := 5 + rng.Intn(6)
				g, _ := gen.PartialKTree(rng, n, 3, 0)
				return gen.CSPOnGraph(rng, g, 3, 0.1+0.3*rng.Float64())
			},
			// A full 3-tree is chordal, so the MCS heuristic recovers width
			// exactly 3 — never more — and the class is deterministic.
			allowed: set(BoundedWidth),
		},
		{
			name: "schaefer",
			gen: func(rng *rand.Rand) *csp.Instance {
				return schaeferCSP(rng, schaeferClasses[rng.Intn(len(schaeferClasses))])
			},
			allowed: set(Schaefer),
		},
		{
			name:      "barely-cyclic",
			gen:       barelyCyclic,
			forbidden: set(Tree, Acyclic, Schaefer),
		},
		{
			name: "clique-hard",
			gen: func(rng *rand.Rand) *csp.Instance {
				// K6 has treewidth 5 > budget; alternate UNSAT (4 colors)
				// and SAT (6 colors) so both verdicts cross the fallback.
				k := 4 + 2*rng.Intn(2)
				return gen.Coloring(completeGraph(6), k)
			},
			allowed: set(Hard),
		},
		{
			name:      "one-in-three",
			gen:       oneInThreeCSP,
			forbidden: set(Schaefer, Tree),
		},
	}
}

// verifyWitness re-derives the classification's claim from the live
// instance: a wrong witness here would mean the dispatcher could route an
// instance to a solver whose precondition does not hold.
func verifyWitness(t *testing.T, p *csp.Instance, cls Classification, budget int) {
	t.Helper()
	switch cls.Class {
	case Tree:
		if !consistency.IsTreeStructured(p) {
			t.Fatal("Tree verdict on a non-tree instance")
		}
	case Schaefer:
		sp, err := schaefer.FromCSP(p)
		if err != nil || !sp.Template.IsTractable() {
			t.Fatalf("Schaefer verdict not reproducible: err=%v", err)
		}
	case Acyclic:
		if cls.JoinTree == nil {
			t.Fatal("Acyclic verdict without a join tree")
		}
		if err := hypergraph.FromInstance(p).ValidateJoinTree(cls.JoinTree); err != nil {
			t.Fatalf("join tree invalid for the live instance: %v", err)
		}
	case BoundedWidth:
		if cls.Decomp == nil {
			t.Fatal("BoundedWidth verdict without a decomposition")
		}
		if w := cls.Decomp.Width(); w > budget {
			t.Fatalf("decomposition width %d exceeds budget %d", w, budget)
		}
		if err := cls.Decomp.Validate(treewidth.PrimalGraph(p)); err != nil {
			t.Fatalf("decomposition invalid for the live instance: %v", err)
		}
	}
}

func TestDispatchDifferential(t *testing.T) {
	enableObs(t)
	const trials = 25
	an := NewAnalyzer(0, 0)
	fb0, rr0 := FallbackCount(), RerouteCount()
	hardRouted := int64(0)

	for _, fam := range diffFamilies() {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(fam.name)) * 1009))
			for trial := 0; trial < trials; trial++ {
				p := fam.gen(rng)
				if p == nil {
					continue
				}
				cls, _ := an.Classify(p)
				if fam.allowed != nil && !fam.allowed[cls.Class] {
					t.Fatalf("trial %d: class %v not admissible for family %q",
						trial, cls.Class, fam.name)
				}
				if fam.forbidden[cls.Class] {
					t.Fatalf("trial %d: class %v is impossible for family %q",
						trial, cls.Class, fam.name)
				}
				verifyWitness(t, p, cls, an.WidthBudget)

				want := csp.Portfolio(context.Background(), p, csp.PortfolioOptions{})
				out := an.Solve(context.Background(), p)
				if out.Route == Hard {
					hardRouted++
				}
				if out.Route != cls.Class {
					t.Fatalf("trial %d: routed %v but classified %v", trial, out.Route, cls.Class)
				}
				if out.Fallback != (cls.Class == Hard) {
					t.Fatalf("trial %d: fallback=%v for class %v", trial, out.Fallback, cls.Class)
				}
				if out.Aborted || want.Aborted {
					t.Fatalf("trial %d: unexpected abort (dispatch=%v portfolio=%v)",
						trial, out.Aborted, want.Aborted)
				}
				if out.Found != want.Found {
					t.Fatalf("trial %d (%s, class %v): dispatcher found=%v, portfolio found=%v",
						trial, fam.name, cls.Class, out.Found, want.Found)
				}
				if out.Found && !p.Satisfies(out.Solution) {
					t.Fatalf("trial %d: returned non-solution %v", trial, out.Solution)
				}
			}
		})
	}

	// The global gate: the portfolio ran exactly once per Hard route —
	// never for a PTIME-classified instance — and no routed solver failed.
	if d := FallbackCount() - fb0; d != hardRouted {
		t.Fatalf("portfolio invoked %d times for %d hard-routed instances", d, hardRouted)
	}
	if d := RerouteCount() - rr0; d != 0 {
		t.Fatalf("%d defensive reroutes: a routed solver rejected its own class", d)
	}
}
