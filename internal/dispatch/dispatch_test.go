package dispatch

import (
	"context"
	"testing"

	"csdb/internal/csp"
	"csdb/internal/gen"
	"csdb/internal/graph"
	"csdb/internal/obs"
)

// enableObs turns observability on for the test so the dispatch counters
// (fallback, reroute, per-class) record. Tests reading the global counters
// must not run in parallel with each other.
func enableObs(t *testing.T) {
	t.Helper()
	prev := obs.Enabled()
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(prev) })
}

func completeGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// pathCSP is a 4-variable not-equal chain: binary, primal graph a path.
func pathCSP(d int) *csp.Instance {
	p := csp.NewInstance(4, d)
	ne := gen.NotEqualTable(d)
	p.MustAddConstraint([]int{0, 1}, ne)
	p.MustAddConstraint([]int{1, 2}, ne)
	p.MustAddConstraint([]int{2, 3}, ne)
	return p
}

// triangleCSP is a not-equal triangle over a d-valued domain: cyclic, so
// never Tree or Acyclic; Schaefer exactly when d == 2 (x != y over {0,1} is
// XOR, which is affine and bijunctive).
func triangleCSP(d int) *csp.Instance {
	p := csp.NewInstance(3, d)
	ne := gen.NotEqualTable(d)
	p.MustAddConstraint([]int{0, 1}, ne)
	p.MustAddConstraint([]int{1, 2}, ne)
	p.MustAddConstraint([]int{2, 0}, ne)
	return p
}

// ternaryAcyclicCSP has a ternary constraint (so it is not a binary tree)
// and an α-acyclic hypergraph.
func ternaryAcyclicCSP() *csp.Instance {
	p := csp.NewInstance(4, 3)
	t := csp.TableOf(3, []int{0, 1, 2}, []int{1, 2, 0}, []int{2, 0, 1})
	p.MustAddConstraint([]int{0, 1, 2}, t)
	p.MustAddConstraint([]int{2, 3}, csp.TableOf(2, []int{0, 1}, []int{1, 2}))
	return p
}

func TestClassifyCanonical(t *testing.T) {
	cases := []struct {
		name string
		p    *csp.Instance
		want Class
	}{
		{"path", pathCSP(3), Tree},
		{"boolean-triangle", triangleCSP(2), Schaefer},
		{"ternary-acyclic", ternaryAcyclicCSP(), Acyclic},
		{"triangle-d3", triangleCSP(3), BoundedWidth},
		{"k6-coloring", gen.Coloring(completeGraph(6), 4), Hard},
	}
	an := NewAnalyzer(0, 0)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cls, hit := an.Classify(tc.p)
			if cls.Class != tc.want {
				t.Fatalf("class = %v, want %v", cls.Class, tc.want)
			}
			if hit {
				t.Fatal("first classification reported a cache hit")
			}
			// The witness must match the class.
			switch cls.Class {
			case Acyclic:
				if cls.JoinTree == nil {
					t.Fatal("acyclic verdict without a join tree")
				}
			case BoundedWidth:
				if cls.Decomp == nil || cls.Width > an.WidthBudget {
					t.Fatalf("width verdict without a fitting decomposition (width %d)", cls.Width)
				}
			}
		})
	}
}

// TestSolveRoutes runs each canonical instance through the dispatcher and
// checks the route taken, the verdict against the complete search engine,
// and that only the Hard instance moved the fallback counter.
func TestSolveRoutes(t *testing.T) {
	enableObs(t)
	cases := []struct {
		name string
		p    *csp.Instance
		want Class
	}{
		{"path", pathCSP(3), Tree},
		{"boolean-triangle", triangleCSP(2), Schaefer},
		{"ternary-acyclic", ternaryAcyclicCSP(), Acyclic},
		{"triangle-d3", triangleCSP(3), BoundedWidth},
		{"k6-coloring-unsat", gen.Coloring(completeGraph(6), 4), Hard},
		{"k5-coloring-sat", gen.Coloring(completeGraph(5), 5), Hard},
	}
	an := NewAnalyzer(0, 0)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fb0, rr0 := FallbackCount(), RerouteCount()
			out := an.Solve(context.Background(), tc.p)
			if out.Route != tc.want {
				t.Fatalf("route = %v, want %v", out.Route, tc.want)
			}
			if out.Fallback != (tc.want == Hard) {
				t.Fatalf("fallback = %v for class %v", out.Fallback, tc.want)
			}
			want := csp.Solve(tc.p, csp.Options{})
			if out.Found != want.Found {
				t.Fatalf("dispatcher found=%v, search found=%v", out.Found, want.Found)
			}
			if out.Found && !tc.p.Satisfies(out.Solution) {
				t.Fatalf("non-solution %v", out.Solution)
			}
			wantFB := int64(0)
			if tc.want == Hard {
				wantFB = 1
			}
			if d := FallbackCount() - fb0; d != wantFB {
				t.Fatalf("fallback counter moved by %d, want %d", d, wantFB)
			}
			if d := RerouteCount() - rr0; d != 0 {
				t.Fatalf("defensive reroute fired %d times", d)
			}
		})
	}
}

// TestWidthBudget pins the budget semantics: K4 has treewidth 3, so it is
// BoundedWidth under the default budget and Hard under budget 2.
func TestWidthBudget(t *testing.T) {
	p := gen.Coloring(completeGraph(4), 4)
	if cls, _ := NewAnalyzer(3, 0).Classify(p); cls.Class != BoundedWidth {
		t.Fatalf("budget 3: class = %v, want %v", cls.Class, BoundedWidth)
	}
	if cls, _ := NewAnalyzer(2, 0).Classify(p); cls.Class != Hard {
		t.Fatalf("budget 2: class = %v, want %v", cls.Class, Hard)
	}
}

// TestClassificationCache: the same instance hits the cache on
// reclassification, and a constraint-permuted twin — which shares the
// canonical hash but not the constraint ordering the witnesses are indexed
// by — must still be classified correctly (revalidated or recomputed) and
// solved correctly, with no defensive reroute.
func TestClassificationCache(t *testing.T) {
	enableObs(t)
	an := NewAnalyzer(0, 0)
	p := ternaryAcyclicCSP()

	cls1, hit := an.Classify(p)
	if hit {
		t.Fatal("cold cache reported a hit")
	}
	cls2, hit := an.Classify(p)
	if !hit {
		t.Fatal("identical instance missed the cache")
	}
	if cls1.Class != cls2.Class {
		t.Fatalf("cache changed the class: %v vs %v", cls1.Class, cls2.Class)
	}

	// Constraint-reversed twin: same canonical hash, different positions.
	twin := csp.NewInstance(p.Vars, p.Dom)
	for i := len(p.Constraints) - 1; i >= 0; i-- {
		twin.MustAddConstraint(p.Constraints[i].Scope, p.Constraints[i].Table)
	}
	rr0 := RerouteCount()
	clsT, _ := an.Classify(twin)
	if clsT.Class != cls1.Class {
		t.Fatalf("permuted twin classified %v, original %v", clsT.Class, cls1.Class)
	}
	out := an.Solve(context.Background(), twin)
	if out.Route != cls1.Class || out.Fallback {
		t.Fatalf("twin routed %v (fallback=%v), want %v", out.Route, out.Fallback, cls1.Class)
	}
	want := csp.Solve(twin, csp.Options{})
	if out.Found != want.Found {
		t.Fatalf("twin verdict %v, search %v", out.Found, want.Found)
	}
	if out.Found && !twin.Satisfies(out.Solution) {
		t.Fatalf("twin non-solution %v", out.Solution)
	}
	if d := RerouteCount() - rr0; d != 0 {
		t.Fatalf("permuted twin triggered %d defensive reroutes", d)
	}
}

func TestAnalyzerDefaults(t *testing.T) {
	an := NewAnalyzer(0, 0)
	if an.WidthBudget != DefaultWidthBudget {
		t.Fatalf("WidthBudget = %d, want %d", an.WidthBudget, DefaultWidthBudget)
	}
	if an.cache == nil {
		t.Fatal("analyzer built without a cache")
	}
}

// TestLabeledClassTelemetry pins the PR-8 labeled routing metrics: one
// Solve moves the class vector and the per-class classification-time
// histogram for exactly the routed class.
func TestLabeledClassTelemetry(t *testing.T) {
	enableObs(t)
	inst := pathCSP(3) // tree-classified
	class0 := obsClassVec.Load("tree")
	nsSeries := obsClassifyNs.Series("tree")
	ns0 := nsSeries.Count()

	an := NewAnalyzer(0, 0)
	out := an.Solve(context.Background(), inst)
	if out.Route != Tree {
		t.Fatalf("route = %v, want tree", out.Route)
	}
	if d := obsClassVec.Load("tree") - class0; d != 1 {
		t.Fatalf("dispatch.class{class=tree} delta = %d, want 1", d)
	}
	if d := obsClassifyNs.Series("tree").Count() - ns0; d != 1 {
		t.Fatalf("dispatch.classify_ns{class=tree} delta = %d, want 1", d)
	}
}

// TestClassLabelClosed pins label() against String() for the real classes
// and proves the default branch cannot mint a new label value.
func TestClassLabelClosed(t *testing.T) {
	for _, c := range []Class{Tree, Schaefer, Acyclic, BoundedWidth, Hard} {
		if c.label() != c.String() {
			t.Fatalf("class %v: label %q != string %q", int(c), c.label(), c.String())
		}
	}
	if got := Class(99).label(); got != "hard" {
		t.Fatalf("out-of-range class label = %q, want hard", got)
	}
}
