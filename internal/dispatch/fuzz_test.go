package dispatch

import (
	"bytes"
	"context"
	"testing"

	"csdb/internal/csp"
	"csdb/internal/cspio"
)

// Seed inputs covering every structural class the dispatcher routes, in the
// cspio text format the fuzzer mutates. The same strings are checked into
// testdata/fuzz/FuzzDispatch so `go test -fuzz` starts from them too.
var fuzzSeeds = []string{
	// tree: a binary not-equal chain
	"vars 3\ndom 2\ncon 0 1 : 0 1 | 1 0\ncon 1 2 : 0 1 | 1 0\n",
	// schaefer: a Boolean XOR triangle (affine)
	"vars 3\ndom 2\ncon 0 1 : 0 1 | 1 0\ncon 1 2 : 0 1 | 1 0\ncon 2 0 : 0 1 | 1 0\n",
	// acyclic: a ternary constraint with a hanging binary ear
	"vars 4\ndom 3\ncon 0 1 2 : 0 1 2 | 1 2 0 | 2 0 1\ncon 2 3 : 0 1 | 1 2\n",
	// width: a not-equal triangle over a 3-valued domain (treewidth 2)
	"vars 3\ndom 3\ncon 0 1 : 0 1 | 0 2 | 1 0 | 1 2 | 2 0 | 2 1\n" +
		"con 1 2 : 0 1 | 0 2 | 1 0 | 1 2 | 2 0 | 2 1\n" +
		"con 2 0 : 0 1 | 0 2 | 1 0 | 1 2 | 2 0 | 2 1\n",
	// hard: K5 3-coloring (treewidth 4 exceeds the budget; UNSAT)
	"vars 5\ndom 3\n" +
		"con 0 1 : 0 1 | 0 2 | 1 0 | 1 2 | 2 0 | 2 1\n" +
		"con 0 2 : 0 1 | 0 2 | 1 0 | 1 2 | 2 0 | 2 1\n" +
		"con 0 3 : 0 1 | 0 2 | 1 0 | 1 2 | 2 0 | 2 1\n" +
		"con 0 4 : 0 1 | 0 2 | 1 0 | 1 2 | 2 0 | 2 1\n" +
		"con 1 2 : 0 1 | 0 2 | 1 0 | 1 2 | 2 0 | 2 1\n" +
		"con 1 3 : 0 1 | 0 2 | 1 0 | 1 2 | 2 0 | 2 1\n" +
		"con 1 4 : 0 1 | 0 2 | 1 0 | 1 2 | 2 0 | 2 1\n" +
		"con 2 3 : 0 1 | 0 2 | 1 0 | 1 2 | 2 0 | 2 1\n" +
		"con 2 4 : 0 1 | 0 2 | 1 0 | 1 2 | 2 0 | 2 1\n" +
		"con 3 4 : 0 1 | 0 2 | 1 0 | 1 2 | 2 0 | 2 1\n",
	// edge cases: unconstrained, empty-domain restriction, repeated scope
	"vars 2\ndom 2\n",
	"vars 2\ndom 2\ndom_of 0 :\ncon 0 1 : 0 0 | 1 1\n",
	"vars 2\ndom 2\ncon 0 0 : 0 0 | 1 0\n",
}

// FuzzDispatch is the grammar-aware differential fuzzer: any parseable
// instance small enough to solve exhaustively must get the same verdict
// from the dispatcher and from the complete search engine, and any SAT
// answer must satisfy the instance. The analyzer is shared across inputs so
// the classification cache (including hash-collision and permuted-twin
// paths) is fuzzed too.
func FuzzDispatch(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add([]byte(s))
	}
	an := NewAnalyzer(0, 0)
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := cspio.Parse(bytes.NewReader(data))
		if err != nil {
			t.Skip()
		}
		// Keep the oracle exhaustive-search cheap and the portfolio fallback
		// bounded: tiny instances only.
		if p.Vars > 10 || p.Dom < 1 || p.Dom > 3 || len(p.Constraints) > 12 {
			t.Skip()
		}
		rows := 0
		for _, con := range p.Constraints {
			if len(con.Scope) > 4 {
				t.Skip()
			}
			rows += con.Table.Len()
		}
		if rows > 2048 {
			t.Skip()
		}

		out := an.Solve(context.Background(), p)
		want := csp.Solve(p, csp.Options{})
		if out.Aborted || want.Aborted {
			t.Skip()
		}
		if out.Found != want.Found {
			t.Fatalf("dispatcher (route %v) found=%v, search found=%v\ninput:\n%s",
				out.Route, out.Found, want.Found, data)
		}
		if out.Found && !p.Satisfies(out.Solution) {
			t.Fatalf("dispatcher returned non-solution %v\ninput:\n%s", out.Solution, data)
		}
	})
}
