package gen

import (
	"math/rand"

	"csdb/internal/csp"
	"csdb/internal/graph"
)

// Generators for the structurally tractable families the dispatcher routes:
// random trees (Freuder's class) and instances whose constraint hypergraph
// is α-acyclic by construction (ear-by-ear growth).

// RandomTree returns a random tree on n vertices: each vertex i > 0
// attaches to a uniformly random earlier vertex.
func RandomTree(rng *rand.Rand, n int) *graph.Graph {
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(i, rng.Intn(i))
	}
	return g
}

// RandomTable returns a table of the given arity over d values keeping each
// of the d^arity tuples with probability 1-tightness. Callers keep
// d^arity small (the generators below bound arity).
func RandomTable(rng *rand.Rand, arity, d int, tightness float64) *csp.Table {
	t := csp.NewTable(arity)
	row := make([]int, arity)
	var rec func(i int)
	rec = func(i int) {
		if i == arity {
			if rng.Float64() >= tightness {
				t.Add(row)
			}
			return
		}
		for v := 0; v < d; v++ {
			row[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return t
}

// AcyclicCSP returns an instance of `edges` constraints over a d-valued
// domain whose constraint hypergraph is α-acyclic by construction: scopes
// are grown ear by ear — every new scope takes a nonempty subset of one
// existing scope plus fresh variables — so GYO reduces the hypergraph in
// reverse construction order. Arities are 1..maxArity; each constraint gets
// a random table of the matching arity (tables forbid each tuple with
// probability tightness).
func AcyclicCSP(rng *rand.Rand, edges, maxArity, d int, tightness float64) *csp.Instance {
	if maxArity < 1 {
		maxArity = 1
	}
	if edges < 1 {
		edges = 1
	}
	scopes := make([][]int, 0, edges)
	nextVar := 0
	fresh := func(k int) []int {
		vs := make([]int, k)
		for i := range vs {
			vs[i] = nextVar
			nextVar++
		}
		return vs
	}
	scopes = append(scopes, fresh(1+rng.Intn(maxArity)))
	for len(scopes) < edges {
		base := scopes[rng.Intn(len(scopes))]
		arity := 1 + rng.Intn(maxArity)
		shared := 1 + rng.Intn(min(len(base), arity))
		rng.Shuffle(len(base), func(i, j int) { base[i], base[j] = base[j], base[i] })
		scope := append([]int(nil), base[:shared]...)
		scope = append(scope, fresh(arity-shared)...)
		scopes = append(scopes, scope)
	}
	p := csp.NewInstance(nextVar, d)
	for _, scope := range scopes {
		p.MustAddConstraint(scope, RandomTable(rng, len(scope), d, tightness))
	}
	return p
}
