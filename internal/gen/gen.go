// Package gen generates the workloads used by the experiments and
// benchmarks: random graphs and digraphs, partial k-trees (inputs of known
// treewidth for Theorem 6.2), model-B random CSPs, coloring and n-queens
// instances, chain/star/cycle conjunctive queries, and random Boolean
// relations closed under a chosen Schaefer polymorphism.
//
// All generators take explicit *rand.Rand sources so experiments are
// reproducible from seeds.
package gen

import (
	"fmt"
	"math/rand"

	"csdb/internal/csp"
	"csdb/internal/graph"
	"csdb/internal/schaefer"
	"csdb/internal/structure"
)

// RandomGraph returns a G(n, p) undirected graph.
func RandomGraph(rng *rand.Rand, n int, p float64) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// RandomDigraph returns a loop-free random digraph structure over {E/2}.
func RandomDigraph(rng *rand.Rand, n int, p float64) *structure.Structure {
	g := structure.NewGraph(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < p {
				g.MustAddTuple("E", i, j)
			}
		}
	}
	return g
}

// RandomSymmetricGraph returns a random symmetric (undirected) graph
// structure over {E/2}.
func RandomSymmetricGraph(rng *rand.Rand, n int, p float64) *structure.Structure {
	g := structure.NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				structure.AddUndirectedEdge(g, i, j)
			}
		}
	}
	return g
}

// PartialKTree returns a connected graph of treewidth at most k on n
// vertices, together with an elimination ordering witnessing the width
// bound (the reverse construction order). Construction: start from K_{k+1},
// repeatedly attach a fresh vertex to a random k-clique of the current
// graph, then delete each edge independently with probability dropP
// (subgraphs of k-trees are exactly the graphs of treewidth <= k).
func PartialKTree(rng *rand.Rand, n, k int, dropP float64) (*graph.Graph, []int) {
	if n < k+1 {
		n = k + 1
	}
	g := graph.New(n)
	cliques := [][]int{}
	base := make([]int, k+1)
	for i := range base {
		base[i] = i
	}
	for i := 0; i <= k; i++ {
		for j := i + 1; j <= k; j++ {
			g.AddEdge(i, j)
		}
	}
	// Seed cliques: all k-subsets of the base clique.
	for drop := 0; drop <= k; drop++ {
		c := make([]int, 0, k)
		for i := 0; i <= k; i++ {
			if i != drop {
				c = append(c, i)
			}
		}
		cliques = append(cliques, c)
	}
	for v := k + 1; v < n; v++ {
		c := cliques[rng.Intn(len(cliques))]
		for _, u := range c {
			g.AddEdge(v, u)
		}
		// New k-cliques: v with each (k-1)-subset of c.
		for drop := 0; drop < len(c); drop++ {
			nc := make([]int, 0, k)
			nc = append(nc, v)
			for i, u := range c {
				if i != drop {
					nc = append(nc, u)
				}
			}
			cliques = append(cliques, nc)
		}
	}
	// Elimination ordering: reverse construction order (vertices n-1..k+1,
	// then the base clique) has width <= k on the k-tree, hence on any
	// subgraph.
	order := make([]int, 0, n)
	for v := n - 1; v >= 0; v-- {
		order = append(order, v)
	}
	if dropP > 0 {
		pruned := graph.New(n)
		for _, e := range g.Edges() {
			if rng.Float64() >= dropP {
				pruned.AddEdge(e[0], e[1])
			}
		}
		g = pruned
	}
	return g, order
}

// NotEqualTable returns the binary disequality table over d values (the
// graph-coloring constraint).
func NotEqualTable(d int) *csp.Table {
	t := csp.NewTable(2)
	for a := 0; a < d; a++ {
		for b := 0; b < d; b++ {
			if a != b {
				t.Add([]int{a, b})
			}
		}
	}
	return t
}

// RandomBinaryTable returns a binary table over d values keeping each pair
// with probability 1-tightness.
func RandomBinaryTable(rng *rand.Rand, d int, tightness float64) *csp.Table {
	t := csp.NewTable(2)
	for a := 0; a < d; a++ {
		for b := 0; b < d; b++ {
			if rng.Float64() >= tightness {
				t.Add([]int{a, b})
			}
		}
	}
	return t
}

// ModelB returns a model-B-style random binary CSP: n variables, d values,
// each of the possible variable pairs constrained with probability density,
// each constraint forbidding a fraction tightness of the d² value pairs.
func ModelB(rng *rand.Rand, n, d int, density, tightness float64) *csp.Instance {
	p := csp.NewInstance(n, d)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				p.MustAddConstraint([]int{i, j}, RandomBinaryTable(rng, d, tightness))
			}
		}
	}
	return p
}

// CSPOnGraph places one random binary constraint on each edge of the graph
// (so the instance's primal graph is exactly g).
func CSPOnGraph(rng *rand.Rand, g *graph.Graph, d int, tightness float64) *csp.Instance {
	p := csp.NewInstance(g.N(), d)
	for _, e := range g.Edges() {
		if e[0] == e[1] {
			continue
		}
		p.MustAddConstraint([]int{e[0], e[1]}, RandomBinaryTable(rng, d, tightness))
	}
	return p
}

// Coloring returns the k-coloring instance of a graph.
func Coloring(g *graph.Graph, k int) *csp.Instance {
	p := csp.NewInstance(g.N(), k)
	neq := NotEqualTable(k)
	for _, e := range g.Edges() {
		if e[0] != e[1] {
			p.MustAddConstraint([]int{e[0], e[1]}, neq)
		}
	}
	return p
}

// NQueens returns the n-queens problem as a binary CSP: one variable per
// row (the queen's column), with non-attack constraints between every pair
// of rows.
func NQueens(n int) *csp.Instance {
	p := csp.NewInstance(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			t := csp.NewTable(2)
			diff := j - i
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					if a != b && a-b != diff && b-a != diff {
						t.Add([]int{a, b})
					}
				}
			}
			p.MustAddConstraint([]int{i, j}, t)
		}
	}
	return p
}

// ChainQuery returns Q(V0,Vn) :- R(V0,V1), ..., R(V(n-1),Vn) as rule text.
func ChainQuery(n int) string {
	body := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			body += ", "
		}
		body += fmt.Sprintf("R(V%d,V%d)", i, i+1)
	}
	return fmt.Sprintf("Q(V0,V%d) :- %s.", n, body)
}

// StarQuery returns Q(V0) :- R(V0,V1), ..., R(V0,Vn).
func StarQuery(n int) string {
	body := ""
	for i := 1; i <= n; i++ {
		if i > 1 {
			body += ", "
		}
		body += fmt.Sprintf("R(V0,V%d)", i)
	}
	return fmt.Sprintf("Q(V0) :- %s.", body)
}

// CycleQuery returns the Boolean cycle query of length n (cyclic for n>=3).
func CycleQuery(n int) string {
	body := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			body += ", "
		}
		body += fmt.Sprintf("R(V%d,V%d)", i, (i+1)%n)
	}
	return fmt.Sprintf("Q :- %s.", body)
}

// ClosedBoolRel returns a random Boolean relation of the given arity closed
// under the polymorphism of the class: random seed tuples are closed under
// the characteristic operation (AND, OR, majority, or ⊕3); for 0/1-valid
// the constant tuple is added.
func ClosedBoolRel(rng *rand.Rand, arity int, class schaefer.Class, seeds int) *schaefer.BoolRel {
	tuples := make(map[int][]int)
	randTuple := func() []int {
		t := make([]int, arity)
		for i := range t {
			t[i] = rng.Intn(2)
		}
		return t
	}
	code := func(t []int) int {
		c := 0
		for _, v := range t {
			c = c<<1 | v
		}
		return c
	}
	for i := 0; i < seeds; i++ {
		t := randTuple()
		tuples[code(t)] = t
	}
	switch class {
	case schaefer.ZeroValid:
		z := make([]int, arity)
		tuples[0] = z
	case schaefer.OneValid:
		o := make([]int, arity)
		for i := range o {
			o[i] = 1
		}
		tuples[code(o)] = o
	case schaefer.Horn, schaefer.DualHorn:
		closeBinary(tuples, arity, class == schaefer.Horn)
	case schaefer.Bijunctive, schaefer.Affine:
		closeTernary(tuples, arity, class == schaefer.Bijunctive)
	}
	rel := schaefer.MustBoolRel(arity)
	for _, t := range tuples {
		if err := rel.Add(t); err != nil {
			panic(err)
		}
	}
	return rel
}

func closeBinary(tuples map[int][]int, arity int, isAnd bool) {
	for changed := true; changed; {
		changed = false
		var list [][]int
		for _, t := range tuples {
			list = append(list, t)
		}
		for _, a := range list {
			for _, b := range list {
				c := make([]int, arity)
				for i := range c {
					if isAnd {
						c[i] = a[i] & b[i]
					} else {
						c[i] = a[i] | b[i]
					}
				}
				k := codeOf(c)
				if _, ok := tuples[k]; !ok {
					tuples[k] = c
					changed = true
				}
			}
		}
	}
}

func closeTernary(tuples map[int][]int, arity int, isMajority bool) {
	for changed := true; changed; {
		changed = false
		var list [][]int
		for _, t := range tuples {
			list = append(list, t)
		}
		for _, a := range list {
			for _, b := range list {
				for _, c := range list {
					d := make([]int, arity)
					for i := range d {
						if isMajority {
							d[i] = a[i]&b[i] | a[i]&c[i] | b[i]&c[i]
						} else {
							d[i] = a[i] ^ b[i] ^ c[i]
						}
					}
					k := codeOf(d)
					if _, ok := tuples[k]; !ok {
						tuples[k] = d
						changed = true
					}
				}
			}
		}
	}
}

func codeOf(t []int) int {
	c := 0
	for _, v := range t {
		c = c<<1 | v
	}
	return c
}
