package gen

import (
	"math/rand"
	"testing"

	"csdb/internal/csp"
)

func TestPigeonholeStatus(t *testing.T) {
	for _, tc := range []struct {
		pigeons, holes int
		sat            bool
	}{
		{3, 3, true},
		{5, 6, true},
		{4, 3, false},
		{6, 5, false},
	} {
		p := Pigeonhole(tc.pigeons, tc.holes)
		if got := len(p.Constraints); got != tc.pigeons*(tc.pigeons-1)/2 {
			t.Fatalf("Pigeonhole(%d,%d): %d constraints", tc.pigeons, tc.holes, got)
		}
		res := csp.Solve(p, csp.Options{})
		if res.Found != tc.sat {
			t.Fatalf("Pigeonhole(%d,%d): found=%v, want %v", tc.pigeons, tc.holes, res.Found, tc.sat)
		}
		if res.Found && !p.Satisfies(res.Solution) {
			t.Fatalf("Pigeonhole(%d,%d): invalid witness %v", tc.pigeons, tc.holes, res.Solution)
		}
	}
}

func TestQuasigroupSatByConstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		n := 4 + rng.Intn(3)
		holes := rng.Intn(n * n)
		p := Quasigroup(rng, n, holes)
		if p.Vars != n*n || p.Dom != n {
			t.Fatalf("Quasigroup(%d): vars=%d dom=%d", n, p.Vars, p.Dom)
		}
		revealed := 0
		for v := 0; v < p.Vars; v++ {
			if len(p.DomainOf(v)) == 1 {
				revealed++
			}
		}
		if revealed != n*n-holes {
			t.Fatalf("Quasigroup(%d, holes=%d): %d revealed cells", n, holes, revealed)
		}
		res := csp.Solve(p, csp.Options{})
		if !res.Found {
			t.Fatalf("Quasigroup(%d, holes=%d): UNSAT, want SAT by construction", n, holes)
		}
		if !p.Satisfies(res.Solution) {
			t.Fatalf("Quasigroup(%d): invalid witness", n)
		}
		// The witness must be a Latin square: every row and column a
		// permutation of 0..n-1.
		for i := 0; i < n; i++ {
			var rowSeen, colSeen uint64
			for j := 0; j < n; j++ {
				rowSeen |= 1 << res.Solution[i*n+j]
				colSeen |= 1 << res.Solution[j*n+i]
			}
			if want := uint64(1)<<n - 1; rowSeen != want || colSeen != want {
				t.Fatalf("Quasigroup(%d): row/col %d not a permutation", n, i)
			}
		}
	}
}

func TestPhaseTransitionShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := PhaseTransition(rng, 12, 6, 0.6)
	if p.Vars != 12 || p.Dom != 6 {
		t.Fatalf("vars=%d dom=%d", p.Vars, p.Dom)
	}
	if len(p.Constraints) == 0 {
		t.Fatal("no constraints generated")
	}
	for _, con := range p.Constraints {
		if n := con.Table.Len(); n == 0 || n == 36 {
			t.Fatalf("constraint table has %d tuples, want strictly between 0 and d^2", n)
		}
	}
	// At the transition both verdicts occur across seeds; pin a mix so the
	// tightness formula stays critical rather than drifting trivially
	// SAT or UNSAT.
	sat, unsat := 0, 0
	for seed := int64(0); seed < 12; seed++ {
		inst := PhaseTransition(rand.New(rand.NewSource(seed)), 12, 6, 0.6)
		res := csp.Solve(inst, csp.Options{})
		if res.Found {
			if !inst.Satisfies(res.Solution) {
				t.Fatalf("seed %d: invalid witness", seed)
			}
			sat++
		} else {
			unsat++
		}
	}
	if sat == 0 || unsat == 0 {
		t.Fatalf("phase transition degenerate: %d SAT / %d UNSAT across seeds", sat, unsat)
	}
}
