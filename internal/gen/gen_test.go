package gen

import (
	"math/rand"
	"testing"

	"csdb/internal/cq"
	"csdb/internal/csp"
	"csdb/internal/schaefer"
	"csdb/internal/treewidth"
)

func TestPartialKTreeWidthBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range []int{1, 2, 3} {
		for trial := 0; trial < 10; trial++ {
			g, order := PartialKTree(rng, 8+rng.Intn(8), k, 0.2)
			if len(order) != g.N() {
				t.Fatalf("ordering length %d for %d vertices", len(order), g.N())
			}
			if w := treewidth.WidthOfOrdering(g, order); w > k {
				t.Fatalf("k=%d: ordering width %d", k, w)
			}
			d := treewidth.FromOrdering(g, order)
			if err := d.Validate(g); err != nil {
				t.Fatalf("k=%d: %v", k, err)
			}
			if d.Width() > k {
				t.Fatalf("k=%d: decomposition width %d", k, d.Width())
			}
		}
	}
}

func TestPartialKTreeSmallN(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, order := PartialKTree(rng, 1, 2, 0)
	if g.N() != 3 || len(order) != 3 {
		t.Fatalf("n below k+1 not clamped: n=%d", g.N())
	}
}

func TestModelBShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := ModelB(rng, 10, 4, 1.0, 0.3)
	if p.Vars != 10 || p.Dom != 4 {
		t.Fatalf("shape wrong: %+v", p)
	}
	if len(p.Constraints) != 45 {
		t.Fatalf("density 1.0 should constrain all pairs: %d", len(p.Constraints))
	}
	empty := ModelB(rng, 10, 4, 0, 0.3)
	if len(empty.Constraints) != 0 {
		t.Fatal("density 0 produced constraints")
	}
}

func TestColoringMatchesKColorability(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := RandomGraph(rng, 8, 0.4)
	p := Coloring(g, 3)
	res := csp.Solve(p, csp.Options{})
	if res.Found {
		for _, e := range g.Edges() {
			if res.Solution[e[0]] == res.Solution[e[1]] {
				t.Fatal("invalid coloring accepted")
			}
		}
	}
}

func TestNQueensKnownCounts(t *testing.T) {
	// Classic counts: 4 queens -> 2 solutions; 5 queens -> 10; 3 -> 0.
	if got := csp.CountSolutions(NQueens(4), 0); got != 2 {
		t.Fatalf("4-queens solutions = %d, want 2", got)
	}
	if got := csp.CountSolutions(NQueens(5), 0); got != 10 {
		t.Fatalf("5-queens solutions = %d, want 10", got)
	}
	if got := csp.CountSolutions(NQueens(3), 0); got != 0 {
		t.Fatalf("3-queens solutions = %d, want 0", got)
	}
	if got := csp.CountSolutions(NQueens(6), 0); got != 4 {
		t.Fatalf("6-queens solutions = %d, want 4", got)
	}
}

func TestQueryGenerators(t *testing.T) {
	chain := cq.MustParse(ChainQuery(3))
	if len(chain.Body) != 3 || len(chain.Head) != 2 {
		t.Fatalf("chain query: %s", chain)
	}
	star := cq.MustParse(StarQuery(4))
	if len(star.Body) != 4 || len(star.Head) != 1 {
		t.Fatalf("star query: %s", star)
	}
	cycle := cq.MustParse(CycleQuery(3))
	if len(cycle.Body) != 3 || len(cycle.Head) != 0 {
		t.Fatalf("cycle query: %s", cycle)
	}
}

func TestClosedBoolRelHasClosureProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	checks := map[schaefer.Class]func(*schaefer.BoolRel) bool{
		schaefer.ZeroValid:  (*schaefer.BoolRel).IsZeroValid,
		schaefer.OneValid:   (*schaefer.BoolRel).IsOneValid,
		schaefer.Horn:       (*schaefer.BoolRel).IsHorn,
		schaefer.DualHorn:   (*schaefer.BoolRel).IsDualHorn,
		schaefer.Bijunctive: (*schaefer.BoolRel).IsBijunctive,
		schaefer.Affine:     (*schaefer.BoolRel).IsAffine,
	}
	for class, check := range checks {
		for trial := 0; trial < 20; trial++ {
			r := ClosedBoolRel(rng, 2+rng.Intn(3), class, 1+rng.Intn(4))
			if !check(r) {
				t.Fatalf("class %v trial %d: generated relation %v lacks the closure property", class, trial, r)
			}
			if r.Len() == 0 {
				t.Fatalf("class %v: empty relation generated", class)
			}
		}
	}
}

func TestCSPOnGraphPrimal(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := RandomGraph(rng, 7, 0.5)
	p := CSPOnGraph(rng, g, 3, 0.3)
	pg := treewidth.PrimalGraph(p)
	for _, e := range g.Edges() {
		if !pg.HasEdge(e[0], e[1]) {
			t.Fatalf("primal graph missing edge %v", e)
		}
	}
	if pg.NumEdges() != g.NumEdges() {
		t.Fatalf("primal edges %d != graph edges %d", pg.NumEdges(), g.NumEdges())
	}
}

func TestNotEqualTable(t *testing.T) {
	nt := NotEqualTable(3)
	if nt.Len() != 6 || nt.Has([]int{1, 1}) || !nt.Has([]int{0, 2}) {
		t.Fatalf("NotEqualTable wrong: %v", nt.Tuples())
	}
}
