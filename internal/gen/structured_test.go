package gen

import (
	"math"
	"math/rand"
	"testing"

	"csdb/internal/hypergraph"
)

func TestRandomTreeIsTree(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(20)
		g := RandomTree(rng, n)
		if g.N() != n {
			t.Fatalf("trial %d: %d vertices, want %d", trial, g.N(), n)
		}
		if m := len(g.Edges()); m != n-1 {
			t.Fatalf("trial %d: %d edges on %d vertices", trial, m, n)
		}
		// n vertices, n-1 edges and connectivity-by-construction (each
		// vertex attaches to an earlier one) make it a tree; double-check
		// acyclicity through the hypergraph view.
		h := hypergraph.New(n)
		for _, e := range g.Edges() {
			h.MustAddEdge(e[0], e[1])
		}
		if n > 1 && !h.IsAcyclic() {
			t.Fatalf("trial %d: RandomTree produced a cycle", trial)
		}
	}
}

func TestRandomTableDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	// tightness 0 keeps everything, 1 keeps nothing.
	if got := RandomTable(rng, 2, 3, 0).Len(); got != 9 {
		t.Fatalf("tightness 0: %d tuples, want 9", got)
	}
	if got := RandomTable(rng, 2, 3, 1).Len(); got != 0 {
		t.Fatalf("tightness 1: %d tuples, want 0", got)
	}
	// Intermediate tightness lands near the expected density.
	total, keeps := 0, 0
	for trial := 0; trial < 50; trial++ {
		tbl := RandomTable(rng, 3, 3, 0.4)
		total += 27
		keeps += tbl.Len()
	}
	want := 0.6
	if got := float64(keeps) / float64(total); math.Abs(got-want) > 0.05 {
		t.Fatalf("tightness 0.4 kept %.3f of tuples, want ≈ %.2f", got, want)
	}
}

func TestAcyclicCSPIsAcyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 100; trial++ {
		edges := 1 + rng.Intn(10)
		maxArity := 1 + rng.Intn(4)
		p := AcyclicCSP(rng, edges, maxArity, 2+rng.Intn(3), 0.3)
		if len(p.Constraints) != edges {
			t.Fatalf("trial %d: %d constraints, want %d", trial, len(p.Constraints), edges)
		}
		for _, con := range p.Constraints {
			if len(con.Scope) > maxArity {
				t.Fatalf("trial %d: scope %v exceeds max arity %d", trial, con.Scope, maxArity)
			}
		}
		if acyclic, _ := hypergraph.FromInstance(p).GYO(); !acyclic {
			t.Fatalf("trial %d: AcyclicCSP produced a cyclic hypergraph", trial)
		}
	}
}
