package gen

import (
	"math"
	"math/rand"

	"csdb/internal/csp"
)

// Hard benchmark families for the search engines. Pigeonhole instances are
// provably exponential for any resolution-bounded backtracker and reward
// restarts + nogoods; quasigroup completion and phase-transition model-B
// instances are the classic hard-but-satisfiable and critically-constrained
// workloads from the randomized-restarts literature.

// Pigeonhole returns the pigeonhole instance: `pigeons` variables over
// `holes` values, all pairwise distinct. It is satisfiable iff
// pigeons <= holes; with pigeons = holes+1 it is the canonical UNSAT family
// whose refutations are exponential for chronological backtracking.
func Pigeonhole(pigeons, holes int) *csp.Instance {
	p := csp.NewInstance(pigeons, holes)
	neq := NotEqualTable(holes)
	for i := 0; i < pigeons; i++ {
		for j := i + 1; j < pigeons; j++ {
			p.MustAddConstraint([]int{i, j}, neq)
		}
	}
	return p
}

// Quasigroup returns a quasigroup-completion instance: an n×n Latin square
// with all but `holes` cells revealed. Cell (i,j) is variable i*n+j; rows and
// columns are pairwise-disequality cliques, and revealed cells are singleton
// domains taken from a randomly scrambled cyclic Latin square — so every
// instance is satisfiable by construction, while the interaction of row and
// column cliques through the unrevealed cells makes the search non-trivial.
func Quasigroup(rng *rand.Rand, n, holes int) *csp.Instance {
	p := csp.NewInstance(n*n, n)
	neq := NotEqualTable(n)
	for i := 0; i < n; i++ {
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				p.MustAddConstraint([]int{i*n + a, i*n + b}, neq) // row i
				p.MustAddConstraint([]int{a*n + i, b*n + i}, neq) // column i
			}
		}
	}
	// Scrambled cyclic square: sym[(row[i]+col[j]) mod n] is a Latin square
	// for any permutations row, col, sym.
	rowP := rng.Perm(n)
	colP := rng.Perm(n)
	symP := rng.Perm(n)
	if holes > n*n {
		holes = n * n
	}
	hole := make([]bool, n*n)
	for _, c := range rng.Perm(n * n)[:holes] {
		hole[c] = true
	}
	p.Domains = make([][]int, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if !hole[i*n+j] {
				p.Domains[i*n+j] = []int{symP[(rowP[i]+colP[j])%n]}
			}
		}
	}
	return p
}

// PhaseTransition returns a model-B random CSP at the satisfiability phase
// transition: the constraint tightness is set to the critical value
// p2 = 1 - d^(-2/(density*(n-1))) where the expected number of solutions is
// one, which is where random CSPs are empirically hardest (half the draws
// SAT, half UNSAT, both sides expensive).
func PhaseTransition(rng *rand.Rand, n, d int, density float64) *csp.Instance {
	p2 := 1 - math.Pow(float64(d), -2/(density*float64(n-1)))
	return ModelB(rng, n, d, density, p2)
}
