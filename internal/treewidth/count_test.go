package treewidth

import (
	"math/big"
	"math/rand"
	"testing"

	"csdb/internal/csp"
	"csdb/internal/structure"
)

func TestCountOnKnownChromaticPolynomials(t *testing.T) {
	// Proper k-colorings: path P_n has k(k-1)^(n-1); cycle C_n has
	// (k-1)^n + (-1)^n (k-1).
	cases := []struct {
		name string
		p    *csp.Instance
		want int64
	}{
		{"P4 2-col", csp.MustFromStructures(structure.Path(4), structure.Clique(2)), 2},
		{"P4 3-col", csp.MustFromStructures(structure.Path(4), structure.Clique(3)), 24},
		{"C5 3-col", csp.MustFromStructures(structure.Cycle(5), structure.Clique(3)), 30},
		{"C6 3-col", csp.MustFromStructures(structure.Cycle(6), structure.Clique(3)), 66},
		{"C5 2-col", csp.MustFromStructures(structure.Cycle(5), structure.Clique(2)), 0},
		{"C6 2-col", csp.MustFromStructures(structure.Cycle(6), structure.Clique(2)), 2},
	}
	for _, c := range cases {
		got, err := Count(c.p)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got.Cmp(big.NewInt(c.want)) != 0 {
			t.Fatalf("%s: count = %v, want %d", c.name, got, c.want)
		}
	}
}

func TestCountMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 80; trial++ {
		p := randomInstance(rng, 3+rng.Intn(4), 2+rng.Intn(2))
		want := csp.CountSolutions(p, 0)
		got, err := Count(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got.Cmp(big.NewInt(want)) != 0 {
			t.Fatalf("trial %d: DP count %v, enumeration %d", trial, got, want)
		}
	}
}

func TestCountWithDomainsAndUnary(t *testing.T) {
	p := csp.NewInstance(3, 3)
	p.Domains = [][]int{{0, 1}, nil, {2}}
	p.MustAddConstraint([]int{0, 1}, csp.TableOf(2, []int{0, 0}, []int{0, 1}, []int{1, 2}))
	want := csp.CountSolutions(p, 0)
	got, err := Count(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(want)) != 0 {
		t.Fatalf("count %v, enumeration %d", got, want)
	}
}

func TestCountEmptyAndUnconstrained(t *testing.T) {
	empty := csp.NewInstance(0, 5)
	got, err := Count(empty)
	if err != nil || got.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("empty instance count = %v, %v", got, err)
	}
	free := csp.NewInstance(3, 4) // 4^3 = 64
	got, err = Count(free)
	if err != nil || got.Cmp(big.NewInt(64)) != 0 {
		t.Fatalf("unconstrained count = %v, %v", got, err)
	}
}

func TestCountLargeTreewidthBoundedInstance(t *testing.T) {
	// 2-colorings of a path with 64 vertices: exactly 2, computed without
	// enumerating the 2^64 assignment space.
	p := csp.MustFromStructures(structure.Path(64), structure.Clique(2))
	got, err := Count(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("P64 2-colorings = %v, want 2", got)
	}
	// 3-colorings of the same path: 3 * 2^63 — needs big integers.
	p3 := csp.MustFromStructures(structure.Path(64), structure.Clique(3))
	got3, err := Count(p3)
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Lsh(big.NewInt(3), 63)
	if got3.Cmp(want) != 0 {
		t.Fatalf("P64 3-colorings = %v, want %v", got3, want)
	}
}

func TestCountTernaryConstraints(t *testing.T) {
	p := csp.NewInstance(4, 2)
	exactlyOne := csp.TableOf(3, []int{1, 0, 0}, []int{0, 1, 0}, []int{0, 0, 1})
	p.MustAddConstraint([]int{0, 1, 2}, exactlyOne)
	p.MustAddConstraint([]int{1, 2, 3}, exactlyOne)
	want := csp.CountSolutions(p, 0)
	got, err := Count(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(want)) != 0 {
		t.Fatalf("count %v, enumeration %d", got, want)
	}
}
