package treewidth

import (
	"fmt"
	"math/bits"

	"csdb/internal/graph"
)

// Exact computes the exact treewidth of g by branch-and-bound over
// elimination orderings with memoization on eliminated vertex sets (the
// graph after eliminating a set does not depend on the elimination order of
// the set). Practical up to roughly 20 vertices; the practical substitute
// for Bodlaender's fixed-k linear-time algorithm the paper cites.
func Exact(g *graph.Graph) (int, error) {
	n := g.N()
	if n > 24 {
		return 0, fmt.Errorf("treewidth: exact solver limited to 24 vertices, got %d", n)
	}
	if n == 0 {
		return -1, nil // conventional: empty graph
	}
	// Upper bound from the heuristics.
	ub := BestHeuristic(g).Width()
	if ub <= 0 {
		return ub, nil
	}
	adj := make([]uint32, n)
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(v) {
			if u != v {
				adj[v] |= 1 << uint(u)
			}
		}
	}
	// Binary search the optimum: find smallest k with an ordering of width
	// <= k. A direct BnB on the best achievable width is equivalent; use
	// decision checks which memoize well.
	lo, hi := 0, ub
	for lo < hi {
		mid := (lo + hi) / 2
		if decideWidth(adj, n, mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}

// IsAtMost reports whether tw(g) <= k, exactly (small graphs only).
func IsAtMost(g *graph.Graph, k int) (bool, error) {
	w, err := Exact(g)
	if err != nil {
		return false, err
	}
	return w <= k, nil
}

// decideWidth checks whether there is an elimination ordering of width <= k,
// memoizing on the set of eliminated vertices.
func decideWidth(adj []uint32, n, k int) bool {
	memo := make(map[uint32]bool)
	full := uint32(1)<<uint(n) - 1

	// neighborsAfter returns the neighborhood of v in the graph where the
	// vertex set `gone` has been eliminated: the set of vertices outside
	// gone reachable from v through eliminated vertices only.
	neighborsAfter := func(v int, gone uint32) uint32 {
		visited := uint32(1 << uint(v))
		frontier := adj[v]
		result := uint32(0)
		for frontier != 0 {
			u := bits.TrailingZeros32(frontier)
			frontier &^= 1 << uint(u)
			if visited&(1<<uint(u)) != 0 {
				continue
			}
			visited |= 1 << uint(u)
			if gone&(1<<uint(u)) != 0 {
				frontier |= adj[u] &^ visited
			} else {
				result |= 1 << uint(u)
			}
		}
		return result
	}

	var rec func(gone uint32) bool
	rec = func(gone uint32) bool {
		if gone == full {
			return true
		}
		if v, ok := memo[gone]; ok {
			return v
		}
		ok := false
		for v := 0; v < n; v++ {
			if gone&(1<<uint(v)) != 0 {
				continue
			}
			nb := neighborsAfter(v, gone)
			if bits.OnesCount32(nb) <= k {
				if rec(gone | 1<<uint(v)) {
					ok = true
					break
				}
			}
		}
		memo[gone] = ok
		return ok
	}
	return rec(0)
}
