package treewidth

import (
	"fmt"
	"math/big"

	"csdb/internal/csp"
)

// CountDecomposed counts the solutions of the instance by dynamic
// programming over a tree decomposition of its primal graph — the counting
// extension of Theorem 6.2: #CSP is computable in polynomial time on
// bounded-treewidth instances (whereas it is #P-hard in general). Counts
// are exact big integers, since solution counts grow as d^n.
func CountDecomposed(p *csp.Instance, d *Decomposition) (*big.Int, error) {
	q := p.NormalizeDistinct()
	if q.Vars == 0 {
		return big.NewInt(1), nil
	}
	if err := d.Validate(PrimalGraph(q)); err != nil {
		return nil, fmt.Errorf("treewidth: invalid decomposition: %w", err)
	}

	consAt := make([][]*csp.Constraint, d.NumBags())
	for _, con := range q.Constraints {
		bi := d.BagContaining(con.Scope)
		if bi < 0 {
			return nil, fmt.Errorf("treewidth: no bag contains scope %v", con.Scope)
		}
		consAt[bi] = append(consAt[bi], con)
	}

	parent, order := d.Rooted(0)
	children := make([][]int, d.NumBags())
	for b, pa := range parent {
		if pa >= 0 {
			children[pa] = append(children[pa], b)
		}
	}

	// sharedWithParent[b]: positions (in bag b) of variables shared with
	// the parent bag.
	sharedWithParent := make([][]int, d.NumBags())
	for b, pa := range parent {
		if pa < 0 {
			continue
		}
		paSet := make(map[int]bool)
		for _, v := range d.Bags[pa] {
			paSet[v] = true
		}
		for i, v := range d.Bags[b] {
			if paSet[v] {
				sharedWithParent[b] = append(sharedWithParent[b], i)
			}
		}
	}

	// For each bag, after processing: counts keyed by the projection of the
	// bag assignment onto the shared-with-parent variables. Each count
	// already excludes double counting: variables shared with the parent
	// are "owned" by the parent, so the child's contribution divides out...
	// more precisely, the child table maps shared-projection -> number of
	// assignments of (subtree variables \ shared variables) consistent
	// below, and the parent multiplies them in.
	childTables := make([]map[string]*big.Int, d.NumBags())

	for _, b := range order { // bottom-up
		bag := d.Bags[b]
		table := make(map[string]*big.Int)

		assign := make([]int, len(bag))
		var enumerate func(i int)
		enumerate = func(i int) {
			if i == len(bag) {
				for _, con := range consAt[b] {
					row := make([]int, len(con.Scope))
					for k, v := range con.Scope {
						row[k] = assign[indexOf(bag, v)]
					}
					if !con.Table.Has(row) {
						return
					}
				}
				total := big.NewInt(1)
				for ci, c := range children[b] {
					_ = ci
					key := childKeyFromParent(assign, bag, d.Bags[c], sharedWithParent[c])
					sub, ok := childTables[c][key]
					if !ok {
						return // some child has no consistent extension
					}
					total.Mul(total, sub)
				}
				key := projKeyPositions(assign, sharedWithParent[b])
				if acc, ok := table[key]; ok {
					acc.Add(acc, total)
				} else {
					table[key] = total
				}
				return
			}
			v := bag[i]
			for _, val := range q.DomainOf(v) {
				assign[i] = val
				enumerate(i + 1)
			}
		}
		enumerate(0)
		childTables[b] = table
		if len(table) == 0 && parent[b] >= 0 {
			return big.NewInt(0), nil
		}
	}

	root := order[len(order)-1]
	total := big.NewInt(0)
	for _, c := range childTables[root] {
		total.Add(total, c)
	}
	// Variables in no bag cannot exist (Validate guarantees coverage), so
	// the root sum is the full solution count... except that the bag-level
	// counting above counts each root-bag assignment once per projection
	// key: keys at the root project onto sharedWithParent[root], which is
	// empty, so all assignments accumulate under one key. Correct as is.
	return total, nil
}

// childKeyFromParent computes the child's shared-projection key from the
// parent bag's assignment.
func childKeyFromParent(assign []int, parentBag, childBag []int, childSharedPos []int) string {
	b := make([]byte, 0, len(childSharedPos)*3)
	for _, cpos := range childSharedPos {
		v := childBag[cpos]
		b = appendInt(b, assign[indexOf(parentBag, v)])
	}
	return string(b)
}

// Count computes the exact number of solutions using the best heuristic
// decomposition of the primal graph.
func Count(p *csp.Instance) (*big.Int, error) {
	d := BestHeuristic(PrimalGraph(p))
	return CountDecomposed(p, d)
}
