// Package treewidth implements tree decompositions of graphs and relational
// structures (Section 6 of the paper): validation of the three decomposition
// properties, width computation, elimination-ordering heuristics
// (min-degree, min-fill, maximum-cardinality search), exact treewidth by
// branch-and-bound for small graphs, the dynamic-programming CSP solver
// behind Theorem 6.2 (CSP(A(k), F) is solvable in polynomial time), and the
// construction of the (k+1)-variable existential-positive formula φ_A of
// Proposition 6.1.
//
// The paper cites Bodlaender's linear-time recognition algorithm for fixed
// k; as in every practical treewidth system, we substitute exact
// branch-and-bound (small graphs) plus standard heuristics, and generate
// bounded-width inputs as partial k-trees so the width is known by
// construction (see DESIGN.md).
package treewidth

import (
	"fmt"
	"sort"

	"csdb/internal/graph"
)

// Decomposition is a tree decomposition: a tree over bag indices, each bag a
// set of vertices of the decomposed graph.
type Decomposition struct {
	Bags [][]int // Bags[i] is sorted ascending
	Adj  [][]int // tree adjacency between bag indices
}

// NumBags returns the number of bags.
func (d *Decomposition) NumBags() int { return len(d.Bags) }

// Width returns the width of the decomposition: max bag size minus one.
func (d *Decomposition) Width() int {
	w := 0
	for _, b := range d.Bags {
		if len(b) > w {
			w = len(b)
		}
	}
	return w - 1
}

// Validate checks that d is a tree decomposition of g:
//  1. every vertex of g occurs in some bag;
//  2. every edge of g is contained in some bag;
//  3. for every vertex, the bags containing it induce a subtree
//     (connectedness);
//
// and that the bag graph is in fact a tree (connected and acyclic).
func (d *Decomposition) Validate(g *graph.Graph) error {
	nb := len(d.Bags)
	if nb == 0 {
		if g.N() == 0 {
			return nil
		}
		return fmt.Errorf("treewidth: no bags for a nonempty graph")
	}
	if len(d.Adj) != nb {
		return fmt.Errorf("treewidth: Adj has %d entries for %d bags", len(d.Adj), nb)
	}
	// Tree check: connected with nb-1 undirected edges.
	edgeCount := 0
	for i, ns := range d.Adj {
		for _, j := range ns {
			if j < 0 || j >= nb {
				return fmt.Errorf("treewidth: bag edge to out-of-range bag %d", j)
			}
			if j == i {
				return fmt.Errorf("treewidth: self-loop at bag %d", i)
			}
			edgeCount++
		}
	}
	if edgeCount%2 != 0 {
		return fmt.Errorf("treewidth: asymmetric bag adjacency")
	}
	edgeCount /= 2
	if edgeCount != nb-1 {
		return fmt.Errorf("treewidth: bag graph has %d edges, a tree on %d bags needs %d", edgeCount, nb, nb-1)
	}
	visited := make([]bool, nb)
	stack := []int{0}
	visited[0] = true
	seen := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range d.Adj[v] {
			if !visited[u] {
				visited[u] = true
				seen++
				stack = append(stack, u)
			}
		}
	}
	if seen != nb {
		return fmt.Errorf("treewidth: bag graph is disconnected")
	}

	// Property 1: coverage of vertices.
	inSomeBag := make([]bool, g.N())
	for bi, b := range d.Bags {
		if len(b) == 0 {
			return fmt.Errorf("treewidth: empty bag %d", bi)
		}
		for _, v := range b {
			if v < 0 || v >= g.N() {
				return fmt.Errorf("treewidth: bag %d contains out-of-range vertex %d", bi, v)
			}
			inSomeBag[v] = true
		}
	}
	for v := 0; v < g.N(); v++ {
		if !inSomeBag[v] {
			return fmt.Errorf("treewidth: vertex %d is in no bag", v)
		}
	}

	// Property 2: coverage of edges.
	bagSets := make([]map[int]bool, nb)
	for i, b := range d.Bags {
		bagSets[i] = make(map[int]bool, len(b))
		for _, v := range b {
			bagSets[i][v] = true
		}
	}
	for _, e := range g.Edges() {
		ok := false
		for i := range d.Bags {
			if bagSets[i][e[0]] && bagSets[i][e[1]] {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("treewidth: edge (%d,%d) is in no bag", e[0], e[1])
		}
	}

	// Property 3: connectedness of each vertex's bags.
	for v := 0; v < g.N(); v++ {
		var start int = -1
		count := 0
		for i := range d.Bags {
			if bagSets[i][v] {
				count++
				if start < 0 {
					start = i
				}
			}
		}
		if count <= 1 {
			continue
		}
		// BFS restricted to bags containing v.
		vis := make([]bool, nb)
		vis[start] = true
		reached := 1
		st := []int{start}
		for len(st) > 0 {
			x := st[len(st)-1]
			st = st[:len(st)-1]
			for _, y := range d.Adj[x] {
				if !vis[y] && bagSets[y][v] {
					vis[y] = true
					reached++
					st = append(st, y)
				}
			}
		}
		if reached != count {
			return fmt.Errorf("treewidth: bags containing vertex %d are not connected", v)
		}
	}
	return nil
}

// BagContaining returns the index of some bag containing all the given
// vertices, or -1. Every clique of g lies within some bag of any valid tree
// decomposition, so for constraint scopes this always succeeds.
func (d *Decomposition) BagContaining(vs []int) int {
bags:
	for i, b := range d.Bags {
		set := make(map[int]bool, len(b))
		for _, v := range b {
			set[v] = true
		}
		for _, v := range vs {
			if !set[v] {
				continue bags
			}
		}
		return i
	}
	return -1
}

// Rooted returns parent pointers and a bottom-up ordering of the bags with
// the given root.
func (d *Decomposition) Rooted(root int) (parent []int, order []int) {
	nb := len(d.Bags)
	parent = make([]int, nb)
	for i := range parent {
		parent[i] = -2 // unvisited
	}
	parent[root] = -1
	queue := []int{root}
	var bfs []int
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		bfs = append(bfs, v)
		for _, u := range d.Adj[v] {
			if parent[u] == -2 {
				parent[u] = v
				queue = append(queue, u)
			}
		}
	}
	// Bottom-up order: reverse BFS.
	order = make([]int, len(bfs))
	for i, v := range bfs {
		order[len(bfs)-1-i] = v
	}
	return parent, order
}

// TrivialDecomposition returns the single-bag decomposition (width n-1).
func TrivialDecomposition(n int) *Decomposition {
	bag := make([]int, n)
	for i := range bag {
		bag[i] = i
	}
	return &Decomposition{Bags: [][]int{bag}, Adj: [][]int{nil}}
}

func sortedCopy(s []int) []int {
	c := append([]int(nil), s...)
	sort.Ints(c)
	return c
}
