package treewidth

import (
	"sort"

	"csdb/internal/graph"
)

// Heuristic selects an elimination-ordering heuristic.
type Heuristic int

const (
	// MinFill eliminates the vertex adding the fewest fill edges. Usually
	// the best widths of the three.
	MinFill Heuristic = iota
	// MinDegree eliminates the vertex of minimum degree.
	MinDegree
	// MCS orders vertices by maximum cardinality search and eliminates in
	// reverse.
	MCS
)

func (h Heuristic) String() string {
	switch h {
	case MinFill:
		return "min-fill"
	case MinDegree:
		return "min-degree"
	case MCS:
		return "mcs"
	}
	return "unknown"
}

// elimGraph is a mutable adjacency-set view used during elimination.
type elimGraph struct {
	n   int
	adj []map[int]bool
}

func newElimGraph(g *graph.Graph) *elimGraph {
	e := &elimGraph{n: g.N(), adj: make([]map[int]bool, g.N())}
	for v := 0; v < g.N(); v++ {
		e.adj[v] = make(map[int]bool)
		for _, u := range g.Neighbors(v) {
			if u != v { // loops are irrelevant for treewidth
				e.adj[v][u] = true
			}
		}
	}
	return e
}

// eliminate removes v, turning its neighborhood into a clique; it returns
// the neighborhood at elimination time.
func (e *elimGraph) eliminate(v int) []int {
	nb := make([]int, 0, len(e.adj[v]))
	for u := range e.adj[v] {
		nb = append(nb, u)
	}
	sort.Ints(nb)
	for i := 0; i < len(nb); i++ {
		for j := i + 1; j < len(nb); j++ {
			e.adj[nb[i]][nb[j]] = true
			e.adj[nb[j]][nb[i]] = true
		}
	}
	for _, u := range nb {
		delete(e.adj[u], v)
	}
	e.adj[v] = nil
	return nb
}

// fillCount returns the number of fill edges eliminating v would add.
func (e *elimGraph) fillCount(v int) int {
	nb := make([]int, 0, len(e.adj[v]))
	for u := range e.adj[v] {
		nb = append(nb, u)
	}
	fill := 0
	for i := 0; i < len(nb); i++ {
		for j := i + 1; j < len(nb); j++ {
			if !e.adj[nb[i]][nb[j]] {
				fill++
			}
		}
	}
	return fill
}

// Ordering computes an elimination ordering of g with the given heuristic.
func Ordering(g *graph.Graph, h Heuristic) []int {
	if h == MCS {
		return mcsOrdering(g)
	}
	e := newElimGraph(g)
	remaining := make(map[int]bool, g.N())
	for v := 0; v < g.N(); v++ {
		remaining[v] = true
	}
	order := make([]int, 0, g.N())
	for len(remaining) > 0 {
		best, bestScore := -1, 1<<30
		// Deterministic iteration: ascending vertex ids.
		for v := 0; v < g.N(); v++ {
			if !remaining[v] {
				continue
			}
			var score int
			if h == MinDegree {
				score = len(e.adj[v])
			} else {
				score = e.fillCount(v)
			}
			if score < bestScore {
				best, bestScore = v, score
			}
		}
		e.eliminate(best)
		delete(remaining, best)
		order = append(order, best)
	}
	return order
}

// mcsOrdering runs maximum cardinality search and returns the reverse visit
// order (a perfect elimination ordering on chordal graphs).
func mcsOrdering(g *graph.Graph) []int {
	n := g.N()
	weight := make([]int, n)
	visited := make([]bool, n)
	visit := make([]int, 0, n)
	for step := 0; step < n; step++ {
		best, bestW := -1, -1
		for v := 0; v < n; v++ {
			if !visited[v] && weight[v] > bestW {
				best, bestW = v, weight[v]
			}
		}
		visited[best] = true
		visit = append(visit, best)
		for _, u := range g.Neighbors(best) {
			if !visited[u] {
				weight[u]++
			}
		}
	}
	// Eliminate in reverse visit order.
	order := make([]int, n)
	for i, v := range visit {
		order[n-1-i] = v
	}
	return order
}

// WidthOfOrdering returns the width induced by eliminating g in the given
// order: the maximum neighborhood size at elimination time.
func WidthOfOrdering(g *graph.Graph, order []int) int {
	e := newElimGraph(g)
	w := 0
	for _, v := range order {
		if d := len(e.adj[v]); d > w {
			w = d
		}
		e.eliminate(v)
	}
	return w
}

// FromOrdering builds a tree decomposition from an elimination ordering by
// the standard construction: the bag of v is {v} ∪ N(v) at elimination
// time, and it is attached to the bag of the earliest-eliminated later
// neighbor. Isolated pieces are stitched to keep the bag graph a tree.
func FromOrdering(g *graph.Graph, order []int) *Decomposition {
	n := g.N()
	if n == 0 {
		return &Decomposition{}
	}
	e := newElimGraph(g)
	pos := make([]int, n)
	for i, v := range order {
		pos[v] = i
	}
	bagOf := make([]int, n) // vertex -> its bag index (same order as order)
	d := &Decomposition{}
	for i, v := range order {
		nb := e.eliminate(v)
		bag := append([]int{v}, nb...)
		sort.Ints(bag)
		d.Bags = append(d.Bags, bag)
		d.Adj = append(d.Adj, nil)
		bagOf[v] = i
	}
	// Attach bag(v) to bag(u) where u is the neighbor of v (in v's bag)
	// eliminated soonest after v.
	attach := func(a, b int) {
		d.Adj[a] = append(d.Adj[a], b)
		d.Adj[b] = append(d.Adj[b], a)
	}
	var roots []int
	for i, v := range order {
		next, nextPos := -1, 1<<30
		for _, u := range d.Bags[i] {
			if u == v {
				continue
			}
			if pos[u] > pos[v] && pos[u] < nextPos {
				next, nextPos = u, pos[u]
			}
		}
		if next >= 0 {
			attach(i, bagOf[next])
		} else {
			roots = append(roots, i)
		}
	}
	// Stitch multiple components into one tree.
	for i := 1; i < len(roots); i++ {
		attach(roots[0], roots[i])
	}
	return d
}

// Decompose computes a tree decomposition of g with the given heuristic.
func Decompose(g *graph.Graph, h Heuristic) *Decomposition {
	return FromOrdering(g, Ordering(g, h))
}

// DecomposeWithin tries the heuristics for a decomposition of width at most
// budget and reports whether one was found (the decomposition is returned
// either way — callers that can use a wider one may still want it). Since
// the heuristics only upper-bound the true treewidth, a false answer means
// "no witness found", not "treewidth exceeds budget".
func DecomposeWithin(g *graph.Graph, budget int) (*Decomposition, bool) {
	d := BestHeuristic(g)
	return d, d.Width() <= budget
}

// BestHeuristic runs all three heuristics and returns the decomposition of
// smallest width.
func BestHeuristic(g *graph.Graph) *Decomposition {
	var best *Decomposition
	for _, h := range []Heuristic{MinFill, MinDegree, MCS} {
		d := Decompose(g, h)
		if best == nil || d.Width() < best.Width() {
			best = d
		}
	}
	return best
}
