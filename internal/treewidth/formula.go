package treewidth

import (
	"fmt"
	"sort"

	"csdb/internal/graph"
	"csdb/internal/logic"
	"csdb/internal/structure"
)

// This file implements the constructive direction of Proposition 6.1: from a
// width-k tree decomposition of (the Gaifman graph of) a structure A, build
// an ∃FO_{∧,+} sentence equivalent to the canonical query φ_A that uses at
// most k+1 distinct variable names. Variable names are registers reused
// across branches of the decomposition; the connectedness property
// guarantees reuse never captures an outer occurrence.

// GaifmanGraph returns the Gaifman (primal) graph of a structure.
func GaifmanGraph(a *structure.Structure) *graph.Graph {
	g := graph.New(a.Size())
	for _, e := range a.GaifmanEdges() {
		g.AddEdge(e[0], e[1])
	}
	return g
}

// BuildFormula builds the bounded-variable sentence φ_A from a tree
// decomposition d of a's Gaifman graph. The result uses at most
// d.Width()+1 distinct variables and is true in a structure B iff there is
// a homomorphism A → B (Proposition 6.1 together with Proposition 2.3).
func BuildFormula(a *structure.Structure, d *Decomposition) (logic.Formula, error) {
	g := GaifmanGraph(a)
	if a.Size() == 0 {
		return &logic.And{}, nil
	}
	if err := d.Validate(g); err != nil {
		return nil, fmt.Errorf("treewidth: invalid decomposition: %w", err)
	}

	// Assign every fact of A to a bag containing all its elements.
	type fact struct {
		pred string
		args []int
	}
	factsAt := make([][]fact, d.NumBags())
	for _, sym := range a.Voc().Symbols() {
		for _, t := range a.Rel(sym.Name).Tuples() {
			distinct := dedupInts(t)
			bi := d.BagContaining(distinct)
			if bi < 0 {
				return nil, fmt.Errorf("treewidth: no bag contains the elements of fact %s%v", sym.Name, t)
			}
			factsAt[bi] = append(factsAt[bi], fact{pred: sym.Name, args: t})
		}
	}

	parent, order := d.Rooted(0)
	children := make([][]int, d.NumBags())
	for b, pa := range parent {
		if pa >= 0 {
			children[pa] = append(children[pa], b)
		}
	}

	// Register allocation, top-down (order is bottom-up, so walk it in
	// reverse). reg[elem] is the variable register of the element.
	maxRegs := 0
	for _, b := range d.Bags {
		if len(b) > maxRegs {
			maxRegs = len(b)
		}
	}
	reg := make([]int, a.Size())
	for i := range reg {
		reg[i] = -1
	}
	newIn := make([][]int, d.NumBags()) // elements introduced at each bag
	for i := len(order) - 1; i >= 0; i-- {
		b := order[i]
		used := make([]bool, maxRegs)
		var fresh []int
		for _, v := range d.Bags[b] {
			if reg[v] >= 0 {
				used[reg[v]] = true
			} else {
				fresh = append(fresh, v)
			}
		}
		for _, v := range fresh {
			r := 0
			for used[r] {
				r++
			}
			if r >= maxRegs {
				return nil, fmt.Errorf("treewidth: register allocation overflow at bag %d", b)
			}
			used[r] = true
			reg[v] = r
			newIn[b] = append(newIn[b], v)
		}
	}

	regName := func(r int) string { return fmt.Sprintf("x%d", r) }

	// Build formulas bottom-up.
	sub := make([]logic.Formula, d.NumBags())
	for _, b := range order {
		var conj []logic.Formula
		for _, f := range factsAt[b] {
			args := make([]string, len(f.args))
			for i, e := range f.args {
				args[i] = regName(reg[e])
			}
			conj = append(conj, &logic.Atom{Pred: f.pred, Args: args})
		}
		for _, c := range children[b] {
			body := sub[c]
			// Quantify the variables introduced at c.
			for _, v := range newIn[c] {
				body = &logic.Exists{Var: regName(reg[v]), Body: body}
			}
			conj = append(conj, body)
		}
		sub[b] = &logic.And{Conjuncts: conj}
	}

	root := order[len(order)-1] // Rooted returns bottom-up order; last is root
	f := sub[root]
	for _, v := range newIn[root] {
		f = &logic.Exists{Var: regName(reg[v]), Body: f}
	}
	return f, nil
}

// FormulaForStructure decomposes a's Gaifman graph with the best heuristic
// and builds the bounded-variable sentence. It returns the formula and the
// decomposition width used (so callers can report the k+1 variable bound).
func FormulaForStructure(a *structure.Structure) (logic.Formula, int, error) {
	d := BestHeuristic(GaifmanGraph(a))
	f, err := BuildFormula(a, d)
	if err != nil {
		return nil, 0, err
	}
	return f, d.Width(), nil
}

func dedupInts(t []int) []int {
	c := append([]int(nil), t...)
	sort.Ints(c)
	out := c[:0]
	for i, v := range c {
		if i == 0 || v != c[i-1] {
			out = append(out, v)
		}
	}
	return out
}
