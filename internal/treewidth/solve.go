package treewidth

import (
	"fmt"
	"sort"

	"csdb/internal/csp"
	"csdb/internal/graph"
)

// This file implements the algorithmic content of Theorem 6.2: a CSP
// instance whose primal (Gaifman) graph has a tree decomposition of width w
// is solvable in time O(#bags · d^(w+1) · poly) by dynamic programming over
// the decomposition — polynomial for fixed w.

// PrimalGraph returns the Gaifman graph of the instance: one vertex per
// variable, with an edge between every two variables sharing a constraint
// scope.
func PrimalGraph(p *csp.Instance) *graph.Graph {
	g := graph.New(p.Vars)
	for _, con := range p.Constraints {
		for i := 0; i < len(con.Scope); i++ {
			for j := i + 1; j < len(con.Scope); j++ {
				if con.Scope[i] != con.Scope[j] {
					g.AddEdge(con.Scope[i], con.Scope[j])
				}
			}
		}
	}
	return g
}

// SolveDecomposed decides the instance by DP over the given tree
// decomposition of its primal graph and returns a solution when one exists.
// The decomposition must be valid for PrimalGraph(p); every constraint
// scope, being a clique of the primal graph, fits inside some bag.
func SolveDecomposed(p *csp.Instance, d *Decomposition) (csp.Result, error) {
	q := p.NormalizeDistinct()
	if q.Vars == 0 {
		return csp.Result{Found: true, Solution: []int{}}, nil
	}
	if err := d.Validate(PrimalGraph(q)); err != nil {
		return csp.Result{}, fmt.Errorf("treewidth: invalid decomposition: %w", err)
	}

	// Assign each constraint to one bag containing its whole scope.
	consAt := make([][]*csp.Constraint, d.NumBags())
	for _, con := range q.Constraints {
		bi := d.BagContaining(con.Scope)
		if bi < 0 {
			return csp.Result{}, fmt.Errorf("treewidth: no bag contains scope %v", con.Scope)
		}
		consAt[bi] = append(consAt[bi], con)
	}

	parent, order := d.Rooted(0)

	// children lists per bag.
	children := make([][]int, d.NumBags())
	for b, pa := range parent {
		if pa >= 0 {
			children[pa] = append(children[pa], b)
		}
	}

	// For each bag, enumerate locally consistent assignments, filter against
	// children's surviving assignments (projected to the shared variables),
	// and remember, for solution extraction, one compatible child assignment
	// per surviving parent assignment.
	type bagTable struct {
		assigns [][]int          // surviving assignments, aligned with Bags[b]
		keyIdx  map[string][]int // projection key on shared-with-parent vars -> indices
		// chosen[i][c] = index into children's assigns compatible with
		// assignment i, for child children[b][c].
		chosen [][]int
	}
	tables := make([]*bagTable, d.NumBags())

	sharedWithParent := make([][]int, d.NumBags()) // positions in bag of vars shared with parent
	for b, pa := range parent {
		if pa < 0 {
			continue
		}
		paSet := make(map[int]bool)
		for _, v := range d.Bags[pa] {
			paSet[v] = true
		}
		for i, v := range d.Bags[b] {
			if paSet[v] {
				sharedWithParent[b] = append(sharedWithParent[b], i)
			}
		}
	}

	nodes := int64(0)
	for _, b := range order { // bottom-up
		bag := d.Bags[b]
		tbl := &bagTable{keyIdx: make(map[string][]int)}
		// Shared positions with each child, from the child's perspective we
		// use the child's keyIdx; compute the projection of this bag's
		// assignment onto the intersection in the child's variable order.
		childProj := make([][][2]int, len(children[b])) // list of (bagPos, n/a) pairs... see below
		for ci, c := range children[b] {
			// For the child's sharedWithParent positions (in child bag
			// order), find the matching positions in this bag.
			posInBag := make(map[int]int)
			for i, v := range bag {
				posInBag[v] = i
			}
			var pairs [][2]int
			for _, cpos := range sharedWithParent[c] {
				v := d.Bags[c][cpos]
				pairs = append(pairs, [2]int{posInBag[v], cpos})
			}
			childProj[ci] = pairs
		}

		assign := make([]int, len(bag))
		var enumerate func(i int)
		enumerate = func(i int) {
			if i == len(bag) {
				nodes++
				// Check constraints assigned to this bag.
				for _, con := range consAt[b] {
					row := make([]int, len(con.Scope))
					for k, v := range con.Scope {
						row[k] = assign[indexOf(bag, v)]
					}
					if !con.Table.Has(row) {
						return
					}
				}
				// Check compatibility with every child.
				chosen := make([]int, len(children[b]))
				for ci, c := range children[b] {
					key := projKeyPairs(assign, childProj[ci])
					cands := tables[c].keyIdx[key]
					if len(cands) == 0 {
						return
					}
					chosen[ci] = cands[0]
				}
				idx := len(tbl.assigns)
				tbl.assigns = append(tbl.assigns, append([]int(nil), assign...))
				tbl.chosen = append(tbl.chosen, chosen)
				k := projKeyPositions(assign, sharedWithParent[b])
				tbl.keyIdx[k] = append(tbl.keyIdx[k], idx)
				return
			}
			v := bag[i]
			for _, val := range q.DomainOf(v) {
				assign[i] = val
				enumerate(i + 1)
			}
		}
		enumerate(0)
		tables[b] = tbl
		if len(tbl.assigns) == 0 {
			return csp.Result{Stats: csp.Stats{Nodes: nodes}}, nil
		}
	}

	// Extract a solution top-down.
	sol := make([]int, q.Vars)
	for i := range sol {
		sol[i] = -1
	}
	var fill func(b, idx int)
	fill = func(b, idx int) {
		for i, v := range d.Bags[b] {
			sol[v] = tables[b].assigns[idx][i]
		}
		for ci, c := range children[b] {
			// The recorded child choice was compatible when the parent
			// assignment was admitted; but we must re-match because the
			// recorded choice corresponds to THIS assignment index.
			fill(c, tables[b].chosen[idx][ci])
		}
	}
	fill(0, 0)
	for i := range sol {
		if sol[i] < 0 {
			sol[i] = firstVal(q, i)
		}
	}
	return csp.Result{Found: true, Solution: sol, Stats: csp.Stats{Nodes: nodes}}, nil
}

func firstVal(p *csp.Instance, v int) int {
	dom := p.DomainOf(v)
	if len(dom) == 0 {
		return 0
	}
	return dom[0]
}

// Solve decomposes the primal graph with the best heuristic and runs the DP.
func Solve(p *csp.Instance) (csp.Result, error) {
	d := BestHeuristic(PrimalGraph(p))
	return SolveDecomposed(p, d)
}

func indexOf(sorted []int, v int) int {
	i := sort.SearchInts(sorted, v)
	if i < len(sorted) && sorted[i] == v {
		return i
	}
	return -1
}

func projKeyPairs(assign []int, pairs [][2]int) string {
	b := make([]byte, 0, len(pairs)*3)
	for _, p := range pairs {
		b = appendInt(b, assign[p[0]])
	}
	return string(b)
}

func projKeyPositions(assign []int, positions []int) string {
	b := make([]byte, 0, len(positions)*3)
	for _, p := range positions {
		b = appendInt(b, assign[p])
	}
	return string(b)
}

func appendInt(b []byte, v int) []byte {
	if v == 0 {
		b = append(b, '0')
	}
	for v > 0 {
		b = append(b, byte('0'+v%10))
		v /= 10
	}
	return append(b, ',')
}
