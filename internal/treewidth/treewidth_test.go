package treewidth

import (
	"math/rand"
	"testing"

	"csdb/internal/csp"
	"csdb/internal/graph"
	"csdb/internal/logic"
	"csdb/internal/structure"
)

func TestTrivialDecomposition(t *testing.T) {
	g := graph.Clique(4)
	d := TrivialDecomposition(4)
	if err := d.Validate(g); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if d.Width() != 3 {
		t.Fatalf("Width = %d", d.Width())
	}
}

func TestValidateCatchesBadDecompositions(t *testing.T) {
	g := graph.Path(3) // edges (0,1),(1,2)
	cases := []struct {
		name string
		d    *Decomposition
	}{
		{"missing vertex", &Decomposition{Bags: [][]int{{0, 1}}, Adj: [][]int{nil}}},
		{"missing edge", &Decomposition{Bags: [][]int{{0, 1}, {2}}, Adj: [][]int{{1}, {0}}}},
		{"disconnected vertex bags", &Decomposition{
			Bags: [][]int{{0, 1}, {1, 2}, {0}},
			Adj:  [][]int{{1}, {0, 2}, {1}},
		}},
		{"cycle in bag graph", &Decomposition{
			Bags: [][]int{{0, 1}, {1, 2}, {1}},
			Adj:  [][]int{{1, 2}, {0, 2}, {0, 1}},
		}},
		{"disconnected bag graph", &Decomposition{
			Bags: [][]int{{0, 1}, {1, 2}},
			Adj:  [][]int{nil, nil},
		}},
		{"no bags", &Decomposition{}},
	}
	for _, c := range cases {
		if err := c.d.Validate(g); err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
	}
	good := &Decomposition{Bags: [][]int{{0, 1}, {1, 2}}, Adj: [][]int{{1}, {0}}}
	if err := good.Validate(g); err != nil {
		t.Fatalf("valid decomposition rejected: %v", err)
	}
}

func TestHeuristicDecompositionsAreValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	graphs := []*graph.Graph{
		graph.Path(8), graph.Cycle(9), graph.Clique(5), graph.Grid(3, 4), graph.Petersen(),
		randomG(rng, 10, 0.3), randomG(rng, 12, 0.2),
	}
	for gi, g := range graphs {
		for _, h := range []Heuristic{MinFill, MinDegree, MCS} {
			d := Decompose(g, h)
			if err := d.Validate(g); err != nil {
				t.Fatalf("graph %d heuristic %v: %v", gi, h, err)
			}
			if w := WidthOfOrdering(g, Ordering(g, h)); w != d.Width() {
				t.Fatalf("graph %d heuristic %v: ordering width %d != decomposition width %d", gi, h, w, d.Width())
			}
		}
	}
}

func TestKnownTreewidths(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"single vertex", graph.New(1), 0},
		{"edgeless", graph.New(4), 0},
		{"path", graph.Path(6), 1},
		{"cycle", graph.Cycle(6), 2},
		{"K4", graph.Clique(4), 3},
		{"K6", graph.Clique(6), 5},
		{"grid 3x3", graph.Grid(3, 3), 3},
		{"grid 2x5", graph.Grid(2, 5), 2},
		{"petersen", graph.Petersen(), 4},
	}
	for _, c := range cases {
		got, err := Exact(c.g)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Fatalf("%s: treewidth = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestExactRejectsLargeGraphs(t *testing.T) {
	if _, err := Exact(graph.New(30)); err == nil {
		t.Fatal("large graph accepted")
	}
}

func TestHeuristicsUpperBoundExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		g := randomG(rng, 7+rng.Intn(4), 0.35)
		exact, err := Exact(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range []Heuristic{MinFill, MinDegree, MCS} {
			if w := Decompose(g, h).Width(); w < exact {
				t.Fatalf("trial %d: heuristic %v width %d below exact %d", trial, h, w, exact)
			}
		}
		if w := BestHeuristic(g).Width(); w < exact {
			t.Fatalf("trial %d: best heuristic below exact", trial)
		}
	}
}

func TestIsAtMost(t *testing.T) {
	ok, err := IsAtMost(graph.Cycle(8), 2)
	if err != nil || !ok {
		t.Fatalf("cycle tw<=2: %v %v", ok, err)
	}
	ok, err = IsAtMost(graph.Cycle(8), 1)
	if err != nil || ok {
		t.Fatalf("cycle tw<=1: %v %v", ok, err)
	}
}

func TestPrimalGraph(t *testing.T) {
	p := csp.NewInstance(4, 2)
	p.MustAddConstraint([]int{0, 1, 2}, csp.TableOf(3, []int{0, 0, 0}))
	g := PrimalGraph(p)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || !g.HasEdge(0, 2) {
		t.Fatal("scope clique missing")
	}
	if g.HasEdge(0, 3) || g.N() != 4 {
		t.Fatal("primal graph wrong")
	}
}

func TestSolveDecomposedAgainstMAC(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 80; trial++ {
		p := randomInstance(rng, 3+rng.Intn(5), 2+rng.Intn(2))
		want := csp.Solve(p, csp.Options{}).Found
		res, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Found != want {
			t.Fatalf("trial %d: DP=%v MAC=%v", trial, res.Found, want)
		}
		if res.Found && !p.Satisfies(res.Solution) {
			t.Fatalf("trial %d: invalid DP solution %v", trial, res.Solution)
		}
	}
}

func TestSolveDecomposedTernaryConstraints(t *testing.T) {
	// Exactly-one-of-three over three overlapping triples.
	p := csp.NewInstance(5, 2)
	exactlyOne := csp.TableOf(3, []int{1, 0, 0}, []int{0, 1, 0}, []int{0, 0, 1})
	p.MustAddConstraint([]int{0, 1, 2}, exactlyOne)
	p.MustAddConstraint([]int{1, 2, 3}, exactlyOne)
	p.MustAddConstraint([]int{2, 3, 4}, exactlyOne)
	res, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || !p.Satisfies(res.Solution) {
		t.Fatalf("ternary DP failed: %+v", res)
	}
}

func TestSolveDecomposedUnsatisfiable(t *testing.T) {
	// Odd cycle 2-coloring via DP.
	p := csp.MustFromStructures(structure.Cycle(5), structure.Clique(2))
	res, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("odd cycle 2-colored by DP")
	}
	even := csp.MustFromStructures(structure.Cycle(6), structure.Clique(2))
	res, err = Solve(even)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || !even.Satisfies(res.Solution) {
		t.Fatal("even cycle not 2-colored by DP")
	}
}

func TestSolveEmptyInstance(t *testing.T) {
	res, err := Solve(csp.NewInstance(0, 2))
	if err != nil || !res.Found {
		t.Fatalf("empty instance: %+v %v", res, err)
	}
}

func TestBuildFormulaVariableBound(t *testing.T) {
	// Proposition 6.1: width-k decomposition -> k+1 variables.
	cases := []*structure.Structure{
		structure.Cycle(8),  // treewidth 2 -> 3 variables
		structure.Path(7),   // treewidth 1 -> 2 variables
		structure.Clique(4), // treewidth 3 -> 4 variables
	}
	for i, a := range cases {
		f, w, err := FormulaForStructure(a)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if nv := logic.NumVariables(f); nv > w+1 {
			t.Fatalf("case %d: %d variables for width %d (bound %d)", i, nv, w, w+1)
		}
		if fv := f.FreeVars(); len(fv) != 0 {
			t.Fatalf("case %d: free variables %v", i, fv)
		}
	}
}

// Theorem 6.2 route: evaluating the bounded-variable formula on B decides
// hom(A,B); must agree with the CSP solver.
func TestBuildFormulaDecidesHomomorphism(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	targets := []*structure.Structure{
		structure.Clique(2), structure.Clique(3), structure.Cycle(5),
	}
	sources := []*structure.Structure{
		structure.Cycle(4), structure.Cycle(5), structure.Cycle(7),
		structure.Path(6), structure.Clique(3),
	}
	for trial := 0; trial < 10; trial++ {
		sources = append(sources, randomSymmetric(rng, 4+rng.Intn(3), 0.4))
	}
	for si, a := range sources {
		f, _, err := FormulaForStructure(a)
		if err != nil {
			t.Fatalf("source %d: %v", si, err)
		}
		for ti, b := range targets {
			got, err := logic.Holds(f, b)
			if err != nil {
				t.Fatalf("source %d target %d: %v", si, ti, err)
			}
			want := csp.HomomorphismExists(a, b)
			if got != want {
				t.Fatalf("source %d target %d: formula=%v hom=%v", si, ti, got, want)
			}
		}
	}
}

func TestBuildFormulaCoversIsolatedElements(t *testing.T) {
	// A structure with an isolated element still yields a valid sentence.
	a := structure.NewGraph(3)
	a.MustAddTuple("E", 0, 1)
	f, _, err := FormulaForStructure(a)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := logic.Holds(f, structure.Clique(2))
	if err != nil || !ok {
		t.Fatalf("isolated element formula: %v %v", ok, err)
	}
}

func randomG(rng *rand.Rand, n int, p float64) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

func randomSymmetric(rng *rand.Rand, n int, p float64) *structure.Structure {
	g := structure.NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				structure.AddUndirectedEdge(g, i, j)
			}
		}
	}
	return g
}

func randomInstance(rng *rand.Rand, vars, dom int) *csp.Instance {
	p := csp.NewInstance(vars, dom)
	for i := 0; i < vars; i++ {
		for j := i + 1; j < vars; j++ {
			if rng.Float64() >= 0.5 {
				continue
			}
			tab := csp.NewTable(2)
			for a := 0; a < dom; a++ {
				for b := 0; b < dom; b++ {
					if rng.Float64() < 0.55 {
						tab.Add([]int{a, b})
					}
				}
			}
			p.MustAddConstraint([]int{i, j}, tab)
		}
	}
	return p
}
