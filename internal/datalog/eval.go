package datalog

import (
	"fmt"

	"csdb/internal/relation"
)

// Relations map predicate names to relations. By convention a predicate of
// arity k is stored over the positional attributes c0..c(k-1); EDB inputs of
// the right arity are re-labeled automatically.
type Relations map[string]*relation.Relation

// colAttr names the i-th positional column.
func colAttr(i int) string { return fmt.Sprintf("c%d", i) }

// EDBRelation builds an EDB relation of the given arity from rows.
func EDBRelation(arity int, rows ...[]int) *relation.Relation {
	attrs := make([]string, arity)
	for i := range attrs {
		attrs[i] = colAttr(i)
	}
	r := relation.MustNew(attrs...)
	r.Grow(len(rows))
	for _, row := range rows {
		r.MustAdd(relation.Tuple(row))
	}
	return r
}

// Eval computes the least fixpoint of the program's IDB predicates over the
// given EDB relations using semi-naive evaluation: each iteration joins, for
// every rule and every IDB subgoal position, the latest delta of that
// predicate with the full current extent of the others, and keeps only the
// genuinely new head tuples as the next delta.
func Eval(p *Program, edb Relations) (Relations, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	arity, err := p.Arities()
	if err != nil {
		return nil, err
	}
	idbSet := make(map[string]bool)
	for _, n := range p.IDBs() {
		idbSet[n] = true
	}

	// Normalize EDB relations to positional attributes; missing EDBs are
	// empty.
	ext := make(Relations)
	for _, name := range p.EDBs() {
		want := arity[name]
		in, ok := edb[name]
		if !ok {
			ext[name] = EDBRelation(want)
			continue
		}
		if in.Arity() != want {
			return nil, fmt.Errorf("datalog: EDB %s has arity %d, program uses %d", name, in.Arity(), want)
		}
		norm := EDBRelation(want)
		norm.Grow(in.Len())
		for _, t := range in.Tuples() {
			norm.MustAdd(t)
		}
		ext[name] = norm
	}

	total := make(Relations)
	delta := make(Relations)
	for _, name := range p.IDBs() {
		total[name] = EDBRelation(arity[name])
		delta[name] = EDBRelation(arity[name])
	}

	// lookup returns the current extent of a predicate, with an override for
	// one subgoal position (the delta'd one).
	lookup := func(a Atom, override *relation.Relation, overrideIdx, idx int) *relation.Relation {
		if overrideIdx == idx {
			return override
		}
		if idbSet[a.Pred] {
			return total[a.Pred]
		}
		return ext[a.Pred]
	}

	// Initial round: rules evaluated over EDBs and (empty) IDBs; equivalent
	// to naive first iteration.
	for _, r := range p.Rules {
		out, err := evalRule(r, func(a Atom, idx int) *relation.Relation {
			return lookup(a, nil, -1, idx)
		})
		if err != nil {
			return nil, err
		}
		addNew(total, delta, r.Head.Pred, out)
	}

	for {
		anyNew := false
		newDelta := make(Relations)
		for _, name := range p.IDBs() {
			newDelta[name] = EDBRelation(arity[name])
		}
		for _, r := range p.Rules {
			for di, a := range r.Body {
				if !idbSet[a.Pred] {
					continue
				}
				d := delta[a.Pred]
				if d.Empty() {
					continue
				}
				out, err := evalRule(r, func(b Atom, idx int) *relation.Relation {
					return lookup(b, d, di, idx)
				})
				if err != nil {
					return nil, err
				}
				for _, t := range out.Tuples() {
					if !total[r.Head.Pred].Contains(t) && !newDelta[r.Head.Pred].Contains(t) {
						newDelta[r.Head.Pred].MustAdd(t)
						anyNew = true
					}
				}
			}
		}
		if !anyNew {
			break
		}
		for name, d := range newDelta {
			for _, t := range d.Tuples() {
				total[name].MustAdd(t)
			}
		}
		delta = newDelta
	}
	return total, nil
}

// addNew merges out into total[pred] and delta[pred], keeping only new rows.
func addNew(total, delta Relations, pred string, out *relation.Relation) {
	for _, t := range out.Tuples() {
		if !total[pred].Contains(t) {
			total[pred].MustAdd(t)
			delta[pred].MustAdd(t)
		}
	}
}

// evalRule evaluates one rule given an extent chooser for each body subgoal
// (by index). It returns the head relation in positional attributes.
func evalRule(r Rule, extent func(a Atom, idx int) *relation.Relation) (*relation.Relation, error) {
	rels := make([]*relation.Relation, 0, len(r.Body))
	for i, a := range r.Body {
		base := extent(a, i)
		ar, err := atomToVars(a, base)
		if err != nil {
			return nil, err
		}
		rels = append(rels, ar)
	}
	joined := relation.JoinAll(rels)
	out := EDBRelation(len(r.Head.Args))
	if len(r.Head.Args) == 0 {
		if !joined.Empty() {
			out.MustAdd(relation.Tuple{})
		}
		return out, nil
	}
	pos := make([]int, len(r.Head.Args))
	for i, v := range r.Head.Args {
		pos[i] = joined.Pos(v)
		if pos[i] < 0 {
			return nil, fmt.Errorf("datalog: head variable %s missing from joined body of %s", v, r)
		}
	}
	out.Grow(joined.Len())
	row := make(relation.Tuple, len(pos)) // Add copies, so one scratch row suffices
	for _, t := range joined.Tuples() {
		for i, j := range pos {
			row[i] = t[j]
		}
		out.MustAdd(row)
	}
	return out, nil
}

// atomToVars re-labels a positional relation by the atom's variable names,
// applying equality selections for repeated variables and collapsing to one
// column per distinct variable.
func atomToVars(a Atom, base *relation.Relation) (*relation.Relation, error) {
	if base.Arity() != len(a.Args) {
		return nil, fmt.Errorf("datalog: atom %s applied to relation of arity %d", a, base.Arity())
	}
	var attrs []string
	firstPos := make(map[string]int)
	for i, v := range a.Args {
		if _, seen := firstPos[v]; !seen {
			firstPos[v] = i
			attrs = append(attrs, v)
		}
	}
	out := relation.MustNew(attrs...)
	out.Grow(base.Len())
	t := make(relation.Tuple, len(attrs))
rows:
	for _, row := range base.Tuples() {
		for i, v := range a.Args {
			if row[i] != row[firstPos[v]] {
				continue rows
			}
		}
		for j, v := range attrs {
			t[j] = row[firstPos[v]]
		}
		out.MustAdd(t)
	}
	return out, nil
}

// GoalTrue evaluates the program and reports whether the 0-ary goal
// predicate is derived (true).
func GoalTrue(p *Program, edb Relations) (bool, error) {
	res, err := Eval(p, edb)
	if err != nil {
		return false, err
	}
	g, ok := res[p.Goal]
	if !ok {
		return false, fmt.Errorf("datalog: goal %s not evaluated", p.Goal)
	}
	return !g.Empty(), nil
}
