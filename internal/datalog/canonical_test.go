package datalog

import (
	"math/rand"
	"testing"

	"csdb/internal/pebble"
	"csdb/internal/structure"
)

func TestCanonicalProgramValidation(t *testing.T) {
	if _, err := CanonicalProgram(structure.Clique(3)); err == nil {
		t.Fatal("3-node template accepted")
	}
	other := structure.MustNew(structure.MustVocabulary(structure.Symbol{Name: "F", Arity: 2}), 2)
	if _, err := CanonicalProgram(other); err == nil {
		t.Fatal("non-graph template accepted")
	}
}

func TestCanonicalProgramIs2Datalog(t *testing.T) {
	prog, err := CanonicalProgram(structure.Clique(2))
	if err != nil {
		t.Fatal(err)
	}
	if !prog.IsKDatalog(2) {
		t.Fatalf("canonical program has width %d, want <= 2", prog.Width())
	}
	if prog.Goal != "Q" {
		t.Fatalf("goal = %q", prog.Goal)
	}
}

// The defining property (Theorem 4.5(3)): ρ_B derives the goal on A iff the
// Spoiler wins the existential 2-pebble game on (A, B) — checked against
// the direct game algorithm for every 2-node template and random inputs.
func TestCanonicalProgramMatchesGame(t *testing.T) {
	rng := rand.New(rand.NewSource(5))

	// All 16 digraph templates on 2 nodes.
	var templates []*structure.Structure
	for mask := 0; mask < 16; mask++ {
		b := structure.NewGraph(2)
		bit := 0
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				if mask&(1<<uint(bit)) != 0 {
					b.MustAddTuple("E", i, j)
				}
				bit++
			}
		}
		templates = append(templates, b)
	}

	inputs := []*structure.Structure{
		structure.Cycle(3), structure.Cycle(4), structure.Path(4), structure.Clique(3),
	}
	for trial := 0; trial < 10; trial++ {
		inputs = append(inputs, randomDigraphForTest(rng, 2+rng.Intn(3), 0.5))
	}

	for bi, b := range templates {
		prog, err := CanonicalProgram(b)
		if err != nil {
			t.Fatalf("template %d: %v", bi, err)
		}
		for ai, a := range inputs {
			got, err := GoalTrue(prog, GraphEDB(a))
			if err != nil {
				t.Fatalf("template %d input %d: %v", bi, ai, err)
			}
			want, err := pebble.SpoilerWins(a, b, 2)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("template %d input %d: canonical program=%v game=%v", bi, ai, got, want)
			}
		}
	}
}

// For K2 the 2-pebble game is weaker than non-2-colorability (which needs
// 3 pebbles): the canonical 2-Datalog program must NOT flag odd cycles —
// the Duplicator can always keep two pebbles consistent — a sharpness check
// on the k in Theorem 4.6.
func TestCanonicalProgramSharpness(t *testing.T) {
	k2 := structure.Clique(2)
	for _, n := range []int{3, 5, 7} {
		got, err := SpoilerWinsCanonical(structure.Cycle(n), k2)
		if err != nil {
			t.Fatal(err)
		}
		if got {
			t.Fatalf("2-pebble canonical program flagged C%d (odd cycles need 3 pebbles)", n)
		}
	}
	// Failures 2 pebbles DO catch: a loop in A vs the loop-free K2, and any
	// edge in A vs an edgeless template.
	loop := structure.NewGraph(1)
	loop.MustAddTuple("E", 0, 0)
	got, err := SpoilerWinsCanonical(loop, k2)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("loop vs K2 not caught")
	}
	edgeless := structure.NewGraph(2)
	got, err = SpoilerWinsCanonical(structure.Path(2), edgeless)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("edge vs edgeless template not caught")
	}
}

func randomDigraphForTest(rng *rand.Rand, n int, p float64) *structure.Structure {
	g := structure.NewGraph(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < p {
				g.MustAddTuple("E", i, j)
			}
		}
	}
	return g
}
