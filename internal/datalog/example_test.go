package datalog_test

import (
	"fmt"

	"csdb/internal/datalog"
	"csdb/internal/structure"
)

// The paper's Section 4 example: non-2-colorability in 4-Datalog.
func ExampleNonTwoColorability() {
	prog := datalog.NonTwoColorability()
	fmt.Println("width:", prog.Width())

	for _, g := range []struct {
		name string
		s    *structure.Structure
	}{
		{"C4", structure.Cycle(4)},
		{"C5", structure.Cycle(5)},
	} {
		non2col, err := datalog.GoalTrue(prog, datalog.GraphEDB(g.s))
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s non-2-colorable: %v\n", g.name, non2col)
	}
	// Output:
	// width: 4
	// C4 non-2-colorable: false
	// C5 non-2-colorable: true
}

// Semi-naive evaluation of transitive closure.
func ExampleEval() {
	prog := datalog.TransitiveClosure()
	edb := datalog.Relations{"E": datalog.EDBRelation(2,
		[]int{0, 1}, []int{1, 2}, []int{2, 3},
	)}
	res, err := datalog.Eval(prog, edb)
	if err != nil {
		panic(err)
	}
	fmt.Println("reachable pairs:", res["T"].Len())
	// Output:
	// reachable pairs: 6
}
