// Package datalog implements Datalog programs — finite sets of rules
// "t0 :- t1, ..., tm" over relational predicates — with semi-naive bottom-up
// least-fixpoint evaluation, as used throughout Section 4 of the paper.
//
// Predicates occurring in rule heads are the intensional (IDB) predicates;
// all others are extensional (EDB). Evaluation takes EDB relations and
// returns the least fixpoint of all IDB relations; it runs in time
// polynomial in the size of the EDBs, which is the paper's route to
// tractability (expressibility in Datalog ⇒ polynomial time).
//
// The package also provides the width measure of k-Datalog (at most k
// distinct variables in every rule body and at most k in every head) and
// the concrete programs the paper discusses: non-2-colorability (the
// 4-Datalog example of Section 4), transitive closure, Horn unsatisfiability
// and 2-SAT unsatisfiability (the classic tractable CSP(B) complements).
package datalog

import (
	"fmt"
	"sort"
	"strings"
)

// Atom is a predicate applied to variables. A nil/empty Args list denotes a
// 0-ary (propositional) predicate such as the goal of a Boolean program.
type Atom struct {
	Pred string
	Args []string
}

func (a Atom) String() string {
	if len(a.Args) == 0 {
		return a.Pred
	}
	return a.Pred + "(" + strings.Join(a.Args, ",") + ")"
}

// Rule is a single Datalog rule Head :- Body.
type Rule struct {
	Head Atom
	Body []Atom
}

func (r Rule) String() string {
	parts := make([]string, len(r.Body))
	for i, a := range r.Body {
		parts[i] = a.String()
	}
	return r.Head.String() + " :- " + strings.Join(parts, ", ") + "."
}

// distinctVars returns the number of distinct variables among the atoms.
func distinctVars(atoms []Atom) int {
	seen := make(map[string]bool)
	for _, a := range atoms {
		for _, v := range a.Args {
			seen[v] = true
		}
	}
	return len(seen)
}

// Program is a set of rules with a designated goal predicate.
type Program struct {
	Rules []Rule
	Goal  string
}

// IDBs returns the intensional predicates (those occurring in rule heads),
// sorted.
func (p *Program) IDBs() []string {
	set := make(map[string]bool)
	for _, r := range p.Rules {
		set[r.Head.Pred] = true
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// EDBs returns the extensional predicates (those occurring only in bodies),
// sorted.
func (p *Program) EDBs() []string {
	idb := make(map[string]bool)
	for _, r := range p.Rules {
		idb[r.Head.Pred] = true
	}
	set := make(map[string]bool)
	for _, r := range p.Rules {
		for _, a := range r.Body {
			if !idb[a.Pred] {
				set[a.Pred] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Arities returns the arity of every predicate in the program.
func (p *Program) Arities() (map[string]int, error) {
	arity := make(map[string]int)
	record := func(a Atom) error {
		if prev, ok := arity[a.Pred]; ok && prev != len(a.Args) {
			return fmt.Errorf("datalog: predicate %s used with arities %d and %d", a.Pred, prev, len(a.Args))
		}
		arity[a.Pred] = len(a.Args)
		return nil
	}
	for _, r := range p.Rules {
		if err := record(r.Head); err != nil {
			return nil, err
		}
		for _, a := range r.Body {
			if err := record(a); err != nil {
				return nil, err
			}
		}
	}
	return arity, nil
}

// Validate checks rule safety (head variables occur in the body), arity
// consistency, and that the goal (if set) is an IDB.
func (p *Program) Validate() error {
	if _, err := p.Arities(); err != nil {
		return err
	}
	for _, r := range p.Rules {
		if len(r.Body) == 0 {
			return fmt.Errorf("datalog: rule %s has an empty body", r)
		}
		bodyVars := make(map[string]bool)
		for _, a := range r.Body {
			for _, v := range a.Args {
				bodyVars[v] = true
			}
		}
		for _, v := range r.Head.Args {
			if !bodyVars[v] {
				return fmt.Errorf("datalog: unsafe rule %s: head variable %s not in body", r, v)
			}
		}
	}
	if p.Goal != "" {
		idb := false
		for _, n := range p.IDBs() {
			if n == p.Goal {
				idb = true
			}
		}
		if !idb {
			return fmt.Errorf("datalog: goal %s is not an IDB predicate", p.Goal)
		}
	}
	return nil
}

// Width returns the k for which the program is k-Datalog: the maximum over
// all rules of the number of distinct variables in the body and in the head.
func (p *Program) Width() int {
	w := 0
	for _, r := range p.Rules {
		if b := distinctVars(r.Body); b > w {
			w = b
		}
		if h := distinctVars([]Atom{r.Head}); h > w {
			w = h
		}
	}
	return w
}

// IsKDatalog reports whether the program is in k-Datalog.
func (p *Program) IsKDatalog(k int) bool { return p.Width() <= k }

func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Parse parses a program: one rule per line ("Head :- Body."), blank lines
// and lines starting with '%' or '#' ignored. The goal predicate can be
// declared with a line ".goal Q"; otherwise it defaults to the head of the
// last rule.
func Parse(text string) (*Program, error) {
	p := &Program{}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "%") || strings.HasPrefix(line, "#") {
			continue
		}
		if goal, ok := strings.CutPrefix(line, ".goal"); ok {
			p.Goal = strings.TrimSpace(goal)
			continue
		}
		r, err := parseRule(line)
		if err != nil {
			return nil, fmt.Errorf("datalog: line %d: %w", ln+1, err)
		}
		p.Rules = append(p.Rules, r)
	}
	if len(p.Rules) == 0 {
		return nil, fmt.Errorf("datalog: empty program")
	}
	if p.Goal == "" {
		p.Goal = p.Rules[len(p.Rules)-1].Head.Pred
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustParse is Parse but panics on error.
func MustParse(text string) *Program {
	p, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return p
}

func parseRule(s string) (Rule, error) {
	s = strings.TrimSuffix(strings.TrimSpace(s), ".")
	parts := strings.SplitN(s, ":-", 2)
	if len(parts) != 2 {
		return Rule{}, fmt.Errorf("missing ':-' in %q", s)
	}
	head, err := parseAtom(strings.TrimSpace(parts[0]))
	if err != nil {
		return Rule{}, fmt.Errorf("bad head: %w", err)
	}
	var body []Atom
	depth, start := 0, 0
	bodyText := parts[1]
	flush := func(end int) error {
		txt := strings.TrimSpace(bodyText[start:end])
		if txt == "" {
			return fmt.Errorf("empty subgoal in %q", s)
		}
		a, err := parseAtom(txt)
		if err != nil {
			return err
		}
		body = append(body, a)
		return nil
	}
	for i, r := range bodyText {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
			if depth < 0 {
				return Rule{}, fmt.Errorf("unbalanced parentheses in %q", s)
			}
		case ',':
			if depth == 0 {
				if err := flush(i); err != nil {
					return Rule{}, err
				}
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return Rule{}, fmt.Errorf("unbalanced parentheses in %q", s)
	}
	if err := flush(len(bodyText)); err != nil {
		return Rule{}, err
	}
	return Rule{Head: head, Body: body}, nil
}

func parseAtom(s string) (Atom, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 {
		if !isIdent(s) {
			return Atom{}, fmt.Errorf("bad atom %q", s)
		}
		return Atom{Pred: s}, nil
	}
	if !strings.HasSuffix(s, ")") {
		return Atom{}, fmt.Errorf("missing ')' in %q", s)
	}
	name := strings.TrimSpace(s[:open])
	if !isIdent(name) {
		return Atom{}, fmt.Errorf("bad predicate name %q", name)
	}
	var args []string
	for _, part := range strings.Split(s[open+1:len(s)-1], ",") {
		v := strings.TrimSpace(part)
		if !isIdent(v) {
			return Atom{}, fmt.Errorf("bad argument %q in %q", v, s)
		}
		args = append(args, v)
	}
	if len(args) == 0 {
		return Atom{}, fmt.Errorf("empty argument list in %q", s)
	}
	return Atom{Pred: name, Args: args}, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
