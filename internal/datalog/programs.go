package datalog

import (
	"csdb/internal/relation"
	"csdb/internal/structure"
)

// This file collects the concrete Datalog programs discussed in the paper:
// the 4-Datalog program for Non-2-Colorability from Section 4, transitive
// closure, and the complements of the classic tractable Boolean CSPs
// (Horn satisfiability and 2-satisfiability) from Schaefer's theorem, whose
// expressibility in Datalog is the paper's unifying explanation for their
// tractability.

// NonTwoColorability returns the paper's example program: the goal Q is
// derivable iff the (symmetric) edge relation E contains a closed walk of
// odd length, i.e. iff the graph is not 2-colorable.
//
//	P(X,Y) :- E(X,Y)
//	P(X,Y) :- P(X,Z), E(Z,W), E(W,Y)
//	Q      :- P(X,X)
func NonTwoColorability() *Program {
	return MustParse(`
P(X,Y) :- E(X,Y)
P(X,Y) :- P(X,Z), E(Z,W), E(W,Y)
Q :- P(X,X)
.goal Q
`)
}

// TransitiveClosure returns the textbook TC program with goal predicate T.
//
//	T(X,Y) :- E(X,Y)
//	T(X,Y) :- T(X,Z), E(Z,Y)
func TransitiveClosure() *Program {
	return MustParse(`
T(X,Y) :- E(X,Y)
T(X,Y) :- T(X,Z), E(Z,Y)
.goal T
`)
}

// GraphEDB converts a graph structure (vocabulary {E/2}) into the EDB map
// expected by the graph programs.
func GraphEDB(g *structure.Structure) Relations {
	e := EDBRelation(2)
	for _, t := range g.Rel("E").Tuples() {
		e.MustAdd(relation.Tuple(t))
	}
	return Relations{"E": e}
}

// TwoSatUnsat returns a 3-Datalog program whose goal holds iff a 2-CNF
// formula, encoded as an implication graph over literal vertices, is
// unsatisfiable: some variable's two literals lie on a common cycle.
//
// EDBs: Imp(U,V) — implication edges; Comp(X,Y) — X and Y are the two
// literals of one variable.
func TwoSatUnsat() *Program {
	return MustParse(`
R(X,Y) :- Imp(X,Y)
R(X,Y) :- R(X,Z), Imp(Z,Y)
Q :- Comp(X,Y), R(X,Y), R(Y,X)
.goal Q
`)
}

// TwoCNF is a 2-CNF formula: each clause is a pair of literals; literal i+1
// is variable i positive, literal -(i+1) is variable i negated. Unit clauses
// are written as a pair repeating the literal.
type TwoCNF struct {
	NumVars int
	Clauses [][2]int
}

// litID maps a nonzero literal to a vertex id: variable v's positive literal
// is 2v, its negative literal 2v+1.
func litID(lit int) int {
	v := lit
	if v < 0 {
		v = -v
	}
	id := 2 * (v - 1)
	if lit < 0 {
		id++
	}
	return id
}

// negID returns the vertex id of the complementary literal.
func negID(id int) int { return id ^ 1 }

// EDB encodes the formula's implication graph for the TwoSatUnsat program:
// a clause (a ∨ b) contributes edges ¬a → b and ¬b → a.
func (f TwoCNF) EDB() Relations {
	imp := EDBRelation(2)
	for _, c := range f.Clauses {
		a, b := litID(c[0]), litID(c[1])
		imp.MustAdd(relation.Tuple{negID(a), b})
		imp.MustAdd(relation.Tuple{negID(b), a})
	}
	comp := EDBRelation(2)
	for v := 0; v < f.NumVars; v++ {
		comp.MustAdd(relation.Tuple{2 * v, 2*v + 1})
	}
	return Relations{"Imp": imp, "Comp": comp}
}

// HornUnsat returns a Datalog program whose goal holds iff a Horn formula
// with at most two negative literals per clause (encoded in the EDBs below)
// is unsatisfiable. T(X) derives the unit-propagation closure of forced-true
// variables.
//
// EDBs: Fact(X) — clause "x"; Imp1(Y,X) — clause "y → x"; Imp2(Y,Z,X) —
// clause "y ∧ z → x"; Neg1(X) — clause "¬x"; Neg2(X,Y) — clause "¬x ∨ ¬y".
func HornUnsat() *Program {
	return MustParse(`
T(X) :- Fact(X)
T(X) :- Imp1(Y,X), T(Y)
T(X) :- Imp2(Y,Z,X), T(Y), T(Z)
Q :- Neg1(X), T(X)
Q :- Neg2(X,Y), T(X), T(Y)
.goal Q
`)
}

// HornFormula is a Horn formula restricted to at most two negative literals
// per clause (enough for Horn-SAT's hardness and for the CSP(B) encodings
// used in the experiments). Variables are 0-based.
type HornFormula struct {
	NumVars int
	Facts   []int    // clauses { x }
	Imp1    [][2]int // clauses { y -> x } as (y, x)
	Imp2    [][3]int // clauses { y ∧ z -> x } as (y, z, x)
	Neg1    []int    // clauses { ¬x }
	Neg2    [][2]int // clauses { ¬x ∨ ¬y }
}

// EDB encodes the formula for the HornUnsat program.
func (f HornFormula) EDB() Relations {
	fact := EDBRelation(1)
	for _, x := range f.Facts {
		fact.MustAdd(relation.Tuple{x})
	}
	imp1 := EDBRelation(2)
	for _, c := range f.Imp1 {
		imp1.MustAdd(relation.Tuple{c[0], c[1]})
	}
	imp2 := EDBRelation(3)
	for _, c := range f.Imp2 {
		imp2.MustAdd(relation.Tuple{c[0], c[1], c[2]})
	}
	neg1 := EDBRelation(1)
	for _, x := range f.Neg1 {
		neg1.MustAdd(relation.Tuple{x})
	}
	neg2 := EDBRelation(2)
	for _, c := range f.Neg2 {
		neg2.MustAdd(relation.Tuple{c[0], c[1]})
	}
	return Relations{"Fact": fact, "Imp1": imp1, "Imp2": imp2, "Neg1": neg1, "Neg2": neg2}
}
