package datalog

import (
	"math/rand"
	"testing"
)

// The program parser must never panic on arbitrary text.
func TestParseNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	alphabet := []byte("TQXYZE(),:-.\n% abc01_")
	for trial := 0; trial < 3000; trial++ {
		n := rng.Intn(60)
		b := make([]byte, n)
		for i := range b {
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
		p, err := Parse(string(b))
		if err != nil {
			continue
		}
		// Valid programs evaluate on empty EDBs without panicking.
		if _, err := Eval(p, Relations{}); err != nil {
			t.Fatalf("valid program failed to evaluate: %v\n%s", err, p)
		}
	}
}

// Evaluation must terminate on recursive programs whose EDBs are cyclic.
func TestEvalTerminatesOnCycles(t *testing.T) {
	p := MustParse("T(X,Y) :- E(X,Y)\nT(X,Y) :- T(X,Z), T(Z,Y)")
	e := EDBRelation(2, []int{0, 1}, []int{1, 0}, []int{1, 1})
	res, err := Eval(p, Relations{"E": e})
	if err != nil {
		t.Fatal(err)
	}
	if res["T"].Len() != 4 {
		t.Fatalf("TC on 2-cycle = %d pairs, want 4", res["T"].Len())
	}
}
