package datalog

import (
	"fmt"

	"csdb/internal/structure"
)

// This file implements the canonical k-Datalog program of Theorem 4.5(3)
// for k = 2 over graph vocabularies: for every finite graph template B
// (with at most 2 nodes, keeping the program size manageable — the
// construction is exponential in |B|^k), a 2-Datalog program ρ_B whose goal
// is derivable on an input graph A exactly when the Spoiler wins the
// existential 2-pebble game on (A, B).
//
// The program works on "constraint" IDB predicates indexed by relations
// over B's domain:
//
//	P1_R(x)   — in every Duplicator strategy, the image of x lies in R ⊆ B
//	P2_R(x,y) — the image pair of (x,y) lies in R ⊆ B²
//
// with rules for the sound propagation steps of establishing strong
// 2-consistency: base facts from B's edge relation, intersection,
// transposition, projection, diagonal restriction, and cylindrification
// (kept safe with an active-domain predicate). The Spoiler wins iff some
// P1_∅(x) becomes derivable — the least fixpoint of the program computes
// exactly the complement of the largest winning strategy (Theorem 4.6 at
// k = 2).

// maxCanonicalTemplate bounds |B| for CanonicalProgram; the number of
// intersection rules grows as 4^(|B|^2).
const maxCanonicalTemplate = 2

// CanonicalProgram builds ρ_B for the existential 2-pebble game against the
// graph template b (vocabulary {E/2}, at most 2 nodes). The input graph A
// is supplied at evaluation time as the EDB relation E.
func CanonicalProgram(b *structure.Structure) (*Program, error) {
	if !b.Voc().Has("E") {
		return nil, fmt.Errorf("datalog: canonical program needs a graph template over {E/2}")
	}
	m := b.Size()
	if m > maxCanonicalTemplate {
		return nil, fmt.Errorf("datalog: canonical program limited to templates with at most %d nodes, got %d", maxCanonicalTemplate, m)
	}

	// Relations over B are bitmasks: unary masks over m bits, binary masks
	// over m*m bits (pair (i,j) is bit i*m+j).
	nUnary := 1 << uint(m)
	nBinary := 1 << uint(m*m)

	p1 := func(mask int) string { return fmt.Sprintf("P1_%d", mask) }
	p2 := func(mask int) string { return fmt.Sprintf("P2_%d", mask) }

	prog := &Program{Goal: "Q"}
	add := func(head Atom, body ...Atom) {
		prog.Rules = append(prog.Rules, Rule{Head: head, Body: body})
	}

	// Active domain (safety witness for cylindrification).
	add(Atom{"Adom", []string{"X"}}, Atom{"E", []string{"X", "Y"}})
	add(Atom{"Adom", []string{"X"}}, Atom{"E", []string{"Y", "X"}})

	// Base: every A-edge's image pair must be a B-edge.
	eMask := 0
	for _, t := range b.Rel("E").Tuples() {
		eMask |= 1 << uint(t[0]*m+t[1])
	}
	add(Atom{p2(eMask), []string{"X", "Y"}}, Atom{"E", []string{"X", "Y"}})

	// Intersection (binary and unary).
	for r := 0; r < nBinary; r++ {
		for s := r + 1; s < nBinary; s++ {
			if r&s == r || r&s == s { // intersection adds nothing new
				continue
			}
			add(Atom{p2(r & s), []string{"X", "Y"}},
				Atom{p2(r), []string{"X", "Y"}}, Atom{p2(s), []string{"X", "Y"}})
		}
	}
	for r := 0; r < nUnary; r++ {
		for s := r + 1; s < nUnary; s++ {
			if r&s == r || r&s == s {
				continue
			}
			add(Atom{p1(r & s), []string{"X"}},
				Atom{p1(r), []string{"X"}}, Atom{p1(s), []string{"X"}})
		}
	}

	// Transposition, projection, diagonal, cylindrification.
	transpose := func(r int) int {
		out := 0
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				if r&(1<<uint(i*m+j)) != 0 {
					out |= 1 << uint(j*m+i)
				}
			}
		}
		return out
	}
	proj1 := func(r int) int {
		out := 0
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				if r&(1<<uint(i*m+j)) != 0 {
					out |= 1 << uint(i)
				}
			}
		}
		return out
	}
	diag := func(r int) int {
		out := 0
		for i := 0; i < m; i++ {
			if r&(1<<uint(i*m+i)) != 0 {
				out |= 1 << uint(i)
			}
		}
		return out
	}
	cyl1 := func(r int) int { // R × B: first coordinate constrained
		out := 0
		for i := 0; i < m; i++ {
			if r&(1<<uint(i)) == 0 {
				continue
			}
			for j := 0; j < m; j++ {
				out |= 1 << uint(i*m+j)
			}
		}
		return out
	}
	for r := 0; r < nBinary; r++ {
		if t := transpose(r); t != r {
			add(Atom{p2(t), []string{"X", "Y"}}, Atom{p2(r), []string{"Y", "X"}})
		}
		add(Atom{p1(proj1(r)), []string{"X"}}, Atom{p2(r), []string{"X", "Y"}})
		add(Atom{p1(diag(r)), []string{"X"}}, Atom{p2(r), []string{"X", "X"}})
	}
	for r := 0; r < nUnary; r++ {
		c := cyl1(r)
		add(Atom{p2(c), []string{"X", "Y"}},
			Atom{p1(r), []string{"X"}}, Atom{"Adom", []string{"Y"}})
		add(Atom{p2(transpose(c)), []string{"X", "Y"}},
			Atom{p1(r), []string{"Y"}}, Atom{"Adom", []string{"X"}})
	}

	// Goal: some element's image set is empty.
	add(Atom{Pred: "Q"}, Atom{p1(0), []string{"X"}})

	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// SpoilerWinsCanonical evaluates ρ_B on the input graph a: true iff the
// Spoiler wins the existential 2-pebble game on (a, b).
func SpoilerWinsCanonical(a, b *structure.Structure) (bool, error) {
	prog, err := CanonicalProgram(b)
	if err != nil {
		return false, err
	}
	return GoalTrue(prog, GraphEDB(a))
}
