package datalog

import (
	"math/rand"
	"testing"

	"csdb/internal/graph"
	"csdb/internal/relation"
	"csdb/internal/structure"
)

func TestParseAndShape(t *testing.T) {
	p := MustParse(`
% transitive closure
T(X,Y) :- E(X,Y).
T(X,Y) :- T(X,Z), E(Z,Y).
.goal T
`)
	if len(p.Rules) != 2 || p.Goal != "T" {
		t.Fatalf("shape: %+v", p)
	}
	if got := p.IDBs(); len(got) != 1 || got[0] != "T" {
		t.Fatalf("IDBs = %v", got)
	}
	if got := p.EDBs(); len(got) != 1 || got[0] != "E" {
		t.Fatalf("EDBs = %v", got)
	}
	if p.Width() != 3 {
		t.Fatalf("Width = %d, want 3", p.Width())
	}
	if !p.IsKDatalog(3) || p.IsKDatalog(2) {
		t.Fatal("k-Datalog check wrong")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"T(X,Y) :- E(X,Z)\nT(X,Y) :- T(X)", // inconsistent arity
		"T(X,Y) :- E(X,X)",                 // unsafe: Y not in body
		"T(X) :- ",                         // empty body
		"T(X)",                             // no :-
		".goal Q\nT(X) :- E(X,X)",          // goal not an IDB
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Fatalf("accepted %q", s)
		}
	}
}

func TestDefaultGoal(t *testing.T) {
	p := MustParse("P(X) :- E(X,X)\nQ :- P(X)")
	if p.Goal != "Q" {
		t.Fatalf("default goal = %q", p.Goal)
	}
}

func TestTransitiveClosureMatchesBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(6)
		// Random digraph.
		adj := make([][]bool, n)
		e := EDBRelation(2)
		for i := range adj {
			adj[i] = make([]bool, n)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.3 {
					adj[i][j] = true
					e.MustAdd(relation.Tuple{i, j})
				}
			}
		}
		res, err := Eval(TransitiveClosure(), Relations{"E": e})
		if err != nil {
			t.Fatalf("Eval: %v", err)
		}
		tc := res["T"]
		// Brute-force reachability by >=1 edges.
		reach := make([][]bool, n)
		for i := range reach {
			reach[i] = append([]bool(nil), adj[i]...)
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if reach[i][k] && reach[k][j] {
						reach[i][j] = true
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if reach[i][j] != tc.Contains(relation.Tuple{i, j}) {
					t.Fatalf("trial %d: TC(%d,%d) = %v, want %v", trial, i, j, tc.Contains(relation.Tuple{i, j}), reach[i][j])
				}
			}
		}
	}
}

func TestNonTwoColorabilityProgram(t *testing.T) {
	prog := NonTwoColorability()
	if prog.Width() != 4 {
		t.Fatalf("the paper's program is 4-Datalog; Width = %d", prog.Width())
	}
	cases := []struct {
		name    string
		g       *structure.Structure
		non2col bool
	}{
		{"C4", structure.Cycle(4), false},
		{"C5", structure.Cycle(5), true},
		{"C7", structure.Cycle(7), true},
		{"C8", structure.Cycle(8), false},
		{"P6", structure.Path(6), false},
		{"K3", structure.Clique(3), true},
		{"K4", structure.Clique(4), true},
	}
	for _, c := range cases {
		got, err := GoalTrue(prog, GraphEDB(c.g))
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.non2col {
			t.Fatalf("%s: goal = %v, want %v", c.name, got, c.non2col)
		}
	}
}

// The Datalog program agrees with the polynomial bipartiteness algorithm on
// random graphs (Theorem 4.6 instantiated for B = K2).
func TestNonTwoColorabilityAgainstBipartiteness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	prog := NonTwoColorability()
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(6)
		g := graph.New(n)
		s := structure.NewGraph(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					g.AddEdge(i, j)
					structure.AddUndirectedEdge(s, i, j)
				}
			}
		}
		got, err := GoalTrue(prog, GraphEDB(s))
		if err != nil {
			t.Fatal(err)
		}
		if got == g.IsBipartite() {
			t.Fatalf("trial %d: program=%v bipartite=%v", trial, got, g.IsBipartite())
		}
	}
}

func TestTwoSatUnsatProgram(t *testing.T) {
	prog := TwoSatUnsat()
	if !prog.IsKDatalog(3) {
		t.Fatalf("TwoSatUnsat width = %d", prog.Width())
	}
	cases := []struct {
		name  string
		f     TwoCNF
		unsat bool
	}{
		{"sat simple", TwoCNF{2, [][2]int{{1, 2}, {-1, 2}}}, false},
		{"forced contradiction", TwoCNF{1, [][2]int{{1, 1}, {-1, -1}}}, true},
		{"chain unsat", TwoCNF{2, [][2]int{{1, 1}, {-1, 2}, {-2, -2}, {1, -2}}}, true},
		{"cycle sat", TwoCNF{3, [][2]int{{1, 2}, {2, 3}, {3, 1}}}, false},
		{"classic unsat", TwoCNF{2, [][2]int{{1, 2}, {1, -2}, {-1, 2}, {-1, -2}}}, true},
	}
	for _, c := range cases {
		got, err := GoalTrue(prog, c.f.EDB())
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.unsat {
			t.Fatalf("%s: unsat = %v, want %v", c.name, got, c.unsat)
		}
	}
}

// The 2-SAT program agrees with brute force on random formulas.
func TestTwoSatUnsatAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	prog := TwoSatUnsat()
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(4)
		m := 1 + rng.Intn(8)
		f := TwoCNF{NumVars: n}
		for c := 0; c < m; c++ {
			lit := func() int {
				v := 1 + rng.Intn(n)
				if rng.Intn(2) == 0 {
					return -v
				}
				return v
			}
			f.Clauses = append(f.Clauses, [2]int{lit(), lit()})
		}
		want := !satisfiable2CNF(f)
		got, err := GoalTrue(prog, f.EDB())
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: program=%v brute=%v formula=%v", trial, got, want, f.Clauses)
		}
	}
}

func satisfiable2CNF(f TwoCNF) bool {
assign:
	for mask := 0; mask < 1<<f.NumVars; mask++ {
		for _, c := range f.Clauses {
			ok := false
			for _, lit := range c {
				v := lit
				if v < 0 {
					v = -v
				}
				val := (mask>>(v-1))&1 == 1
				if (lit > 0) == val {
					ok = true
				}
			}
			if !ok {
				continue assign
			}
		}
		return true
	}
	return false
}

func TestHornUnsatProgram(t *testing.T) {
	prog := HornUnsat()
	if prog.Width() != 3 {
		t.Fatalf("HornUnsat width = %d", prog.Width())
	}
	cases := []struct {
		name  string
		f     HornFormula
		unsat bool
	}{
		{"trivially sat", HornFormula{NumVars: 2, Imp1: [][2]int{{0, 1}}}, false},
		{"fact chain to contradiction", HornFormula{
			NumVars: 3,
			Facts:   []int{0},
			Imp1:    [][2]int{{0, 1}, {1, 2}},
			Neg1:    []int{2},
		}, true},
		{"binary implication needed", HornFormula{
			NumVars: 3,
			Facts:   []int{0, 1},
			Imp2:    [][3]int{{0, 1, 2}},
			Neg1:    []int{2},
		}, true},
		{"neg pair not both forced", HornFormula{
			NumVars: 2,
			Facts:   []int{0},
			Neg2:    [][2]int{{0, 1}},
		}, false},
		{"neg pair both forced", HornFormula{
			NumVars: 2,
			Facts:   []int{0, 1},
			Neg2:    [][2]int{{0, 1}},
		}, true},
	}
	for _, c := range cases {
		got, err := GoalTrue(prog, c.f.EDB())
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.unsat {
			t.Fatalf("%s: unsat = %v, want %v", c.name, got, c.unsat)
		}
	}
}

func TestEvalArityMismatchEDB(t *testing.T) {
	p := MustParse("T(X,Y) :- E(X,Y)")
	if _, err := Eval(p, Relations{"E": EDBRelation(3)}); err == nil {
		t.Fatal("EDB arity mismatch accepted")
	}
}

func TestEvalMissingEDBIsEmpty(t *testing.T) {
	p := MustParse("T(X,Y) :- E(X,Y)")
	res, err := Eval(p, Relations{})
	if err != nil {
		t.Fatal(err)
	}
	if !res["T"].Empty() {
		t.Fatal("missing EDB not treated as empty")
	}
}

func TestRepeatedHeadVariable(t *testing.T) {
	p := MustParse("D(X,X) :- V(X)")
	res, err := Eval(p, Relations{"V": EDBRelation(1, []int{3}, []int{5})})
	if err != nil {
		t.Fatal(err)
	}
	d := res["D"]
	if d.Len() != 2 || !d.Contains(relation.Tuple{3, 3}) || !d.Contains(relation.Tuple{5, 5}) {
		t.Fatalf("D = %v", d)
	}
}

func TestRepeatedBodyVariable(t *testing.T) {
	p := MustParse("L(X) :- E(X,X)")
	e := EDBRelation(2, []int{0, 1}, []int{2, 2})
	res, err := Eval(p, Relations{"E": e})
	if err != nil {
		t.Fatal(err)
	}
	if res["L"].Len() != 1 || !res["L"].Contains(relation.Tuple{2}) {
		t.Fatalf("L = %v", res["L"])
	}
}
