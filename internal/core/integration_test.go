package core

import (
	"math/rand"
	"testing"

	"csdb/internal/consistency"
	"csdb/internal/cq"
	"csdb/internal/csp"
	"csdb/internal/digraph"
	"csdb/internal/gen"
	"csdb/internal/logic"
	"csdb/internal/pebble"
	"csdb/internal/treewidth"
)

// The grand tour: on the same random problem, every view the paper
// identifies must return the same verdict —
//
//	MAC search, join evaluation (Prop 2.1), decomposition DP (Thm 6.2),
//	the Boolean query φ_A over B (Prop 2.3), the bounded-variable formula
//	from a tree decomposition (Prop 6.1), the Feder–Vardi digraph encoding,
//	and (one-sided) the existential pebble game (Thm 4.6).
func TestGrandTour(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 20; trial++ {
		a := gen.RandomSymmetricGraph(rng, 3+rng.Intn(3), 0.5)
		b := gen.RandomSymmetricGraph(rng, 2+rng.Intn(2), 0.6)
		if a.NumTuples() == 0 || b.NumTuples() == 0 {
			continue
		}
		p, err := FromStructures(a, b)
		if err != nil {
			t.Fatal(err)
		}
		inst := p.CSP()

		// 1. The reference verdict: MAC search.
		want := csp.Solve(inst, csp.Options{}).Found

		// 2. Join evaluation (Prop 2.1).
		if got := csp.JoinSolve(inst).Found; got != want {
			t.Fatalf("trial %d: join=%v search=%v", trial, got, want)
		}

		// 3. Decomposition DP (Thm 6.2).
		dpRes, err := treewidth.Solve(inst)
		if err != nil {
			t.Fatal(err)
		}
		if dpRes.Found != want {
			t.Fatalf("trial %d: dp=%v search=%v", trial, dpRes.Found, want)
		}

		// 4. φ_A true in B (Prop 2.3), evaluated through the CQ engine.
		phiA, err := cq.StructureQuery(a)
		if err != nil {
			t.Fatal(err)
		}
		truth, err := phiA.True(b)
		if err != nil {
			t.Fatal(err)
		}
		if truth != want {
			t.Fatalf("trial %d: phi_A=%v search=%v", trial, truth, want)
		}

		// 5. The bounded-variable formula from a tree decomposition
		// (Prop 6.1), evaluated through the relational formula engine.
		f, _, err := treewidth.FormulaForStructure(a)
		if err != nil {
			t.Fatal(err)
		}
		holds, err := logic.Holds(f, b)
		if err != nil {
			t.Fatal(err)
		}
		if holds != want {
			t.Fatalf("trial %d: formula=%v search=%v", trial, holds, want)
		}

		// 6. The Feder–Vardi digraph encoding.
		encA, encB, err := digraph.EncodePair(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if got := csp.HomomorphismExists(encA.Graph, encB.Graph); got != want {
			t.Fatalf("trial %d: digraph=%v search=%v", trial, got, want)
		}

		// 7. One-sided game checks (Thm 4.6): a homomorphism means the
		// Duplicator wins every k-pebble game, and a Spoiler win refutes.
		for k := 2; k <= 3; k++ {
			dup, err := pebble.DuplicatorWins(a, b, k)
			if err != nil {
				t.Fatal(err)
			}
			if want && !dup {
				t.Fatalf("trial %d: hom exists but Spoiler wins %d-pebble game", trial, k)
			}
		}

		// 8. Strong 2-consistency can be established whenever the
		// Duplicator wins the 2-pebble game (Thm 5.6), and the established
		// instance preserves the verdict.
		est, ok, err := consistency.EstablishStrongK(a, b, 2)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			if got := csp.HomomorphismExists(est.APrime, est.BPrime); got != want {
				t.Fatalf("trial %d: established=%v search=%v", trial, got, want)
			}
		} else if want {
			t.Fatalf("trial %d: hom exists but establishment failed", trial)
		}
	}
}
