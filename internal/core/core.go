// Package core is the unifying public API of the library, realizing the
// central message of the paper: a constraint-satisfaction problem, a
// homomorphism problem, a conjunctive-query evaluation, and a
// conjunctive-query containment check are the same object viewed from four
// angles (Propositions 2.1–2.3).
//
// A Problem can be created from any of the views and converted to the
// others. Solve picks a strategy automatically: Boolean templates in one of
// Schaefer's classes go to the dedicated polynomial solver; instances whose
// primal graph has small treewidth go to the decomposition DP of Theorem
// 6.2; everything else goes to MAC search (with the join-evaluation solver
// of Proposition 2.1 available explicitly).
package core

import (
	"fmt"
	"math/big"

	"csdb/internal/consistency"
	"csdb/internal/cq"
	"csdb/internal/csp"
	"csdb/internal/schaefer"
	"csdb/internal/structure"
	"csdb/internal/treewidth"
)

// Problem is a constraint-satisfaction / homomorphism / query-evaluation
// problem. Exactly one canonical CSP instance backs it; the structure and
// query views are materialized on demand.
type Problem struct {
	inst *csp.Instance
	a, b *structure.Structure // cached homomorphism view
}

// FromCSP wraps a CSP instance.
func FromCSP(p *csp.Instance) *Problem {
	return &Problem{inst: p}
}

// FromStructures builds the problem "is there a homomorphism a → b?".
func FromStructures(a, b *structure.Structure) (*Problem, error) {
	inst, err := csp.FromStructures(a, b)
	if err != nil {
		return nil, err
	}
	return &Problem{inst: inst, a: a, b: b}, nil
}

// FromBooleanQuery builds the problem "is the Boolean conjunctive query q
// true in db?" — by Proposition 2.2 this is the homomorphism problem from
// q's canonical database into db.
func FromBooleanQuery(q *cq.Query, db *structure.Structure) (*Problem, error) {
	if len(q.Head) != 0 {
		return nil, fmt.Errorf("core: FromBooleanQuery requires a Boolean query, got %d head variables", len(q.Head))
	}
	canon, _, err := q.CanonicalDB(db.Voc(), false)
	if err != nil {
		return nil, err
	}
	return FromStructures(canon, db)
}

// CSP returns the canonical CSP instance view.
func (p *Problem) CSP() *csp.Instance { return p.inst }

// Structures returns the homomorphism view (A_P, B_P).
func (p *Problem) Structures() (*structure.Structure, *structure.Structure, error) {
	if p.a != nil {
		return p.a, p.b, nil
	}
	a, b, err := csp.ToStructures(p.inst)
	if err != nil {
		return nil, nil, err
	}
	p.a, p.b = a, b
	return a, b, nil
}

// Query returns the conjunctive-query view of Proposition 2.3: the Boolean
// canonical query φ_A and the database B, such that the problem is solvable
// iff φ_A is true in B.
func (p *Problem) Query() (*cq.Query, *structure.Structure, error) {
	a, b, err := p.Structures()
	if err != nil {
		return nil, nil, err
	}
	q, err := cq.StructureQuery(a)
	if err != nil {
		return nil, nil, err
	}
	return q, b, nil
}

// Strategy selects how Solve attacks the problem.
type Strategy int

const (
	// Auto picks a strategy from the instance's shape.
	Auto Strategy = iota
	// Search is MAC backtracking search.
	Search
	// Join evaluates the natural join of the constraint relations
	// (Proposition 2.1).
	Join
	// TreewidthDP runs dynamic programming over a heuristic tree
	// decomposition of the primal graph (Theorem 6.2).
	TreewidthDP
	// Schaefer dispatches Boolean instances to the dichotomy solvers.
	SchaeferSolver
	// Tree runs Freuder's backtrack-free algorithm (directional arc
	// consistency) on tree-structured binary instances.
	Tree
)

func (s Strategy) String() string {
	switch s {
	case Auto:
		return "auto"
	case Search:
		return "search"
	case Join:
		return "join"
	case TreewidthDP:
		return "treewidth-dp"
	case SchaeferSolver:
		return "schaefer"
	case Tree:
		return "tree"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Options configures Solve.
type Options struct {
	Strategy Strategy
	// TreewidthThreshold is the largest heuristic width for which Auto uses
	// the decomposition DP (default 3).
	TreewidthThreshold int
	// Preprocess runs GAC before search (Auto and Search strategies).
	Preprocess bool
	// Search options passed through to the MAC solver.
	Search csp.Options
}

// Result reports the outcome of Solve.
type Result struct {
	Satisfiable bool
	Assignment  []int
	// Used is the strategy that actually ran.
	Used Strategy
	// SchaeferClass is set when the Schaefer dispatcher solved the problem
	// with a dedicated class solver.
	SchaeferClass *schaefer.Class
	Stats         csp.Stats
}

// Solve decides the problem.
func (p *Problem) Solve(opts Options) (Result, error) {
	inst := p.inst
	if opts.Preprocess {
		reduced, ok := consistency.Propagate(inst)
		if !ok {
			return Result{Used: chosenOrSearch(opts.Strategy)}, nil
		}
		inst = reduced
	}
	strategy := opts.Strategy
	if strategy == Auto {
		strategy = p.pick(opts)
	}
	switch strategy {
	case Join:
		res := csp.JoinSolve(inst)
		return Result{Satisfiable: res.Found, Assignment: res.Solution, Used: Join, Stats: res.Stats}, nil
	case Tree:
		res, err := consistency.SolveTree(inst)
		if err != nil {
			return Result{}, err
		}
		return Result{Satisfiable: res.Found, Assignment: res.Solution, Used: Tree, Stats: res.Stats}, nil
	case TreewidthDP:
		res, err := treewidth.Solve(inst)
		if err != nil {
			return Result{}, err
		}
		return Result{Satisfiable: res.Found, Assignment: res.Solution, Used: TreewidthDP, Stats: res.Stats}, nil
	case SchaeferSolver:
		sp, err := schaefer.FromCSP(inst)
		if err != nil {
			return Result{}, err
		}
		assign, ok, class, err := schaefer.Solve(sp)
		if err != nil {
			return Result{}, err
		}
		return Result{Satisfiable: ok, Assignment: assign, Used: SchaeferSolver, SchaeferClass: class}, nil
	default:
		res := csp.Solve(inst, opts.Search)
		return Result{Satisfiable: res.Found, Assignment: res.Solution, Used: Search, Stats: res.Stats}, nil
	}
}

func chosenOrSearch(s Strategy) Strategy {
	if s == Auto {
		return Search
	}
	return s
}

// pick implements the Auto strategy choice.
func (p *Problem) pick(opts Options) Strategy {
	inst := p.inst
	// Boolean instance in a Schaefer class?
	if inst.Dom == 2 {
		if sp, err := schaefer.FromCSP(inst); err == nil && sp.Template.IsTractable() {
			return SchaeferSolver
		}
	}
	// Tree-structured binary instance: backtrack-free (Freuder).
	if consistency.IsTreeStructured(inst) {
		return Tree
	}
	// Small treewidth?
	threshold := opts.TreewidthThreshold
	if threshold == 0 {
		threshold = 3
	}
	d := treewidth.BestHeuristic(treewidth.PrimalGraph(inst))
	if d.Width() <= threshold {
		return TreewidthDP
	}
	return Search
}

// Explain reports which strategy Auto would choose and why.
func (p *Problem) Explain(opts Options) string {
	inst := p.inst
	if inst.Dom == 2 {
		if sp, err := schaefer.FromCSP(inst); err == nil {
			if classes := sp.Template.Classify(); len(classes) > 0 {
				return fmt.Sprintf("boolean template in Schaefer classes %v: dedicated polynomial solver", classes)
			}
		}
	}
	if consistency.IsTreeStructured(inst) {
		return "tree-structured binary instance: backtrack-free directional arc consistency (Freuder)"
	}
	threshold := opts.TreewidthThreshold
	if threshold == 0 {
		threshold = 3
	}
	d := treewidth.BestHeuristic(treewidth.PrimalGraph(inst))
	if d.Width() <= threshold {
		return fmt.Sprintf("primal graph has heuristic treewidth %d <= %d: decomposition DP (Theorem 6.2)", d.Width(), threshold)
	}
	return fmt.Sprintf("heuristic treewidth %d above threshold %d, domain size %d: MAC search", d.Width(), threshold, inst.Dom)
}

// Homomorphism finds a homomorphism a → b (nil, false when none exists).
func Homomorphism(a, b *structure.Structure) ([]int, bool, error) {
	p, err := FromStructures(a, b)
	if err != nil {
		return nil, false, err
	}
	res, err := p.Solve(Options{})
	if err != nil {
		return nil, false, err
	}
	return res.Assignment, res.Satisfiable, nil
}

// Contains decides conjunctive-query containment Q1 ⊆ Q2 (Chandra–Merlin).
func Contains(q1, q2 *cq.Query) (bool, error) {
	return cq.Contains(q1, q2)
}

// MinimizeQuery returns the core of a conjunctive query (the unique minimal
// equivalent query).
func MinimizeQuery(q *cq.Query) (*cq.Query, error) {
	return cq.Minimize(q)
}

// Count returns the exact number of solutions, computed by dynamic
// programming over a tree decomposition — polynomial for bounded treewidth
// (the counting extension of Theorem 6.2).
func (p *Problem) Count() (*big.Int, error) {
	return treewidth.Count(p.inst)
}
