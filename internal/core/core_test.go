package core

import (
	"math/rand"
	"strings"
	"testing"

	"csdb/internal/cq"
	"csdb/internal/csp"
	"csdb/internal/gen"
	"csdb/internal/graph"
	"csdb/internal/structure"
)

func TestFromStructuresAndSolve(t *testing.T) {
	p, err := FromStructures(structure.Cycle(5), structure.Clique(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfiable {
		t.Fatal("C5 -> K3 unsatisfiable")
	}
	if !structure.IsHomomorphism(structure.Cycle(5), structure.Clique(3), res.Assignment) {
		t.Fatal("assignment is not a homomorphism")
	}

	p2, err := FromStructures(structure.Cycle(5), structure.Clique(2))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := p2.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Satisfiable {
		t.Fatal("C5 -> K2 satisfiable")
	}
}

func TestAllStrategiesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		inst := gen.ModelB(rng, 4+rng.Intn(3), 2+rng.Intn(2), 0.7, 0.4)
		p := FromCSP(inst)
		want := csp.Solve(inst, csp.Options{}).Found
		for _, s := range []Strategy{Auto, Search, Join, TreewidthDP} {
			res, err := p.Solve(Options{Strategy: s})
			if err != nil {
				t.Fatalf("trial %d strategy %v: %v", trial, s, err)
			}
			if res.Satisfiable != want {
				t.Fatalf("trial %d strategy %v: got %v want %v", trial, s, res.Satisfiable, want)
			}
			if res.Satisfiable && !inst.Satisfies(res.Assignment) {
				t.Fatalf("trial %d strategy %v: invalid assignment", trial, s)
			}
		}
	}
}

func TestSchaeferStrategy(t *testing.T) {
	// A 2-SAT-ish Boolean instance: Auto should dispatch to Schaefer.
	inst := csp.NewInstance(4, 2)
	orTab := csp.TableOf(2, []int{0, 1}, []int{1, 0}, []int{1, 1})
	for i := 0; i < 3; i++ {
		inst.MustAddConstraint([]int{i, i + 1}, orTab)
	}
	p := FromCSP(inst)
	res, err := p.Solve(Options{Strategy: Auto, TreewidthThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfiable || res.Used != SchaeferSolver || res.SchaeferClass == nil {
		t.Fatalf("schaefer dispatch failed: %+v", res)
	}
	if !inst.Satisfies(res.Assignment) {
		t.Fatal("invalid assignment")
	}
}

func TestSchaeferStrategyAgreesOnRandomBoolean(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 60; trial++ {
		inst := gen.ModelB(rng, 3+rng.Intn(3), 2, 0.8, 0.4)
		p := FromCSP(inst)
		want := csp.Solve(inst, csp.Options{}).Found
		res, err := p.Solve(Options{Strategy: Auto})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Satisfiable != want {
			t.Fatalf("trial %d: auto=%v search=%v (used %v)", trial, res.Satisfiable, want, res.Used)
		}
	}
}

func TestBooleanQueryView(t *testing.T) {
	// Boolean query: does the database contain a directed triangle?
	q := cq.MustParse("Q :- E(X,Y), E(Y,Z), E(Z,X)")
	withTri := structure.Clique(3)
	p, err := FromBooleanQuery(q, withTri)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfiable {
		t.Fatal("triangle not found in K3")
	}
	noTri := structure.Cycle(4)
	p2, err := FromBooleanQuery(q, noTri)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := p2.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Satisfiable {
		t.Fatal("triangle found in C4")
	}
	// Non-Boolean queries are rejected.
	if _, err := FromBooleanQuery(cq.MustParse("Q(X) :- E(X,X)"), withTri); err == nil {
		t.Fatal("non-Boolean query accepted")
	}
}

func TestQueryViewRoundTrip(t *testing.T) {
	// The query view of a problem decides it (Proposition 2.3).
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		a := gen.RandomSymmetricGraph(rng, 3+rng.Intn(2), 0.5)
		if a.NumTuples() == 0 {
			continue
		}
		b := structure.Clique(2)
		p, err := FromStructures(a, b)
		if err != nil {
			t.Fatal(err)
		}
		q, db, err := p.Query()
		if err != nil {
			t.Fatal(err)
		}
		truth, err := q.True(db)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Solve(Options{})
		if err != nil {
			t.Fatal(err)
		}
		if truth != res.Satisfiable {
			t.Fatalf("trial %d: query view %v, solver %v", trial, truth, res.Satisfiable)
		}
	}
}

func TestPreprocess(t *testing.T) {
	// GAC alone refutes this instance; Solve with Preprocess should report
	// unsatisfiable without error regardless of strategy.
	inst := csp.NewInstance(2, 2)
	inst.MustAddConstraint([]int{0, 1}, csp.TableOf(2, []int{0, 1}))
	inst.MustAddConstraint([]int{0, 1}, csp.TableOf(2, []int{1, 0}))
	p := FromCSP(inst)
	for _, s := range []Strategy{Search, Join, TreewidthDP} {
		res, err := p.Solve(Options{Strategy: s, Preprocess: true})
		if err != nil {
			t.Fatalf("strategy %v: %v", s, err)
		}
		if res.Satisfiable {
			t.Fatalf("strategy %v: satisfiable", s)
		}
	}
}

func TestExplain(t *testing.T) {
	boolInst := csp.NewInstance(2, 2)
	boolInst.MustAddConstraint([]int{0, 1}, csp.TableOf(2, []int{0, 0}, []int{1, 1}))
	msg := FromCSP(boolInst).Explain(Options{})
	if !strings.Contains(msg, "Schaefer") {
		t.Fatalf("Explain = %q", msg)
	}
	treeInst := gen.Coloring(graph.Path(6), 3)
	msg2 := FromCSP(treeInst).Explain(Options{})
	if !strings.Contains(msg2, "tree-structured") {
		t.Fatalf("Explain = %q", msg2)
	}
	gridInst := gen.Coloring(graph.Grid(3, 4), 3)
	msg3 := FromCSP(gridInst).Explain(Options{})
	if !strings.Contains(msg3, "treewidth") {
		t.Fatalf("Explain = %q", msg3)
	}
}

func TestTreeStrategy(t *testing.T) {
	inst := gen.Coloring(graph.Path(8), 3) // 3 colors: not a Boolean template
	p := FromCSP(inst)
	res, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfiable || res.Used != Tree {
		t.Fatalf("tree dispatch failed: %+v", res)
	}
	if !inst.Satisfies(res.Assignment) {
		t.Fatal("invalid tree solution")
	}
}

func TestCount(t *testing.T) {
	p := FromCSP(gen.Coloring(graph.Path(4), 3)) // 3*2^3 = 24 colorings
	n, err := p.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n.Int64() != 24 {
		t.Fatalf("Count = %v, want 24", n)
	}
}

func TestMinimizeQueryHelper(t *testing.T) {
	q := cq.MustParse("Q(X,Y) :- E(X,Z), E(Z,Y), E(X,W)")
	m, err := MinimizeQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Body) != 2 {
		t.Fatalf("minimized to %d subgoals", len(m.Body))
	}
}

func TestHomomorphismHelper(t *testing.T) {
	h, ok, err := Homomorphism(structure.Cycle(6), structure.Clique(2))
	if err != nil || !ok {
		t.Fatalf("C6->K2: %v %v", ok, err)
	}
	if !structure.IsHomomorphism(structure.Cycle(6), structure.Clique(2), h) {
		t.Fatal("invalid homomorphism")
	}
	_, ok, err = Homomorphism(structure.Clique(3), structure.Clique(2))
	if err != nil || ok {
		t.Fatalf("K3->K2: %v %v", ok, err)
	}
}

func TestContainsHelper(t *testing.T) {
	tri := cq.MustParse("Q(X) :- E(X,Y), E(Y,Z), E(Z,X)")
	edge := cq.MustParse("Q(X) :- E(X,Y)")
	got, err := Contains(tri, edge)
	if err != nil || !got {
		t.Fatalf("containment: %v %v", got, err)
	}
}

func TestStrategyStrings(t *testing.T) {
	want := map[Strategy]string{
		Auto: "auto", Search: "search", Join: "join",
		TreewidthDP: "treewidth-dp", SchaeferSolver: "schaefer", Tree: "tree",
	}
	for s, str := range want {
		if s.String() != str {
			t.Fatalf("%d.String() = %q, want %q", int(s), s.String(), str)
		}
	}
	if Strategy(99).String() != "Strategy(99)" {
		t.Fatalf("unknown strategy string = %q", Strategy(99).String())
	}
}

func TestCSPAndStructuresAccessors(t *testing.T) {
	inst := gen.Coloring(graph.Cycle(4), 2)
	p := FromCSP(inst)
	if p.CSP() != inst {
		t.Fatal("CSP accessor lost the instance")
	}
	a, b, err := p.Structures()
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != 4 || b.Size() != 2 {
		t.Fatalf("structures view wrong: |A|=%d |B|=%d", a.Size(), b.Size())
	}
	// Cached on second call.
	a2, _, err := p.Structures()
	if err != nil || a2 != a {
		t.Fatal("structures view not cached")
	}
}

func TestPreprocessWithSchaeferAndDomains(t *testing.T) {
	// A Boolean instance with per-variable domains: the Schaefer conversion
	// must fold the domains into unary constraints.
	inst := csp.NewInstance(2, 2)
	inst.Domains = [][]int{{1}, nil}
	orTab := csp.TableOf(2, []int{0, 1}, []int{1, 0}, []int{1, 1})
	inst.MustAddConstraint([]int{0, 1}, orTab)
	p := FromCSP(inst)
	res, err := p.Solve(Options{Strategy: SchaeferSolver})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfiable || res.Assignment[0] != 1 {
		t.Fatalf("schaefer with domains: %+v", res)
	}
	// Preprocess + explicit strategy path.
	res2, err := p.Solve(Options{Strategy: SchaeferSolver, Preprocess: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Satisfiable {
		t.Fatalf("preprocessed schaefer: %+v", res2)
	}
}

func TestSchaeferStrategyOnNonBooleanErrors(t *testing.T) {
	inst := gen.Coloring(graph.Cycle(4), 3)
	if _, err := FromCSP(inst).Solve(Options{Strategy: SchaeferSolver}); err == nil {
		t.Fatal("schaefer on 3-valued instance accepted")
	}
}
