package core_test

import (
	"fmt"

	"csdb/internal/core"
	"csdb/internal/structure"
)

// The central equivalence of the paper: one problem, several views.
func Example() {
	// Is the 5-cycle 3-colorable? As a homomorphism problem: C5 -> K3.
	p, err := core.FromStructures(structure.Cycle(5), structure.Clique(3))
	if err != nil {
		panic(err)
	}
	res, err := p.Solve(core.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("3-colorable:", res.Satisfiable)

	// The same object as a Boolean conjunctive query (Proposition 2.3).
	q, db, err := p.Query()
	if err != nil {
		panic(err)
	}
	truth, err := q.True(db)
	if err != nil {
		panic(err)
	}
	fmt.Println("phi_A true in B:", truth)

	// Exact solution count (proper 3-colorings of C5): (3-1)^5 - (3-1) = 30.
	n, err := p.Count()
	if err != nil {
		panic(err)
	}
	fmt.Println("colorings:", n)
	// Output:
	// 3-colorable: true
	// phi_A true in B: true
	// colorings: 30
}

func ExampleProblem_Explain() {
	p, err := core.FromStructures(structure.Path(5), structure.Clique(3))
	if err != nil {
		panic(err)
	}
	fmt.Println(p.Explain(core.Options{}))
	// Output:
	// tree-structured binary instance: backtrack-free directional arc consistency (Freuder)
}
