// Package hcolor implements H-coloring — homomorphisms of undirected graphs
// into a fixed template graph H — and the Hell–Nešetřil dichotomy that
// Section 3 of the paper presents: CSP(H) is polynomial when H has a loop
// or is bipartite, and NP-complete otherwise.
//
// The tractable side is realized by dedicated polynomial algorithms (loops
// and edgeless templates are trivial; bipartite templates reduce to
// 2-coloring of the input); the NP-complete side falls back to constraint
// search via the csp package.
package hcolor

import (
	"fmt"

	"csdb/internal/csp"
	"csdb/internal/graph"
	"csdb/internal/structure"
)

// Side identifies which side of the Hell–Nešetřil dichotomy a template
// falls on, and why.
type Side int

const (
	// TrivialLoop: H has a loop, every graph maps to it.
	TrivialLoop Side = iota
	// TrivialEdgeless: H has no edge, only edgeless graphs map to it.
	TrivialEdgeless
	// PolynomialBipartite: H is bipartite with an edge; G maps to H iff G
	// is 2-colorable.
	PolynomialBipartite
	// NPComplete: H is loop-free, non-bipartite — CSP(H) is NP-complete.
	NPComplete
)

func (s Side) String() string {
	switch s {
	case TrivialLoop:
		return "trivial (loop)"
	case TrivialEdgeless:
		return "trivial (edgeless)"
	case PolynomialBipartite:
		return "polynomial (bipartite)"
	case NPComplete:
		return "NP-complete"
	}
	return fmt.Sprintf("Side(%d)", int(s))
}

// Classify places the template graph on its side of the dichotomy.
func Classify(h *graph.Graph) Side {
	if h.HasLoop() {
		return TrivialLoop
	}
	if h.NumEdges() == 0 {
		return TrivialEdgeless
	}
	if h.IsBipartite() {
		return PolynomialBipartite
	}
	return NPComplete
}

// Result of an H-coloring attempt.
type Result struct {
	Exists  bool
	Mapping []int // a homomorphism G -> H when Exists
	Side    Side  // the dichotomy side of the template used
}

// Solve decides whether g maps homomorphically into h, dispatching on the
// dichotomy side of h: the tractable cases avoid search entirely.
func Solve(g, h *graph.Graph) (Result, error) {
	side := Classify(h)
	switch side {
	case TrivialLoop:
		loop := -1
		for v := 0; v < h.N(); v++ {
			if h.HasEdge(v, v) {
				loop = v
				break
			}
		}
		m := make([]int, g.N())
		for i := range m {
			m[i] = loop
		}
		return Result{Exists: true, Mapping: m, Side: side}, nil

	case TrivialEdgeless:
		if g.NumEdges() > 0 {
			return Result{Side: side}, nil
		}
		if h.N() == 0 {
			if g.N() == 0 {
				return Result{Exists: true, Mapping: []int{}, Side: side}, nil
			}
			return Result{Side: side}, nil
		}
		m := make([]int, g.N())
		return Result{Exists: true, Mapping: m, Side: side}, nil

	case PolynomialBipartite:
		coloring, ok := g.TwoColor()
		if !ok {
			return Result{Side: side}, nil
		}
		// Map color classes to the endpoints of any H edge.
		var a, b = -1, -1
		for _, e := range h.Edges() {
			a, b = e[0], e[1]
			break
		}
		m := make([]int, g.N())
		for v, c := range coloring {
			if c == 0 {
				m[v] = a
			} else {
				m[v] = b
			}
		}
		return Result{Exists: true, Mapping: m, Side: side}, nil

	default: // NPComplete: general search
		gs, hs := ToStructure(g), ToStructure(h)
		mapping, ok := csp.FindHomomorphism(gs, hs)
		return Result{Exists: ok, Mapping: mapping, Side: side}, nil
	}
}

// Verify checks that mapping is a homomorphism g -> h.
func Verify(g, h *graph.Graph, mapping []int) bool {
	if len(mapping) != g.N() {
		return false
	}
	for _, m := range mapping {
		if m < 0 || m >= h.N() {
			return false
		}
	}
	for _, e := range g.Edges() {
		if !h.HasEdge(mapping[e[0]], mapping[e[1]]) {
			return false
		}
	}
	return true
}

// ToStructure converts an undirected graph to a symmetric graph structure.
func ToStructure(g *graph.Graph) *structure.Structure {
	s := structure.NewGraph(g.N())
	for _, e := range g.Edges() {
		s.MustAddTuple("E", e[0], e[1])
		if e[0] != e[1] {
			s.MustAddTuple("E", e[1], e[0])
		}
	}
	return s
}

// KColorable reports whether g is k-colorable, as CSP(K_k) — the example the
// paper uses for the Hell–Nešetřil theorem. For k = 2 the polynomial route
// is used; for k >= 3 this is a search.
func KColorable(g *graph.Graph, k int) (bool, []int, error) {
	if k < 1 {
		return false, nil, fmt.Errorf("hcolor: k must be >= 1, got %d", k)
	}
	res, err := Solve(g, graph.Clique(k))
	if err != nil {
		return false, nil, err
	}
	return res.Exists, res.Mapping, nil
}
