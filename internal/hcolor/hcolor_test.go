package hcolor

import (
	"math/rand"
	"testing"

	"csdb/internal/graph"
)

func TestClassify(t *testing.T) {
	loop := graph.New(2)
	loop.AddEdge(0, 0)
	cases := []struct {
		name string
		h    *graph.Graph
		want Side
	}{
		{"loop", loop, TrivialLoop},
		{"edgeless", graph.New(3), TrivialEdgeless},
		{"K2", graph.Clique(2), PolynomialBipartite},
		{"even cycle", graph.Cycle(6), PolynomialBipartite},
		{"path", graph.Path(4), PolynomialBipartite},
		{"K3", graph.Clique(3), NPComplete},
		{"C5", graph.Cycle(5), NPComplete},
		{"petersen", graph.Petersen(), NPComplete},
	}
	for _, c := range cases {
		if got := Classify(c.h); got != c.want {
			t.Fatalf("%s: Classify = %v, want %v", c.name, got, c.want)
		}
	}
}

// bruteForceHom checks homomorphism existence by enumeration.
func bruteForceHom(g, h *graph.Graph) bool {
	if g.N() == 0 {
		return true
	}
	if h.N() == 0 {
		return false
	}
	m := make([]int, g.N())
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == g.N() {
			return Verify(g, h, m)
		}
		for v := 0; v < h.N(); v++ {
			m[i] = v
			// Prune: check edges among assigned vertices.
			ok := true
			for j := 0; j <= i && ok; j++ {
				if g.HasEdge(i, j) && !h.HasEdge(m[i], m[j]) {
					ok = false
				}
			}
			if ok && rec(i+1) {
				return true
			}
		}
		return false
	}
	return rec(0)
}

func TestSolveAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	loopy := graph.New(3)
	loopy.AddEdge(0, 1)
	loopy.AddEdge(2, 2)
	templates := []*graph.Graph{
		graph.Clique(2), graph.Clique(3), graph.Cycle(5), graph.Cycle(4),
		graph.New(2), loopy, graph.Path(3),
	}
	for trial := 0; trial < 40; trial++ {
		g := randomG(rng, 1+rng.Intn(6), 0.4)
		for hi, h := range templates {
			res, err := Solve(g, h)
			if err != nil {
				t.Fatalf("trial %d template %d: %v", trial, hi, err)
			}
			want := bruteForceHom(g, h)
			if res.Exists != want {
				t.Fatalf("trial %d template %d: solve=%v brute=%v", trial, hi, res.Exists, want)
			}
			if res.Exists && !Verify(g, h, res.Mapping) {
				t.Fatalf("trial %d template %d: invalid mapping", trial, hi)
			}
		}
	}
}

func TestSolveUsesDichotomySides(t *testing.T) {
	g := graph.Cycle(6)
	res, err := Solve(g, graph.Clique(2))
	if err != nil || !res.Exists || res.Side != PolynomialBipartite {
		t.Fatalf("C6->K2: %+v %v", res, err)
	}
	res, err = Solve(graph.Cycle(5), graph.Clique(2))
	if err != nil || res.Exists {
		t.Fatalf("C5->K2: %+v %v", res, err)
	}
	res, err = Solve(graph.Petersen(), graph.Clique(3))
	if err != nil || !res.Exists || res.Side != NPComplete {
		t.Fatalf("petersen->K3: %+v %v", res, err)
	}
}

func TestKColorable(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		k    int
		want bool
	}{
		{"petersen 3-col", graph.Petersen(), 3, true},
		{"petersen 2-col", graph.Petersen(), 2, false},
		{"K4 3-col", graph.Clique(4), 3, false},
		{"K4 4-col", graph.Clique(4), 4, true},
		{"C7 2-col", graph.Cycle(7), 2, false},
		{"C7 3-col", graph.Cycle(7), 3, true},
		{"edgeless 1-col", graph.New(5), 1, true},
	}
	for _, c := range cases {
		ok, m, err := KColorable(c.g, c.k)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if ok != c.want {
			t.Fatalf("%s: %v, want %v", c.name, ok, c.want)
		}
		if ok && !Verify(c.g, graph.Clique(c.k), m) {
			t.Fatalf("%s: invalid coloring", c.name)
		}
	}
	if _, _, err := KColorable(graph.New(1), 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestEdgelessTemplateCases(t *testing.T) {
	res, err := Solve(graph.New(3), graph.New(2))
	if err != nil || !res.Exists {
		t.Fatalf("edgeless -> edgeless: %+v %v", res, err)
	}
	res, err = Solve(graph.Clique(2), graph.New(2))
	if err != nil || res.Exists {
		t.Fatalf("edge -> edgeless: %+v %v", res, err)
	}
	res, err = Solve(graph.New(0), graph.New(0))
	if err != nil || !res.Exists {
		t.Fatalf("empty -> empty: %+v %v", res, err)
	}
	res, err = Solve(graph.New(1), graph.New(0))
	if err != nil || res.Exists {
		t.Fatalf("vertex -> empty domain: %+v %v", res, err)
	}
}

// The core dichotomy fact exercised empirically: for bipartite H with an
// edge, G -> H iff G is 2-colorable.
func TestBipartiteTemplateEquals2Colorability(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	h := graph.Cycle(8) // bipartite template, more complex than K2
	for trial := 0; trial < 60; trial++ {
		g := randomG(rng, 2+rng.Intn(6), 0.35)
		res, err := Solve(g, h)
		if err != nil {
			t.Fatal(err)
		}
		if res.Exists != g.IsBipartite() {
			t.Fatalf("trial %d: exists=%v bipartite=%v", trial, res.Exists, g.IsBipartite())
		}
	}
}

func randomG(rng *rand.Rand, n int, p float64) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

func TestSideStrings(t *testing.T) {
	for s, want := range map[Side]string{
		TrivialLoop:         "trivial (loop)",
		TrivialEdgeless:     "trivial (edgeless)",
		PolynomialBipartite: "polynomial (bipartite)",
		NPComplete:          "NP-complete",
	} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
	if Side(42).String() != "Side(42)" {
		t.Fatalf("unknown side = %q", Side(42).String())
	}
}

func TestVerifyRejections(t *testing.T) {
	g, h := graph.Cycle(4), graph.Clique(2)
	if Verify(g, h, []int{0, 1, 0}) {
		t.Fatal("short mapping accepted")
	}
	if Verify(g, h, []int{0, 1, 0, 5}) {
		t.Fatal("out-of-range mapping accepted")
	}
	if Verify(g, h, []int{0, 1, 1, 0}) {
		t.Fatal("non-homomorphism accepted")
	}
	if !Verify(g, h, []int{0, 1, 0, 1}) {
		t.Fatal("valid mapping rejected")
	}
}
