package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"csdb/internal/obs"
)

// withObs turns metric recording on for one test, restoring the previous
// state afterwards. Counters are process-global, so assertions use deltas.
func withObs(t *testing.T) {
	t.Helper()
	prev := obs.Enabled()
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(prev) })
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAdmissionUnlimited(t *testing.T) {
	for _, a := range []*Admission{nil, NewAdmission(0, 0), NewAdmission(-1, 5)} {
		for i := 0; i < 100; i++ {
			release, err := a.Acquire(context.Background())
			if err != nil {
				t.Fatalf("unlimited gate refused: %v", err)
			}
			release()
		}
		if a.InFlight() != 0 || a.Queued() != 0 {
			t.Fatalf("unlimited gate tracking state: inflight=%d queued=%d", a.InFlight(), a.Queued())
		}
	}
}

func TestAdmissionShedsWhenFull(t *testing.T) {
	withObs(t)
	shedBefore := obsShed.Load()
	a := NewAdmission(2, 0)
	r1, err1 := a.Acquire(context.Background())
	r2, err2 := a.Acquire(context.Background())
	if err1 != nil || err2 != nil {
		t.Fatalf("free slots refused: %v %v", err1, err2)
	}
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("full gate with no queue: err=%v, want ErrShed", err)
	}
	if got := obsShed.Load() - shedBefore; got != 1 {
		t.Fatalf("shed counter delta = %d, want 1", got)
	}
	r1()
	r2()
	if release, err := a.Acquire(context.Background()); err != nil {
		t.Fatalf("released slot refused: %v", err)
	} else {
		release()
	}
}

func TestAdmissionQueueWaitAndShed(t *testing.T) {
	withObs(t)
	shedBefore, waitBefore := obsShed.Load(), obsQueueWait.Count()
	a := NewAdmission(1, 1)
	hold, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	admitted := make(chan struct{})
	go func() {
		release, err := a.Acquire(context.Background())
		if err != nil {
			t.Errorf("queued waiter failed: %v", err)
			close(admitted)
			return
		}
		close(admitted)
		release()
	}()
	waitFor(t, "waiter to queue", func() bool { return a.Queued() == 1 })
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("overflow past the queue: err=%v, want ErrShed", err)
	}
	hold()
	<-admitted
	waitFor(t, "queue to drain", func() bool { return a.Queued() == 0 })
	if got := obsShed.Load() - shedBefore; got != 1 {
		t.Fatalf("shed counter delta = %d, want 1", got)
	}
	if got := obsQueueWait.Count() - waitBefore; got != 1 {
		t.Fatalf("queue-wait observations delta = %d, want 1 (only the queued waiter)", got)
	}
}

func TestAdmissionCancelWhileQueued(t *testing.T) {
	a := NewAdmission(1, 4)
	hold, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer hold()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.Acquire(ctx)
		done <- err
	}()
	waitFor(t, "waiter to queue", func() bool { return a.Queued() == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v, want context.Canceled", err)
	}
	waitFor(t, "queue to empty after cancel", func() bool { return a.Queued() == 0 })
}

// TestAdmissionFIFO pins the wait-queue ordering: waiters enter one at a
// time and must be admitted in arrival order as slots free up.
func TestAdmissionFIFO(t *testing.T) {
	const waiters = 6
	a := NewAdmission(1, waiters)
	hold, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	order := make(chan int, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := a.Acquire(context.Background())
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order <- i
			release()
		}()
		// Admit to the queue strictly one at a time so arrival order is
		// well-defined.
		waitFor(t, "waiter to queue", func() bool { return a.Queued() == i+1 })
	}
	hold()
	wg.Wait()
	close(order)
	want := 0
	for got := range order {
		if got != want {
			t.Fatalf("admission order: got waiter %d at position %d", got, want)
		}
		want++
	}
}

// TestAdmissionConcurrencyBound hammers the gate and checks the in-flight
// invariant from inside the critical sections.
func TestAdmissionConcurrencyBound(t *testing.T) {
	const maxInflight = 4
	a := NewAdmission(maxInflight, 1000)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := a.Acquire(context.Background())
			if err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(100 * time.Microsecond)
			cur.Add(-1)
			release()
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > maxInflight {
		t.Fatalf("in-flight peak %d exceeds bound %d", p, maxInflight)
	}
	if a.InFlight() != 0 || a.Queued() != 0 {
		t.Fatalf("gate not drained: inflight=%d queued=%d", a.InFlight(), a.Queued())
	}
}

// TestAdmissionWaitVec pins the labeled wait histogram: a free-slot
// acquisition records under outcome=fast, a queued one under outcome=queued.
func TestAdmissionWaitVec(t *testing.T) {
	withObs(t)
	fastSeries := obsWaitNs.Series("fast")
	queuedSeries := obsWaitNs.Series("queued")
	fast0, queued0 := fastSeries.Count(), queuedSeries.Count()

	a := NewAdmission(1, 1)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if d := obsWaitNs.Series("fast").Count() - fast0; d != 1 {
		t.Fatalf("fast delta = %d, want 1", d)
	}

	// Second acquirer queues until the first releases.
	done := make(chan struct{})
	go func() {
		r2, err := a.Acquire(context.Background())
		if err == nil {
			r2()
		}
		close(done)
	}()
	waitFor(t, "second acquirer to queue", func() bool { return a.Queued() == 1 })
	release()
	<-done
	if d := obsWaitNs.Series("queued").Count() - queued0; d != 1 {
		t.Fatalf("queued delta = %d, want 1", d)
	}
}

// TestAdmissionEstimateWait pins the shed-path backoff estimate: an idle or
// unlimited gate predicts zero, queued acquisitions feed the EWMA, and the
// prediction scales with the number of callers already in line.
func TestAdmissionEstimateWait(t *testing.T) {
	if (*Admission)(nil).EstimateWait() != 0 {
		t.Fatal("nil gate predicted a nonzero wait")
	}
	if NewAdmission(0, 0).EstimateWait() != 0 {
		t.Fatal("unlimited gate predicted a nonzero wait")
	}
	a := NewAdmission(1, 4)
	if a.EstimateWait() != 0 {
		t.Fatal("gate with no queue history predicted a nonzero wait")
	}

	// Hold the slot so the next acquirers queue for a measurable time.
	const hold = 20 * time.Millisecond
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		r, err := a.Acquire(context.Background())
		if err == nil {
			r()
		}
		close(done)
	}()
	waitFor(t, "acquirer to queue", func() bool { return a.Queued() == 1 })
	time.Sleep(hold)
	release()
	<-done

	est := a.EstimateWait()
	if est < hold/2 {
		t.Fatalf("EstimateWait after ~%v queued wait = %v, want >= %v", hold, est, hold/2)
	}

	// With callers in line, the same EWMA predicts a proportionally longer
	// wait: depth+1 times the per-acquisition estimate.
	r2, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := a.Acquire(context.Background())
			if err == nil {
				<-stop
				r()
			}
		}()
	}
	waitFor(t, "two queued callers", func() bool { return a.Queued() == 2 })
	if deep := a.EstimateWait(); deep < 2*est {
		t.Fatalf("EstimateWait with 2 queued = %v, want >= 2x idle estimate %v", deep, est)
	}
	r2()
	close(stop)
	wg.Wait()
}
