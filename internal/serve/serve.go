// Package serve is the production-serving layer of the solver daemon: the
// pieces that stand between the HTTP surface and the worst-case-intractable
// solver engine so that heavy repeated traffic is survivable.
//
//   - Admission bounds concurrent engine work with a solve semaphore and a
//     bounded FIFO wait queue; when the queue is full, callers are shed
//     immediately (the daemon turns that into 429 + Retry-After) instead of
//     piling up until the process collapses.
//   - Cache is an LRU of fully-computed solve responses keyed by the
//     canonical instance hash (internal/cspio) plus the strategy knobs, so
//     an instance is never solved twice while its result is warm.
//   - Group is a singleflight: concurrent identical requests collapse onto
//     one engine solve whose result every caller shares.
//
// All three record into the shared internal/obs registry under the
// cspd.admit.* and cspd.cache.* names and are safe for concurrent use.
// Cache and Admission are nil-safe so the daemon can disable either with a
// flag without branching at every call site.
package serve

import "csdb/internal/obs"

// Registry names. Queue depth is a live gauge; queue wait is observed once
// per queued acquisition (shed and fast-path acquisitions never queue). The
// labeled pair is the PR-8 RED layer: cspd.admit.wait_ns carries every
// acquisition (outcome fast|queued, so the fast-path share is visible) and
// cspd.cache.outcome is the one-stop cache counter (outcome hit|miss|evict)
// behind csptop's hit-rate line; the unlabeled metrics stay for the PR-5
// JSON schema.
var (
	obsQueueDepth   = obs.NewGauge("cspd.admit.queue_depth")
	obsQueueWait    = obs.NewHistogram("cspd.admit.queue_wait_ns")
	obsShed         = obs.NewCounter("cspd.admit.shed")
	obsCacheHits    = obs.NewCounter("cspd.cache.hits")
	obsCacheMiss    = obs.NewCounter("cspd.cache.misses")
	obsCacheEvict   = obs.NewCounter("cspd.cache.evictions")
	obsWaitNs       = obs.NewHistogramVec("cspd.admit.wait_ns", "outcome")
	obsCacheOutcome = obs.NewCounterVec("cspd.cache.outcome", "outcome")
)
