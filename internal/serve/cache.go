package serve

import (
	"container/list"
	"sync"
)

// CacheKey identifies one cacheable solve: the canonical instance hash
// (cspio.CanonicalHash, insensitive to incidental instance orderings) plus
// the knobs that change what the engine computes. Timeout is deliberately
// not part of the key — a completed (non-aborted) result is valid under any
// deadline.
type CacheKey struct {
	Hash     uint64
	Strategy string
	Workers  int
}

// Cache is a mutex-guarded LRU of solve results. A nil *Cache never hits
// and never stores, so the daemon can disable caching with a flag.
type Cache struct {
	mu      sync.Mutex
	cap     int
	quiet   bool       // skip the cspd.cache.* counters (secondary caches)
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[CacheKey]*list.Element
}

type cacheEntry struct {
	key CacheKey
	val any
}

// NewCache returns an LRU holding up to capacity entries. capacity <= 0
// returns nil (caching disabled).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		return nil
	}
	return &Cache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[CacheKey]*list.Element, capacity),
	}
}

// NewQuietCache is NewCache without the cspd.cache.* counters. Those
// counters are documented as the daemon's canonical result cache, so
// secondary users of the LRU (the dispatcher's classification cache keeps
// its own dispatch.cache.* counters) must not inflate them — a hit rate
// computed from cspd.cache.outcome has to describe one cache.
func NewQuietCache(capacity int) *Cache {
	c := NewCache(capacity)
	if c != nil {
		c.quiet = true
	}
	return c
}

// Get returns the cached value for k, refreshing its recency. The hit/miss
// counter pair records every lookup.
func (c *Cache) Get(k CacheKey) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		if !c.quiet {
			obsCacheMiss.Inc()
			obsCacheOutcome.Inc("miss")
		}
		return nil, false
	}
	c.order.MoveToFront(el)
	if !c.quiet {
		obsCacheHits.Inc()
		obsCacheOutcome.Inc("hit")
	}
	return el.Value.(*cacheEntry).val, true
}

// Add stores v under k as the most recent entry, evicting the least
// recently used entry if the cache is over capacity.
func (c *Cache) Add(k CacheKey, v any) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		el.Value.(*cacheEntry).val = v
		c.order.MoveToFront(el)
		return
	}
	c.entries[k] = c.order.PushFront(&cacheEntry{key: k, val: v})
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		if !c.quiet {
			obsCacheEvict.Inc()
			obsCacheOutcome.Inc("evict")
		}
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
