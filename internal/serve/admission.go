package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrShed is returned by Admission.Acquire when both the solve slots and the
// wait queue are full: the caller should be rejected immediately (load shed)
// rather than left to pile up.
var ErrShed = errors.New("serve: admission queue full")

// Admission is a bounded-concurrency gate with a bounded wait queue. Up to
// maxInflight acquisitions proceed at once; the next maxQueue callers wait
// their turn in FIFO order (the runtime wakes channel senders in queue
// order); everyone beyond that is shed with ErrShed.
//
// A nil *Admission admits everything immediately, so the daemon can disable
// admission control without branching at call sites.
type Admission struct {
	sem      chan struct{}
	maxQueue int64
	queued   atomic.Int64
	// waitEWMA tracks the recent per-acquisition queue wait (ns) as an
	// exponentially weighted moving average (new = (3·old + sample)/4),
	// updated once per queued acquisition. It feeds EstimateWait, which the
	// daemon turns into an honest Retry-After on the shed path.
	waitEWMA atomic.Int64
}

// NewAdmission returns a gate with the given bounds. maxInflight <= 0 means
// unlimited (the gate admits everything and never queues); maxQueue <= 0
// means no waiting — when all slots are busy, callers are shed at once.
func NewAdmission(maxInflight, maxQueue int) *Admission {
	if maxInflight <= 0 {
		return &Admission{}
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Admission{sem: make(chan struct{}, maxInflight), maxQueue: int64(maxQueue)}
}

// Acquire claims a solve slot, waiting in the queue if necessary. On success
// it returns a release function that must be called exactly once when the
// work is done. It fails with ErrShed when the queue is full and with
// ctx.Err() when the context is cancelled while waiting.
func (a *Admission) Acquire(ctx context.Context) (release func(), err error) {
	if a == nil || a.sem == nil {
		return func() {}, nil
	}
	// Fast path: a free slot and nobody already waiting (jumping past
	// queued waiters would break FIFO ordering).
	if a.queued.Load() == 0 {
		select {
		case a.sem <- struct{}{}:
			obsWaitNs.Observe(0, "fast")
			return a.release, nil
		default:
		}
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		obsShed.Inc()
		return nil, ErrShed
	}
	obsQueueDepth.Add(1)
	start := time.Now()
	defer func() {
		a.queued.Add(-1)
		obsQueueDepth.Add(-1)
		wait := time.Since(start).Nanoseconds()
		a.noteWait(wait)
		obsQueueWait.Observe(wait)
		obsWaitNs.Observe(wait, "queued")
	}()
	select {
	case a.sem <- struct{}{}:
		return a.release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (a *Admission) release() { <-a.sem }

// noteWait folds one queued-acquisition wait into the EWMA. The load/store
// pair is deliberately not a CAS loop: concurrent updates may drop a sample,
// which is harmless for a smoothed estimate and keeps the queued path cheap.
func (a *Admission) noteWait(ns int64) {
	prev := a.waitEWMA.Load()
	if prev == 0 {
		a.waitEWMA.Store(ns)
		return
	}
	a.waitEWMA.Store((3*prev + ns) / 4)
}

// EstimateWait predicts how long a caller shed right now would have had to
// wait for a slot: the recent per-acquisition queue wait times the line it
// would have stood behind (current queue depth plus itself). Zero when the
// gate is unlimited or nothing has ever queued — the caller should fall back
// to its own floor.
func (a *Admission) EstimateWait() time.Duration {
	if a == nil || a.sem == nil {
		return 0
	}
	return time.Duration(a.waitEWMA.Load() * (a.queued.Load() + 1))
}

// InFlight returns the number of currently held slots (0 for an unlimited
// gate, which does not track holders).
func (a *Admission) InFlight() int {
	if a == nil || a.sem == nil {
		return 0
	}
	return len(a.sem)
}

// Queued returns the number of callers currently waiting for a slot.
func (a *Admission) Queued() int {
	if a == nil {
		return 0
	}
	return int(a.queued.Load())
}
