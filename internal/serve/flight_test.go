package serve

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestFlightCollapsesConcurrentCalls(t *testing.T) {
	const callers = 16
	var g Group
	var executions, leaders atomic.Int64
	gate := make(chan struct{})
	entered := make(chan struct{})
	var done sync.WaitGroup
	results := make([]any, callers)
	run := func(i int) {
		defer done.Done()
		v, leader := g.Do("key", func() any {
			executions.Add(1)
			close(entered)
			<-gate // hold the flight open until every follower has joined
			return 42
		})
		if leader {
			leaders.Add(1)
		}
		results[i] = v
	}
	done.Add(1)
	go run(0)
	<-entered // the flight is now in progress
	for i := 1; i < callers; i++ {
		done.Add(1)
		go run(i)
	}
	// Only release the leader once all followers are blocked on the flight.
	waitFor(t, "followers to join the flight", func() bool { return g.waiting("key") == callers-1 })
	close(gate)
	done.Wait()
	if n := executions.Load(); n != 1 {
		t.Fatalf("fn executed %d times, want 1", n)
	}
	if n := leaders.Load(); n != 1 {
		t.Fatalf("%d leaders, want 1", n)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("caller %d got %v, want 42", i, v)
		}
	}
}

func TestFlightDistinctKeysDoNotCollapse(t *testing.T) {
	var g Group
	var executions atomic.Int64
	var wg sync.WaitGroup
	for _, key := range []string{"a", "b", "c"} {
		key := key
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.Do(key, func() any { executions.Add(1); return key })
		}()
	}
	wg.Wait()
	if n := executions.Load(); n != 3 {
		t.Fatalf("fn executed %d times, want 3", n)
	}
}

func TestFlightForgetsCompletedKeys(t *testing.T) {
	var g Group
	var executions atomic.Int64
	for i := 0; i < 3; i++ {
		v, leader := g.Do("key", func() any { return executions.Add(1) })
		if !leader {
			t.Fatalf("call %d: lone caller was not the leader", i)
		}
		if v != int64(i+1) {
			t.Fatalf("call %d: fn not re-executed (got %v)", i, v)
		}
	}
}

func TestFlightPanicPropagatesAndForgets(t *testing.T) {
	var g Group
	func() {
		defer func() {
			if recover() == nil {
				t.Error("leader panic swallowed")
			}
		}()
		g.Do("key", func() any { panic("boom") })
	}()
	// The key must be forgotten, so a later call runs fresh.
	v, leader := g.Do("key", func() any { return "ok" })
	if !leader || v != "ok" {
		t.Fatalf("post-panic call: leader=%v v=%v", leader, v)
	}
}
