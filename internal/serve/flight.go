package serve

import "sync"

// Group collapses concurrent duplicate work: while one call for a key is in
// flight, further Do calls with the same key wait for it and share its
// result instead of executing fn again. Unlike golang.org/x/sync's
// singleflight (not vendored here — the repo is stdlib-only), the result is
// an any and the second return value reports whether this caller was the
// leader that executed fn.
type Group struct {
	mu    sync.Mutex
	calls map[any]*flightCall
}

type flightCall struct {
	wg     sync.WaitGroup
	val    any
	joined int // callers sharing this flight besides the leader (guarded by Group.mu)
}

// Do executes fn exactly once per in-flight key: the first caller (the
// leader) runs it; callers that arrive before the leader finishes block and
// receive the same value with leader=false. Once a flight completes, the key
// is forgotten and a later Do starts a fresh flight — callers that must not
// recompute across flights should consult a Cache inside fn.
//
// A panic in fn propagates to the leader; waiting followers receive the
// zero value (nil) with leader=false rather than hanging.
func (g *Group) Do(key any, fn func() any) (val any, leader bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[any]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		c.joined++
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, false
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.calls[key] = c
	g.mu.Unlock()

	defer func() {
		c.wg.Done()
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
	}()
	c.val = fn()
	return c.val, true
}

// waiting reports how many callers have joined key's in-flight call so far
// (0 when no flight is active). Test hook: lets tests hold a flight open
// until every follower has actually blocked on it.
func (g *Group) waiting(key any) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c.joined
	}
	return 0
}
