package serve

import "testing"

func k(h uint64) CacheKey { return CacheKey{Hash: h, Strategy: "portfolio"} }

func TestCacheDisabled(t *testing.T) {
	for _, c := range []*Cache{nil, NewCache(0), NewCache(-3)} {
		c.Add(k(1), "x")
		if _, ok := c.Get(k(1)); ok {
			t.Fatal("disabled cache returned a hit")
		}
		if c.Len() != 0 {
			t.Fatalf("disabled cache has length %d", c.Len())
		}
	}
}

func TestCacheHitMissEvict(t *testing.T) {
	withObs(t)
	hits, misses, evicts := obsCacheHits.Load(), obsCacheMiss.Load(), obsCacheEvict.Load()
	c := NewCache(2)
	if _, ok := c.Get(k(1)); ok {
		t.Fatal("empty cache hit")
	}
	c.Add(k(1), "a")
	c.Add(k(2), "b")
	if v, ok := c.Get(k(1)); !ok || v != "a" {
		t.Fatalf("Get(1) = %v,%v", v, ok)
	}
	// 1 is now most recent; adding 3 must evict 2.
	c.Add(k(3), "c")
	if _, ok := c.Get(k(2)); ok {
		t.Fatal("LRU entry 2 survived eviction")
	}
	if v, ok := c.Get(k(1)); !ok || v != "a" {
		t.Fatalf("recent entry 1 evicted: %v,%v", v, ok)
	}
	if v, ok := c.Get(k(3)); !ok || v != "c" {
		t.Fatalf("new entry 3 missing: %v,%v", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if d := obsCacheHits.Load() - hits; d != 3 {
		t.Fatalf("hit delta = %d, want 3", d)
	}
	if d := obsCacheMiss.Load() - misses; d != 2 {
		t.Fatalf("miss delta = %d, want 2", d)
	}
	if d := obsCacheEvict.Load() - evicts; d != 1 {
		t.Fatalf("evict delta = %d, want 1", d)
	}
}

func TestCacheUpdateRefreshes(t *testing.T) {
	c := NewCache(2)
	c.Add(k(1), "a")
	c.Add(k(2), "b")
	c.Add(k(1), "a2") // update refreshes recency, so 2 is now oldest
	c.Add(k(3), "c")
	if _, ok := c.Get(k(2)); ok {
		t.Fatal("entry 2 should have been the eviction victim")
	}
	if v, ok := c.Get(k(1)); !ok || v != "a2" {
		t.Fatalf("updated entry: %v,%v, want a2", v, ok)
	}
}

func TestCacheKeyDistinguishesKnobs(t *testing.T) {
	c := NewCache(8)
	c.Add(CacheKey{Hash: 7, Strategy: "mac"}, "mac")
	c.Add(CacheKey{Hash: 7, Strategy: "parallel", Workers: 2}, "p2")
	if _, ok := c.Get(CacheKey{Hash: 7, Strategy: "parallel", Workers: 4}); ok {
		t.Fatal("worker count not part of the key")
	}
	if v, ok := c.Get(CacheKey{Hash: 7, Strategy: "mac"}); !ok || v != "mac" {
		t.Fatalf("strategy-keyed entry: %v,%v", v, ok)
	}
}

// TestCacheOutcomeVec pins the labeled outcome counter: one hit, one miss
// and one evict each move exactly their series.
func TestCacheOutcomeVec(t *testing.T) {
	withObs(t)
	hit0 := obsCacheOutcome.Load("hit")
	miss0 := obsCacheOutcome.Load("miss")
	evict0 := obsCacheOutcome.Load("evict")

	c := NewCache(1)
	k1 := CacheKey{Hash: 1}
	k2 := CacheKey{Hash: 2}
	c.Get(k1)       // miss
	c.Add(k1, "v1") //
	c.Get(k1)       // hit
	c.Add(k2, "v2") // evicts k1
	if d := obsCacheOutcome.Load("miss") - miss0; d != 1 {
		t.Fatalf("miss delta = %d, want 1", d)
	}
	if d := obsCacheOutcome.Load("hit") - hit0; d != 1 {
		t.Fatalf("hit delta = %d, want 1", d)
	}
	if d := obsCacheOutcome.Load("evict") - evict0; d != 1 {
		t.Fatalf("evict delta = %d, want 1", d)
	}
}

// TestQuietCacheRecordsNothing pins the secondary-cache contract: a quiet
// LRU (the dispatcher's classification cache) behaves identically but never
// moves the cspd.cache.* counters, so the daemon's result-cache hit rate
// describes exactly one cache.
func TestQuietCacheRecordsNothing(t *testing.T) {
	withObs(t)
	hit0 := obsCacheOutcome.Load("hit")
	miss0 := obsCacheOutcome.Load("miss")
	evict0 := obsCacheOutcome.Load("evict")
	hits0, miss0s, evict0s := obsCacheHits.Load(), obsCacheMiss.Load(), obsCacheEvict.Load()

	c := NewQuietCache(1)
	k1 := CacheKey{Hash: 1}
	k2 := CacheKey{Hash: 2}
	c.Get(k1) // miss
	c.Add(k1, "v1")
	if v, ok := c.Get(k1); !ok || v != "v1" { // hit
		t.Fatalf("quiet cache lost its entry: %v,%v", v, ok)
	}
	c.Add(k2, "v2") // evicts k1
	if c.Len() != 1 {
		t.Fatalf("quiet cache Len = %d, want 1", c.Len())
	}
	for name, d := range map[string]int64{
		"outcome hit":   obsCacheOutcome.Load("hit") - hit0,
		"outcome miss":  obsCacheOutcome.Load("miss") - miss0,
		"outcome evict": obsCacheOutcome.Load("evict") - evict0,
		"hits":          obsCacheHits.Load() - hits0,
		"misses":        obsCacheMiss.Load() - miss0s,
		"evictions":     obsCacheEvict.Load() - evict0s,
	} {
		if d != 0 {
			t.Errorf("quiet cache moved %s by %d", name, d)
		}
	}
}
