package schaefer

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomRel(rng *rand.Rand, arity int) *BoolRel {
	r := MustBoolRel(arity)
	for code := 0; code < 1<<uint(arity); code++ {
		if rng.Float64() < 0.5 {
			r.rows[code] = true
		}
	}
	return r
}

// Property: Horn and dual-Horn are exchanged by complementing values
// (x ↦ 1-x), as are 0-valid and 1-valid.
func TestFlipDualityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRel(rng, 2+rng.Intn(3))
		fl := flipRel(r)
		if r.IsHorn() != fl.IsDualHorn() || r.IsDualHorn() != fl.IsHorn() {
			return false
		}
		if r.IsZeroValid() != fl.IsOneValid() || r.IsOneValid() != fl.IsZeroValid() {
			return false
		}
		// Bijunctive and affine are self-dual under flipping.
		return r.IsBijunctive() == fl.IsBijunctive() && r.IsAffine() == fl.IsAffine()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: compiled Horn clauses define exactly the relation (when
// compilation succeeds): a tuple is in the relation iff it satisfies every
// compiled clause.
func TestCompileHornExactProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRel(rng, 2+rng.Intn(2))
		clauses, err := CompileHorn(r)
		if err != nil {
			return !r.IsHorn()
		}
		for code := 0; code < 1<<uint(r.arity); code++ {
			tup := r.decode(code)
			sat := true
			for _, c := range clauses {
				if !satisfiesHorn(tup, c) {
					sat = false
					break
				}
			}
			if sat != r.rows[code] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the same exactness for 2-CNF compilation on bijunctive
// relations.
func TestCompileTwoSatExactProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRel(rng, 2+rng.Intn(2))
		clauses, err := CompileTwoSat(r)
		if err != nil {
			return !r.IsBijunctive()
		}
		for code := 0; code < 1<<uint(r.arity); code++ {
			tup := r.decode(code)
			sat := true
			for _, c := range clauses {
				if !satisfiesTwo(tup, c) {
					sat = false
					break
				}
			}
			if sat != r.rows[code] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: affine compilation yields a system whose solution set is the
// relation.
func TestCompileAffineExactProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRel(rng, 2+rng.Intn(2))
		rows, err := CompileAffine(r)
		if err != nil {
			return !r.IsAffine()
		}
		for code := 0; code < 1<<uint(r.arity); code++ {
			tup := r.decode(code)
			sat := true
			for _, row := range rows {
				parity := 0
				for _, pos := range row.coeffs {
					parity ^= tup[pos]
				}
				if parity != row.rhs {
					sat = false
					break
				}
			}
			if sat != r.rows[code] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: closure of a relation under a class's operation always yields a
// relation in that class, and closure is monotone (superset of the seed).
func TestClosureChecksAreDecidableProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRel(rng, 2)
		// The full relation is in every closure class except 0/1-validity
		// edge cases; spot-check consistency of the checks themselves:
		// Horn relations are closed under AND of any two tuples.
		if r.IsHorn() {
			for a := range r.rows {
				for b := range r.rows {
					if !r.rows[a&b] {
						return false
					}
				}
			}
		}
		if r.IsAffine() {
			for a := range r.rows {
				for b := range r.rows {
					for c := range r.rows {
						if !r.rows[a^b^c] {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
