package schaefer

import (
	"fmt"

	"csdb/internal/csp"
)

// This file implements the dedicated polynomial-time solvers for Schaefer's
// six tractable classes, plus the generic search baseline used outside
// them. Each class solver follows the classical algorithm:
//
//	0/1-valid:  the constant assignment
//	Horn:       compile to Horn clauses, unit propagation (least model)
//	dual Horn:  value-flip reduction to Horn
//	bijunctive: compile to 2-clauses, implication-graph 2-SAT via SCC
//	affine:     compile to GF(2) linear systems, Gaussian elimination
//
// Compilation from a closed relation to clause/equation form enumerates the
// entailed clauses and verifies the conjunction is exactly the relation —
// possible precisely when the relation has the class's closure property.

// maxCompileArity bounds clause-compilation (3^arity candidate clauses).
const maxCompileArity = 10

// SolveConstant solves 0-valid or 1-valid instances with the constant
// assignment (the definition of the class guarantees it works).
func SolveConstant(p *Instance, value int) ([]int, bool) {
	assign := make([]int, p.NumVars)
	for i := range assign {
		assign[i] = value
	}
	if p.Satisfies(assign) {
		return assign, true
	}
	return nil, false
}

// --- Horn ---

// hornClause is (¬n1 ∨ ... ∨ ¬nk ∨ p), with p = -1 when there is no
// positive literal. Indices are positions (in compiled form) or variables
// (in instance form).
type hornClause struct {
	pos  int
	negs []int
}

// CompileHorn enumerates the Horn clauses entailed by the relation and
// checks they define it exactly. Fails when the relation is not Horn.
func CompileHorn(r *BoolRel) ([]hornClause, error) {
	if r.arity > maxCompileArity {
		return nil, fmt.Errorf("schaefer: relation arity %d exceeds compile bound %d", r.arity, maxCompileArity)
	}
	if r.Len() == 0 {
		// The empty relation: the empty clause (unsatisfiable).
		return []hornClause{{pos: -1}}, nil
	}
	var clauses []hornClause
	// Each position is one of: absent (0), negative (1), positive (2),
	// with at most one positive.
	state := make([]int, r.arity)
	var rec func(i, posCount int)
	rec = func(i, posCount int) {
		if i == r.arity {
			c := hornClause{pos: -1}
			any := false
			for j, s := range state {
				switch s {
				case 1:
					c.negs = append(c.negs, j)
					any = true
				case 2:
					c.pos = j
					any = true
				}
			}
			if !any {
				return
			}
			if entailsClause(r, c) {
				clauses = append(clauses, c)
			}
			return
		}
		for s := 0; s <= 2; s++ {
			if s == 2 && posCount == 1 {
				continue
			}
			state[i] = s
			np := posCount
			if s == 2 {
				np++
			}
			rec(i+1, np)
		}
		state[i] = 0
	}
	rec(0, 0)
	// Completeness: every non-member must falsify some clause.
	for code := 0; code < 1<<r.arity; code++ {
		if r.rows[code] {
			continue
		}
		t := r.decode(code)
		refuted := false
		for _, c := range clauses {
			if !satisfiesHorn(t, c) {
				refuted = true
				break
			}
		}
		if !refuted {
			return nil, fmt.Errorf("schaefer: relation %v is not Horn-definable", r)
		}
	}
	return clauses, nil
}

// entailsClause reports whether every tuple of r satisfies the clause.
func entailsClause(r *BoolRel, c hornClause) bool {
	for code := range r.rows {
		if !satisfiesHorn(r.decode(code), c) {
			return false
		}
	}
	return true
}

func satisfiesHorn(t []int, c hornClause) bool {
	if c.pos >= 0 && t[c.pos] == 1 {
		return true
	}
	for _, n := range c.negs {
		if t[n] == 0 {
			return true
		}
	}
	return false
}

// SolveHorn solves the instance by Horn-SAT unit propagation over the
// compiled clauses of each constraint. It returns the least model when
// satisfiable.
func SolveHorn(p *Instance) ([]int, bool, error) {
	clauses, err := instanceHornClauses(p, false)
	if err != nil {
		return nil, false, err
	}
	assign, ok := hornSat(p.NumVars, clauses)
	return assign, ok, nil
}

// SolveDualHorn solves dual-Horn instances by flipping values, solving the
// Horn image, and flipping back.
func SolveDualHorn(p *Instance) ([]int, bool, error) {
	clauses, err := instanceHornClauses(p, true)
	if err != nil {
		return nil, false, err
	}
	assign, ok := hornSat(p.NumVars, clauses)
	if !ok {
		return nil, false, nil
	}
	for i := range assign {
		assign[i] = 1 - assign[i]
	}
	return assign, true, nil
}

// instanceHornClauses compiles every constraint to clauses over the
// instance's variables; flip complements all relation values first (the
// dual-Horn reduction).
func instanceHornClauses(p *Instance, flip bool) ([]hornClause, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cache := make(map[int][]hornClause)
	var out []hornClause
	for _, con := range p.Cons {
		compiled, ok := cache[con.Rel]
		if !ok {
			rel := p.Template.Rels[con.Rel]
			if flip {
				rel = flipRel(rel)
			}
			var err error
			compiled, err = CompileHorn(rel)
			if err != nil {
				return nil, err
			}
			cache[con.Rel] = compiled
		}
		for _, c := range compiled {
			inst, tautology := mapHornClause(c, con.Scope)
			if tautology {
				continue
			}
			out = append(out, inst)
		}
	}
	return out, nil
}

// mapHornClause substitutes scope variables for positions, handling repeated
// variables (tautologies are dropped, duplicate negatives deduplicated).
func mapHornClause(c hornClause, scope []int) (hornClause, bool) {
	inst := hornClause{pos: -1}
	if c.pos >= 0 {
		inst.pos = scope[c.pos]
	}
	seen := make(map[int]bool)
	for _, n := range c.negs {
		v := scope[n]
		if v == inst.pos {
			return hornClause{}, true // (x ∨ ¬x): tautology
		}
		if !seen[v] {
			seen[v] = true
			inst.negs = append(inst.negs, v)
		}
	}
	return inst, false
}

// flipRel complements every value of the relation (0 ↔ 1).
func flipRel(r *BoolRel) *BoolRel {
	out := MustBoolRel(r.arity)
	mask := 1<<r.arity - 1
	for code := range r.rows {
		out.rows[code^mask] = true
	}
	return out
}

// hornSat runs unit propagation: starting from the all-false assignment,
// derive forced-true variables until fixpoint, then check the all-negative
// clauses.
func hornSat(n int, clauses []hornClause) ([]int, bool) {
	trueSet := make([]bool, n)
	changed := true
	for changed {
		changed = false
		for _, c := range clauses {
			if c.pos < 0 || trueSet[c.pos] {
				continue
			}
			forced := true
			for _, x := range c.negs {
				if !trueSet[x] {
					forced = false
					break
				}
			}
			if forced {
				trueSet[c.pos] = true
				changed = true
			}
		}
	}
	for _, c := range clauses {
		if c.pos >= 0 {
			continue
		}
		violated := true
		for _, x := range c.negs {
			if !trueSet[x] {
				violated = false
				break
			}
		}
		if violated {
			return nil, false
		}
	}
	assign := make([]int, n)
	for i, t := range trueSet {
		if t {
			assign[i] = 1
		}
	}
	return assign, true
}

// --- Bijunctive (2-SAT) ---

// lit is a literal: variable index and sign (true = positive).
type lit struct {
	v   int
	pos bool
}

// twoClause is a clause with one or two literals.
type twoClause []lit

// CompileTwoSat enumerates the 1- and 2-literal clauses entailed by the
// relation and checks completeness; fails when the relation is not
// bijunctive.
func CompileTwoSat(r *BoolRel) ([]twoClause, error) {
	if r.arity > maxCompileArity {
		return nil, fmt.Errorf("schaefer: relation arity %d exceeds compile bound %d", r.arity, maxCompileArity)
	}
	if r.Len() == 0 {
		return []twoClause{{}}, nil // empty clause
	}
	var clauses []twoClause
	try := func(c twoClause) {
		for code := range r.rows {
			if !satisfiesTwo(r.decode(code), c) {
				return
			}
		}
		clauses = append(clauses, c)
	}
	for i := 0; i < r.arity; i++ {
		for _, si := range []bool{false, true} {
			try(twoClause{{i, si}})
			for j := i + 1; j < r.arity; j++ {
				for _, sj := range []bool{false, true} {
					try(twoClause{{i, si}, {j, sj}})
				}
			}
		}
	}
	for code := 0; code < 1<<r.arity; code++ {
		if r.rows[code] {
			continue
		}
		t := r.decode(code)
		refuted := false
		for _, c := range clauses {
			if !satisfiesTwo(t, c) {
				refuted = true
				break
			}
		}
		if !refuted {
			return nil, fmt.Errorf("schaefer: relation %v is not 2-CNF-definable", r)
		}
	}
	return clauses, nil
}

func satisfiesTwo(t []int, c twoClause) bool {
	for _, l := range c {
		if (t[l.v] == 1) == l.pos {
			return true
		}
	}
	return false
}

// SolveTwoSat solves a bijunctive instance by the linear-time
// implication-graph algorithm (Tarjan SCC).
func SolveTwoSat(p *Instance) ([]int, bool, error) {
	if err := p.Validate(); err != nil {
		return nil, false, err
	}
	cache := make(map[int][]twoClause)
	var clauses []twoClause
	for _, con := range p.Cons {
		compiled, ok := cache[con.Rel]
		if !ok {
			var err error
			compiled, err = CompileTwoSat(p.Template.Rels[con.Rel])
			if err != nil {
				return nil, false, err
			}
			cache[con.Rel] = compiled
		}
		for _, c := range compiled {
			mc := make(twoClause, len(c))
			for i, l := range c {
				mc[i] = lit{con.Scope[l.v], l.pos}
			}
			if len(mc) == 2 {
				if mc[0].v == mc[1].v {
					if mc[0].pos == mc[1].pos {
						mc = mc[:1] // (x ∨ x) = unit
					} else {
						continue // (x ∨ ¬x): tautology
					}
				}
			}
			if len(mc) == 0 {
				return nil, false, nil // empty clause: unsatisfiable
			}
			clauses = append(clauses, mc)
		}
	}
	assign, ok := twoSat(p.NumVars, clauses)
	return assign, ok, nil
}

// twoSat decides satisfiability of 1/2-clauses over n variables via the
// implication graph: node 2v is literal x_v, node 2v+1 is ¬x_v.
func twoSat(n int, clauses []twoClause) ([]int, bool) {
	nodes := 2 * n
	adj := make([][]int, nodes)
	node := func(l lit) int {
		if l.pos {
			return 2 * l.v
		}
		return 2*l.v + 1
	}
	negNode := func(x int) int { return x ^ 1 }
	addImp := func(u, v int) { adj[u] = append(adj[u], v) }
	for _, c := range clauses {
		switch len(c) {
		case 1:
			addImp(negNode(node(c[0])), node(c[0]))
		case 2:
			addImp(negNode(node(c[0])), node(c[1]))
			addImp(negNode(node(c[1])), node(c[0]))
		}
	}
	comp := tarjanSCC(adj)
	assign := make([]int, n)
	for v := 0; v < n; v++ {
		if comp[2*v] == comp[2*v+1] {
			return nil, false
		}
		// Tarjan numbers components in reverse topological order; a literal
		// later in topological order (smaller Tarjan index) is implied-by
		// more things... assign true to the literal whose component comes
		// later in topological order, i.e. with the smaller Tarjan number.
		if comp[2*v] < comp[2*v+1] {
			assign[v] = 1
		}
	}
	return assign, true
}

// tarjanSCC returns the SCC index of every node; components are numbered in
// reverse topological order (sinks first).
func tarjanSCC(adj [][]int) []int {
	n := len(adj)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range index {
		index[i] = -1
		comp[i] = -1
	}
	var stack []int
	counter, nComp := 0, 0

	// Iterative Tarjan to avoid deep recursion on long implication chains.
	type frame struct {
		v, childIdx int
	}
	for start := 0; start < n; start++ {
		if index[start] >= 0 {
			continue
		}
		var frames []frame
		frames = append(frames, frame{start, 0})
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, start)
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.childIdx < len(adj[f.v]) {
				w := adj[f.v][f.childIdx]
				f.childIdx++
				if index[w] < 0 {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// Post-process v.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				pv := frames[len(frames)-1].v
				if low[v] < low[pv] {
					low[pv] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					if w == v {
						break
					}
				}
				nComp++
			}
		}
	}
	return comp
}

// --- Affine ---

// affineRow is one GF(2) equation over relation positions.
type affineRow struct {
	coeffs []int // positions with coefficient 1
	rhs    int
}

// CompileAffine derives a GF(2) equation system defining the relation;
// fails when the relation is not affine.
func CompileAffine(r *BoolRel) ([]affineRow, error) {
	if !r.IsAffine() {
		return nil, fmt.Errorf("schaefer: relation %v is not affine", r)
	}
	if r.Len() == 0 {
		return []affineRow{{rhs: 1}}, nil // 0 = 1: unsatisfiable
	}
	tuples := r.Tuples()
	t0 := tuples[0]
	// Difference vectors span the direction space V; find a basis of the
	// orthogonal complement: all h with h·(t⊕t0)=0 for all t.
	var basis []uint32 // row-reduced basis of V
	for _, t := range tuples[1:] {
		var vec uint32
		for i := range t {
			if t[i] != t0[i] {
				vec |= 1 << uint(i)
			}
		}
		// Reduce vec by the echelon basis: cancel each row's pivot bit.
		for _, b := range basis {
			if vec&lowestBit(b) != 0 {
				vec ^= b
			}
		}
		if vec != 0 {
			basis = append(basis, vec)
			basis = echelon(basis)
		}
	}
	basis = echelon(basis)
	// Null space of the row space: standard free-variable construction.
	lead := make(map[int]uint32) // leading bit position -> row
	isLead := make([]bool, r.arity)
	for _, b := range basis {
		l := trailingZeros(b)
		lead[l] = b
		isLead[l] = true
	}
	var rows []affineRow
	for j := 0; j < r.arity; j++ {
		if isLead[j] {
			continue
		}
		// Free position j: null vector with 1 at j and at every lead l whose
		// row has bit j.
		var h uint32 = 1 << uint(j)
		for l, b := range lead {
			if b&(1<<uint(j)) != 0 {
				h |= 1 << uint(l)
			}
		}
		row := affineRow{}
		parity := 0
		for i := 0; i < r.arity; i++ {
			if h&(1<<uint(i)) != 0 {
				row.coeffs = append(row.coeffs, i)
				parity ^= t0[i]
			}
		}
		row.rhs = parity
		rows = append(rows, row)
	}
	return rows, nil
}

func lowestBit(x uint32) uint32 { return x & (-x) }

func trailingZeros(x uint32) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// echelon row-reduces a GF(2) basis to reduced echelon form.
func echelon(rows []uint32) []uint32 {
	var out []uint32
	work := append([]uint32(nil), rows...)
	for bit := 0; bit < 32; bit++ {
		mask := uint32(1) << uint(bit)
		pivot := -1
		for i, r := range work {
			if r&mask != 0 && trailingZeros(r) == bit {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		p := work[pivot]
		work = append(work[:pivot], work[pivot+1:]...)
		for i := range work {
			if work[i]&mask != 0 {
				work[i] ^= p
			}
		}
		for i := range out {
			if out[i]&mask != 0 {
				out[i] ^= p
			}
		}
		out = append(out, p)
	}
	return out
}

// SolveAffine solves an affine instance by Gaussian elimination over GF(2).
func SolveAffine(p *Instance) ([]int, bool, error) {
	if err := p.Validate(); err != nil {
		return nil, false, err
	}
	cache := make(map[int][]affineRow)
	type eq struct {
		coeffs map[int]bool
		rhs    int
	}
	var system []eq
	for _, con := range p.Cons {
		rows, ok := cache[con.Rel]
		if !ok {
			var err error
			rows, err = CompileAffine(p.Template.Rels[con.Rel])
			if err != nil {
				return nil, false, err
			}
			cache[con.Rel] = rows
		}
		for _, row := range rows {
			e := eq{coeffs: make(map[int]bool), rhs: row.rhs}
			for _, pos := range row.coeffs {
				v := con.Scope[pos]
				if e.coeffs[v] {
					delete(e.coeffs, v) // x ⊕ x = 0
				} else {
					e.coeffs[v] = true
				}
			}
			system = append(system, e)
		}
	}
	// Gaussian elimination in reduced row-echelon form: every pivot
	// equation contains exactly its own pivot variable plus free variables,
	// so back-substitution with all free variables zero is immediate.
	xorInto := func(dst *eq, src eq) {
		for w := range src.coeffs {
			if dst.coeffs[w] {
				delete(dst.coeffs, w)
			} else {
				dst.coeffs[w] = true
			}
		}
		dst.rhs ^= src.rhs
	}
	pivotOf := make(map[int]int) // pivot variable -> equation index
	for ei := range system {
		e := &system[ei]
		// One reduction pass suffices: pivot equations contain no other
		// pivot variables, so xoring them in cannot reintroduce one.
		for v, pe := range pivotOf {
			if e.coeffs[v] {
				xorInto(e, system[pe])
			}
		}
		if len(e.coeffs) == 0 {
			if e.rhs != 0 {
				return nil, false, nil
			}
			continue
		}
		var pv int
		for v := range e.coeffs {
			pv = v
			break
		}
		// Restore the invariant: eliminate pv (free until now) from every
		// existing pivot equation.
		for _, pe := range pivotOf {
			if system[pe].coeffs[pv] {
				xorInto(&system[pe], *e)
			}
		}
		pivotOf[pv] = ei
	}
	assign := make([]int, p.NumVars)
	for pv, ei := range pivotOf {
		assign[pv] = system[ei].rhs
	}
	if !p.Satisfies(assign) {
		// Defensive: with correct elimination this cannot happen.
		return nil, false, fmt.Errorf("schaefer: affine back-substitution produced an invalid assignment")
	}
	return assign, true, nil
}

// --- Generic baseline and dispatch ---

// ToCSP converts the instance to a general CSP instance.
func (p *Instance) ToCSP() (*csp.Instance, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	out := csp.NewInstance(p.NumVars, 2)
	for _, con := range p.Cons {
		tab := csp.NewTable(len(con.Scope))
		for _, t := range p.Template.Rels[con.Rel].Tuples() {
			tab.Add(t)
		}
		if err := out.AddConstraint(con.Scope, tab); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SolveGeneric solves by general backtracking search (the NP baseline).
func SolveGeneric(p *Instance, opts csp.Options) ([]int, bool, error) {
	q, err := p.ToCSP()
	if err != nil {
		return nil, false, err
	}
	res := csp.Solve(q, opts)
	if !res.Found {
		return nil, false, nil
	}
	return res.Solution, true, nil
}

// Solve classifies the template and dispatches to the matching polynomial
// solver, falling back to generic search outside Schaefer's classes. It
// returns the assignment, satisfiability, and the class used (nil pointer
// when the generic solver ran).
func Solve(p *Instance) ([]int, bool, *Class, error) {
	classes := p.Template.Classify()
	for _, c := range classes {
		switch c {
		case ZeroValid:
			if a, ok := SolveConstant(p, 0); ok {
				cl := c
				return a, true, &cl, nil
			}
		case OneValid:
			if a, ok := SolveConstant(p, 1); ok {
				cl := c
				return a, true, &cl, nil
			}
		case Horn:
			a, ok, err := SolveHorn(p)
			cl := c
			return a, ok, &cl, err
		case DualHorn:
			a, ok, err := SolveDualHorn(p)
			cl := c
			return a, ok, &cl, err
		case Bijunctive:
			a, ok, err := SolveTwoSat(p)
			cl := c
			return a, ok, &cl, err
		case Affine:
			a, ok, err := SolveAffine(p)
			cl := c
			return a, ok, &cl, err
		}
	}
	a, ok, err := SolveGeneric(p, csp.Options{})
	return a, ok, nil, err
}
