package schaefer

import (
	"math/rand"
	"testing"

	"csdb/internal/csp"
)

func TestBoolRelBasics(t *testing.T) {
	r := MustBoolRel(2, []int{0, 1}, []int{1, 0}, []int{0, 1})
	if r.Len() != 2 {
		t.Fatalf("dedup failed: %d", r.Len())
	}
	if !r.Has([]int{0, 1}) || r.Has([]int{1, 1}) {
		t.Fatal("membership wrong")
	}
	if r.Has([]int{0}) {
		t.Fatal("wrong arity accepted in Has")
	}
	if err := r.Add([]int{2, 0}); err == nil {
		t.Fatal("non-Boolean value accepted")
	}
	if _, err := NewBoolRel(0); err == nil {
		t.Fatal("arity 0 accepted")
	}
	ts := r.Tuples()
	if len(ts) != 2 || ts[0][0] != 0 || ts[0][1] != 1 || ts[1][0] != 1 {
		t.Fatalf("Tuples = %v", ts)
	}
}

func TestClosurePropertiesOfNamedRelations(t *testing.T) {
	cases := []struct {
		name                                          string
		r                                             *BoolRel
		zero, one, horn, dualHorn, bijunctive, affine bool
	}{
		{"xor", RelXor(), false, false, false, false, true, true},
		{"eq", RelEq(), true, true, true, true, true, true},
		{"1-in-3", RelOneInThree(), false, false, false, false, false, false},
		{"nae3", RelNAE3(), false, false, false, false, false, false},
		{"clause x|y", RelClause(true, true), false, true, false, true, true, false},
		{"clause !x|!y", RelClause(false, false), true, false, true, false, true, false},
		{"horn clause !x|!y|z", RelClause(false, false, true), true, true, true, false, false, false},
		{"implication !x|y", RelClause(false, true), true, true, true, true, true, false},
	}
	for _, c := range cases {
		if got := c.r.IsZeroValid(); got != c.zero {
			t.Errorf("%s: 0-valid = %v, want %v", c.name, got, c.zero)
		}
		if got := c.r.IsOneValid(); got != c.one {
			t.Errorf("%s: 1-valid = %v, want %v", c.name, got, c.one)
		}
		if got := c.r.IsHorn(); got != c.horn {
			t.Errorf("%s: Horn = %v, want %v", c.name, got, c.horn)
		}
		if got := c.r.IsDualHorn(); got != c.dualHorn {
			t.Errorf("%s: dual-Horn = %v, want %v", c.name, got, c.dualHorn)
		}
		if got := c.r.IsBijunctive(); got != c.bijunctive {
			t.Errorf("%s: bijunctive = %v, want %v", c.name, got, c.bijunctive)
		}
		if got := c.r.IsAffine(); got != c.affine {
			t.Errorf("%s: affine = %v, want %v", c.name, got, c.affine)
		}
	}
}

func TestClassify(t *testing.T) {
	// 2-SAT template: all binary clause types.
	twoSatTemplate := &Template{Rels: []*BoolRel{
		RelClause(true, true), RelClause(true, false), RelClause(false, false),
	}}
	classes := twoSatTemplate.Classify()
	if len(classes) != 1 || classes[0] != Bijunctive {
		t.Fatalf("2-SAT classes = %v", classes)
	}
	// 1-in-3 template: NP-complete side of the dichotomy.
	hard := &Template{Rels: []*BoolRel{RelOneInThree()}}
	if hard.IsTractable() {
		t.Fatal("1-in-3 classified tractable")
	}
	// Horn template.
	hornTemplate := &Template{Rels: []*BoolRel{
		RelClause(false, false, true), RelClause(true), RelClause(false),
	}}
	found := false
	for _, c := range hornTemplate.Classify() {
		if c == Horn {
			found = true
		}
	}
	if !found {
		t.Fatalf("Horn template classes = %v", hornTemplate.Classify())
	}
}

// bruteForce enumerates all 2^n assignments.
func bruteForce(p *Instance) []int {
	for mask := 0; mask < 1<<p.NumVars; mask++ {
		assign := make([]int, p.NumVars)
		for v := 0; v < p.NumVars; v++ {
			assign[v] = (mask >> v) & 1
		}
		if p.Satisfies(assign) {
			return assign
		}
	}
	return nil
}

// randomInstance builds a random instance over the template.
func randomInstance(rng *rand.Rand, tpl *Template, vars, cons int) *Instance {
	p := &Instance{Template: tpl, NumVars: vars}
	for c := 0; c < cons; c++ {
		ri := rng.Intn(len(tpl.Rels))
		scope := make([]int, tpl.Rels[ri].Arity())
		for i := range scope {
			scope[i] = rng.Intn(vars)
		}
		p.Cons = append(p.Cons, Application{Rel: ri, Scope: scope})
	}
	return p
}

func checkSolverAgainstBruteForce(t *testing.T, name string, tpl *Template,
	solve func(*Instance) ([]int, bool, error), trials int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < trials; trial++ {
		p := randomInstance(rng, tpl, 2+rng.Intn(5), 1+rng.Intn(6))
		want := bruteForce(p) != nil
		got, ok, err := solve(p)
		if err != nil {
			t.Fatalf("%s trial %d: %v", name, trial, err)
		}
		if ok != want {
			t.Fatalf("%s trial %d: solver=%v brute=%v", name, trial, ok, want)
		}
		if ok && !p.Satisfies(got) {
			t.Fatalf("%s trial %d: invalid assignment %v", name, trial, got)
		}
	}
}

func TestSolveHornAgainstBruteForce(t *testing.T) {
	tpl := &Template{Rels: []*BoolRel{
		RelClause(false, false, true), // y∧z → x
		RelClause(false, true),        // y → x
		RelClause(true),               // x
		RelClause(false),              // ¬x
		RelClause(false, false),       // ¬x ∨ ¬y
	}}
	checkSolverAgainstBruteForce(t, "horn", tpl, SolveHorn, 150, 31)
}

func TestSolveDualHornAgainstBruteForce(t *testing.T) {
	tpl := &Template{Rels: []*BoolRel{
		RelClause(true, true, false), // flip of horn
		RelClause(true, false),
		RelClause(true),
		RelClause(false),
		RelClause(true, true),
	}}
	checkSolverAgainstBruteForce(t, "dual-horn", tpl, SolveDualHorn, 150, 37)
}

func TestSolveTwoSatAgainstBruteForce(t *testing.T) {
	tpl := &Template{Rels: []*BoolRel{
		RelClause(true, true), RelClause(true, false), RelClause(false, false),
		RelClause(true), RelClause(false), RelXor(), RelEq(),
	}}
	checkSolverAgainstBruteForce(t, "2sat", tpl, SolveTwoSat, 200, 41)
}

func TestSolveAffineAgainstBruteForce(t *testing.T) {
	// x⊕y=1, x=y, x⊕y⊕z=0, x⊕y⊕z=1, units.
	xor3even := MustBoolRel(3, []int{0, 0, 0}, []int{0, 1, 1}, []int{1, 0, 1}, []int{1, 1, 0})
	xor3odd := MustBoolRel(3, []int{1, 0, 0}, []int{0, 1, 0}, []int{0, 0, 1}, []int{1, 1, 1})
	unit1 := MustBoolRel(1, []int{1})
	unit0 := MustBoolRel(1, []int{0})
	tpl := &Template{Rels: []*BoolRel{RelXor(), RelEq(), xor3even, xor3odd, unit1, unit0}}
	checkSolverAgainstBruteForce(t, "affine", tpl, SolveAffine, 200, 43)
}

func TestSolveConstant(t *testing.T) {
	tpl := &Template{Rels: []*BoolRel{RelEq()}}
	p := randomInstance(rand.New(rand.NewSource(1)), tpl, 4, 5)
	if a, ok := SolveConstant(p, 0); !ok || !p.Satisfies(a) {
		t.Fatal("0-valid solve failed")
	}
	if a, ok := SolveConstant(p, 1); !ok || !p.Satisfies(a) {
		t.Fatal("1-valid solve failed")
	}
}

func TestCompileRejectsWrongClass(t *testing.T) {
	if _, err := CompileHorn(RelOneInThree()); err == nil {
		t.Fatal("1-in-3 compiled as Horn")
	}
	if _, err := CompileTwoSat(RelOneInThree()); err == nil {
		t.Fatal("1-in-3 compiled as 2-CNF")
	}
	if _, err := CompileAffine(RelOneInThree()); err == nil {
		t.Fatal("1-in-3 compiled as affine")
	}
	// Clause x∨y∨z is not bijunctive.
	if _, err := CompileTwoSat(RelClause(true, true, true)); err == nil {
		t.Fatal("3-clause compiled as 2-CNF")
	}
}

func TestCompileEmptyRelationIsUnsat(t *testing.T) {
	empty := MustBoolRel(2)
	tpl := &Template{Rels: []*BoolRel{empty}}
	p := &Instance{Template: tpl, NumVars: 2, Cons: []Application{{Rel: 0, Scope: []int{0, 1}}}}
	if _, ok, err := SolveHorn(p); err != nil || ok {
		t.Fatalf("empty-relation horn: %v %v", ok, err)
	}
	if _, ok, err := SolveTwoSat(p); err != nil || ok {
		t.Fatalf("empty-relation 2sat: %v %v", ok, err)
	}
	if _, ok, err := SolveAffine(p); err != nil || ok {
		t.Fatalf("empty-relation affine: %v %v", ok, err)
	}
}

func TestRepeatedScopeVariables(t *testing.T) {
	// Constraint XOR(x,x) is unsatisfiable; EQ(x,x) is trivially true.
	tpl := &Template{Rels: []*BoolRel{RelXor(), RelEq()}}
	unsat := &Instance{Template: tpl, NumVars: 1, Cons: []Application{{Rel: 0, Scope: []int{0, 0}}}}
	if _, ok, err := SolveAffine(unsat); err != nil || ok {
		t.Fatalf("XOR(x,x): %v %v", ok, err)
	}
	if _, ok, err := SolveTwoSat(unsat); err != nil || ok {
		t.Fatalf("XOR(x,x) 2sat: %v %v", ok, err)
	}
	sat := &Instance{Template: tpl, NumVars: 1, Cons: []Application{{Rel: 1, Scope: []int{0, 0}}}}
	if _, ok, err := SolveAffine(sat); err != nil || !ok {
		t.Fatalf("EQ(x,x): %v %v", ok, err)
	}
}

func TestSolveDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	templates := []*Template{
		{Rels: []*BoolRel{RelClause(false, false, true), RelClause(true), RelClause(false)}}, // Horn
		{Rels: []*BoolRel{RelClause(true, true), RelClause(false, false)}},                   // bijunctive
		{Rels: []*BoolRel{RelXor(), RelEq()}},                                                // affine
		{Rels: []*BoolRel{RelOneInThree()}},                                                  // NP side
	}
	for ti, tpl := range templates {
		for trial := 0; trial < 60; trial++ {
			p := randomInstance(rng, tpl, 2+rng.Intn(4), 1+rng.Intn(5))
			want := bruteForce(p) != nil
			got, ok, class, err := Solve(p)
			if err != nil {
				t.Fatalf("template %d trial %d: %v", ti, trial, err)
			}
			if ok != want {
				t.Fatalf("template %d trial %d: solve=%v brute=%v (class %v)", ti, trial, ok, want, class)
			}
			if ok && !p.Satisfies(got) {
				t.Fatalf("template %d trial %d: invalid assignment", ti, trial)
			}
			if ti == 3 && class != nil {
				t.Fatalf("1-in-3 dispatched to class %v", *class)
			}
			if ti != 3 && ok && class == nil {
				t.Fatalf("template %d solved generically", ti)
			}
		}
	}
}

func TestValidate(t *testing.T) {
	tpl := &Template{Rels: []*BoolRel{RelXor()}}
	bad := []*Instance{
		{Template: tpl, NumVars: 2, Cons: []Application{{Rel: 1, Scope: []int{0, 1}}}},
		{Template: tpl, NumVars: 2, Cons: []Application{{Rel: 0, Scope: []int{0}}}},
		{Template: tpl, NumVars: 2, Cons: []Application{{Rel: 0, Scope: []int{0, 2}}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad instance %d accepted", i)
		}
	}
}

func TestToCSPAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	tpl := &Template{Rels: []*BoolRel{RelOneInThree(), RelNAE3()}}
	for trial := 0; trial < 60; trial++ {
		p := randomInstance(rng, tpl, 3+rng.Intn(3), 1+rng.Intn(4))
		want := bruteForce(p) != nil
		got, ok, err := SolveGeneric(p, csp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if ok != want {
			t.Fatalf("trial %d: generic=%v brute=%v", trial, ok, want)
		}
		if ok && !p.Satisfies(got) {
			t.Fatalf("trial %d: invalid generic assignment", trial)
		}
	}
}
