package schaefer

import (
	"fmt"

	"csdb/internal/csp"
)

// FromCSP converts a 2-valued CSP instance to a Schaefer template instance,
// deduplicating constraint tables into template relations. Per-variable
// domain restrictions become unary relations of the template, so a
// restricted domain participates in the template's classification exactly
// like any other constraint (a {1}-restriction, say, breaks 0-validity).
func FromCSP(inst *csp.Instance) (*Instance, error) {
	if inst.Dom != 2 {
		return nil, fmt.Errorf("schaefer: FromCSP needs a Boolean domain, got %d values", inst.Dom)
	}
	q := inst.Normalize()
	tpl := &Template{}
	byKey := make(map[string]int)
	out := &Instance{Template: tpl, NumVars: q.Vars}
	// Fold per-variable domain restrictions into unary constraints.
	if q.Domains != nil {
		for v, dom := range q.Domains {
			if dom == nil {
				continue
			}
			rel, err := NewBoolRel(1)
			if err != nil {
				return nil, err
			}
			for _, val := range dom {
				if err := rel.Add([]int{val}); err != nil {
					return nil, err
				}
			}
			idx := len(tpl.Rels)
			tpl.Rels = append(tpl.Rels, rel)
			out.Cons = append(out.Cons, Application{Rel: idx, Scope: []int{v}})
		}
	}
	for _, con := range q.Constraints {
		k := con.Table.Key()
		idx, ok := byKey[k]
		if !ok {
			rel, err := NewBoolRel(con.Table.Arity())
			if err != nil {
				return nil, err
			}
			for _, t := range con.Table.Tuples() {
				if err := rel.Add(t); err != nil {
					return nil, err
				}
			}
			idx = len(tpl.Rels)
			tpl.Rels = append(tpl.Rels, rel)
			byKey[k] = idx
		}
		out.Cons = append(out.Cons, Application{Rel: idx, Scope: con.Scope})
	}
	return out, nil
}
