// Package schaefer implements Schaefer's dichotomy machinery for Boolean
// constraint-satisfaction problems CSP(B) over a two-element domain
// (Section 3 of the paper): classification of a constraint template into
// Schaefer's six polynomial classes via the characteristic closure
// properties (polymorphisms), together with a dedicated polynomial solver
// per class and a DPLL-style baseline for templates outside all six
// classes, where CSP(B) is NP-complete.
//
// The six classes and their closure characterizations:
//
//	0-valid:    every relation contains the all-zero tuple
//	1-valid:    every relation contains the all-one tuple
//	Horn:       every relation is closed under coordinatewise AND
//	dual Horn:  every relation is closed under coordinatewise OR
//	bijunctive: every relation is closed under coordinatewise majority
//	affine:     every relation is closed under x ⊕ y ⊕ z
package schaefer

import (
	"fmt"
	"sort"
	"strings"
)

// BoolRel is a Boolean relation: a set of {0,1}-tuples of fixed arity,
// stored as a bitset over tuple codes (the code of a tuple is its binary
// value, first coordinate most significant).
type BoolRel struct {
	arity int
	rows  map[int]bool
}

// NewBoolRel creates an empty relation of the given arity (1..16).
func NewBoolRel(arity int) (*BoolRel, error) {
	if arity < 1 || arity > 16 {
		return nil, fmt.Errorf("schaefer: arity %d outside [1,16]", arity)
	}
	return &BoolRel{arity: arity, rows: make(map[int]bool)}, nil
}

// MustBoolRel builds a relation from tuples, panicking on error.
func MustBoolRel(arity int, tuples ...[]int) *BoolRel {
	r, err := NewBoolRel(arity)
	if err != nil {
		panic(err)
	}
	for _, t := range tuples {
		if err := r.Add(t); err != nil {
			panic(err)
		}
	}
	return r
}

// Arity returns the relation's arity.
func (r *BoolRel) Arity() int { return r.arity }

// Len returns the number of tuples.
func (r *BoolRel) Len() int { return len(r.rows) }

// Add inserts a tuple of 0/1 values.
func (r *BoolRel) Add(t []int) error {
	code, err := r.encode(t)
	if err != nil {
		return err
	}
	r.rows[code] = true
	return nil
}

// Has reports membership of a 0/1 tuple.
func (r *BoolRel) Has(t []int) bool {
	code, err := r.encode(t)
	if err != nil {
		return false
	}
	return r.rows[code]
}

func (r *BoolRel) encode(t []int) (int, error) {
	if len(t) != r.arity {
		return 0, fmt.Errorf("schaefer: tuple arity %d for relation arity %d", len(t), r.arity)
	}
	code := 0
	for _, v := range t {
		if v != 0 && v != 1 {
			return 0, fmt.Errorf("schaefer: non-Boolean value %d", v)
		}
		code = code<<1 | v
	}
	return code, nil
}

func (r *BoolRel) decode(code int) []int {
	t := make([]int, r.arity)
	for i := r.arity - 1; i >= 0; i-- {
		t[i] = code & 1
		code >>= 1
	}
	return t
}

// Tuples returns all tuples in ascending code order.
func (r *BoolRel) Tuples() [][]int {
	codes := make([]int, 0, len(r.rows))
	for c := range r.rows {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	out := make([][]int, len(codes))
	for i, c := range codes {
		out[i] = r.decode(c)
	}
	return out
}

func (r *BoolRel) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, t := range r.Tuples() {
		if i > 0 {
			b.WriteByte(' ')
		}
		for _, v := range t {
			fmt.Fprintf(&b, "%d", v)
		}
	}
	b.WriteByte('}')
	return b.String()
}

// Closure properties (pointwise applications of Boolean operations).

// IsZeroValid reports whether the relation contains the all-zero tuple.
func (r *BoolRel) IsZeroValid() bool { return r.rows[0] }

// IsOneValid reports whether the relation contains the all-one tuple.
func (r *BoolRel) IsOneValid() bool { return r.rows[(1<<r.arity)-1] }

// closedUnderBinary checks closure under a coordinatewise binary operation
// given as a function on tuple codes (bitwise AND/OR work directly).
func (r *BoolRel) closedUnderBinary(op func(a, b int) int) bool {
	for a := range r.rows {
		for b := range r.rows {
			if !r.rows[op(a, b)] {
				return false
			}
		}
	}
	return true
}

// IsHorn reports closure under coordinatewise AND.
func (r *BoolRel) IsHorn() bool {
	return r.closedUnderBinary(func(a, b int) int { return a & b })
}

// IsDualHorn reports closure under coordinatewise OR.
func (r *BoolRel) IsDualHorn() bool {
	return r.closedUnderBinary(func(a, b int) int { return a | b })
}

// IsBijunctive reports closure under the coordinatewise majority operation.
func (r *BoolRel) IsBijunctive() bool {
	for a := range r.rows {
		for b := range r.rows {
			for c := range r.rows {
				maj := (a & b) | (a & c) | (b & c)
				if !r.rows[maj] {
					return false
				}
			}
		}
	}
	return true
}

// IsAffine reports closure under x ⊕ y ⊕ z, i.e. the relation is the
// solution set of a system of linear equations over GF(2).
func (r *BoolRel) IsAffine() bool {
	for a := range r.rows {
		for b := range r.rows {
			for c := range r.rows {
				if !r.rows[a^b^c] {
					return false
				}
			}
		}
	}
	return true
}

// Class identifies one of Schaefer's tractable classes.
type Class int

const (
	ZeroValid Class = iota
	OneValid
	Horn
	DualHorn
	Bijunctive
	Affine
)

func (c Class) String() string {
	switch c {
	case ZeroValid:
		return "0-valid"
	case OneValid:
		return "1-valid"
	case Horn:
		return "Horn"
	case DualHorn:
		return "dual-Horn"
	case Bijunctive:
		return "bijunctive"
	case Affine:
		return "affine"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Template is a Boolean constraint language: a named set of relations. The
// non-uniform problem CSP(B) fixes the template and takes conjunctions of
// its relations applied to variables as input.
type Template struct {
	Rels []*BoolRel
}

// Classify returns the Schaefer classes containing every relation of the
// template. An empty result means CSP(B) is NP-complete (Schaefer's
// dichotomy); a nonempty result certifies polynomial-time solvability.
func (t *Template) Classify() []Class {
	checks := []struct {
		class Class
		ok    func(*BoolRel) bool
	}{
		{ZeroValid, (*BoolRel).IsZeroValid},
		{OneValid, (*BoolRel).IsOneValid},
		{Horn, (*BoolRel).IsHorn},
		{DualHorn, (*BoolRel).IsDualHorn},
		{Bijunctive, (*BoolRel).IsBijunctive},
		{Affine, (*BoolRel).IsAffine},
	}
	var out []Class
	for _, ch := range checks {
		all := true
		for _, r := range t.Rels {
			if !ch.ok(r) {
				all = false
				break
			}
		}
		if all {
			out = append(out, ch.class)
		}
	}
	return out
}

// IsTractable reports whether the template falls in at least one Schaefer
// class.
func (t *Template) IsTractable() bool { return len(t.Classify()) > 0 }

// Application is one constraint of a template instance: relation index into
// the template and the variable scope.
type Application struct {
	Rel   int
	Scope []int
}

// Instance is an instance of CSP(B) for a Boolean template B.
type Instance struct {
	Template *Template
	NumVars  int
	Cons     []Application
}

// Validate checks scopes and relation indices.
func (p *Instance) Validate() error {
	for ci, c := range p.Cons {
		if c.Rel < 0 || c.Rel >= len(p.Template.Rels) {
			return fmt.Errorf("schaefer: constraint %d uses unknown relation %d", ci, c.Rel)
		}
		if len(c.Scope) != p.Template.Rels[c.Rel].Arity() {
			return fmt.Errorf("schaefer: constraint %d scope length %d for arity %d", ci, len(c.Scope), p.Template.Rels[c.Rel].Arity())
		}
		for _, v := range c.Scope {
			if v < 0 || v >= p.NumVars {
				return fmt.Errorf("schaefer: constraint %d variable %d outside [0,%d)", ci, v, p.NumVars)
			}
		}
	}
	return nil
}

// Satisfies reports whether the 0/1 assignment satisfies the instance.
func (p *Instance) Satisfies(assign []int) bool {
	if len(assign) != p.NumVars {
		return false
	}
	row := make([]int, 16)
	for _, c := range p.Cons {
		rel := p.Template.Rels[c.Rel]
		r := row[:len(c.Scope)]
		for i, v := range c.Scope {
			r[i] = assign[v]
		}
		if !rel.Has(r) {
			return false
		}
	}
	return true
}

// Named standard relations.

// RelOneInThree is the positive 1-in-3-SAT relation {100,010,001}: in none
// of Schaefer's classes, so CSP over it is NP-complete.
func RelOneInThree() *BoolRel {
	return MustBoolRel(3, []int{1, 0, 0}, []int{0, 1, 0}, []int{0, 0, 1})
}

// RelNAE3 is the not-all-equal relation of arity 3.
func RelNAE3() *BoolRel {
	r := MustBoolRel(3)
	for code := 1; code < 7; code++ {
		r.rows[code] = true
	}
	return r
}

// RelClause builds the relation of a disjunctive clause over the given
// literal signs: signs[i] true means the i-th position appears positively.
// E.g. signs (true,false) is (x ∨ ¬y).
func RelClause(signs ...bool) *BoolRel {
	r := MustBoolRel(len(signs))
	for code := 0; code < 1<<len(signs); code++ {
		t := r.decode(code)
		sat := false
		for i, s := range signs {
			if (t[i] == 1) == s {
				sat = true
				break
			}
		}
		if sat {
			r.rows[code] = true
		}
	}
	return r
}

// RelXor is the binary relation x ⊕ y = 1.
func RelXor() *BoolRel {
	return MustBoolRel(2, []int{0, 1}, []int{1, 0})
}

// RelEq is the binary equality relation.
func RelEq() *BoolRel {
	return MustBoolRel(2, []int{0, 0}, []int{1, 1})
}
