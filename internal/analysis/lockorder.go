package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// lockorder: named mutexes must be acquired in one global order, and
// blocking operations must not run while a lock is held.
//
// The analyzer tracks, per function, which named locks (sync.Mutex/RWMutex
// struct fields and package-level variables) are held at each point of a
// lexical walk: Lock/RLock pushes, Unlock/RUnlock pops, a deferred unlock
// keeps the lock held to the end of the function (which is its meaning).
// Two kinds of facts come out of the walk:
//
//   - acquisition edges: acquiring B while holding A orders A before B.
//     Calls are closed over the call graph — calling a function whose
//     summary acquires B counts. All edges feed one global graph; Finish
//     reports every strongly connected component with two or more locks
//     (or a self-loop: recursive acquisition) as a deadlock-capable cycle.
//   - blocking-under-lock: performing a blocking operation — channel
//     send/receive, a select with no default, WaitGroup.Wait, a net/http
//     call, the admission semaphore, an engine Solve* entry point, directly
//     or via a callee's summary — while holding any lock serializes every
//     other critical section behind that operation and invites deadlock.
//
// Branches merge conservatively: after an if/else or switch the held set is
// the intersection of the branch outcomes, so only locks held on every path
// order later acquisitions.
var lockorderAnalyzer = &Analyzer{
	Name:         "lockorder",
	Doc:          "named mutexes must be acquired in a consistent global order; no blocking operations while a lock is held",
	Prepare:      prepareLockorder,
	CheckPackage: runLockorder,
	Finish:       finishLockorder,
}

// lockEdge is one ordered acquisition: to was acquired while from was held.
type lockEdge struct {
	from, to types.Object
}

// lockorderFacts is the global edge set. CheckPackage calls run concurrently,
// so recording is mutex-guarded; Finish reads it alone.
type lockorderFacts struct {
	mu    sync.Mutex
	edges map[lockEdge][]token.Position
}

func prepareLockorder(*Pass) any {
	return &lockorderFacts{edges: make(map[lockEdge][]token.Position)}
}

func (f *lockorderFacts) record(pos token.Position, from, to types.Object) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.edges[lockEdge{from, to}] = append(f.edges[lockEdge{from, to}], pos)
}

func runLockorder(pass *Pass, pkg *Package, facts any) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				w := &lockWalk{pass: pass, pkg: pkg, facts: facts.(*lockorderFacts)}
				w.stmts(fd.Body.List, nil)
			}
		}
	}
}

// heldLock is one entry of the walk's held set.
type heldLock struct {
	obj types.Object
	pos token.Pos
}

// lockWalk is the per-function lexical walk state.
type lockWalk struct {
	pass  *Pass
	pkg   *Package
	facts *lockorderFacts
}

// stmts walks a statement list with the given held set and returns the held
// set at its end.
func (w *lockWalk) stmts(list []ast.Stmt, held []heldLock) []heldLock {
	for _, s := range list {
		held = w.stmt(s, held)
	}
	return held
}

func (w *lockWalk) stmt(s ast.Stmt, held []heldLock) []heldLock {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.stmts(s.List, held)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		held = w.expr(s.Cond, held)
		thenHeld := w.stmts(s.Body.List, cloneHeld(held))
		elseHeld := held
		if s.Else != nil {
			elseHeld = w.stmt(s.Else, cloneHeld(held))
		}
		return intersectHeld(thenHeld, elseHeld)
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			held = w.expr(s.Cond, held)
		}
		if s.Post != nil {
			w.stmt(s.Post, cloneHeld(held))
		}
		w.stmts(s.Body.List, cloneHeld(held))
		return held // the loop may run zero times
	case *ast.RangeStmt:
		held = w.expr(s.X, held)
		if tv, ok := w.pkg.Info.Types[s.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				w.blocking(s.Pos(), "range over channel", held)
			}
		}
		w.stmts(s.Body.List, cloneHeld(held))
		return held
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			held = w.expr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			w.stmts(c.(*ast.CaseClause).Body, cloneHeld(held))
		}
		return held
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			w.stmts(c.(*ast.CaseClause).Body, cloneHeld(held))
		}
		return held
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if c.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.blocking(s.Pos(), "select with no default case", held)
		}
		for _, clause := range s.Body.List {
			c := clause.(*ast.CommClause)
			h := cloneHeld(held)
			if c.Comm != nil {
				h = w.commExprs(c.Comm, h)
			}
			w.stmts(c.Body, h)
		}
		return held
	case *ast.DeferStmt:
		// A deferred unlock runs at return: the lock stays held through the
		// rest of the walk, which is exactly what not popping models. Any
		// other deferred call's facts apply at return time too — out of
		// scope for a lexical held-set walk, so only the arguments (which
		// evaluate now) are examined.
		if obj, kind := w.lockCallTarget(s.Call); obj != nil && kind == lockRelease {
			return held
		}
		for _, arg := range s.Call.Args {
			held = w.expr(arg, held)
		}
		return held
	case *ast.GoStmt:
		// The spawned call runs elsewhere; its arguments evaluate here.
		for _, arg := range s.Call.Args {
			held = w.expr(arg, held)
		}
		return held
	case *ast.SendStmt:
		held = w.expr(s.Chan, held)
		held = w.expr(s.Value, held)
		w.blocking(s.Pos(), "channel send", held)
		return held
	case *ast.ExprStmt:
		return w.expr(s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			held = w.expr(e, held)
		}
		for _, e := range s.Lhs {
			held = w.expr(e, held)
		}
		return held
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			held = w.expr(e, held)
		}
		return held
	case *ast.IncDecStmt:
		return w.expr(s.X, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						held = w.expr(v, held)
					}
				}
			}
		}
		return held
	default:
		return held
	}
}

// commExprs processes a select communication statement's expressions without
// treating the attempt itself as blocking (select chooses a ready case).
func (w *lockWalk) commExprs(s ast.Stmt, held []heldLock) []heldLock {
	switch s := s.(type) {
	case *ast.SendStmt:
		held = w.expr(s.Chan, held)
		return w.expr(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				held = w.expr(u.X, held)
			} else {
				held = w.expr(e, held)
			}
		}
		return held
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			return w.expr(u.X, held)
		}
		return w.expr(s.X, held)
	default:
		return held
	}
}

// expr walks one expression in evaluation order, updating the held set at
// every lock call and checking every other call and channel operation
// against it. Function literals are skipped (they run on their own
// schedule).
func (w *lockWalk) expr(e ast.Expr, held []heldLock) []heldLock {
	if e == nil {
		return held
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return held
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			held = w.expr(e.X, held)
			w.blocking(e.Pos(), "channel receive", held)
			return held
		}
		return w.expr(e.X, held)
	case *ast.BinaryExpr:
		held = w.expr(e.X, held)
		return w.expr(e.Y, held)
	case *ast.CallExpr:
		for _, arg := range e.Args {
			held = w.expr(arg, held)
		}
		return w.call(e, held)
	case *ast.StarExpr:
		return w.expr(e.X, held)
	case *ast.SelectorExpr:
		return w.expr(e.X, held)
	case *ast.IndexExpr:
		held = w.expr(e.X, held)
		return w.expr(e.Index, held)
	case *ast.SliceExpr:
		held = w.expr(e.X, held)
		held = w.expr(e.Low, held)
		held = w.expr(e.High, held)
		return w.expr(e.Max, held)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			held = w.expr(el, held)
		}
		return held
	case *ast.KeyValueExpr:
		return w.expr(e.Value, held)
	case *ast.TypeAssertExpr:
		return w.expr(e.X, held)
	default:
		return held
	}
}

type lockCallKind int

const (
	lockNone lockCallKind = iota
	lockAcquire
	lockRelease
)

// lockCallTarget classifies a call as a named-lock acquire or release.
func (w *lockWalk) lockCallTarget(call *ast.CallExpr) (types.Object, lockCallKind) {
	fn := calleeFunc(w.pkg, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, lockNone
	}
	recv := recvTypeName(fn)
	if recv != "Mutex" && recv != "RWMutex" {
		return nil, lockNone
	}
	switch fn.Name() {
	case "Lock", "RLock":
		obj, _ := lockTarget(w.pkg, call)
		return obj, lockAcquire
	case "Unlock", "RUnlock":
		obj, _ := lockTarget(w.pkg, call)
		return obj, lockRelease
	}
	return nil, lockNone
}

// call applies one call's effects to the held set: push/pop named locks,
// record acquisition edges, and check callee summaries for blocking
// operations and transitive acquisitions.
func (w *lockWalk) call(call *ast.CallExpr, held []heldLock) []heldLock {
	if obj, kind := w.lockCallTarget(call); kind != lockNone {
		if obj == nil {
			return held // function-local mutex: no cross-function identity
		}
		switch kind {
		case lockAcquire:
			pos := w.pass.Fset.Position(call.Pos())
			for _, h := range held {
				w.facts.record(pos, h.obj, obj)
			}
			return append(held, heldLock{obj: obj, pos: call.Pos()})
		case lockRelease:
			for i := len(held) - 1; i >= 0; i-- {
				if held[i].obj == obj {
					return append(held[:i:i], held[i+1:]...)
				}
			}
		}
		return held
	}
	fn := calleeFunc(w.pkg, call)
	if isDirectCtxCheck(w.pkg, call) {
		return held
	}
	// Blocking classification for the call itself (stdlib/net, engine entry
	// points, admission) plus the callee's transitive summary.
	if len(held) > 0 {
		if reason := w.directBlockingCall(fn); reason != "" {
			w.blocking(call.Pos(), reason, held)
		} else if sum := w.pass.Graph.Summary(fn); sum != nil && sum.Blocking != "" {
			w.blocking(call.Pos(), fn.Name()+": "+sum.Blocking, held)
		}
		if sum := w.pass.Graph.Summary(fn); sum != nil {
			pos := w.pass.Fset.Position(call.Pos())
			for _, h := range held {
				for acquired := range sum.Acquires {
					if acquired != h.obj {
						w.facts.record(pos, h.obj, acquired)
					}
				}
			}
		}
	}
	return held
}

// directBlockingCall classifies callees outside the analyzed packages whose
// blocking behavior is known by name (the same table the summary engine
// uses).
func (w *lockWalk) directBlockingCall(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	switch {
	case fn.Pkg().Path() == "sync" && recvTypeName(fn) == "WaitGroup" && fn.Name() == "Wait":
		return "sync.WaitGroup.Wait"
	case blockingNetPkgs[fn.Pkg().Path()]:
		return fn.Pkg().Path() + " call"
	case fn.Pkg().Path() == "csdb/internal/serve" && recvTypeName(fn) == "Admission" && fn.Name() == "Acquire":
		return "admission semaphore acquire"
	case enginePkgs[fn.Pkg().Path()] && (strings.HasPrefix(fn.Name(), "Solve") || fn.Name() == "Portfolio"):
		return "engine entry point " + fn.Pkg().Name() + "." + fn.Name()
	}
	return ""
}

// blocking reports a blocking operation performed while any lock is held.
func (w *lockWalk) blocking(pos token.Pos, reason string, held []heldLock) {
	if len(held) == 0 {
		return
	}
	h := held[len(held)-1]
	w.pass.Reportf(pos, "blocking operation (%s) while holding %s; release the lock first",
		reason, w.pass.Graph.LockName(h.obj))
}

func cloneHeld(held []heldLock) []heldLock {
	return append([]heldLock(nil), held...)
}

// intersectHeld keeps the locks held on both paths, in a's order.
func intersectHeld(a, b []heldLock) []heldLock {
	inB := make(map[types.Object]bool, len(b))
	for _, h := range b {
		inB[h.obj] = true
	}
	var out []heldLock
	for _, h := range a {
		if inB[h.obj] {
			out = append(out, h)
		}
	}
	return out
}

// finishLockorder detects cycles in the global acquisition-order graph:
// every SCC with more than one lock, and every self-loop, is deadlock
// capable. One diagnostic per cycle, at its lexically smallest acquisition
// site, naming the locks in a stable order.
func finishLockorder(pass *Pass, facts any) {
	f := facts.(*lockorderFacts)
	adj := make(map[types.Object]map[types.Object]bool)
	nodes := make(map[types.Object]bool)
	for e := range f.edges {
		nodes[e.from], nodes[e.to] = true, true
		if adj[e.from] == nil {
			adj[e.from] = make(map[types.Object]bool)
		}
		adj[e.from][e.to] = true
	}
	for _, scc := range lockSCCs(nodes, adj) {
		inSCC := make(map[types.Object]bool, len(scc))
		for _, o := range scc {
			inSCC[o] = true
		}
		if len(scc) == 1 && !adj[scc[0]][scc[0]] {
			continue
		}
		// Collect the cycle's witnessing positions and lock names.
		var positions []token.Position
		for e, ps := range f.edges {
			if inSCC[e.from] && inSCC[e.to] {
				positions = append(positions, ps...)
			}
		}
		sort.Slice(positions, func(i, j int) bool { return posLess(positions[i], positions[j]) })
		names := make([]string, 0, len(scc))
		for _, o := range scc {
			names = append(names, pass.Graph.LockName(o))
		}
		sort.Strings(names)
		pass.reportAt(positions[0], "lock-order cycle between %s: acquired in inconsistent order at %d sites; pick one global order",
			strings.Join(names, ", "), len(positions))
	}
}

// lockSCCs is Tarjan over the lock graph, deterministic via sorted
// neighbor/start order (by lock name; objects have stable names per load).
func lockSCCs(nodes map[types.Object]bool, adj map[types.Object]map[types.Object]bool) [][]types.Object {
	ordered := make([]types.Object, 0, len(nodes))
	for o := range nodes {
		ordered = append(ordered, o)
	}
	sort.Slice(ordered, func(i, j int) bool { return objSortKey(ordered[i]) < objSortKey(ordered[j]) })
	index := make(map[types.Object]int, len(nodes))
	lowlink := make(map[types.Object]int, len(nodes))
	onStack := make(map[types.Object]bool, len(nodes))
	var stack []types.Object
	var sccs [][]types.Object
	next := 0
	var strongconnect func(v types.Object)
	strongconnect = func(v types.Object) {
		index[v], lowlink[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		succs := make([]types.Object, 0, len(adj[v]))
		for s := range adj[v] {
			succs = append(succs, s)
		}
		sort.Slice(succs, func(i, j int) bool { return objSortKey(succs[i]) < objSortKey(succs[j]) })
		for _, s := range succs {
			if _, seen := index[s]; !seen {
				strongconnect(s)
				if lowlink[s] < lowlink[v] {
					lowlink[v] = lowlink[s]
				}
			} else if onStack[s] && index[s] < lowlink[v] {
				lowlink[v] = index[s]
			}
		}
		if lowlink[v] == index[v] {
			var scc []types.Object
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m] = false
				scc = append(scc, m)
				if m == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, o := range ordered {
		if _, seen := index[o]; !seen {
			strongconnect(o)
		}
	}
	return sccs
}

// objSortKey gives lock objects a deterministic order independent of load
// concurrency: package path, then position-free name.
func objSortKey(o types.Object) string {
	pkg := ""
	if o.Pkg() != nil {
		pkg = o.Pkg().Path()
	}
	return pkg + "\x00" + o.Name()
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// reportAt records a diagnostic at an already-resolved position (Finish
// works with stored token.Positions, not live token.Pos values).
func (p *Pass) reportAt(pos token.Position, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.an.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}
