package analysis

import (
	"go/ast"
	"go/types"
)

// arenaretain: row slices handed out by the relational kernel's arena
// accessors must not be stored anywhere that outlives the call.
//
// The integer-coded kernel stores all rows of a relation in one flat value
// array; Relation.Tuples and Relation.SortedTuples (and csp.Table.Tuples,
// which shares the discipline) hand out views into that storage. A view
// retained across a kernel mutation aliases memory the kernel may grow or
// rewrite — the classic stale-arena-pointer hazard. Reading a view inside
// the call that obtained it is fine; storing it into a struct field, a
// package-level variable, or a channel is not (use Rows, Clone, or an
// explicit copy instead).
//
// The analysis is an intra-procedural, flow-insensitive taint pass: accessor
// call results are tainted; taint propagates through assignment to locals,
// indexing, slicing, append, composite literals and range-over; a diagnostic
// fires when a tainted value is assigned into a field selector or a
// package-level variable, or sent on a channel. Calls other than append
// launder taint (callees are assumed to copy — the kernel's own Add/MustAdd
// do). The kernel's defining packages are exempt for their own accessors:
// the cache inside Relation.Tuples is the implementation, not a client.
var arenaretainAnalyzer = &Analyzer{
	Name:         "arenaretain",
	Doc:          "arena row views (Relation.Tuples & co.) must not be stored in state that outlives the call",
	CheckPackage: runArenaretain,
}

// arenaAccessors maps defining package path -> receiver type -> method names
// whose results are views into kernel-owned storage.
var arenaAccessors = map[string]map[string]map[string]bool{
	"csdb/internal/relation": {
		"Relation": {"Tuples": true, "SortedTuples": true},
	},
	"csdb/internal/csp": {
		"Table": {"Tuples": true},
	},
}

func runArenaretain(pass *Pass, pkg *Package, _ any) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkArenaFunc(pass, pkg, fd.Body)
			}
		}
	}
}

// arenaTaint is the per-function taint state.
type arenaTaint struct {
	pkg     *Package
	tainted map[types.Object]bool
}

func checkArenaFunc(pass *Pass, pkg *Package, body *ast.BlockStmt) {
	t := &arenaTaint{pkg: pkg, tainted: make(map[types.Object]bool)}

	// Fixpoint over assignments and declarations: propagate accessor taint
	// into local variables (flow-insensitive, so ordering quirks and loops
	// need no special handling).
	for changed := true; changed; {
		changed = false
		inspectSkippingFuncLits(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					rhs := assignedExpr(n.Lhs, n.Rhs, i)
					if rhs != nil && t.exprTainted(rhs) {
						if t.markIdent(lhs) {
							changed = true
						}
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					rhs := assignedExpr(nil, n.Values, i)
					if rhs != nil && t.exprTainted(rhs) {
						if t.markIdent(name) {
							changed = true
						}
					}
				}
			case *ast.RangeStmt:
				if t.exprTainted(n.X) && n.Value != nil {
					if t.markIdent(n.Value) {
						changed = true
					}
				}
			}
			return true
		})
	}

	// Report escaping stores of tainted values.
	inspectSkippingFuncLits(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				rhs := assignedExpr(n.Lhs, n.Rhs, i)
				if rhs == nil || !t.exprTainted(rhs) {
					continue
				}
				if kind := t.escapingLHS(lhs); kind != "" {
					pass.Reportf(n.Pos(), "arena row view stored in %s; it aliases kernel storage that later mutations may rewrite (copy it, or use Rows)", kind)
				}
			}
		case *ast.SendStmt:
			if t.exprTainted(n.Value) {
				pass.Reportf(n.Pos(), "arena row view sent on a channel; it aliases kernel storage that later mutations may rewrite (copy it, or use Rows)")
			}
		}
		return true
	})
}

// assignedExpr pairs LHS index i with its RHS expression, handling both
// one-to-one and tuple (single-RHS) assignment forms.
func assignedExpr(lhs, rhs []ast.Expr, i int) ast.Expr {
	if len(rhs) == 0 {
		return nil
	}
	if lhs == nil || len(lhs) == len(rhs) {
		if i < len(rhs) {
			return rhs[i]
		}
		return nil
	}
	// x, y := f(): taint flows from the single call to every LHS.
	return rhs[0]
}

// markIdent taints the object behind an identifier LHS; returns whether the
// state changed.
func (t *arenaTaint) markIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := t.pkg.Info.Defs[id]
	if obj == nil {
		obj = t.pkg.Info.Uses[id]
	}
	if obj == nil || t.tainted[obj] {
		return false
	}
	t.tainted[obj] = true
	return true
}

// exprTainted reports whether the expression may be (or contain) an arena
// view.
func (t *arenaTaint) exprTainted(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := t.pkg.Info.Uses[e]
		return obj != nil && t.tainted[obj]
	case *ast.IndexExpr:
		return t.exprTainted(e.X)
	case *ast.SliceExpr:
		return t.exprTainted(e.X)
	case *ast.StarExpr:
		return t.exprTainted(e.X)
	case *ast.UnaryExpr:
		return t.exprTainted(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if t.exprTainted(el) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		if t.isArenaAccessorCall(e) {
			return true
		}
		// append propagates taint; a conversion wraps the same backing
		// array; other calls are assumed to copy.
		switch fun := ast.Unparen(e.Fun).(type) {
		case *ast.Ident:
			if obj, ok := t.pkg.Info.Uses[fun].(*types.Builtin); ok && obj.Name() == "append" {
				for _, arg := range e.Args {
					if t.exprTainted(arg) {
						return true
					}
				}
				return false
			}
		}
		if len(e.Args) == 1 {
			if tv, ok := t.pkg.Info.Types[e.Fun]; ok && tv.IsType() {
				return t.exprTainted(e.Args[0]) // type conversion
			}
		}
		return false
	}
	return false
}

// isArenaAccessorCall matches calls to the registered arena accessors,
// unless the enclosing package defines the accessor (the kernel may manage
// its own views).
func (t *arenaTaint) isArenaAccessorCall(call *ast.CallExpr) bool {
	fn := calleeFunc(t.pkg, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	byType, ok := arenaAccessors[fn.Pkg().Path()]
	if !ok || t.pkg.Path == fn.Pkg().Path() {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := namedRecv(sig.Recv().Type())
	if named == nil {
		return false
	}
	methods, ok := byType[named.Obj().Name()]
	return ok && methods[fn.Name()]
}

// escapingLHS classifies an assignment target that outlives the call:
// a struct field, a package-level variable, or an element of either.
func (t *arenaTaint) escapingLHS(lhs ast.Expr) string {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if sel, ok := t.pkg.Info.Selections[lhs]; ok && sel.Kind() == types.FieldVal {
			return "struct field " + sel.Obj().Name()
		}
		if obj, ok := t.pkg.Info.Uses[lhs.Sel].(*types.Var); ok && isPackageLevel(obj) {
			return "package variable " + obj.Name()
		}
	case *ast.Ident:
		if obj, ok := t.pkg.Info.Uses[lhs].(*types.Var); ok && isPackageLevel(obj) {
			return "package variable " + obj.Name()
		}
	case *ast.IndexExpr:
		return t.escapingLHS(lhs.X)
	case *ast.StarExpr:
		return t.escapingLHS(lhs.X)
	}
	return ""
}

// isPackageLevel reports whether the variable is declared at package scope.
func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}
