package analysis

import (
	"go/types"
	"strings"
	"testing"
)

// cgFixture returns the callgraph fixture package and its graph (built over
// all fixture targets, as Run does).
func cgFixture(t *testing.T) (*Package, *CallGraph) {
	t.Helper()
	loaded := loadTestdata(t)
	for _, pkg := range loaded.Targets {
		if strings.HasSuffix(pkg.Path, "testdata/src/callgraph") {
			return pkg, BuildCallGraph(loaded.Targets)
		}
	}
	t.Fatal("callgraph fixture package not loaded")
	return nil, nil
}

// lookupFn resolves a package-level function or method by "name" or
// "Type.name".
func lookupFn(t *testing.T, pkg *Package, name string) *types.Func {
	t.Helper()
	scope := pkg.Types.Scope()
	if recv, method, ok := strings.Cut(name, "."); ok {
		obj := scope.Lookup(recv)
		if obj == nil {
			t.Fatalf("type %s not found in %s", recv, pkg.Path)
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			t.Fatalf("%s is not a named type", recv)
		}
		for i := 0; i < named.NumMethods(); i++ {
			if named.Method(i).Name() == method {
				return named.Method(i)
			}
		}
		t.Fatalf("method %s not found on %s", method, recv)
	}
	fn, ok := scope.Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("function %s not found in %s", name, pkg.Path)
	}
	return fn
}

// TestCallGraphSCC pins the condensation on the mutually recursive fixtures:
// even/odd share a component, the chain does not, and components come out in
// bottom-up (callee-first) order.
func TestCallGraphSCC(t *testing.T) {
	pkg, g := cgFixture(t)
	even, odd := lookupFn(t, pkg, "even"), lookupFn(t, pkg, "odd")
	scc := g.SCCOf(even)
	if len(scc) != 2 {
		t.Fatalf("SCC of even has %d members, want 2 (even+odd): %v", len(scc), scc)
	}
	found := map[*types.Func]bool{scc[0]: true, scc[1]: true}
	if !found[even] || !found[odd] {
		t.Errorf("SCC of even = %v, want {even, odd}", scc)
	}

	chainA, chainC := lookupFn(t, pkg, "chainA"), lookupFn(t, pkg, "chainC")
	if scc := g.SCCOf(chainA); len(scc) != 1 {
		t.Errorf("SCC of chainA has %d members, want 1 (no recursion)", len(scc))
	}
	// Bottom-up emission: chainC's (callee) component precedes chainA's.
	posOf := func(fn *types.Func) int {
		for i, scc := range g.SCCs {
			for _, m := range scc {
				if m == fn {
					return i
				}
			}
		}
		t.Fatalf("%v not in any SCC", fn)
		return -1
	}
	if posOf(chainC) >= posOf(chainA) {
		t.Errorf("SCC order: chainC at %d not before chainA at %d (want callee-first)", posOf(chainC), posOf(chainA))
	}
}

// TestCallGraphFixpoint pins the summary propagation: facts reach every
// member of a recursive component and every transitive caller, and stop
// where they should.
func TestCallGraphFixpoint(t *testing.T) {
	pkg, g := cgFixture(t)

	// PollsCtx converges over the even/odd cycle although only odd polls.
	for _, name := range []string{"even", "odd"} {
		if !g.PollsCtx(lookupFn(t, pkg, name)) {
			t.Errorf("%s: PollsCtx = false, want true (fixpoint over the mutual recursion)", name)
		}
	}

	// Blocking propagates up the chain with the via-annotation.
	for name, want := range map[string]string{
		"chainC": "channel receive",
		"chainB": "chainC: channel receive",
		"chainA": "chainB: chainC: channel receive",
	} {
		sum := g.Summary(lookupFn(t, pkg, name))
		if sum == nil || sum.Blocking != want {
			t.Errorf("%s: Blocking = %v, want %q", name, sum, want)
		}
	}

	// Lock acquisition reaches the lock-free half of the recursion.
	ping := lookupFn(t, pkg, "counter.pingLock")
	pong := lookupFn(t, pkg, "counter.pongLock")
	for _, fn := range []*types.Func{ping, pong} {
		sum := g.Summary(fn)
		if sum == nil || len(sum.Acquires) != 1 {
			t.Fatalf("%s: Acquires = %v, want exactly the counter.mu lock", fn.Name(), sum)
		}
		for obj := range sum.Acquires {
			if got := g.LockName(obj); got != "callgraphtest.counter.mu" {
				t.Errorf("%s: lock name %q, want callgraphtest.counter.mu", fn.Name(), got)
			}
		}
	}

	// leaf stays clean: no facts leak sideways.
	sum := g.Summary(lookupFn(t, pkg, "leaf"))
	if sum == nil || sum.PollsCtx || sum.Blocking != "" || len(sum.Acquires) != 0 {
		t.Errorf("leaf: summary %+v, want empty", sum)
	}

	// Functions outside the targets have no summary.
	if g.Summary(nil) != nil {
		t.Error("Summary(nil) != nil")
	}
}
