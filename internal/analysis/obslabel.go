package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// obslabel: label values passed to obs *Vec metrics must come from fixed,
// enumerable sets.
//
// Labeled metrics (obs.CounterVec / obs.HistogramVec, PR-8) cap their series
// count and collapse overflow into an "_overflow" series, but a cap is a
// backstop, not a license: a label fed from request data or formatted
// strings silently degrades the whole vector once the cap is hit. This
// analyzer enforces the discipline statically — every label-value argument
// of a Vec recording call must be provably drawn from a finite set:
//
//   - a string literal or any constant expression;
//   - a call to a pure-literal function: one whose every return statement
//     yields only allowed expressions (the Class.label / laneLabel /
//     statusLabel pattern — a switch with a literal per case and a literal
//     default);
//   - a local variable whose every assignment is an allowed expression
//     (the `outcome := "loss"; if won { outcome = "win" }` pattern).
//
// Parameters, package-level variables, data-derived expressions and
// formatting calls are rejected: their value sets belong to the caller or
// the input, not the instrumentation site. Note the pure-literal rule is
// syntactic on purpose: a helper that echoes its (switch-matched) argument
// is rejected even though its value set is closed — each case must return
// its own literal, so the label set is readable off the helper.
var obslabelAnalyzer = &Analyzer{
	Name:         "obslabel",
	Doc:          "label values passed to obs *Vec metrics must come from fixed enumerable sets (literals, consts, pure-literal helpers)",
	Prepare:      prepareObslabel,
	CheckPackage: runObslabel,
}

// obsVecLabelArgs maps Vec receiver type → recording method → index of the
// first label-value argument.
var obsVecLabelArgs = map[string]map[string]int{
	"CounterVec":   {"Add": 1, "Inc": 0},
	"HistogramVec": {"Observe": 1},
}

// obslabelIndex is the cross-package function-declaration index used to
// resolve pure-literal helpers.
type obslabelIndex struct {
	decls map[*types.Func]obslabelDecl
}

type obslabelDecl struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// prepareObslabel builds the cross-package declaration index once; package
// checks only read it.
func prepareObslabel(pass *Pass) any {
	idx := &obslabelIndex{decls: make(map[*types.Func]obslabelDecl)}
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					idx.decls[fn] = obslabelDecl{pkg: pkg, decl: fd}
				}
			}
		}
	}
	return idx
}

func runObslabel(pass *Pass, pkg *Package, facts any) {
	idx := facts.(*obslabelIndex)
	if pkg.Path == obsPkgPath {
		return // the layer itself is not an instrumentation site
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkObslabelFunc(pass, idx, pkg, fd)
			}
		}
	}
}

// checkObslabelFunc flags every non-enumerable label argument of a Vec
// recording call in one function declaration.
func checkObslabelFunc(pass *Pass, idx *obslabelIndex, pkg *Package, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, start := obsVecRecordingCall(pkg, call)
		if name == "" {
			return true
		}
		for i := start; i < len(call.Args); i++ {
			if !idx.allowedLabelExpr(pkg, fd, call.Args[i], make(map[any]bool)) {
				pass.Reportf(call.Args[i].Pos(),
					"non-enumerable label value passed to %s; use a string literal, const, or pure-literal helper", name)
			}
		}
		return true
	})
}

// obsVecRecordingCall returns the printable callee name and the index of the
// first label argument when call records into a labeled Vec, or ("", 0).
func obsVecRecordingCall(pkg *Package, call *ast.CallExpr) (string, int) {
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != obsPkgPath {
		return "", 0
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", 0
	}
	named := namedRecv(sig.Recv().Type())
	if named == nil {
		return "", 0
	}
	methods, ok := obsVecLabelArgs[named.Obj().Name()]
	if !ok {
		return "", 0
	}
	start, ok := methods[fn.Name()]
	if !ok {
		return "", 0
	}
	return "obs." + named.Obj().Name() + "." + fn.Name(), start
}

// allowedLabelExpr reports whether e provably evaluates to a member of a
// fixed finite string set. root is the enclosing function declaration (the
// scope searched for local-variable assignments); visited (*types.Func and
// *types.Var keys) breaks recursion through mutually-recursive helpers and
// variable assignments.
func (idx *obslabelIndex) allowedLabelExpr(pkg *Package, root *ast.FuncDecl, e ast.Expr, visited map[any]bool) bool {
	e = ast.Unparen(e)
	// Any constant expression — literals, named consts, folded concats.
	if tv, ok := pkg.Info.Types[e]; ok && tv.Value != nil {
		return true
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		fn := calleeFunc(pkg, e)
		return fn != nil && idx.pureLiteralFunc(fn, visited)
	case *ast.Ident:
		v, ok := pkg.Info.Uses[e].(*types.Var)
		if !ok {
			return false
		}
		return idx.localLiteralVar(pkg, root, v, visited)
	}
	return false
}

// localLiteralVar reports whether v is a local variable of root whose every
// assignment is an allowed expression. Parameters and range variables have
// no visible assignment, so they fail the "at least one" requirement; taking
// the variable's address or compound-assigning to it disqualifies it.
func (idx *obslabelIndex) localLiteralVar(pkg *Package, root *ast.FuncDecl, v *types.Var, visited map[any]bool) bool {
	if visited[v] {
		return true // assignment cycle: every other write has been checked
	}
	visited[v] = true
	assigned, ok := false, true
	ast.Inspect(root, func(n ast.Node) bool {
		if !ok {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, isIdent := lhs.(*ast.Ident)
				if !isIdent {
					continue
				}
				obj := pkg.Info.Defs[id]
				if obj == nil {
					obj = pkg.Info.Uses[id]
				}
				if obj != v {
					continue
				}
				if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
					ok = false // compound assignment builds a new value
					return false
				}
				if len(n.Rhs) != len(n.Lhs) {
					ok = false // multi-value assignment from a call
					return false
				}
				assigned = true
				if !idx.allowedLabelExpr(pkg, root, n.Rhs[i], visited) {
					ok = false
					return false
				}
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				if pkg.Info.Defs[id] != v {
					continue
				}
				if len(n.Values) != len(n.Names) {
					ok = false // declared without a checkable initializer
					return false
				}
				assigned = true
				if !idx.allowedLabelExpr(pkg, root, n.Values[i], visited) {
					ok = false
					return false
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, isIdent := ast.Unparen(n.X).(*ast.Ident); isIdent && pkg.Info.Uses[id] == v {
					ok = false // address taken: mutations are untrackable
					return false
				}
			}
		}
		return true
	})
	return ok && assigned
}

// pureLiteralFunc reports whether fn's declaration is visible in the target
// set and every return statement yields only allowed expressions. Named
// results (naked returns) are rejected — the result flows through a
// variable the return does not show.
func (idx *obslabelIndex) pureLiteralFunc(fn *types.Func, visited map[any]bool) bool {
	if visited[fn] {
		return true // cycle: every other return has been / will be checked
	}
	visited[fn] = true
	d, ok := idx.decls[fn]
	if !ok || d.decl.Body == nil {
		return false
	}
	if res := d.decl.Type.Results; res == nil || len(res.List) != 1 || len(res.List[0].Names) != 0 {
		return false
	}
	pure := true
	inspectSkippingFuncLits(d.decl.Body, func(n ast.Node) bool {
		ret, isRet := n.(*ast.ReturnStmt)
		if !isRet || !pure {
			return pure
		}
		if len(ret.Results) != 1 || !idx.allowedLabelExpr(d.pkg, d.decl, ret.Results[0], visited) {
			pure = false
		}
		return pure
	})
	return pure
}
