// Package analysis is csplint's engine: a stdlib-only analyzer driver that
// loads the module via `go list -json`, type-checks every package from
// source, and runs repo-specific analyzers that machine-check the invariants
// the engine's concurrency, kernel and observability layers rely on.
//
// The suite (see the README "Static analysis" section for the catalog):
//
//   - ctxloop: unbounded loops in context-taking functions must poll
//     cancellation on every iteration path;
//   - obsboundary: obs counters/gauges/histograms must be recorded at call
//     boundaries, never inside loops;
//   - obslabel: label values passed to obs *Vec metrics must come from fixed
//     enumerable sets (literals, consts, pure-literal helpers);
//   - arenaretain: row slices handed out by the relational kernel's arena
//     accessors must not be stored anywhere that outlives the call;
//   - atomicmix: a struct field accessed through sync/atomic must never be
//     read or written plainly;
//   - goleak: every go statement needs a provable termination path — the
//     spawned function polls a cancellation signal or is joined by the
//     spawner (WaitGroup.Wait, result-channel receive, closed jobs channel);
//   - lockorder: named mutexes must be acquired in one global order (cycles
//     are reported), and blocking operations must not run under a lock;
//   - sembalance: every semaphore-token acquire (buffered chan struct{}
//     send) must be released on all paths, by receive, defer, or handoff.
//
// The interprocedural analyzers share one call-graph + summary engine (see
// callgraph.go): per-function facts computed bottom-up over the SCC
// condensation, built once per load and cached on the Pass.
//
// Diagnostics can be suppressed with a directive on the flagged line or the
// line directly above it:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The analyzer list may be * to match every analyzer, and may spread over
// several comma-separated fields (`//lint:ignore goleak, lockorder reason`);
// the reason is mandatory, and a directive without one is itself reported
// (as analyzer "lint"). Findings of the pseudo-analyzer "lint" are driver
// errors and can never be suppressed, so every suppression in the tree
// carries its justification.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Finding is a diagnostic plus its suppression state: RunDetailed reports
// suppressed findings too (marked), so tooling (csplint -json) can surface
// them without re-running the suite.
type Finding struct {
	Diagnostic
	Suppressed bool
}

// Analyzer is one named check, split into phases so the driver can analyze
// packages on a worker pool:
//
//   - Prepare (optional) runs once per load before any package check and may
//     build cross-package facts; its result is handed back to CheckPackage
//     and Finish.
//   - CheckPackage checks one target package. Calls for distinct packages
//     may run concurrently, each on its own Pass; shared facts must be
//     read-only or internally synchronized.
//   - Finish (optional) runs once after every CheckPackage call returned,
//     for global reporting (lockorder's cycle detection).
type Analyzer struct {
	Name string
	Doc  string

	Prepare      func(pass *Pass) any
	CheckPackage func(pass *Pass, pkg *Package, facts any)
	Finish       func(pass *Pass, facts any)
}

// Pass is the per-analyzer view of a load: the target packages, the shared
// FileSet, the call-graph engine, and the report sink.
type Pass struct {
	Fset *token.FileSet
	Pkgs []*Package
	// Graph is the shared call-graph + summary engine, built once per Run
	// over the target packages.
	Graph *CallGraph

	an    *Analyzer
	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.an.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		ctxloopAnalyzer, obsboundaryAnalyzer, obslabelAnalyzer,
		arenaretainAnalyzer, atomicmixAnalyzer,
		goleakAnalyzer, lockorderAnalyzer, sembalanceAnalyzer,
	}
}

// ByName resolves a comma-separated analyzer list against the suite.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run executes the analyzers over the loaded targets, applies //lint:ignore
// suppressions, and returns the surviving diagnostics sorted by position.
// Malformed directives are reported under the pseudo-analyzer "lint" and are
// not suppressible.
func Run(loaded *Loaded, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, f := range RunDetailed(loaded, analyzers) {
		if !f.Suppressed {
			out = append(out, f.Diagnostic)
		}
	}
	return out
}

// RunDetailed is Run keeping the suppressed findings: every diagnostic the
// analyzers produced, sorted by position, with matched //lint:ignore
// directives marking (rather than dropping) their findings. Malformed
// directives appear as unsuppressible "lint" findings.
func RunDetailed(loaded *Loaded, analyzers []*Analyzer) []Finding {
	graph := BuildCallGraph(loaded.Targets)

	// Phase 1: per-analyzer cross-package fact building.
	type prepared struct {
		a     *Analyzer
		facts any
		diags []Diagnostic
	}
	preps := make([]*prepared, len(analyzers))
	for i, a := range analyzers {
		p := &prepared{a: a}
		if a.Prepare != nil {
			p.facts = a.Prepare(&Pass{Fset: loaded.Fset, Pkgs: loaded.Targets, Graph: graph, an: a, diags: &p.diags})
		}
		preps[i] = p
	}

	// Phase 2: (analyzer, package) units on a bounded worker pool. Each unit
	// reports into its own slice; the final sort makes the merge order
	// irrelevant.
	type unit struct {
		p     *prepared
		pkg   *Package
		diags []Diagnostic
	}
	var units []*unit
	for _, p := range preps {
		for _, pkg := range loaded.Targets {
			units = append(units, &unit{p: p, pkg: pkg})
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(units) {
		workers = len(units)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan *unit)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range next {
				u.p.a.CheckPackage(&Pass{Fset: loaded.Fset, Pkgs: loaded.Targets, Graph: graph, an: u.p.a, diags: &u.diags}, u.pkg, u.p.facts)
			}
		}()
	}
	for _, u := range units {
		next <- u
	}
	close(next)
	wg.Wait()

	// Phase 3: global reporting.
	var diags []Diagnostic
	for _, p := range preps {
		if p.a.Finish != nil {
			p.a.Finish(&Pass{Fset: loaded.Fset, Pkgs: loaded.Targets, Graph: graph, an: p.a, diags: &p.diags}, p.facts)
		}
		diags = append(diags, p.diags...)
	}
	for _, u := range units {
		diags = append(diags, u.diags...)
	}

	dirs, malformed := collectDirectives(loaded)
	findings := make([]Finding, 0, len(diags)+len(malformed))
	for _, d := range diags {
		findings = append(findings, Finding{Diagnostic: d, Suppressed: suppressed(d, dirs)})
	}
	for _, d := range malformed {
		findings = append(findings, Finding{Diagnostic: d})
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		// Full tie-break: sort.Slice is unstable, and two diagnostics can
		// share a position (a call that trips two rules).
		return a.Message < b.Message
	})
	return findings
}

// directive is one parsed //lint:ignore comment.
type directive struct {
	analyzers []string // names, or ["*"]
}

// ignorePrefix introduces a suppression comment.
const ignorePrefix = "//lint:ignore"

// collectDirectives scans every target file's comments for //lint:ignore
// directives, keyed by file and line. A directive suppresses matching
// diagnostics on its own line and on the line directly below it (so it can
// ride at the end of the flagged line or on its own line above).
func collectDirectives(loaded *Loaded) (map[string]map[int][]directive, []Diagnostic) {
	dirs := make(map[string]map[int][]directive)
	var malformed []Diagnostic
	for _, pkg := range loaded.Targets {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignorePrefix) {
						continue
					}
					pos := loaded.Fset.Position(c.Pos())
					rest := strings.TrimPrefix(c.Text, ignorePrefix)
					names, reason := splitDirective(rest)
					if len(names) == 0 || reason == "" {
						malformed = append(malformed, Diagnostic{
							Pos:      pos,
							Analyzer: "lint",
							Message:  "malformed //lint:ignore directive: want \"//lint:ignore <analyzer>[,...] <reason>\"",
						})
						continue
					}
					if dirs[pos.Filename] == nil {
						dirs[pos.Filename] = make(map[int][]directive)
					}
					dirs[pos.Filename][pos.Line] = append(dirs[pos.Filename][pos.Line], directive{analyzers: names})
				}
			}
		}
	}
	return dirs, malformed
}

// splitDirective parses the text after //lint:ignore into the analyzer list
// and the reason. The list is comma-separated and may contain spaces after
// the commas ("goleak,lockorder" and "goleak, lockorder" both name two
// analyzers); everything after it is the reason.
func splitDirective(rest string) (names []string, reason string) {
	fields := strings.Fields(rest)
	i := 0
	for i < len(fields) {
		f := fields[i]
		i++
		for _, name := range strings.Split(f, ",") {
			if name != "" {
				names = append(names, name)
			}
		}
		if strings.HasSuffix(f, ",") {
			continue // trailing comma: the list goes on
		}
		if i < len(fields) && strings.HasPrefix(fields[i], ",") {
			continue // the comma leads the next field ("goleak , lockorder")
		}
		break // the list is complete
	}
	return names, strings.Join(fields[i:], " ")
}

// suppressed reports whether a directive on the diagnostic's line, or on the
// line above it, names the diagnostic's analyzer. "lint" findings (driver
// errors) are never suppressible.
func suppressed(d Diagnostic, dirs map[string]map[int][]directive) bool {
	if d.Analyzer == "lint" {
		return false
	}
	byLine := dirs[d.Pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, dir := range byLine[line] {
			for _, name := range dir.analyzers {
				if name == "*" || name == d.Analyzer {
					return true
				}
			}
		}
	}
	return false
}

// inspectSkippingFuncLits walks n, calling fn on every node but not
// descending into function literals (their bodies execute on their own
// schedule, so lexical facts about the enclosing function do not transfer).
func inspectSkippingFuncLits(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}
