// Package analysis is csplint's engine: a stdlib-only analyzer driver that
// loads the module via `go list -json`, type-checks every package from
// source, and runs repo-specific analyzers that machine-check the invariants
// the engine's concurrency, kernel and observability layers rely on.
//
// The suite (see the README "Static analysis" section for the catalog):
//
//   - ctxloop: unbounded loops in context-taking functions must poll
//     cancellation on every iteration path;
//   - obsboundary: obs counters/gauges/histograms must be recorded at call
//     boundaries, never inside loops;
//   - obslabel: label values passed to obs *Vec metrics must come from fixed
//     enumerable sets (literals, consts, pure-literal helpers);
//   - arenaretain: row slices handed out by the relational kernel's arena
//     accessors must not be stored anywhere that outlives the call;
//   - atomicmix: a struct field accessed through sync/atomic must never be
//     read or written plainly.
//
// Diagnostics can be suppressed with a directive on the flagged line or the
// line directly above it:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The analyzer list may be * to match every analyzer; the reason is
// mandatory, and a directive without one is itself reported (as analyzer
// "lint"), so every suppression in the tree carries its justification.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check. Run receives the whole set of target packages
// at once so checks can build cross-package facts (atomicmix and ctxloop do).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass is the per-analyzer view of a load: the target packages, the shared
// FileSet, and the report sink.
type Pass struct {
	Fset  *token.FileSet
	Pkgs  []*Package
	an    *Analyzer
	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.an.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{ctxloopAnalyzer, obsboundaryAnalyzer, obslabelAnalyzer, arenaretainAnalyzer, atomicmixAnalyzer}
}

// ByName resolves a comma-separated analyzer list against the suite.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run executes the analyzers over the loaded targets, applies //lint:ignore
// suppressions, and returns the surviving diagnostics sorted by position.
// Malformed directives are reported under the pseudo-analyzer "lint" and are
// not suppressible.
func Run(loaded *Loaded, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		a.Run(&Pass{Fset: loaded.Fset, Pkgs: loaded.Targets, an: a, diags: &diags})
	}
	dirs, malformed := collectDirectives(loaded)
	kept := diags[:0]
	for _, d := range diags {
		if !suppressed(d, dirs) {
			kept = append(kept, d)
		}
	}
	kept = append(kept, malformed...)
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		// Full tie-break: sort.Slice is unstable, and two diagnostics can
		// share a position (a call that trips two rules).
		return a.Message < b.Message
	})
	return kept
}

// directive is one parsed //lint:ignore comment.
type directive struct {
	analyzers []string // names, or ["*"]
}

// ignorePrefix introduces a suppression comment.
const ignorePrefix = "//lint:ignore"

// collectDirectives scans every target file's comments for //lint:ignore
// directives, keyed by file and line. A directive suppresses matching
// diagnostics on its own line and on the line directly below it (so it can
// ride at the end of the flagged line or on its own line above).
func collectDirectives(loaded *Loaded) (map[string]map[int][]directive, []Diagnostic) {
	dirs := make(map[string]map[int][]directive)
	var malformed []Diagnostic
	for _, pkg := range loaded.Targets {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignorePrefix) {
						continue
					}
					pos := loaded.Fset.Position(c.Pos())
					rest := strings.TrimPrefix(c.Text, ignorePrefix)
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						malformed = append(malformed, Diagnostic{
							Pos:      pos,
							Analyzer: "lint",
							Message:  "malformed //lint:ignore directive: want \"//lint:ignore <analyzer>[,...] <reason>\"",
						})
						continue
					}
					if dirs[pos.Filename] == nil {
						dirs[pos.Filename] = make(map[int][]directive)
					}
					d := directive{analyzers: strings.Split(fields[0], ",")}
					dirs[pos.Filename][pos.Line] = append(dirs[pos.Filename][pos.Line], d)
				}
			}
		}
	}
	return dirs, malformed
}

// suppressed reports whether a directive on the diagnostic's line, or on the
// line above it, names the diagnostic's analyzer.
func suppressed(d Diagnostic, dirs map[string]map[int][]directive) bool {
	byLine := dirs[d.Pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, dir := range byLine[line] {
			for _, name := range dir.analyzers {
				if name == "*" || name == d.Analyzer {
					return true
				}
			}
		}
	}
	return false
}

// inspectSkippingFuncLits walks n, calling fn on every node but not
// descending into function literals (their bodies execute on their own
// schedule, so lexical facts about the enclosing function do not transfer).
func inspectSkippingFuncLits(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}
