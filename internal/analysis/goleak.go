package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// goleak: every go statement must have a provable termination path.
//
// A goroutine with no termination evidence outlives the request that spawned
// it: a portfolio lane that keeps searching after the race is decided, a
// lifecycle helper blocked forever on a channel nobody closes. The analyzer
// accepts a spawn when any of the following holds:
//
//   - the spawned function polls cancellation — its call-graph summary (or,
//     for a function literal, its body plus one level of callees) evaluates
//     ctx.Err()/ctx.Done();
//   - the spawned function receives from or ranges over a channel it was
//     handed (a quit or jobs channel: it terminates when the channel closes);
//   - the spawner joins it — the goroutine sends on or closes a channel the
//     spawning function receives from (result-channel join), or calls Done on
//     a sync.WaitGroup the spawning function Waits on;
//   - the spawn carries a //lint:ignore goleak directive with a reason
//     (handled by the generic suppression layer).
//
// Spawns whose callee cannot be resolved statically (function values,
// interface methods) have no checkable summary and are flagged: give the
// goroutine an analyzable shape or suppress with a reason.
//
// Join evidence is matched inside the enclosing function declaration: the
// channel or WaitGroup object the goroutine uses must be received from /
// waited on somewhere in the same declaration (before or after the spawn —
// the analysis is flow-insensitive on the spawner side).
var goleakAnalyzer = &Analyzer{
	Name:         "goleak",
	Doc:          "every go statement needs provable termination: a cancellation poll, a joined channel/WaitGroup, or a reasoned //lint:ignore",
	CheckPackage: runGoleak,
}

func runGoleak(pass *Pass, pkg *Package, _ any) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var joins *spawnerJoins
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if joins == nil {
					joins = collectSpawnerJoins(pkg, fd.Body)
				}
				checkGoStmt(pass, pkg, g, joins)
				return true
			})
		}
	}
}

// spawnerJoins records which channel objects the enclosing function receives
// from and which WaitGroup objects it waits on — the spawner's half of every
// join protocol in the declaration.
type spawnerJoins struct {
	recvs map[types.Object]bool // <-ch, range ch, select case <-ch
	waits map[types.Object]bool // wg.Wait()
}

func collectSpawnerJoins(pkg *Package, body *ast.BlockStmt) *spawnerJoins {
	j := &spawnerJoins{recvs: make(map[types.Object]bool), waits: make(map[types.Object]bool)}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if obj := chanOperandObj(pkg, n.X); obj != nil {
					j.recvs[obj] = true
				}
			}
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					if obj := chanOperandObj(pkg, n.X); obj != nil {
						j.recvs[obj] = true
					}
				}
			}
		case *ast.CallExpr:
			if fn := calleeFunc(pkg, n); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "sync" && recvTypeName(fn) == "WaitGroup" && fn.Name() == "Wait" {
				if obj := waitGroupTarget(pkg, n); obj != nil {
					j.waits[obj] = true
				}
			}
		}
		return true
	})
	return j
}

// checkGoStmt verifies one spawn against the termination-evidence rules.
func checkGoStmt(pass *Pass, pkg *Package, g *ast.GoStmt, joins *spawnerJoins) {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		checkGoLit(pass, pkg, g, lit, joins)
		return
	}
	fn := calleeFunc(pkg, g.Call)
	if fn == nil {
		pass.Reportf(g.Pos(), "goroutine has no provable termination path: cannot resolve the spawned function statically")
		return
	}
	sum := pass.Graph.Summary(fn)
	if sum == nil {
		pass.Reportf(g.Pos(), "goroutine has no provable termination path: %s is outside the analyzed packages", fn.Name())
		return
	}
	if sum.PollsCtx {
		return
	}
	// Map argument objects to the callee's parameter-index facts.
	for i, arg := range g.Call.Args {
		obj := chanOperandObj(pkg, arg)
		if sum.RecvParams[i] {
			return // handed a quit/jobs channel it receives from
		}
		if obj == nil {
			continue
		}
		if sum.SendParams[i] && joins.recvs[obj] {
			return // result channel the spawner receives from
		}
		if sum.DoneParams[i] && joins.waits[obj] {
			return // WaitGroup the spawner waits on
		}
	}
	// Method spawns mark Done on fields/package vars rather than parameters.
	for obj := range sum.DoneObjs {
		if joins.waits[obj] {
			return
		}
	}
	pass.Reportf(g.Pos(), "goroutine has no provable termination path: %s neither polls cancellation nor is joined by the spawner (receive its result channel, Wait on its WaitGroup, or //lint:ignore goleak with a reason)", fn.Name())
}

// checkGoLit verifies a `go func(...){...}(...)` spawn: the literal's own
// facts plus one level of callee summaries.
func checkGoLit(pass *Pass, pkg *Package, g *ast.GoStmt, lit *ast.FuncLit, joins *spawnerJoins) {
	facts := collectLitFacts(pass.Graph, pkg, lit.Body)
	if facts.pollsCtx {
		return
	}
	if len(facts.recvObjs) > 0 {
		return // blocks on a captured quit/jobs/done channel
	}
	for obj := range facts.sendObjs {
		if joins.recvs[obj] {
			return // result channel the spawner receives from
		}
	}
	for obj := range facts.doneObjs {
		if joins.waits[obj] {
			return
		}
	}
	pass.Reportf(g.Pos(), "goroutine has no provable termination path: the function literal neither polls cancellation nor is joined by the spawner (receive its result channel, Wait on its WaitGroup, or //lint:ignore goleak with a reason)")
}

// litFacts are the termination-relevant facts of one spawned literal body.
type litFacts struct {
	pollsCtx bool
	recvObjs map[types.Object]bool // channels received from / ranged over
	sendObjs map[types.Object]bool // channels sent on / closed (join half)
	doneObjs map[types.Object]bool // WaitGroups Done is called on
}

// collectLitFacts walks a spawned literal's body (skipping literals it
// spawns in turn): direct channel operations, WaitGroup.Done calls, and
// cancellation polls — its own or via any callee's transitive summary.
func collectLitFacts(graph *CallGraph, pkg *Package, body *ast.BlockStmt) *litFacts {
	f := &litFacts{
		recvObjs: make(map[types.Object]bool),
		sendObjs: make(map[types.Object]bool),
		doneObjs: make(map[types.Object]bool),
	}
	noteRecv := func(e ast.Expr) {
		if obj := chanOperandObj(pkg, e); obj != nil {
			f.recvObjs[obj] = true
		}
	}
	noteSend := func(e ast.Expr) {
		if obj := chanOperandObj(pkg, e); obj != nil {
			f.sendObjs[obj] = true
		}
	}
	inspectSkippingFuncLits(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				noteRecv(n.X)
			}
		case *ast.SendStmt:
			noteSend(n.Chan)
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					noteRecv(n.X)
				}
			}
		case *ast.CallExpr:
			if isDirectCtxCheck(pkg, n) {
				f.pollsCtx = true
				return true
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "close" && len(n.Args) == 1 {
					noteSend(n.Args[0])
					return true
				}
			}
			fn := calleeFunc(pkg, n)
			if graph.PollsCtx(fn) {
				f.pollsCtx = true
			}
			if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync" &&
				recvTypeName(fn) == "WaitGroup" && fn.Name() == "Done" {
				if obj := waitGroupTarget(pkg, n); obj != nil {
					f.doneObjs[obj] = true
				}
			}
			// A named callee's parameter-index facts transfer through the
			// literal's own arguments (the worker-helper idiom:
			// go func(){ worker(jobs, results) }()).
			if sum := graph.Summary(fn); sum != nil {
				for i, arg := range n.Args {
					if obj := chanOperandObj(pkg, arg); obj != nil {
						if sum.RecvParams[i] {
							f.recvObjs[obj] = true
						}
						if sum.SendParams[i] {
							f.sendObjs[obj] = true
						}
						if sum.DoneParams[i] {
							f.doneObjs[obj] = true
						}
					}
				}
				for obj := range sum.DoneObjs {
					f.doneObjs[obj] = true
				}
			}
		}
		return true
	})
	return f
}
