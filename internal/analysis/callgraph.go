package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The call-graph + summary fixpoint engine shared by the interprocedural
// analyzers (ctxloop, goleak, lockorder, sembalance).
//
// The engine collects, for every function declared in the target packages, a
// set of direct syntactic facts — polls cancellation, performs a blocking
// operation, acquires which named locks, releases which semaphore tokens —
// and then closes them transitively over the static call graph: summaries
// are computed bottom-up over the SCC condensation (Tarjan), so mutually
// recursive functions converge in one union pass per component and every
// analyzer reads the same cached result. The paper's thesis applied to the
// codebase itself: compute the structural parameter (the call graph) once,
// then let every expensive pass consult it instead of re-deriving ad-hoc
// transitive closures (which is what ctxloop's checker fixpoint used to be).
//
// Facts deliberately skip function literals: a literal's body runs on its
// own schedule (often on another goroutine), so its effects are not the
// enclosing function's effects. Analyzers that care about literal bodies
// (goleak at spawn sites) analyze them directly with DirectFacts.

// Summary is the transitive bottom-up summary of one function: the union of
// its own direct facts and the summaries of everything it can call.
type Summary struct {
	// PollsCtx: the function evaluates ctx.Err()/ctx.Done() on a
	// context.Context, itself or through a callee (ctxloop's checker set).
	PollsCtx bool
	// Blocking is "" when no (transitive) blocking operation was found, and
	// otherwise a short human-readable reason: a channel operation, a
	// no-default select, sync.WaitGroup.Wait, a net/http call, an admission
	// semaphore acquire, or an engine Solve* entry point.
	Blocking string
	// Acquires maps each named lock (a sync.Mutex/RWMutex struct field or
	// package-level variable) the function may lock, transitively, to one
	// witnessing acquisition position.
	Acquires map[types.Object]token.Pos
	// Releases holds the semaphore-token channel fields (chan struct{}
	// buffered-token discipline, see sembalance) the function may receive
	// from, transitively.
	Releases map[types.Object]bool

	// Direct-only facts (no propagation; the binding between caller
	// arguments and callee parameters is not tracked through chains):

	// RecvParams holds indices of channel-typed parameters the body receives
	// from or ranges over (the quit/jobs-channel termination protocols).
	RecvParams map[int]bool
	// SendParams holds indices of channel-typed parameters the body sends on
	// or closes (the result-channel half of a join protocol).
	SendParams map[int]bool
	// DoneParams holds indices of *sync.WaitGroup parameters the body calls
	// Done on.
	DoneParams map[int]bool
	// DoneObjs holds non-parameter sync.WaitGroup objects (struct fields,
	// package variables) the function calls Done on, transitively.
	DoneObjs map[types.Object]bool
}

// CallGraph is the static call graph over every function declared in the
// target packages, with per-function transitive summaries and the SCC
// condensation they were computed on.
type CallGraph struct {
	nodes map[*types.Func]*cgNode
	// SCCs lists the strongly connected components in bottom-up (callee
	// before caller) order, each component sorted by source position.
	SCCs [][]*types.Func
	// lockNames maps each known lock object to its display name
	// (pkg.Type.field or pkg.var).
	lockNames map[types.Object]string
}

type cgNode struct {
	fn      *types.Func
	pkg     *Package
	decl    *ast.FuncDecl
	order   int // collection order, for deterministic iteration
	callees []*types.Func
	direct  *Summary
	summary *Summary
	// Tarjan state.
	index, lowlink int
	onStack        bool
}

// Summary returns fn's transitive summary, or nil when fn is not a function
// declared in the target packages (interface methods, stdlib callees,
// function values).
func (g *CallGraph) Summary(fn *types.Func) *Summary {
	if fn == nil {
		return nil
	}
	if n, ok := g.nodes[fn]; ok {
		return n.summary
	}
	return nil
}

// PollsCtx reports whether calling fn implies a cancellation poll.
func (g *CallGraph) PollsCtx(fn *types.Func) bool {
	s := g.Summary(fn)
	return s != nil && s.PollsCtx
}

// SCCOf returns the strongly connected component containing fn (including fn
// itself), or nil when fn is not in the graph.
func (g *CallGraph) SCCOf(fn *types.Func) []*types.Func {
	if g.nodes[fn] == nil {
		return nil
	}
	for _, scc := range g.SCCs {
		for _, m := range scc {
			if m == fn {
				return scc
			}
		}
	}
	return nil
}

// LockName returns the display name recorded for a lock object, falling back
// to the bare object name.
func (g *CallGraph) LockName(obj types.Object) string {
	if n, ok := g.lockNames[obj]; ok {
		return n
	}
	return obj.Name()
}

// BuildCallGraph collects every declared function in pkgs, extracts direct
// facts, and computes transitive summaries bottom-up over the SCC
// condensation.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{nodes: make(map[*types.Func]*cgNode), lockNames: make(map[types.Object]string)}
	var order []*cgNode
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &cgNode{fn: fn, pkg: pkg, decl: fd, order: len(order), index: -1}
				g.nodes[fn] = n
				order = append(order, n)
			}
		}
	}
	for _, n := range order {
		n.direct = g.directFacts(n.pkg, n.decl)
		for _, callee := range directCallees(n.pkg, n.decl.Body) {
			if g.nodes[callee] != nil {
				n.callees = append(n.callees, callee)
			}
		}
	}
	g.condense(order)
	g.propagate()
	return g
}

// directCallees returns the static callees of body in source order, skipping
// function literals.
func directCallees(pkg *Package, body *ast.BlockStmt) []*types.Func {
	var out []*types.Func
	seen := make(map[*types.Func]bool)
	inspectSkippingFuncLits(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := calleeFunc(pkg, call); fn != nil && !seen[fn] {
				seen[fn] = true
				out = append(out, fn)
			}
		}
		return true
	})
	return out
}

// condense runs Tarjan's algorithm over the nodes, emitting SCCs in
// bottom-up (callee-first) order.
func (g *CallGraph) condense(order []*cgNode) {
	var (
		stack []*cgNode
		next  int
	)
	var strongconnect func(n *cgNode)
	strongconnect = func(n *cgNode) {
		n.index, n.lowlink = next, next
		next++
		stack = append(stack, n)
		n.onStack = true
		for _, callee := range n.callees {
			m := g.nodes[callee]
			if m.index < 0 {
				strongconnect(m)
				if m.lowlink < n.lowlink {
					n.lowlink = m.lowlink
				}
			} else if m.onStack && m.index < n.lowlink {
				n.lowlink = m.index
			}
		}
		if n.lowlink == n.index {
			var scc []*types.Func
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				m.onStack = false
				scc = append(scc, m.fn)
				if m == n {
					break
				}
			}
			sort.Slice(scc, func(i, j int) bool { return g.nodes[scc[i]].order < g.nodes[scc[j]].order })
			g.SCCs = append(g.SCCs, scc)
		}
	}
	for _, n := range order {
		if n.index < 0 {
			strongconnect(n)
		}
	}
}

// propagate computes transitive summaries in SCC emission order: every
// callee's component is complete before its callers', so one union pass per
// component reaches the fixpoint.
func (g *CallGraph) propagate() {
	for _, scc := range g.SCCs {
		sum := &Summary{
			Acquires: make(map[types.Object]token.Pos),
			Releases: make(map[types.Object]bool),
			DoneObjs: make(map[types.Object]bool),
		}
		inSCC := make(map[*types.Func]bool, len(scc))
		for _, fn := range scc {
			inSCC[fn] = true
		}
		// Union the members' direct facts, then the summaries of callees
		// outside the component (those are final).
		for _, fn := range scc {
			n := g.nodes[fn]
			mergeSummary(sum, n.direct, "")
		}
		for _, fn := range scc {
			for _, callee := range g.nodes[fn].callees {
				if inSCC[callee] {
					continue
				}
				mergeSummary(sum, g.nodes[callee].summary, callee.Name())
			}
		}
		for _, fn := range scc {
			m := g.nodes[fn]
			// Direct-only facts stay per function.
			s := *sum
			s.RecvParams = m.direct.RecvParams
			s.SendParams = m.direct.SendParams
			s.DoneParams = m.direct.DoneParams
			m.summary = &s
		}
	}
}

// mergeSummary folds src into dst. via, when non-empty, names the callee the
// facts arrived through (used to annotate the blocking reason).
func mergeSummary(dst, src *Summary, via string) {
	if src == nil {
		return
	}
	dst.PollsCtx = dst.PollsCtx || src.PollsCtx
	if dst.Blocking == "" && src.Blocking != "" {
		if via == "" {
			dst.Blocking = src.Blocking
		} else {
			dst.Blocking = via + ": " + src.Blocking
		}
	}
	for obj, pos := range src.Acquires {
		if _, ok := dst.Acquires[obj]; !ok {
			dst.Acquires[obj] = pos
		}
	}
	for obj := range src.Releases {
		dst.Releases[obj] = true
	}
	for obj := range src.DoneObjs {
		dst.DoneObjs[obj] = true
	}
}

// enginePkgs are the module packages whose Solve*/Portfolio entry points are
// long-running by design: calling one while holding a lock serializes the
// engine behind the lock.
var enginePkgs = map[string]bool{
	"csdb/internal/csp":      true,
	"csdb/internal/dispatch": true,
}

// blockingNetPkgs are standard-library packages whose calls can block on the
// network. net/url and friends are pure and deliberately absent.
var blockingNetPkgs = map[string]bool{
	"net":      true,
	"net/http": true,
	"net/rpc":  true,
}

// DirectFacts extracts the direct (non-transitive) facts of one function
// body — also used by goleak on spawned function literals. sig may be nil
// when parameter-index facts are not wanted.
func (g *CallGraph) DirectFacts(pkg *Package, sig *types.Signature, body *ast.BlockStmt) *Summary {
	return g.directFactsBody(pkg, sig, body)
}

func (g *CallGraph) directFacts(pkg *Package, fd *ast.FuncDecl) *Summary {
	sig, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	var s *types.Signature
	if sig != nil {
		s, _ = sig.Type().(*types.Signature)
	}
	return g.directFactsBody(pkg, s, fd.Body)
}

func (g *CallGraph) directFactsBody(pkg *Package, sig *types.Signature, body *ast.BlockStmt) *Summary {
	sum := &Summary{
		Acquires:   make(map[types.Object]token.Pos),
		Releases:   make(map[types.Object]bool),
		RecvParams: make(map[int]bool),
		SendParams: make(map[int]bool),
		DoneParams: make(map[int]bool),
		DoneObjs:   make(map[types.Object]bool),
	}
	paramIndex := make(map[types.Object]int)
	if sig != nil {
		for i := 0; i < sig.Params().Len(); i++ {
			paramIndex[sig.Params().At(i)] = i
		}
	}
	setBlocking := func(reason string) {
		if sum.Blocking == "" {
			sum.Blocking = reason
		}
	}
	noteRecv := func(e ast.Expr) {
		if obj := chanOperandObj(pkg, e); obj != nil {
			if i, ok := paramIndex[obj]; ok {
				sum.RecvParams[i] = true
			}
			if isTokenChanField(pkg, obj) {
				sum.Releases[obj] = true
			}
		}
	}
	noteSend := func(e ast.Expr) {
		if obj := chanOperandObj(pkg, e); obj != nil {
			if i, ok := paramIndex[obj]; ok {
				sum.SendParams[i] = true
			}
		}
	}
	var walk func(root ast.Node)
	walk = func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.SelectStmt:
				hasDefault := false
				for _, c := range n.Body.List {
					if c.(*ast.CommClause).Comm == nil {
						hasDefault = true
					}
				}
				if !hasDefault {
					setBlocking("select with no default case")
				}
				// Communication attempts inside a select are not plain
				// blocking operations; still record their channel facts.
				for _, clause := range n.Body.List {
					c := clause.(*ast.CommClause)
					if c.Comm != nil {
						switch comm := c.Comm.(type) {
						case *ast.SendStmt:
							noteSend(comm.Chan)
						default:
							ast.Inspect(comm, func(m ast.Node) bool {
								if u, ok := m.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
									noteRecv(u.X)
								}
								return true
							})
						}
					}
					for _, s := range c.Body {
						walk(s)
					}
				}
				return false
			case *ast.SendStmt:
				setBlocking("channel send")
				noteSend(n.Chan)
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					setBlocking("channel receive")
					noteRecv(n.X)
				}
			case *ast.RangeStmt:
				if tv, ok := pkg.Info.Types[n.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						setBlocking("range over channel")
						noteRecv(n.X)
					}
				}
			case *ast.CallExpr:
				g.callFacts(pkg, n, sum, paramIndex, setBlocking, noteSend)
			}
			return true
		})
	}
	walk(body)
	return sum
}

// callFacts classifies one call expression: context polls, lock
// acquisitions, WaitGroup operations, close() of a channel parameter, and
// the known blocking entry points.
func (g *CallGraph) callFacts(pkg *Package, call *ast.CallExpr, sum *Summary,
	paramIndex map[types.Object]int, setBlocking func(string), noteSend func(ast.Expr)) {
	if isDirectCtxCheck(pkg, call) {
		sum.PollsCtx = true
		return
	}
	// close(ch) participates in the join protocol like a send would.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "close" && len(call.Args) == 1 {
			noteSend(call.Args[0])
			return
		}
	}
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "sync":
		recv := recvTypeName(fn)
		switch {
		case (recv == "Mutex" || recv == "RWMutex") && (fn.Name() == "Lock" || fn.Name() == "RLock"):
			if obj, name := lockTarget(pkg, call); obj != nil {
				if _, ok := sum.Acquires[obj]; !ok {
					sum.Acquires[obj] = call.Pos()
				}
				g.lockNames[obj] = name
			}
		case recv == "WaitGroup" && fn.Name() == "Wait":
			setBlocking("sync.WaitGroup.Wait")
		case recv == "WaitGroup" && fn.Name() == "Done":
			if obj := waitGroupTarget(pkg, call); obj != nil {
				if i, ok := paramIndex[obj]; ok {
					sum.DoneParams[i] = true
				} else {
					sum.DoneObjs[obj] = true
				}
			}
		}
	case "csdb/internal/serve":
		if recvTypeName(fn) == "Admission" && fn.Name() == "Acquire" {
			setBlocking("admission semaphore acquire")
		}
	default:
		if blockingNetPkgs[fn.Pkg().Path()] {
			setBlocking(fn.Pkg().Path() + " call")
		} else if enginePkgs[fn.Pkg().Path()] && (strings.HasPrefix(fn.Name(), "Solve") || fn.Name() == "Portfolio") {
			setBlocking("engine entry point " + fn.Pkg().Name() + "." + fn.Name())
		}
	}
}

// recvTypeName returns the name of fn's receiver's named type, or "".
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	named := namedRecv(sig.Recv().Type())
	if named == nil {
		return ""
	}
	return named.Obj().Name()
}

// lockTarget resolves the lock behind x.mu.Lock() (or mu.Lock() on a
// package-level mutex) to a stable object identity and a display name.
// Function-local mutexes have no cross-function identity and return nil.
func lockTarget(pkg *Package, call *ast.CallExpr) (types.Object, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		if s, ok := pkg.Info.Selections[x]; ok && s.Kind() == types.FieldVal {
			obj := s.Obj()
			owner := ""
			if named := namedRecv(s.Recv()); named != nil {
				owner = named.Obj().Name() + "."
			}
			return obj, pkg.Types.Name() + "." + owner + obj.Name()
		}
		if obj, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok && isPackageLevel(obj) {
			return obj, obj.Pkg().Name() + "." + obj.Name()
		}
	case *ast.Ident:
		if obj, ok := pkg.Info.Uses[x].(*types.Var); ok && isPackageLevel(obj) {
			return obj, obj.Pkg().Name() + "." + obj.Name()
		}
	}
	return nil, ""
}

// waitGroupTarget resolves wg.Done()'s receiver to an object identity
// (parameter, local, field or package variable).
func waitGroupTarget(pkg *Package, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return chanOperandObj(pkg, sel.X)
}

// chanOperandObj resolves a channel (or WaitGroup) operand expression to its
// object: a plain identifier, a dereference, or a struct-field selector.
func chanOperandObj(pkg *Package, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pkg.Info.Uses[e]
	case *ast.StarExpr:
		return chanOperandObj(pkg, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return chanOperandObj(pkg, e.X)
		}
	case *ast.SelectorExpr:
		if s, ok := pkg.Info.Selections[e]; ok && s.Kind() == types.FieldVal {
			return s.Obj()
		}
		return pkg.Info.Uses[e.Sel]
	}
	return nil
}

// isTokenChanField reports whether obj is a chan struct{} struct field —
// the shape sembalance's token discipline applies to. Whether the field is
// actually used as a buffered token store is decided by the sembalance
// analyzer (it looks for a make with a capacity); the summary layer records
// every receive from such a field as a potential release.
func isTokenChanField(pkg *Package, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || !v.IsField() {
		return false
	}
	ch, ok := v.Type().Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}
