package analysis

import (
	"strings"
	"testing"
)

// TestLoadClosure checks the loader's contract on the fixture load: targets
// are exactly the pattern-matched packages, the dependency closure includes
// the standard library and the module's own packages, and type information
// is populated.
func TestLoadClosure(t *testing.T) {
	loaded := loadTestdata(t)

	if len(loaded.Targets) != 10 {
		var names []string
		for _, p := range loaded.Targets {
			names = append(names, p.Path)
		}
		t.Fatalf("want 10 fixture targets, got %d: %v", len(loaded.Targets), names)
	}
	for _, p := range loaded.Targets {
		if !p.Target {
			t.Errorf("%s: Target flag not set", p.Path)
		}
		if p.Standard {
			t.Errorf("%s: fixture marked Standard", p.Path)
		}
		if p.Types == nil || p.Info == nil || len(p.Files) == 0 {
			t.Errorf("%s: missing type info or files", p.Path)
		}
		if !strings.Contains(p.Path, "testdata/src/") {
			t.Errorf("unexpected target %s", p.Path)
		}
	}

	// The closure pulls in both standard-library and module dependencies,
	// type-checked but not targeted.
	for _, dep := range []string{"context", "sync/atomic", "csdb/internal/relation", "csdb/internal/obs"} {
		p := loaded.All[dep]
		if p == nil {
			t.Errorf("dependency %s missing from closure", dep)
			continue
		}
		if p.Target {
			t.Errorf("dependency %s marked as target", dep)
		}
		if p.Types == nil {
			t.Errorf("dependency %s not type-checked", dep)
		}
	}
	if p := loaded.All["context"]; p != nil && !p.Standard {
		t.Error("context not marked Standard")
	}
}

// TestLoadErrors covers the loader's failure modes: a pattern that matches
// nothing resolvable and a directory that is not a module.
func TestLoadErrors(t *testing.T) {
	if _, err := Load(".", "./no/such/dir/..."); err == nil {
		t.Error("Load with a bogus pattern succeeded; want error")
	}
	if _, err := Load(t.TempDir(), "./..."); err == nil {
		t.Error("Load outside a module succeeded; want error")
	}
}

// TestRelationSuppressionRegression loads the real relation package and
// asserts the planner's heap-drain loop stays suppressed: the //lint:ignore
// on joinAllPlanned's inner loop must keep ctxloop quiet there, while the
// analyzer still runs (the load itself would catch a removed directive as a
// new finding). Guards against the directive drifting away from the loop it
// annotates.
func TestRelationSuppressionRegression(t *testing.T) {
	loaded, err := Load(".", "../relation")
	if err != nil {
		t.Fatalf("loading internal/relation: %v", err)
	}
	for _, d := range Run(loaded, All()) {
		t.Errorf("unexpected finding in internal/relation: %s", d)
	}
}

// TestDriverSuppressionRegression runs the suite over this package itself and
// pins the one deliberate suppression: the loader's enqueue in finish() sends
// on the bounded ready channel while holding the mutex (lockorder would flag
// it), which is safe because the buffer holds the whole closure. The finding
// must stay suppressed — and must still be *produced*, so the directive can't
// silently drift away from the send it annotates.
func TestDriverSuppressionRegression(t *testing.T) {
	loaded, err := Load(".", ".")
	if err != nil {
		t.Fatalf("loading internal/analysis: %v", err)
	}
	var suppressed int
	for _, f := range RunDetailed(loaded, All()) {
		if !f.Suppressed {
			t.Errorf("unexpected finding in internal/analysis: %s", f.Diagnostic)
		} else if f.Analyzer == "lockorder" && strings.Contains(f.Message, "channel send") {
			suppressed++
		}
	}
	if suppressed != 1 {
		t.Errorf("want exactly 1 suppressed lockorder send-under-lock finding in the loader, got %d", suppressed)
	}
}
