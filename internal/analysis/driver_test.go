package analysis

import (
	"strings"
	"testing"
)

// TestLoadClosure checks the loader's contract on the fixture load: targets
// are exactly the pattern-matched packages, the dependency closure includes
// the standard library and the module's own packages, and type information
// is populated.
func TestLoadClosure(t *testing.T) {
	loaded := loadTestdata(t)

	if len(loaded.Targets) != 6 {
		var names []string
		for _, p := range loaded.Targets {
			names = append(names, p.Path)
		}
		t.Fatalf("want 6 fixture targets, got %d: %v", len(loaded.Targets), names)
	}
	for _, p := range loaded.Targets {
		if !p.Target {
			t.Errorf("%s: Target flag not set", p.Path)
		}
		if p.Standard {
			t.Errorf("%s: fixture marked Standard", p.Path)
		}
		if p.Types == nil || p.Info == nil || len(p.Files) == 0 {
			t.Errorf("%s: missing type info or files", p.Path)
		}
		if !strings.Contains(p.Path, "testdata/src/") {
			t.Errorf("unexpected target %s", p.Path)
		}
	}

	// The closure pulls in both standard-library and module dependencies,
	// type-checked but not targeted.
	for _, dep := range []string{"context", "sync/atomic", "csdb/internal/relation", "csdb/internal/obs"} {
		p := loaded.All[dep]
		if p == nil {
			t.Errorf("dependency %s missing from closure", dep)
			continue
		}
		if p.Target {
			t.Errorf("dependency %s marked as target", dep)
		}
		if p.Types == nil {
			t.Errorf("dependency %s not type-checked", dep)
		}
	}
	if p := loaded.All["context"]; p != nil && !p.Standard {
		t.Error("context not marked Standard")
	}
}

// TestLoadErrors covers the loader's failure modes: a pattern that matches
// nothing resolvable and a directory that is not a module.
func TestLoadErrors(t *testing.T) {
	if _, err := Load(".", "./no/such/dir/..."); err == nil {
		t.Error("Load with a bogus pattern succeeded; want error")
	}
	if _, err := Load(t.TempDir(), "./..."); err == nil {
		t.Error("Load outside a module succeeded; want error")
	}
}

// TestRelationSuppressionRegression loads the real relation package and
// asserts the planner's heap-drain loop stays suppressed: the //lint:ignore
// on joinAllPlanned's inner loop must keep ctxloop quiet there, while the
// analyzer still runs (the load itself would catch a removed directive as a
// new finding). Guards against the directive drifting away from the loop it
// annotates.
func TestRelationSuppressionRegression(t *testing.T) {
	loaded, err := Load(".", "../relation")
	if err != nil {
		t.Fatalf("loading internal/relation: %v", err)
	}
	for _, d := range Run(loaded, All()) {
		t.Errorf("unexpected finding in internal/relation: %s", d)
	}
}
