package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
)

// The loader: a stdlib-only replacement for golang.org/x/tools/go/packages.
// `go list -json -deps` enumerates the requested packages and their full
// dependency closure (standard library included); every package is then
// parsed and type-checked from source in dependency order, with imports
// resolved against the already-checked set. This matches the repo's
// zero-dependency rule — go/ast, go/parser, go/token and go/types carry the
// whole load — at the cost of type-checking the standard library from
// source, which go/types is explicitly specified to support.

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	// ImportMap translates source-level import paths to resolved ones
	// (the standard library vendors golang.org/x/... under vendor/).
	ImportMap map[string]string
	Error     *struct{ Err string }
}

// Package is one loaded, parsed and type-checked package.
type Package struct {
	Path     string // resolved import path
	Dir      string
	Standard bool // part of the Go standard library
	Target   bool // named by the Load patterns (vs pulled in as a dependency)
	Files    []*ast.File
	Types    *types.Package
	Info     *types.Info
}

// Loaded is the result of a Load call: the shared FileSet and every package
// in the closure, plus the subset named by the patterns (the analysis
// targets) in a stable order.
type Loaded struct {
	Fset    *token.FileSet
	All     map[string]*Package
	Targets []*Package
}

// Load runs `go list` in dir on the given patterns and type-checks the
// resulting packages and their whole dependency closure from source.
// Patterns follow go-list syntax (./..., explicit directories, import
// paths). Test files are not loaded: the invariants csplint enforces are
// production-code invariants.
func Load(dir string, patterns ...string) (*Loaded, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	entries, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	l := &loader{
		fset:    token.NewFileSet(),
		list:    entries,
		pkgs:    make(map[string]*Package, len(entries)),
		sizes:   types.SizesFor("gc", runtime.GOARCH),
		pending: make(map[string]bool),
	}
	out := &Loaded{Fset: l.fset, All: l.pkgs}
	// Check targets (each pulls in its deps recursively).
	var targets []string
	for path, e := range entries {
		if !e.DepOnly {
			targets = append(targets, path)
		}
	}
	sort.Strings(targets)
	if len(targets) == 0 {
		return nil, fmt.Errorf("analysis: patterns %v matched no packages", patterns)
	}
	for _, path := range targets {
		p, err := l.check(path)
		if err != nil {
			return nil, err
		}
		p.Target = true
		out.Targets = append(out.Targets, p)
	}
	return out, nil
}

// goList shells out to the go tool and decodes the JSON stream. CGO is
// disabled so every package resolves to its pure-Go file set (the loader
// cannot type-check C).
func goList(dir string, patterns []string) (map[string]*listPkg, error) {
	args := append([]string{"list", "-e", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(cmd.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("analysis: starting go list: %w", err)
	}
	entries := make(map[string]*listPkg)
	dec := json.NewDecoder(stdout)
	for {
		var e listPkg
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		entries[e.ImportPath] = &e
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %w\n%s", patterns, err, stderr.String())
	}
	for _, e := range entries {
		if e.Error != nil && !e.DepOnly {
			return nil, fmt.Errorf("analysis: %s: %s", e.ImportPath, e.Error.Err)
		}
	}
	return entries, nil
}

// loader type-checks packages recursively, memoizing by resolved import path.
type loader struct {
	fset    *token.FileSet
	list    map[string]*listPkg
	pkgs    map[string]*Package
	sizes   types.Sizes
	pending map[string]bool // import-cycle guard
}

// check parses and type-checks the package at the resolved path, checking
// its imports first.
func (l *loader) check(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.pending[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	e, ok := l.list[path]
	if !ok {
		return nil, fmt.Errorf("analysis: package %s not in go list output", path)
	}
	l.pending[path] = true
	defer delete(l.pending, path)

	files := make([]*ast.File, 0, len(e.GoFiles))
	for _, name := range e.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(e.Dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", path, err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: &pkgImporter{l: l, from: e},
		Sizes:    l.sizes,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	p := &Package{
		Path:     path,
		Dir:      e.Dir,
		Standard: e.Standard,
		Files:    files,
		Types:    tpkg,
		Info:     info,
	}
	l.pkgs[path] = p
	return p, nil
}

// pkgImporter resolves one package's imports against the loader, applying
// the package's ImportMap (vendored standard-library dependencies).
type pkgImporter struct {
	l    *loader
	from *listPkg
}

func (im *pkgImporter) Import(path string) (*types.Package, error) {
	return im.ImportFrom(path, "", 0)
}

func (im *pkgImporter) ImportFrom(path, _ string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := im.from.ImportMap[path]; ok {
		path = mapped
	}
	p, err := im.l.check(path)
	if err != nil {
		return nil, err
	}
	return p.Types, nil
}
