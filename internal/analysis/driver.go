package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
)

// The loader: a stdlib-only replacement for golang.org/x/tools/go/packages.
// `go list -json -deps` enumerates the requested packages and their full
// dependency closure (standard library included); every package is then
// parsed and type-checked from source, with imports resolved against the
// already-checked set. This matches the repo's zero-dependency rule — go/ast,
// go/parser, go/token and go/types carry the whole load — at the cost of
// type-checking the standard library from source, which go/types is
// explicitly specified to support.
//
// Two things keep the load fast:
//
//   - dependency-only packages are checked with IgnoreFuncBodies and no
//     types.Info: analyzers only walk target packages, so the standard
//     library contributes declarations and nothing else — skipping its
//     function bodies is the bulk of the win;
//   - packages are scheduled over the import DAG on a worker pool
//     (GOMAXPROCS wide): a package starts as soon as its imports are done,
//     so independent subtrees check concurrently. token.FileSet and
//     completed *types.Package values are safe for this sharing.

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Imports    []string
	// ImportMap translates source-level import paths to resolved ones
	// (the standard library vendors golang.org/x/... under vendor/).
	ImportMap map[string]string
	Error     *struct{ Err string }
}

// Package is one loaded, parsed and type-checked package.
type Package struct {
	Path     string // resolved import path
	Dir      string
	Standard bool // part of the Go standard library
	Target   bool // named by the Load patterns (vs pulled in as a dependency)
	Files    []*ast.File
	Types    *types.Package
	// Info is populated for target packages only; dependencies are checked
	// with IgnoreFuncBodies and carry no expression-level information.
	Info *types.Info
}

// Loaded is the result of a Load call: the shared FileSet and every package
// in the closure, plus the subset named by the patterns (the analysis
// targets) in a stable order.
type Loaded struct {
	Fset    *token.FileSet
	All     map[string]*Package
	Targets []*Package
}

// Load runs `go list` in dir on the given patterns and type-checks the
// resulting packages and their whole dependency closure from source.
// Patterns follow go-list syntax (./..., explicit directories, import
// paths). Test files are not loaded: the invariants csplint enforces are
// production-code invariants.
func Load(dir string, patterns ...string) (*Loaded, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	entries, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	delete(entries, "unsafe") // resolved to types.Unsafe, never checked
	var targets []string
	for path, e := range entries {
		if !e.DepOnly {
			targets = append(targets, path)
		}
	}
	sort.Strings(targets)
	if len(targets) == 0 {
		return nil, fmt.Errorf("analysis: patterns %v matched no packages", patterns)
	}

	l := &loader{
		fset:  token.NewFileSet(),
		list:  entries,
		pkgs:  make(map[string]*Package, len(entries)),
		sizes: types.SizesFor("gc", runtime.GOARCH),
	}
	if err := l.loadAll(); err != nil {
		return nil, err
	}
	out := &Loaded{Fset: l.fset, All: l.pkgs}
	for _, path := range targets {
		p := l.pkgs[path]
		p.Target = true
		out.Targets = append(out.Targets, p)
	}
	return out, nil
}

// goList shells out to the go tool and decodes the JSON stream. CGO is
// disabled so every package resolves to its pure-Go file set (the loader
// cannot type-check C).
func goList(dir string, patterns []string) (map[string]*listPkg, error) {
	args := append([]string{"list", "-e", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(cmd.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("analysis: starting go list: %w", err)
	}
	entries := make(map[string]*listPkg)
	dec := json.NewDecoder(stdout)
	for {
		var e listPkg
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		entries[e.ImportPath] = &e
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %w\n%s", patterns, err, stderr.String())
	}
	for _, e := range entries {
		if e.Error != nil && !e.DepOnly {
			return nil, fmt.Errorf("analysis: %s: %s", e.ImportPath, e.Error.Err)
		}
	}
	return entries, nil
}

// loader type-checks the whole closure over the import DAG.
type loader struct {
	fset  *token.FileSet
	list  map[string]*listPkg
	sizes types.Sizes

	mu        sync.Mutex
	pkgs      map[string]*Package
	err       error
	closed    bool                // l.ready closed (schedule abandoned or drained)
	waiting   map[string]int      // per package, number of unchecked imports
	dependers map[string][]string // reverse import edges
	ready     chan string
	scheduled int
	completed int
}

// loadAll schedules every listed package over the import DAG: a package is
// enqueued once all of its imports are checked, and GOMAXPROCS workers drain
// the queue. A stalled schedule (nothing running, packages still waiting)
// means go list handed us an import cycle.
func (l *loader) loadAll() error {
	l.waiting = make(map[string]int, len(l.list))
	l.dependers = make(map[string][]string, len(l.list))
	l.ready = make(chan string, len(l.list))
	for path, e := range l.list {
		seen := make(map[string]bool)
		for _, imp := range e.Imports {
			if mapped, ok := e.ImportMap[imp]; ok {
				imp = mapped
			}
			if imp == path || seen[imp] {
				continue
			}
			if _, listed := l.list[imp]; !listed {
				continue // unsafe, or outside the closure
			}
			seen[imp] = true
			l.waiting[path]++
			l.dependers[imp] = append(l.dependers[imp], path)
		}
	}
	var roots []string
	for path := range l.list {
		if l.waiting[path] == 0 {
			roots = append(roots, path)
		}
	}
	sort.Strings(roots)
	l.scheduled = len(roots)
	for _, path := range roots {
		l.ready <- path
	}
	if l.scheduled == 0 {
		return fmt.Errorf("analysis: import cycle: no dependency-free package in the closure")
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(l.list) {
		workers = len(l.list)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for path := range l.ready {
				p, err := l.check(path)
				l.finish(path, p, err)
			}
		}()
	}
	wg.Wait()
	return l.err
}

// finish records one checked package and unblocks its dependers. The last
// completion closes the queue; a schedule that drains with packages still
// waiting is an import cycle.
func (l *loader) finish(path string, p *Package, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.completed++
	if err != nil && l.err == nil {
		l.err = err
	}
	if err == nil && l.err == nil {
		l.pkgs[path] = p
		for _, d := range l.dependers[path] {
			l.waiting[d]--
			if l.waiting[d] == 0 {
				l.scheduled++
				// ready is buffered to len(l.list) and every package is
				// enqueued at most once, so this send cannot block; the
				// mutex is what orders it before the close below.
				//lint:ignore lockorder bounded send: buffer holds the whole closure, and the lock serializes enqueue against close
				l.ready <- d
			}
		}
	}
	if !l.closed && (l.err != nil || l.completed == l.scheduled) {
		if l.err == nil && l.scheduled < len(l.list) {
			var stuck []string
			for p, n := range l.waiting {
				if n > 0 {
					stuck = append(stuck, p)
				}
			}
			sort.Strings(stuck)
			l.err = fmt.Errorf("analysis: import cycle through %s", stuck[0])
		}
		l.closed = true
		close(l.ready)
	}
}

// check parses and type-checks one package; every import is already in
// l.pkgs. Dependency-only packages skip function bodies, comments and
// expression-level type information — analyzers never walk them.
func (l *loader) check(path string) (*Package, error) {
	e := l.list[path]
	mode := parser.SkipObjectResolution
	if !e.DepOnly {
		mode |= parser.ParseComments
	}
	files := make([]*ast.File, 0, len(e.GoFiles))
	for _, name := range e.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(e.Dir, name), nil, mode)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", path, err)
		}
		files = append(files, f)
	}

	var info *types.Info
	if !e.DepOnly {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
	}
	var typeErrs []error
	conf := types.Config{
		Importer:         &pkgImporter{l: l, from: e},
		Sizes:            l.sizes,
		IgnoreFuncBodies: e.DepOnly,
		Error:            func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{
		Path:     path,
		Dir:      e.Dir,
		Standard: e.Standard,
		Files:    files,
		Types:    tpkg,
		Info:     info,
	}, nil
}

// pkgImporter resolves one package's imports against the loader, applying
// the package's ImportMap (vendored standard-library dependencies). The DAG
// schedule guarantees every import is checked before the package that names
// it starts.
type pkgImporter struct {
	l    *loader
	from *listPkg
}

func (im *pkgImporter) Import(path string) (*types.Package, error) {
	return im.ImportFrom(path, "", 0)
}

func (im *pkgImporter) ImportFrom(path, _ string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := im.from.ImportMap[path]; ok {
		path = mapped
	}
	im.l.mu.Lock()
	p := im.l.pkgs[path]
	im.l.mu.Unlock()
	if p == nil {
		return nil, fmt.Errorf("analysis: package %s not checked before its importer (go list omitted it?)", path)
	}
	return p.Types, nil
}
