package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ctxloop: every unbounded loop in a function that takes a context.Context
// must poll cancellation on every iteration.
//
// "Unbounded" is syntactic: a for statement with no condition (for {...}) or
// with a condition but neither init nor post (for cond {...} — the
// worklist/fixpoint shape of the GAC and join-planning loops). Range loops
// and three-clause counting loops are considered bounded.
//
// "Polls cancellation" means the loop body is guaranteed, on every path
// through one iteration, to evaluate one of:
//
//   - ctx.Err() or ctx.Done() on a context.Context value;
//   - a call to a function that itself (transitively) performs such a check —
//     so the engine's amortized cancelChecker.cancelled() helper and the
//     context-aware solver entry points count; the transitive set comes from
//     the shared call-graph engine's PollsCtx summaries;
//   - a select statement with a <-ctx.Done() case.
//
// One amortization idiom is recognized: `if counter%interval == 0 { ...check
// ... }` counts as a check, because the guard is evaluated every iteration
// and the poll happens on a fixed cadence (the repo's gacCheckInterval
// discipline). A check that is merely conditional on arbitrary state does
// not count — that is exactly the bug class (a branch that stops polling)
// this analyzer exists to catch.
var ctxloopAnalyzer = &Analyzer{
	Name:         "ctxloop",
	Doc:          "unbounded loops in context-taking functions must poll cancellation on every iteration",
	CheckPackage: runCtxloop,
}

func runCtxloop(pass *Pass, pkg *Package, _ any) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil && hasCtxParam(pkg, fd) {
				checkCtxFunc(pass, pkg, fd.Body)
			}
		}
	}
}

// hasCtxParam reports whether the function declares a context.Context
// parameter.
func hasCtxParam(pkg *Package, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if t, ok := pkg.Info.Types[field.Type]; ok && isContextType(t.Type) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkCtxFunc inspects a function body (including nested function literals,
// which capture the context) for unbounded loops that fail the per-iteration
// check guarantee.
func checkCtxFunc(pass *Pass, pkg *Package, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || !isUnboundedLoop(loop) {
			return true
		}
		g := &guarantee{pkg: pkg, graph: pass.Graph}
		if !g.block(loop.Body) && !g.hasCheck(loop.Cond) {
			pass.Reportf(loop.For, "unbounded loop does not poll cancellation on every iteration (call ctx.Err()/ctx.Done() or a checking helper)")
		}
		return true
	})
}

// isUnboundedLoop classifies for statements with no termination structure:
// `for {}` and condition-only loops (worklist fixpoints).
func isUnboundedLoop(loop *ast.ForStmt) bool {
	return loop.Cond == nil || (loop.Init == nil && loop.Post == nil)
}

// isDirectCtxCheck matches ctx.Err() / ctx.Done() where ctx has type
// context.Context.
func isDirectCtxCheck(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Err" && sel.Sel.Name != "Done") {
		return false
	}
	t, ok := pkg.Info.Types[sel.X]
	return ok && isContextType(t.Type)
}

// calleeFunc resolves a call's static callee, or nil (interface calls,
// function values, builtins).
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// guarantee implements the per-iteration must-check analysis: does every
// path through one execution of a statement list evaluate a cancellation
// check? Transitive checking helpers are resolved through the call-graph
// engine's PollsCtx summaries.
type guarantee struct {
	pkg   *Package
	graph *CallGraph
}

// block reports whether the statement list guarantees a check.
func (g *guarantee) block(b *ast.BlockStmt) bool {
	if b == nil {
		return false
	}
	for _, s := range b.List {
		if g.stmt(s) {
			return true
		}
	}
	return false
}

func (g *guarantee) stmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return g.block(s)
	case *ast.LabeledStmt:
		return g.stmt(s.Stmt)
	case *ast.IfStmt:
		if g.hasCheck(s.Init) || g.hasCheck(s.Cond) {
			return true
		}
		// Amortized poll gate: a modulo guard runs every iteration, so a
		// check inside it fires on a fixed cadence.
		if containsModulo(s.Cond) && g.block(s.Body) {
			return true
		}
		// Both branches present and both guarantee the check.
		if s.Else != nil && g.block(s.Body) && g.stmt(s.Else) {
			return true
		}
		return false
	case *ast.SwitchStmt:
		if g.hasCheck(s.Init) || g.hasCheck(s.Tag) {
			return true
		}
		return g.allCasesGuarantee(s.Body)
	case *ast.TypeSwitchStmt:
		return g.allCasesGuarantee(s.Body)
	case *ast.SelectStmt:
		// A select with a <-ctx.Done() case polls cancellation whenever it
		// runs; otherwise require every case body to guarantee the check.
		all := len(s.Body.List) > 0
		for _, clause := range s.Body.List {
			c := clause.(*ast.CommClause)
			if g.hasCheckStmt(c.Comm) {
				return true
			}
			if !g.blockList(c.Body) {
				all = false
			}
		}
		return all
	case *ast.ForStmt, *ast.RangeStmt:
		// A nested loop may run zero iterations; no guarantee transfers.
		return false
	default:
		return g.hasCheckStmt(s)
	}
}

// allCasesGuarantee requires a default clause and every clause body to
// guarantee the check.
func (g *guarantee) allCasesGuarantee(body *ast.BlockStmt) bool {
	hasDefault := false
	for _, clause := range body.List {
		c := clause.(*ast.CaseClause)
		if c.List == nil {
			hasDefault = true
		}
		if !g.blockList(c.Body) {
			return false
		}
	}
	return hasDefault
}

func (g *guarantee) blockList(list []ast.Stmt) bool {
	for _, s := range list {
		if g.stmt(s) {
			return true
		}
	}
	return false
}

// hasCheckStmt scans one non-branching statement for a check expression.
func (g *guarantee) hasCheckStmt(s ast.Stmt) bool {
	if s == nil {
		return false
	}
	found := false
	inspectSkippingFuncLits(s, func(n ast.Node) bool {
		if found {
			return false
		}
		// Do not let a nested loop's body vouch for this statement.
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if isDirectCtxCheck(g.pkg, call) || g.graph.PollsCtx(calleeFunc(g.pkg, call)) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// hasCheck scans one expression or simple statement for a check.
func (g *guarantee) hasCheck(n ast.Node) bool {
	if n == nil {
		return false
	}
	switch n := n.(type) {
	case ast.Stmt:
		return g.hasCheckStmt(n)
	case ast.Expr:
		return g.hasCheckStmt(&ast.ExprStmt{X: n})
	}
	return false
}

// containsModulo reports whether the expression contains a % operation (the
// amortized-gate signature).
func containsModulo(e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok && b.Op == token.REM {
			found = true
		}
		return !found
	})
	return found
}
