// Package ctxlooptest exercises the ctxloop analyzer: unbounded loops in
// context-taking functions must poll cancellation on every iteration.
package ctxlooptest

import "context"

// badInfinite: for{} with no check anywhere. (true positive)
func badInfinite(ctx context.Context, work chan int) {
	for {
		<-work
	}
}

// badWorklist: condition-only fixpoint loop, check only inside a
// data-dependent branch — the exact bug class. (true positive)
func badWorklist(ctx context.Context, queue []int) {
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if v > 100 {
			if ctx.Err() != nil {
				return
			}
		}
	}
}

// badNestedRange: the inner range loop's check does not vouch for the outer
// unbounded loop — the range may be empty. (true positive)
func badNestedRange(ctx context.Context, batches func() []int) {
	for {
		for range batches() {
			if ctx.Err() != nil {
				return
			}
		}
	}
}

// goodDirect: unconditional ctx.Err() per iteration. (negative)
func goodDirect(ctx context.Context, work chan int) {
	for {
		if ctx.Err() != nil {
			return
		}
		<-work
	}
}

// goodSelectDone: a select with a <-ctx.Done() case polls every iteration.
// (negative)
func goodSelectDone(ctx context.Context, work chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-work:
		}
	}
}

// goodAmortized: the repo's gacCheckInterval idiom — a modulo gate evaluated
// every iteration with the poll on a fixed cadence. (near-miss negative: the
// check is inside an if, but the amortized shape is sanctioned)
func goodAmortized(ctx context.Context, queue []int) error {
	n := 0
	for len(queue) > 0 {
		queue = queue[1:]
		n++
		if n%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
	return nil
}

// pollHelper checks cancellation; callers of it count as checking.
func pollHelper(ctx context.Context) bool {
	return ctx.Err() != nil
}

// pollHelperIndirect checks transitively through pollHelper.
func pollHelperIndirect(ctx context.Context) bool {
	return pollHelper(ctx)
}

// goodViaHelper: the per-iteration check happens inside a helper, found by
// the checker fixpoint. (near-miss negative: no syntactic ctx.Err in the
// loop)
func goodViaHelper(ctx context.Context, work chan int) {
	for {
		if pollHelperIndirect(ctx) {
			return
		}
		<-work
	}
}

// goodBounded: three-clause counting loop is considered bounded. (near-miss
// negative: no check, but the loop has termination structure)
func goodBounded(ctx context.Context, xs []int) int {
	sum := 0
	for i := 0; i < len(xs); i++ {
		sum += xs[i]
	}
	return sum
}

// goodBothBranches: every path through the if checks. (negative)
func goodBothBranches(ctx context.Context, work chan int, flag bool) {
	for {
		if flag {
			if ctx.Err() != nil {
				return
			}
		} else {
			select {
			case <-ctx.Done():
				return
			default:
			}
		}
		<-work
	}
}

// badCapturedCtx: a function literal capturing ctx is analyzed too; its
// unbounded loop without a check is flagged. (true positive)
func badCapturedCtx(ctx context.Context, work chan int) func() {
	return func() {
		for {
			<-work
		}
	}
}

// noCtx: functions without a context parameter are out of scope even with
// unbounded loops. (near-miss negative)
func noCtx(work chan int) {
	for {
		if <-work == 0 {
			return
		}
	}
}
