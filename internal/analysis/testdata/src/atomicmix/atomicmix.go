// Package atomicmixtest exercises the atomicmix analyzer: a struct field
// accessed through sync/atomic must never be read or written plainly.
package atomicmixtest

import "sync/atomic"

type counters struct {
	nodes   int64 // accessed atomically — plain access is a race
	backs   int64 // accessed atomically — plain access is a race
	seed    int64 // never touched atomically; plain access is fine
	done    uint32
	typedOK atomic.Int64 // the typed wrappers make mixing inexpressible
}

func (c *counters) bump() {
	atomic.AddInt64(&c.nodes, 1)
	atomic.AddInt64(&c.backs, 1)
	atomic.StoreUint32(&c.done, 1)
}

func (c *counters) loadAll() (int64, int64, bool) {
	return atomic.LoadInt64(&c.nodes), atomic.LoadInt64(&c.backs),
		atomic.LoadUint32(&c.done) == 1
}

// badPlainRead: the sneaky fast-path read. (true positive)
func badPlainRead(c *counters) int64 {
	return c.nodes
}

// badPlainWrite: resetting without the atomic store. (true positive)
func badPlainWrite(c *counters) {
	c.backs = 0
}

// badCompound: compound assignment is a read and a write. (true positive)
func badCompound(c *counters) {
	c.nodes += 2
}

// badAddressEscape: taking the address outside an atomic call enables
// unchecked plain access. (true positive)
func badAddressEscape(c *counters) *uint32 {
	return &c.done
}

// goodAtomicEverywhere: more atomic calls on the same fields are sanctioned.
// (negative)
func goodAtomicEverywhere(c *counters) {
	atomic.AddInt64(&c.nodes, -1)
	for atomic.LoadUint32(&c.done) == 0 {
		if atomic.CompareAndSwapUint32(&c.done, 0, 1) {
			return
		}
	}
}

// goodUntouchedField: seed is never accessed atomically, so plain access
// carries no mixing hazard. (near-miss negative: sibling field in the same
// struct)
func goodUntouchedField(c *counters) int64 {
	c.seed++
	return c.seed
}

// goodTypedWrapper: atomic.Int64 methods are the only way in. (near-miss
// negative)
func goodTypedWrapper(c *counters) int64 {
	c.typedOK.Add(1)
	return c.typedOK.Load()
}
