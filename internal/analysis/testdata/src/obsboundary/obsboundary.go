// Package obsboundarytest exercises the obsboundary analyzer: obs metric
// recording must happen at call boundaries, never inside loops.
package obsboundarytest

import "csdb/internal/obs"

var (
	rows    = obs.NewCounter("test.rows")
	depth   = obs.NewGauge("test.depth")
	latency = obs.NewHistogram("test.latency")
)

// badIncInLoop: per-element counter bump. (true positive)
func badIncInLoop(xs []int) {
	for range xs {
		rows.Inc()
	}
}

// badManyInLoop: Add, Set and Observe inside a for statement — one
// diagnostic each. (true positives)
func badManyInLoop(n int) {
	for i := 0; i < n; i++ {
		rows.Add(1)
		depth.Set(int64(i))
		latency.Observe(int64(i))
	}
}

// badRegistryInLoop: registry lookups take the registry mutex; hoist them.
// (true positive)
func badRegistryInLoop(names []string) {
	for _, name := range names {
		obs.NewCounter(name).Add(1)
	}
}

// goodTallyAndFlush: the discipline — tally a local, flush once. (negative)
func goodTallyAndFlush(xs []int) {
	var n int64
	for range xs {
		n++
	}
	rows.Add(n)
}

// recordBatch flushes a tally; it records directly but at its own call
// boundary.
func recordBatch(n int64) {
	rows.Add(n)
}

// goodHelperInLoop: calling a helper that records is the helper's business —
// a function is a call boundary. (near-miss negative: lexically a call in a
// loop, but not a direct recording call)
func goodHelperInLoop(batches [][]int) {
	for _, b := range batches {
		recordBatch(int64(len(b)))
	}
}

// goodSpanInLoop: span methods are exempt; per-step spans are the tracer's
// point. (near-miss negative: an obs method call inside a loop)
func goodSpanInLoop(parent *obs.Span, steps []string) {
	for _, s := range steps {
		sp := obs.StartChild(parent, s)
		sp.SetInt("step", 1)
		sp.End()
	}
}

// goodClosureBoundary: a function literal starts a fresh scope — defining a
// recording closure inside a loop is fine; it runs on its own schedule.
// (near-miss negative)
func goodClosureBoundary(xs []int) []func() {
	var fns []func()
	for range xs {
		fns = append(fns, func() {
			rows.Inc()
		})
	}
	return fns
}

// badLoopInClosure: a loop inside a closure is a loop. (true positive)
func badLoopInClosure(xs []int) func() {
	return func() {
		for range xs {
			rows.Inc()
		}
	}
}

// goodRecordThenLoop: recording before the loop body is the boundary shape.
// (negative)
func goodRecordThenLoop(xs []int) {
	rows.Add(int64(len(xs)))
	for range xs {
		_ = xs
	}
}

var outcomes = obs.NewCounterVec("test.outcomes", "kind")

// badVecInLoop: labeled vectors obey the same boundary rule. (true positive)
func badVecInLoop(xs []int) {
	for range xs {
		outcomes.Inc("row")
	}
}

// goodVecFlush: tally locally, flush the labeled series once. (negative)
func goodVecFlush(xs []int) {
	outcomes.Add(int64(len(xs)), "row")
}
