// Package arenaretaintest exercises the arenaretain analyzer: arena row
// views from the kernel's accessors must not be stored in state that
// outlives the call.
package arenaretaintest

import (
	"csdb/internal/csp"
	"csdb/internal/relation"
)

type cache struct {
	rows  []relation.Tuple
	first relation.Tuple
}

var globalRows []relation.Tuple

// badFieldStore: the accessor result lands in a struct field. (true positive)
func badFieldStore(c *cache, r *relation.Relation) {
	c.rows = r.Tuples()
}

// badFieldStoreViaLocal: taint flows through a local before escaping. (true
// positive)
func badFieldStoreViaLocal(c *cache, r *relation.Relation) {
	rows := r.SortedTuples()
	c.rows = rows
}

// badGlobalStore: package-level variables outlive everything. (true positive)
func badGlobalStore(r *relation.Relation) {
	globalRows = r.Tuples()
}

// badElementEscape: one view row, reached by indexing, stored in a field.
// (true positive)
func badElementEscape(c *cache, r *relation.Relation) {
	rows := r.Tuples()
	if len(rows) > 0 {
		c.first = rows[0]
	}
}

// badAppendEscape: append keeps the aliasing rows alive in the field. (true
// positive)
func badAppendEscape(c *cache, r *relation.Relation) {
	c.rows = append(c.rows, r.Tuples()...)
}

// badChannelSend: a channel hands the view to code running after this call.
// (true positive)
func badChannelSend(out chan []relation.Tuple, r *relation.Relation) {
	out <- r.Tuples()
}

// badTableField: csp.Table.Tuples shares the discipline. (true positive)
type tableCache struct{ tuples [][]int }

func badTableField(c *tableCache, t *csp.Table) {
	c.tuples = t.Tuples()
}

// goodLocalUse: reading a view inside the call is the accessor's intended
// use. (negative)
func goodLocalUse(r *relation.Relation) int {
	sum := 0
	for _, row := range r.Tuples() {
		for _, v := range row {
			sum += v
		}
	}
	return sum
}

// goodRowsStore: Rows deep-copies; storing it is safe. (near-miss negative:
// same shape as badFieldStore, different accessor)
func goodRowsStore(c *cache, r *relation.Relation) {
	c.rows = r.Rows()
}

// goodExplicitCopy: copying through a fresh slice launders the taint — the
// copy call's result is not a view. (near-miss negative)
func goodExplicitCopy(c *cache, r *relation.Relation) {
	views := r.Tuples()
	out := make([]relation.Tuple, len(views))
	for i, row := range views {
		out[i] = row.Clone()
	}
	c.rows = out
}

// goodReturnLocal: returning a view hands it up the same call chain; the
// caller's storage decisions are the caller's (and this analyzer's, when it
// checks the caller). (near-miss negative)
func goodReturnLocal(r *relation.Relation) []relation.Tuple {
	return r.Tuples()
}
