// Package sembalancetest exercises the sembalance analyzer: every send on a
// buffered chan struct{} token field (a semaphore acquire) must be released
// on all paths — receive, defer, or handoff via a returned release func.
package sembalancetest

import "errors"

var errClosed = errors.New("gate closed")

type gate struct {
	sem  chan struct{} // token store: made with a capacity
	quit chan struct{} // rendezvous: made without one
}

func newGate(slots int) *gate {
	return &gate{
		sem:  make(chan struct{}, slots),
		quit: make(chan struct{}),
	}
}

func (g *gate) release() { <-g.sem }

// badEarlyReturn acquires a token and leaks it on the error path. (true
// positive: the return inside the if)
func (g *gate) badEarlyReturn(fail bool) error {
	g.sem <- struct{}{}
	if fail {
		return errClosed
	}
	<-g.sem
	return nil
}

// badFallThrough acquires a token and never releases it at all. (true
// positive: reported at the acquire)
func (g *gate) badFallThrough(work func()) {
	g.sem <- struct{}{}
	work()
}

// goodDefer releases on every path via defer, error or not. (negative)
func (g *gate) goodDefer(fail bool) error {
	g.sem <- struct{}{}
	defer g.release()
	if fail {
		return errClosed
	}
	return nil
}

// goodHandoff acquires inside a select and hands the release capability to
// the caller — the admission-gate contract. (near-miss negative: no release
// in this function; the returned method value carries it)
func (g *gate) goodHandoff() (func(), error) {
	select {
	case g.sem <- struct{}{}:
		return g.release, nil
	case <-g.quit:
		return nil, errClosed
	}
}

// goodAllBranches releases explicitly on both sides of a branch. (negative)
func (g *gate) goodAllBranches(direct bool) {
	g.sem <- struct{}{}
	if direct {
		<-g.sem
	} else {
		g.release()
	}
}

// goodQuitSignal sends on the unbuffered quit field: a rendezvous, not a
// token acquisition — out of scope. (near-miss negative: a send on a chan
// struct{} field with no release anywhere)
func (g *gate) goodQuitSignal() {
	g.quit <- struct{}{}
}
