// Package suppresstest exercises the //lint:ignore directive mechanics.
package suppresstest

import "context"

// suppressedAbove: directive on the line above the finding. (suppressed)
func suppressedAbove(ctx context.Context, work chan int) {
	//lint:ignore ctxloop test fixture: loop lifetime is owned by the work channel
	for {
		<-work
	}
}

// suppressedSameLine: directive trailing the flagged line. (suppressed)
func suppressedSameLine(ctx context.Context, work chan int) {
	for { //lint:ignore ctxloop test fixture: same-line placement
		<-work
	}
}

// suppressedStar: * matches every analyzer. (suppressed)
func suppressedStar(ctx context.Context, work chan int) {
	//lint:ignore * test fixture: wildcard suppression
	for {
		<-work
	}
}

// wrongAnalyzer: directive names an analyzer that did not fire here, so the
// ctxloop finding survives. (true positive)
func wrongAnalyzer(ctx context.Context, work chan int) {
	//lint:ignore obsboundary test fixture: names the wrong analyzer
	for {
		<-work
	}
}

// missingReason: a directive without a reason is itself a finding (analyzer
// "lint") and suppresses nothing. (two findings: lint + ctxloop)
func missingReason(ctx context.Context, work chan int) {
	//lint:ignore ctxloop
	for {
		<-work
	}
}

// tooFar: a directive two lines up is out of range. (true positive)
func tooFar(ctx context.Context, work chan int) {
	//lint:ignore ctxloop test fixture: too far from the finding

	for {
		<-work
	}
}
