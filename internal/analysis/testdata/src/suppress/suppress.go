// Package suppresstest exercises the //lint:ignore directive mechanics.
package suppresstest

import (
	"context"
	"sync"
)

// suppressedAbove: directive on the line above the finding. (suppressed)
func suppressedAbove(ctx context.Context, work chan int) {
	//lint:ignore ctxloop test fixture: loop lifetime is owned by the work channel
	for {
		<-work
	}
}

// suppressedSameLine: directive trailing the flagged line. (suppressed)
func suppressedSameLine(ctx context.Context, work chan int) {
	for { //lint:ignore ctxloop test fixture: same-line placement
		<-work
	}
}

// suppressedStar: * matches every analyzer. (suppressed)
func suppressedStar(ctx context.Context, work chan int) {
	//lint:ignore * test fixture: wildcard suppression
	for {
		<-work
	}
}

// wrongAnalyzer: directive names an analyzer that did not fire here, so the
// ctxloop finding survives. (true positive)
func wrongAnalyzer(ctx context.Context, work chan int) {
	//lint:ignore obsboundary test fixture: names the wrong analyzer
	for {
		<-work
	}
}

// missingReason: a directive without a reason is itself a finding (analyzer
// "lint") and suppresses nothing. (two findings: lint + ctxloop)
func missingReason(ctx context.Context, work chan int) {
	//lint:ignore ctxloop
	for {
		<-work
	}
}

// tooFar: a directive two lines up is out of range. (true positive)
func tooFar(ctx context.Context, work chan int) {
	//lint:ignore ctxloop test fixture: too far from the finding

	for {
		<-work
	}
}

// semGate pairs a mutex with a token semaphore so one line can trip two
// analyzers at once.
type semGate struct {
	mu  sync.Mutex
	sem chan struct{}
}

func newSemGate(slots int) *semGate {
	return &semGate{sem: make(chan struct{}, slots)}
}

// commaBoth: the send below trips lockorder (channel send while holding mu)
// and sembalance (token never released) at the same position; one directive
// with a comma-separated analyzer list — spaced, to pin the tolerant parse —
// suppresses both. (suppressed twice)
func (g *semGate) commaBoth() {
	g.mu.Lock()
	defer g.mu.Unlock()
	//lint:ignore lockorder, sembalance test fixture: one directive, two analyzers
	g.sem <- struct{}{}
}

// lintUnsuppressible: a malformed directive is a driver error ("lint"
// pseudo-analyzer) and survives even under a wildcard suppression aimed at
// it — otherwise a reason-less directive could launder itself. The loop is
// out of the wildcard's one-line range, so its finding survives too. (two
// findings: lint + ctxloop)
func lintUnsuppressible(ctx context.Context, work chan int) {
	//lint:ignore * test fixture: tries to silence the driver error below
	//lint:ignore ctxloop
	for {
		<-work
	}
}
