// Package callgraphtest is the call-graph engine's unit-test fixture:
// mutually recursive functions whose summaries must converge over the SCC
// condensation. No analyzer flags anything here (its golden file is empty);
// callgraph_test.go builds the graph directly and asserts on the summaries.
package callgraphtest

import (
	"context"
	"sync"
)

// even/odd: a two-function SCC where only odd polls the context directly —
// the fixpoint must give PollsCtx to both.
func even(ctx context.Context, n int) bool {
	if n == 0 {
		return true
	}
	return odd(ctx, n-1)
}

func odd(ctx context.Context, n int) bool {
	if ctx.Err() != nil {
		return false
	}
	if n == 0 {
		return false
	}
	return even(ctx, n-1)
}

// chainA → chainB → chainC: blocking facts propagate up an acyclic chain.
func chainA(ch chan int) int { return chainB(ch) }

func chainB(ch chan int) int { return chainC(ch) }

func chainC(ch chan int) int { return <-ch }

// pingLock/pongLock: lock acquisition propagates through a mutual recursion
// that only locks on one side.
type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) pingLock(depth int) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	if depth > 0 {
		c.pongLock(depth - 1)
	}
}

func (c *counter) pongLock(depth int) {
	if depth > 0 {
		c.pingLock(depth - 1)
	}
}

// leaf has an empty summary: no polls, no blocks, no locks.
func leaf(n int) int {
	return n + 1
}
