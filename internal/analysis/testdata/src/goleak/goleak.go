// Package goleaktest exercises the goleak analyzer: every go statement needs
// provable termination evidence — a cancellation poll, a quit/jobs channel,
// or a join (result channel / WaitGroup) in the spawner.
package goleaktest

import (
	"context"
	"sync"
)

// badFireAndForget: the literal spins forever with no cancellation signal,
// no channel and no join. (true positive)
func badFireAndForget(counter *int) {
	go func() {
		for i := 0; ; i++ {
			*counter = i
		}
	}()
}

// badUnjoinedResult: the literal sends its result, but nobody in the spawner
// ever receives it — with an unbuffered channel the goroutine blocks
// forever. (true positive)
func badUnjoinedResult(compute func() int) chan int {
	results := make(chan int)
	go func() {
		results <- compute()
	}()
	return results // handed to the caller, but this function never receives
}

// badOpaqueValue: a function value has no resolvable summary; nothing is
// provable. (true positive)
func badOpaqueValue(f func()) {
	go f()
}

// goodCtxPoll: the literal polls ctx every iteration — termination follows
// from cancellation. (negative)
func goodCtxPoll(ctx context.Context, counter *int) {
	go func() {
		for i := 0; ; i++ {
			if ctx.Err() != nil {
				return
			}
			*counter = i
		}
	}()
}

// rangeWorker drains its jobs channel and stops when it is closed.
func rangeWorker(jobs chan int, counter *int) {
	for j := range jobs {
		*counter += j
	}
}

// goodJobsChannel: the named worker ranges over the channel it was handed —
// it terminates when the spawner closes it. (near-miss negative: no ctx, no
// join in this function)
func goodJobsChannel(counter *int) chan int {
	jobs := make(chan int)
	go rangeWorker(jobs, counter)
	return jobs
}

// goodResultJoin: the spawner receives the goroutine's result channel — the
// send completes and the goroutine exits. (negative)
func goodResultJoin(compute func() int) int {
	results := make(chan int)
	go func() {
		results <- compute()
	}()
	return <-results
}

// goodWaitGroup: Done in the goroutine, Wait in the spawner. (negative)
func goodWaitGroup(work []func()) {
	var wg sync.WaitGroup
	for _, f := range work {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f()
		}()
	}
	wg.Wait()
}

// doneHelper is joined through a WaitGroup parameter.
func doneHelper(wg *sync.WaitGroup, f func()) {
	defer wg.Done()
	f()
}

// goodWaitGroupParam: the parameter-index fact (callee Dones its *WaitGroup
// argument) matches the spawner's Wait. (near-miss negative: the Done is one
// call away)
func goodWaitGroupParam(f func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go doneHelper(&wg, f)
	wg.Wait()
}
