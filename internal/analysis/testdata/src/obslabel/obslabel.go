// Package obslabeltest exercises the obslabel analyzer: label values passed
// to obs *Vec metrics must come from fixed enumerable sets.
package obslabeltest

import (
	"fmt"

	"csdb/internal/obs"
)

var (
	hits = obs.NewCounterVec("test.hits", "outcome")
	lat  = obs.NewHistogramVec("test.lat", "route", "status")
)

const okOutcome = "ok"

// goodLiteral: the base case. (negative)
func goodLiteral() {
	hits.Inc("hit")
}

// goodConst: a named constant is as enumerable as a literal. (negative)
func goodConst() {
	hits.Add(2, okOutcome)
}

// goodConstExpr: constant folding makes this a constant expression.
// (near-miss negative: not lexically a literal)
func goodConstExpr() {
	hits.Inc("o" + "k")
}

// routeLabel is a pure-literal helper: every return is a literal, so the
// label set is readable off the function. (negative when used)
func routeLabel(r int) string {
	switch r {
	case 0:
		return "tree"
	case 1:
		return "acyclic"
	}
	return "hard"
}

// goodHelper: labels via a pure-literal helper, mixed with a literal.
// (negative)
func goodHelper(r int) {
	lat.Observe(5, routeLabel(r), "200")
}

// goodBranchVar: a local variable only ever assigned literals. (near-miss
// negative: an identifier, but its value set is two literals)
func goodBranchVar(won bool) {
	outcome := "loss"
	if won {
		outcome = "win"
	}
	hits.Inc(outcome)
}

// badParam: a caller-controlled parameter is not an enumerable set.
// (true positive)
func badParam(outcome string) {
	hits.Inc(outcome)
}

// formatted builds its result with Sprintf — unbounded. (positive when used)
func formatted(r int) string {
	if r == 0 {
		return "zero"
	}
	return fmt.Sprintf("route-%d", r)
}

// badFormattedHelper: a helper with a non-literal return is rejected.
// (true positive)
func badFormattedHelper(r int) {
	hits.Inc(formatted(r))
}

// echo returns its switch-matched argument. The value set IS closed, but
// the analyzer is syntactic on purpose: each case must return its own
// literal. (near-miss positive when used)
func echo(s string) string {
	switch s {
	case "a", "b":
		return s
	}
	return "other"
}

// badEchoHelper: rejected because echo's first return is a parameter.
// (true positive)
func badEchoHelper(s string) {
	hits.Inc(echo(s))
}

// badDataVar: a local variable assigned from data. (true positive)
func badDataVar(names []string) {
	v := names[0]
	hits.Inc(v)
}

// badValueArgOnly: the observed value is arbitrary — only labels are
// checked, so the bad expression in position 0 passes but the appended
// parameter label does not. (true positive on the label, not the value)
func badValueArgOnly(n int64, status string) {
	lat.Observe(n*2, "hard", status)
}

// badAddrTaken: taking the variable's address makes later mutations
// untrackable. (true positive)
func badAddrTaken(ps []*string) {
	outcome := "win"
	ps = append(ps, &outcome)
	_ = ps
	hits.Inc(outcome)
}
