// Package lockordertest exercises the lockorder analyzer: named mutexes must
// be acquired in one global order, and no blocking operation may run while a
// lock is held.
package lockordertest

import "sync"

type store struct {
	mu   sync.Mutex
	data map[string]int
}

type index struct {
	mu   sync.Mutex
	keys []string
}

type journal struct {
	mu      sync.Mutex
	entries []string
}

// lockStoreThenIndex orders store.mu before index.mu.
func lockStoreThenIndex(s *store, i *index, k string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i.mu.Lock()
	i.keys = append(i.keys, k)
	i.mu.Unlock()
	s.data[k] = len(i.keys)
}

// badIndexThenStore acquires the same pair in the opposite order — together
// with lockStoreThenIndex this is a deadlock-capable cycle, reported once by
// the global cycle detector. (true positive: one cycle finding)
func badIndexThenStore(s *store, i *index, k string) {
	i.mu.Lock()
	defer i.mu.Unlock()
	s.mu.Lock()
	s.data[k] = 0
	s.mu.Unlock()
	i.keys = append(i.keys, k)
}

// badRecvUnderLock blocks on a channel receive while holding store.mu: every
// other critical section now waits on the channel too. (true positive)
func badRecvUnderLock(s *store, updates chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data["latest"] = <-updates
}

// awaitFlush blocks on its input channel; callers inherit that through its
// call-graph summary.
func awaitFlush(in chan string) string {
	return <-in
}

// badBlockingCallee calls a (transitively) blocking helper while holding the
// lock — the block is one call away but just as real. (true positive)
func badBlockingCallee(s *store, in chan string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data[awaitFlush(in)] = 1
}

// goodUnlockBeforeRecv releases the lock before blocking. (near-miss
// negative: same shape as badRecvUnderLock with the unlock hoisted)
func goodUnlockBeforeRecv(s *store, updates chan int) {
	s.mu.Lock()
	n := len(s.data)
	s.mu.Unlock()
	v := <-updates
	_ = n
	_ = v
}

// goodConsistentOrder takes journal.mu before store.mu everywhere it needs
// both — one more edge, no cycle. (negative)
func goodConsistentOrder(s *store, j *journal, k string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	s.mu.Lock()
	s.data[k] = len(j.entries)
	s.mu.Unlock()
	j.entries = append(j.entries, k)
}

// goodLocalMutex: a function-local mutex has no cross-function identity and
// is out of scope. (near-miss negative: a receive happens under a lock, but
// not a named one)
func goodLocalMutex(updates chan int) int {
	var mu sync.Mutex
	mu.Lock()
	defer mu.Unlock()
	return <-updates
}

// goodSelectWithDefault polls without blocking while the lock is held.
// (near-miss negative: a select under a lock, but it cannot block)
func goodSelectWithDefault(s *store, updates chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-updates:
		s.data["latest"] = v
	default:
	}
}
