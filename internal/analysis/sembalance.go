package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// sembalance: every semaphore-token acquire must be released on all paths.
//
// The pattern under analysis is the buffered chan struct{} token store — the
// serve admission gate and any future worker-slot limiter: a struct field of
// type chan struct{} that is somewhere initialized with make(chan struct{},
// capacity). Sending on such a field acquires a token; receiving from it
// releases one. The capacity argument is the discriminator: an unbuffered
// chan struct{} field is a quit/broadcast channel, where sends are
// rendezvous, not resource acquisitions, and stays out of scope.
//
// For each acquire (a send on a token field, plain or as a select case) the
// analyzer walks the statement paths that follow and requires every one of
// them to release before leaving the function, where a release is:
//
//   - a receive from the same field, directly or via a callee whose
//     call-graph summary releases it (the a.release() helper);
//   - a defer that performs such a receive or calls such a callee;
//   - a return whose results hand the release capability to the caller — a
//     method value or function literal that performs the release (the
//     `return a.release, nil` handoff contract: the caller must call it).
//
// A return that does none of these, or a fall-through to the end of the
// function, leaks the token and shrinks the semaphore's effective capacity
// forever. Loop bodies are walked for leaky returns but never count as
// guaranteed releases (a loop may run zero times).
var sembalanceAnalyzer = &Analyzer{
	Name:         "sembalance",
	Doc:          "semaphore-token acquires (buffered chan struct{} sends) must be released on every path: receive, defer, or handoff via returned release func",
	Prepare:      prepareSembalance,
	CheckPackage: runSembalance,
}

// sembalanceFacts is the set of token fields: chan struct{} struct fields
// initialized with a make that has a capacity argument. Read-only after
// Prepare.
type sembalanceFacts struct {
	tokenFields map[types.Object]bool
}

func prepareSembalance(pass *Pass) any {
	facts := &sembalanceFacts{tokenFields: make(map[types.Object]bool)}
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CompositeLit:
					// Admission{sem: make(chan struct{}, cap), ...}
					for _, el := range n.Elts {
						kv, ok := el.(*ast.KeyValueExpr)
						if !ok || !isBufferedTokenMake(pkg, kv.Value) {
							continue
						}
						key, ok := kv.Key.(*ast.Ident)
						if !ok {
							continue
						}
						if obj := pkg.Info.Uses[key]; obj != nil && isTokenChanField(pkg, obj) {
							facts.tokenFields[obj] = true
						}
					}
				case *ast.AssignStmt:
					// s.sem = make(chan struct{}, cap)
					for i, lhs := range n.Lhs {
						rhs := assignedExpr(n.Lhs, n.Rhs, i)
						if rhs == nil || !isBufferedTokenMake(pkg, rhs) {
							continue
						}
						sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
						if !ok {
							continue
						}
						if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.FieldVal && isTokenChanField(pkg, s.Obj()) {
							facts.tokenFields[s.Obj()] = true
						}
					}
				}
				return true
			})
		}
	}
	return facts
}

// isBufferedTokenMake matches make(chan struct{}, capacity) — the capacity
// argument is what makes the channel a token store rather than a
// rendezvous/quit channel.
func isBufferedTokenMake(pkg *Package, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := pkg.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
		return false
	}
	tv, ok := pkg.Info.Types[call.Args[0]]
	if !ok {
		return false
	}
	ch, ok := tv.Type.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

func runSembalance(pass *Pass, pkg *Package, prep any) {
	facts := prep.(*sembalanceFacts)
	if len(facts.tokenFields) == 0 {
		return
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				c := &semCheck{pass: pass, pkg: pkg, facts: facts}
				c.visit(fd.Body.List, nil)
			}
		}
	}
}

// semCheck walks one function, finding acquire sites and checking the paths
// that follow each one.
type semCheck struct {
	pass  *Pass
	pkg   *Package
	facts *sembalanceFacts
	obj   types.Object // the token field of the acquire under check
}

// tokenFieldOf resolves a send target to a token field, or nil.
func (c *semCheck) tokenFieldOf(chanExpr ast.Expr) types.Object {
	obj := chanOperandObj(c.pkg, chanExpr)
	if obj != nil && c.facts.tokenFields[obj] {
		return obj
	}
	return nil
}

// visit traverses a statement list looking for acquire sites. tails holds
// the statement lists that execute after this one (innermost first) — the
// continuation an acquire's release must be found in.
func (c *semCheck) visit(list []ast.Stmt, tails [][]ast.Stmt) {
	for i, s := range list {
		rest := list[i+1:]
		cont := append([][]ast.Stmt{rest}, tails...)
		switch s := s.(type) {
		case *ast.SendStmt:
			if obj := c.tokenFieldOf(s.Chan); obj != nil {
				c.checkAcquire(obj, s.Pos(), cont)
			}
		case *ast.SelectStmt:
			for _, clause := range s.Body.List {
				cc := clause.(*ast.CommClause)
				if send, ok := cc.Comm.(*ast.SendStmt); ok {
					if obj := c.tokenFieldOf(send.Chan); obj != nil {
						c.checkAcquire(obj, send.Pos(), append([][]ast.Stmt{cc.Body}, cont...))
					}
				}
				c.visit(cc.Body, cont)
			}
		case *ast.BlockStmt:
			c.visit(s.List, cont)
		case *ast.IfStmt:
			c.visit(s.Body.List, cont)
			if s.Else != nil {
				c.visit([]ast.Stmt{s.Else}, cont)
			}
		case *ast.ForStmt:
			c.visit(s.Body.List, cont)
		case *ast.RangeStmt:
			c.visit(s.Body.List, cont)
		case *ast.SwitchStmt:
			for _, clause := range s.Body.List {
				c.visit(clause.(*ast.CaseClause).Body, cont)
			}
		case *ast.TypeSwitchStmt:
			for _, clause := range s.Body.List {
				c.visit(clause.(*ast.CaseClause).Body, cont)
			}
		case *ast.LabeledStmt:
			c.visit([]ast.Stmt{s.Stmt}, cont)
		}
	}
}

// checkAcquire verifies one acquire: every path through the continuation
// must release obj (or hand the release to the caller) before leaving the
// function. Leaky returns are reported at the return; a leaky fall-through
// is reported at the acquire.
func (c *semCheck) checkAcquire(obj types.Object, acquirePos token.Pos, cont [][]ast.Stmt) {
	saved := c.obj
	c.obj = obj
	defer func() { c.obj = saved }()

	released, diverged := false, false
	for _, list := range cont {
		if released || diverged {
			break
		}
		released, diverged = c.walkList(list, released)
	}
	if !released && !diverged {
		c.pass.Reportf(acquirePos, "semaphore token acquired on %s is not released on the fall-through path (receive it back, defer the release, or return a release func)", c.pass.Graph.LockName(obj))
	}
}

// walkList processes one statement list. released says a release already
// happened on this path. It returns the state at the end of the list:
// released' (release guaranteed on fall-through) and diverged (no path
// falls through — every one returned).
func (c *semCheck) walkList(list []ast.Stmt, released bool) (bool, bool) {
	for _, s := range list {
		if released {
			return true, false
		}
		switch s := s.(type) {
		case *ast.ReturnStmt:
			if !c.returnCarriesRelease(s) {
				c.pass.Reportf(s.Pos(), "return leaks the semaphore token acquired on %s (release before returning, or return a release func)", c.pass.Graph.LockName(c.obj))
			}
			return released, true
		case *ast.DeferStmt:
			if c.deferReleases(s) {
				released = true
			}
		case *ast.BlockStmt:
			var div bool
			released, div = c.walkList(s.List, released)
			if div {
				return released, true
			}
		case *ast.IfStmt:
			tR, tD := c.walkList(s.Body.List, released)
			eR, eD := released, false
			if s.Else != nil {
				eR, eD = c.walkList([]ast.Stmt{s.Else}, released)
			}
			switch {
			case tD && eD:
				return true, true
			case tD:
				released = eR
			case eD:
				released = tR
			default:
				released = tR && eR
			}
		case *ast.SelectStmt:
			// The select blocks until one case runs: release is guaranteed
			// when every case guarantees it (or returns having handled it).
			all, allDiverge := len(s.Body.List) > 0, len(s.Body.List) > 0
			for _, clause := range s.Body.List {
				r, d := c.walkList(clause.(*ast.CommClause).Body, released)
				if !d {
					allDiverge = false
				}
				if !r && !d {
					all = false
				}
			}
			if allDiverge {
				return true, true
			}
			released = released || all
		case *ast.SwitchStmt, *ast.TypeSwitchStmt:
			var clauses []*ast.CaseClause
			var body *ast.BlockStmt
			if sw, ok := s.(*ast.SwitchStmt); ok {
				body = sw.Body
			} else {
				body = s.(*ast.TypeSwitchStmt).Body
			}
			hasDefault := false
			for _, clause := range body.List {
				cc := clause.(*ast.CaseClause)
				clauses = append(clauses, cc)
				if cc.List == nil {
					hasDefault = true
				}
			}
			all := hasDefault
			for _, cc := range clauses {
				r, d := c.walkList(cc.Body, released)
				if !r && !d {
					all = false
				}
			}
			released = released || all
		case *ast.ForStmt:
			// Walk for leaky returns; a loop body never guarantees a release
			// (zero iterations).
			c.walkList(s.Body.List, released)
		case *ast.RangeStmt:
			c.walkList(s.Body.List, released)
		case *ast.LabeledStmt:
			var div bool
			released, div = c.walkList([]ast.Stmt{s.Stmt}, released)
			if div {
				return released, true
			}
		default:
			if c.stmtReleases(s) {
				released = true
			}
		}
	}
	return released, false
}

// stmtReleases reports whether a simple statement unconditionally releases
// the token: a receive from the field, or a call whose summary releases it.
func (c *semCheck) stmtReleases(s ast.Stmt) bool {
	found := false
	inspectSkippingFuncLits(s, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && chanOperandObj(c.pkg, n.X) == c.obj {
				found = true
			}
		case *ast.CallExpr:
			if c.calleeReleases(calleeFunc(c.pkg, n)) {
				found = true
			}
		}
		return !found
	})
	return found
}

// calleeReleases reports whether fn's transitive summary receives from the
// token field.
func (c *semCheck) calleeReleases(fn *types.Func) bool {
	sum := c.pass.Graph.Summary(fn)
	return sum != nil && sum.Releases[c.obj]
}

// deferReleases matches defer <release>() and defer func() { <-field }().
func (c *semCheck) deferReleases(s *ast.DeferStmt) bool {
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		return c.litReleases(lit)
	}
	return c.calleeReleases(calleeFunc(c.pkg, s.Call))
}

// litReleases reports whether a function literal's body performs the release.
func (c *semCheck) litReleases(lit *ast.FuncLit) bool {
	found := false
	inspectSkippingFuncLits(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && chanOperandObj(c.pkg, n.X) == c.obj {
				found = true
			}
		case *ast.CallExpr:
			if c.calleeReleases(calleeFunc(c.pkg, n)) {
				found = true
			}
		}
		return !found
	})
	return found
}

// returnCarriesRelease reports whether any of the return's results hands the
// release capability to the caller: a method/function value whose summary
// releases the field, or a function literal that does.
func (c *semCheck) returnCarriesRelease(ret *ast.ReturnStmt) bool {
	for _, res := range ret.Results {
		switch res := ast.Unparen(res).(type) {
		case *ast.FuncLit:
			if c.litReleases(res) {
				return true
			}
		case *ast.SelectorExpr:
			if fn, ok := c.pkg.Info.Uses[res.Sel].(*types.Func); ok && c.calleeReleases(fn) {
				return true
			}
		case *ast.Ident:
			if fn, ok := c.pkg.Info.Uses[res].(*types.Func); ok && c.calleeReleases(fn) {
				return true
			}
		}
	}
	return false
}
