package analysis

import (
	"go/ast"
	"go/types"
)

// atomicmix: a struct field accessed through sync/atomic must never be read
// or written plainly.
//
// Mixing atomic and plain access to the same word is a data race even when it
// "works" on amd64: the compiler may tear, cache or reorder the plain access,
// and the race detector only catches the interleavings the test happens to
// schedule. The engine's hot flags and counters (solver node counts, the obs
// enabled bit before it moved to atomic.Bool) are exactly the fields where a
// sneaky plain fast-path read gets added later.
//
// Mechanics: pass one collects every struct field that appears as the
// pointer argument of a sync/atomic call (atomic.AddInt64(&s.n, 1),
// atomic.LoadUint32(&s.flag), ...) across all target packages. Pass two flags
// every other selector expression resolving to one of those field objects —
// reads, writes, compound assignments — anywhere in the target set. Taking
// the field's address again for another atomic call is sanctioned; taking it
// for anything else is flagged (the pointer enables unchecked plain access).
// Fields of the typed atomic wrappers (atomic.Int64, atomic.Bool, ...) never
// reach this analyzer: their value is private to sync/atomic, which is not a
// target package, and their API makes plain access inexpressible.
var atomicmixAnalyzer = &Analyzer{
	Name:         "atomicmix",
	Doc:          "struct fields accessed via sync/atomic must not also be accessed plainly",
	Prepare:      prepareAtomicmix,
	CheckPackage: runAtomicmix,
}

// atomicmixFacts is the cross-package pass-1 result: fields used atomically,
// and the selector nodes sanctioned by appearing inside the atomic calls
// themselves. Read-only during package checks.
type atomicmixFacts struct {
	atomicFields map[types.Object]bool
	sanctioned   map[*ast.SelectorExpr]bool
}

func prepareAtomicmix(pass *Pass) any {
	facts := &atomicmixFacts{
		atomicFields: make(map[types.Object]bool),
		sanctioned:   make(map[*ast.SelectorExpr]bool),
	}
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isSyncAtomicCall(pkg, call) {
					return true
				}
				for _, arg := range call.Args {
					u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok {
						continue
					}
					sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if obj := fieldObject(pkg, sel); obj != nil {
						facts.atomicFields[obj] = true
						facts.sanctioned[sel] = true
					}
				}
				return true
			})
		}
	}
	return facts
}

// runAtomicmix is pass 2: every other access to an atomic field is a mix.
func runAtomicmix(pass *Pass, pkg *Package, prep any) {
	facts := prep.(*atomicmixFacts)
	if len(facts.atomicFields) == 0 {
		return
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || facts.sanctioned[sel] {
				return true
			}
			obj := fieldObject(pkg, sel)
			if obj != nil && facts.atomicFields[obj] {
				pass.Reportf(sel.Pos(), "plain access to field %s, which is accessed with sync/atomic elsewhere; use atomic operations everywhere", obj.Name())
			}
			return true
		})
	}
}

// isSyncAtomicCall matches calls to package-level sync/atomic functions.
func isSyncAtomicCall(pkg *Package, call *ast.CallExpr) bool {
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// fieldObject resolves a selector to the struct field object it denotes, or
// nil for methods, package selectors and qualified identifiers.
func fieldObject(pkg *Package, sel *ast.SelectorExpr) types.Object {
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj()
}
