package analysis

import (
	"flag"
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current analyzer output")

// Testdata fixtures are loaded once per test binary: the load type-checks the
// fixtures' whole dependency closure (context, sync/atomic, the obs and
// relation packages, ...), which dominates the suite's runtime.
var (
	testdataOnce sync.Once
	testdataRes  *Loaded
	testdataErr  error
)

func loadTestdata(t *testing.T) *Loaded {
	t.Helper()
	testdataOnce.Do(func() {
		testdataRes, testdataErr = Load(".", "./testdata/src/...")
	})
	if testdataErr != nil {
		t.Fatalf("loading testdata fixtures: %v", testdataErr)
	}
	return testdataRes
}

// TestGolden runs the full suite over every fixture package and compares the
// diagnostics, with filenames relativized to testdata/src, against the
// per-package golden files. Regenerate with `go test -run Golden -update`.
func TestGolden(t *testing.T) {
	loaded := loadTestdata(t)
	diags := Run(loaded, All())

	srcRoot, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	byPkg := make(map[string][]string)
	for _, d := range diags {
		rel, err := filepath.Rel(srcRoot, d.Pos.Filename)
		if err != nil || strings.HasPrefix(rel, "..") {
			t.Fatalf("diagnostic outside testdata/src: %s", d)
		}
		rel = filepath.ToSlash(rel)
		pkg := strings.SplitN(rel, "/", 2)[0]
		line := strings.TrimPrefix(d.String(), srcRoot+string(filepath.Separator))
		byPkg[pkg] = append(byPkg[pkg], filepath.ToSlash(line))
	}

	entries, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		pkg := e.Name()
		t.Run(pkg, func(t *testing.T) {
			got := strings.Join(byPkg[pkg], "\n") + "\n"
			goldenPath := filepath.Join("testdata", "golden", pkg+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("reading golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch for %s\n-- got --\n%s-- want --\n%s", pkg, got, want)
			}
		})
	}
}

// TestGoldenHasPositivesAndNegatives pins the fixture discipline: every
// analyzer's fixture package must produce at least one finding (a true
// positive exists) and must flag strictly fewer sites than it declares
// functions (at least one near-miss negative stays silent).
func TestGoldenHasPositivesAndNegatives(t *testing.T) {
	loaded := loadTestdata(t)
	diags := Run(loaded, All())
	findings := make(map[string]int)
	for _, d := range diags {
		findings[filepath.Base(filepath.Dir(d.Pos.Filename))]++
	}
	funcs := make(map[string]int)
	for _, pkg := range loaded.Targets {
		name := filepath.Base(pkg.Dir)
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					funcs[name]++
				}
			}
		}
	}
	for _, a := range All() {
		if findings[a.Name] == 0 {
			t.Errorf("fixture package %s produced no findings for its analyzer", a.Name)
		}
		if findings[a.Name] >= funcs[a.Name] {
			t.Errorf("fixture package %s: %d findings over %d functions — no near-miss negatives survive",
				a.Name, findings[a.Name], funcs[a.Name])
		}
	}
}

// TestSuppression pins the //lint:ignore contract on the suppress fixture:
// correctly placed directives silence the finding, a wrong-analyzer or
// out-of-range directive does not, and a reason-less directive is itself
// reported.
func TestSuppression(t *testing.T) {
	loaded := loadTestdata(t)
	diags := Run(loaded, All())
	var inSuppress []Diagnostic
	for _, d := range diags {
		if filepath.Base(filepath.Dir(d.Pos.Filename)) == "suppress" {
			inSuppress = append(inSuppress, d)
		}
	}
	byAnalyzer := make(map[string]int)
	for _, d := range inSuppress {
		byAnalyzer[d.Analyzer]++
	}
	// wrongAnalyzer, missingReason, tooFar and lintUnsuppressible leak
	// through; the three suppressed* functions and commaBoth must not.
	if got := byAnalyzer["ctxloop"]; got != 4 {
		t.Errorf("suppress fixture: want 4 surviving ctxloop findings, got %d:\n%v", got, inSuppress)
	}
	if got := byAnalyzer["lint"]; got != 2 {
		t.Errorf("suppress fixture: want 2 malformed-directive findings, got %d:\n%v", got, inSuppress)
	}
	if len(inSuppress) != 6 {
		t.Errorf("suppress fixture: want 6 findings total, got %d:\n%v", len(inSuppress), inSuppress)
	}
}

// TestCommaListSuppression pins the comma-separated analyzer list: commaBoth
// trips lockorder and sembalance on the same line, and the single
// `//lint:ignore lockorder, sembalance reason` directive above it must mark
// both findings suppressed (regression for one-directive-per-analyzer).
func TestCommaListSuppression(t *testing.T) {
	loaded := loadTestdata(t)
	suppressed := make(map[string]bool)
	for _, f := range RunDetailed(loaded, All()) {
		if filepath.Base(filepath.Dir(f.Pos.Filename)) == "suppress" && f.Suppressed {
			suppressed[f.Analyzer] = true
		}
	}
	for _, want := range []string{"lockorder", "sembalance"} {
		if !suppressed[want] {
			t.Errorf("commaBoth: no suppressed %s finding — the comma-list directive did not match it", want)
		}
	}
}

// TestSplitDirective pins the directive parser on the comma/space variants.
func TestSplitDirective(t *testing.T) {
	cases := []struct {
		in     string
		names  []string
		reason string
	}{
		{" ctxloop reason here", []string{"ctxloop"}, "reason here"},
		{" goleak,lockorder the reason", []string{"goleak", "lockorder"}, "the reason"},
		{" goleak, lockorder the reason", []string{"goleak", "lockorder"}, "the reason"},
		{" goleak , lockorder r", []string{"goleak", "lockorder"}, "r"},
		{" * wildcard reason", []string{"*"}, "wildcard reason"},
		{" ctxloop", []string{"ctxloop"}, ""},
		{" ctxloop,", []string{"ctxloop"}, ""},
		{"", nil, ""},
	}
	for _, c := range cases {
		names, reason := splitDirective(c.in)
		if strings.Join(names, "|") != strings.Join(c.names, "|") || reason != c.reason {
			t.Errorf("splitDirective(%q) = %v, %q; want %v, %q", c.in, names, reason, c.names, c.reason)
		}
	}
}

// TestByName covers analyzer selection, including the error path.
func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("ByName(\"\") = %v, %v; want the full suite", all, err)
	}
	two, err := ByName("ctxloop, atomicmix")
	if err != nil || len(two) != 2 || two[0].Name != "ctxloop" || two[1].Name != "atomicmix" {
		t.Fatalf("ByName(\"ctxloop, atomicmix\") = %v, %v", two, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(\"nosuch\") succeeded; want error")
	}
}

// TestSelectedAnalyzers verifies Run honors the analyzer subset: with only
// atomicmix selected, no ctxloop findings appear.
func TestSelectedAnalyzers(t *testing.T) {
	loaded := loadTestdata(t)
	only, err := ByName("atomicmix")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run(loaded, only) {
		if d.Analyzer != "atomicmix" && d.Analyzer != "lint" {
			t.Errorf("unexpected analyzer %s in filtered run: %s", d.Analyzer, d)
		}
	}
}
