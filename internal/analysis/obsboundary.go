package analysis

import (
	"go/ast"
	"go/types"
)

// obsboundary: metric recording must happen at call boundaries, never inside
// loops.
//
// The observability layer's contract (internal/obs package comment, PR-3) is
// that instrumented packages tally effort in locals and flush once per
// operator call, so the disabled-mode cost is a handful of atomic loads per
// call — never per row, per node or per revision. This analyzer enforces the
// lexical half of that contract: a call that records into the shared
// registry — Counter.Add/Inc, Gauge.Set/Add, Histogram.Observe — or that
// takes the registry mutex — obs.NewCounter/NewGauge/NewHistogram and the
// Registry lookup methods — must not appear inside a for or range statement.
//
// Span methods are exempt: tracing is off by default, span creation sites
// already gate on one atomic load, and per-step spans (join-plan steps,
// propagation waves) are the tracer's whole point.
//
// The check is lexical and per function: recording inside a function that is
// itself called from a loop is the callee's business (a function is a call
// boundary — that is the discipline). Function literals likewise start a
// fresh scope: a closure defined in a loop may run once, and a loop inside a
// closure is a loop.
var obsboundaryAnalyzer = &Analyzer{
	Name:         "obsboundary",
	Doc:          "obs metric recording is forbidden inside loops; tally locals and flush at the call boundary",
	CheckPackage: runObsboundary,
}

// obsPkgPath is the observability package whose recording API is gated.
const obsPkgPath = "csdb/internal/obs"

// obsRecordingMethods lists the registry-writing methods per receiver type.
// The labeled vectors are held to the same boundary discipline as the plain
// instruments: one series lookup plus an atomic write per call.
var obsRecordingMethods = map[string]map[string]bool{
	"Counter":      {"Add": true, "Inc": true},
	"Gauge":        {"Set": true, "Add": true},
	"Histogram":    {"Observe": true},
	"CounterVec":   {"Add": true, "Inc": true},
	"HistogramVec": {"Observe": true},
	"Registry":     {"Counter": true, "Gauge": true, "Histogram": true, "CounterVec": true, "HistogramVec": true},
}

// obsRecordingFuncs lists the package-level registry entry points.
var obsRecordingFuncs = map[string]bool{
	"NewCounter": true, "NewGauge": true, "NewHistogram": true,
	"NewCounterVec": true, "NewHistogramVec": true,
}

func runObsboundary(pass *Pass, pkg *Package, _ any) {
	if pkg.Path == obsPkgPath {
		return // the layer itself is not an instrumentation site
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkObsFunc(pass, pkg, fd.Body)
			}
		}
	}
}

// checkObsFunc walks one function scope tracking loop depth; function
// literals recurse with a fresh depth of zero.
func checkObsFunc(pass *Pass, pkg *Package, body *ast.BlockStmt) {
	var walk func(n ast.Node, loopDepth int)
	walk = func(n ast.Node, loopDepth int) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				walk(n.Body, 0)
				return false
			case *ast.ForStmt:
				if n.Init != nil {
					walk(n.Init, loopDepth)
				}
				if n.Cond != nil {
					walk(n.Cond, loopDepth)
				}
				if n.Post != nil {
					walk(n.Post, loopDepth)
				}
				walk(n.Body, loopDepth+1)
				return false
			case *ast.RangeStmt:
				if n.X != nil {
					walk(n.X, loopDepth)
				}
				walk(n.Body, loopDepth+1)
				return false
			case *ast.CallExpr:
				if loopDepth > 0 {
					if name := obsRecordingCallName(pkg, n); name != "" {
						pass.Reportf(n.Pos(), "obs recording call %s inside a loop; tally a local and flush once at the call boundary", name)
					}
				}
			}
			return true
		})
	}
	walk(body, 0)
}

// obsRecordingCallName returns a human-readable name when the call records
// into the obs registry, or "".
func obsRecordingCallName(pkg *Package, call *ast.CallExpr) string {
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != obsPkgPath {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		named := namedRecv(recv.Type())
		if named == nil {
			return ""
		}
		if methods, ok := obsRecordingMethods[named.Obj().Name()]; ok && methods[fn.Name()] {
			return "obs." + named.Obj().Name() + "." + fn.Name()
		}
		return ""
	}
	if obsRecordingFuncs[fn.Name()] {
		return "obs." + fn.Name()
	}
	return ""
}

// namedRecv unwraps a method receiver type to its named type.
func namedRecv(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
