package pebble

import (
	"math/rand"
	"testing"

	"csdb/internal/csp"
	"csdb/internal/structure"
)

func TestPartialHomHelpers(t *testing.T) {
	f := PartialHom{{0, 1}, {2, 0}}
	if f.Key() != "0:1;2:0" {
		t.Fatalf("Key = %q", f.Key())
	}
	if b, ok := f.Lookup(2); !ok || b != 0 {
		t.Fatal("Lookup broken")
	}
	if _, ok := f.Lookup(1); ok {
		t.Fatal("phantom Lookup")
	}
	g := f.Extend(1, 5)
	if g.Key() != "0:1;1:5;2:0" {
		t.Fatalf("Extend not sorted: %q", g.Key())
	}
	if f.Key() != "0:1;2:0" {
		t.Fatal("Extend mutated receiver")
	}
	r := g.Without(1)
	if r.Key() != f.Key() {
		t.Fatalf("Without = %q", r.Key())
	}
	m := FromMap(map[int]int{3: 1, 0: 2})
	if m.Key() != "0:2;3:1" {
		t.Fatalf("FromMap = %q", m.Key())
	}
	if got := m.AsMap(); got[3] != 1 || got[0] != 2 || len(got) != 2 {
		t.Fatalf("AsMap = %v", got)
	}
}

func TestLargestStrategyValidation(t *testing.T) {
	a := structure.Cycle(3)
	if _, err := LargestStrategy(a, a, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	other := structure.MustNew(structure.MustVocabulary(structure.Symbol{Name: "F", Arity: 2}), 2)
	if _, err := LargestStrategy(a, other, 2); err == nil {
		t.Fatal("vocabulary mismatch accepted")
	}
}

// If a homomorphism A -> B exists, the Duplicator wins the k-pebble game for
// every k: the restrictions of the homomorphism form a winning strategy.
func TestHomomorphismImpliesDuplicatorWins(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		a := randomGraph(rng, 3+rng.Intn(3), 0.4)
		b := randomGraph(rng, 2+rng.Intn(3), 0.5)
		if !csp.HomomorphismExists(a, b) {
			continue
		}
		for k := 1; k <= 3; k++ {
			win, err := DuplicatorWins(a, b, k)
			if err != nil {
				t.Fatalf("DuplicatorWins: %v", err)
			}
			if !win {
				t.Fatalf("trial %d: hom exists but Spoiler wins %d-pebble game", trial, k)
			}
		}
	}
}

// Spoiler winning with k pebbles implies Spoiler wins with more pebbles.
func TestMonotonicityInK(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		a := randomGraph(rng, 3+rng.Intn(3), 0.5)
		b := randomGraph(rng, 2+rng.Intn(2), 0.5)
		prevDupWins := true
		for k := 1; k <= 4; k++ {
			win, err := DuplicatorWins(a, b, k)
			if err != nil {
				t.Fatal(err)
			}
			if win && !prevDupWins {
				t.Fatalf("trial %d: Duplicator wins k=%d after losing k=%d", trial, k, k-1)
			}
			prevDupWins = win
		}
	}
}

// The classical 2-colorability case: on A vs K2, the Spoiler wins the
// 3-pebble game exactly when A is not 2-colorable (¬CSP(K2) is expressible
// in Datalog with few variables; odd cycles are the witnesses).
func TestK2GameMatchesBipartiteness(t *testing.T) {
	k2 := structure.Clique(2)
	cases := []struct {
		name      string
		a         *structure.Structure
		bipartite bool
	}{
		{"C4", structure.Cycle(4), true},
		{"C5", structure.Cycle(5), false},
		{"C6", structure.Cycle(6), true},
		{"C7", structure.Cycle(7), false},
		{"P5", structure.Path(5), true},
		{"K3", structure.Clique(3), false},
	}
	for _, c := range cases {
		spoiler, err := SpoilerWins(c.a, k2, 3)
		if err != nil {
			t.Fatal(err)
		}
		if spoiler == c.bipartite {
			t.Fatalf("%s: SpoilerWins(3) = %v, bipartite = %v", c.name, spoiler, c.bipartite)
		}
	}
}

// With only 2 pebbles the Duplicator survives on odd cycles vs K2 (2-pebble
// games cannot detect odd cycles of length > 3: the Duplicator can always
// keep the two pebbled images adjacent).
func TestTwoPebblesTooWeakForOddCycles(t *testing.T) {
	k2 := structure.Clique(2)
	win, err := DuplicatorWins(structure.Cycle(5), k2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !win {
		t.Fatal("Duplicator should win the 2-pebble game on C5 vs K2")
	}
}

// Spoiler wins implies no homomorphism (the contrapositive of
// TestHomomorphismImpliesDuplicatorWins), checked exhaustively.
func TestSpoilerWinsImpliesNoHomomorphism(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 40; trial++ {
		a := randomGraph(rng, 3+rng.Intn(3), 0.5)
		b := randomGraph(rng, 2+rng.Intn(2), 0.4)
		for k := 1; k <= 3; k++ {
			spoiler, err := SpoilerWins(a, b, k)
			if err != nil {
				t.Fatal(err)
			}
			if spoiler && csp.HomomorphismExists(a, b) {
				t.Fatalf("trial %d k=%d: Spoiler wins but homomorphism exists", trial, k)
			}
		}
	}
}

// The strategy family is closed under subfunctions and has the forth
// property — the definition of a winning strategy.
func TestStrategyClosureProperties(t *testing.T) {
	a, b := structure.Cycle(6), structure.Clique(2)
	s, err := LargestStrategy(a, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !s.NonEmpty() {
		t.Fatal("C6 vs K2: expected Duplicator win")
	}
	if !s.Has(PartialHom{}) {
		t.Fatal("strategy misses the empty function")
	}
	for _, f := range s.Members() {
		// Closure under subfunctions.
		for i := range f {
			if !s.Has(f.Without(i)) {
				t.Fatalf("restriction of %q missing", f.Key())
			}
		}
		// Forth property.
		if len(f) < s.K && !s.forthOK(f) {
			t.Fatalf("member %q fails forth", f.Key())
		}
		// Every member is a partial homomorphism.
		h := make([]int, a.Size())
		for i := range h {
			h[i] = -1
		}
		for _, p := range f {
			h[p.A] = p.B
		}
		if !structure.IsPartialHomomorphism(a, b, h) {
			t.Fatalf("member %q is not a partial homomorphism", f.Key())
		}
	}
}

func TestConfigurationsOf(t *testing.T) {
	a, b := structure.Cycle(4), structure.Clique(2)
	s, err := LargestStrategy(a, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Adjacent pair (0,1): images must be the two distinct K2 vertices.
	r01 := s.ConfigurationsOf([]int{0, 1})
	if len(r01) != 2 {
		t.Fatalf("R_(0,1) = %v", r01)
	}
	for _, bb := range r01 {
		if bb[0] == bb[1] {
			t.Fatalf("adjacent pair mapped to equal values: %v", bb)
		}
	}
	// Repeated tuple (0,0): images must repeat.
	r00 := s.ConfigurationsOf([]int{0, 0})
	for _, bb := range r00 {
		if bb[0] != bb[1] {
			t.Fatalf("repeated element mapped to distinct values: %v", bb)
		}
	}
	if len(r00) != 2 {
		t.Fatalf("R_(0,0) = %v", r00)
	}
	// Out-of-range lengths yield nil.
	if s.ConfigurationsOf(nil) != nil || s.ConfigurationsOf([]int{0, 1, 2}) != nil {
		t.Fatal("length validation broken")
	}
}

// W^k characterizes solvability exactly on structures where A itself is
// small enough: if |A| <= k then Duplicator wins iff a homomorphism exists.
func TestGameExactWhenKCoversA(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 30; trial++ {
		a := randomGraph(rng, 3, 0.6)
		b := randomGraph(rng, 2+rng.Intn(2), 0.4)
		win, err := DuplicatorWins(a, b, 3)
		if err != nil {
			t.Fatal(err)
		}
		if win != csp.HomomorphismExists(a, b) {
			t.Fatalf("trial %d: k=|A| game disagrees with homomorphism", trial)
		}
	}
}

func randomGraph(rng *rand.Rand, n int, p float64) *structure.Structure {
	g := structure.NewGraph(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < p {
				g.MustAddTuple("E", i, j)
			}
		}
	}
	return g
}
