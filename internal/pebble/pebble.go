// Package pebble implements the existential k-pebble games of Section 4 of
// the paper (Kolaitis–Vardi). Given two relational structures A and B over a
// common vocabulary, it computes the largest winning strategy for the
// Duplicator — the set H^k(A,B) of partial homomorphisms h_{ā,b̄} with
// (ā,b̄) ∈ W^k(A,B) — as a greatest fixpoint, and thereby decides in
// polynomial time (for fixed k) whether the Spoiler or the Duplicator wins
// (Theorem 4.5).
//
// A winning strategy is represented as a family of partial homomorphisms
// with domains of at most k elements that is closed under subfunctions and
// has the k-forth extension property. The Duplicator wins iff the family is
// nonempty (equivalently: iff it contains the empty function).
package pebble

import (
	"fmt"
	"sort"
	"strconv"

	"csdb/internal/structure"
)

// Pair is one pebble placement: element A of the left structure mapped to
// element B of the right structure.
type Pair struct {
	A, B int
}

// PartialHom is a partial function from A's domain to B's domain given as
// pairs sorted by the A component (each A component distinct).
type PartialHom []Pair

// Key returns the canonical encoding of the partial function.
func (f PartialHom) Key() string {
	b := make([]byte, 0, len(f)*6)
	for i, p := range f {
		if i > 0 {
			b = append(b, ';')
		}
		b = strconv.AppendInt(b, int64(p.A), 10)
		b = append(b, ':')
		b = strconv.AppendInt(b, int64(p.B), 10)
	}
	return string(b)
}

// Lookup returns the image of a and whether a is in the domain.
func (f PartialHom) Lookup(a int) (int, bool) {
	for _, p := range f {
		if p.A == a {
			return p.B, true
		}
	}
	return 0, false
}

// Extend returns f ∪ {a ↦ b} with the pair inserted in sorted position.
// It must only be called with a not in f's domain.
func (f PartialHom) Extend(a, b int) PartialHom {
	g := make(PartialHom, 0, len(f)+1)
	inserted := false
	for _, p := range f {
		if !inserted && a < p.A {
			g = append(g, Pair{a, b})
			inserted = true
		}
		g = append(g, p)
	}
	if !inserted {
		g = append(g, Pair{a, b})
	}
	return g
}

// Without returns f with the pair at index i removed.
func (f PartialHom) Without(i int) PartialHom {
	g := make(PartialHom, 0, len(f)-1)
	g = append(g, f[:i]...)
	g = append(g, f[i+1:]...)
	return g
}

// AsMap renders the partial function as a map.
func (f PartialHom) AsMap() map[int]int {
	m := make(map[int]int, len(f))
	for _, p := range f {
		m[p.A] = p.B
	}
	return m
}

// FromMap builds a PartialHom from a map.
func FromMap(m map[int]int) PartialHom {
	f := make(PartialHom, 0, len(m))
	for a, b := range m {
		f = append(f, Pair{a, b})
	}
	sort.Slice(f, func(i, j int) bool { return f[i].A < f[j].A })
	return f
}

// Strategy is a family of partial homomorphisms from A to B with domains of
// size at most K. LargestStrategy returns families that are closed under
// subfunctions and have the k-forth property (i.e. winning strategies for
// the Duplicator, or the empty family when the Spoiler wins).
type Strategy struct {
	K    int
	A, B *structure.Structure
	fam  map[string]PartialHom
}

// Size returns the number of partial homomorphisms in the strategy
// (including the empty function when nonempty).
func (s *Strategy) Size() int { return len(s.fam) }

// NonEmpty reports whether the family contains any function — by Theorem
// 5.6 this is exactly W^k(A,B) ≠ ∅, i.e. the Duplicator wins.
func (s *Strategy) NonEmpty() bool { return len(s.fam) > 0 }

// Has reports whether the given partial function belongs to the strategy.
func (s *Strategy) Has(f PartialHom) bool {
	_, ok := s.fam[f.Key()]
	return ok
}

// HasMap is Has for a map-represented partial function.
func (s *Strategy) HasMap(m map[int]int) bool { return s.Has(FromMap(m)) }

// Members returns all partial homomorphisms in the strategy in an
// unspecified order.
func (s *Strategy) Members() []PartialHom {
	out := make([]PartialHom, 0, len(s.fam))
	for _, f := range s.fam {
		out = append(out, f)
	}
	return out
}

// checker incrementally validates partial homomorphisms: tuplesAt[a] lists
// the (relation, tuple) pairs mentioning element a of A.
type checker struct {
	a, b     *structure.Structure
	tuplesAt [][]structure.RelTuple
}

func newChecker(a, b *structure.Structure) *checker {
	return &checker{a: a, b: b, tuplesAt: a.TuplesContaining()}
}

// extensionOK reports whether f ∪ {x ↦ y} is still a partial homomorphism,
// assuming f already is. Only tuples mentioning x and otherwise inside
// dom(f) need to be checked.
func (c *checker) extensionOK(f PartialHom, x, y int) bool {
	img := make([]int, 0, 8)
tuples:
	for _, rt := range c.tuplesAt[x] {
		img = img[:0]
		for _, v := range rt.Tuple {
			var w int
			if v == x {
				w = y
			} else if b, ok := f.Lookup(v); ok {
				w = b
			} else {
				continue tuples // tuple not fully inside dom(f)+x
			}
			img = append(img, w)
		}
		if !c.b.Rel(rt.Rel).Has(img) {
			return false
		}
	}
	return true
}

// LargestStrategy computes the largest winning strategy for the Duplicator
// in the existential k-pebble game on a and b (Proposition 5.1): the union
// of all winning strategies. The returned strategy is empty iff the Spoiler
// wins.
func LargestStrategy(a, b *structure.Structure, k int) (*Strategy, error) {
	if k < 1 {
		return nil, fmt.Errorf("pebble: k must be >= 1, got %d", k)
	}
	if !a.Voc().Equal(b.Voc()) {
		return nil, fmt.Errorf("pebble: structures have different vocabularies")
	}
	s := &Strategy{K: k, A: a, B: b, fam: make(map[string]PartialHom)}
	c := newChecker(a, b)

	// Phase 1: generate all partial homomorphisms with |dom| <= k by
	// extending over A-elements in increasing order.
	var gen func(f PartialHom, next int)
	gen = func(f PartialHom, next int) {
		s.fam[f.Key()] = f
		if len(f) == k {
			return
		}
		for x := next; x < a.Size(); x++ {
			for y := 0; y < b.Size(); y++ {
				if c.extensionOK(f, x, y) {
					gen(f.Extend(x, y), x+1)
				}
			}
		}
	}
	gen(PartialHom{}, 0)

	// Phase 2: greatest fixpoint. Remove functions violating the k-forth
	// property; removal cascades upward (closure under subfunctions) and
	// re-enqueues restrictions for re-checking.
	work := make([]PartialHom, 0, len(s.fam))
	for _, f := range s.fam {
		if len(f) < k {
			work = append(work, f)
		}
	}
	var removeClosure func(f PartialHom)
	removeClosure = func(f PartialHom) {
		key := f.Key()
		if _, ok := s.fam[key]; !ok {
			return
		}
		delete(s.fam, key)
		// Cascade to all one-point extensions present in the family.
		if len(f) < k {
			for x := 0; x < a.Size(); x++ {
				if _, defined := f.Lookup(x); defined {
					continue
				}
				for y := 0; y < b.Size(); y++ {
					removeClosure(f.Extend(x, y))
				}
			}
		}
		// Restrictions may now fail forth: re-check them.
		for i := range f {
			r := f.Without(i)
			if _, ok := s.fam[r.Key()]; ok {
				work = append(work, r)
			}
		}
	}

	for len(work) > 0 {
		f := work[len(work)-1]
		work = work[:len(work)-1]
		if _, ok := s.fam[f.Key()]; !ok {
			continue
		}
		if s.forthOK(f) {
			continue
		}
		removeClosure(f)
	}
	return s, nil
}

// forthOK reports whether f (with |f| < K) can be extended within the
// current family to cover every element of A outside its domain.
func (s *Strategy) forthOK(f PartialHom) bool {
	for x := 0; x < s.A.Size(); x++ {
		if _, defined := f.Lookup(x); defined {
			continue
		}
		found := false
		for y := 0; y < s.B.Size(); y++ {
			if _, ok := s.fam[f.Extend(x, y).Key()]; ok {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// DuplicatorWins reports whether the Duplicator wins the existential
// k-pebble game on a and b.
func DuplicatorWins(a, b *structure.Structure, k int) (bool, error) {
	s, err := LargestStrategy(a, b, k)
	if err != nil {
		return false, err
	}
	return s.NonEmpty(), nil
}

// SpoilerWins reports whether the Spoiler wins the existential k-pebble game
// on a and b. By Theorem 4.6, for structures B whose ¬CSP(B) is expressible
// in k-Datalog, this coincides with the nonexistence of a homomorphism.
func SpoilerWins(a, b *structure.Structure, k int) (bool, error) {
	d, err := DuplicatorWins(a, b, k)
	return !d, err
}

// ConfigurationsOf returns, for a given tuple ā over A's domain (repetitions
// allowed, 1 <= len(ā) <= K), the set R_ā = { b̄ : (ā, b̄) ∈ W^k(A,B) } of
// Theorem 5.6 step 2: all value tuples whose induced correspondence is a
// partial function belonging to the strategy.
func (s *Strategy) ConfigurationsOf(abar []int) [][]int {
	if len(abar) == 0 || len(abar) > s.K {
		return nil
	}
	var out [][]int
	bbar := make([]int, len(abar))
	var rec func(i int, f PartialHom)
	rec = func(i int, f PartialHom) {
		if i == len(abar) {
			if s.Has(f) {
				out = append(out, append([]int(nil), bbar...))
			}
			return
		}
		a := abar[i]
		if b, defined := f.Lookup(a); defined {
			// Repeated element: the correspondence must stay functional.
			bbar[i] = b
			rec(i+1, f)
			return
		}
		for b := 0; b < s.B.Size(); b++ {
			bbar[i] = b
			rec(i+1, f.Extend(a, b))
		}
	}
	rec(0, PartialHom{})
	return out
}
