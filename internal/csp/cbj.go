package csp

import (
	"context"
	"time"
)

// Conflict-directed backjumping (CBJ) — the classical refinement of
// chronological backtracking from the constraint-satisfaction literature
// the paper's Section 1 surveys: when a variable exhausts its values, the
// search jumps back to the deepest variable actually responsible for the
// conflicts, skipping irrelevant intermediate assignments.
//
// SolveCBJ decides satisfiability (single-solution search); it checks
// constraints backward against assigned variables like BT, so its node
// counts are directly comparable to Solve with Algorithm BT.

// SolveCBJ searches for one solution using conflict-directed backjumping.
func SolveCBJ(p *Instance, opts Options) Result {
	return SolveCBJCtx(context.Background(), p, opts)
}

// SolveCBJCtx is SolveCBJ under a context: the search polls ctx every
// cancelCheckInterval nodes and returns Aborted=true once it is cancelled.
func SolveCBJCtx(ctx context.Context, p *Instance, opts Options) Result {
	start := time.Now()
	s := newSearcher(ctx, p, opts)
	res := solveCBJ(s)
	res.Stats.Duration = time.Since(start)
	res.Stats.Strategy = "CBJ"
	s.finishObs(res)
	return res
}

func solveCBJ(s *searcher) Result {
	p := s.p
	if s.cancel.cancelledNow() {
		return Result{Aborted: true, Stats: s.stats}
	}
	// Initial domain sanity (empty per-variable domains).
	for v := 0; v < p.Vars; v++ {
		if s.size[v] == 0 {
			return Result{Stats: s.stats}
		}
	}
	c := &cbjSearcher{searcher: s, depthOf: make([]int, p.Vars)}
	for i := range c.depthOf {
		c.depthOf[i] = -1
	}
	found, _, _ := c.search(0)
	if found {
		sol := make([]int, p.Vars)
		copy(sol, s.assign)
		return Result{Found: true, Solution: sol, Stats: s.stats}
	}
	return Result{Aborted: s.aborted, Stats: s.stats}
}

type cbjSearcher struct {
	*searcher
	depthOf []int
}

// search returns (found, jumpDepth, conflictVars). When found is false and
// jumpDepth < depth-1, callers between jumpDepth and the current depth
// unwind without trying further values.
func (c *cbjSearcher) search(depth int) (bool, int, map[int]bool) {
	if c.nAssigned == c.p.Vars {
		return true, 0, nil
	}
	v := c.pickVar()
	c.depthOf[v] = depth
	conf := make(map[int]bool)

	for val := 0; val < c.p.Dom; val++ {
		if !c.dom[v][val] {
			continue
		}
		c.stats.Nodes++
		if c.opts.NodeLimit > 0 && c.stats.Nodes > c.opts.NodeLimit {
			c.aborted = true
			c.depthOf[v] = -1
			return false, -1, nil
		}
		if c.cancel.cancelled() {
			c.aborted = true
			c.depthOf[v] = -1
			return false, -1, nil
		}
		c.assign[v] = val
		c.nAssigned++
		if c.nAssigned > c.stats.MaxDepth {
			c.stats.MaxDepth = c.nAssigned
		}
		ok, conflictVars := c.checkBackward(v)
		if !ok {
			for _, u := range conflictVars {
				if u != v {
					conf[u] = true
				}
			}
			c.assign[v] = -1
			c.nAssigned--
			continue
		}
		found, jumpTo, childConf := c.search(depth + 1)
		if found {
			return true, 0, nil
		}
		c.assign[v] = -1
		c.nAssigned--
		c.stats.Backtracks++
		if c.aborted {
			c.depthOf[v] = -1
			return false, -1, nil
		}
		if jumpTo < depth {
			// The conflict lies above us entirely: unwind without trying
			// further values of v.
			c.depthOf[v] = -1
			return false, jumpTo, childConf
		}
		// The child's conflicts involve v: absorb them (minus v) and try
		// the next value.
		for u := range childConf {
			if u != v {
				conf[u] = true
			}
		}
	}
	// Exhausted: jump to the deepest variable in the conflict set.
	c.depthOf[v] = -1
	jump := -1
	for u := range conf {
		if d := c.depthOf[u]; d > jump {
			jump = d
		}
	}
	return false, jump, conf
}

// checkBackward verifies the constraints on v whose scope is fully assigned
// and returns the union of the other scope variables of every violated
// constraint (the conflict explanation).
func (c *cbjSearcher) checkBackward(v int) (bool, []int) {
	var conflicts []int
	ok := true
	row := make([]int, 8)
	for _, con := range c.watch[v] {
		full := true
		for _, u := range con.Scope {
			if c.assign[u] < 0 {
				full = false
				break
			}
		}
		if !full {
			continue
		}
		if cap(row) < len(con.Scope) {
			row = make([]int, len(con.Scope))
		}
		r := row[:len(con.Scope)]
		for i, u := range con.Scope {
			r[i] = c.assign[u]
		}
		if !con.Table.Has(r) {
			ok = false
			for _, u := range con.Scope {
				if u != v {
					conflicts = append(conflicts, u)
				}
			}
		}
	}
	return ok, conflicts
}
