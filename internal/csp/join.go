package csp

import (
	"context"
	"fmt"
	"time"

	"csdb/internal/obs"
	"csdb/internal/relation"
)

// This file implements Proposition 2.1: viewing every variable as a
// relational attribute and every constraint (t, R) as a relation R over the
// scheme t, the instance is solvable iff the natural join of all constraint
// relations is nonempty.

// attrOf names the relational attribute of variable v.
func attrOf(v int) string { return fmt.Sprintf("v%d", v) }

// ConstraintRelations converts the (normalized) instance's constraints into
// attribute-named relations, one per constraint, plus one unary domain
// relation for every variable mentioned in no constraint (so the join ranges
// over all variables).
func ConstraintRelations(p *Instance) []*relation.Relation {
	q := p.withDomainsAsConstraints().Normalize()
	rels := make([]*relation.Relation, 0, len(q.Constraints))
	mentioned := make([]bool, q.Vars)
	for _, con := range q.Constraints {
		attrs := make([]string, len(con.Scope))
		for i, v := range con.Scope {
			attrs[i] = attrOf(v)
			mentioned[v] = true
		}
		r := relation.MustNew(attrs...)
		r.Grow(con.Table.Len())
		for _, row := range con.Table.Tuples() {
			r.MustAdd(relation.Tuple(row))
		}
		rels = append(rels, r)
	}
	for v := 0; v < q.Vars; v++ {
		if mentioned[v] {
			continue
		}
		r := relation.MustNew(attrOf(v))
		for _, val := range q.DomainOf(v) {
			r.MustAdd(relation.Tuple{val})
		}
		rels = append(rels, r)
	}
	return rels
}

// JoinSolve decides solvability by evaluating the natural join of the
// constraint relations (Proposition 2.1) and extracts one solution from a
// witness tuple when the join is nonempty.
func JoinSolve(p *Instance) Result {
	return JoinSolveCtx(context.Background(), p)
}

// JoinSolveCtx is JoinSolve under a context: the join evaluation polls ctx
// between (and periodically inside) pairwise joins and returns Aborted=true
// once the context is cancelled, which bounds both the time and the growth
// of intermediate results.
func JoinSolveCtx(ctx context.Context, p *Instance) Result {
	start := time.Now()
	obsJoinSolveCalls.Inc()
	ctx, sp := obs.StartSpan(ctx, "csp.joinsolve")
	res := joinSolve(ctx, p)
	res.Stats.Duration = time.Since(start)
	res.Stats.Strategy = "Join"
	if res.Found {
		sp.SetInt("found", 1)
	}
	if res.Aborted {
		sp.SetInt("aborted", 1)
	}
	sp.End()
	return res
}

func joinSolve(ctx context.Context, p *Instance) Result {
	if ctx.Err() != nil {
		return Result{Aborted: true}
	}
	rels := ConstraintRelations(p)
	j, err := relation.JoinAllCtx(ctx, rels)
	if err != nil {
		return Result{Aborted: true}
	}
	if j.Empty() {
		return Result{}
	}
	witness := j.Tuples()[0]
	sol := make([]int, p.Vars)
	for v := range sol {
		pos := j.Pos(attrOf(v))
		if pos < 0 {
			// Variable absent from every relation: impossible, since
			// ConstraintRelations adds a unary domain relation; defensive.
			sol[v] = 0
			continue
		}
		sol[v] = witness[pos]
	}
	return Result{Found: true, Solution: sol}
}

// JoinSolutions returns every solution of the instance as a relation over
// the attributes v0..v(n-1) — the full join of Proposition 2.1, projected
// and reordered onto the variable attributes.
func JoinSolutions(p *Instance) (*relation.Relation, error) {
	rels := ConstraintRelations(p)
	j := relation.JoinAll(rels)
	attrs := make([]string, p.Vars)
	for v := range attrs {
		attrs[v] = attrOf(v)
	}
	if j.Empty() {
		return relation.New(attrs...)
	}
	return j.Project(attrs...)
}
