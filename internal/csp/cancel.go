package csp

import "context"

// cancelCheckInterval is the number of search nodes (or propagation steps)
// between polls of the context. Polling a context involves an atomic load and
// possibly a channel check, which would dominate the per-node cost of cheap
// instances, so the check is amortized: a cancelled search keeps running for
// at most this many nodes before it notices and aborts.
const cancelCheckInterval = 1024

// cancelChecker amortizes context-cancellation checks over a countdown so
// the search hot path pays one integer decrement per node instead of one
// context poll.
type cancelChecker struct {
	ctx       context.Context
	countdown int
}

func newCancelChecker(ctx context.Context) cancelChecker {
	return cancelChecker{ctx: ctx, countdown: cancelCheckInterval}
}

// cancelled reports whether the context has been cancelled, polling it only
// once per cancelCheckInterval calls.
func (c *cancelChecker) cancelled() bool {
	if c.ctx == nil {
		return false
	}
	c.countdown--
	if c.countdown > 0 {
		return false
	}
	c.countdown = cancelCheckInterval
	return c.ctx.Err() != nil
}

// cancelledNow polls the context immediately, for phase boundaries (root
// propagation, join steps) where the amortized countdown has not been paid
// down by node visits.
func (c *cancelChecker) cancelledNow() bool {
	return c.ctx != nil && c.ctx.Err() != nil
}
