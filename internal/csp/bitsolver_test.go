package csp

import (
	"testing"
)

func TestDomainSetBasics(t *testing.T) {
	p := NewInstance(3, 70) // two words per row
	p.Domains = [][]int{nil, {1, 64, 69, 69, -1, 70}, {5}}
	d := NewDomainSet(p)
	if d.Size(0) != 70 || d.Size(1) != 3 || d.Size(2) != 1 {
		t.Fatalf("sizes %d %d %d", d.Size(0), d.Size(1), d.Size(2))
	}
	if !d.Has(1, 64) || d.Has(1, 0) || !d.Has(0, 69) {
		t.Fatal("membership wrong after init")
	}
	if got := d.Values(1, nil); len(got) != 3 || got[0] != 1 || got[1] != 64 || got[2] != 69 {
		t.Fatalf("Values = %v", got)
	}
	if d.Single(2) != 5 {
		t.Fatalf("Single = %d", d.Single(2))
	}
	if d.Next(1, 2) != 64 || d.Next(1, 65) != 69 || d.Next(1, 70) != -1 {
		t.Fatalf("Next iteration wrong: %d %d %d", d.Next(1, 2), d.Next(1, 65), d.Next(1, 70))
	}
	if !d.Remove(1, 64) || d.Remove(1, 64) {
		t.Fatal("Remove should report presence exactly once")
	}
	if d.Size(1) != 2 || d.Has(1, 64) {
		t.Fatal("Remove did not update state")
	}
	d.Restore(1, 64)
	d.Restore(1, 64) // idempotent
	if d.Size(1) != 3 || !d.Has(1, 64) {
		t.Fatal("Restore did not reinstate the value once")
	}
}

func TestCompileSupportsMasks(t *testing.T) {
	p := NewInstance(2, 3)
	tbl := NewTable(2)
	tbl.Add([]int{0, 1})
	tbl.Add([]int{2, 1})
	tbl.Add([]int{2, 2})
	p.MustAddConstraint([]int{0, 1}, tbl)
	sp := CompileSupports(p.Constraints[0], p.Dom)
	if sp.Tuples() != 3 || sp.Words() != 1 || sp.hasRepeat {
		t.Fatalf("tuples=%d words=%d hasRepeat=%v", sp.Tuples(), sp.Words(), sp.hasRepeat)
	}
	if sp.tail != 0b111 {
		t.Fatalf("tail = %b", sp.tail)
	}
	// Position 0 carries values {0, 2}; position 1 carries {1, 2}.
	if !sp.HasValue(0, 0) || sp.HasValue(0, 1) || !sp.HasValue(1, 2) || sp.HasValue(1, 0) {
		t.Fatal("HasValue wrong")
	}
	if m := sp.mask(0, 2); m[0] != 0b110 {
		t.Fatalf("mask(0,2) = %b", m[0])
	}
	rep := CompileSupports(&Constraint{Scope: []int{0, 0}, Table: tbl}, p.Dom)
	if !rep.hasRepeat {
		t.Fatal("repeated scope not flagged")
	}
}

func TestSupportsRevise(t *testing.T) {
	p := NewInstance(2, 3)
	tbl := NewTable(2)
	tbl.Add([]int{0, 1})
	tbl.Add([]int{2, 1})
	tbl.Add([]int{2, 2})
	p.MustAddConstraint([]int{0, 1}, tbl)
	sp := CompileSupports(p.Constraints[0], p.Dom)
	d := NewDomainSet(p)
	scratch := make([]uint64, 2*sp.Words())

	var pruned []nglit
	live, ok := sp.Revise(d, scratch, func(v, val int) bool {
		pruned = append(pruned, nglit{int32(v), int32(val)})
		d.Remove(v, val)
		return true
	})
	if !ok || live != 3 {
		t.Fatalf("live=%d ok=%v", live, ok)
	}
	// Value 1 of var 0 and value 0 of var 1 have no supporting tuple.
	if len(pruned) != 2 || pruned[0] != (nglit{0, 1}) || pruned[1] != (nglit{1, 0}) {
		t.Fatalf("pruned %v", pruned)
	}

	// Narrow var 1 to {2}: only tuple (2,2) survives, so var 0 loses 0.
	d.Remove(1, 1)
	pruned = pruned[:0]
	live, ok = sp.Revise(d, scratch, func(v, val int) bool {
		pruned = append(pruned, nglit{int32(v), int32(val)})
		d.Remove(v, val)
		return true
	})
	if !ok || live != 1 || len(pruned) != 1 || pruned[0] != (nglit{0, 0}) {
		t.Fatalf("live=%d ok=%v pruned=%v", live, ok, pruned)
	}

	// Empty var 0: revision reports a dead constraint.
	d.Remove(0, 2)
	if _, ok = sp.Revise(d, scratch, func(v, val int) bool { t.Fatal("prune on dead constraint"); return false }); ok {
		t.Fatal("Revise ok on empty live set")
	}
}

func TestLubySequence(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, 1}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestNogoodStoreRecord(t *testing.T) {
	st := newNogoodStore(4, 3)
	if st.record(nil) {
		t.Fatal("recorded empty nogood")
	}
	if !st.record([]nglit{{2, 1}}) || len(st.units) != 1 || st.units[0] != (nglit{2, 1}) {
		t.Fatalf("unit nogood not stored: %v", st.units)
	}
	long := make([]nglit, maxNogoodLen+1)
	if st.record(long) {
		t.Fatal("recorded overlong nogood")
	}
	if !st.record([]nglit{{0, 0}, {1, 2}}) {
		t.Fatal("binary nogood rejected")
	}
	if len(st.ngs) != 1 {
		t.Fatalf("%d stored nogoods", len(st.ngs))
	}
	if w := st.watches[0*3+0]; len(w) != 1 || w[0] != 0 {
		t.Fatalf("watch list of (0,0): %v", w)
	}
	if w := st.watches[1*3+2]; len(w) != 1 || w[0] != 0 {
		t.Fatalf("watch list of (1,2): %v", w)
	}
}

// TestLearnTrivialInstances pins the learning engine's edge-case semantics
// against the rest of the engine family.
func TestLearnTrivialInstances(t *testing.T) {
	empty := NewInstance(0, 3)
	if res := Solve(empty, Options{Learn: true}); !res.Found || len(res.Solution) != 0 {
		t.Fatalf("0-var instance: %+v", res)
	}

	unsat := NewInstance(1, 2)
	unsat.MustAddConstraint([]int{0}, NewTable(1)) // empty table
	if res := Solve(unsat, Options{Learn: true}); res.Found {
		t.Fatal("empty-table instance must be UNSAT")
	}

	p := NewInstance(2, 2)
	tbl := NewTable(2)
	tbl.Add([]int{0, 1})
	p.MustAddConstraint([]int{0, 1}, tbl)
	res := Solve(p, Options{Learn: true})
	if !res.Found || res.Solution[0] != 0 || res.Solution[1] != 1 {
		t.Fatalf("forced instance: %+v", res)
	}
	if res.Stats.Strategy != "Learn+DomWdeg" {
		t.Fatalf("strategy label %q", res.Stats.Strategy)
	}
}
