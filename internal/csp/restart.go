package csp

// Luby-scheduled restarts for the learning engine. Each episode is a
// complete chronological search bounded by a conflict cutoff of
// lubyUnit*luby(i); when the cutoff fires the search unwinds to the root,
// the nogood store is decayed and (over capacity) shrunk, unit nogoods are
// re-applied, and the next episode starts with the learned nogoods
// redirecting propagation. Completeness survives the lossy store because
// the Luby sequence is unbounded: some episode's cutoff eventually exceeds
// the finite conflict count of a full tree, and that episode runs to an
// exhaustive verdict regardless of which nogoods were kept.

// lubyUnit is the conflict budget multiplier of the schedule.
const lubyUnit = 128

// luby returns the i-th element (i >= 1) of the Luby sequence
// 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
func luby(i int64) int64 {
	for k := uint(1); ; k++ {
		p := int64(1)<<k - 1
		if i == p {
			return int64(1) << (k - 1)
		}
		if i < p {
			i -= int64(1)<<(k-1) - 1
			k = 0
		}
	}
}

// searchWithRestarts is the learning engine's search driver. It has the
// search() contract: true stops the solve (solution in *out, abort), false
// is an exhaustive UNSAT proof.
func (s *bitSearcher) searchWithRestarts(out *[]int) bool {
	for try := int64(1); ; try++ {
		if s.cancel.cancelledNow() {
			s.aborted = true
			return true
		}
		s.cutoff = lubyUnit * luby(try)
		s.conflicts = 0
		s.restartNow = false
		if try > 1 {
			s.stats.Restarts++
			s.undoToRoot()
			s.ngRestartMaintenance()
			if !s.applyRootUnits() || !s.propagate() {
				// A unit nogood (or its propagation) emptied a domain at the
				// root: UNSAT — unless the propagation was cancelled.
				return s.aborted
			}
		}
		stop := s.search(out)
		if !stop {
			return false // exhausted within the cutoff: UNSAT
		}
		if !s.restartNow {
			return true // solution, node limit, or cancellation
		}
	}
}

// undoToRoot unwinds all decisions and their propagation back to the
// post-root-propagation state, clearing any queued work.
func (s *bitSearcher) undoToRoot() {
	for len(s.trail) > s.rootMark {
		e := s.trail[len(s.trail)-1]
		s.trail = s.trail[:len(s.trail)-1]
		s.d.Restore(e.v, e.val)
	}
	for _, dl := range s.decisions {
		s.assign[dl.v] = -1
	}
	s.decisions = s.decisions[:0]
	s.nAssigned = 0
	s.clearQueue()
}
