package csp

import (
	"context"
	"math/bits"
	"time"

	"csdb/internal/obs"
)

// bitSearcher is the bitset MAC engine: DomainSet domains (domain.go),
// per-constraint compiled support masks (support.go), and watched-value
// propagation — pruning (v, val) re-enqueues only the constraints whose
// table actually carries that value, which is the only way the constraint's
// live-tuple set can change. Variable/value ordering and propagation
// strength match the seed searcher exactly (GAC closures are unique), so
// both engines walk the same tree and the seed stays a node-for-node
// differential oracle. With opts.Learn the engine additionally records
// decision nogoods on conflicts and restarts on a Luby schedule
// (nogood.go, restart.go).
type bitSearcher struct {
	p    *Instance
	opts Options

	d         *DomainSet
	assign    []int
	nAssigned int

	sup      []*Supports
	watchers [][]int32 // (v*Dom + val) -> ids of constraints with that value
	degree   []int

	queue   []int32
	inQueue []bool
	curCon  int32 // constraint being revised (no self-re-enqueue), -1 otherwise
	scratch []uint64
	// onPruneFn is the Revise callback, bound once so the propagation loop
	// does not allocate a closure per revision.
	onPruneFn func(v, val int) bool

	trail []trailEntry

	// Learning state, used only when opts.Learn is set.
	learn      bool
	ng         *nogoodStore
	decisions  []nglit
	singles    []int32 // vars newly narrowed to singletons (nogood triggers)
	conflicts  int64   // conflicts since the current restart
	cutoff     int64   // conflict budget of the current restart (0 = none)
	restartNow bool
	rootMark   int
	// vweight is the dom/wdeg conflict heuristic: every variable in the
	// scope of a constraint that wipes out a domain gains weight, and the
	// learning engine branches on the unassigned variable minimizing
	// size/weight. Weights persist across restarts, so each episode starts
	// better informed than the last — the heuristic's synergy with the Luby
	// schedule. Nil unless learning.
	vweight []float64

	cancel  cancelChecker
	stats   Stats
	found   int64
	limit   int64
	yield   func([]int) bool
	aborted bool
	stopped bool

	span       *obs.Span
	searchSpan *obs.Span
}

func newBitSearcher(ctx context.Context, p *Instance, opts Options) *bitSearcher {
	s := &bitSearcher{p: p, opts: opts, learn: opts.Learn, curCon: -1, cancel: newCancelChecker(ctx)}
	s.span = obs.StartChild(obs.SpanFrom(ctx), "csp.solve")
	s.span.SetInt("vars", int64(p.Vars))
	s.span.SetInt("dom", int64(p.Dom))
	s.span.SetInt("constraints", int64(len(p.Constraints)))
	s.d = NewDomainSet(p)
	s.assign = make([]int, p.Vars)
	for v := range s.assign {
		s.assign[v] = -1
	}
	s.sup = make([]*Supports, len(p.Constraints))
	s.inQueue = make([]bool, len(p.Constraints))
	s.watchers = make([][]int32, p.Vars*p.Dom)
	s.degree = make([]int, p.Vars)
	maxWords := 1
	for cid, con := range p.Constraints {
		sp := CompileSupports(con, p.Dom)
		s.sup[cid] = sp
		if sp.words > maxWords {
			maxWords = sp.words
		}
		for i, v := range con.Scope {
			if !scopeRepeat(con.Scope, i) {
				s.degree[v]++
			}
			for val := 0; val < p.Dom; val++ {
				if !sp.HasValue(i, val) {
					continue
				}
				w := s.watchers[v*p.Dom+val]
				// Repeated scope positions of one variable visit the same
				// watch list back to back; skip the adjacent duplicate.
				if n := len(w); n > 0 && w[n-1] == int32(cid) {
					continue
				}
				s.watchers[v*p.Dom+val] = append(w, int32(cid))
			}
		}
	}
	s.scratch = make([]uint64, 2*maxWords)
	s.onPruneFn = s.pruneFromRevise
	if s.learn {
		s.ng = newNogoodStore(p.Vars, p.Dom)
		s.vweight = make([]float64, p.Vars)
	}
	return s
}

func (s *bitSearcher) run(limit int64, yield func([]int) bool) Result {
	start := time.Now()
	res := s.solve(limit, yield)
	res.Stats.Duration = time.Since(start)
	res.Stats.Strategy = s.opts.label()
	s.finishObs(res)
	return res
}

func (s *bitSearcher) solve(limit int64, yield func([]int) bool) Result {
	s.limit = limit
	s.yield = yield

	if s.cancel.cancelledNow() {
		s.aborted = true
		return Result{Aborted: true, Stats: s.stats}
	}
	// Root propagation (the engine is MAC: GAC always holds at decisions).
	sp := obs.StartChild(s.span, "csp.propagate")
	sp.SetStr("phase", "root")
	before := s.stats.Prunings
	for cid := range s.sup {
		s.inQueue[cid] = true
		s.queue = append(s.queue, int32(cid))
	}
	ok := s.propagate()
	sp.SetInt("prunings", s.stats.Prunings-before)
	sp.End()
	if !ok {
		return Result{Aborted: s.aborted, Stats: s.stats}
	}
	s.rootMark = len(s.trail)

	s.searchSpan = obs.StartChild(s.span, "csp.search")
	var solution []int
	var sol bool
	if s.learn {
		sol = s.searchWithRestarts(&solution)
	} else {
		sol = s.search(&solution)
	}
	if s.searchSpan != nil {
		s.searchSpan.SetInt("nodes", s.stats.Nodes)
		s.searchSpan.End()
	}
	if sol && solution != nil {
		return Result{Found: true, Solution: solution, Stats: s.stats}
	}
	return Result{Aborted: s.aborted, Stats: s.stats}
}

// search mirrors the seed searcher's contract: true means stop entirely
// (solution in single-solution mode, limit reached, abort, or — learning
// only — a pending restart), false means the subtree is exhausted.
func (s *bitSearcher) search(out *[]int) bool {
	if s.nAssigned == s.p.Vars {
		sol := make([]int, s.p.Vars)
		copy(sol, s.assign)
		s.found++
		if s.yield != nil {
			if !s.yield(sol) {
				s.stopped = true
				return true
			}
			if s.limit > 0 && s.found >= s.limit {
				s.stopped = true
				return true
			}
			return false // keep enumerating
		}
		*out = sol
		return true
	}

	v := s.pickVar()
	for val := s.d.Next(v, 0); val >= 0; val = s.d.Next(v, val+1) {
		s.stats.Nodes++
		if s.opts.NodeLimit > 0 && s.stats.Nodes > s.opts.NodeLimit {
			s.aborted = true
			return true
		}
		if s.cancel.cancelled() {
			s.aborted = true
			return true
		}
		mark := len(s.trail)
		if s.tryAssign(v, val) {
			if s.search(out) {
				return true
			}
		} else if s.learn && !s.aborted {
			s.onConflict()
		}
		s.undo(v, mark)
		if s.aborted || s.restartNow {
			return true
		}
		s.stats.Backtracks++
	}
	return false
}

// tryAssign assigns v=val, narrows the domain to the singleton, and
// propagates to a GAC fixpoint. On failure the caller must undo.
func (s *bitSearcher) tryAssign(v, val int) bool {
	s.assign[v] = val
	s.nAssigned++
	if s.nAssigned > s.stats.MaxDepth {
		s.stats.MaxDepth = s.nAssigned
	}
	if s.learn {
		s.decisions = append(s.decisions, nglit{int32(v), int32(val)})
	}
	row := s.d.row(v)
	for w := 0; w < len(row); w++ {
		word := row[w]
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << b
			if other := w<<6 + b; other != val {
				// Narrowing cannot wipe out (val itself survives).
				s.removeValue(v, other, false)
			}
		}
	}
	if s.searchSpan != nil {
		return s.tracePropagate(v)
	}
	return s.propagate()
}

// tracePropagate wraps one per-assignment propagation wave in a span nested
// under the search span; only reached when tracing is active.
func (s *bitSearcher) tracePropagate(v int) bool {
	sp := obs.StartChild(s.searchSpan, "csp.propagate")
	sp.SetInt("var", int64(v))
	before := s.stats.Prunings
	ok := s.propagate()
	sp.SetInt("prunings", s.stats.Prunings-before)
	if !ok {
		sp.SetInt("wipeout", 1)
	}
	sp.End()
	return ok
}

// removeValue deletes (u, val), records it on the trail, counts it as a
// pruning when it came from propagation (decision narrowing is not a
// pruning, matching the seed), wakes the value's watchers, and queues the
// variable for nogood entailment checks when it became a singleton. It
// reports false on a wipeout.
func (s *bitSearcher) removeValue(u, val int, fromRevise bool) bool {
	if !s.d.Remove(u, val) {
		return true
	}
	s.trail = append(s.trail, trailEntry{u, val})
	if fromRevise {
		s.stats.Prunings++
	}
	switch s.d.size[u] {
	case 0:
		return false
	case 1:
		if s.learn {
			s.singles = append(s.singles, int32(u))
		}
	}
	for _, cid := range s.watchers[u*s.p.Dom+val] {
		if cid != s.curCon && !s.inQueue[cid] {
			s.inQueue[cid] = true
			s.queue = append(s.queue, cid)
		}
	}
	return true
}

// pruneFromRevise is the Revise callback: a propagation-caused removal.
func (s *bitSearcher) pruneFromRevise(v, val int) bool {
	return s.removeValue(v, val, true)
}

// propagate drains the revision queue (and, when learning, the singleton
// queue that triggers nogood unit propagation) to a fixpoint. It returns
// false on a conflict — domain wipeout, nogood violation, or cancellation
// (s.aborted distinguishes the latter) — with the queues cleared.
func (s *bitSearcher) propagate() bool {
	for {
		if s.cancel.cancelled() {
			s.aborted = true
			s.clearQueue()
			return false
		}
		if n := len(s.singles); n > 0 {
			u := s.singles[n-1]
			s.singles = s.singles[:n-1]
			if !s.ngOnSingleton(int(u)) {
				s.clearQueue()
				return false
			}
			continue
		}
		if len(s.queue) == 0 {
			return true
		}
		cid := s.queue[0]
		s.queue = s.queue[1:]
		s.inQueue[cid] = false
		if s.sup[cid].hasRepeat {
			// A repeated-scope constraint's own prunes change its live set;
			// let it re-enqueue itself until a true fixpoint.
			s.curCon = -1
		} else {
			s.curCon = cid
		}
		_, ok := s.sup[cid].Revise(s.d, s.scratch, s.onPruneFn)
		s.curCon = -1
		if !ok {
			if s.vweight != nil && !s.aborted {
				for _, v := range s.sup[cid].scope {
					s.vweight[v]++
				}
			}
			s.clearQueue()
			return false
		}
	}
}

// clearQueue resets the propagation queues after a conflict so the next
// wave starts clean.
func (s *bitSearcher) clearQueue() {
	for _, cid := range s.queue {
		s.inQueue[cid] = false
	}
	s.queue = s.queue[:0]
	s.singles = s.singles[:0]
	s.curCon = -1
}

// undo restores the trail to mark and unassigns v.
func (s *bitSearcher) undo(v int, mark int) {
	for len(s.trail) > mark {
		e := s.trail[len(s.trail)-1]
		s.trail = s.trail[:len(s.trail)-1]
		s.d.Restore(e.v, e.val)
	}
	if s.assign[v] >= 0 {
		s.assign[v] = -1
		s.nAssigned--
		if s.learn {
			s.decisions = s.decisions[:len(s.decisions)-1]
		}
	}
}

// pickVar is the seed heuristic verbatim: MRV on the popcount cache with
// degree then index tie-breaks, or lexicographic order. The learning engine
// instead uses dom/wdeg — smallest domain-size-to-conflict-weight ratio —
// which is deterministic (ties break toward MRV, then lower index) and
// steers each restart episode toward the variables that caused past
// wipeouts.
func (s *bitSearcher) pickVar() int {
	if s.learn {
		best, bestSize := -1, 0
		var bestScore float64
		for v := 0; v < s.p.Vars; v++ {
			if s.assign[v] >= 0 {
				continue
			}
			score := float64(s.d.size[v]) / (1 + s.vweight[v])
			if best < 0 || score < bestScore ||
				(score == bestScore && s.d.size[v] < bestSize) {
				best, bestScore, bestSize = v, score, s.d.size[v]
			}
		}
		if best < 0 {
			panic("csp: pickVar with all variables assigned")
		}
		return best
	}
	if s.opts.VarOrder == Lex {
		for v := 0; v < s.p.Vars; v++ {
			if s.assign[v] < 0 {
				return v
			}
		}
		panic("csp: pickVar with all variables assigned")
	}
	best, bestSize, bestDeg := -1, 1<<30, -1
	for v := 0; v < s.p.Vars; v++ {
		if s.assign[v] >= 0 {
			continue
		}
		if s.d.size[v] < bestSize || (s.d.size[v] == bestSize && s.degree[v] > bestDeg) {
			best, bestSize, bestDeg = v, s.d.size[v], s.degree[v]
		}
	}
	if best < 0 {
		panic("csp: pickVar with all variables assigned")
	}
	return best
}

// finishObs flushes the solve through the same registry funnel as the seed
// searcher (registry deltas must equal merged Stats) and closes the spans.
func (s *bitSearcher) finishObs(res Result) {
	flushSolveObs(s.span, res)
}
