package csp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: normalization (duplicate-variable elimination + consolidation)
// never changes the solution set, even with repeated scope variables and
// duplicate scopes.
func TestNormalizePreservesSolutionsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewInstance(3, 3)
		for c := 0; c < 4; c++ {
			arity := 1 + rng.Intn(3)
			scope := make([]int, arity)
			for i := range scope {
				scope[i] = rng.Intn(3)
			}
			tab := NewTable(arity)
			rows := 1 << uint(arity)
			for r := 0; r < rows*2; r++ {
				row := make([]int, arity)
				for i := range row {
					row[i] = rng.Intn(3)
				}
				if rng.Float64() < 0.7 {
					tab.Add(row)
				}
			}
			p.MustAddConstraint(scope, tab)
		}
		q := p.Normalize()
		a, b := bruteForce(p), bruteForce(q)
		if len(a) != len(b) {
			return false
		}
		set := map[string]bool{}
		for _, s := range a {
			set[rowKey(s)] = true
		}
		for _, s := range b {
			if !set[rowKey(s)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the number of join solutions equals the number of enumerated
// solutions (Proposition 2.1, counting form).
func TestJoinCountsMatchProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomInstance(rng, 2+rng.Intn(3), 2+rng.Intn(2), 0.8, 0.4)
		rel, err := JoinSolutions(p)
		if err != nil {
			return false
		}
		return int64(rel.Len()) == CountSolutions(p, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Table.Key is insertion-order independent and Clone preserves
// content.
func TestTableKeyCanonicalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := make([][]int, 5+rng.Intn(5))
		for i := range rows {
			rows[i] = []int{rng.Intn(3), rng.Intn(3)}
		}
		t1 := NewTable(2)
		for _, r := range rows {
			t1.Add(r)
		}
		t2 := NewTable(2)
		perm := rng.Perm(len(rows))
		for _, i := range perm {
			t2.Add(rows[i])
		}
		return t1.Key() == t2.Key() && t1.Clone().Key() == t1.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: every solution found by any algorithm satisfies the instance,
// and all algorithms agree (BT, FC, MAC, CBJ, Join).
func TestAllAlgorithmsAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomInstance(rng, 3+rng.Intn(3), 2+rng.Intn(2), 0.7, 0.45)
		verdicts := []bool{
			Solve(p, Options{Algorithm: BT}).Found,
			Solve(p, Options{Algorithm: FC}).Found,
			Solve(p, Options{Algorithm: MAC}).Found,
			SolveCBJ(p, Options{}).Found,
			JoinSolve(p).Found,
		}
		for _, v := range verdicts[1:] {
			if v != verdicts[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: ToStructures/FromStructures round trip preserves solvability
// with arbitrary (valid) instances.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomInstance(rng, 2+rng.Intn(3), 2+rng.Intn(2), 0.8, 0.4)
		a, b, err := ToStructures(p)
		if err != nil {
			return false
		}
		q, err := FromStructures(a, b)
		if err != nil {
			return false
		}
		return Solve(p, Options{}).Found == Solve(q, Options{}).Found
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
