package csp

import (
	"math/rand"
	"testing"

	"csdb/internal/structure"
)

// bruteForce enumerates all Dom^Vars assignments and returns the solutions.
func bruteForce(p *Instance) [][]int {
	var out [][]int
	assign := make([]int, p.Vars)
	var rec func(v int)
	rec = func(v int) {
		if v == p.Vars {
			if p.Satisfies(assign) {
				out = append(out, append([]int(nil), assign...))
			}
			return
		}
		for val := 0; val < p.Dom; val++ {
			assign[v] = val
			rec(v + 1)
		}
	}
	rec(0)
	return out
}

// randomInstance generates a random binary CSP (model-B flavored).
func randomInstance(rng *rand.Rand, vars, dom int, density, tightness float64) *Instance {
	p := NewInstance(vars, dom)
	for i := 0; i < vars; i++ {
		for j := i + 1; j < vars; j++ {
			if rng.Float64() >= density {
				continue
			}
			t := NewTable(2)
			for a := 0; a < dom; a++ {
				for b := 0; b < dom; b++ {
					if rng.Float64() >= tightness {
						t.Add([]int{a, b})
					}
				}
			}
			p.MustAddConstraint([]int{i, j}, t)
		}
	}
	return p
}

func coloringInstance(edges [][2]int, n, colors int) *Instance {
	p := NewInstance(n, colors)
	neq := NewTable(2)
	for a := 0; a < colors; a++ {
		for b := 0; b < colors; b++ {
			if a != b {
				neq.Add([]int{a, b})
			}
		}
	}
	for _, e := range edges {
		p.MustAddConstraint([]int{e[0], e[1]}, neq)
	}
	return p
}

func TestTableBasics(t *testing.T) {
	tab := TableOf(2, []int{0, 1}, []int{1, 0}, []int{0, 1})
	if tab.Len() != 2 {
		t.Fatalf("dedup failed: %d", tab.Len())
	}
	if !tab.Has([]int{0, 1}) || tab.Has([]int{1, 1}) || tab.Has([]int{1}) {
		t.Fatal("membership wrong")
	}
	u := TableOf(2, []int{1, 0}, []int{1, 1})
	in, err := tab.Intersect(u)
	if err != nil || in.Len() != 1 || !in.Has([]int{1, 0}) {
		t.Fatalf("intersect wrong: %v %v", in, err)
	}
	if _, err := tab.Intersect(TableOf(1, []int{0})); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if tab.Key() != TableOf(2, []int{1, 0}, []int{0, 1}).Key() {
		t.Fatal("key not canonical")
	}
}

func TestAddConstraintValidation(t *testing.T) {
	p := NewInstance(2, 2)
	if err := p.AddConstraint([]int{0}, TableOf(2, []int{0, 0})); err == nil {
		t.Fatal("scope/arity mismatch accepted")
	}
	if err := p.AddConstraint([]int{0, 2}, TableOf(2, []int{0, 0})); err == nil {
		t.Fatal("out-of-range variable accepted")
	}
	if err := p.AddConstraint([]int{0, 1}, TableOf(2, []int{0, 5})); err == nil {
		t.Fatal("out-of-range value accepted")
	}
}

func TestSolveTrivialInstances(t *testing.T) {
	// No variables: trivially solvable with the empty assignment.
	empty := NewInstance(0, 3)
	if res := Solve(empty, Options{}); !res.Found || len(res.Solution) != 0 {
		t.Fatalf("empty instance: %+v", res)
	}
	// Unsatisfiable: a constraint with an empty table.
	unsat := NewInstance(1, 2)
	unsat.MustAddConstraint([]int{0}, NewTable(1))
	for _, alg := range []Algorithm{BT, FC, MAC} {
		if res := Solve(unsat, Options{Algorithm: alg}); res.Found {
			t.Fatalf("%v found a solution to an unsatisfiable instance", alg)
		}
	}
}

func TestSolveColoring(t *testing.T) {
	// C5 is 3-colorable but not 2-colorable.
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}
	for _, alg := range []Algorithm{BT, FC, MAC} {
		res3 := Solve(coloringInstance(edges, 5, 3), Options{Algorithm: alg})
		if !res3.Found {
			t.Fatalf("%v: C5 not 3-colored", alg)
		}
		res2 := Solve(coloringInstance(edges, 5, 2), Options{Algorithm: alg})
		if res2.Found {
			t.Fatalf("%v: C5 2-colored", alg)
		}
	}
}

func TestSolversAgreeWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 150; trial++ {
		p := randomInstance(rng, 2+rng.Intn(4), 2+rng.Intn(3), 0.7, 0.4)
		want := len(bruteForce(p)) > 0
		for _, alg := range []Algorithm{BT, FC, MAC} {
			for _, ord := range []VarOrder{MRV, Lex} {
				res := Solve(p, Options{Algorithm: alg, VarOrder: ord})
				if res.Found != want {
					t.Fatalf("trial %d: %v/%v found=%v, brute force=%v", trial, alg, ord, res.Found, want)
				}
				if res.Found && !p.Satisfies(res.Solution) {
					t.Fatalf("trial %d: %v returned invalid solution", trial, alg)
				}
			}
		}
	}
}

func TestSolveAllMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 80; trial++ {
		p := randomInstance(rng, 2+rng.Intn(3), 2+rng.Intn(2), 0.8, 0.35)
		want := bruteForce(p)
		seen := make(map[string]bool)
		n, _ := SolveAll(p, Options{}, 0, func(sol []int) bool {
			if !p.Satisfies(sol) {
				t.Fatalf("trial %d: invalid enumerated solution", trial)
			}
			seen[rowKey(sol)] = true
			return true
		})
		if int(n) != len(want) || len(seen) != len(want) {
			t.Fatalf("trial %d: enumerated %d/%d distinct, brute force %d", trial, n, len(seen), len(want))
		}
		for _, w := range want {
			if !seen[rowKey(w)] {
				t.Fatalf("trial %d: missing solution %v", trial, w)
			}
		}
	}
}

func TestSolveAllRespectsLimit(t *testing.T) {
	p := NewInstance(3, 3) // no constraints: 27 solutions
	n, _ := SolveAll(p, Options{}, 5, func([]int) bool { return true })
	if n != 5 {
		t.Fatalf("limit ignored: %d", n)
	}
	n2, _ := SolveAll(p, Options{}, 0, func(sol []int) bool { return sol[0] == 0 })
	if n2 < 1 {
		t.Fatalf("yield stop broken: %d", n2)
	}
	n3 := CountSolutions(p, 0)
	if n3 != 27 {
		t.Fatalf("CountSolutions = %d, want 27", n3)
	}
}

func TestNodeLimitAborts(t *testing.T) {
	// A hard unsatisfiable pigeonhole-ish instance: 6 variables, 5 values,
	// all-different (encoded pairwise).
	p := NewInstance(6, 5)
	neq := NewTable(2)
	for a := 0; a < 5; a++ {
		for b := 0; b < 5; b++ {
			if a != b {
				neq.Add([]int{a, b})
			}
		}
	}
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			p.MustAddConstraint([]int{i, j}, neq)
		}
	}
	res := Solve(p, Options{Algorithm: BT, NodeLimit: 10})
	if res.Found || !res.Aborted {
		t.Fatalf("expected aborted search, got %+v", res)
	}
	if full := Solve(p, Options{}); full.Found {
		t.Fatal("pigeonhole solved")
	}
}

func TestJoinSolveAgreesWithSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 120; trial++ {
		p := randomInstance(rng, 2+rng.Intn(4), 2+rng.Intn(3), 0.6, 0.45)
		want := Solve(p, Options{}).Found
		res := JoinSolve(p)
		if res.Found != want {
			t.Fatalf("trial %d: join=%v search=%v", trial, res.Found, want)
		}
		if res.Found && !p.Satisfies(res.Solution) {
			t.Fatalf("trial %d: join produced invalid solution %v", trial, res.Solution)
		}
	}
}

func TestJoinSolutionsMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 60; trial++ {
		p := randomInstance(rng, 2+rng.Intn(3), 2, 0.9, 0.3)
		rel, err := JoinSolutions(p)
		if err != nil {
			t.Fatalf("JoinSolutions: %v", err)
		}
		want := bruteForce(p)
		if rel.Len() != len(want) {
			t.Fatalf("trial %d: join has %d solutions, brute force %d", trial, rel.Len(), len(want))
		}
		for _, w := range want {
			row := make([]int, len(w))
			for v := range w {
				row[rel.Pos(attrOf(v))] = w[v]
			}
			if !rel.Contains(row) {
				t.Fatalf("trial %d: join missing solution %v", trial, w)
			}
		}
	}
}

func TestJoinSolveUnconstrainedVariables(t *testing.T) {
	p := NewInstance(3, 2)
	p.MustAddConstraint([]int{0, 1}, TableOf(2, []int{0, 1}))
	res := JoinSolve(p)
	if !res.Found || !p.Satisfies(res.Solution) {
		t.Fatalf("unconstrained variable case: %+v", res)
	}
}

func TestNormalizeDistinct(t *testing.T) {
	// Constraint R(x,x) with table {(0,0),(0,1),(1,1)} must become a unary
	// constraint {0,1} on x.
	p := NewInstance(1, 2)
	p.MustAddConstraint([]int{0, 0}, TableOf(2, []int{0, 0}, []int{0, 1}, []int{1, 1}))
	q := p.NormalizeDistinct()
	if len(q.Constraints) != 1 {
		t.Fatalf("constraints = %d", len(q.Constraints))
	}
	c := q.Constraints[0]
	if len(c.Scope) != 1 || c.Scope[0] != 0 {
		t.Fatalf("scope = %v", c.Scope)
	}
	if c.Table.Len() != 2 || !c.Table.Has([]int{0}) || !c.Table.Has([]int{1}) {
		t.Fatalf("table = %v", c.Table.Tuples())
	}
	// Solution sets agree.
	if len(bruteForce(p)) != len(bruteForce(q)) {
		t.Fatal("normalization changed solution count")
	}
}

func TestNormalizePreservesSolutions(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 80; trial++ {
		p := NewInstance(3, 3)
		// Random constraints with possibly repeated scope variables.
		for c := 0; c < 3; c++ {
			scope := []int{rng.Intn(3), rng.Intn(3)}
			tab := NewTable(2)
			for a := 0; a < 3; a++ {
				for b := 0; b < 3; b++ {
					if rng.Float64() < 0.6 {
						tab.Add([]int{a, b})
					}
				}
			}
			p.MustAddConstraint(scope, tab)
		}
		q := p.Normalize()
		a, b := bruteForce(p), bruteForce(q)
		if len(a) != len(b) {
			t.Fatalf("trial %d: normalization changed solutions %d -> %d", trial, len(a), len(b))
		}
		// Scopes in q are distinct (ordered) and variable-distinct.
		seen := map[string]bool{}
		for _, con := range q.Constraints {
			k := rowKey(con.Scope)
			if seen[k] {
				t.Fatalf("trial %d: duplicate scope after Consolidate", trial)
			}
			seen[k] = true
			vs := map[int]bool{}
			for _, v := range con.Scope {
				if vs[v] {
					t.Fatalf("trial %d: repeated variable after NormalizeDistinct", trial)
				}
				vs[v] = true
			}
		}
	}
}

func TestConsolidateIntersects(t *testing.T) {
	p := NewInstance(2, 2)
	p.MustAddConstraint([]int{0, 1}, TableOf(2, []int{0, 0}, []int{0, 1}))
	p.MustAddConstraint([]int{0, 1}, TableOf(2, []int{0, 1}, []int{1, 1}))
	q := p.Consolidate()
	if len(q.Constraints) != 1 {
		t.Fatalf("constraints = %d", len(q.Constraints))
	}
	if q.Constraints[0].Table.Len() != 1 || !q.Constraints[0].Table.Has([]int{0, 1}) {
		t.Fatal("intersection wrong")
	}
}

func TestDomainsRespected(t *testing.T) {
	p := NewInstance(2, 3)
	p.Domains = [][]int{{2}, {0, 1}}
	p.MustAddConstraint([]int{0, 1}, TableOf(2, []int{2, 1}, []int{0, 0}))
	res := Solve(p, Options{})
	if !res.Found || res.Solution[0] != 2 || res.Solution[1] != 1 {
		t.Fatalf("domains ignored: %+v", res)
	}
	if !p.Satisfies([]int{2, 1}) || p.Satisfies([]int{0, 0}) {
		t.Fatal("Satisfies ignores Domains")
	}
	jr := JoinSolve(p)
	if !jr.Found || jr.Solution[0] != 2 || jr.Solution[1] != 1 {
		t.Fatalf("join solver ignores Domains: %+v", jr)
	}
}

func TestStructureRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 60; trial++ {
		p := randomInstance(rng, 2+rng.Intn(3), 2+rng.Intn(2), 0.8, 0.4)
		a, b, err := ToStructures(p)
		if err != nil {
			t.Fatalf("ToStructures: %v", err)
		}
		q := MustFromStructures(a, b)
		if Solve(p, Options{}).Found != Solve(q, Options{}).Found {
			t.Fatalf("trial %d: round trip changed solvability", trial)
		}
		// A solution of q is a homomorphism A -> B and a solution of p.
		if res := Solve(q, Options{}); res.Found {
			if !structure.IsHomomorphism(a, b, res.Solution) {
				t.Fatalf("trial %d: solution is not a homomorphism", trial)
			}
			if !p.Satisfies(res.Solution) {
				t.Fatalf("trial %d: homomorphism not a solution of the original", trial)
			}
		}
	}
}

func TestFromStructuresColoring(t *testing.T) {
	// Homomorphism C5 -> K3 exists; C5 -> K2 does not.
	c5 := structure.Cycle(5)
	if !HomomorphismExists(c5, structure.Clique(3)) {
		t.Fatal("C5 -> K3 missing")
	}
	if HomomorphismExists(c5, structure.Clique(2)) {
		t.Fatal("C5 -> K2 found")
	}
	h, ok := FindHomomorphism(structure.Cycle(6), structure.Clique(2))
	if !ok || !structure.IsHomomorphism(structure.Cycle(6), structure.Clique(2), h) {
		t.Fatal("C6 -> K2 broken")
	}
}

func TestFromStructuresVocabularyMismatch(t *testing.T) {
	a := structure.Cycle(3)
	b := structure.MustNew(structure.MustVocabulary(structure.Symbol{Name: "F", Arity: 2}), 2)
	if _, err := FromStructures(a, b); err == nil {
		t.Fatal("vocabulary mismatch accepted")
	}
}

func TestStatsAreRecorded(t *testing.T) {
	edges := [][2]int{{0, 1}, {1, 2}, {2, 0}}
	res := Solve(coloringInstance(edges, 3, 2), Options{Algorithm: BT})
	if res.Found {
		t.Fatal("triangle 2-colored")
	}
	if res.Stats.Nodes == 0 || res.Stats.Backtracks == 0 {
		t.Fatalf("no stats recorded: %+v", res.Stats)
	}
	// MAC should refute at the root or with far fewer nodes than BT.
	mac := Solve(coloringInstance(edges, 3, 2), Options{Algorithm: MAC})
	if mac.Stats.Nodes > res.Stats.Nodes {
		t.Fatalf("MAC nodes %d > BT nodes %d", mac.Stats.Nodes, res.Stats.Nodes)
	}
}
