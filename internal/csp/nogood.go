package csp

import "sort"

// Nogood learning for the bitset engine. A nogood is a set of (var, val)
// literals that cannot all hold together: each one is recorded from the
// decision stack when propagation hits a conflict (GAC plus the previously
// learned nogoods derived a wipeout under exactly those decisions, so the
// set is a valid implication of the instance). Nogoods are consulted during
// propagation with SAT-style two-literal watching keyed on entailment: a
// literal (x, a) is entailed when x's domain narrows to {a}, and when all
// but one literal of a nogood is entailed, the remaining literal's value is
// pruned (all entailed is a conflict). Watch lists are not undone on
// backtrack, so a nogood can temporarily miss a re-propagation after deep
// backtracking — that only weakens pruning, never soundness, and the Luby
// restarts (restart.go) re-seat the watches at the root. The store is
// bounded: at each restart activities decay and, over capacity, the
// lowest-activity half is dropped — completeness is restored by the
// unbounded growth of the Luby cutoffs, not by keeping every nogood.

const (
	// maxNogoodLen caps recorded nogood length: long nogoods almost never
	// re-fire and bloat the watch lists.
	maxNogoodLen = 24
	// maxNogoods bounds the store; cleanup halves it.
	maxNogoods = 8192
	// nogoodDecay multiplies every activity at each restart.
	nogoodDecay = 0.8
)

// nglit is one nogood literal: variable v takes value val.
type nglit struct{ v, val int32 }

type nogood struct {
	lits []nglit
	act  float64
	w    [2]int32 // indices into lits of the two watched literals
}

// nogoodStore owns the learned nogoods and their entailment watch lists.
type nogoodStore struct {
	dom     int
	ngs     []*nogood
	watches [][]int32 // (v*dom + val) -> ids of nogoods watching that literal
	// units are length-1 nogoods: globally refuted (var, val) pairs,
	// re-applied as root prunes at the start of every restart.
	units []nglit
}

func newNogoodStore(vars, dom int) *nogoodStore {
	return &nogoodStore{dom: dom, watches: make([][]int32, vars*dom)}
}

// record stores the nogood built from the current decision stack. Length-1
// nogoods become permanent root prunes; overlong ones are dropped. It
// reports whether anything was recorded.
func (st *nogoodStore) record(lits []nglit) bool {
	switch {
	case len(lits) == 0 || len(lits) > maxNogoodLen:
		return false
	case len(lits) == 1:
		st.units = append(st.units, lits[0])
		return true
	}
	ng := &nogood{lits: append([]nglit(nil), lits...), act: 1, w: [2]int32{0, 1}}
	id := int32(len(st.ngs))
	st.ngs = append(st.ngs, ng)
	st.watch(ng.lits[0], id)
	st.watch(ng.lits[1], id)
	return true
}

func (st *nogoodStore) watch(l nglit, id int32) {
	k := int(l.v)*st.dom + int(l.val)
	st.watches[k] = append(st.watches[k], id)
}

// ngOnSingleton runs nogood unit propagation for a variable x whose domain
// just narrowed to a single value: every nogood watching the literal (x, a)
// either moves its watch to a non-entailed literal, prunes the last
// non-entailed literal's value (a nogood hit), or — with every literal
// entailed — reports a conflict (false).
func (s *bitSearcher) ngOnSingleton(x int) bool {
	a := s.d.Single(x)
	if a < 0 {
		return false
	}
	st := s.ng
	key := x*st.dom + a
	list := st.watches[key]
	for i := 0; i < len(list); {
		ng := st.ngs[list[i]]
		wi := 0
		l0 := ng.lits[ng.w[0]]
		if l0.v != int32(x) || l0.val != int32(a) {
			wi = 1
		}
		other := ng.lits[ng.w[1-wi]]
		if !s.d.Has(int(other.v), int(other.val)) {
			// The other watched literal is falsified: the nogood already
			// holds here; leave both watches in place.
			i++
			continue
		}
		moved := false
		for j := range ng.lits {
			if int32(j) == ng.w[0] || int32(j) == ng.w[1] {
				continue
			}
			lj := ng.lits[j]
			if s.d.size[lj.v] == 1 && s.d.Has(int(lj.v), int(lj.val)) {
				continue // entailed: not a usable watch
			}
			ng.w[wi] = int32(j)
			st.watch(lj, list[i])
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			moved = true
			break
		}
		if moved {
			continue
		}
		// Every literal but `other` is entailed: the nogood is unit (prune
		// other) or, when other is entailed too, violated.
		ng.act++
		s.stats.NogoodHits++
		if s.d.size[other.v] == 1 {
			st.watches[key] = list
			return false
		}
		if !s.removeValue(int(other.v), int(other.val), true) {
			st.watches[key] = list
			return false
		}
		i++
	}
	st.watches[key] = list
	return true
}

// onConflict is called at each propagation conflict under at least one
// decision: it counts the conflict against the restart cutoff and records
// the decision-set nogood.
func (s *bitSearcher) onConflict() {
	s.conflicts++
	if s.ng.record(s.decisions) {
		s.stats.NogoodsRecorded++
	}
	if s.cutoff > 0 && s.conflicts >= s.cutoff {
		s.restartNow = true
	}
}

// applyRootUnits re-applies the length-1 nogoods as root prunes at the
// start of a restart (their trail entries were unwound with the episode).
// It returns false when a unit wipes out a domain — a root-level
// unsatisfiability proof.
func (s *bitSearcher) applyRootUnits() bool {
	for _, u := range s.ng.units {
		if !s.d.Has(int(u.v), int(u.val)) {
			continue
		}
		if !s.removeValue(int(u.v), int(u.val), true) {
			s.clearQueue()
			return false
		}
	}
	return true
}

// ngRestartMaintenance runs at each restart boundary (domains are back at
// the root state): decay activities and, when the store is over capacity,
// keep the most active half and rebuild the watch lists from scratch.
func (s *bitSearcher) ngRestartMaintenance() {
	st := s.ng
	for _, ng := range st.ngs {
		ng.act *= nogoodDecay
	}
	if len(st.ngs) <= maxNogoods {
		return
	}
	// Deterministic selection: activity descending, newer nogoods win ties.
	order := make([]int, len(st.ngs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		na, nb := st.ngs[order[a]], st.ngs[order[b]]
		if na.act != nb.act {
			return na.act > nb.act
		}
		return order[a] > order[b]
	})
	keep := order[:maxNogoods/2]
	sort.Ints(keep)
	kept := make([]*nogood, 0, len(keep))
	for _, id := range keep {
		kept = append(kept, st.ngs[id])
	}
	st.ngs = kept
	for k := range st.watches {
		st.watches[k] = st.watches[k][:0]
	}
	for id, ng := range st.ngs {
		ng.w = [2]int32{0, 1}
		st.watch(ng.lits[0], int32(id))
		st.watch(ng.lits[1], int32(id))
	}
}
