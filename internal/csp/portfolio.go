package csp

import (
	"context"
	"time"

	"csdb/internal/obs"
)

// This file implements a portfolio solver. The paper's recurring point
// (Proposition 2.1, Theorem 5.7, Section 6) is that the same instance can be
// decided by several interchangeable complete procedures — backtracking
// search with propagation, conflict-directed backjumping, and join
// evaluation — and no single one dominates across instance classes. A
// portfolio races them concurrently under one context and returns the first
// definitive verdict, cancelling the losers.

// PortfolioStrategy is one competitor in a portfolio: a named complete
// decision procedure. Run must honor ctx (returning Aborted=true once it is
// cancelled) and must treat opts.NodeLimit as its own private budget.
type PortfolioStrategy struct {
	Name string
	Run  func(ctx context.Context, p *Instance, opts Options) Result
}

// DefaultStrategies returns the standard portfolio: MAC+MRV search, FC+Lex
// search, conflict-directed backjumping, the restart/nogood learning engine,
// and join evaluation per Proposition 2.1. Racing learning against plain
// MAC costs one goroutine and lets whichever propagation style fits the
// instance (systematic vs conflict-directed) deliver the verdict; the
// dispatcher's Hard route inherits the race automatically.
func DefaultStrategies() []PortfolioStrategy {
	return []PortfolioStrategy{
		{Name: "MAC+MRV", Run: func(ctx context.Context, p *Instance, opts Options) Result {
			opts.Algorithm, opts.VarOrder = MAC, MRV
			return SolveCtx(ctx, p, opts)
		}},
		{Name: "FC+Lex", Run: func(ctx context.Context, p *Instance, opts Options) Result {
			opts.Algorithm, opts.VarOrder = FC, Lex
			return SolveCtx(ctx, p, opts)
		}},
		{Name: "CBJ", Run: func(ctx context.Context, p *Instance, opts Options) Result {
			return SolveCBJCtx(ctx, p, opts)
		}},
		{Name: "Learn", Run: func(ctx context.Context, p *Instance, opts Options) Result {
			opts.Learn, opts.VarOrder = true, MRV
			return SolveCtx(ctx, p, opts)
		}},
		{Name: "Join", Run: func(ctx context.Context, p *Instance, _ Options) Result {
			return JoinSolveCtx(ctx, p)
		}},
	}
}

// SearchStrategies returns the portfolio of search-based deciders only:
// MAC+MRV, FC+Lex, CBJ and Learn. It exists because the join decider
// materializes intermediate relations; on instances with large constraint
// tables those allocations put the garbage collector under enough pressure
// to slow every competitor in the race before the cancellation lands. When
// instances are memory-heavy, race the searchers and keep join evaluation
// out of the pool.
func SearchStrategies() []PortfolioStrategy {
	all := DefaultStrategies()
	return all[:len(all)-1]
}

// PortfolioOptions configures a Portfolio call.
type PortfolioOptions struct {
	// Strategies to race; nil means DefaultStrategies().
	Strategies []PortfolioStrategy
	// Options is the base configuration handed to every strategy. Its
	// NodeLimit applies per strategy: each competitor counts its own nodes
	// against the limit, so one strategy hitting the limit does not abort
	// (or poison) the others.
	Options Options
	// Timeout, when positive, bounds the whole race with a deadline derived
	// from the caller's context.
	Timeout time.Duration
}

// StrategyReport is the per-strategy attribution in a PortfolioResult.
type StrategyReport struct {
	Name  string
	Stats Stats
	// Found and Aborted mirror the strategy's own Result. A losing strategy
	// typically shows Aborted=true because the winner cancelled it.
	Found   bool
	Aborted bool
	// Cancelled marks strategies whose abort was caused by losing the race
	// (the winner's cancellation), as opposed to their own node limit.
	Cancelled bool
}

// PortfolioResult is the outcome of a portfolio race: the winning verdict,
// which strategy produced it, the per-strategy reports, and the merged
// effort counters across all competitors.
type PortfolioResult struct {
	Result
	// Winner is the name of the strategy whose verdict was adopted; empty
	// when no strategy reached a verdict (all aborted or cancelled).
	Winner  string
	Reports []StrategyReport
	// Total sums the search effort across every strategy (nodes, backtracks
	// and prunings are additive; MaxDepth is the maximum). Its Duration is
	// the wall clock of the whole race.
	Total Stats
}

// Portfolio races the configured strategies on goroutines and returns the
// first definitive verdict — Found (with a solution) or a completed
// unsatisfiability proof — cancelling the remaining strategies. All
// strategies are waited for before returning, so Portfolio leaks no
// goroutines. When every strategy aborts (node limits, or ctx cancelled
// before any verdict), the result has Aborted=true.
func Portfolio(ctx context.Context, p *Instance, popts PortfolioOptions) PortfolioResult {
	start := time.Now()
	strategies := popts.Strategies
	if len(strategies) == 0 {
		strategies = DefaultStrategies()
	}
	obsPortfolioRaces.Inc()
	ctx, raceSpan := obs.StartSpan(ctx, "csp.portfolio")
	raceSpan.SetInt("strategies", int64(len(strategies)))
	var raceCtx context.Context
	var cancel context.CancelFunc
	if popts.Timeout > 0 {
		raceCtx, cancel = context.WithTimeout(ctx, popts.Timeout)
	} else {
		raceCtx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	type verdict struct {
		idx int
		res Result
	}
	done := make(chan verdict, len(strategies))
	for i, st := range strategies {
		go func(i int, st PortfolioStrategy) {
			sp := obs.StartChild(raceSpan, "csp.strategy")
			sp.SetStr("name", st.Name)
			res := st.Run(obs.WithSpan(raceCtx, sp), p, popts.Options)
			sp.SetInt("nodes", res.Stats.Nodes)
			if res.Found {
				sp.SetInt("found", 1)
			}
			if res.Aborted {
				sp.SetInt("aborted", 1)
			}
			sp.End()
			done <- verdict{i, res}
		}(i, st)
	}

	out := PortfolioResult{Reports: make([]StrategyReport, len(strategies))}
	winner := -1
	for n := 0; n < len(strategies); n++ {
		v := <-done
		rep := StrategyReport{
			Name:    strategies[v.idx].Name,
			Stats:   v.res.Stats,
			Found:   v.res.Found,
			Aborted: v.res.Aborted,
		}
		if v.res.Aborted && winner >= 0 {
			rep.Cancelled = true
		}
		if winner < 0 && !v.res.Aborted {
			winner = v.idx
			out.Result = v.res
			out.Winner = strategies[v.idx].Name
			cancel() // stop the losers
		}
		out.Reports[v.idx] = rep
		out.Total.merge(v.res.Stats)
	}
	if winner < 0 {
		out.Result = Result{Aborted: true, Stats: out.Total}
	} else {
		obsPortfolioWin(out.Winner)
	}
	for i := range out.Reports {
		recordLaneOutcome(out.Reports[i].Name, i == winner)
	}
	out.Total.Duration = time.Since(start)
	out.Result.Stats.Duration = out.Total.Duration
	raceSpan.SetStr("winner", out.Winner)
	raceSpan.SetInt("total_nodes", out.Total.Nodes)
	raceSpan.End()
	return out
}
