// Package csp implements constraint-satisfaction problem instances in the
// classic AI formulation of Section 2 of the paper — a set of variables, a
// set of values, and a collection of constraints (t, R) — together with:
//
//   - the normalizations the paper performs "without loss of generality"
//     (eliminating repeated variables in constraint scopes, consolidating
//     constraints on the same scope, coherence closure);
//   - the translation between CSP instances and homomorphism instances
//     (A_P, B_P) of relational structures, in both directions;
//   - complete solvers: chronological backtracking (BT), forward checking
//     (FC), and maintaining generalized arc consistency (MAC), with
//     MRV+degree variable ordering and search statistics;
//   - the join-evaluation solver of Proposition 2.1.
package csp

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is a finite relation over values: the R of a constraint (t, R).
// Tables are deduplicated sets of tuples with O(1) membership. Membership
// uses an integer-hash index (FNV-1a over the values, collisions chained
// through next and verified against the stored rows), mirroring the
// allocation-free lookup discipline of internal/relation.
type Table struct {
	arity  int
	tuples [][]int
	index  map[uint64]int32 // row hash -> most recent row id with that hash
	next   []int32          // per-row chain to earlier same-hash rows; -1 ends
}

// NewTable creates an empty table of the given arity (>= 1).
func NewTable(arity int) *Table {
	if arity < 1 {
		panic(fmt.Sprintf("csp: table arity %d", arity))
	}
	return &Table{arity: arity, index: make(map[uint64]int32)}
}

// FNV-1a over machine words; see internal/relation for the rationale
// (collisions are verified, the runtime re-hashes the uint64 key).
const (
	tableFNVOffset = 14695981039346656037
	tableFNVPrime  = 1099511628211
)

func tableHash(row []int) uint64 {
	h := uint64(tableFNVOffset)
	for _, v := range row {
		h ^= uint64(v)
		h *= tableFNVPrime
	}
	return h
}

// find returns the id of the stored row equal to row, or -1.
func (t *Table) find(row []int, h uint64) int32 {
	id, ok := t.index[h]
	if !ok {
		return -1
	}
	for id >= 0 {
		stored := t.tuples[id]
		eq := true
		for i, v := range row {
			if stored[i] != v {
				eq = false
				break
			}
		}
		if eq {
			return id
		}
		id = t.next[id]
	}
	return -1
}

// TableOf builds a table from rows; all rows must share the given arity.
func TableOf(arity int, rows ...[]int) *Table {
	t := NewTable(arity)
	for _, r := range rows {
		t.Add(r)
	}
	return t
}

// Arity returns the table's arity.
func (t *Table) Arity() int { return t.arity }

// Len returns the number of tuples.
func (t *Table) Len() int { return len(t.tuples) }

// Tuples returns the tuples. Do not modify.
func (t *Table) Tuples() [][]int { return t.tuples }

// Add inserts a tuple (copied); duplicates are ignored. It panics on arity
// mismatch, which is a programming error.
func (t *Table) Add(row []int) {
	if len(row) != t.arity {
		panic(fmt.Sprintf("csp: tuple arity %d for table arity %d", len(row), t.arity))
	}
	h := tableHash(row)
	if t.find(row, h) >= 0 {
		return
	}
	c := make([]int, len(row))
	copy(c, row)
	prev, ok := t.index[h]
	if !ok {
		prev = -1
	}
	t.next = append(t.next, prev)
	t.index[h] = int32(len(t.tuples))
	t.tuples = append(t.tuples, c)
}

// Has reports whether row is in the table.
func (t *Table) Has(row []int) bool {
	if len(row) != t.arity {
		return false
	}
	return t.find(row, tableHash(row)) >= 0
}

// Clone returns a deep copy.
func (t *Table) Clone() *Table {
	c := NewTable(t.arity)
	for _, r := range t.tuples {
		c.Add(r)
	}
	return c
}

// Key returns a canonical content key: arity plus the sorted tuple keys.
// Two tables with the same key contain exactly the same tuples.
func (t *Table) Key() string {
	keys := make([]string, 0, len(t.tuples))
	for _, row := range t.tuples {
		keys = append(keys, rowKey(row))
	}
	sortStrings(keys)
	return fmt.Sprintf("%d|%s", t.arity, strings.Join(keys, ";"))
}

// Intersect returns the table containing the tuples present in both t and u.
func (t *Table) Intersect(u *Table) (*Table, error) {
	if t.arity != u.arity {
		return nil, fmt.Errorf("csp: intersecting tables of arity %d and %d", t.arity, u.arity)
	}
	out := NewTable(t.arity)
	for _, r := range t.tuples {
		if u.Has(r) {
			out.Add(r)
		}
	}
	return out, nil
}

func rowKey(row []int) string {
	b := make([]byte, 0, len(row)*3)
	for i, v := range row {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(v), 10)
	}
	return string(b)
}

func sortStrings(s []string) {
	// insertion sort: table counts here are small and this avoids importing
	// sort into the hot path file... actually clarity wins:
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Constraint is a pair (t, R): an ordered scope of variable indices and a
// table of allowed value tuples of the same arity.
type Constraint struct {
	Scope []int
	Table *Table
}

// Instance is a CSP instance (V, D, C) with V = {0..Vars-1} and
// D = {0..Dom-1}. Optional per-variable domain restrictions live in Domains
// (nil means every variable ranges over all of D).
type Instance struct {
	Vars        int
	Dom         int
	Names       []string // optional variable labels
	Domains     [][]int  // optional: Domains[v] lists the allowed values of v
	Constraints []*Constraint
}

// NewInstance returns an instance with the given numbers of variables and
// values and no constraints.
func NewInstance(vars, dom int) *Instance {
	return &Instance{Vars: vars, Dom: dom}
}

// AddConstraint appends the constraint (scope, table) after validating it.
func (p *Instance) AddConstraint(scope []int, table *Table) error {
	if len(scope) != table.Arity() {
		return fmt.Errorf("csp: scope length %d does not match table arity %d", len(scope), table.Arity())
	}
	for _, v := range scope {
		if v < 0 || v >= p.Vars {
			return fmt.Errorf("csp: scope variable %d outside [0,%d)", v, p.Vars)
		}
	}
	for _, row := range table.Tuples() {
		for _, val := range row {
			if val < 0 || val >= p.Dom {
				return fmt.Errorf("csp: table value %d outside [0,%d)", val, p.Dom)
			}
		}
	}
	sc := make([]int, len(scope))
	copy(sc, scope)
	p.Constraints = append(p.Constraints, &Constraint{Scope: sc, Table: table})
	return nil
}

// MustAddConstraint is AddConstraint but panics on error.
func (p *Instance) MustAddConstraint(scope []int, table *Table) {
	if err := p.AddConstraint(scope, table); err != nil {
		panic(err)
	}
}

// VarName returns the label of variable v.
func (p *Instance) VarName(v int) string {
	if p.Names != nil && v >= 0 && v < len(p.Names) {
		return p.Names[v]
	}
	return fmt.Sprintf("x%d", v)
}

// DomainOf returns the allowed values of variable v as a slice.
func (p *Instance) DomainOf(v int) []int {
	if p.Domains != nil && p.Domains[v] != nil {
		return p.Domains[v]
	}
	all := make([]int, p.Dom)
	for i := range all {
		all[i] = i
	}
	return all
}

// Clone returns a deep copy of the instance (tables are copied).
func (p *Instance) Clone() *Instance {
	c := &Instance{Vars: p.Vars, Dom: p.Dom}
	if p.Names != nil {
		c.Names = append([]string(nil), p.Names...)
	}
	if p.Domains != nil {
		c.Domains = make([][]int, len(p.Domains))
		for i, d := range p.Domains {
			if d != nil {
				c.Domains[i] = append([]int(nil), d...)
			}
		}
	}
	for _, con := range p.Constraints {
		c.MustAddConstraint(con.Scope, con.Table.Clone())
	}
	return c
}

// Satisfies reports whether the total assignment (len == Vars) satisfies all
// constraints and per-variable domains.
func (p *Instance) Satisfies(assignment []int) bool {
	if len(assignment) != p.Vars {
		return false
	}
	for v, val := range assignment {
		if val < 0 || val >= p.Dom {
			return false
		}
		if p.Domains != nil && p.Domains[v] != nil && !containsInt(p.Domains[v], val) {
			return false
		}
	}
	row := make([]int, 8)
	for _, con := range p.Constraints {
		if cap(row) < len(con.Scope) {
			row = make([]int, len(con.Scope))
		}
		r := row[:len(con.Scope)]
		for i, v := range con.Scope {
			r[i] = assignment[v]
		}
		if !con.Table.Has(r) {
			return false
		}
	}
	return true
}

// NormalizeDistinct rewrites every constraint whose scope repeats a variable
// into an equivalent constraint with distinct scope variables, per the
// standard reduction in Section 2: tuples disagreeing on the repeated
// positions are deleted and the duplicate column is projected out. The
// result is a new instance with the same solution set.
func (p *Instance) NormalizeDistinct() *Instance {
	out := &Instance{Vars: p.Vars, Dom: p.Dom, Names: p.Names, Domains: p.Domains}
	for _, con := range p.Constraints {
		scope, table := dedupScope(con.Scope, con.Table)
		out.MustAddConstraint(scope, table)
	}
	return out
}

func dedupScope(scope []int, table *Table) ([]int, *Table) {
	first := make(map[int]int) // variable -> first position
	keep := make([]int, 0, len(scope))
	newScope := make([]int, 0, len(scope))
	for i, v := range scope {
		if _, seen := first[v]; !seen {
			first[v] = i
			keep = append(keep, i)
			newScope = append(newScope, v)
		}
	}
	if len(keep) == len(scope) {
		return append([]int(nil), scope...), table.Clone()
	}
	out := NewTable(len(keep))
rows:
	for _, row := range table.Tuples() {
		for i, v := range scope {
			if row[i] != row[first[v]] {
				continue rows // disagrees on a repeated variable
			}
		}
		proj := make([]int, len(keep))
		for j, i := range keep {
			proj[j] = row[i]
		}
		out.Add(proj)
	}
	return newScope, out
}

// Consolidate merges constraints that share the same ordered scope by
// intersecting their tables, so every scope occurs at most once (the "single
// constraint per tuple of variables" convention of Section 2).
func (p *Instance) Consolidate() *Instance {
	out := &Instance{Vars: p.Vars, Dom: p.Dom, Names: p.Names, Domains: p.Domains}
	byScope := make(map[string]*Table)
	order := make([]string, 0, len(p.Constraints))
	scopes := make(map[string][]int)
	for _, con := range p.Constraints {
		k := rowKey(con.Scope)
		if existing, ok := byScope[k]; ok {
			merged, err := existing.Intersect(con.Table)
			if err != nil {
				panic(err) // impossible: same scope implies same arity
			}
			byScope[k] = merged
		} else {
			byScope[k] = con.Table.Clone()
			order = append(order, k)
			scopes[k] = append([]int(nil), con.Scope...)
		}
	}
	for _, k := range order {
		out.MustAddConstraint(scopes[k], byScope[k])
	}
	return out
}

// Normalize applies NormalizeDistinct then Consolidate.
func (p *Instance) Normalize() *Instance {
	return p.NormalizeDistinct().Consolidate()
}

func containsInt(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}
