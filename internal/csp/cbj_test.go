package csp

import (
	"math/rand"
	"testing"
)

func TestCBJAgreesWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 150; trial++ {
		p := randomInstance(rng, 2+rng.Intn(4), 2+rng.Intn(3), 0.7, 0.4)
		want := len(bruteForce(p)) > 0
		for _, ord := range []VarOrder{MRV, Lex} {
			res := SolveCBJ(p, Options{VarOrder: ord})
			if res.Found != want {
				t.Fatalf("trial %d ord %v: cbj=%v brute=%v", trial, ord, res.Found, want)
			}
			if res.Found && !p.Satisfies(res.Solution) {
				t.Fatalf("trial %d: invalid CBJ solution", trial)
			}
		}
	}
}

func TestCBJTrivialCases(t *testing.T) {
	empty := NewInstance(0, 2)
	if res := SolveCBJ(empty, Options{}); !res.Found {
		t.Fatal("empty instance unsolved")
	}
	unsat := NewInstance(1, 2)
	unsat.MustAddConstraint([]int{0}, NewTable(1))
	if res := SolveCBJ(unsat, Options{}); res.Found {
		t.Fatal("empty-table instance solved")
	}
	wiped := NewInstance(1, 2)
	wiped.Domains = [][]int{{}}
	if res := SolveCBJ(wiped, Options{}); res.Found {
		t.Fatal("wiped domain solved")
	}
}

func TestCBJNodeLimit(t *testing.T) {
	p := NewInstance(8, 4)
	neq := NotEqual(4)
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			p.MustAddConstraint([]int{i, j}, neq)
		}
	}
	res := SolveCBJ(p, Options{NodeLimit: 5})
	if res.Found || !res.Aborted {
		t.Fatalf("node limit ignored: %+v", res)
	}
}

// NotEqual builds a binary disequality table (test helper).
func NotEqual(d int) *Table {
	t := NewTable(2)
	for a := 0; a < d; a++ {
		for b := 0; b < d; b++ {
			if a != b {
				t.Add([]int{a, b})
			}
		}
	}
	return t
}

// The classic CBJ win: a conflict between the first and last variable in
// static order, with irrelevant variables in between. BT re-enumerates the
// middle assignments for every combination; CBJ jumps straight back to the
// culprit.
func TestCBJJumpsOverIrrelevantVariables(t *testing.T) {
	const n, d = 10, 3
	p := NewInstance(n, d)
	// Variable 0 may be 1 or 2 (unary constraint)...
	u := NewTable(1)
	u.Add([]int{1})
	u.Add([]int{2})
	p.MustAddConstraint([]int{0}, u)
	// ...but the last variable requires variable 0 to be 0: unsatisfiable.
	last := NewTable(2)
	last.Add([]int{0, 0})
	p.MustAddConstraint([]int{0, n - 1}, last)

	bt := Solve(p, Options{Algorithm: BT, VarOrder: Lex})
	cbj := SolveCBJ(p, Options{VarOrder: Lex})
	if bt.Found || cbj.Found {
		t.Fatal("unsatisfiable instance solved")
	}
	if cbj.Stats.Nodes*100 > bt.Stats.Nodes {
		t.Fatalf("CBJ did not jump: cbj=%d nodes, bt=%d nodes", cbj.Stats.Nodes, bt.Stats.Nodes)
	}
}

// On satisfiable instances CBJ must find valid solutions and never expand
// more nodes than BT under the same static order.
func TestCBJNeverWorseThanBTOnStaticOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	for trial := 0; trial < 60; trial++ {
		p := randomInstance(rng, 4+rng.Intn(4), 2+rng.Intn(2), 0.6, 0.45)
		bt := Solve(p, Options{Algorithm: BT, VarOrder: Lex})
		cbj := SolveCBJ(p, Options{VarOrder: Lex})
		if bt.Found != cbj.Found {
			t.Fatalf("trial %d: bt=%v cbj=%v", trial, bt.Found, cbj.Found)
		}
		if cbj.Stats.Nodes > bt.Stats.Nodes {
			t.Fatalf("trial %d: CBJ expanded more nodes (%d) than BT (%d)", trial, cbj.Stats.Nodes, bt.Stats.Nodes)
		}
	}
}
