package csp

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"csdb/internal/obs"
)

// This file implements search-space splitting: the root variable's domain is
// partitioned into disjoint singleton subtrees, each solved independently by
// a bounded worker pool under a shared cancellable context. The subproblems
// share the (read-only) constraint tables, so splitting costs one small
// Domains slice per subtree rather than a deep instance clone.

// ParallelOptions configures SolveParallel.
type ParallelOptions struct {
	// Options configures each worker's search. NodeLimit applies per
	// subtree, not globally.
	Options
	// Workers bounds the number of concurrently running subtree searches;
	// 0 means GOMAXPROCS.
	Workers int
}

// ParallelResult is the outcome of a SolveParallel call.
type ParallelResult struct {
	Result
	// Subtrees is the number of root-domain partitions searched.
	Subtrees int
	// Workers is the worker-pool bound actually used.
	Workers int
}

// SolveParallel searches the instance by splitting on the root variable: one
// subproblem per value of the most constrained variable's domain, solved by
// a pool of workers racing under a shared context. The first solution wins
// and cancels the remaining subtrees; UNSAT is reported only when every
// subtree completed without aborting. Effort counters are aggregated
// atomically across workers into the returned Stats; each subtree's counters
// also land in the shared obs registry through the per-solve flush, so the
// registry delta across a call equals the merged total (locked in by
// TestParallelStatsMatchRegistry).
func SolveParallel(ctx context.Context, p *Instance, popts ParallelOptions) ParallelResult {
	start := time.Now()
	workers := popts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	obsParallelRuns.Inc()

	if p.Vars == 0 {
		res := SolveCtx(ctx, p, popts.Options)
		res.Stats.Strategy = "parallel(" + popts.Options.label() + ")"
		return ParallelResult{Result: res, Subtrees: 1, Workers: 1}
	}

	root := splitVar(p)
	values := p.DomainOf(root)
	if len(values) < workers {
		workers = len(values)
	}

	out := ParallelResult{Subtrees: len(values), Workers: workers}
	if len(values) == 0 {
		out.Stats.Strategy = "parallel(" + popts.Options.label() + ")"
		out.Stats.Duration = time.Since(start)
		return out // empty root domain: trivially UNSAT
	}
	obsParallelSubtrees.Add(int64(len(values)))
	ctx, splitSpan := obs.StartSpan(ctx, "csp.parallel")
	splitSpan.SetInt("subtrees", int64(len(values)))
	splitSpan.SetInt("workers", int64(workers))
	splitSpan.SetInt("root_var", int64(root))
	defer splitSpan.End()

	searchCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		nodes, backtracks, prunings atomic.Int64
		maxDepth                    atomic.Int64
		anyAborted                  atomic.Bool

		mu       sync.Mutex
		solution []int
		wg       sync.WaitGroup
	)
	jobs := make(chan int, len(values))
	for i := range values {
		jobs <- i
	}
	close(jobs)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if searchCtx.Err() != nil {
					// The race is over (solution found or caller cancelled):
					// the remaining subtrees count as aborted, not as
					// completed UNSAT proofs.
					anyAborted.Store(true)
					continue
				}
				sp := obs.StartChild(splitSpan, "csp.subtree")
				sp.SetInt("value", int64(values[i]))
				res := SolveCtx(obs.WithSpan(searchCtx, sp), subInstance(p, root, values[i]), popts.Options)
				sp.SetInt("nodes", res.Stats.Nodes)
				sp.End()
				nodes.Add(res.Stats.Nodes)
				backtracks.Add(res.Stats.Backtracks)
				prunings.Add(res.Stats.Prunings)
				atomicMax(&maxDepth, int64(res.Stats.MaxDepth))
				if res.Aborted {
					anyAborted.Store(true)
				}
				if res.Found {
					mu.Lock()
					if solution == nil {
						solution = res.Solution
					}
					mu.Unlock()
					cancel()
				}
			}
		}()
	}
	wg.Wait()

	out.Stats = Stats{
		Nodes:      nodes.Load(),
		Backtracks: backtracks.Load(),
		Prunings:   prunings.Load(),
		MaxDepth:   int(maxDepth.Load()),
		Duration:   time.Since(start),
		Strategy:   "parallel(" + popts.Options.label() + ")",
	}
	if solution != nil {
		out.Found = true
		out.Solution = solution
	} else if anyAborted.Load() || ctx.Err() != nil {
		out.Aborted = true
	}
	return out
}

// splitVar picks the variable whose domain is partitioned across workers:
// smallest initial domain, ties broken by the number of constraints on the
// variable (the static MRV+degree rule), so the subtrees start maximally
// constrained.
func splitVar(p *Instance) int {
	degree := make([]int, p.Vars)
	for _, con := range p.Constraints {
		for i, v := range con.Scope {
			if !scopeRepeat(con.Scope, i) {
				degree[v]++
			}
		}
	}
	best, bestSize, bestDeg := 0, 1<<30, -1
	for v := 0; v < p.Vars; v++ {
		size := len(p.DomainOf(v))
		if size < bestSize || (size == bestSize && degree[v] > bestDeg) {
			best, bestSize, bestDeg = v, size, degree[v]
		}
	}
	return best
}

// subInstance returns a shallow copy of p with variable root pinned to val.
// Constraint tables and names are shared (they are read-only during search);
// only the Domains slice is fresh.
func subInstance(p *Instance, root, val int) *Instance {
	doms := make([][]int, p.Vars)
	if p.Domains != nil {
		copy(doms, p.Domains)
	}
	doms[root] = []int{val}
	return &Instance{
		Vars:        p.Vars,
		Dom:         p.Dom,
		Names:       p.Names,
		Domains:     doms,
		Constraints: p.Constraints,
	}
}

// atomicMax raises *m to v if v is larger.
func atomicMax(m *atomic.Int64, v int64) {
	for {
		cur := m.Load()
		if v <= cur || m.CompareAndSwap(cur, v) {
			return
		}
	}
}
